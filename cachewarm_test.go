package turbosyn

import (
	"bytes"
	"os"
	"testing"

	"turbosyn/internal/bench"
)

// TestCacheWarmSuite is the warm-cache gate (CI job cache-warm / `make
// cache-warm`): it synthesizes a slice of the evaluation suite three times —
// cold against a fresh (or CI-restored) cache directory, warm against the
// same directory, and once with no cache at all — and pins the two contracts
// Options.CacheDir makes:
//
//  1. Bit identity: all three runs emit byte-identical BLIF per circuit. A
//     persisted cache changes nothing but speed.
//  2. Warm effectiveness: the warm run serves >= 80% of its cache hits from
//     persisted entries and skips >= 80% of the cold run's Roth-Karp window
//     scans (or all of them). The cold-run bound is skipped when the
//     directory was already warm (a restored CI cache makes the first run
//     warm too, which only strengthens the warm-run assertions).
//
// TURBOSYN_CACHE_DIR overrides the cache directory (CI points it at the
// actions/cache-restored path); by default each test run uses a throwaway
// temp directory.
func TestCacheWarmSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("cache-warm gate runs three full syntheses per circuit; use make cache-warm")
	}
	dir := os.Getenv("TURBOSYN_CACHE_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	// A small slice of the suite keeps the gate quick while still covering
	// FSM SOPs and datapath carry chains.
	want := map[string]bool{"bbara": true, "bbsse": true, "cse": true, "s420": true}
	opts := func(cacheDir string) Options {
		return Options{K: 4, Workers: 2, CacheDir: cacheDir}
	}
	for _, cs := range bench.Suite() {
		if !want[cs.Name] {
			continue
		}
		t.Run(cs.Name, func(t *testing.T) {
			blif := func(o Options) ([]byte, *Result) {
				res, err := Synthesize(cs.Circuit, o)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := WriteBLIF(&buf, res.Realized); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes(), res
			}
			cold, coldRes := blif(opts(dir))
			warm, warmRes := blif(opts(dir))
			bare, _ := blif(opts(""))

			if !bytes.Equal(cold, warm) {
				t.Fatalf("warm run BLIF differs from cold run (cache must be invisible in results)")
			}
			if !bytes.Equal(cold, bare) {
				t.Fatalf("cached run BLIF differs from uncached run (cache must be invisible in results)")
			}

			st := warmRes.Stats
			if st.CacheShardHits == 0 {
				t.Fatalf("warm run recorded no cache hits at all")
			}
			if rate := float64(st.CachePersistedHits) / float64(st.CacheShardHits); rate < 0.8 {
				t.Errorf("warm run persisted-hit rate = %.2f (%d/%d), want >= 0.8",
					rate, st.CachePersistedHits, st.CacheShardHits)
			}
			coldRK, warmRK := coldRes.Stats.RothKarpCalls, st.RothKarpCalls
			if warmRK != 0 && 5*warmRK > coldRK {
				// coldRK can legitimately be tiny when the directory was
				// pre-warmed (restored CI cache); then warmRK must be equally
				// tiny and the persisted-hit assertion above carries the gate.
				if coldRK > 5 {
					t.Errorf("warm run ran %d Roth-Karp scans vs %d cold, want >= 80%% skipped",
						warmRK, coldRK)
				}
			}
			t.Logf("cold roth-karp=%d warm roth-karp=%d persisted=%d/%d npn=%d",
				coldRK, warmRK, st.CachePersistedHits, st.CacheShardHits, st.CacheNPNHits)
		})
	}
}
