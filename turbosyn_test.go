package turbosyn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"turbosyn/internal/sim"
)

// buildLoop6 is the paper's Figure-1-style circuit (see examples/quickstart).
func buildLoop6(t *testing.T) *Circuit {
	t.Helper()
	c := NewCircuit("loop6")
	and2 := And(2)
	var xs [6]int
	for i := range xs {
		xs[i] = c.AddPI(string(rune('a' + i)))
	}
	g1 := c.AddGate("g1", and2, Fanin{From: xs[0]}, Fanin{From: xs[0]})
	prev := g1
	for i := 1; i < 6; i++ {
		prev = c.AddGate("g"+string(rune('1'+i)), and2,
			Fanin{From: prev}, Fanin{From: xs[i]})
	}
	c.Nodes[g1].Fanins[1] = Fanin{From: prev, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("out", prev, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSynthesizeDefaultsTurboSYN(t *testing.T) {
	c := buildLoop6(t)
	res, err := Synthesize(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != TurboSYN {
		t.Errorf("default algorithm = %v", res.Algorithm)
	}
	if res.Phi != 1 {
		t.Fatalf("TurboSYN phi = %d, want 1", res.Phi)
	}
	if res.Realized == nil || ClockPeriod(res.Realized) > 1 {
		t.Fatal("realization missing or misses the period")
	}
	if len(res.Latency) != 1 || res.Latency[0] < 0 {
		t.Fatalf("latency %v", res.Latency)
	}
	// The mapped network is stream-equivalent under aligned initial state.
	rng := rand.New(rand.NewSource(1))
	vecs := sim.RandomVectors(rng, 200, 6)
	if err := sim.CompareAligned(c, res.Mapped, res.OrigOf, vecs, 8); err != nil {
		t.Fatalf("mapped diverges: %v", err)
	}
}

func TestSynthesizeAlgorithms(t *testing.T) {
	c := buildLoop6(t)
	phis := map[Algorithm]int{}
	for _, alg := range []Algorithm{FlowSYNS, TurboMap, TurboSYN} {
		res, err := Synthesize(c, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		phis[alg] = res.Phi
	}
	if phis[TurboSYN] > phis[TurboMap] || phis[TurboMap] > phis[FlowSYNS] {
		t.Fatalf("ordering violated: %v", phis)
	}
	if phis[TurboSYN] != 1 || phis[TurboMap] != 2 {
		t.Fatalf("expected 1 vs 2, got %v", phis)
	}
}

func TestSynthesizeKBoundsWideGates(t *testing.T) {
	c := NewCircuit("wide")
	var fan []Fanin
	for i := 0; i < 9; i++ {
		fan = append(fan, Fanin{From: c.AddPI(string(rune('a' + i)))})
	}
	g := c.AddGate("w", And(9), fan...)
	c.AddPO("z", g, 0)
	res, err := Synthesize(c, Options{K: 4, Objective: MinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mapped.IsKBounded(4) {
		t.Fatal("result not K-bounded")
	}
	if res.Phi > 2 {
		t.Fatalf("9-input AND at K=4 should map at depth 2, got %d", res.Phi)
	}
	eq, err := sim.CombEquivalent(c, res.Mapped, 10)
	if err != nil || !eq {
		t.Fatalf("equivalence after KBound: %v %v", eq, err)
	}
}

func TestSynthesizeMinPeriodObjective(t *testing.T) {
	// A retimable chain: behaviour-preserving retiming reaches period 1,
	// and no latency may be added.
	c := NewCircuit("chain")
	pi := c.AddPI("x")
	g1 := c.AddGate("g1", Inv(), Fanin{From: pi, Weight: 3})
	g2 := c.AddGate("g2", Inv(), Fanin{From: g1})
	g3 := c.AddGate("g3", Inv(), Fanin{From: g2})
	c.AddPO("z", g3, 0)
	res, err := Synthesize(c, Options{K: 2, Objective: MinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phi != 1 {
		t.Fatalf("phi = %d, want 1", res.Phi)
	}
	for _, l := range res.Latency {
		if l != 0 {
			t.Fatalf("MinPeriod must not add latency: %v", res.Latency)
		}
	}
}

func TestSynthesizeBLIFRoundTrip(t *testing.T) {
	c := buildLoop6(t)
	res, err := Synthesize(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, res.Realized); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading realized BLIF: %v\n%s", err, buf.String())
	}
	if err := back.Check(); err != nil {
		t.Fatal(err)
	}
	if len(back.PIs) != len(res.Realized.PIs) || len(back.POs) != len(res.Realized.POs) {
		t.Fatal("BLIF round trip changed the interface")
	}
	// The writer may materialize up to one buffer per PO.
	if g := back.NumGates(); g < res.Realized.NumGates() ||
		g > res.Realized.NumGates()+len(res.Realized.POs) {
		t.Fatalf("BLIF round trip changed the LUT count: %d -> %d",
			res.Realized.NumGates(), g)
	}
}

func TestFeasibleFacade(t *testing.T) {
	c := buildLoop6(t)
	ok, _, err := Feasible(c, 1, Options{Algorithm: TurboMap})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("TurboMap ratio 1 must be infeasible on loop6")
	}
	ok, st, err := Feasible(c, 1, Options{Algorithm: TurboSYN})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("TurboSYN ratio 1 must be feasible on loop6")
	}
	if st.Iterations == 0 {
		t.Fatal("stats missing")
	}
}

func TestFunctionHelpers(t *testing.T) {
	f, err := FunctionFromBits(2, "0110")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(Xor(2)) {
		t.Fatal("FunctionFromBits mismatch")
	}
	if Nand(2).Equal(And(2)) || Nor(2).Equal(Or(2)) {
		t.Fatal("negated helpers wrong")
	}
	if Mux().NumVars() != 3 || Buf().NumVars() != 1 || Inv().NumVars() != 1 {
		t.Fatal("arity wrong")
	}
	if c, v := ConstFunc(true).IsConst(); !c || !v {
		t.Fatal("ConstFunc wrong")
	}
}

func TestReadBLIFFacade(t *testing.T) {
	src := ".model m\n.inputs a\n.outputs z\n.latch n q 0\n.names a q n\n11 1\n.names q z\n1 1\n.end\n"
	c, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phi != 1 {
		t.Fatalf("tiny machine should map at ratio 1, got %d", res.Phi)
	}
}

func TestMDRRatioFacade(t *testing.T) {
	c := buildLoop6(t)
	num, den := MDRRatio(c)
	if num != 6 || den != 1 {
		t.Fatalf("MDR = %d/%d, want 6/1", num, den)
	}
	if ClockPeriod(c) != 6 {
		t.Fatalf("period %d", ClockPeriod(c))
	}
}
