package mapper

import (
	"math/rand"
	"testing"

	"turbosyn/internal/core"
	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
	"turbosyn/internal/retime"
	"turbosyn/internal/sim"
)

// andTree32 builds a balanced 2-input AND tree over 32 inputs (depth 5).
func andTree32(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("tree32")
	var level []int
	for i := 0; i < 32; i++ {
		level = append(level, c.AddPI(string(rune('A'+i))))
	}
	for len(level) > 1 {
		var next []int
		for i := 0; i < len(level); i += 2 {
			next = append(next, c.AddGate("", logic.AndAll(2),
				netlist.Fanin{From: level[i]}, netlist.Fanin{From: level[i+1]}))
		}
		level = next
	}
	c.AddPO("z", level[0], 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFlowMapDepthOptimal(t *testing.T) {
	c := andTree32(t)
	res, err := FlowMap(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 32 inputs, 4-LUTs absorb 2 tree levels: depth ceil(5/2) = 3.
	if res.Phi != 3 {
		t.Fatalf("FlowMap depth = %d, want 3", res.Phi)
	}
	rng := rand.New(rand.NewSource(7))
	vecs := sim.RandomVectors(rng, 4000, 32)
	if err := sim.Compare(c, res.Mapped, vecs, 0, 0); err != nil {
		t.Fatalf("FlowMap result not equivalent: %v", err)
	}
}

func TestFlowSYNBeatsFlowMapOnSkewedChain(t *testing.T) {
	// A maximally skewed 15-input AND chain: FlowMap at K=4 is limited by
	// structure; FlowSYN rebalances via decomposition. (15 and not 16
	// inputs: resynthesis cuts are capped at Cmax = 15, as in the paper.)
	c := netlist.NewCircuit("chain15")
	prev := c.AddPI("p0")
	g := -1
	for i := 1; i < 15; i++ {
		pi := c.AddPI(string(rune('a' + i)))
		if g == -1 {
			g = c.AddGate("", logic.AndAll(2),
				netlist.Fanin{From: prev}, netlist.Fanin{From: pi})
		} else {
			g = c.AddGate("", logic.AndAll(2),
				netlist.Fanin{From: g}, netlist.Fanin{From: pi})
		}
	}
	c.AddPO("z", g, 0)
	fm, err := FlowMap(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := FlowSYN(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Phi > fm.Phi {
		t.Fatalf("FlowSYN (%d) worse than FlowMap (%d)", fs.Phi, fm.Phi)
	}
	// A 15-input AND at K=4 decomposes into a perfect depth-2 tree;
	// FlowMap on the skewed chain needs more.
	if fs.Phi != 2 {
		t.Errorf("FlowSYN depth = %d, want 2", fs.Phi)
	}
	if fm.Phi < 3 {
		t.Errorf("FlowMap depth = %d; chain should not allow 2", fm.Phi)
	}
	eq, err := sim.CombEquivalent(c, fs.Mapped, 16)
	if err != nil || !eq {
		t.Fatalf("FlowSYN result not equivalent (%v, %v)", eq, err)
	}
}

// mealyish builds a small sequential machine with two registered loops and
// combinational logic between them.
func mealyish(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("mealyish")
	a := c.AddPI("a")
	b := c.AddPI("b")
	s1 := c.AddGate("s1", logic.XorAll(2),
		netlist.Fanin{From: a}, netlist.Fanin{From: a}) // placeholder
	t1 := c.AddGate("t1", logic.AndAll(2),
		netlist.Fanin{From: s1}, netlist.Fanin{From: b})
	t2 := c.AddGate("t2", logic.OrAll(2),
		netlist.Fanin{From: t1}, netlist.Fanin{From: a})
	s2 := c.AddGate("s2", logic.XorAll(2),
		netlist.Fanin{From: t2}, netlist.Fanin{From: a}) // placeholder slot 1
	c.Nodes[s1].Fanins[1] = netlist.Fanin{From: s2, Weight: 1}
	c.Nodes[s2].Fanins[1] = netlist.Fanin{From: s2, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("q", s2, 0)
	c.AddPO("r", t1, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFlowSYNSBaseline(t *testing.T) {
	c := mealyish(t)
	res, err := FlowSYNS(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapped.Check(); err != nil {
		t.Fatal(err)
	}
	if !res.Mapped.IsKBounded(5) {
		t.Fatal("not K-bounded")
	}
	if res.Mapped.NumFFs() == 0 {
		t.Fatal("registers lost in merge")
	}
	if res.Phi < 1 {
		t.Fatalf("phi = %d", res.Phi)
	}
	rng := rand.New(rand.NewSource(3))
	vecs := sim.RandomVectors(rng, 200, 2)
	if err := sim.CompareAligned(c, res.Mapped, res.OrigOf, vecs, 6); err != nil {
		t.Fatalf("FlowSYN-s merged network diverges: %v", err)
	}
}

func TestFlowSYNSNeverBeatsTurboSYN(t *testing.T) {
	c := mealyish(t)
	fsns, err := FlowSYNS(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	ts, err := core.Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Phi > fsns.Phi {
		t.Fatalf("TurboSYN (%d) worse than FlowSYN-s (%d)", ts.Phi, fsns.Phi)
	}
}

func TestPackReducesLUTs(t *testing.T) {
	// Chain of 1-input LUTs (buffers) into a final AND: packing must
	// collapse the chain.
	c := netlist.NewCircuit("bufchain")
	a := c.AddPI("a")
	b := c.AddPI("b")
	g := c.AddGate("b1", logic.Buf(), netlist.Fanin{From: a})
	g = c.AddGate("b2", logic.Inv(), netlist.Fanin{From: g})
	g = c.AddGate("b3", logic.Buf(), netlist.Fanin{From: g})
	and := c.AddGate("and", logic.AndAll(2),
		netlist.Fanin{From: g}, netlist.Fanin{From: b})
	c.AddPO("z", and, 0)
	packed, _, err := Pack(c, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if packed.NumGates() != 1 {
		t.Fatalf("packed to %d LUTs, want 1", packed.NumGates())
	}
	eq, err := sim.CombEquivalent(c, packed, 4)
	if err != nil || !eq {
		t.Fatalf("packing changed function (%v %v)", eq, err)
	}
}

func TestPackDedupes(t *testing.T) {
	c := netlist.NewCircuit("dup")
	a := c.AddPI("a")
	b := c.AddPI("b")
	g1 := c.AddGate("g1", logic.AndAll(2), netlist.Fanin{From: a}, netlist.Fanin{From: b})
	g2 := c.AddGate("g2", logic.AndAll(2), netlist.Fanin{From: a}, netlist.Fanin{From: b})
	o := c.AddGate("o", logic.XorAll(2), netlist.Fanin{From: g1}, netlist.Fanin{From: g2})
	c.AddPO("z", o, 0)
	packed, _, err := Pack(c, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// XOR(x,x) == 0; after dedupe the xor LUT sees one input twice. The
	// result must stay correct (constant false).
	eq, err := sim.CombEquivalent(c, packed, 4)
	if err != nil || !eq {
		t.Fatalf("dedupe broke function (%v %v)", eq, err)
	}
	if packed.NumGates() > 2 {
		t.Fatalf("dedupe failed: %d gates", packed.NumGates())
	}
}

func TestPackPreservesRegistersAndTiming(t *testing.T) {
	c := mealyish(t)
	res, err := core.Minimize(c, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	packed, origOf, err := Pack(res.Mapped, 5, res.OrigOf)
	if err != nil {
		t.Fatal(err)
	}
	if packed.NumGates() > res.Mapped.NumGates() {
		t.Fatal("packing increased LUT count")
	}
	if got := retime.MaxCycleRatioCeil(packed); got > res.Phi {
		t.Fatalf("packing broke the ratio: %d > %d", got, res.Phi)
	}
	if _, ok := retime.RetimeForPeriod(packed, res.Phi, true); !ok {
		t.Fatal("packed network cannot realize phi")
	}
	rng := rand.New(rand.NewSource(5))
	vecs := sim.RandomVectors(rng, 200, 2)
	if err := sim.CompareAligned(c, packed, origOf, vecs, 6); err != nil {
		t.Fatalf("packed network diverges: %v", err)
	}
}

func TestFlowMapRejectsSequential(t *testing.T) {
	c := mealyish(t)
	if _, err := FlowMap(c, 5); err == nil {
		t.Fatal("sequential input accepted by FlowMap")
	}
	if _, err := FlowSYN(c, 5); err == nil {
		t.Fatal("sequential input accepted by FlowSYN")
	}
}
