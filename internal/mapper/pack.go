package mapper

import (
	"fmt"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// Pack reduces the LUT count of a mapped network without touching its
// timing-relevant structure, in the spirit of the paper's mpack/flowpack
// post-processing:
//
//   - duplicate elimination: LUTs with identical functions and identical
//     fanin lists merge;
//   - collapsing: a LUT with a single fanout, reached over a register-free
//     connection, folds into its consumer when the merged support still
//     fits K inputs.
//
// Both moves only shorten or preserve combinational paths, so any clock
// period/MDR target met before packing is still met after. The origOf
// stream map (see core.Result) is carried through; pass nil if not needed.
func Pack(c *netlist.Circuit, k int, origOf []int) (*netlist.Circuit, []int, error) {
	if origOf != nil && len(origOf) != c.NumNodes() {
		return nil, nil, fmt.Errorf("mapper: origOf has %d entries for %d nodes",
			len(origOf), c.NumNodes())
	}
	work := c.Clone()
	for {
		changed := dedupe(work)
		if collapse(work, k) {
			changed = true
		}
		if !changed {
			break
		}
	}
	return compact(work, origOf)
}

// dedupe rewires consumers of functionally identical LUTs (same truth table
// and same fanin list) onto a single representative. Dead LUTs are swept by
// compact at the end.
func dedupe(c *netlist.Circuit) bool {
	type key struct {
		fn     string
		fanins string
	}
	seen := make(map[key]int)
	repl := make(map[int]int)
	for _, n := range c.Nodes {
		if n.Kind != netlist.Gate {
			continue
		}
		fs := ""
		for _, f := range n.Fanins {
			fs += fmt.Sprintf("%d@%d,", f.From, f.Weight)
		}
		k := key{fn: n.Func.String(), fanins: fs}
		if rep, ok := seen[k]; ok {
			repl[n.ID] = rep
		} else {
			seen[k] = n.ID
		}
	}
	if len(repl) == 0 {
		return false
	}
	// Only actual rewires count as progress: the dead duplicates linger in
	// the node list until compact and must not retrigger the fixpoint loop.
	rewired := false
	for _, n := range c.Nodes {
		for i := range n.Fanins {
			if rep, ok := repl[n.Fanins[i].From]; ok && n.Fanins[i].From != rep {
				n.Fanins[i].From = rep
				rewired = true
			}
		}
	}
	if rewired {
		c.InvalidateCaches()
	}
	return rewired
}

// collapse folds single-fanout LUTs into their consumers where the merged
// support fits k.
func collapse(c *netlist.Circuit, k int) bool {
	changed := false
	for _, v := range c.Nodes {
		if v.Kind != netlist.Gate {
			continue
		}
	retry:
		for slot := 0; slot < len(v.Fanins); slot++ {
			f := v.Fanins[slot]
			u := c.Nodes[f.From]
			if f.Weight != 0 || u.Kind != netlist.Gate || u.ID == v.ID {
				continue
			}
			if len(c.Fanouts(u.ID)) != 1 {
				continue
			}
			// Merged fanin list: v's fanins minus slot, plus u's fanins,
			// with duplicates shared.
			merged := make([]netlist.Fanin, 0, len(v.Fanins)+len(u.Fanins))
			// index of each distinct fanin in merged
			pos := make(map[netlist.Fanin]int)
			addFanin := func(fn netlist.Fanin) int {
				if p, ok := pos[fn]; ok {
					return p
				}
				pos[fn] = len(merged)
				merged = append(merged, fn)
				return len(merged) - 1
			}
			// u's output becomes an internal signal of the merged LUT.
			vVarOf := make([]int, len(v.Fanins)) // v fanin -> merged var (or -1 for u)
			for i, vf := range v.Fanins {
				if i == slot {
					vVarOf[i] = -1
					continue
				}
				vVarOf[i] = addFanin(vf)
			}
			uVarOf := make([]int, len(u.Fanins))
			for i, uf := range u.Fanins {
				uVarOf[i] = addFanin(uf)
			}
			if len(merged) > k {
				continue
			}
			// Compose the merged function over the merged variables.
			m := len(merged)
			subs := make([]*logic.TT, len(v.Fanins))
			uSubs := make([]*logic.TT, len(u.Fanins))
			for i, mv := range uVarOf {
				uSubs[i] = logic.Var(m, mv)
			}
			var uTT *logic.TT
			if len(uSubs) == 0 {
				_, val := u.Func.IsConst()
				uTT = logic.Const(m, val)
			} else {
				uTT = u.Func.Compose(uSubs)
			}
			for i, mv := range vVarOf {
				if mv == -1 {
					subs[i] = uTT
				} else {
					subs[i] = logic.Var(m, mv)
				}
			}
			var newFn *logic.TT
			if len(subs) == 0 {
				_, val := v.Func.IsConst()
				newFn = logic.Const(m, val)
			} else {
				newFn = v.Func.Compose(subs)
			}
			v.Func = newFn
			v.Fanins = merged
			c.InvalidateCaches()
			changed = true
			goto retry
		}
	}
	return changed
}

// compact rebuilds the circuit keeping only nodes reachable (backwards)
// from the POs, and remaps origOf.
func compact(c *netlist.Circuit, origOf []int) (*netlist.Circuit, []int, error) {
	live := make([]bool, c.NumNodes())
	var stack []int
	for _, po := range c.POs {
		live[po] = true
		stack = append(stack, po)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Nodes[id].Fanins {
			if !live[f.From] {
				live[f.From] = true
				stack = append(stack, f.From)
			}
		}
	}
	m := netlist.NewCircuit(c.Name)
	newID := make([]int, c.NumNodes())
	for i := range newID {
		newID[i] = -1
	}
	for _, pi := range c.PIs { // keep all PIs: the interface is fixed
		newID[pi] = m.AddPI(c.Nodes[pi].Name)
	}
	for _, n := range c.Nodes {
		if n.Kind == netlist.Gate && live[n.ID] {
			newID[n.ID] = m.AddGate(n.Name, logic.Const(0, false))
		}
	}
	for _, n := range c.Nodes {
		if n.Kind != netlist.Gate || !live[n.ID] {
			continue
		}
		g := m.Nodes[newID[n.ID]]
		g.Func = n.Func
		for _, f := range n.Fanins {
			g.Fanins = append(g.Fanins, netlist.Fanin{From: newID[f.From], Weight: f.Weight})
		}
	}
	for _, po := range c.POs {
		f := c.Nodes[po].Fanins[0]
		newID[po] = m.AddPO(c.Nodes[po].Name, newID[f.From], f.Weight)
	}
	m.InvalidateCaches()
	if err := m.Check(); err != nil {
		return nil, nil, fmt.Errorf("mapper: packed network malformed: %v", err)
	}
	var newOrig []int
	if origOf != nil {
		newOrig = make([]int, m.NumNodes())
		for i := range newOrig {
			newOrig[i] = -1
		}
		for old, nid := range newID {
			if nid >= 0 {
				newOrig[nid] = origOf[old]
			}
		}
	}
	return m, newOrig, nil
}
