// Package mapper provides the combinational mapping entry points (FlowMap,
// FlowSYN) built on the same label engine as the sequential algorithms, the
// FlowSYN-s baseline of the paper's experiments (cut the sequential circuit
// at its registers, map every combinational island, merge back), and the
// post-mapping LUT packing that reduces area.
package mapper

import (
	"context"
	"fmt"

	"turbosyn/internal/core"
	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
	"turbosyn/internal/retime"
)

// combOptions returns core options tuned for exact combinational mapping:
// expansions must reach the primary inputs, so candidate expansion is
// unbounded (the circuit is acyclic, so it terminates).
func combOptions(k int, decompose bool) core.Options {
	opts := core.DefaultOptions()
	opts.K = k
	opts.Decompose = decompose
	opts.Pipelined = false
	opts.LowDepth = 1 << 20
	opts.MaxExpand = 1 << 22
	return opts
}

// FlowMap computes a depth-optimal K-LUT mapping of a combinational
// circuit (Cong–Ding). The result's Phi is the LUT depth.
func FlowMap(c *netlist.Circuit, k int) (*core.Result, error) {
	if c.NumFFs() != 0 {
		return nil, fmt.Errorf("mapper: FlowMap needs a combinational circuit")
	}
	return core.Minimize(c, combOptions(k, false))
}

// FlowSYN maps a combinational circuit with Boolean resynthesis (functional
// decomposition), reaching depths below FlowMap's structural optimum.
func FlowSYN(c *netlist.Circuit, k int) (*core.Result, error) {
	if c.NumFFs() != 0 {
		return nil, fmt.Errorf("mapper: FlowSYN needs a combinational circuit")
	}
	return core.Minimize(c, combOptions(k, true))
}

// FlowSYNS is the paper's FlowSYN-s baseline for sequential circuits: cut
// the circuit at every register, map the combinational islands with FlowSYN,
// merge the mapped islands with the original registers, and report the
// minimum clock period of the merged network under retiming and pipelining.
func FlowSYNS(c *netlist.Circuit, k int) (*core.Result, error) {
	return FlowSYNSContext(context.Background(), c, k)
}

// FlowSYNSContext is FlowSYNS under a context: cancellation aborts the
// island mapping and surfaces as a *core.CancelError.
func FlowSYNSContext(ctx context.Context, c *netlist.Circuit, k int) (*core.Result, error) {
	if err := c.Check(); err != nil {
		return nil, err
	}
	split, bound := splitAtRegisters(c)
	res, err := core.MinimizeContext(ctx, split, combOptions(k, true))
	if err != nil {
		if core.IsAbort(err) {
			return nil, err // keep the structured error reachable by errors.As
		}
		return nil, fmt.Errorf("mapper: FlowSYN-s island mapping: %v", err)
	}
	merged, origOf, err := merge(c, split, bound, res)
	if err != nil {
		return nil, err
	}
	phi, _ := retime.MinPeriodPipelined(merged)
	return &core.Result{
		Phi:    phi,
		Mapped: merged,
		LUTs:   merged.NumGates(),
		OrigOf: origOf,
		Stats:  res.Stats,
		Opts:   res.Opts,
	}, nil
}

// boundary records the correspondence between the original circuit and its
// register-free split.
type boundary struct {
	toSplit  []int          // original node id -> split node id (PIs, gates)
	pseudoPI map[int][2]int // split pseudo-PI id -> (original source, weight)
}

// splitAtRegisters builds the combinational circuit obtained by replacing
// every registered connection with a pseudo primary input, and exposing
// every register driver as a pseudo primary output (so it is mapped).
func splitAtRegisters(c *netlist.Circuit) (*netlist.Circuit, *boundary) {
	s := netlist.NewCircuit(c.Name + "_split")
	b := &boundary{
		toSplit:  make([]int, c.NumNodes()),
		pseudoPI: make(map[int][2]int),
	}
	for i := range b.toSplit {
		b.toSplit[i] = -1
	}
	for _, pi := range c.PIs {
		b.toSplit[pi] = s.AddPI(c.Nodes[pi].Name)
	}
	// Pseudo PIs, one per distinct (source, weight >= 1) pair in use.
	pseudo := make(map[[2]int]int)
	pseudoID := func(from, w int) int {
		key := [2]int{from, w}
		if id, ok := pseudo[key]; ok {
			return id
		}
		id := s.AddPI(fmt.Sprintf("ps$%d$%d", from, w))
		pseudo[key] = id
		b.pseudoPI[id] = key
		return id
	}
	// Gates in two passes (placeholders, then wiring), like the other
	// netlist transformers, although the split is acyclic by construction.
	for _, n := range c.Nodes {
		if n.Kind == netlist.Gate {
			b.toSplit[n.ID] = s.AddGate(n.Name, logic.Const(0, false)) // wired below
		}
	}
	regDriver := make(map[int]bool)
	for _, n := range c.Nodes {
		if n.Kind != netlist.Gate {
			continue
		}
		g := s.Nodes[b.toSplit[n.ID]]
		g.Func = n.Func
		for _, f := range n.Fanins {
			if f.Weight == 0 {
				g.Fanins = append(g.Fanins, netlist.Fanin{From: b.toSplit[f.From]})
			} else {
				g.Fanins = append(g.Fanins, netlist.Fanin{From: pseudoID(f.From, f.Weight)})
				regDriver[f.From] = true
			}
		}
	}
	for _, po := range c.POs {
		f := c.Nodes[po].Fanins[0]
		if f.Weight == 0 {
			s.AddPO(c.Nodes[po].Name, b.toSplit[f.From], 0)
		} else {
			s.AddPO(c.Nodes[po].Name, pseudoID(f.From, f.Weight), 0)
			regDriver[f.From] = true
		}
	}
	// Register drivers that are gates must be mapped: expose as pseudo POs.
	for from := range regDriver {
		if c.Nodes[from].Kind == netlist.Gate {
			s.AddPO(fmt.Sprintf("po$%d", from), b.toSplit[from], 0)
		}
	}
	s.InvalidateCaches()
	return s, b
}

// merge rewires the mapped split network back into a sequential circuit.
func merge(c, split *netlist.Circuit, b *boundary, res *core.Result) (*netlist.Circuit, []int, error) {
	mapped := res.Mapped
	// splitDriver[sid] = mapped node computing split node sid's function
	// (for split PIs and gates that were covered).
	splitOf := res.OrigOf // mapped node -> split node
	mappedOf := make([]int, split.NumNodes())
	for i := range mappedOf {
		mappedOf[i] = -1
	}
	for mid, sid := range splitOf {
		if sid >= 0 && mapped.Nodes[mid].Kind != netlist.PO {
			mappedOf[sid] = mid
		}
	}
	// Resolve a fanin of the merged circuit for a mapped-network fanin.
	m := netlist.NewCircuit(c.Name + "_flowsyns")
	newID := make([]int, mapped.NumNodes())
	for i := range newID {
		newID[i] = -1
	}
	// Copy PIs (skip pseudo PIs).
	isPseudo := make([]bool, mapped.NumNodes())
	for mid, sid := range splitOf {
		if sid >= 0 {
			if _, ok := b.pseudoPI[sid]; ok && mapped.Nodes[mid].Kind == netlist.PI {
				isPseudo[mid] = true
			}
		}
	}
	splitToOrig := make([]int, split.NumNodes())
	for i := range splitToOrig {
		splitToOrig[i] = -1
	}
	for oid, sid := range b.toSplit {
		if sid >= 0 {
			splitToOrig[sid] = oid
		}
	}
	origOfMapped := func(mid int) int {
		sid := splitOf[mid]
		if sid < 0 {
			return -1
		}
		return splitToOrig[sid]
	}
	for _, pi := range mapped.PIs {
		if isPseudo[pi] {
			continue
		}
		newID[pi] = m.AddPI(mapped.Nodes[pi].Name)
	}
	// Gate placeholders.
	for _, n := range mapped.Nodes {
		if n.Kind == netlist.Gate {
			newID[n.ID] = m.AddGate(n.Name, logic.Const(0, false)) // wired below
		}
	}
	// resolveFanin maps a mapped-network fanin to the merged circuit,
	// replacing pseudo-PI references by registered edges from the LUT (or
	// PI) computing the original source.
	resolveFanin := func(f netlist.Fanin) (netlist.Fanin, error) {
		src := f.From
		if !isPseudo[src] {
			return netlist.Fanin{From: newID[src], Weight: f.Weight}, nil
		}
		key := b.pseudoPI[splitOf[src]]
		origSrc, w := key[0], key[1]
		driver := newID[mappedOf[b.toSplit[origSrc]]]
		if driver < 0 {
			return netlist.Fanin{}, fmt.Errorf("mapper: register driver %d unmapped", origSrc)
		}
		return netlist.Fanin{From: driver, Weight: f.Weight + w}, nil
	}
	for _, n := range mapped.Nodes {
		if n.Kind != netlist.Gate {
			continue
		}
		g := m.Nodes[newID[n.ID]]
		g.Func = n.Func
		for _, f := range n.Fanins {
			rf, err := resolveFanin(f)
			if err != nil {
				return nil, nil, err
			}
			g.Fanins = append(g.Fanins, rf)
		}
	}
	// Real POs only (pseudo POs and their names start with "po$").
	for _, po := range mapped.POs {
		name := mapped.Nodes[po].Name
		sid := splitOf[po]
		if sid >= 0 {
			sname := split.Nodes[sid].Name
			if len(sname) >= 3 && sname[:3] == "po$" {
				continue // pseudo PO
			}
		}
		f := mapped.Nodes[po].Fanins[0]
		rf, err := resolveFanin(f)
		if err != nil {
			return nil, nil, err
		}
		m.AddPO(name, rf.From, rf.Weight)
	}
	m.InvalidateCaches()
	if err := m.Check(); err != nil {
		return nil, nil, fmt.Errorf("mapper: merged network malformed: %v", err)
	}
	// Origin map into the ORIGINAL circuit.
	origOf := make([]int, m.NumNodes())
	for i := range origOf {
		origOf[i] = -1
	}
	for mid, nid := range newID {
		if nid >= 0 {
			origOf[nid] = origOfMapped(mid)
		}
	}
	// Merged POs correspond to original POs in order.
	realPOs := 0
	for _, po := range c.POs {
		if realPOs < len(m.POs) {
			origOf[m.POs[realPOs]] = po
			realPOs++
		}
	}
	return m, origOf, nil
}
