package mapper

import (
	"math/rand"
	"testing"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
	"turbosyn/internal/retime"
	"turbosyn/internal/sim"
)

// randomSequential mirrors the core test generator (named gates so the
// merge's bookkeeping is exercised with and without names).
func randomSequential(rng *rand.Rand, nGates, k int) *netlist.Circuit {
	c := netlist.NewCircuit("rnd")
	nPI := 2 + rng.Intn(3)
	ids := make([]int, 0, nGates+nPI)
	for i := 0; i < nPI; i++ {
		ids = append(ids, c.AddPI(string(rune('a'+i))))
	}
	var gates []int
	for i := 0; i < nGates; i++ {
		nf := 1 + rng.Intn(k)
		fanins := make([]netlist.Fanin, nf)
		for j := range fanins {
			fanins[j] = netlist.Fanin{From: ids[rng.Intn(len(ids))], Weight: rng.Intn(2)}
		}
		fn := logic.NewTT(nf)
		for b := 0; b < fn.NumBits(); b++ {
			if rng.Intn(2) == 1 {
				fn.SetBit(b, true)
			}
		}
		id := c.AddGate("", fn, fanins...)
		ids = append(ids, id)
		gates = append(gates, id)
	}
	for i := 0; i < nGates/4; i++ {
		g := gates[rng.Intn(len(gates))]
		n := c.Nodes[g]
		n.Fanins[rng.Intn(len(n.Fanins))] = netlist.Fanin{
			From: gates[rng.Intn(len(gates))], Weight: 1 + rng.Intn(2),
		}
	}
	c.InvalidateCaches()
	for i := 0; i < 2; i++ {
		c.AddPO("z"+string(rune('0'+i)), gates[len(gates)-1-i], rng.Intn(2))
	}
	return c
}

func TestFlowSYNSRandomEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end sweep; skipped in -short")
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomSequential(rng, 10+rng.Intn(30), 5)
		if c.Check() != nil {
			continue
		}
		res, err := FlowSYNS(c, 5)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Mapped.Check(); err != nil {
			t.Fatalf("seed %d: merged network malformed: %v", seed, err)
		}
		if !res.Mapped.IsKBounded(5) {
			t.Fatalf("seed %d: not K-bounded", seed)
		}
		// phi must be realizable on the merged network.
		if _, ok := retime.RetimeForPeriod(res.Mapped, res.Phi, true); !ok {
			t.Fatalf("seed %d: reported phi %d not realizable", seed, res.Phi)
		}
		vecs := sim.RandomVectors(rng, 150, len(c.PIs))
		if err := sim.CompareAligned(c, res.Mapped, res.OrigOf, vecs, 12); err != nil {
			t.Fatalf("seed %d: merged network diverges: %v", seed, err)
		}
	}
}

func TestPackRandomEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end sweep; skipped in -short")
	}
	for seed := int64(40); seed < 55; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomSequential(rng, 10+rng.Intn(25), 5)
		if c.Check() != nil {
			continue
		}
		res, err := FlowSYNS(c, 5)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		packed, origOf, err := Pack(res.Mapped, 5, res.OrigOf)
		if err != nil {
			t.Fatalf("seed %d: pack: %v", seed, err)
		}
		if packed.NumGates() > res.Mapped.NumGates() {
			t.Fatalf("seed %d: pack grew the network", seed)
		}
		if got := retime.MaxCycleRatioCeil(packed); got > res.Phi {
			t.Fatalf("seed %d: pack broke the ratio: %d > %d", seed, got, res.Phi)
		}
		vecs := sim.RandomVectors(rng, 150, len(c.PIs))
		if err := sim.CompareAligned(c, packed, origOf, vecs, 12); err != nil {
			t.Fatalf("seed %d: packed network diverges: %v", seed, err)
		}
	}
}
