// Package jobqueue is the admission and scheduling layer of the synthesis
// daemon: a bounded, tenant-fair priority queue. Admission control happens
// at Enqueue — capacity bounds, per-tenant queue quotas and per-tenant
// token-bucket rate limits all reject with a *RejectError carrying a
// suggested Retry-After, so the HTTP layer can shed load instead of
// buffering it. Scheduling happens at Dequeue: among tenants with runnable
// jobs the one with the least work served so far goes first (fair share),
// within a tenant higher priority goes first, and within a priority FIFO
// order is kept. Ties break on tenant name, so the schedule is deterministic
// given the arrival order.
package jobqueue

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Config bounds the queue. Zero values select the defaults noted per field.
type Config struct {
	// Capacity bounds the total number of queued (not yet dequeued) jobs
	// across all tenants (default 256).
	Capacity int
	// PerTenant bounds the queued jobs of one tenant (default Capacity).
	PerTenant int
	// RatePerSec is the per-tenant token-bucket refill rate in jobs per
	// second (0 = no rate limit).
	RatePerSec float64
	// Burst is the token-bucket depth (default 1 when RatePerSec > 0).
	Burst int
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

func (c Config) fill() Config {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.PerTenant <= 0 {
		c.PerTenant = c.Capacity
	}
	if c.RatePerSec > 0 && c.Burst <= 0 {
		c.Burst = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Reason classifies one admission rejection.
type Reason string

// Rejection reasons.
const (
	// ReasonQueueFull: the queue's total capacity is exhausted.
	ReasonQueueFull Reason = "queue-full"
	// ReasonTenantQuota: the tenant's queued-job quota is exhausted.
	ReasonTenantQuota Reason = "tenant-quota"
	// ReasonRateLimited: the tenant's token bucket is empty.
	ReasonRateLimited Reason = "rate-limited"
	// ReasonClosed: the queue is draining and admits nothing.
	ReasonClosed Reason = "draining"
)

// RejectError is an admission refusal. RetryAfter is the suggested backoff
// before the caller tries again (how long until a token refills for
// rate-limited rejections; a heuristic for full queues; 0 for a draining
// queue, which will not come back).
type RejectError struct {
	Reason     Reason
	Tenant     string
	RetryAfter time.Duration
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("jobqueue: %s rejected for tenant %q (retry after %v)", e.Reason, e.Tenant, e.RetryAfter)
}

// Item is one queued job as handed to Dequeue.
type Item struct {
	Seq      uint64 // admission order, unique per queue
	Tenant   string
	Priority int // higher runs first within a tenant
	Payload  any
}

// tenantState is one tenant's book-keeping: its runnable items, its token
// bucket and its fair-share accounting.
type tenantState struct {
	name  string
	items []*Item // kept sorted: higher priority first, then FIFO

	// served counts the jobs this tenant has had dequeued; the fair-share
	// pick takes the tenant with the smallest served among those with
	// runnable work, so a backlogged tenant cannot starve a light one.
	served int

	// rejected counts this tenant's admission refusals by reason, so the
	// daemon's per-tenant shed gauges can tell a rate-limited tenant from
	// one crowded out by a full queue.
	rejected map[Reason]uint64

	// Token bucket (RatePerSec/Burst); tokens is a float so fractional
	// refill accumulates precisely.
	tokens   float64
	lastFill time.Time
}

// Queue is the admission-controlled, tenant-fair job queue. Safe for
// concurrent use.
type Queue struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantState
	queued  int
	nextSeq uint64
	closed  bool

	// Lifetime counters (see Stats).
	accepted uint64
	rejected map[Reason]uint64
	dequeued uint64
}

// New returns an empty queue.
func New(cfg Config) *Queue {
	q := &Queue{
		cfg:      cfg.fill(),
		tenants:  map[string]*tenantState{},
		rejected: map[Reason]uint64{},
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Enqueue admits one job or rejects it with a *RejectError. seq is the
// admission sequence number (unique, increasing).
func (q *Queue) Enqueue(tenant string, priority int, payload any) (seq uint64, err error) {
	return q.enqueue(tenant, priority, payload, true)
}

// EnqueueExempt is Enqueue without the rate limit — capacity and tenant
// quotas still apply. The daemon uses it to re-admit journal-recovered jobs
// at restart: they already spent a token when first accepted.
func (q *Queue) EnqueueExempt(tenant string, priority int, payload any) (seq uint64, err error) {
	return q.enqueue(tenant, priority, payload, false)
}

func (q *Queue) enqueue(tenant string, priority int, payload any, rated bool) (seq uint64, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		q.rejectLocked(tenant, ReasonClosed)
		return 0, &RejectError{Reason: ReasonClosed, Tenant: tenant}
	}
	if q.queued >= q.cfg.Capacity {
		q.rejectLocked(tenant, ReasonQueueFull)
		return 0, &RejectError{Reason: ReasonQueueFull, Tenant: tenant, RetryAfter: time.Second}
	}
	ts := q.tenant(tenant)
	if len(ts.items) >= q.cfg.PerTenant {
		q.rejectLocked(tenant, ReasonTenantQuota)
		return 0, &RejectError{Reason: ReasonTenantQuota, Tenant: tenant, RetryAfter: time.Second}
	}
	if rated && q.cfg.RatePerSec > 0 {
		now := q.cfg.Now()
		ts.refill(now, q.cfg)
		if ts.tokens < 1 {
			wait := time.Duration(float64(time.Second) * (1 - ts.tokens) / q.cfg.RatePerSec)
			q.rejectLocked(tenant, ReasonRateLimited)
			return 0, &RejectError{Reason: ReasonRateLimited, Tenant: tenant, RetryAfter: wait}
		}
		ts.tokens--
	}
	q.nextSeq++
	it := &Item{Seq: q.nextSeq, Tenant: tenant, Priority: priority, Payload: payload}
	// Insert keeping the bucket sorted by (priority desc, seq asc). Bulk
	// arrivals are appended near the tail, so the scan is short in practice.
	pos := len(ts.items)
	for pos > 0 && ts.items[pos-1].Priority < priority {
		pos--
	}
	ts.items = append(ts.items, nil)
	copy(ts.items[pos+1:], ts.items[pos:])
	ts.items[pos] = it
	q.queued++
	q.accepted++
	q.cond.Signal()
	return it.Seq, nil
}

// Dequeue blocks until a job is runnable (fair-share pick), the context is
// done, or the queue is closed and empty. ok is false in the latter two
// cases.
func (q *Queue) Dequeue(ctx context.Context) (item *Item, ok bool) {
	// Wake the cond wait when the context fires; stopped on return.
	if ctx == nil {
		ctx = context.Background()
	}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				q.cond.Broadcast()
			case <-stop:
			}
		}()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil, false
		}
		if ts := q.pickLocked(); ts != nil {
			it := ts.items[0]
			copy(ts.items, ts.items[1:])
			ts.items = ts.items[:len(ts.items)-1]
			ts.served++
			q.queued--
			q.dequeued++
			return it, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// rejectLocked bumps the queue-wide and per-tenant rejection counters.
func (q *Queue) rejectLocked(tenant string, r Reason) {
	q.rejected[r]++
	ts := q.tenant(tenant)
	if ts.rejected == nil {
		ts.rejected = map[Reason]uint64{}
	}
	ts.rejected[r]++
}

// pickLocked selects the tenant to serve next: least served first, tenant
// name as the deterministic tie-break.
func (q *Queue) pickLocked() *tenantState {
	var best *tenantState
	for _, ts := range q.tenants {
		if len(ts.items) == 0 {
			continue
		}
		if best == nil || ts.served < best.served || (ts.served == best.served && ts.name < best.name) {
			best = ts
		}
	}
	return best
}

// Close stops admission (Enqueue rejects with ReasonClosed) and lets
// Dequeue drain the remaining items; once empty, Dequeue returns ok=false.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Len reports the queued (admitted, not yet dequeued) job count.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// TenantStats is one tenant's accounting snapshot.
type TenantStats struct {
	Tenant   string            `json:"tenant"`
	Queued   int               `json:"queued"`
	Served   int               `json:"served"`
	Rejected map[Reason]uint64 `json:"rejected,omitempty"`
}

// Stats is a queue accounting snapshot.
type Stats struct {
	Queued   int               `json:"queued"`
	Accepted uint64            `json:"accepted"`
	Dequeued uint64            `json:"dequeued"`
	Rejected map[Reason]uint64 `json:"rejected"`
	Tenants  []TenantStats     `json:"tenants"`
}

// Stats snapshots the queue's accounting (tenants sorted by name).
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := Stats{
		Queued:   q.queued,
		Accepted: q.accepted,
		Dequeued: q.dequeued,
		Rejected: map[Reason]uint64{},
	}
	for r, n := range q.rejected {
		s.Rejected[r] = n
	}
	for _, ts := range q.tenants {
		if len(ts.items) == 0 && ts.served == 0 && len(ts.rejected) == 0 {
			continue
		}
		t := TenantStats{Tenant: ts.name, Queued: len(ts.items), Served: ts.served}
		if len(ts.rejected) > 0 {
			t.Rejected = map[Reason]uint64{}
			for r, n := range ts.rejected {
				t.Rejected[r] = n
			}
		}
		s.Tenants = append(s.Tenants, t)
	}
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Tenant < s.Tenants[j].Tenant })
	return s
}

func (q *Queue) tenant(name string) *tenantState {
	ts := q.tenants[name]
	if ts == nil {
		ts = &tenantState{name: name, tokens: float64(q.cfg.Burst), lastFill: q.cfg.Now()}
		q.tenants[name] = ts
	}
	return ts
}

// refill tops the token bucket up for the time elapsed since the last fill.
func (ts *tenantState) refill(now time.Time, cfg Config) {
	dt := now.Sub(ts.lastFill).Seconds()
	if dt <= 0 {
		return
	}
	ts.lastFill = now
	ts.tokens += dt * cfg.RatePerSec
	if max := float64(cfg.Burst); ts.tokens > max {
		ts.tokens = max
	}
}
