package jobqueue

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func drainOrder(t *testing.T, q *Queue, n int) []*Item {
	t.Helper()
	var out []*Item
	for i := 0; i < n; i++ {
		it, ok := q.Dequeue(context.Background())
		if !ok {
			t.Fatalf("dequeue %d: queue closed early", i)
		}
		out = append(out, it)
	}
	return out
}

// Fair share: a tenant with a deep backlog must not starve a light one —
// service alternates until the light tenant is drained.
func TestFairShareAcrossTenants(t *testing.T) {
	q := New(Config{Capacity: 64})
	for i := 0; i < 6; i++ {
		if _, err := q.Enqueue("heavy", 0, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := q.Enqueue("light", 0, i); err != nil {
			t.Fatal(err)
		}
	}
	got := drainOrder(t, q, 8)
	var tenants []string
	for _, it := range got {
		tenants = append(tenants, it.Tenant)
	}
	// served counts tie-break on name: heavy, light alternate, then heavy only.
	want := []string{"heavy", "light", "heavy", "light", "heavy", "heavy", "heavy", "heavy"}
	for i := range want {
		if tenants[i] != want[i] {
			t.Fatalf("service order %v, want %v", tenants, want)
		}
	}
}

// Within a tenant, higher priority first; FIFO within a priority.
func TestPriorityWithinTenant(t *testing.T) {
	q := New(Config{})
	seqs := map[int]uint64{}
	for i, prio := range []int{0, 5, 1, 5, 0} {
		s, err := q.Enqueue("t", prio, i)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = s
	}
	got := drainOrder(t, q, 5)
	want := []int{1, 3, 2, 0, 4} // payloads: prio 5 FIFO, then 1, then 0 FIFO
	for i, it := range got {
		if it.Payload.(int) != want[i] {
			t.Fatalf("dequeue order payloads %v, want %v", payloads(got), want)
		}
	}
	if seqs[0] >= seqs[1] {
		t.Fatalf("sequence numbers must increase with admission order")
	}
}

func payloads(items []*Item) []int {
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.Payload.(int)
	}
	return out
}

func TestCapacityAndTenantQuota(t *testing.T) {
	q := New(Config{Capacity: 3, PerTenant: 2})
	mustOK := func(tenant string) {
		t.Helper()
		if _, err := q.Enqueue(tenant, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	mustOK("a")
	mustOK("a")
	_, err := q.Enqueue("a", 0, nil)
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != ReasonTenantQuota {
		t.Fatalf("tenant over quota: got %v, want ReasonTenantQuota", err)
	}
	mustOK("b")
	_, err = q.Enqueue("c", 0, nil)
	if !errors.As(err, &rej) || rej.Reason != ReasonQueueFull {
		t.Fatalf("queue full: got %v, want ReasonQueueFull", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("full-queue rejection must carry a positive RetryAfter, got %v", rej.RetryAfter)
	}
}

func TestRateLimitWithRetryAfter(t *testing.T) {
	now := time.Unix(0, 0)
	q := New(Config{RatePerSec: 2, Burst: 2, Now: func() time.Time { return now }})
	for i := 0; i < 2; i++ {
		if _, err := q.Enqueue("t", 0, nil); err != nil {
			t.Fatalf("burst enqueue %d: %v", i, err)
		}
	}
	_, err := q.Enqueue("t", 0, nil)
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != ReasonRateLimited {
		t.Fatalf("got %v, want ReasonRateLimited", err)
	}
	if rej.RetryAfter <= 0 || rej.RetryAfter > time.Second {
		t.Fatalf("retry-after %v out of range (rate 2/s)", rej.RetryAfter)
	}
	// Tokens refill with the clock: half a second buys one job at 2/s.
	now = now.Add(500 * time.Millisecond)
	if _, err := q.Enqueue("t", 0, nil); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

// Close stops admission but lets queued items drain.
func TestCloseDrains(t *testing.T) {
	q := New(Config{})
	if _, err := q.Enqueue("t", 0, 1); err != nil {
		t.Fatal(err)
	}
	q.Close()
	var rej *RejectError
	if _, err := q.Enqueue("t", 0, 2); !errors.As(err, &rej) || rej.Reason != ReasonClosed {
		t.Fatalf("enqueue after close: got %v, want ReasonClosed", err)
	}
	if it, ok := q.Dequeue(context.Background()); !ok || it.Payload.(int) != 1 {
		t.Fatalf("close must drain queued items, got %v ok=%v", it, ok)
	}
	if _, ok := q.Dequeue(context.Background()); ok {
		t.Fatal("dequeue on closed empty queue must report ok=false")
	}
}

func TestDequeueContextCancel(t *testing.T) {
	q := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Dequeue(ctx)
		done <- ok
	}()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cancelled dequeue must report ok=false")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled dequeue did not return")
	}
}

// Concurrent producers and consumers under -race: every accepted item is
// dequeued exactly once.
func TestConcurrentProducersConsumers(t *testing.T) {
	q := New(Config{Capacity: 1 << 14})
	const producers, perProducer, consumers = 8, 200, 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := q.Enqueue("t"+string(rune('a'+p%3)), i%3, p*perProducer+i); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(p)
	}
	seen := make(chan int, producers*perProducer)
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				it, ok := q.Dequeue(context.Background())
				if !ok {
					return
				}
				seen <- it.Payload.(int)
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	close(seen)
	got := map[int]int{}
	for v := range seen {
		got[v]++
	}
	if len(got) != producers*perProducer {
		t.Fatalf("dequeued %d distinct items, want %d", len(got), producers*perProducer)
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("item %d dequeued %d times", v, n)
		}
	}
	st := q.Stats()
	if st.Accepted != producers*perProducer || st.Dequeued != st.Accepted || st.Queued != 0 {
		t.Fatalf("stats %+v inconsistent with full drain", st)
	}
}
