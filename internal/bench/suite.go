package bench

import (
	"fmt"
	"math/rand"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// Case is one benchmark circuit of the suite.
type Case struct {
	// Name follows the paper's roster; the circuit itself is a seeded
	// synthetic analog of the named benchmark (see package comment).
	Name    string
	Class   string // "mcnc-fsm" or "iscas89"
	Circuit *netlist.Circuit
}

// Suite generates the 16-circuit evaluation suite: 12 MCNC-FSM-style
// machines and 4 ISCAS'89-style sequential datapaths, every one
// deterministic (fixed seeds) and 2-bounded by construction (so any K >= 2
// works without preprocessing).
func Suite() []Case {
	type fsmRow struct {
		name string
		seed int64
		spec FSMSpec
	}
	fsms := []fsmRow{
		{"bbara", 101, FSMSpec{StateBits: 4, Inputs: 4, Outputs: 2, Cubes: 6, Span: 5}},
		{"bbsse", 102, FSMSpec{StateBits: 4, Inputs: 7, Outputs: 7, Cubes: 8, Span: 5, Mealy: true}},
		{"cse", 103, FSMSpec{StateBits: 4, Inputs: 7, Outputs: 7, Cubes: 10, Span: 6}},
		{"dk16", 104, FSMSpec{StateBits: 5, Inputs: 2, Outputs: 3, Cubes: 14, Span: 5}},
		{"keyb", 105, FSMSpec{StateBits: 5, Inputs: 7, Outputs: 2, Cubes: 12, Span: 6, Mealy: true}},
		{"kirkman", 106, FSMSpec{StateBits: 4, Inputs: 12, Outputs: 6, Cubes: 10, Span: 7}},
		{"planet", 107, FSMSpec{StateBits: 6, Inputs: 7, Outputs: 19, Cubes: 14, Span: 7}},
		{"pma", 108, FSMSpec{StateBits: 5, Inputs: 8, Outputs: 8, Cubes: 12, Span: 6}},
		{"s1", 109, FSMSpec{StateBits: 5, Inputs: 8, Outputs: 6, Cubes: 12, Span: 7, Mealy: true}},
		{"sand", 110, FSMSpec{StateBits: 5, Inputs: 11, Outputs: 9, Cubes: 14, Span: 7}},
		{"styr", 111, FSMSpec{StateBits: 5, Inputs: 9, Outputs: 10, Cubes: 14, Span: 7, Mealy: true}},
		{"tbk", 112, FSMSpec{StateBits: 5, Inputs: 6, Outputs: 3, Cubes: 18, Span: 8, Mealy: true}},
	}
	var out []Case
	for _, row := range fsms {
		rng := rand.New(rand.NewSource(row.seed))
		out = append(out, Case{
			Name:    row.name,
			Class:   "mcnc-fsm",
			Circuit: FSM(rng, row.name, row.spec),
		})
	}
	out = append(out,
		Case{"s420", "iscas89", Accumulator("s420", 16, []int{5, 11})},
		Case{"s838", "iscas89", Accumulator("s838", 32, []int{7, 19, 29})},
		Case{"s1423", "iscas89", mixed("s1423", 201, 24, 6)},
		Case{"s5378", "iscas89", mixed("s5378", 202, 48, 8)},
	)
	return out
}

// mixed couples an accumulator datapath with an FSM controller: the FSM
// gates the accumulator feedback, creating cross-coupled loops of both
// flavours (control SOPs and carry ripple).
func mixed(name string, seed int64, width, stateBits int) *netlist.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := Accumulator(name, width, []int{width / 3, 2 * width / 3})
	// Controller over fresh inputs plus taps of the accumulator state.
	spec := FSMSpec{StateBits: stateBits, Inputs: 2, Outputs: 2, Cubes: 10, Span: 6}
	ctl := FSM(rng, name+"_ctl", spec)
	graft(c, ctl, rng)
	return c
}

// graft merges circuit b into a, wiring b's inputs from signals of a and
// XOR-mixing b's output drivers into a random register path of a.
func graft(a, b *netlist.Circuit, rng *rand.Rand) {
	offset := make([]int, b.NumNodes())
	for i := range offset {
		offset[i] = -1
	}
	// Pick gate signals of a to stand in for b's PIs.
	var aGates []int
	for _, n := range a.Nodes {
		if n.Kind == netlist.Gate {
			aGates = append(aGates, n.ID)
		}
	}
	for _, pi := range b.PIs {
		offset[pi] = aGates[rng.Intn(len(aGates))]
	}
	for _, n := range b.Nodes {
		if n.Kind == netlist.Gate {
			offset[n.ID] = a.AddGate(b.Nodes[n.ID].Name+"$g", logic.Const(0, false))
		}
	}
	for _, n := range b.Nodes {
		if n.Kind != netlist.Gate {
			continue
		}
		g := a.Nodes[offset[n.ID]]
		g.Func = n.Func
		for _, f := range n.Fanins {
			g.Fanins = append(g.Fanins, netlist.Fanin{From: offset[f.From], Weight: f.Weight})
		}
	}
	// Mix b's PO drivers into a via XOR on some register edges of a.
	for _, po := range b.POs {
		f := b.Nodes[po].Fanins[0]
		src := offset[f.From]
		// find a registered fanin of a random gate of a and mix there
		for tries := 0; tries < 50; tries++ {
			g := a.Nodes[aGates[rng.Intn(len(aGates))]]
			mixed := false
			for i := range g.Fanins {
				if g.Fanins[i].Weight >= 1 {
					x := a.AddGate(fmt.Sprintf("%s$mix%d", b.Name, po),
						logic.XorAll(2), netlist.Fanin{From: g.Fanins[i].From, Weight: g.Fanins[i].Weight},
						netlist.Fanin{From: src, Weight: f.Weight + 1})
					g.Fanins[i] = netlist.Fanin{From: x}
					mixed = true
					break
				}
			}
			if mixed {
				break
			}
		}
	}
	a.InvalidateCaches()
}

// ScaleFSM generates the scalability-sweep machines: like FSM but sized by
// state bits directly (gates grow roughly linearly in stateBits*cubes) with
// a fixed span, deterministic in the name.
func ScaleFSM(name string, stateBits, cubes int) *netlist.Circuit {
	var seed int64 = 7
	for _, b := range []byte(name) {
		seed = seed*131 + int64(b)
	}
	rng := rand.New(rand.NewSource(seed))
	return FSM(rng, name, FSMSpec{
		StateBits: stateBits,
		Inputs:    8,
		Outputs:   8,
		Cubes:     cubes,
		Span:      6,
	})
}

// Scale10k is the ~10k-gate scale-push circuit: a 40-core interleaved
// fabric (ten independent clusters of four pipelined cores). Deterministic.
func Scale10k() *netlist.Circuit {
	return MultiCore("scale10k", MultiCoreSpec{Cores: 40, StateBits: 8, Cubes: 6, Span: 6})
}

// Scale100k is the ~100k-gate scale-push circuit (manual/nightly only; see
// Makefile bench-scale-100k). Deterministic.
func Scale100k() *netlist.Circuit {
	return MultiCore("scale100k", MultiCoreSpec{Cores: 148, StateBits: 12, Cubes: 10, Span: 6})
}
