// Package bench synthesizes the benchmark suite of the evaluation. The
// paper uses 12 MCNC FSM benchmarks and 4 ISCAS'89 circuits prepared with
// SIS and dmig; those netlists are not redistributable here, so the suite
// consists of seeded synthetic counterparts matched in scale and, more
// importantly, in the structural property the algorithms differ on: loops
// that carry wide, skewed combinational cones (next-state SOPs, rippling
// arithmetic with global feedback). See DESIGN.md, "Substitutions".
package bench

import (
	"fmt"
	"math/rand"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// FSMSpec sizes a synthetic finite-state machine.
type FSMSpec struct {
	StateBits int // registered state bits
	Inputs    int
	Outputs   int
	// Cubes per next-state/output SOP; literals per cube are chosen
	// randomly up to Span.
	Cubes int
	Span  int
	// Mealy wires inputs into the output logic.
	Mealy bool
}

// FSM generates a random machine: every state bit is computed by a skewed
// two-level SOP over a random span of state bits and inputs (linear AND/OR
// chains, the shape SIS-era netlists have before tree balancing), and
// registered with one flipflop. Deterministic in rng.
func FSM(rng *rand.Rand, name string, spec FSMSpec) *netlist.Circuit {
	c := netlist.NewCircuit(name)
	ins := make([]int, spec.Inputs)
	for i := range ins {
		ins[i] = c.AddPI(fmt.Sprintf("in%d", i))
	}
	// State bits arrive as registered edges from the next-state gates,
	// which do not exist yet: create placeholder buffers per state bit to
	// break the chicken-and-egg, then wire them to the SOP roots.
	state := make([]int, spec.StateBits)
	for i := range state {
		state[i] = c.AddGate(fmt.Sprintf("st%d", i), logic.Const(0, false))
	}
	// signalPool for SOP literals: inputs and state bits.
	pool := make([]netlist.Fanin, 0, len(ins)+len(state))
	for _, id := range ins {
		pool = append(pool, netlist.Fanin{From: id})
	}
	for _, id := range state {
		pool = append(pool, netlist.Fanin{From: id})
	}
	next := make([]int, spec.StateBits)
	for i := range next {
		next[i] = skewedSOP(c, rng, fmt.Sprintf("ns%d", i), pool, spec.Cubes, spec.Span)
	}
	// Close the loops: state bit i is next bit i delayed by one register.
	for i, st := range state {
		g := c.Nodes[st]
		g.Func = logic.Buf()
		g.Fanins = []netlist.Fanin{{From: next[i], Weight: 1}}
	}
	c.InvalidateCaches()
	for i := 0; i < spec.Outputs; i++ {
		o := skewedSOP(c, rng, fmt.Sprintf("out%d", i), outputPool(pool, spec, len(ins)), spec.Cubes, spec.Span)
		c.AddPO(fmt.Sprintf("po%d", i), o, 0)
	}
	c.InvalidateCaches()
	return c
}

func outputPool(pool []netlist.Fanin, spec FSMSpec, nIns int) []netlist.Fanin {
	if spec.Mealy {
		return pool
	}
	return pool[nIns:] // Moore: outputs see only the state
}

// skewedSOP builds a two-level SOP as linear chains of 2-input gates:
// each cube is a left-leaning AND chain over randomly chosen (possibly
// inverted) literals, and the cubes accumulate through a left-leaning OR
// chain. Returns the root gate id.
func skewedSOP(c *netlist.Circuit, rng *rand.Rand, name string, pool []netlist.Fanin, cubes, span int) int {
	if cubes < 1 {
		cubes = 1
	}
	if span < 1 {
		span = 1
	}
	var orChain int = -1
	for q := 0; q < cubes; q++ {
		nLit := 1 + rng.Intn(span)
		var andChain int = -1
		for l := 0; l < nLit; l++ {
			lit := pool[rng.Intn(len(pool))]
			if rng.Intn(3) == 0 { // inverted literal
				inv := c.AddGate(fmt.Sprintf("%s$q%dn%d", name, q, l), logic.Inv(), lit)
				lit = netlist.Fanin{From: inv}
			}
			if andChain == -1 {
				b := c.AddGate(fmt.Sprintf("%s$q%dl%d", name, q, l), logic.Buf(), lit)
				andChain = b
			} else {
				andChain = c.AddGate(fmt.Sprintf("%s$q%da%d", name, q, l),
					logic.AndAll(2), netlist.Fanin{From: andChain}, lit)
			}
		}
		if orChain == -1 {
			orChain = andChain
		} else {
			orChain = c.AddGate(fmt.Sprintf("%s$o%d", name, q),
				logic.OrAll(2), netlist.Fanin{From: orChain}, netlist.Fanin{From: andChain})
		}
	}
	return orChain
}

// Accumulator builds a width-bit ripple-carry accumulator with global
// XOR feedback taps (an LFSR-coupled adder): acc' = (acc + in) with the
// low bit additionally XORed with high-order taps. The feedback taps turn
// the whole datapath into one strongly connected component whose loops
// carry the full ripple chain — the structure where resynthesis shines.
func Accumulator(name string, width int, taps []int) *netlist.Circuit {
	c := netlist.NewCircuit(name)
	ins := make([]int, width)
	for i := range ins {
		ins[i] = c.AddPI(fmt.Sprintf("in%d", i))
	}
	// acc bits as placeholder buffers (registered from sum bits below).
	acc := make([]int, width)
	for i := range acc {
		acc[i] = c.AddGate(fmt.Sprintf("acc%d", i), logic.Const(0, false))
	}
	sum := make([]int, width)
	carry := -1
	for i := 0; i < width; i++ {
		a := netlist.Fanin{From: acc[i]}
		b := netlist.Fanin{From: ins[i]}
		x := c.AddGate(fmt.Sprintf("x%d", i), logic.XorAll(2), a, b)
		if carry == -1 {
			sum[i] = c.AddGate(fmt.Sprintf("s%d", i), logic.Buf(), netlist.Fanin{From: x})
			carry = c.AddGate(fmt.Sprintf("c%d", i), logic.AndAll(2), a, b)
		} else {
			sum[i] = c.AddGate(fmt.Sprintf("s%d", i), logic.XorAll(2),
				netlist.Fanin{From: x}, netlist.Fanin{From: carry})
			g1 := c.AddGate(fmt.Sprintf("g%d", i), logic.AndAll(2), a, b)
			g2 := c.AddGate(fmt.Sprintf("h%d", i), logic.AndAll(2),
				netlist.Fanin{From: x}, netlist.Fanin{From: carry})
			carry = c.AddGate(fmt.Sprintf("c%d", i), logic.OrAll(2),
				netlist.Fanin{From: g1}, netlist.Fanin{From: g2})
		}
	}
	// Feedback: next acc0 = sum0 XOR (XOR of tapped sum bits).
	fb := sum[0]
	for _, tp := range taps {
		if tp <= 0 || tp >= width {
			continue
		}
		fb = c.AddGate(fmt.Sprintf("fb%d", tp), logic.XorAll(2),
			netlist.Fanin{From: fb}, netlist.Fanin{From: sum[tp]})
	}
	nextOf := func(i int) int {
		if i == 0 {
			return fb
		}
		return sum[i]
	}
	for i, id := range acc {
		g := c.Nodes[id]
		g.Func = logic.Buf()
		g.Fanins = []netlist.Fanin{{From: nextOf(i), Weight: 1}}
	}
	c.InvalidateCaches()
	c.AddPO("carryout", carry, 0)
	c.AddPO("low", sum[0], 0)
	c.AddPO("high", sum[width-1], 0)
	return c
}

// Pipeline builds a deep feed-forward pipeline: `lanes` parallel chains of
// 2-input gates, `depth` stages long, with nearest-neighbour cross-links
// and a register bank every regEvery stages. The circuit is acyclic, so its
// SCC condensation is lanes*depth singleton components arranged in depth
// dependency ranks of only `lanes` components each — the exact shape that
// pathologizes level-synchronized scheduling (hundreds of near-empty
// levels, one barrier per stage) and that a dataflow scheduler with grain
// batching turns into long inline chains. Deterministic in its arguments.
func Pipeline(name string, lanes, depth, regEvery int) *netlist.Circuit {
	if lanes < 2 {
		lanes = 2
	}
	if depth < 1 {
		depth = 1
	}
	if regEvery < 1 {
		regEvery = 1
	}
	c := netlist.NewCircuit(name)
	prev := make([]int, lanes)
	for l := range prev {
		prev[l] = c.AddPI(fmt.Sprintf("in%d", l))
	}
	cur := make([]int, lanes)
	for t := 1; t <= depth; t++ {
		w := 0
		if t%regEvery == 0 {
			w = 1 // register bank: every stage-t input edge carries one FF
		}
		for l := 0; l < lanes; l++ {
			var fn *logic.TT
			switch (t + l) % 3 {
			case 0:
				fn = logic.AndAll(2)
			case 1:
				fn = logic.XorAll(2)
			default:
				fn = logic.OrAll(2)
			}
			cur[l] = c.AddGate(fmt.Sprintf("p%d_%d", t, l), fn,
				netlist.Fanin{From: prev[l], Weight: w},
				netlist.Fanin{From: prev[(l+1)%lanes], Weight: w})
		}
		prev, cur = cur, prev
	}
	for l := 0; l < lanes; l++ {
		c.AddPO(fmt.Sprintf("po%d", l), prev[l], 0)
	}
	c.InvalidateCaches()
	return c
}

// MultiCoreSpec sizes a synthetic multi-core fabric.
type MultiCoreSpec struct {
	Cores     int // total cores, chained in clusters of 4
	StateBits int // registered state bits per core
	Cubes     int // cubes per next-state SOP
	Span      int // literals per cube, up to
}

// MultiCore generates a many-core interleaved fabric: each core is an
// FSM-style block (StateBits registered next-state SOPs over shared inputs
// and its own state), and cores chain into clusters of four through
// pipelined interconnect — registered taps of the upstream core's state feed
// the downstream core's SOP literal pool. Every cross-core edge carries a
// register and points forward only, so the SCC condensation is Cores/4
// independent four-deep chains of per-core loop components: wide enough to
// keep a worker pool busy, deep enough that the dataflow scheduler's
// cross-component handoff is on the critical path. This is the 10k/100k
// scale-push topology (see DESIGN.md §11). Deterministic in name and spec.
func MultiCore(name string, spec MultiCoreSpec) *netlist.Circuit {
	var seed int64 = 7
	for _, b := range []byte(name) {
		seed = seed*131 + int64(b)
	}
	rng := rand.New(rand.NewSource(seed))
	c := netlist.NewCircuit(name)
	ins := make([]int, 8)
	for i := range ins {
		ins[i] = c.AddPI(fmt.Sprintf("in%d", i))
	}
	var prevState []int // upstream core's state bits; nil at cluster heads
	for k := 0; k < spec.Cores; k++ {
		// State bits as placeholder buffers, rewired to the SOP roots below
		// (the same chicken-and-egg break as FSM).
		state := make([]int, spec.StateBits)
		for i := range state {
			state[i] = c.AddGate(fmt.Sprintf("c%d_st%d", k, i), logic.Const(0, false))
		}
		pool := make([]netlist.Fanin, 0, len(ins)+len(state)+2)
		for _, id := range ins {
			pool = append(pool, netlist.Fanin{From: id})
		}
		for _, id := range state {
			pool = append(pool, netlist.Fanin{From: id})
		}
		if prevState != nil {
			// Pipelined interconnect: two registered taps of the upstream
			// core's state enter this core's literal pool.
			for t := 0; t < 2; t++ {
				src := prevState[(t*(len(prevState)-1))%len(prevState)]
				tap := c.AddGate(fmt.Sprintf("c%d_tap%d", k, t), logic.Buf(),
					netlist.Fanin{From: src, Weight: 1})
				pool = append(pool, netlist.Fanin{From: tap})
			}
		}
		next := make([]int, spec.StateBits)
		for i := range next {
			next[i] = skewedSOP(c, rng, fmt.Sprintf("c%d_ns%d", k, i), pool, spec.Cubes, spec.Span)
		}
		for i, st := range state {
			g := c.Nodes[st]
			g.Func = logic.Buf()
			g.Fanins = []netlist.Fanin{{From: next[i], Weight: 1}}
		}
		if k%4 == 3 || k == spec.Cores-1 {
			// Cluster tail: observe its state, start a fresh cluster next.
			c.AddPO(fmt.Sprintf("po%d", k), state[0], 0)
			prevState = nil
		} else {
			prevState = state
		}
	}
	c.InvalidateCaches()
	return c
}

// LFSR builds a Galois LFSR of the given width with XOR taps; a light
// sequential circuit whose loops map at ratio 1 (a sanity anchor in the
// suite).
func LFSR(name string, width int, taps []int) *netlist.Circuit {
	c := netlist.NewCircuit(name)
	en := c.AddPI("en")
	bits := make([]int, width)
	for i := range bits {
		bits[i] = c.AddGate(fmt.Sprintf("b%d", i), logic.Const(0, false))
	}
	isTap := make(map[int]bool)
	for _, t := range taps {
		isTap[t] = true
	}
	// next b_i = b_{i+1} (XOR b_0 if tapped); next b_{w-1} = b_0 AND en
	// (the enable keeps the machine input-driven).
	for i, id := range bits {
		g := c.Nodes[id]
		g.Func = logic.Buf()
		var src int
		switch {
		case i == width-1:
			src = c.AddGate("fbtop", logic.AndAll(2),
				netlist.Fanin{From: bits[0]}, netlist.Fanin{From: en})
		case isTap[i]:
			src = c.AddGate(fmt.Sprintf("t%d", i), logic.XorAll(2),
				netlist.Fanin{From: bits[i+1]}, netlist.Fanin{From: bits[0]})
		default:
			src = bits[i+1]
		}
		g.Fanins = []netlist.Fanin{{From: src, Weight: 1}}
	}
	c.InvalidateCaches()
	c.AddPO("out", bits[0], 0)
	return c
}
