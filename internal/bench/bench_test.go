package bench

import (
	"math/rand"
	"strings"
	"testing"

	"turbosyn/internal/graph"
	"turbosyn/internal/netlist"
	"turbosyn/internal/retime"
	"turbosyn/internal/sim"
)

func TestSuiteWellFormed(t *testing.T) {
	cases := Suite()
	if len(cases) != 16 {
		t.Fatalf("suite has %d cases, want 16", len(cases))
	}
	fsm, iscas := 0, 0
	for _, cs := range cases {
		if err := cs.Circuit.Check(); err != nil {
			t.Errorf("%s: %v", cs.Name, err)
			continue
		}
		if !cs.Circuit.IsKBounded(2) {
			t.Errorf("%s: not 2-bounded (max fanin %d)", cs.Name, cs.Circuit.MaxFanin())
		}
		if cs.Circuit.NumFFs() == 0 {
			t.Errorf("%s: no registers", cs.Name)
		}
		switch cs.Class {
		case "mcnc-fsm":
			fsm++
		case "iscas89":
			iscas++
		}
		// Every case must have at least one nontrivial SCC (loops are the
		// whole point of the evaluation).
		s := graph.StronglyConnected(cs.Circuit.Adj())
		nontrivial := false
		for comp := range s.Members {
			if !s.IsTrivial(cs.Circuit.Adj(), comp) {
				nontrivial = true
				break
			}
		}
		if !nontrivial {
			t.Errorf("%s: no loops", cs.Name)
		}
	}
	if fsm != 12 || iscas != 4 {
		t.Errorf("class split %d/%d, want 12/4", fsm, iscas)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := Suite()
	b := Suite()
	for i := range a {
		if a[i].Circuit.NumNodes() != b[i].Circuit.NumNodes() ||
			a[i].Circuit.NumFFs() != b[i].Circuit.NumFFs() {
			t.Fatalf("%s: suite not deterministic", a[i].Name)
		}
	}
}

func TestSuiteScales(t *testing.T) {
	// The roster must span roughly two orders of magnitude in gate count.
	minG, maxG := 1<<30, 0
	for _, cs := range Suite() {
		g := cs.Circuit.NumGates()
		if g < minG {
			minG = g
		}
		if g > maxG {
			maxG = g
		}
		t.Logf("%-8s %-8s gates=%4d ffs=%3d period=%d",
			cs.Name, cs.Class, g, cs.Circuit.NumFFs(), retime.Period(cs.Circuit))
	}
	if minG < 20 || maxG < 500 {
		t.Errorf("suite scale looks wrong: min %d max %d", minG, maxG)
	}
}

func TestAccumulatorBehaviour(t *testing.T) {
	// Without feedback taps, the accumulator must actually add: drive
	// in=1 once and watch the low bit toggle.
	c := Accumulator("acc4", 4, nil)
	s, err := sim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	one := make([]bool, 4)
	one[0] = true
	zero := make([]bool, 4)
	// acc starts 0; after adding 1 the low sum bit flips each cycle of
	// continuous add-1.
	v1 := s.Step(one) // sum = 0+1 = 1: low=1
	if !v1[1] {
		t.Fatalf("sum low bit wrong: %v", v1)
	}
	v2 := s.Step(one) // acc=1, +1: sum=2: low=0
	if v2[1] {
		t.Fatalf("second add wrong: %v", v2)
	}
	_ = zero
}

func TestLFSRCycles(t *testing.T) {
	c := LFSR("l8", 8, []int{2, 5})
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero state stays zero with en=0.
	for i := 0; i < 10; i++ {
		if out := s.Step([]bool{false}); out[0] {
			t.Fatal("LFSR self-activated")
		}
	}
}

func TestFSMGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := FSM(rng, "m", FSMSpec{StateBits: 4, Inputs: 3, Outputs: 2, Cubes: 5, Span: 4})
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	if c.NumFFs() != 4 {
		t.Fatalf("FF count %d, want 4 (one per state bit)", c.NumFFs())
	}
	if len(c.PIs) != 3 || len(c.POs) != 2 {
		t.Fatalf("interface %d/%d", len(c.PIs), len(c.POs))
	}
	// State must be reachable from inputs (machine not degenerate).
	s := graph.StronglyConnected(c.Adj())
	nontrivial := 0
	for comp := range s.Members {
		if !s.IsTrivial(c.Adj(), comp) {
			nontrivial++
		}
	}
	if nontrivial == 0 {
		t.Fatal("FSM has no state loops")
	}
}

func TestPipelineShape(t *testing.T) {
	const lanes, depth, regEvery = 8, 64, 8
	c := Pipeline("pipe", lanes, depth, regEvery)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	if g := c.NumGates(); g != lanes*depth {
		t.Fatalf("gate count %d, want %d", g, lanes*depth)
	}
	if c.NumFFs() == 0 {
		t.Fatal("pipeline has no register banks")
	}
	if !c.IsKBounded(2) {
		t.Fatalf("not 2-bounded (max fanin %d)", c.MaxFanin())
	}
	// The defining property: fully acyclic, so every SCC is a trivial
	// singleton and the condensation is a deep, narrow DAG — the shape that
	// starves level-synchronized scheduling.
	s := graph.StronglyConnected(c.Adj())
	for comp := range s.Members {
		if !s.IsTrivial(c.Adj(), comp) {
			t.Fatalf("component %d is nontrivial; pipeline must be acyclic", comp)
		}
	}
	levels := s.Levels()
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	if maxLevel < depth {
		t.Fatalf("condensation depth %d, want >= stage count %d", maxLevel, depth)
	}
	// Determinism: same arguments, same netlist.
	d := Pipeline("pipe", lanes, depth, regEvery)
	if d.NumNodes() != c.NumNodes() || d.NumFFs() != c.NumFFs() {
		t.Fatal("Pipeline not deterministic")
	}
}

func TestMixedGraftWellFormed(t *testing.T) {
	for _, cs := range Suite() {
		if cs.Name != "s1423" && cs.Name != "s5378" {
			continue
		}
		c := cs.Circuit
		if err := c.Check(); err != nil {
			t.Fatalf("%s: %v", cs.Name, err)
		}
		// The grafted controller must actually couple into the datapath:
		// at least one $mix gate exists and lies on a cycle.
		s := graph.StronglyConnected(c.Adj())
		found := false
		for _, n := range c.Nodes {
			if n.Kind != netlist.Gate || !strings.Contains(n.Name, "$mix") {
				continue
			}
			found = true
			if !s.IsTrivial(c.Adj(), s.Comp[n.ID]) {
				return // mixed into a loop: the interesting case holds
			}
		}
		if !found {
			t.Fatalf("%s: graft produced no mix gates", cs.Name)
		}
	}
}
