// Package experiments regenerates the paper's evaluation tables on the
// synthetic suite. Each Table* function prints one deliverable; the ids
// match the experiment index in DESIGN.md and the recorded outputs live in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"turbosyn/internal/bench"
	"turbosyn/internal/core"
	"turbosyn/internal/mapper"
	"turbosyn/internal/netlist"
	"turbosyn/internal/retime"
	"turbosyn/internal/stats"
)

// Config parameterizes a run.
type Config struct {
	K     int
	Quick bool // reduced workloads for smoke tests
	Out   io.Writer
}

// quickGateCap/quickFFCap bound circuit size in quick mode. They keep one
// non-trivial representative per class (bbsse and keyb for the FSMs, s420
// for the accumulators) while keeping the smoke test inside CI's plain
// `go test ./...` budget; register-heavy s838 alone costs more TurboSYN
// time than the rest of the quick suite combined.
const (
	quickGateCap = 500
	quickFFCap   = 16
)

func quickSkip(c *netlist.Circuit) bool {
	return c.NumGates() > quickGateCap || c.NumFFs() > quickFFCap
}

// caseResult bundles the three algorithms' outcomes on one circuit.
type caseResult struct {
	bench.Case
	fsns, tm, ts *core.Result
	fsnsCPU      time.Duration
	tmCPU        time.Duration
	tsCPU        time.Duration
}

var (
	suiteMu    sync.Mutex
	suiteCache = map[int][]caseResult{}
)

func turboMapOpts(k int) core.Options {
	o := core.Options{K: k, Decompose: false, PLD: true, Pipelined: true}
	return o
}

func turboSYNOpts(k int) core.Options {
	o := core.DefaultOptions()
	o.K = k
	return o
}

// runSuite maps every suite circuit with the three algorithms (cached per K).
func runSuite(cfg Config) ([]caseResult, error) {
	suiteMu.Lock()
	defer suiteMu.Unlock()
	if rs, ok := suiteCache[cfg.K]; ok {
		return rs, nil
	}
	var out []caseResult
	for _, cs := range bench.Suite() {
		if cfg.Quick && quickSkip(cs.Circuit) {
			continue
		}
		r := caseResult{Case: cs}
		var err error
		start := time.Now()
		r.fsns, err = mapper.FlowSYNS(cs.Circuit, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("%s/flowsyns: %v", cs.Name, err)
		}
		r.fsnsCPU = time.Since(start)
		start = time.Now()
		r.tm, err = core.Minimize(cs.Circuit, turboMapOpts(cfg.K))
		if err != nil {
			return nil, fmt.Errorf("%s/turbomap: %v", cs.Name, err)
		}
		r.tmCPU = time.Since(start)
		start = time.Now()
		r.ts, err = core.Minimize(cs.Circuit, turboSYNOpts(cfg.K))
		if err != nil {
			return nil, fmt.Errorf("%s/turbosyn: %v", cs.Name, err)
		}
		r.tsCPU = time.Since(start)
		// Area post-pass, identical for the three flows.
		for _, res := range []*core.Result{r.fsns, r.tm, r.ts} {
			packed, _, err := mapper.Pack(res.Mapped, cfg.K, res.OrigOf)
			if err != nil {
				return nil, fmt.Errorf("%s/pack: %v", cs.Name, err)
			}
			res.LUTs = packed.NumGates()
		}
		out = append(out, r)
	}
	suiteCache[cfg.K] = out
	return out, nil
}

// Table1 reproduces the paper's Table 1: minimum clock period (MDR ratio)
// under retiming + pipelining and CPU time for FlowSYN-s, TurboMap and
// TurboSYN. The paper reports period reductions of 1.72x (vs FlowSYN-s)
// and 1.96x (vs TurboMap).
func Table1(cfg Config) error {
	rs, err := runSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "Table 1: clock period (MDR ratio) under retiming+pipelining, K=%d\n", cfg.K)
	t := stats.NewTable("circuit", "class", "gate", "ff",
		"fsns.phi", "fsns.cpu", "tm.phi", "tm.cpu", "ts.phi", "ts.cpu")
	var fsnsPhi, tmPhi, tsPhi []float64
	for _, r := range rs {
		// TurboSYN's search space contains TurboMap's (it seeds from
		// TurboMap's optimum and only adds resynthesis moves), so losing a
		// row to TurboMap is a bug, not a data point. The FlowSYN-s
		// comparison, by contrast, is empirical: the baseline maps acyclic
		// islands and can win or lose on any given circuit.
		if r.ts.Phi > r.tm.Phi {
			return fmt.Errorf("%s: TurboSYN phi %d worse than TurboMap phi %d",
				r.Name, r.ts.Phi, r.tm.Phi)
		}
		t.AddRow(r.Name, r.Class, r.Circuit.NumGates(), r.Circuit.NumFFs(),
			r.fsns.Phi, cpu(r.fsnsCPU), r.tm.Phi, cpu(r.tmCPU), r.ts.Phi, cpu(r.tsCPU))
		fsnsPhi = append(fsnsPhi, float64(r.fsns.Phi))
		tmPhi = append(tmPhi, float64(r.tm.Phi))
		tsPhi = append(tsPhi, float64(r.ts.Phi))
	}
	t.Render(cfg.Out)
	fmt.Fprintf(cfg.Out,
		"geomean period ratio: FlowSYN-s/TurboSYN = %.2f, TurboMap/TurboSYN = %.2f\n",
		stats.RatioSummary(fsnsPhi, tsPhi), stats.RatioSummary(tmPhi, tsPhi))
	fmt.Fprintf(cfg.Out, "paper reports:        FlowSYN-s/TurboSYN = 1.72, TurboMap/TurboSYN = 1.96\n")
	return nil
}

// Table2 reproduces the paper's area comparison: LUT counts after packing.
// The paper observes that TurboSYN loses area to both baselines because of
// single-output functional decomposition.
func Table2(cfg Config) error {
	rs, err := runSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "Table 2: LUT counts after packing, K=%d\n", cfg.K)
	t := stats.NewTable("circuit", "fsns.luts", "tm.luts", "ts.luts")
	var fsns, tm, ts []float64
	for _, r := range rs {
		t.AddRow(r.Name, r.fsns.LUTs, r.tm.LUTs, r.ts.LUTs)
		fsns = append(fsns, float64(r.fsns.LUTs))
		tm = append(tm, float64(r.tm.LUTs))
		ts = append(ts, float64(r.ts.LUTs))
	}
	t.Render(cfg.Out)
	fmt.Fprintf(cfg.Out,
		"geomean LUT ratio: TurboSYN/FlowSYN-s = %.2f, TurboSYN/TurboMap = %.2f (paper: TurboSYN loses area)\n",
		stats.RatioSummary(ts, fsns), stats.RatioSummary(ts, tm))
	return nil
}

// TablePLD reproduces the 10-50x positive-loop-detection speedup: deciding
// an infeasible target ratio with the PLD suite versus the conservative n^2
// stopping rule of SeqMapII. The n^2 runs are capped (entries marked '>').
func TablePLD(cfg Config) error {
	fmt.Fprintf(cfg.Out, "PLD ablation: infeasible-target probes, K=%d\n", cfg.K)
	t := stats.NewTable("circuit", "target", "iters.pld", "iters.n2",
		"cpu.pld", "cpu.n2", "speedup")
	rs, err := runSuite(cfg)
	if err != nil {
		return err
	}
	var speedups []float64
	for _, r := range rs {
		target := r.tm.Phi - 1
		if target < 1 {
			continue
		}
		on := turboMapOpts(cfg.K)
		start := time.Now()
		okOn, statsOn, err := core.Feasible(r.Circuit, target, on)
		if err != nil {
			return err
		}
		dOn := time.Since(start)
		// The n^2 rule is given up to 100x the PLD iteration count (capped
		// rows report lower bounds '>'); anything more only burns hours to
		// prove a larger factor.
		budget := 100 * statsOn.Iterations
		budgetCap := 200000
		if cfg.Quick {
			// The smoke test only needs the ablation exercised, not a tight
			// lower bound on the speedup factor.
			budgetCap = 2000
		}
		if budget > budgetCap {
			budget = budgetCap
		}
		off := on
		off.PLD = false
		off.IterBudget = budget
		start = time.Now()
		okOff, statsOff, err := core.Feasible(r.Circuit, target, off)
		if err != nil {
			return err
		}
		dOff := time.Since(start)
		if okOn || okOff {
			return fmt.Errorf("%s: target %d unexpectedly feasible", r.Name, target)
		}
		capped := ""
		if statsOff.Iterations >= budget {
			capped = ">"
		}
		sp := float64(dOff) / float64(dOn)
		speedups = append(speedups, sp)
		t.AddRow(r.Name, target, statsOn.Iterations,
			fmt.Sprintf("%s%d", capped, statsOff.Iterations),
			cpu(dOn), capped+cpu(dOff), fmt.Sprintf("%s%.1fx", capped, sp))
	}
	t.Render(cfg.Out)
	fmt.Fprintf(cfg.Out, "geomean speedup >= %.1fx (paper reports 10-50x)\n",
		stats.GeoMean(speedups))
	return nil
}

// TableScale reproduces the scalability claim: TurboSYN handles circuits
// of over 10^4 gates and 10^3 flipflops "in reasonable time".
func TableScale(cfg Config) error {
	fmt.Fprintf(cfg.Out, "Scale: full TurboSYN minimization, K=%d\n", cfg.K)
	t := stats.NewTable("circuit", "gates", "ffs", "phi", "luts", "cpu")
	for _, c := range scaleCases(cfg) {
		start := time.Now()
		res, err := core.Minimize(c, turboSYNOpts(cfg.K))
		if err != nil {
			return fmt.Errorf("%s: %v", c.Name, err)
		}
		t.AddRow(c.Name, c.NumGates(), c.NumFFs(), res.Phi, res.LUTs,
			cpu(time.Since(start)))
	}
	t.Render(cfg.Out)
	return nil
}

// TableK sweeps the LUT size (the paper fixes K=5; this is the extension
// ablation listed in DESIGN.md) and the LowDepth expansion knob.
func TableK(cfg Config) error {
	subset := map[string]bool{"bbara": true, "keyb": true, "s420": true, "s838": true}
	fmt.Fprintln(cfg.Out, "K sweep: TurboSYN period/LUTs for K = 3..6")
	t := stats.NewTable("circuit", "k3.phi", "k3.luts", "k4.phi", "k4.luts",
		"k5.phi", "k5.luts", "k6.phi", "k6.luts")
	for _, cs := range bench.Suite() {
		if !subset[cs.Name] {
			continue
		}
		row := []interface{}{cs.Name}
		for k := 3; k <= 6; k++ {
			res, err := core.Minimize(cs.Circuit, turboSYNOpts(k))
			if err != nil {
				return fmt.Errorf("%s k=%d: %v", cs.Name, k, err)
			}
			row = append(row, res.Phi, res.LUTs)
		}
		t.AddRow(row...)
	}
	t.Render(cfg.Out)

	fmt.Fprintf(cfg.Out, "\nLowDepth ablation (expansion through cut candidates), K=%d\n", cfg.K)
	t2 := stats.NewTable("circuit", "low0.phi", "low0.luts", "low3.phi", "low3.luts",
		"low6.phi", "low6.luts")
	for _, cs := range bench.Suite() {
		if !subset[cs.Name] {
			continue
		}
		row := []interface{}{cs.Name}
		for _, low := range []int{-1, 3, 6} { // -1 = strict TurboMap frontier
			o := turboSYNOpts(cfg.K)
			o.LowDepth = low
			res, err := core.Minimize(cs.Circuit, o)
			if err != nil {
				return fmt.Errorf("%s low=%d: %v", cs.Name, low, err)
			}
			row = append(row, res.Phi, res.LUTs)
		}
		t2.AddRow(row...)
	}
	t2.Render(cfg.Out)
	return nil
}

func scaleCases(cfg Config) []*netlist.Circuit {
	sizes := []struct {
		name      string
		stateBits int
		cubes     int
	}{
		{"fsm1k", 24, 8},   // ~1.3k gates
		{"fsm2k", 48, 8},   // ~2.6k gates
		{"fsm5k", 120, 8},  // ~5.5k gates
		{"fsm11k", 240, 8}, // ~11k gates
		{"fsm22k", 480, 8}, // ~22k gates, ~0.5k registers
		{"fsm44k", 960, 8}, // ~44k gates, ~1k registers: the paper's 10^4/10^3 claim
	}
	if cfg.Quick {
		// One smaller instance of the same generator; the growth curve is
		// the full run's business.
		sizes = []struct {
			name      string
			stateBits int
			cubes     int
		}{{"fsm0.8k", 10, 8}}
	}
	var out []*netlist.Circuit
	for _, sz := range sizes {
		out = append(out, bench.ScaleFSM(sz.name, sz.stateBits, sz.cubes))
	}
	return out
}

func cpu(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}

// TablePeriod is the clock-period-objective companion experiment (the
// TurboMap lineage): minimum period by gate-level retiming alone versus
// K-LUT mapping with retiming (no pipelining in either). Mapping compresses
// the combinational paths, so it must never lose.
func TablePeriod(cfg Config) error {
	subset := map[string]bool{
		"bbara": true, "bbsse": true, "keyb": true,
		"s420": true, "s838": true, "s1423": true,
	}
	fmt.Fprintf(cfg.Out, "Clock-period objective (no pipelining), K=%d\n", cfg.K)
	t := stats.NewTable("circuit", "period", "retimed", "mapped+retimed", "cpu")
	for _, cs := range bench.Suite() {
		if !subset[cs.Name] {
			continue
		}
		p0 := retime.Period(cs.Circuit)
		pr, _ := retime.MinPeriod(cs.Circuit)
		opts := turboMapOpts(cfg.K)
		opts.Pipelined = false
		start := time.Now()
		res, err := core.Minimize(cs.Circuit, opts)
		if err != nil {
			return fmt.Errorf("%s: %v", cs.Name, err)
		}
		if res.Phi > pr {
			return fmt.Errorf("%s: mapping (%d) lost to plain retiming (%d)", cs.Name, res.Phi, pr)
		}
		t.AddRow(cs.Name, p0, pr, res.Phi, cpu(time.Since(start)))
	}
	t.Render(cfg.Out)
	return nil
}
