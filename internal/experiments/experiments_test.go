package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickTables runs every table in quick mode (small circuits only) and
// sanity-checks the rendered output. This is the smoke test; the full runs
// live in cmd/experiments and EXPERIMENTS.md.
func TestQuickTables(t *testing.T) {
	if testing.Short() {
		t.Skip("quick tables still take tens of seconds")
	}
	var buf bytes.Buffer
	cfg := Config{K: 5, Quick: true, Out: &buf}

	if err := Table1(cfg); err != nil {
		t.Fatalf("Table1: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "bbara") || !strings.Contains(out, "geomean period ratio") {
		t.Fatalf("Table1 output incomplete:\n%s", out)
	}
	// Table1 itself enforces the row-wise invariant ts.phi <= tm.phi (it
	// returns an error otherwise), which makes the TurboMap/TurboSYN geomean
	// >= 1 by construction; check the rendered number agrees. The FlowSYN-s
	// ratio is an empirical comparison against a different baseline and may
	// legitimately dip below 1 on a reduced quick suite, so it is reported
	// but not asserted.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "geomean period ratio") {
			continue
		}
		_, after, found := strings.Cut(line, "TurboMap/TurboSYN = ")
		if !found {
			t.Fatalf("geomean line lost the TurboMap ratio: %s", line)
		}
		if strings.HasPrefix(after, "0.") {
			t.Fatalf("TurboMap/TurboSYN ratio below 1: %s", line)
		}
	}

	buf.Reset()
	if err := Table2(cfg); err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if !strings.Contains(buf.String(), "ts.luts") {
		t.Fatalf("Table2 output incomplete:\n%s", buf.String())
	}

	buf.Reset()
	if err := TablePLD(cfg); err != nil {
		t.Fatalf("TablePLD: %v", err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("TablePLD output incomplete:\n%s", buf.String())
	}

	buf.Reset()
	if err := TableScale(cfg); err != nil {
		t.Fatalf("TableScale: %v", err)
	}
	if !strings.Contains(buf.String(), "fsm0.8k") {
		t.Fatalf("TableScale output incomplete:\n%s", buf.String())
	}
}
