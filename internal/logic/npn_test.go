package logic

import (
	"math/rand"
	"testing"
)

// applyPointwise computes tr applied to f by direct evaluation of the
// defining equation g(v) = f(u) ^ b, u_i = v_{perm[i]} ^ a_i — an
// implementation independent of the word-parallel Apply under test.
func applyPointwise(f *TT, tr NPNTransform) *TT {
	n := f.NumVars()
	g := NewTT(n)
	for v := 0; v < g.NumBits(); v++ {
		var u uint
		for i := 0; i < n; i++ {
			bit := uint(v)>>uint(tr.Perm[i])&1 ^ uint(tr.InputNeg)>>uint(i)&1
			u |= bit << uint(i)
		}
		val := f.Eval(u)
		if tr.OutputNeg {
			val = !val
		}
		g.SetBit(v, val)
	}
	return g
}

func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for pos := 0; pos <= len(sub); pos++ {
			p := make([]int, 0, n)
			p = append(p, sub[:pos]...)
			p = append(p, n-1)
			p = append(p, sub[pos:]...)
			out = append(out, p)
		}
	}
	return out
}

// orbitMin brute-forces the minimal table value over f's whole NPN orbit.
func orbitMin(f *TT) uint64 {
	n := f.NumVars()
	best := ^uint64(0)
	first := true
	for _, perm := range permutations(n) {
		for neg := 0; neg < 1<<uint(n); neg++ {
			for out := 0; out < 2; out++ {
				g := applyPointwise(f, NPNTransform{Perm: perm, InputNeg: uint32(neg), OutputNeg: out == 1})
				var w uint64
				for i := 0; i < g.NumBits(); i++ {
					if g.Bit(i) {
						w |= 1 << uint(i)
					}
				}
				if first || w < best {
					best, first = w, false
				}
			}
		}
	}
	return best
}

func ttFromWord(n int, w uint64) *TT {
	t := NewTT(n)
	for i := 0; i < t.NumBits(); i++ {
		if w>>uint(i)&1 == 1 {
			t.SetBit(i, true)
		}
	}
	return t
}

func ttWord(t *TT) uint64 {
	var w uint64
	for i := 0; i < t.NumBits(); i++ {
		if t.Bit(i) {
			w |= 1 << uint(i)
		}
	}
	return w
}

// TestNPNCanonExhaustiveSmall: for every function of 0..3 variables the
// canon is exactly the orbit minimum (so canon(f) == canon(g) iff f and g
// are NPN-equivalent), the recorded transform reproduces it, and the
// inverse transform round-trips.
func TestNPNCanonExhaustiveSmall(t *testing.T) {
	for n := 0; n <= 3; n++ {
		for w := uint64(0); w < 1<<uint(1<<uint(n)); w++ {
			f := ttFromWord(n, w)
			canon, tr := NPNCanon(f)
			if got := tr.Apply(f); !got.Equal(canon) {
				t.Fatalf("n=%d w=%#x: tr.Apply(f) != canon (%s vs %s)", n, w, got, canon)
			}
			if back := tr.Inverse().Apply(canon); !back.Equal(f) {
				t.Fatalf("n=%d w=%#x: inverse does not round-trip (%s)", n, w, back)
			}
			if want := orbitMin(f); ttWord(canon) != want {
				t.Fatalf("n=%d w=%#x: canon=%#x, orbit min %#x", n, w, ttWord(canon), want)
			}
		}
	}
}

func randTT(rng *rand.Rand, n int) *TT {
	f := NewTT(n)
	for i := 0; i < f.NumBits(); i++ {
		if rng.Intn(2) == 1 {
			f.SetBit(i, true)
		}
	}
	return f
}

func randTransform(rng *rand.Rand, n int) NPNTransform {
	return NPNTransform{
		Perm:      rng.Perm(n),
		InputNeg:  uint32(rng.Intn(1 << uint(n))),
		OutputNeg: rng.Intn(2) == 1,
	}
}

// TestNPNCanonRandomMedium: randomized 4-6 variable check that every pair
// of NPN-equivalent tables canonicalizes identically (exactness at these
// widths) with round-tripping transforms.
func TestNPNCanonRandomMedium(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		n := 4 + rng.Intn(3)
		f := randTT(rng, n)
		g := randTransform(rng, n).Apply(f)
		cf, trf := NPNCanon(f)
		cg, trg := NPNCanon(g)
		if !cf.Equal(cg) {
			t.Fatalf("n=%d iter=%d: NPN-equivalent tables canonicalized differently:\n f=%s canon %s\n g=%s canon %s",
				n, iter, f, cf, g, cg)
		}
		if !trf.Apply(f).Equal(cf) || !trg.Apply(g).Equal(cg) {
			t.Fatalf("n=%d iter=%d: recorded transform does not reproduce canon", n, iter)
		}
		if !trf.Inverse().Apply(cf).Equal(f) || !trg.Inverse().Apply(cg).Equal(g) {
			t.Fatalf("n=%d iter=%d: inverse transform does not round-trip", n, iter)
		}
	}
}

// TestNPNCanonWideDeterministic: beyond NPNExactVars the canon is only
// semi-canonical but must stay deterministic, reachable via the recorded
// transform and invertible.
func TestNPNCanonWideDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		n := 7 + rng.Intn(3)
		f := randTT(rng, n)
		c1, tr1 := NPNCanon(f)
		c2, tr2 := NPNCanon(f.Clone())
		if !c1.Equal(c2) {
			t.Fatalf("n=%d: NPNCanon not deterministic", n)
		}
		if len(tr1.Perm) != n || tr1.InputNeg != tr2.InputNeg || tr1.OutputNeg != tr2.OutputNeg {
			t.Fatalf("n=%d: transforms differ between identical calls", n)
		}
		if !tr1.Apply(f).Equal(c1) {
			t.Fatalf("n=%d: transform does not reproduce canon", n)
		}
		if !tr1.Inverse().Apply(c1).Equal(f) {
			t.Fatalf("n=%d: inverse does not round-trip", n)
		}
		// The semi-canonical form still normalizes output polarity and
		// single-input negations.
		inv := f.Clone()
		inv.Not(inv)
		ci, _ := NPNCanon(inv)
		if !ci.Equal(c1) {
			t.Fatalf("n=%d: output negation changed the wide canon", n)
		}
	}
}

// TestNPNApplyMatchesPointwise: the word-parallel Apply agrees with direct
// evaluation of the defining equation, across widths that exercise the
// in-word, block and mixed swap paths.
func TestNPNApplyMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 5, 6, 7, 8, 9} {
		for iter := 0; iter < 25; iter++ {
			f := randTT(rng, n)
			tr := randTransform(rng, n)
			if got, want := tr.Apply(f), applyPointwise(f, tr); !got.Equal(want) {
				t.Fatalf("n=%d: Apply mismatch\n got %s\nwant %s", n, got, want)
			}
		}
	}
}

// TestVarOpsPointwise: FlipVarInPlace and SwapVarsInPlace against direct
// bit-level models, covering i<6<=j and both-above-word-boundary cases.
func TestVarOpsPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{3, 6, 7, 8, 9} {
		for iter := 0; iter < 20; iter++ {
			f := randTT(rng, n)
			i := rng.Intn(n)
			g := f.Clone()
			g.FlipVarInPlace(i)
			for v := 0; v < f.NumBits(); v++ {
				if g.Bit(v) != f.Bit(v^(1<<uint(i))) {
					t.Fatalf("n=%d: FlipVar(%d) wrong at minterm %d", n, i, v)
				}
			}
			j := rng.Intn(n)
			s := f.Clone()
			s.SwapVarsInPlace(i, j)
			for v := 0; v < f.NumBits(); v++ {
				bi, bj := v>>uint(i)&1, v>>uint(j)&1
				u := v &^ (1<<uint(i) | 1<<uint(j)) | bj<<uint(i) | bi<<uint(j)
				if s.Bit(v) != f.Bit(u) {
					t.Fatalf("n=%d: SwapVars(%d,%d) wrong at minterm %d", n, i, j, v)
				}
			}
		}
	}
}

// TestTTWordBytesRoundTrip: serialization accessors round-trip and reject
// malformed input.
func TestTTWordBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 4, 6, 7, 10} {
		f := randTT(rng, n)
		b := f.AppendWordBytes(nil)
		g, err := TTFromWordBytes(n, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !g.Equal(f) {
			t.Fatalf("n=%d: round-trip changed the table", n)
		}
	}
	if _, err := TTFromWordBytes(4, make([]byte, 7)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := TTFromWordBytes(2, []byte{0xFF, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("stray bits beyond the table accepted")
	}
	if _, err := TTFromWordBytes(17, nil); err == nil {
		t.Fatal("out-of-range variable count accepted")
	}
}
