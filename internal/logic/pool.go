package logic

// TTPool is a single-owner freelist of truth tables, bucketed by variable
// count. The cone-function evaluation of the label engine builds and drops
// thousands of transient tables per probe (Shannon cofactors, composition
// intermediates); recycling them through a per-worker pool turns that churn
// into pointer pops. A nil *TTPool is valid everywhere and degrades to plain
// allocation, so pooled and unpooled callers share one code path.
//
// Get returns a table with UNSPECIFIED contents — callers must fully
// overwrite it (CopyFrom, SetVar, SetConst, Not, And, Or all do). Put hands
// a table back; the caller must not retain any reference to it afterwards.
// The pool is not safe for concurrent use: like the rest of a worker arena,
// it has exactly one owning goroutine at a time.
type TTPool struct {
	free [MaxVars + 1][]*TT
}

// Get returns a table of nvar variables with unspecified contents, reusing a
// pooled table when one is available.
func (p *TTPool) Get(nvar int) *TT {
	if p != nil {
		if l := p.free[nvar]; len(l) > 0 {
			t := l[len(l)-1]
			l[len(l)-1] = nil
			p.free[nvar] = l[:len(l)-1]
			return t
		}
	}
	return NewTT(nvar)
}

// Put returns t to the pool. nil is ignored; a nil pool drops the table for
// the garbage collector.
func (p *TTPool) Put(t *TT) {
	if p == nil || t == nil {
		return
	}
	p.free[t.nvar] = append(p.free[t.nvar], t)
}

// Bytes reports the approximate retained footprint of the pooled tables.
func (p *TTPool) Bytes() int {
	if p == nil {
		return 0
	}
	n := 0
	for nvar, l := range p.free {
		n += len(l) * (8*wordsFor(nvar) + 32)
	}
	return n
}

// CopyFrom sets t to the same function as o (which must have the same
// variable count) and returns t.
func (t *TT) CopyFrom(o *TT) *TT {
	t.checkSame(o)
	copy(t.words, o.words)
	return t
}

// SetVar sets t to the projection function x_i and returns t (the in-place
// form of Var, for pooled tables).
func (t *TT) SetVar(i int) *TT {
	if i < 0 || i >= t.nvar {
		panic("logic: SetVar: index out of range")
	}
	if i < 6 {
		var p uint64
		period := 1 << (i + 1)
		for b := 0; b < 64; b++ {
			if b%period >= period/2 {
				p |= 1 << uint(b)
			}
		}
		for w := range t.words {
			t.words[w] = p
		}
		if t.nvar < 6 {
			t.words[0] &= mask(t.nvar)
		}
	} else {
		block := 1 << (i - 6)
		for w := range t.words {
			if (w/block)%2 == 1 {
				t.words[w] = ^uint64(0)
			} else {
				t.words[w] = 0
			}
		}
	}
	return t
}

// SetConst sets t to the constant function with the given value and returns
// t (the in-place form of Const, for pooled tables).
func (t *TT) SetConst(value bool) *TT {
	if !value {
		for i := range t.words {
			t.words[i] = 0
		}
		return t
	}
	for i := range t.words {
		t.words[i] = ^uint64(0)
	}
	t.words[len(t.words)-1] &= mask(t.nvar)
	if t.nvar < 6 {
		t.words[0] = mask(t.nvar)
	}
	return t
}
