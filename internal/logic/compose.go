package logic

// ComposeBool substitutes functions for variables like Compose, but runs
// word-parallel over the substituted tables via Shannon expansion of t:
//
//	t = ~x_j·t0 + x_j·t1  =>  result = (~subs[j] AND compose(t0)) OR
//	                                    (subs[j] AND compose(t1))
//
// Cost is O(2^support(t) * words(result)) instead of the bit-serial
// O(2^result * support(t)) of Compose — the difference matters when the
// result ranges over many variables (cone functions over wide cuts).
func (t *TT) ComposeBool(subs []*TT) *TT {
	if len(subs) != t.nvar {
		panic("logic: ComposeBool: need one substitution per variable")
	}
	if t.nvar == 0 {
		panic("logic: ComposeBool on 0-var table")
	}
	nv := subs[0].nvar
	for _, s := range subs {
		if s.nvar != nv {
			panic("logic: ComposeBool: substitutions over different variable sets")
		}
	}
	negs := make([]*TT, len(subs))
	var rec func(f *TT) *TT
	rec = func(f *TT) *TT {
		if c, v := f.IsConst(); c {
			return Const(nv, v)
		}
		j := -1
		for i := 0; i < f.nvar; i++ {
			if f.DependsOn(i) {
				j = i
				break
			}
		}
		r0 := rec(f.Cofactor(j, false))
		r1 := rec(f.Cofactor(j, true))
		if negs[j] == nil {
			negs[j] = NewTT(nv).Not(subs[j])
		}
		lo := NewTT(nv).And(negs[j], r0)
		hi := NewTT(nv).And(subs[j], r1)
		return lo.Or(lo, hi)
	}
	return rec(t)
}
