package logic

// ComposeBool substitutes functions for variables like Compose, but runs
// word-parallel over the substituted tables via Shannon expansion of t:
//
//	t = ~x_j·t0 + x_j·t1  =>  result = (~subs[j] AND compose(t0)) OR
//	                                    (subs[j] AND compose(t1))
//
// Cost is O(2^support(t) * words(result)) instead of the bit-serial
// O(2^result * support(t)) of Compose — the difference matters when the
// result ranges over many variables (cone functions over wide cuts).
func (t *TT) ComposeBool(subs []*TT) *TT {
	return t.ComposeBoolPool(subs, nil)
}

// ComposeBoolPool is ComposeBool with every transient table — Shannon
// cofactors, negated substitutions, the per-level partial results — drawn
// from and returned to p. The result itself is also pool-owned: the caller
// must Put it back (or Clone it out) when done. A nil pool reproduces
// ComposeBool exactly, with the result owned by the garbage collector.
func (t *TT) ComposeBoolPool(subs []*TT, p *TTPool) *TT {
	if len(subs) != t.nvar {
		panic("logic: ComposeBool: need one substitution per variable")
	}
	if t.nvar == 0 {
		panic("logic: ComposeBool on 0-var table")
	}
	nv := subs[0].nvar
	for _, s := range subs {
		if s.nvar != nv {
			panic("logic: ComposeBool: substitutions over different variable sets")
		}
	}
	negs := make([]*TT, len(subs))
	var rec func(f *TT) *TT
	rec = func(f *TT) *TT {
		if c, v := f.IsConst(); c {
			return p.Get(nv).SetConst(v)
		}
		j := -1
		for i := 0; i < f.nvar; i++ {
			if f.DependsOn(i) {
				j = i
				break
			}
		}
		// One scratch table serves both cofactors: rec is done with it by
		// the time it returns.
		f0 := p.Get(f.nvar).CopyFrom(f)
		f0.CofactorInPlace(j, false)
		r0 := rec(f0)
		f0.CopyFrom(f)
		f0.CofactorInPlace(j, true)
		r1 := rec(f0)
		p.Put(f0)
		if negs[j] == nil {
			negs[j] = p.Get(nv).Not(subs[j])
		}
		lo := p.Get(nv).And(negs[j], r0)
		hi := p.Get(nv).And(subs[j], r1)
		lo.Or(lo, hi)
		p.Put(hi)
		p.Put(r0)
		p.Put(r1)
		return lo
	}
	out := rec(t)
	for _, n := range negs {
		p.Put(n)
	}
	return out
}
