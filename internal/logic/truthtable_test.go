package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTT builds a random table over nvar variables.
func randomTT(rng *rand.Rand, nvar int) *TT {
	t := NewTT(nvar)
	for i := range t.words {
		t.words[i] = rng.Uint64()
	}
	t.words[len(t.words)-1] &= mask(nvar)
	if nvar < 6 {
		t.words[0] &= mask(nvar)
	}
	return t
}

func TestConstAndVarSmall(t *testing.T) {
	for nvar := 0; nvar <= 4; nvar++ {
		zero := Const(nvar, false)
		one := Const(nvar, true)
		for i := 0; i < 1<<nvar; i++ {
			if zero.Bit(i) {
				t.Errorf("Const(%d,false) bit %d set", nvar, i)
			}
			if !one.Bit(i) {
				t.Errorf("Const(%d,true) bit %d clear", nvar, i)
			}
		}
	}
	for nvar := 1; nvar <= 8; nvar++ {
		for v := 0; v < nvar; v++ {
			x := Var(nvar, v)
			for i := 0; i < 1<<nvar; i++ {
				want := i&(1<<v) != 0
				if x.Bit(i) != want {
					t.Fatalf("Var(%d,%d) at %d = %v, want %v", nvar, v, i, x.Bit(i), want)
				}
			}
		}
	}
}

func TestVarLargeIndices(t *testing.T) {
	// Exercise the multi-word path (variables >= 6).
	for _, nvar := range []int{7, 9, 12} {
		for v := 6; v < nvar; v++ {
			x := Var(nvar, v)
			for trial := 0; trial < 200; trial++ {
				i := trial * 997 % (1 << nvar)
				want := i&(1<<v) != 0
				if x.Bit(i) != want {
					t.Fatalf("Var(%d,%d) at %d wrong", nvar, v, i)
				}
			}
		}
	}
}

func TestBoolOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, nvar := range []int{2, 5, 6, 8, 10} {
		a, b := randomTT(rng, nvar), randomTT(rng, nvar)
		and := NewTT(nvar).And(a, b)
		or := NewTT(nvar).Or(a, b)
		xor := NewTT(nvar).Xor(a, b)
		na := NewTT(nvar).Not(a)
		for i := 0; i < 1<<nvar; i++ {
			av, bv := a.Bit(i), b.Bit(i)
			if and.Bit(i) != (av && bv) {
				t.Fatalf("and wrong at %d", i)
			}
			if or.Bit(i) != (av || bv) {
				t.Fatalf("or wrong at %d", i)
			}
			if xor.Bit(i) != (av != bv) {
				t.Fatalf("xor wrong at %d", i)
			}
			if na.Bit(i) != !av {
				t.Fatalf("not wrong at %d", i)
			}
		}
	}
}

func TestNotKeepsPaddingClean(t *testing.T) {
	// Double negation of a small table must not pollute padding bits,
	// otherwise Equal comparisons break.
	a, err := FromBits(2, "0110")
	if err != nil {
		t.Fatal(err)
	}
	b := NewTT(2).Not(a)
	c := NewTT(2).Not(b)
	if !c.Equal(a) {
		t.Fatalf("double negation changed table: %s vs %s", c, a)
	}
	if b.words[0]&^mask(2) != 0 {
		t.Fatal("padding bits polluted by Not")
	}
}

func TestIsConstAndCountOnes(t *testing.T) {
	for _, nvar := range []int{0, 3, 6, 9} {
		if c, v := Const(nvar, true).IsConst(); !c || !v {
			t.Errorf("Const(%d,true) not detected", nvar)
		}
		if c, v := Const(nvar, false).IsConst(); !c || v {
			t.Errorf("Const(%d,false) not detected", nvar)
		}
		if Const(nvar, true).CountOnes() != 1<<nvar {
			t.Errorf("CountOnes of const true wrong for nvar=%d", nvar)
		}
	}
	if c, _ := Var(4, 2).IsConst(); c {
		t.Error("Var misdetected as const")
	}
	if got := Var(4, 2).CountOnes(); got != 8 {
		t.Errorf("Var(4,2).CountOnes() = %d, want 8", got)
	}
}

func TestCofactorAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, nvar := range []int{3, 6, 7, 9} {
		f := randomTT(rng, nvar)
		for v := 0; v < nvar; v++ {
			for _, val := range []bool{false, true} {
				cf := f.Cofactor(v, val)
				for trial := 0; trial < 128; trial++ {
					i := rng.Intn(1 << nvar)
					j := i &^ (1 << v)
					if val {
						j |= 1 << v
					}
					if cf.Bit(i) != f.Bit(j) {
						t.Fatalf("nvar=%d cofactor var %d val %v wrong at %d", nvar, v, val, i)
					}
				}
				if cf.DependsOn(v) {
					t.Fatalf("cofactor still depends on var %d", v)
				}
			}
		}
	}
}

func TestShannonExpansion(t *testing.T) {
	// f = x_v ? f1 : f0 for every variable — a full functional identity.
	f := func(seed int64, nvarRaw uint8, vRaw uint8) bool {
		nvar := 1 + int(nvarRaw)%9
		v := int(vRaw) % nvar
		rng := rand.New(rand.NewSource(seed))
		tt := randomTT(rng, nvar)
		f0 := tt.Cofactor(v, false)
		f1 := tt.Cofactor(v, true)
		x := Var(nvar, v)
		nx := NewTT(nvar).Not(x)
		lhs := NewTT(nvar).And(x, f1)
		rhs := NewTT(nvar).And(nx, f0)
		return NewTT(nvar).Or(lhs, rhs).Equal(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSupport(t *testing.T) {
	f := NewTT(5).And(Var(5, 1), Var(5, 3))
	s := f.Support()
	if len(s) != 2 || s[0] != 1 || s[1] != 3 {
		t.Fatalf("support = %v, want [1 3]", s)
	}
}

func TestExpand(t *testing.T) {
	// xor(a,b) over 2 vars, embedded as vars 4 and 1 of a 5-var space.
	f := XorAll(2)
	g := f.Expand(5, []int{4, 1})
	for i := 0; i < 32; i++ {
		a := i&(1<<4) != 0
		b := i&(1<<1) != 0
		if g.Bit(i) != (a != b) {
			t.Fatalf("expand wrong at %d", i)
		}
	}
}

func TestCompose(t *testing.T) {
	// g(y0,y1) = y0 AND y1; y0 = x0 XOR x1, y1 = x2. Result over 3 vars.
	g := AndAll(2)
	y0 := NewTT(3).Xor(Var(3, 0), Var(3, 1))
	y1 := Var(3, 2)
	h := g.Compose([]*TT{y0, y1})
	for i := 0; i < 8; i++ {
		want := ((i&1 != 0) != (i&2 != 0)) && i&4 != 0
		if h.Bit(i) != want {
			t.Fatalf("compose wrong at %d", i)
		}
	}
}

func TestGates(t *testing.T) {
	if got := AndAll(3).CountOnes(); got != 1 {
		t.Errorf("AndAll(3) ones = %d", got)
	}
	if got := OrAll(3).CountOnes(); got != 7 {
		t.Errorf("OrAll(3) ones = %d", got)
	}
	if got := XorAll(4).CountOnes(); got != 8 {
		t.Errorf("XorAll(4) ones = %d", got)
	}
	if !NandAll(2).Equal(NewTT(2).Not(AndAll(2))) {
		t.Error("NandAll mismatch")
	}
	if !NorAll(2).Equal(NewTT(2).Not(OrAll(2))) {
		t.Error("NorAll mismatch")
	}
	mux := Mux21()
	for i := 0; i < 8; i++ {
		a, b, s := i&1 != 0, i&2 != 0, i&4 != 0
		want := a
		if s {
			want = b
		}
		if mux.Bit(i) != want {
			t.Fatalf("mux wrong at %d", i)
		}
	}
	maj := Maj3()
	for i := 0; i < 8; i++ {
		n := 0
		for b := 0; b < 3; b++ {
			if i&(1<<b) != 0 {
				n++
			}
		}
		if maj.Bit(i) != (n >= 2) {
			t.Fatalf("maj wrong at %d", i)
		}
	}
	if !Inv().Equal(NewTT(1).Not(Buf())) {
		t.Error("Inv != NOT Buf")
	}
}

func TestFromBitsAndString(t *testing.T) {
	f, err := FromBits(2, "0110")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(XorAll(2)) {
		t.Error("0110 should be XOR")
	}
	if f.String() != "0110" {
		t.Errorf("round trip: %s", f.String())
	}
	if _, err := FromBits(2, "01"); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := FromBits(1, "2x"); err == nil {
		t.Error("bad chars not rejected")
	}
}

func TestPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("NewTT too big", func() { NewTT(MaxVars + 1) })
	assertPanics("NewTT negative", func() { NewTT(-1) })
	assertPanics("Var out of range", func() { Var(3, 3) })
	assertPanics("mixed sizes", func() { NewTT(3).And(NewTT(3), NewTT(4)) })
	assertPanics("cofactor out of range", func() { NewTT(2).Cofactor(5, true) })
}

func BenchmarkAnd10Var(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x, y := randomTT(rng, 10), randomTT(rng, 10)
	out := NewTT(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out.And(x, y)
	}
}

func BenchmarkCofactor15Var(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := randomTT(rng, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Cofactor(i%15, i&1 == 0)
	}
}
