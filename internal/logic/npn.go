package logic

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// NPN canonicalization: two functions are NPN-equivalent when one can be
// obtained from the other by permuting inputs, negating a subset of inputs
// and optionally negating the output. The decomposition engine keys its
// cross-run cache on the canonical representative of a cone function's NPN
// class, so one Roth-Karp run serves every variant of the same function that
// different circuits (or different corners of one circuit) produce.

// NPNExactVars is the widest function for which NPNCanon is exact (a true
// class invariant). Wider functions get a deterministic semi-canonical form.
const NPNExactVars = 6

// NPNTransform describes one member of the NPN group over n variables:
// g = tr.Apply(f) is defined by g(v) = f(u) ^ OutputNeg with
// u_i = v_{Perm[i]} ^ a_i, where a is the InputNeg bit mask. Perm[i] is the
// position variable i of f occupies in g; InputNeg bit i negates variable i
// of f (before permutation).
type NPNTransform struct {
	Perm      []int
	InputNeg  uint32
	OutputNeg bool
}

// Identity reports whether tr is the identity transform.
func (tr NPNTransform) Identity() bool {
	if tr.InputNeg != 0 || tr.OutputNeg {
		return false
	}
	for i, p := range tr.Perm {
		if p != i {
			return false
		}
	}
	return true
}

// Inverse returns the transform tr' with tr'.Apply(tr.Apply(f)) == f.
func (tr NPNTransform) Inverse() NPNTransform {
	n := len(tr.Perm)
	inv := make([]int, n)
	for i, p := range tr.Perm {
		inv[p] = i
	}
	var a uint32
	for j := 0; j < n; j++ {
		if tr.InputNeg>>uint(inv[j])&1 == 1 {
			a |= 1 << uint(j)
		}
	}
	return NPNTransform{Perm: inv, InputNeg: a, OutputNeg: tr.OutputNeg}
}

// Apply returns the table of tr applied to f (see NPNTransform for the
// semantics). f is not modified.
func (tr NPNTransform) Apply(f *TT) *TT {
	if len(tr.Perm) != f.nvar {
		panic(fmt.Sprintf("logic: NPN transform over %d vars applied to %d-var table", len(tr.Perm), f.nvar))
	}
	r := f.Clone()
	for i := 0; i < f.nvar; i++ {
		if tr.InputNeg>>uint(i)&1 == 1 {
			r.FlipVarInPlace(i)
		}
	}
	r.PermuteVarsInPlace(tr.Perm)
	if tr.OutputNeg {
		r.Not(r)
	}
	return r
}

// FlipVarInPlace replaces t by t(x ^ e_i), i.e. negates input variable i.
func (t *TT) FlipVarInPlace(i int) {
	if i < 0 || i >= t.nvar {
		panic(fmt.Sprintf("logic: FlipVar(%d) on %d-var table", i, t.nvar))
	}
	if i < 6 {
		m := varMask64[i]
		s := uint(1) << uint(i)
		for w := range t.words {
			x := t.words[w]
			t.words[w] = (x&m)>>s | (x&^m)<<s
		}
	} else {
		block := 1 << (i - 6)
		buf := make([]uint64, block)
		for base := 0; base < len(t.words); base += 2 * block {
			lo, hi := base, base+block
			copy(buf, t.words[lo:lo+block])
			copy(t.words[lo:lo+block], t.words[hi:hi+block])
			copy(t.words[hi:hi+block], buf)
		}
	}
}

// SwapVarsInPlace exchanges input variables i and j.
func (t *TT) SwapVarsInPlace(i, j int) {
	if i == j {
		return
	}
	if j < i {
		i, j = j, i
	}
	if i < 0 || j >= t.nvar {
		panic(fmt.Sprintf("logic: SwapVars(%d, %d) on %d-var table", i, j, t.nvar))
	}
	switch {
	case j < 6:
		for w := range t.words {
			t.words[w] = swap64(t.words[w], i, j)
		}
	case i >= 6:
		// Swap word blocks: word w pairs with w + (2^(j-6) - 2^(i-6)) when
		// bit (i-6) of w is set and bit (j-6) is clear.
		bi, bj := 1<<(i-6), 1<<(j-6)
		d := bj - bi
		for w := range t.words {
			if w&bi != 0 && w&bj == 0 {
				t.words[w], t.words[w+d] = t.words[w+d], t.words[w]
			}
		}
	default:
		// Mixed: variable i lives inside a word, variable j selects word
		// blocks. Exchange the var-i=1 half of each low word with the
		// var-i=0 half of its var-j=1 partner.
		m := varMask64[i]
		s := uint(1) << uint(i)
		bj := 1 << (j - 6)
		for w := range t.words {
			if w&bj != 0 {
				continue
			}
			a, b := t.words[w], t.words[w+bj]
			t.words[w] = a&^m | (b&^m)<<s
			t.words[w+bj] = b&m | (a&m)>>s
		}
	}
}

// PermuteVarsInPlace moves input variable i to position perm[i] (a
// permutation of 0..nvar-1).
func (t *TT) PermuteVarsInPlace(perm []int) {
	n := t.nvar
	if len(perm) != n {
		panic("logic: PermuteVars: permutation length mismatch")
	}
	// pos[i] tracks where original variable i currently sits.
	pos := make([]int, n)
	slot := make([]int, n)
	for i := 0; i < n; i++ {
		pos[i] = i
		slot[i] = i
	}
	inv := make([]int, n)
	for i, p := range perm {
		inv[p] = i
	}
	for p := 0; p < n; p++ {
		want := inv[p]
		if slot[p] == want {
			continue
		}
		q := pos[want]
		t.SwapVarsInPlace(p, q)
		other := slot[p]
		slot[p], slot[q] = want, other
		pos[want], pos[other] = p, q
	}
}

// varMask64 has bit b set when bit i of the minterm index b is set: the
// classic magic masks for in-word truth-table variable manipulation.
var varMask64 = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// flip64 negates variable i of a single-word table.
func flip64(w uint64, i int) uint64 {
	m := varMask64[i]
	s := uint(1) << uint(i)
	return (w&m)>>s | (w&^m)<<s
}

// swap64 exchanges variables i < j of a single-word table by delta-swapping
// the minterm pairs that differ exactly in bits i and j.
func swap64(w uint64, i, j int) uint64 {
	d := uint(1)<<uint(j) - uint(1)<<uint(i)
	a := varMask64[i] &^ varMask64[j]
	x := (w>>d ^ w) & a
	return w ^ x ^ x<<d
}

// NPNCanon returns the canonical representative of f's NPN class and the
// transform tr with tr.Apply(f) equal to that representative. For functions
// of up to NPNExactVars variables the result is exact: two tables get the
// same canon iff they are NPN-equivalent. Wider functions get a
// deterministic semi-canonical form driven by cofactor signatures, which
// may split some classes — callers lose cache hits, never correctness.
func NPNCanon(f *TT) (*TT, NPNTransform) {
	if f.nvar <= NPNExactVars {
		return npnCanonExact(f)
	}
	return npnCanonHeur(f)
}

// npnEnum walks every (permutation, input negation, output negation) of a
// single-word table and keeps the minimal table value seen. Permutations are
// generated by Heap's algorithm (one O(1) delta-swap per step), negations by
// a Gray code (one O(1) flip per step), so each candidate costs a few word
// operations.
type npnEnum struct {
	n       int
	msk     uint64
	w       uint64 // current permuted table, no negations applied
	slot    [6]int // slot[p] = original variable at position p
	bestSet bool
	best    uint64
	bestPrm [6]int
	bestNeg uint32 // position-space negation mask of the best candidate
	bestOut bool
}

func (e *npnEnum) swapPos(i, j int) {
	if i == j {
		return
	}
	if j < i {
		i, j = j, i
	}
	e.w = swap64(e.w, i, j)
	e.slot[i], e.slot[j] = e.slot[j], e.slot[i]
}

func (e *npnEnum) consider(w uint64, neg uint32, out bool) {
	if e.bestSet && w >= e.best {
		return
	}
	e.bestSet = true
	e.best = w
	e.bestPrm = e.slot
	e.bestNeg = neg
	e.bestOut = out
}

func (e *npnEnum) visitNegations() {
	cur := e.w
	var neg uint32
	e.consider(cur, neg, false)
	e.consider(^cur&e.msk, neg, true)
	for g := 1; g < 1<<uint(e.n); g++ {
		v := bits.TrailingZeros32(uint32(g))
		cur = flip64(cur, v)
		neg ^= 1 << uint(v)
		e.consider(cur, neg, false)
		e.consider(^cur&e.msk, neg, true)
	}
}

func (e *npnEnum) heap(k int) {
	if k <= 1 {
		e.visitNegations()
		return
	}
	for i := 0; i < k-1; i++ {
		e.heap(k - 1)
		if k%2 == 0 {
			e.swapPos(i, k-1)
		} else {
			e.swapPos(0, k-1)
		}
	}
	e.heap(k - 1)
}

func npnCanonExact(f *TT) (*TT, NPNTransform) {
	n := f.nvar
	e := npnEnum{n: n, msk: mask(n), w: f.words[0]}
	for i := range e.slot {
		e.slot[i] = i
	}
	e.heap(n)
	perm := make([]int, n)
	for p := 0; p < n; p++ {
		perm[e.bestPrm[p]] = p
	}
	// bestNeg negates canonical positions; express it over f's variables.
	var a uint32
	for p := 0; p < n; p++ {
		if e.bestNeg>>uint(p)&1 == 1 {
			a |= 1 << uint(e.bestPrm[p])
		}
	}
	canon := &TT{nvar: n, words: []uint64{e.best}}
	return canon, NPNTransform{Perm: perm, InputNeg: a, OutputNeg: e.bestOut}
}

// npnCanonHeur computes a deterministic semi-canonical form for wide tables:
// output polarity by ones count, per-input polarity by cofactor ones counts,
// input order by the sorted (c0, c1) signature. Exhaustive enumeration is
// out of reach at 7+ variables (5040+ permutations over multi-word tables
// per cone), and signature collisions only cost duplicate cache entries.
func npnCanonHeur(f *TT) (*TT, NPNTransform) {
	n := f.nvar
	size := 1 << uint(n)
	ones := f.CountOnes()
	out := 2*ones > size || (2*ones == size && f.Bit(0))
	g := f
	if out {
		g = f.Clone()
		g.Not(g)
	}
	var a uint32
	type sig struct{ c0, c1, idx int }
	sigs := make([]sig, n)
	scratch := g.Clone()
	for i := 0; i < n; i++ {
		copy(scratch.words, g.words)
		scratch.CofactorInPlace(i, false)
		c0 := scratch.CountOnes()
		copy(scratch.words, g.words)
		scratch.CofactorInPlace(i, true)
		c1 := scratch.CountOnes()
		if c1 < c0 {
			a |= 1 << uint(i)
			c0, c1 = c1, c0
		}
		sigs[i] = sig{c0, c1, i}
	}
	sort.SliceStable(sigs, func(x, y int) bool {
		if sigs[x].c0 != sigs[y].c0 {
			return sigs[x].c0 < sigs[y].c0
		}
		if sigs[x].c1 != sigs[y].c1 {
			return sigs[x].c1 < sigs[y].c1
		}
		return sigs[x].idx < sigs[y].idx
	})
	perm := make([]int, n)
	for p, s := range sigs {
		perm[s.idx] = p
	}
	tr := NPNTransform{Perm: perm, InputNeg: a, OutputNeg: out}
	return tr.Apply(f), tr
}

// AppendWordBytes appends the table's words in little-endian byte order
// (8 * wordsFor(nvar) bytes) — the compact wire form used by cache keys and
// the persisted decomposition log.
func (t *TT) AppendWordBytes(b []byte) []byte {
	for _, w := range t.words {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// TTFromWordBytes rebuilds a table from the little-endian byte form written
// by AppendWordBytes. Stray bits beyond the table's 2^nvar valid bits are
// rejected so that decoded tables keep the word-equality invariant.
func TTFromWordBytes(nvar int, b []byte) (*TT, error) {
	if nvar < 0 || nvar > MaxVars {
		return nil, fmt.Errorf("logic: TTFromWordBytes: %d variables out of range", nvar)
	}
	nw := wordsFor(nvar)
	if len(b) != 8*nw {
		return nil, fmt.Errorf("logic: TTFromWordBytes: want %d bytes for %d vars, got %d", 8*nw, nvar, len(b))
	}
	t := NewTT(nvar)
	for i := range t.words {
		t.words[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	if t.words[nw-1]&^mask(nvar) != 0 {
		return nil, fmt.Errorf("logic: TTFromWordBytes: stray bits beyond 2^%d table", nvar)
	}
	return t, nil
}
