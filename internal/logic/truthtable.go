// Package logic implements a bitset truth-table engine for Boolean functions
// of up to MaxVars inputs. Truth tables are the workhorse representation for
// local gate functions (K-bounded, so tiny) and for the cone functions that
// the functional-decomposition engine resynthesizes (bounded by the cut-width
// cap Cmax = 15 of the paper, so at most 2^15 bits).
package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars is the largest supported input count. 16 inputs = 65536 table bits
// = 1024 words, which keeps every operation comfortably allocation-bounded.
const MaxVars = 16

// TT is a truth table over a fixed number of variables. Bit i of the table
// (i.e. word i/64, bit i%64) holds f(x) for the assignment where variable j
// takes bit j of i. Unused high bits of the last word are kept zero so that
// tables compare with simple word equality.
type TT struct {
	nvar  int
	words []uint64
}

func wordsFor(nvar int) int {
	if nvar <= 6 {
		return 1
	}
	return 1 << (nvar - 6)
}

// mask returns the valid-bit mask for the (single-word) case.
func mask(nvar int) uint64 {
	if nvar >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << nvar)) - 1
}

// NewTT returns the constant-false function of nvar variables.
// It panics if nvar is outside [0, MaxVars].
func NewTT(nvar int) *TT {
	if nvar < 0 || nvar > MaxVars {
		panic(fmt.Sprintf("logic: NewTT(%d): want 0..%d variables", nvar, MaxVars))
	}
	return &TT{nvar: nvar, words: make([]uint64, wordsFor(nvar))}
}

// Const returns the constant function of nvar variables with the given value.
func Const(nvar int, value bool) *TT {
	t := NewTT(nvar)
	if value {
		for i := range t.words {
			t.words[i] = ^uint64(0)
		}
		t.words[len(t.words)-1] &= mask(t.nvar)
		if t.nvar < 6 {
			t.words[0] = mask(t.nvar)
		}
	}
	return t
}

// Var returns the projection function x_i over nvar variables.
func Var(nvar, i int) *TT {
	if i < 0 || i >= nvar {
		panic(fmt.Sprintf("logic: Var(%d, %d): index out of range", nvar, i))
	}
	t := NewTT(nvar)
	if i < 6 {
		// Pattern within each word.
		var p uint64
		period := 1 << (i + 1)
		for b := 0; b < 64; b++ {
			if b%period >= period/2 {
				p |= 1 << uint(b)
			}
		}
		for w := range t.words {
			t.words[w] = p
		}
		if nvar < 6 {
			t.words[0] &= mask(nvar)
		}
	} else {
		// Whole words alternate in blocks of 2^(i-6).
		block := 1 << (i - 6)
		for w := range t.words {
			if (w/block)%2 == 1 {
				t.words[w] = ^uint64(0)
			}
		}
	}
	return t
}

// NumVars returns the variable count.
func (t *TT) NumVars() int { return t.nvar }

// NumBits returns the table size 2^nvar.
func (t *TT) NumBits() int { return 1 << t.nvar }

// Clone returns a deep copy.
func (t *TT) Clone() *TT {
	c := &TT{nvar: t.nvar, words: make([]uint64, len(t.words))}
	copy(c.words, t.words)
	return c
}

// Bit returns f at minterm index i.
func (t *TT) Bit(i int) bool {
	return t.words[i>>6]&(1<<uint(i&63)) != 0
}

// SetBit sets f at minterm index i to v.
func (t *TT) SetBit(i int, v bool) {
	if v {
		t.words[i>>6] |= 1 << uint(i&63)
	} else {
		t.words[i>>6] &^= 1 << uint(i&63)
	}
}

// Eval evaluates the function on an assignment given as a bitmask (bit j =
// value of variable j).
func (t *TT) Eval(assignment uint) bool {
	i := int(assignment) & (t.NumBits() - 1)
	return t.Bit(i)
}

func (t *TT) checkSame(o *TT) {
	if t.nvar != o.nvar {
		panic(fmt.Sprintf("logic: mixing %d-var and %d-var tables", t.nvar, o.nvar))
	}
}

// And sets t = a AND b and returns t. t may alias a or b.
func (t *TT) And(a, b *TT) *TT { return t.binop(a, b, func(x, y uint64) uint64 { return x & y }) }

// Or sets t = a OR b and returns t.
func (t *TT) Or(a, b *TT) *TT { return t.binop(a, b, func(x, y uint64) uint64 { return x | y }) }

// Xor sets t = a XOR b and returns t.
func (t *TT) Xor(a, b *TT) *TT { return t.binop(a, b, func(x, y uint64) uint64 { return x ^ y }) }

func (t *TT) binop(a, b *TT, op func(x, y uint64) uint64) *TT {
	a.checkSame(b)
	a.checkSame(t)
	for i := range t.words {
		t.words[i] = op(a.words[i], b.words[i])
	}
	return t
}

// Not sets t = NOT a and returns t. t may alias a.
func (t *TT) Not(a *TT) *TT {
	a.checkSame(t)
	for i := range t.words {
		t.words[i] = ^a.words[i]
	}
	t.words[len(t.words)-1] &= mask(t.nvar)
	if t.nvar < 6 {
		t.words[0] &= mask(t.nvar)
	}
	return t
}

// Equal reports whether t and o denote the same function (same variable
// count, identical tables).
func (t *TT) Equal(o *TT) bool {
	if t.nvar != o.nvar {
		return false
	}
	for i := range t.words {
		if t.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// IsConst reports whether t is constant, and if so which constant.
func (t *TT) IsConst() (isConst, value bool) {
	allZero, allOne := true, true
	last := len(t.words) - 1
	for i, w := range t.words {
		want := ^uint64(0)
		if i == last || t.nvar < 6 {
			want = mask(t.nvar)
		}
		if w != 0 {
			allZero = false
		}
		if w != want {
			allOne = false
		}
	}
	switch {
	case allZero:
		return true, false
	case allOne:
		return true, true
	}
	return false, false
}

// CountOnes returns the number of satisfying assignments.
func (t *TT) CountOnes() int {
	n := 0
	for _, w := range t.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Cofactor returns the cofactor of t with variable i fixed to val. The result
// still ranges over nvar variables (variable i becomes irrelevant).
func (t *TT) Cofactor(i int, val bool) *TT {
	r := t.Clone()
	r.CofactorInPlace(i, val)
	return r
}

// CofactorInPlace fixes variable i to val.
func (t *TT) CofactorInPlace(i int, val bool) {
	if i < 0 || i >= t.nvar {
		panic(fmt.Sprintf("logic: Cofactor(%d) on %d-var table", i, t.nvar))
	}
	if i < 6 {
		// Mask of table positions where variable i already equals val.
		var keep uint64
		for b := 0; b < 64; b++ {
			if ((b>>uint(i))&1 == 1) == val {
				keep |= 1 << uint(b)
			}
		}
		shift := uint(1) << uint(i)
		for w := range t.words {
			x := t.words[w] & keep
			if val {
				t.words[w] = x | (x >> shift)
			} else {
				t.words[w] = x | (x << shift)
			}
		}
		if t.nvar < 6 {
			t.words[0] &= mask(t.nvar)
		}
	} else {
		block := 1 << (i - 6)
		// Copy the selected half over both halves, block by block.
		for base := 0; base < len(t.words); base += 2 * block {
			lo, hi := base, base+block
			if val {
				copy(t.words[lo:lo+block], t.words[hi:hi+block])
			} else {
				copy(t.words[hi:hi+block], t.words[lo:lo+block])
			}
		}
	}
}

// DependsOn reports whether t depends on variable i.
func (t *TT) DependsOn(i int) bool {
	return !t.Cofactor(i, false).Equal(t.Cofactor(i, true))
}

// Support returns the indices of variables t depends on.
func (t *TT) Support() []int {
	var s []int
	for i := 0; i < t.nvar; i++ {
		if t.DependsOn(i) {
			s = append(s, i)
		}
	}
	return s
}

// Expand returns the same function over a larger variable set: variable j of
// t becomes variable varMap[j] of the result, which has nvar variables.
func (t *TT) Expand(nvar int, varMap []int) *TT {
	if len(varMap) != t.nvar {
		panic("logic: Expand: varMap length mismatch")
	}
	r := NewTT(nvar)
	n := r.NumBits()
	for i := 0; i < n; i++ {
		var j uint
		for k, m := range varMap {
			if i&(1<<uint(m)) != 0 {
				j |= 1 << uint(k)
			}
		}
		if t.Eval(j) {
			r.SetBit(i, true)
		}
	}
	return r
}

// Compose substitutes functions for variables: result(x) =
// t(subs[0](x), ..., subs[nvar-1](x)). All substituted functions must range
// over the same variable count, which becomes the result's variable count.
func (t *TT) Compose(subs []*TT) *TT {
	if len(subs) != t.nvar {
		panic("logic: Compose: need one substitution per variable")
	}
	if t.nvar == 0 {
		panic("logic: Compose on 0-var table")
	}
	nv := subs[0].nvar
	for _, s := range subs {
		if s.nvar != nv {
			panic("logic: Compose: substitutions over different variable sets")
		}
	}
	r := NewTT(nv)
	n := r.NumBits()
	for i := 0; i < n; i++ {
		var j uint
		for k, s := range subs {
			if s.Bit(i) {
				j |= 1 << uint(k)
			}
		}
		if t.Eval(j) {
			r.SetBit(i, true)
		}
	}
	return r
}

// FromBits builds a table from a little-endian bit string such as "1011"
// (bit i of the string is the value at minterm i; index 0 first).
func FromBits(nvar int, bitstr string) (*TT, error) {
	t := NewTT(nvar)
	if len(bitstr) != t.NumBits() {
		return nil, fmt.Errorf("logic: FromBits: want %d bits, got %d", t.NumBits(), len(bitstr))
	}
	for i, c := range bitstr {
		switch c {
		case '1':
			t.SetBit(i, true)
		case '0':
		default:
			return nil, fmt.Errorf("logic: FromBits: bad character %q", c)
		}
	}
	return t, nil
}

// String renders the table as a little-endian bit string.
func (t *TT) String() string {
	var b strings.Builder
	n := t.NumBits()
	for i := 0; i < n; i++ {
		if t.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
