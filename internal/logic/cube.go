package logic

// Cube is a product term over up to MaxVars variables: variable i is in the
// cube iff bit i of Care is set, with polarity bit i of Pol (1 = positive
// literal). The empty cube (Care == 0) is the tautology.
type Cube struct {
	Care uint32
	Pol  uint32
}

// NumLiterals returns the literal count of the cube.
func (q Cube) NumLiterals() int {
	n := 0
	for m := q.Care; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// TT materializes the cube as a truth table over nvar variables.
func (q Cube) TT(nvar int) *TT {
	t := Const(nvar, true)
	for i := 0; i < nvar; i++ {
		if q.Care&(1<<uint(i)) == 0 {
			continue
		}
		x := Var(nvar, i)
		if q.Pol&(1<<uint(i)) == 0 {
			x.Not(x)
		}
		t.And(t, x)
	}
	return t
}

// CoverTT returns the disjunction of the cubes over nvar variables.
func CoverTT(nvar int, cover []Cube) *TT {
	t := Const(nvar, false)
	for _, q := range cover {
		t.Or(t, q.TT(nvar))
	}
	return t
}

// ISOP computes an irredundant sum-of-products cover of f using the
// Minato–Morreale procedure. The cover is exact: CoverTT(f.NumVars(), cover)
// equals f. Covers are usually far smaller than minterm covers, which keeps
// the gate-decomposition trees (and BLIF files) small.
func ISOP(f *TT) []Cube {
	cover, _ := isop(f.Clone(), f.Clone(), f.NumVars())
	return cover
}

// isop returns a cover C with L <= C <= U and the TT of C.
// L and U are consumed (mutated).
func isop(l, u *TT, nvar int) ([]Cube, *TT) {
	if c, v := l.IsConst(); c && !v {
		return nil, Const(l.NumVars(), false)
	}
	if c, v := u.IsConst(); c && v {
		return []Cube{{}}, Const(l.NumVars(), true)
	}
	// Split on the lowest variable where either bound actually varies.
	x := -1
	for i := 0; i < nvar; i++ {
		if l.DependsOn(i) || u.DependsOn(i) {
			x = i
			break
		}
	}
	if x == -1 {
		// l is not constant-0 and u is not constant-1, yet neither depends
		// on anything: impossible since l <= u.
		panic("logic: isop invariant violated")
	}
	n := l.NumVars()
	l0, l1 := l.Cofactor(x, false), l.Cofactor(x, true)
	u0, u1 := u.Cofactor(x, false), u.Cofactor(x, true)

	// Cubes that must carry literal !x: needed where f must be 1 with x=0
	// but cannot be covered by an x-free cube (u1 is 0 there).
	nu1 := NewTT(n).Not(u1)
	c0, t0 := isop(NewTT(n).And(l0, nu1), u0.Clone(), nvar)
	// Cubes that must carry literal x.
	nu0 := NewTT(n).Not(u0)
	c1, t1 := isop(NewTT(n).And(l1, nu0), u1.Clone(), nvar)
	// Remaining requirements, coverable without mentioning x.
	d0 := NewTT(n).And(l0, NewTT(n).Not(t0))
	d1 := NewTT(n).And(l1, NewTT(n).Not(t1))
	cc, tc := isop(NewTT(n).Or(d0, d1), NewTT(n).And(u0, u1), nvar)

	out := make([]Cube, 0, len(c0)+len(c1)+len(cc))
	for _, q := range c0 {
		q.Care |= 1 << uint(x)
		out = append(out, q)
	}
	for _, q := range c1 {
		q.Care |= 1 << uint(x)
		q.Pol |= 1 << uint(x)
		out = append(out, q)
	}
	out = append(out, cc...)

	xv := Var(n, x)
	nxv := NewTT(n).Not(xv)
	res := NewTT(n).Or(
		NewTT(n).Or(NewTT(n).And(nxv, t0), NewTT(n).And(xv, t1)),
		tc)
	return out, res
}

// IsParity reports whether f is an affine parity function over its support:
// f = c XOR x_{i1} XOR ... XOR x_{ik}. It returns the support and the
// complement flag when so.
func (t *TT) IsParity() (support []int, invert, ok bool) {
	support = t.Support()
	p := Const(t.nvar, false)
	for _, i := range support {
		p.Xor(p, Var(t.nvar, i))
	}
	if p.Equal(t) {
		return support, false, true
	}
	if NewTT(t.nvar).Not(p).Equal(t) {
		return support, true, true
	}
	return nil, false, false
}
