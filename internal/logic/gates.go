package logic

// Convenience constructors for the primitive gate functions used by the
// netlist builders and the benchmark generators. Each returns a table over
// nvar variables computing the gate over all of them.

// AndAll returns x_0 AND ... AND x_{nvar-1}.
func AndAll(nvar int) *TT {
	t := Const(nvar, true)
	for i := 0; i < nvar; i++ {
		t.And(t, Var(nvar, i))
	}
	return t
}

// OrAll returns x_0 OR ... OR x_{nvar-1}.
func OrAll(nvar int) *TT {
	t := Const(nvar, false)
	for i := 0; i < nvar; i++ {
		t.Or(t, Var(nvar, i))
	}
	return t
}

// XorAll returns x_0 XOR ... XOR x_{nvar-1}.
func XorAll(nvar int) *TT {
	t := Const(nvar, false)
	for i := 0; i < nvar; i++ {
		t.Xor(t, Var(nvar, i))
	}
	return t
}

// NandAll returns NOT(AndAll).
func NandAll(nvar int) *TT { t := AndAll(nvar); return t.Not(t) }

// NorAll returns NOT(OrAll).
func NorAll(nvar int) *TT { t := OrAll(nvar); return t.Not(t) }

// Buf returns the 1-input identity function.
func Buf() *TT { return Var(1, 0) }

// Inv returns the 1-input inverter.
func Inv() *TT { t := Var(1, 0); return t.Not(t) }

// Mux21 returns the 3-input multiplexer: x_2 ? x_1 : x_0.
func Mux21() *TT {
	s := Var(3, 2)
	a := Var(3, 0)
	b := Var(3, 1)
	ns := s.Clone().Not(s)
	lo := a.And(a, ns)
	hi := b.And(b, s)
	return lo.Or(lo, hi)
}

// Maj3 returns the 3-input majority function.
func Maj3() *TT {
	a, b, c := Var(3, 0), Var(3, 1), Var(3, 2)
	ab := NewTT(3).And(a, b)
	ac := NewTT(3).And(a, c)
	bc := NewTT(3).And(b, c)
	r := NewTT(3).Or(ab, ac)
	return r.Or(r, bc)
}
