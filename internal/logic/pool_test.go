package logic

import (
	"math/rand"
	"testing"
)

// TestComposeBoolPoolMatchesUnpooled: the pooled composition is the same
// pure function as the allocating one, for random tables across variable
// counts, and the pool ends each round holding every transient it issued
// (nothing leaks, nothing double-frees into visible corruption).
func TestComposeBoolPoolMatchesUnpooled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pool TTPool
	for round := 0; round < 200; round++ {
		k := 1 + rng.Intn(5)  // outer function arity
		nv := 1 + rng.Intn(9) // substitution variable count
		f := randTT(rng, k)
		subs := make([]*TT, k)
		for i := range subs {
			subs[i] = randTT(rng, nv)
		}
		want := f.ComposeBool(subs)
		got := f.ComposeBoolPool(subs, &pool)
		if !got.Equal(want) {
			t.Fatalf("round %d: pooled compose diverged\nwant %s\ngot  %s", round, want, got)
		}
		pool.Put(got)
	}
	if pool.Bytes() == 0 {
		t.Error("pool retained nothing after 200 rounds")
	}
}

// TestComposeBoolPoolPreservesInputs: composition must not mutate the outer
// function or the substitutions, pooled or not.
func TestComposeBoolPoolPreservesInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var pool TTPool
	f := randTT(rng, 4)
	subs := make([]*TT, 4)
	snap := make([]*TT, 4)
	for i := range subs {
		subs[i] = randTT(rng, 8)
		snap[i] = subs[i].Clone()
	}
	fsnap := f.Clone()
	got := f.ComposeBoolPool(subs, &pool)
	if !f.Equal(fsnap) {
		t.Error("ComposeBoolPool mutated the outer function")
	}
	for i := range subs {
		if !subs[i].Equal(snap[i]) {
			t.Errorf("ComposeBoolPool mutated substitution %d", i)
		}
	}
	pool.Put(got)
}

// TestTTPoolReuse: Get after Put returns the pooled table; nil pools
// degrade to allocation; Bytes tracks the freelist.
func TestTTPoolReuse(t *testing.T) {
	var pool TTPool
	a := pool.Get(8)
	if pool.Bytes() != 0 {
		t.Error("empty pool reports retained bytes")
	}
	pool.Put(a)
	if pool.Bytes() == 0 {
		t.Error("pool retains nothing after Put")
	}
	b := pool.Get(8)
	if a != b {
		t.Error("Get did not reuse the pooled table")
	}
	if c := pool.Get(8); c == a {
		t.Error("Get issued the same table twice")
	}
	var nilPool *TTPool
	if nilPool.Get(3) == nil {
		t.Error("nil pool Get returned nil")
	}
	nilPool.Put(NewTT(3)) // must not panic
	if nilPool.Bytes() != 0 {
		t.Error("nil pool reports bytes")
	}
}
