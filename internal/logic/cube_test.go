package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCubeTT(t *testing.T) {
	// x0 AND !x2 over 3 vars.
	q := Cube{Care: 0b101, Pol: 0b001}
	tt := q.TT(3)
	for i := 0; i < 8; i++ {
		want := i&1 != 0 && i&4 == 0
		if tt.Bit(i) != want {
			t.Fatalf("cube wrong at %d", i)
		}
	}
	if q.NumLiterals() != 2 {
		t.Fatal("literal count")
	}
	if c, v := (Cube{}).TT(3).IsConst(); !c || !v {
		t.Fatal("empty cube must be tautology")
	}
}

func TestISOPExactQuick(t *testing.T) {
	f := func(seed int64, nvarRaw uint8) bool {
		nvar := 1 + int(nvarRaw)%8
		rng := rand.New(rand.NewSource(seed))
		tt := randomTT(rng, nvar)
		cover := ISOP(tt)
		return CoverTT(nvar, cover).Equal(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestISOPCompact(t *testing.T) {
	// 8-input AND: one cube, not 1 minterm... the minterm count equals 1
	// here, so use OR: 8-input OR must be 8 single-literal cubes, far fewer
	// than its 255 minterms.
	cover := ISOP(OrAll(8))
	if len(cover) != 8 {
		t.Fatalf("OR cover size = %d, want 8", len(cover))
	}
	for _, q := range cover {
		if q.NumLiterals() != 1 {
			t.Fatalf("OR cube not a single literal: %+v", q)
		}
	}
	cover = ISOP(AndAll(8))
	if len(cover) != 1 || cover[0].NumLiterals() != 8 {
		t.Fatalf("AND cover wrong: %v", cover)
	}
	if got := len(ISOP(Const(5, false))); got != 0 {
		t.Fatalf("const-0 cover size %d", got)
	}
	if got := ISOP(Const(5, true)); len(got) != 1 || got[0].Care != 0 {
		t.Fatalf("const-1 cover %v", got)
	}
}

func TestIsParity(t *testing.T) {
	if s, inv, ok := XorAll(5).IsParity(); !ok || inv || len(s) != 5 {
		t.Fatal("XorAll not recognized")
	}
	x := XorAll(4)
	if s, inv, ok := NewTT(4).Not(x).IsParity(); !ok || !inv || len(s) != 4 {
		t.Fatal("XNOR not recognized")
	}
	// Parity of a subset embedded in more variables.
	f := NewTT(6).Xor(Var(6, 1), Var(6, 4))
	if s, inv, ok := f.IsParity(); !ok || inv || len(s) != 2 || s[0] != 1 || s[1] != 4 {
		t.Fatalf("embedded parity: %v %v %v", s, inv, ok)
	}
	if _, _, ok := AndAll(3).IsParity(); ok {
		t.Fatal("AND misdetected as parity")
	}
}
