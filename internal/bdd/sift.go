package bdd

// Variable reordering. The decomposition literature (Lai–Pan–Pedram, which
// the paper cites for its OBDD-based resynthesis) relies on moving candidate
// bound sets to the top of the order and judging them by the cut width;
// sifting provides the standard way to search good orders.
//
// The manager's order is fixed, so reordering works functionally: Reorder
// returns the function re-expressed under a permutation, and Sift greedily
// searches a permutation minimizing the BDD size.

// Reorder returns f under the variable permutation perm, where perm[i]
// gives the NEW level of current variable i, together with the node count
// of the result.
func (m *Manager) Reorder(f Ref, perm []int) Ref {
	if len(perm) != m.nvar {
		panic("bdd: Reorder: permutation length mismatch")
	}
	// Rebuild by Shannon expansion over the new order: at new level l we
	// decide the variable old(l).
	old := make([]int, m.nvar)
	for o, n := range perm {
		old[n] = o
	}
	type key struct {
		f     Ref
		level int
	}
	memo := make(map[key]Ref)
	var rec func(g Ref, level int) Ref
	rec = func(g Ref, level int) Ref {
		if level == m.nvar {
			// All variables decided: g must be constant over the rest...
			// it is a terminal because every variable in its support was
			// restricted away.
			return g
		}
		if g <= True {
			return g
		}
		k := key{g, level}
		if r, ok := memo[k]; ok {
			return r
		}
		v := old[level]
		lo := rec(m.Restrict(g, v, false), level+1)
		hi := rec(m.Restrict(g, v, true), level+1)
		r := m.mk(int32(level), lo, hi)
		memo[k] = r
		return r
	}
	return rec(f, 0)
}

// Size returns the number of distinct nodes reachable from f (terminals
// excluded).
func (m *Manager) Size(f Ref) int {
	seen := make(map[Ref]bool)
	var rec func(Ref)
	rec = func(g Ref) {
		if g <= True || seen[g] {
			return
		}
		seen[g] = true
		n := m.nodes[g]
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	return len(seen)
}

// Sift greedily reorders to reduce Size(f): every variable in turn is moved
// to the position that minimizes the node count (the classic sifting
// heuristic, evaluated here functionally rather than by in-place swaps).
// It returns the reordered function and the permutation applied (perm[i] =
// new level of original variable i).
func (m *Manager) Sift(f Ref) (Ref, []int) {
	n := m.nvar
	// order[l] = original variable at level l.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	permOf := func(ord []int) []int {
		p := make([]int, n)
		for l, v := range ord {
			p[v] = l
		}
		return p
	}
	best := m.Reorder(f, permOf(order))
	bestSize := m.Size(best)
	for _, v := range m.Support(f) {
		// Current level of v.
		cur := -1
		for l, o := range order {
			if o == v {
				cur = l
				break
			}
		}
		bestLevel, bestLocal := cur, bestSize
		for l := 0; l < n; l++ {
			if l == cur {
				continue
			}
			cand := moveVar(order, cur, l)
			r := m.Reorder(f, permOf(cand))
			if s := m.Size(r); s < bestLocal {
				bestLocal, bestLevel = s, l
			}
		}
		if bestLevel != cur {
			order = moveVar(order, cur, bestLevel)
			best = m.Reorder(f, permOf(order))
			bestSize = m.Size(best)
		}
	}
	return best, permOf(order)
}

// moveVar returns a copy of ord with the element at position from moved to
// position to.
func moveVar(ord []int, from, to int) []int {
	out := make([]int, 0, len(ord))
	v := ord[from]
	for i, x := range ord {
		if i == from {
			continue
		}
		out = append(out, x)
	}
	out = append(out[:to], append([]int{v}, out[to:]...)...)
	return out
}
