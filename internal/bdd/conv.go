package bdd

import (
	"fmt"

	"turbosyn/internal/logic"
)

// FromTT builds the BDD of a truth table; variable i of the table maps to
// manager variable i. The table may range over fewer variables than the
// manager has.
func (m *Manager) FromTT(t *logic.TT) Ref {
	n := t.NumVars()
	if n > m.nvar {
		panic(fmt.Sprintf("bdd: FromTT of %d-var table in %d-var manager", n, m.nvar))
	}
	cur := make([]Ref, 1<<uint(n))
	for i := range cur {
		if t.Bit(i) {
			cur[i] = True
		} else {
			cur[i] = False
		}
	}
	// Fold in variables from the bottom of the order (highest index) up, so
	// x0 ends on top. After processing variable v, cur is indexed by the
	// assignment of variables [0, v).
	for v := n - 1; v >= 0; v-- {
		half := 1 << uint(v)
		next := make([]Ref, half)
		for a := 0; a < half; a++ {
			next[a] = m.mk(int32(v), cur[a], cur[a+half])
		}
		cur = next
	}
	return cur[0]
}

// ToTT materializes f as a truth table over nvar variables.
func (m *Manager) ToTT(f Ref, nvar int) *logic.TT {
	t := logic.NewTT(nvar)
	for i := 0; i < t.NumBits(); i++ {
		if m.Eval(f, uint(i)) {
			t.SetBit(i, true)
		}
	}
	return t
}
