package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"turbosyn/internal/logic"
)

func randomTT(rng *rand.Rand, nvar int) *logic.TT {
	t := logic.NewTT(nvar)
	for i := 0; i < t.NumBits(); i++ {
		if rng.Intn(2) == 1 {
			t.SetBit(i, true)
		}
	}
	return t
}

func TestTerminalsAndVars(t *testing.T) {
	m := New(3)
	if m.Eval(True, 0) != true || m.Eval(False, 7) != false {
		t.Fatal("terminal evaluation broken")
	}
	for i := 0; i < 3; i++ {
		x := m.Var(i)
		nx := m.NVar(i)
		for a := uint(0); a < 8; a++ {
			want := a&(1<<uint(i)) != 0
			if m.Eval(x, a) != want {
				t.Fatalf("Var(%d) at %d", i, a)
			}
			if m.Eval(nx, a) != !want {
				t.Fatalf("NVar(%d) at %d", i, a)
			}
		}
	}
	// Hash-consing: same variable requested twice gives the same node.
	if m.Var(1) != m.Var(1) {
		t.Fatal("unique table not shared")
	}
}

func TestOpsAgainstTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nvar := 1 + rng.Intn(8)
		m := New(nvar)
		ta, tb := randomTT(rng, nvar), randomTT(rng, nvar)
		a, b := m.FromTT(ta), m.FromTT(tb)
		check := func(name string, got Ref, want *logic.TT) {
			if !m.ToTT(got, nvar).Equal(want) {
				t.Fatalf("%s mismatch (nvar=%d trial=%d)", name, nvar, trial)
			}
		}
		check("and", m.And(a, b), logic.NewTT(nvar).And(ta, tb))
		check("or", m.Or(a, b), logic.NewTT(nvar).Or(ta, tb))
		check("xor", m.Xor(a, b), logic.NewTT(nvar).Xor(ta, tb))
		check("not", m.Not(a), logic.NewTT(nvar).Not(ta))
		v := rng.Intn(nvar)
		check("restrict0", m.Restrict(a, v, false), ta.Cofactor(v, false))
		check("restrict1", m.Restrict(a, v, true), ta.Cofactor(v, true))
	}
}

func TestCanonicity(t *testing.T) {
	// Two structurally different constructions of the same function must
	// produce the identical Ref.
	m := New(4)
	x0, x1, x2 := m.Var(0), m.Var(1), m.Var(2)
	// (x0 AND x1) OR x2  ==  ITE(x2, true, x0 AND x1)
	f := m.Or(m.And(x0, x1), x2)
	g := m.ITE(x2, True, m.And(x1, x0))
	if f != g {
		t.Fatal("equal functions got different refs")
	}
	// De Morgan.
	h1 := m.Not(m.And(x0, x1))
	h2 := m.Or(m.Not(x0), m.Not(x1))
	if h1 != h2 {
		t.Fatal("De Morgan failed")
	}
}

func TestSatCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		nvar := rng.Intn(10)
		m := New(nvar)
		tt := randomTT(rng, nvar)
		f := m.FromTT(tt)
		if got, want := m.SatCount(f), uint64(tt.CountOnes()); got != want {
			t.Fatalf("SatCount = %d, want %d (nvar=%d)", got, want, nvar)
		}
	}
	m := New(5)
	if m.SatCount(True) != 32 || m.SatCount(False) != 0 {
		t.Fatal("terminal SatCount wrong")
	}
}

func TestSupport(t *testing.T) {
	m := New(6)
	f := m.And(m.Var(1), m.Xor(m.Var(3), m.Var(5)))
	s := m.Support(f)
	want := []int{1, 3, 5}
	if len(s) != len(want) {
		t.Fatalf("support %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("support %v, want %v", s, want)
		}
	}
}

func TestCutRefsColumnMultiplicity(t *testing.T) {
	// f = (x0 XOR x1) AND x2: with bound set {x0,x1} (k=2) the distinct
	// cofactors are {x2, false}: multiplicity 2.
	m := New(3)
	f := m.And(m.Xor(m.Var(0), m.Var(1)), m.Var(2))
	cut := m.CutRefs(f, 2)
	if len(cut) != 2 {
		t.Fatalf("multiplicity = %d, want 2", len(cut))
	}
	// Brute-force check against CofactorAtAssignment.
	seen := map[Ref]bool{}
	for a := uint(0); a < 4; a++ {
		seen[m.CofactorAtAssignment(f, 2, a)] = true
	}
	if len(seen) != len(cut) {
		t.Fatalf("cut enumeration inconsistent: %d vs %d", len(seen), len(cut))
	}
}

func TestCutRefsQuick(t *testing.T) {
	f := func(seed int64, nvarRaw, kRaw uint8) bool {
		nvar := 1 + int(nvarRaw)%8
		k := int(kRaw) % (nvar + 1)
		rng := rand.New(rand.NewSource(seed))
		m := New(nvar)
		r := m.FromTT(randomTT(rng, nvar))
		cut := m.CutRefs(r, k)
		distinct := map[Ref]bool{}
		for a := uint(0); a < 1<<uint(k); a++ {
			distinct[m.CofactorAtAssignment(r, k, a)] = true
		}
		if len(distinct) != len(cut) {
			return false
		}
		for _, c := range cut {
			if !distinct[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFromTTRoundTrip(t *testing.T) {
	f := func(seed int64, nvarRaw uint8) bool {
		nvar := int(nvarRaw) % 11
		rng := rand.New(rand.NewSource(seed))
		m := New(nvar)
		tt := randomTT(rng, nvar)
		return m.ToTT(m.FromTT(tt), nvar).Equal(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedManagerGrowth(t *testing.T) {
	// Building the same function repeatedly must not grow the node table.
	m := New(8)
	var f Ref
	for i := 0; i < 8; i++ {
		f = m.Or(f, m.And(m.Var(i%8), m.Var((i+1)%8)))
	}
	before := m.NumNodes()
	g := False
	for i := 0; i < 8; i++ {
		g = m.Or(g, m.And(m.Var(i%8), m.Var((i+1)%8)))
	}
	if f != g {
		t.Fatal("rebuild produced different ref")
	}
	if m.NumNodes() != before {
		t.Fatalf("node table grew from %d to %d on rebuild", before, m.NumNodes())
	}
}

func TestPanicsOnBadVar(t *testing.T) {
	m := New(2)
	for name, fn := range map[string]func(){
		"Var":      func() { m.Var(2) },
		"NVar":     func() { m.NVar(-1) },
		"Restrict": func() { m.Restrict(True, 9, false) },
		"CutRefs":  func() { m.CutRefs(True, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkITEChain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New(16)
		f := True
		for v := 0; v < 16; v++ {
			f = m.Xor(f, m.Var(v))
		}
		_ = m.SatCount(f)
	}
}
