package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// permEval checks g(a) == f(b) with b_v = a_{perm[v]}.
func permEval(m *Manager, f, g Ref, perm []int, nvar int) bool {
	for a := uint(0); a < 1<<uint(nvar); a++ {
		var b uint
		for v := 0; v < nvar; v++ {
			if a&(1<<uint(perm[v])) != 0 {
				b |= 1 << uint(v)
			}
		}
		if m.Eval(g, a) != m.Eval(f, b) {
			return false
		}
	}
	return true
}

func TestReorderIdentity(t *testing.T) {
	m := New(4)
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.And(m.Var(2), m.Var(3)))
	perm := []int{0, 1, 2, 3}
	if got := m.Reorder(f, perm); got != f {
		t.Fatal("identity permutation must return the same node")
	}
}

func TestReorderQuick(t *testing.T) {
	fn := func(seed int64, nvarRaw uint8) bool {
		nvar := 1 + int(nvarRaw)%6
		rng := rand.New(rand.NewSource(seed))
		m := New(nvar)
		f := m.FromTT(randomTT(rng, nvar))
		perm := rng.Perm(nvar)
		g := m.Reorder(f, perm)
		return permEval(m, f, g, perm, nvar)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSiftShrinksInterleavedComparator(t *testing.T) {
	// f = (x0<->x3) AND (x1<->x4) AND (x2<->x5): the interleaved order
	// (x0,x3,x1,x4,...) is exponentially smaller than the blocked one the
	// natural order gives for the equality function... with 3 bits the
	// effect is a modest but strict shrink.
	m := New(6)
	f := True
	for i := 0; i < 3; i++ {
		eq := m.Not(m.Xor(m.Var(i), m.Var(i+3)))
		f = m.And(f, eq)
	}
	before := m.Size(f)
	g, perm := m.Sift(f)
	after := m.Size(g)
	if after > before {
		t.Fatalf("sifting grew the BDD: %d -> %d", before, after)
	}
	if after >= before {
		t.Logf("no shrink (%d); acceptable but unexpected for the comparator", before)
	}
	if !permEval(m, f, g, perm, 6) {
		t.Fatal("sifting changed the function")
	}
}

func TestSiftQuickFunctionPreserved(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvar := 3 + rng.Intn(5)
		m := New(nvar)
		f := m.FromTT(randomTT(rng, nvar))
		g, perm := m.Sift(f)
		if m.Size(g) > m.Size(f) {
			return false
		}
		return permEval(m, f, g, perm, nvar)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeTerminals(t *testing.T) {
	m := New(3)
	if m.Size(True) != 0 || m.Size(False) != 0 {
		t.Fatal("terminals have size 0")
	}
	if m.Size(m.Var(1)) != 1 {
		t.Fatal("a single variable has size 1")
	}
}
