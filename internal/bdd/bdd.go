// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a shared unique table and an ITE-based apply, as used by the paper's
// OBDD-based functional decomposition (Lai/Pan/Pedram style): the column
// multiplicity of a bound set equals the number of distinct subfunctions in
// the BDD cut below the bound variables when those variables are ordered on
// top.
//
// The manager uses a fixed variable order x0 < x1 < ... (x0 at the top).
// Functions are referenced by node index; complement edges are not used, so
// every distinct function has exactly one node. The zero and one terminals
// are indices 0 and 1.
package bdd

import "fmt"

// Ref is a handle to a BDD node (function) inside a Manager.
type Ref int32

// Terminal references.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable index; terminals use level = numVars
	lo, hi Ref   // cofactors for var=0 / var=1
}

type triple struct {
	level  int32
	lo, hi Ref
}

type iteKey struct{ f, g, h Ref }

// Manager owns the node and operation caches for one variable order.
type Manager struct {
	nvar     int
	nodes    []node
	unique   map[triple]Ref
	iteMem   map[iteKey]Ref
	limit    int // max node count, 0 = unlimited
	overflow bool
}

// New returns a manager over nvar variables.
func New(nvar int) *Manager {
	if nvar < 0 {
		panic("bdd: negative variable count")
	}
	m := &Manager{
		nvar:   nvar,
		unique: make(map[triple]Ref),
		iteMem: make(map[iteKey]Ref),
	}
	term := int32(nvar)
	m.nodes = append(m.nodes, node{level: term}, node{level: term})
	return m
}

// NewBounded returns a manager that refuses to grow beyond maxNodes live
// nodes (terminals included; maxNodes <= 0 means unlimited). Construction is
// worst-case exponential in the variable count, so bounded managers are how
// callers keep OBDD-based decomposition inside a memory budget: once a
// construction would exceed the ceiling the manager sets its overflow flag
// and returns structurally valid but unspecified results — callers must
// check Overflowed() and discard everything built since the flag was set.
func NewBounded(nvar, maxNodes int) *Manager {
	m := New(nvar)
	if maxNodes > 0 {
		m.limit = maxNodes
	}
	return m
}

// Overflowed reports whether any construction hit the node ceiling. Results
// produced after the first overflow are unspecified and must be discarded.
func (m *Manager) Overflowed() bool { return m.overflow }

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.nvar }

// NumNodes returns the number of live nodes including terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// mk returns the canonical node (level, lo, hi), applying the reduction rule.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := triple{level, lo, hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	if m.limit > 0 && len(m.nodes) >= m.limit {
		// Over budget: flag the overflow and return an arbitrary valid node
		// so in-flight recursions terminate; the caller discards the result.
		m.overflow = true
		return lo
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[key] = r
	return r
}

// Var returns the function x_i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.nvar {
		panic(fmt.Sprintf("bdd: Var(%d) with %d variables", i, m.nvar))
	}
	return m.mk(int32(i), False, True)
}

// NVar returns NOT x_i.
func (m *Manager) NVar(i int) Ref {
	if i < 0 || i >= m.nvar {
		panic(fmt.Sprintf("bdd: NVar(%d) with %d variables", i, m.nvar))
	}
	return m.mk(int32(i), True, False)
}

// Level returns the decision variable of f, or NumVars for terminals.
func (m *Manager) Level(f Ref) int { return int(m.nodes[f].level) }

// Cofactors returns the lo/hi children of f. Terminals return themselves.
func (m *Manager) Cofactors(f Ref) (lo, hi Ref) {
	if f <= True {
		return f, f
	}
	n := m.nodes[f]
	return n.lo, n.hi
}

// ITE computes if-then-else(f, g, h) = f·g + f'·h, the universal connective.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := iteKey{f, g, h}
	if r, ok := m.iteMem[key]; ok {
		return r
	}
	top := m.nodes[f].level
	if l := m.nodes[g].level; l < top {
		top = l
	}
	if l := m.nodes[h].level; l < top {
		top = l
	}
	f0, f1 := m.cofactorAt(f, top)
	g0, g1 := m.cofactorAt(g, top)
	h0, h1 := m.cofactorAt(h, top)
	lo := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.iteMem[key] = r
	return r
}

func (m *Manager) cofactorAt(f Ref, level int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Not returns NOT f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Restrict fixes variable i of f to val.
func (m *Manager) Restrict(f Ref, i int, val bool) Ref {
	if i < 0 || i >= m.nvar {
		panic(fmt.Sprintf("bdd: Restrict(%d) with %d variables", i, m.nvar))
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(g Ref) Ref {
		n := m.nodes[g]
		if int(n.level) > i {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		var r Ref
		if int(n.level) == i {
			if val {
				r = n.hi
			} else {
				r = n.lo
			}
		} else {
			r = m.mk(n.level, rec(n.lo), rec(n.hi))
		}
		memo[g] = r
		return r
	}
	return rec(f)
}

// Eval evaluates f under the assignment (bit j of assignment = x_j).
func (m *Manager) Eval(f Ref, assignment uint) bool {
	for f > True {
		n := m.nodes[f]
		if assignment&(1<<uint(n.level)) != 0 {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables.
func (m *Manager) SatCount(f Ref) uint64 {
	// rec(g) counts assignments over the variables at or below g's level.
	memo := map[Ref]uint64{False: 0, True: 1}
	var rec func(Ref) uint64
	rec = func(g Ref) uint64 {
		if c, ok := memo[g]; ok {
			return c
		}
		n := m.nodes[g]
		lo := rec(n.lo) << uint(m.nodes[n.lo].level-n.level-1)
		hi := rec(n.hi) << uint(m.nodes[n.hi].level-n.level-1)
		c := lo + hi
		memo[g] = c
		return c
	}
	return rec(f) << uint(m.nodes[f].level)
}

// Support returns the variables f depends on, in increasing order.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	vars := make([]bool, m.nvar)
	var rec func(Ref)
	rec = func(g Ref) {
		if g <= True || seen[g] {
			return
		}
		seen[g] = true
		n := m.nodes[g]
		vars[n.level] = true
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	var out []int
	for i, b := range vars {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// CutRefs returns the distinct subfunctions of f that appear below the
// boundary between variables [0, k) and [k, nvar): one Ref per distinct
// cofactor of f over all 2^k assignments of the top k variables. This count
// is the column multiplicity used by bound-set selection in functional
// decomposition (bound set = the top k variables).
func (m *Manager) CutRefs(f Ref, k int) []Ref {
	if k < 0 || k > m.nvar {
		panic(fmt.Sprintf("bdd: CutRefs(k=%d) with %d variables", k, m.nvar))
	}
	inCut := make(map[Ref]bool)
	visited := make(map[Ref]bool)
	var cut []Ref
	var rec func(Ref)
	rec = func(g Ref) {
		if int(m.nodes[g].level) >= k { // terminals have level == nvar >= k
			if !inCut[g] {
				inCut[g] = true
				cut = append(cut, g)
			}
			return
		}
		if visited[g] {
			return
		}
		visited[g] = true
		n := m.nodes[g]
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	return cut
}

// CofactorAtAssignment returns the subfunction of f reached by assigning the
// top k variables according to the low k bits of a.
func (m *Manager) CofactorAtAssignment(f Ref, k int, a uint) Ref {
	for int(m.nodes[f].level) < k {
		n := m.nodes[f]
		if a&(1<<uint(n.level)) != 0 {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f
}
