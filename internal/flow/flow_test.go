package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplePath(t *testing.T) {
	n := NewNet(4)
	n.AddArc(0, 1, 1)
	n.AddArc(1, 2, 1)
	n.AddArc(2, 3, 1)
	if f := n.MaxFlowUpTo(0, 3, 10); f != 1 {
		t.Fatalf("flow = %d, want 1", f)
	}
}

func TestParallelPaths(t *testing.T) {
	// s -> {1,2,3} -> t, three disjoint unit paths.
	n := NewNet(5)
	for v := 1; v <= 3; v++ {
		n.AddArc(0, v, 1)
		n.AddArc(v, 4, 1)
	}
	if f := n.MaxFlowUpTo(0, 4, 10); f != 3 {
		t.Fatalf("flow = %d, want 3", f)
	}
}

func TestEarlyExit(t *testing.T) {
	n := NewNet(6)
	for v := 1; v <= 4; v++ {
		n.AddArc(0, v, 1)
		n.AddArc(v, 5, 1)
	}
	if f := n.MaxFlowUpTo(0, 5, 2); f != 3 {
		t.Fatalf("early exit should report limit+1 = 3, got %d", f)
	}
}

func TestBottleneckWithInfArcs(t *testing.T) {
	// s -Inf-> a -1-> b -Inf-> t: max flow 1.
	n := NewNet(4)
	n.AddArc(0, 1, Inf)
	n.AddArc(1, 2, 1)
	n.AddArc(2, 3, Inf)
	if f := n.MaxFlowUpTo(0, 3, 10); f != 1 {
		t.Fatalf("flow = %d, want 1", f)
	}
	reach := n.ResidualReach(0)
	if !reach[0] || !reach[1] || reach[2] || reach[3] {
		t.Fatalf("residual reach wrong: %v", reach)
	}
}

func TestNeedsResidualReversal(t *testing.T) {
	// Classic case where a greedy path must be partially undone:
	//   s->a->b->t and s->b, a->t (all unit). Max flow 2 requires routing
	//   through the residual of a->b if BFS first used s->a->b->t.
	n := NewNet(4)
	s, a, b, tt := 0, 1, 2, 3
	n.AddArc(s, a, 1)
	n.AddArc(a, b, 1)
	n.AddArc(b, tt, 1)
	n.AddArc(s, b, 1)
	n.AddArc(a, tt, 1)
	if f := n.MaxFlowUpTo(s, tt, 10); f != 2 {
		t.Fatalf("flow = %d, want 2", f)
	}
}

// referenceMinCut computes the min s-t cut value by brute force over all
// subsets (for tiny graphs): capacity of arcs from S-side to T-side.
func referenceMaxFlow(nodes int, arcs [][3]int, s, t int) int {
	best := 1 << 30
	for mask := 0; mask < 1<<uint(nodes); mask++ {
		if mask&(1<<uint(s)) == 0 || mask&(1<<uint(t)) != 0 {
			continue
		}
		capSum := 0
		for _, a := range arcs {
			if mask&(1<<uint(a[0])) != 0 && mask&(1<<uint(a[1])) == 0 {
				capSum += a[2]
				if capSum >= best {
					break
				}
			}
		}
		if capSum < best {
			best = capSum
		}
	}
	return best
}

func TestMaxFlowMinCutQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 4 + rng.Intn(5)
		nArcs := rng.Intn(3 * nodes)
		var arcs [][3]int
		n := NewNet(nodes)
		for i := 0; i < nArcs; i++ {
			u, v := rng.Intn(nodes), rng.Intn(nodes)
			if u == v {
				continue
			}
			c := 1 + rng.Intn(3)
			arcs = append(arcs, [3]int{u, v, c})
			n.AddArc(u, v, c)
		}
		s, tt := 0, nodes-1
		got := n.MaxFlowUpTo(s, tt, 1<<20)
		want := referenceMaxFlow(nodes, arcs, s, tt)
		if got != want {
			t.Logf("seed %d: flow %d, brute force %d (arcs %v)", seed, got, want, arcs)
			return false
		}
		// Min-cut consistency: arcs crossing the residual frontier sum to
		// the flow value.
		reach := n.ResidualReach(s)
		if reach[tt] {
			t.Logf("seed %d: sink reachable after max flow", seed)
			return false
		}
		cut := 0
		for _, a := range arcs {
			if reach[a[0]] && !reach[a[1]] {
				cut += a[2]
			}
		}
		if cut != want {
			t.Logf("seed %d: cut %d != flow %d", seed, cut, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestResetReuse rebuilds different networks in one Net and checks the
// verdicts match fresh networks: Reset must fully erase earlier arcs, flows
// and scratch.
func TestResetReuse(t *testing.T) {
	n := NewNet(4)
	n.AddArc(0, 1, Inf)
	n.AddArc(1, 2, 1)
	n.AddArc(2, 3, Inf)
	if f := n.MaxFlowUpTo(0, 3, 10); f != 1 {
		t.Fatalf("first build: flow = %d, want 1", f)
	}
	// Smaller network, different topology.
	n.Reset(3)
	n.AddArc(0, 1, 2)
	n.AddArc(1, 2, 2)
	if f := n.MaxFlowUpTo(0, 2, 10); f != 2 {
		t.Fatalf("after Reset: flow = %d, want 2", f)
	}
	reach := n.ResidualReach(0)
	if !reach[0] || reach[1] || reach[2] {
		t.Fatalf("after Reset: residual reach wrong: %v", reach)
	}
	// Larger than the original, exercising regrowth.
	n.Reset(6)
	for v := 1; v <= 4; v++ {
		n.AddArc(0, v, 1)
		n.AddArc(v, 5, 1)
	}
	if f := n.MaxFlowUpTo(0, 5, 10); f != 4 {
		t.Fatalf("after regrow: flow = %d, want 4", f)
	}
}

// TestWarmNetZeroAlloc pins the arena property: once a Net has been through
// one build/solve cycle at a given size, repeating the cycle allocates
// nothing.
func TestWarmNetZeroAlloc(t *testing.T) {
	n := NewNet(8)
	cycle := func() {
		n.Reset(8)
		for v := 1; v <= 6; v++ {
			n.AddArc(0, v, 1)
			n.AddArc(v, 7, 1)
		}
		if f := n.MaxFlowUpTo(0, 7, 4); f != 5 {
			t.Fatalf("flow = %d, want limit+1 = 5", f)
		}
		n.Reset(8)
		for v := 1; v <= 6; v++ {
			n.AddArc(0, v, 1)
			n.AddArc(v, 7, 1)
		}
		if f := n.MaxFlowUpTo(0, 7, 10); f != 6 {
			t.Fatalf("flow = %d, want 6", f)
		}
		_ = n.ResidualReach(0)
	}
	cycle() // warm up
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("warm Net cycle allocates %.1f objects/run, want 0", allocs)
	}
}

func TestAddNode(t *testing.T) {
	n := NewNet(1)
	a := n.AddNode()
	b := n.AddNode()
	n.AddArc(0, a, 1)
	n.AddArc(a, b, 1)
	if f := n.MaxFlowUpTo(0, b, 5); f != 1 {
		t.Fatalf("flow through appended nodes = %d", f)
	}
	if n.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
}
