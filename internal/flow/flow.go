// Package flow implements the small max-flow engine behind all K-feasible
// cut computations: unit/infinite arc capacities, breadth-first augmenting
// paths (Edmonds–Karp) with an early exit once the flow exceeds the cut
// budget K, and residual reachability for min-cut extraction.
//
// Vertex capacities (the node cut-sets of FlowMap/TurboMap) are modelled by
// the callers via node splitting.
//
// A Net is resettable: Reset reuses the arc pool, adjacency lists and BFS
// scratch of earlier builds, so callers sitting in a hot loop (the label
// computation checks one cut per node per sweep) construct and solve
// networks with zero heap allocation once the backing arrays have grown to
// the workload's high-water mark.
package flow

// Inf is the capacity of an uncuttable arc.
const Inf = int(1) << 30

// arc is one directed arc. Arcs of a node form a singly linked list through
// next, threaded in insertion order (first/last in Net) so traversal order —
// and therefore BFS tie-breaking — is identical to an adjacency-slice
// implementation.
type arc struct {
	to   int32
	next int32 // next arc of the same tail node, -1 at the end
	cap  int
}

// Net is a flow network over dense integer nodes.
type Net struct {
	arcs  []arc
	first []int32 // head of each node's arc list, -1 when empty
	last  []int32 // tail of each node's arc list (insertion order)

	// BFS/augmentation scratch, reused across MaxFlowUpTo calls.
	prevArc []int32
	queue   []int32
	// Residual-reachability scratch, reused across ResidualReach calls.
	reach []bool
}

// NewNet returns a network with n nodes and no arcs.
func NewNet(n int) *Net {
	net := &Net{}
	net.Reset(n)
	return net
}

// Reset reinitializes the network to n nodes and no arcs, retaining every
// backing array. After the first few builds at a given size, Reset and the
// subsequent AddArc/MaxFlowUpTo/ResidualReach cycle allocate nothing.
func (n *Net) Reset(num int) {
	n.arcs = n.arcs[:0]
	if cap(n.first) < num {
		n.first = make([]int32, num)
		n.last = make([]int32, num)
	}
	n.first = n.first[:num]
	n.last = n.last[:num]
	for i := range n.first {
		n.first[i] = -1
		n.last[i] = -1
	}
}

// NumNodes returns the node count.
func (n *Net) NumNodes() int { return len(n.first) }

// AddNode appends a fresh node and returns its id.
func (n *Net) AddNode() int {
	n.first = append(n.first, -1)
	n.last = append(n.last, -1)
	return len(n.first) - 1
}

// addHalf appends one directed arc u->v and links it at the tail of u's arc
// list, preserving insertion order under traversal.
func (n *Net) addHalf(u, v, capacity int) {
	id := int32(len(n.arcs))
	n.arcs = append(n.arcs, arc{to: int32(v), next: -1, cap: capacity})
	if n.last[u] < 0 {
		n.first[u] = id
	} else {
		n.arcs[n.last[u]].next = id
	}
	n.last[u] = id
}

// AddArc adds a directed arc u->v with the given capacity (its residual
// reverse arc is created automatically).
func (n *Net) AddArc(u, v, cap int) {
	n.addHalf(u, v, cap)
	n.addHalf(v, u, 0)
}

// MaxFlowUpTo pushes unit augmenting paths from s to t until either no path
// remains (the returned flow is the max flow) or the flow exceeds limit (the
// return value is limit+1 and the computation stops early; the residual
// state is still consistent).
func (n *Net) MaxFlowUpTo(s, t, limit int) int {
	flow := 0
	if cap(n.prevArc) < len(n.first) {
		n.prevArc = make([]int32, len(n.first))
		n.queue = make([]int32, 0, len(n.first))
	}
	prevArc := n.prevArc[:len(n.first)]
	for flow <= limit {
		// BFS for a shortest augmenting path.
		for i := range prevArc {
			prevArc[i] = -1
		}
		queue := n.queue[:0]
		queue = append(queue, int32(s))
		prevArc[s] = -2
		found := false
	bfs:
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for ai := n.first[u]; ai >= 0; ai = n.arcs[ai].next {
				a := &n.arcs[ai]
				if a.cap <= 0 || prevArc[a.to] != -1 {
					continue
				}
				prevArc[a.to] = ai
				if int(a.to) == t {
					found = true
					break bfs
				}
				queue = append(queue, a.to)
			}
		}
		n.queue = queue[:0]
		if !found {
			return flow
		}
		// Augment by the path bottleneck (arcs are unit or Inf; bottleneck
		// is still computed generally).
		bottleneck := Inf
		for v := t; v != s; {
			ai := prevArc[v]
			if n.arcs[ai].cap < bottleneck {
				bottleneck = n.arcs[ai].cap
			}
			v = int(n.arcs[ai^1].to)
		}
		for v := t; v != s; {
			ai := prevArc[v]
			n.arcs[ai].cap -= bottleneck
			n.arcs[ai^1].cap += bottleneck
			v = int(n.arcs[ai^1].to)
		}
		flow += bottleneck
	}
	return flow
}

// Bytes reports the approximate footprint of the network's retained arrays,
// for arena high-water accounting.
func (n *Net) Bytes() int {
	const arcSize = 16 // arc: two int32 + one int
	return cap(n.arcs)*arcSize +
		(cap(n.first)+cap(n.last)+cap(n.prevArc)+cap(n.queue))*4 +
		cap(n.reach)
}

// ResidualReach returns the set of nodes reachable from s in the residual
// network. After a completed MaxFlowUpTo (flow <= limit), the arcs crossing
// from the reachable to the unreachable side form a min cut.
//
// The returned slice is scratch owned by the Net: it stays valid until the
// next ResidualReach or Reset on the same network.
func (n *Net) ResidualReach(s int) []bool {
	if cap(n.reach) < len(n.first) {
		n.reach = make([]bool, len(n.first))
	}
	seen := n.reach[:len(n.first)]
	for i := range seen {
		seen[i] = false
	}
	seen[s] = true
	queue := n.queue[:0]
	queue = append(queue, int32(s))
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for ai := n.first[u]; ai >= 0; ai = n.arcs[ai].next {
			a := &n.arcs[ai]
			if a.cap > 0 && !seen[a.to] {
				seen[a.to] = true
				queue = append(queue, a.to)
			}
		}
	}
	n.queue = queue[:0]
	return seen
}
