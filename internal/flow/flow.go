// Package flow implements the small max-flow engine behind all K-feasible
// cut computations: unit/infinite arc capacities, breadth-first augmenting
// paths (Edmonds–Karp) with an early exit once the flow exceeds the cut
// budget K, and residual reachability for min-cut extraction.
//
// Vertex capacities (the node cut-sets of FlowMap/TurboMap) are modelled by
// the callers via node splitting.
package flow

// Inf is the capacity of an uncuttable arc.
const Inf = int(1) << 30

type arc struct {
	to  int
	cap int
}

// Net is a flow network over dense integer nodes.
type Net struct {
	arcs []arc // paired: arcs[i^1] is the reverse arc of arcs[i]
	head [][]int
}

// NewNet returns a network with n nodes and no arcs.
func NewNet(n int) *Net {
	return &Net{head: make([][]int, n)}
}

// NumNodes returns the node count.
func (n *Net) NumNodes() int { return len(n.head) }

// AddNode appends a fresh node and returns its id.
func (n *Net) AddNode() int {
	n.head = append(n.head, nil)
	return len(n.head) - 1
}

// AddArc adds a directed arc u->v with the given capacity (its residual
// reverse arc is created automatically).
func (n *Net) AddArc(u, v, cap int) {
	n.head[u] = append(n.head[u], len(n.arcs))
	n.arcs = append(n.arcs, arc{to: v, cap: cap})
	n.head[v] = append(n.head[v], len(n.arcs))
	n.arcs = append(n.arcs, arc{to: u, cap: 0})
}

// MaxFlowUpTo pushes unit augmenting paths from s to t until either no path
// remains (the returned flow is the max flow) or the flow exceeds limit (the
// return value is limit+1 and the computation stops early; the residual
// state is still consistent).
func (n *Net) MaxFlowUpTo(s, t, limit int) int {
	flow := 0
	prevArc := make([]int, len(n.head))
	queue := make([]int, 0, len(n.head))
	for flow <= limit {
		// BFS for a shortest augmenting path.
		for i := range prevArc {
			prevArc[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, s)
		prevArc[s] = -2
		found := false
	bfs:
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, ai := range n.head[u] {
				a := n.arcs[ai]
				if a.cap <= 0 || prevArc[a.to] != -1 {
					continue
				}
				prevArc[a.to] = ai
				if a.to == t {
					found = true
					break bfs
				}
				queue = append(queue, a.to)
			}
		}
		if !found {
			return flow
		}
		// Augment by the path bottleneck (arcs are unit or Inf; bottleneck
		// is still computed generally).
		bottleneck := Inf
		for v := t; v != s; {
			ai := prevArc[v]
			if n.arcs[ai].cap < bottleneck {
				bottleneck = n.arcs[ai].cap
			}
			v = n.arcs[ai^1].to
		}
		for v := t; v != s; {
			ai := prevArc[v]
			n.arcs[ai].cap -= bottleneck
			n.arcs[ai^1].cap += bottleneck
			v = n.arcs[ai^1].to
		}
		flow += bottleneck
	}
	return flow
}

// ResidualReach returns the set of nodes reachable from s in the residual
// network. After a completed MaxFlowUpTo (flow <= limit), the arcs crossing
// from the reachable to the unreachable side form a min cut.
func (n *Net) ResidualReach(s int) []bool {
	seen := make([]bool, len(n.head))
	seen[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ai := range n.head[u] {
			a := n.arcs[ai]
			if a.cap > 0 && !seen[a.to] {
				seen[a.to] = true
				queue = append(queue, a.to)
			}
		}
	}
	return seen
}
