package cut

import (
	"math/rand"
	"testing"

	"turbosyn/internal/expand"
	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// andTree: x1..x4 -> g1=AND(x1,x2), g2=AND(x3,x4), g3=AND(g1,g2),
// with labels l(PI)=0, l(g*)=1.
func andTreeExpansion(t *testing.T, lowDepth int) (*expand.Expanded, *netlist.Circuit, map[string]int) {
	t.Helper()
	c := netlist.NewCircuit("tree")
	ids := map[string]int{}
	for _, n := range []string{"x1", "x2", "x3", "x4"} {
		ids[n] = c.AddPI(n)
	}
	ids["g1"] = c.AddGate("g1", logic.AndAll(2),
		netlist.Fanin{From: ids["x1"]}, netlist.Fanin{From: ids["x2"]})
	ids["g2"] = c.AddGate("g2", logic.AndAll(2),
		netlist.Fanin{From: ids["x3"]}, netlist.Fanin{From: ids["x4"]})
	ids["g3"] = c.AddGate("g3", logic.AndAll(2),
		netlist.Fanin{From: ids["g1"]}, netlist.Fanin{From: ids["g2"]})
	c.AddPO("z", ids["g3"], 0)
	labels := make([]int, c.NumNodes())
	labels[ids["g1"]], labels[ids["g2"]], labels[ids["g3"]] = 1, 1, 1
	x, ok := expand.Build(c, ids["g3"], labels, 1, 1, expand.Options{LowDepth: lowDepth})
	if !ok {
		t.Fatal("expansion failed")
	}
	return x, c, ids
}

func TestKCutTree(t *testing.T) {
	x, _, ids := andTreeExpansion(t, 100)
	if _, ok := KCut(x, 2); ok {
		t.Fatal("2-cut should not exist (4 PIs below mandatory region)")
	}
	res, ok := KCut(x, 4)
	if !ok {
		t.Fatal("4-cut must exist")
	}
	if len(res.Cut) != 4 {
		t.Fatalf("cut size = %d, want 4", len(res.Cut))
	}
	wantCone := map[int]bool{ids["g3"]: true, ids["g1"]: true, ids["g2"]: true}
	if len(res.Cone) != 3 {
		t.Fatalf("cone size = %d, want 3", len(res.Cone))
	}
	for _, i := range res.Cone {
		if !wantCone[x.Nodes[i].Orig] {
			t.Errorf("unexpected cone member %v", x.Nodes[i])
		}
	}
	if res.Cone[0] != expand.Root {
		t.Error("cone must start at the root")
	}
}

func TestKCutInfeasibleThroughNonCandidatePI(t *testing.T) {
	// Self loop with labels forcing the PI replica to be non-candidate:
	// no cut of the required height exists for any K.
	c := netlist.NewCircuit("loop")
	pi := c.AddPI("x")
	g := c.AddGate("g", logic.XorAll(2),
		netlist.Fanin{From: pi}, netlist.Fanin{From: pi})
	c.Nodes[g].Fanins[1] = netlist.Fanin{From: g, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("z", g, 0)
	labels := make([]int, c.NumNodes())
	labels[g] = 1
	x, ok := expand.Build(c, g, labels, 1, 0, expand.Options{LowDepth: 0})
	if !ok {
		t.Fatal("expansion failed")
	}
	if _, ok := KCut(x, 100); ok {
		t.Fatal("cut through a non-candidate PI replica must not exist")
	}
}

func TestKCutSelfLoopAtHeight1(t *testing.T) {
	c := netlist.NewCircuit("loop")
	pi := c.AddPI("x")
	g := c.AddGate("g", logic.XorAll(2),
		netlist.Fanin{From: pi}, netlist.Fanin{From: pi})
	c.Nodes[g].Fanins[1] = netlist.Fanin{From: g, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("z", g, 0)
	labels := make([]int, c.NumNodes())
	labels[g] = 1
	x, ok := expand.Build(c, g, labels, 1, 1, expand.Options{LowDepth: 0})
	if !ok {
		t.Fatal("expansion failed")
	}
	res, ok := KCut(x, 2)
	if !ok {
		t.Fatal("the classic {(pi,0),(g,1)} cut must exist")
	}
	if len(res.Cut) != 2 {
		t.Fatalf("cut = %v", res.Cut)
	}
	seen := map[[2]int]bool{}
	for _, i := range res.Cut {
		seen[[2]int{x.Nodes[i].Orig, x.Nodes[i].W}] = true
	}
	if !seen[[2]int{pi, 0}] || !seen[[2]int{g, 1}] {
		t.Fatalf("unexpected cut replicas: %v", seen)
	}
}

func TestLowDepthFindsReconvergentSmallerCut(t *testing.T) {
	// d(PI) -> c1, c2 -> a, b -> root. Labels make a,b mandatory and
	// c1,c2,d candidates. Stopping at the first candidates yields cut
	// {c1,c2}; expanding one more level yields the 1-cut {d}.
	c := netlist.NewCircuit("reconv")
	d := c.AddPI("d")
	c1 := c.AddGate("c1", logic.Buf(), netlist.Fanin{From: d})
	c2 := c.AddGate("c2", logic.Buf(), netlist.Fanin{From: d})
	a := c.AddGate("a", logic.Buf(), netlist.Fanin{From: c1})
	b := c.AddGate("b", logic.Buf(), netlist.Fanin{From: c2})
	root := c.AddGate("root", logic.AndAll(2),
		netlist.Fanin{From: a}, netlist.Fanin{From: b})
	c.AddPO("z", root, 0)
	labels := make([]int, c.NumNodes())
	labels[a], labels[b] = 1, 1
	labels[root] = 1
	// L=1: a,b eff 2 (mandatory); c1,c2,d eff 1 (candidates).
	x0, ok := expand.Build(c, root, labels, 1, 1, expand.Options{LowDepth: 0})
	if !ok {
		t.Fatal("expansion failed")
	}
	if _, ok := KCut(x0, 1); ok {
		t.Fatal("LowDepth=0 cannot see the reconvergent 1-cut")
	}
	res0, ok := KCut(x0, 2)
	if !ok || len(res0.Cut) != 2 {
		t.Fatal("LowDepth=0 should find the frontier 2-cut")
	}
	x1, ok := expand.Build(c, root, labels, 1, 1, expand.Options{LowDepth: 1})
	if !ok {
		t.Fatal("expansion failed")
	}
	res1, ok := KCut(x1, 1)
	if !ok || len(res1.Cut) != 1 {
		t.Fatalf("LowDepth=1 must find the 1-cut, got %v ok=%v", res1, ok)
	}
	if x1.Nodes[res1.Cut[0]].Orig != d {
		t.Error("the 1-cut should be at the shared PI")
	}
	// Cone now contains c1 and c2 as interior (expanded candidate) nodes.
	if len(res1.Cone) != 5 {
		t.Fatalf("cone size = %d, want 5 (root,a,b,c1,c2)", len(res1.Cone))
	}
}

// TestConeClosureRandom: on random expansions, every fanin of a cone
// interior replica must itself be in the cone or in the cut (otherwise the
// materialized LUT would miss an input), and the cut size must equal the
// max-flow value implied by feasibility at that k.
func TestConeClosureRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		c := netlist.NewCircuit("cc")
		pi := c.AddPI("x")
		ids := []int{pi}
		var gates []int
		n := 6 + rng.Intn(20)
		for i := 0; i < n; i++ {
			nf := 1 + rng.Intn(2)
			fanins := make([]netlist.Fanin, nf)
			for j := range fanins {
				fanins[j] = netlist.Fanin{From: ids[rng.Intn(len(ids))], Weight: rng.Intn(2)}
			}
			fn := logic.Buf()
			if nf == 2 {
				fn = logic.AndAll(2)
			}
			id := c.AddGate("", fn, fanins...)
			ids = append(ids, id)
			gates = append(gates, id)
		}
		for i := 0; i < n/4 && len(gates) > 1; i++ {
			g := gates[rng.Intn(len(gates))]
			nd := c.Nodes[g]
			nd.Fanins[rng.Intn(len(nd.Fanins))] = netlist.Fanin{
				From: gates[rng.Intn(len(gates))], Weight: 1,
			}
		}
		c.InvalidateCaches()
		c.AddPO("z", gates[len(gates)-1], 0)
		if c.Check() != nil {
			continue
		}
		labels := make([]int, c.NumNodes())
		for _, nd := range c.Nodes {
			if nd.Kind == netlist.Gate {
				labels[nd.ID] = 1 + rng.Intn(3)
			}
		}
		v := gates[rng.Intn(len(gates))]
		L := rng.Intn(4)
		x, ok := expand.Build(c, v, labels, 1+rng.Intn(2), L, expand.Options{LowDepth: rng.Intn(4)})
		if !ok {
			continue
		}
		k := 2 + rng.Intn(5)
		res, ok := KCut(x, k)
		if !ok {
			continue
		}
		if len(res.Cut) > k {
			t.Fatalf("trial %d: cut size %d > k %d", trial, len(res.Cut), k)
		}
		inCone := map[int]bool{}
		for _, i := range res.Cone {
			inCone[i] = true
		}
		inCut := map[int]bool{}
		for _, i := range res.Cut {
			inCut[i] = true
		}
		for _, i := range res.Cone {
			if x.Nodes[i].Frontier && i != expand.Root {
				t.Fatalf("trial %d: frontier replica inside the cone", trial)
			}
			for _, ch := range x.Fanins[i] {
				if !inCone[ch] && !inCut[ch] {
					t.Fatalf("trial %d: cone replica %d has dangling fanin %d", trial, i, ch)
				}
			}
		}
		// Every cut replica must be a candidate at the height bound.
		for _, i := range res.Cut {
			if !x.Nodes[i].Candidate {
				t.Fatalf("trial %d: non-candidate in cut", trial)
			}
		}
	}
}
