package cut

import (
	"math/rand"
	"testing"

	"turbosyn/internal/expand"
	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// TestArenaMatchesOneShot: a reused Arena must reproduce the one-shot KCut
// exactly — same verdict, same cut replicas, same cone order — across many
// random expansions and k values.
func TestArenaMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := &Arena{}
	for trial := 0; trial < 60; trial++ {
		c := netlist.NewCircuit("am")
		pi := c.AddPI("x")
		ids := []int{pi}
		var gates []int
		n := 5 + rng.Intn(18)
		for i := 0; i < n; i++ {
			nf := 1 + rng.Intn(2)
			fanins := make([]netlist.Fanin, nf)
			for j := range fanins {
				fanins[j] = netlist.Fanin{From: ids[rng.Intn(len(ids))], Weight: rng.Intn(2)}
			}
			fn := logic.Buf()
			if nf == 2 {
				fn = logic.AndAll(2)
			}
			id := c.AddGate("", fn, fanins...)
			ids = append(ids, id)
			gates = append(gates, id)
		}
		c.InvalidateCaches()
		c.AddPO("z", gates[len(gates)-1], 0)
		if c.Check() != nil {
			continue
		}
		labels := make([]int, c.NumNodes())
		for _, nd := range c.Nodes {
			if nd.Kind == netlist.Gate {
				labels[nd.ID] = 1 + rng.Intn(3)
			}
		}
		v := gates[rng.Intn(len(gates))]
		x, ok := expand.Build(c, v, labels, 1, rng.Intn(3), expand.Options{LowDepth: rng.Intn(3)})
		if !ok {
			continue
		}
		k := 1 + rng.Intn(5)
		want, okW := KCut(x, k)
		got, okG := a.KCut(x, k)
		if okW != okG {
			t.Fatalf("trial %d: arena ok=%v, one-shot ok=%v", trial, okG, okW)
		}
		if !okW {
			continue
		}
		if len(got.Cut) != len(want.Cut) || len(got.Cone) != len(want.Cone) {
			t.Fatalf("trial %d: cut/cone sizes %d/%d, want %d/%d",
				trial, len(got.Cut), len(got.Cone), len(want.Cut), len(want.Cone))
		}
		for i := range want.Cut {
			if got.Cut[i] != want.Cut[i] {
				t.Fatalf("trial %d: cut[%d] = %d, want %d", trial, i, got.Cut[i], want.Cut[i])
			}
		}
		for i := range want.Cone {
			if got.Cone[i] != want.Cone[i] {
				t.Fatalf("trial %d: cone[%d] = %d, want %d", trial, i, got.Cone[i], want.Cone[i])
			}
		}
	}
}

// TestWarmArenaZeroAlloc pins the acceptance property: a warm Arena answers
// a KCut check with zero heap allocation.
func TestWarmArenaZeroAlloc(t *testing.T) {
	x, _, _ := andTreeExpansion(t, 100)
	a := &Arena{}
	check := func() {
		if _, ok := a.KCut(x, 4); !ok {
			t.Fatal("4-cut must exist")
		}
		if _, ok := a.KCut(x, 2); ok {
			t.Fatal("2-cut must not exist")
		}
	}
	check() // warm up
	if allocs := testing.AllocsPerRun(100, check); allocs != 0 {
		t.Fatalf("warm Arena.KCut allocates %.1f objects/run, want 0", allocs)
	}
}
