// Package cut decides K-feasible cut existence on expanded circuits and
// extracts the cuts and LUT cones that the mapping generators materialize.
//
// The flow network follows FlowMap/TurboMap: every cut-candidate replica is
// split with unit capacity, non-candidates pass through uncut (infinite
// capacity), frontier replicas are fed by the source, and the root is the
// sink. A cut of at most K candidates separating the frontier from the root
// exists iff the max flow is at most K.
//
// An Arena holds the flow network and traversal scratch across calls: the
// label computation runs one cut check per node per sweep, and a warm Arena
// answers each check with zero heap allocation.
package cut

import (
	"turbosyn/internal/expand"
	"turbosyn/internal/flow"
)

// Result describes a found cut.
type Result struct {
	// Cut lists the replica indices of the node cut-set V(X, X̄).
	Cut []int
	// Cone lists the replica indices strictly inside the LUT (the root
	// included, the cut excluded), in reverse topological order from the
	// root (root first).
	Cone []int
}

// Arena is the reusable scratch behind KCut/MinCut. A zero Arena is ready to
// use. One Arena serves one goroutine; the *Result it returns aliases the
// Arena's arrays and stays valid only until the next call on the same Arena.
type Arena struct {
	net   flow.Net
	isCut []bool // indexed by replica id, cone-walk scratch
	seen  []bool
	res   Result
}

// KCut reports whether the expanded circuit admits a cut of at most k
// candidate replicas separating the frontier from the root, and returns one
// such cut of minimum size.
//
// This one-shot form allocates a fresh Arena; hot loops should hold an Arena
// and call its KCut method instead.
func KCut(x *expand.Expanded, k int) (*Result, bool) {
	a := &Arena{}
	return a.KCut(x, k)
}

// MinCut returns the minimum cut separating frontier from root regardless of
// size, as long as it is at most limit (the paper bounds resynthesis cuts by
// Cmax = 15). ok=false when even that is exceeded.
func MinCut(x *expand.Expanded, limit int) (*Result, bool) {
	return KCut(x, limit)
}

// KCut is the arena form of the package-level KCut.
func (a *Arena) KCut(x *expand.Expanded, k int) (*Result, bool) {
	n := len(x.Nodes)
	// Network layout: in(i) = 2i, out(i) = 2i+1, s = 2n, t = 2n+1.
	// The root's halves are unused; arcs into the root go to t.
	net := &a.net
	net.Reset(2*n + 2)
	s, t := 2*n, 2*n+1
	in := func(i int) int { return 2 * i }
	out := func(i int) int { return 2*i + 1 }
	for i := 1; i < n; i++ {
		capi := flow.Inf
		if x.Nodes[i].Candidate {
			capi = 1
		}
		net.AddArc(in(i), out(i), capi)
		if x.Nodes[i].Frontier {
			net.AddArc(s, in(i), flow.Inf)
		}
	}
	for i := 0; i < n; i++ {
		if x.Nodes[i].Frontier {
			// Frontier replicas are supplied by the source; any fanins a
			// looser re-marking left recorded play no role in the cut.
			continue
		}
		for _, c := range x.Fanins[i] {
			if i == expand.Root {
				net.AddArc(out(c), t, flow.Inf)
			} else {
				net.AddArc(out(c), in(i), flow.Inf)
			}
		}
	}
	if got := net.MaxFlowUpTo(s, t, k); got > k {
		return nil, false
	}
	reach := net.ResidualReach(s)
	res := &a.res
	res.Cut = res.Cut[:0]
	for i := 1; i < n; i++ {
		if x.Nodes[i].Candidate && reach[in(i)] && !reach[out(i)] {
			res.Cut = append(res.Cut, i)
		}
	}
	a.cone(x)
	return res, true
}

// MinCut is the arena form of the package-level MinCut.
func (a *Arena) MinCut(x *expand.Expanded, limit int) (*Result, bool) {
	return a.KCut(x, limit)
}

// cone walks backward from the root, stopping at cut replicas, and fills
// res.Cone with the interior in discovery order (root first).
func (a *Arena) cone(x *expand.Expanded) {
	n := len(x.Nodes)
	if cap(a.isCut) < n {
		a.isCut = make([]bool, n)
		a.seen = make([]bool, n)
	}
	isCut := a.isCut[:n]
	seen := a.seen[:n]
	for i := 0; i < n; i++ {
		isCut[i] = false
		seen[i] = false
	}
	for _, c := range a.res.Cut {
		isCut[c] = true
	}
	seen[expand.Root] = true
	order := append(a.res.Cone[:0], expand.Root)
	for qi := 0; qi < len(order); qi++ {
		for _, c := range x.Fanins[order[qi]] {
			if !seen[c] && !isCut[c] {
				seen[c] = true
				order = append(order, c)
			}
		}
	}
	a.res.Cone = order
}

// Bytes reports the approximate footprint of the Arena's retained arrays,
// for arena high-water accounting.
func (a *Arena) Bytes() int {
	return a.net.Bytes() +
		cap(a.isCut) + cap(a.seen) +
		cap(a.res.Cut)*8 + cap(a.res.Cone)*8
}
