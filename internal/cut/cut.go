// Package cut decides K-feasible cut existence on expanded circuits and
// extracts the cuts and LUT cones that the mapping generators materialize.
//
// The flow network follows FlowMap/TurboMap: every cut-candidate replica is
// split with unit capacity, non-candidates pass through uncut (infinite
// capacity), frontier replicas are fed by the source, and the root is the
// sink. A cut of at most K candidates separating the frontier from the root
// exists iff the max flow is at most K.
package cut

import (
	"turbosyn/internal/expand"
	"turbosyn/internal/flow"
)

// Result describes a found cut.
type Result struct {
	// Cut lists the replica indices of the node cut-set V(X, X̄).
	Cut []int
	// Cone lists the replica indices strictly inside the LUT (the root
	// included, the cut excluded), in reverse topological order from the
	// root (root first).
	Cone []int
}

// KCut reports whether the expanded circuit admits a cut of at most k
// candidate replicas separating the frontier from the root, and returns one
// such cut of minimum size.
func KCut(x *expand.Expanded, k int) (*Result, bool) {
	n := len(x.Nodes)
	// Network layout: in(i) = 2i, out(i) = 2i+1, s = 2n, t = 2n+1.
	// The root's halves are unused; arcs into the root go to t.
	net := flow.NewNet(2*n + 2)
	s, t := 2*n, 2*n+1
	in := func(i int) int { return 2 * i }
	out := func(i int) int { return 2*i + 1 }
	for i := 1; i < n; i++ {
		capi := flow.Inf
		if x.Nodes[i].Candidate {
			capi = 1
		}
		net.AddArc(in(i), out(i), capi)
		if x.Nodes[i].Frontier {
			net.AddArc(s, in(i), flow.Inf)
		}
	}
	for i := 0; i < n; i++ {
		for _, c := range x.Fanins[i] {
			if i == expand.Root {
				net.AddArc(out(c), t, flow.Inf)
			} else {
				net.AddArc(out(c), in(i), flow.Inf)
			}
		}
	}
	if got := net.MaxFlowUpTo(s, t, k); got > k {
		return nil, false
	}
	reach := net.ResidualReach(s)
	res := &Result{}
	for i := 1; i < n; i++ {
		if x.Nodes[i].Candidate && reach[in(i)] && !reach[out(i)] {
			res.Cut = append(res.Cut, i)
		}
	}
	res.Cone = cone(x, res.Cut)
	return res, true
}

// cone walks backward from the root, stopping at cut replicas, and returns
// the interior in discovery order (root first).
func cone(x *expand.Expanded, cut []int) []int {
	isCut := make(map[int]bool, len(cut))
	for _, c := range cut {
		isCut[c] = true
	}
	seen := map[int]bool{expand.Root: true}
	order := []int{expand.Root}
	for qi := 0; qi < len(order); qi++ {
		for _, c := range x.Fanins[order[qi]] {
			if !seen[c] && !isCut[c] {
				seen[c] = true
				order = append(order, c)
			}
		}
	}
	return order
}

// MinCut returns the minimum cut separating frontier from root regardless of
// size, as long as it is at most limit (the paper bounds resynthesis cuts by
// Cmax = 15). ok=false when even that is exceeded.
func MinCut(x *expand.Expanded, limit int) (*Result, bool) {
	return KCut(x, limit)
}
