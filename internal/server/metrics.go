// Daemon metrics: latency histograms over the job lifecycle stages and
// per-tenant occupancy accounting. The histograms are obs.Histogram — lock
// free, dependency free — observed inline at the stage boundaries
// (Submit, dequeue, finishJob, journal appends); /metrics exposes them in
// Prometheus text form and /statz summarizes them (count, sum, p50, p99).
package server

import (
	"sort"

	"turbosyn/internal/jobqueue"
	"turbosyn/internal/obs"
)

// daemonMetrics holds the lifecycle latency histograms.
type daemonMetrics struct {
	admission *obs.Histogram // Submit entry to accept/reject
	queueWait *obs.Histogram // enqueue to worker dequeue
	run       *obs.Histogram // worker dispatch to terminal
	journal   *obs.Histogram // one journal append (accepted or terminal)
}

func newDaemonMetrics() daemonMetrics {
	return daemonMetrics{
		admission: obs.NewHistogram("turbosynd_admission_seconds",
			"admission-decision latency (accepts and rejections)", nil),
		queueWait: obs.NewHistogram("turbosynd_queue_wait_seconds",
			"time jobs spent queued before a worker picked them up", nil),
		run: obs.NewHistogram("turbosynd_run_seconds",
			"worker-side job execution time (dispatch to terminal)", nil),
		journal: obs.NewHistogram("turbosynd_journal_append_seconds",
			"latency of one job-journal append", nil),
	}
}

// all lists the histograms in stable exposition order.
func (m daemonMetrics) all() []*obs.Histogram {
	return []*obs.Histogram{m.admission, m.queueWait, m.run, m.journal}
}

// LatencySummary condenses one histogram for /statz: totals plus
// interpolated p50/p99 (see obs.Histogram.Quantile for the accuracy
// caveat).
type LatencySummary struct {
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

func summarize(h *obs.Histogram) LatencySummary {
	return LatencySummary{
		Count:      h.Count(),
		SumSeconds: h.Sum(),
		P50Seconds: h.Quantile(0.50),
		P99Seconds: h.Quantile(0.99),
	}
}

func (m daemonMetrics) summary() map[string]LatencySummary {
	return map[string]LatencySummary{
		"admission":      summarize(m.admission),
		"queue_wait":     summarize(m.queueWait),
		"run":            summarize(m.run),
		"journal_append": summarize(m.journal),
	}
}

// tenantAccount is the server-side per-tenant occupancy record, beyond
// what the queue itself tracks: jobs currently executing, accepted jobs
// shed by reason (drain, recovery, queue), and submissions the server
// rejected before the queue ever saw them (memory headroom, draining).
type tenantAccount struct {
	running  int64
	shed     map[string]uint64
	rejected map[string]uint64
}

func (s *Server) tenantAccount(tenant string) *tenantAccount {
	ta := s.tenantAcct[tenant]
	if ta == nil {
		ta = &tenantAccount{}
		s.tenantAcct[tenant] = ta
	}
	return ta
}

func (s *Server) tenantRunning(tenant string, delta int64) {
	s.tenantMu.Lock()
	s.tenantAccount(tenant).running += delta
	s.tenantMu.Unlock()
}

func (s *Server) tenantShed(tenant, reason string) {
	s.tenantMu.Lock()
	ta := s.tenantAccount(tenant)
	if ta.shed == nil {
		ta.shed = map[string]uint64{}
	}
	ta.shed[reason]++
	s.tenantMu.Unlock()
}

func (s *Server) tenantRejected(tenant, reason string) {
	s.tenantMu.Lock()
	ta := s.tenantAccount(tenant)
	if ta.rejected == nil {
		ta.rejected = map[string]uint64{}
	}
	ta.rejected[reason]++
	s.tenantMu.Unlock()
}

// TenantInfo is one tenant's merged accounting row: queue counters
// (queued, served, queue-side rejections) joined with the server-side
// gauges (running, shed-by-reason, pre-queue rejections) and the
// fair-share deficit — how many fewer jobs this tenant has been served
// than the most-served tenant, i.e. how far behind the fair-share leader
// it runs (0 for the leader).
type TenantInfo struct {
	Tenant           string            `json:"tenant"`
	Queued           int               `json:"queued"`
	Running          int64             `json:"running"`
	Served           int               `json:"served"`
	ShedByReason     map[string]uint64 `json:"shed_by_reason,omitempty"`
	Rejected         map[string]uint64 `json:"rejected,omitempty"`
	FairShareDeficit int               `json:"fair_share_deficit"`
}

// tenantInfo joins the queue's tenant stats with the server's accounts.
func (s *Server) tenantInfo(qs jobqueue.Stats) []TenantInfo {
	rows := map[string]*TenantInfo{}
	row := func(name string) *TenantInfo {
		r := rows[name]
		if r == nil {
			r = &TenantInfo{Tenant: name}
			rows[name] = r
		}
		return r
	}
	maxServed := 0
	for _, ts := range qs.Tenants {
		r := row(ts.Tenant)
		r.Queued, r.Served = ts.Queued, ts.Served
		if ts.Served > maxServed {
			maxServed = ts.Served
		}
		for reason, n := range ts.Rejected {
			if r.Rejected == nil {
				r.Rejected = map[string]uint64{}
			}
			r.Rejected[string(reason)] += n
		}
	}
	s.tenantMu.Lock()
	for name, ta := range s.tenantAcct {
		r := row(name)
		r.Running = ta.running
		for reason, n := range ta.shed {
			if r.ShedByReason == nil {
				r.ShedByReason = map[string]uint64{}
			}
			r.ShedByReason[reason] += n
		}
		for reason, n := range ta.rejected {
			if r.Rejected == nil {
				r.Rejected = map[string]uint64{}
			}
			r.Rejected[reason] += n
		}
	}
	s.tenantMu.Unlock()
	out := make([]TenantInfo, 0, len(rows))
	for _, r := range rows {
		r.FairShareDeficit = maxServed - r.Served
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
