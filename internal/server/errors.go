package server

import (
	"context"
	"errors"
	"fmt"

	"turbosyn/internal/core"
)

// ErrorKind classifies a job failure for clients. The taxonomy mirrors the
// engine's structured errors (DESIGN.md §7) plus the serving layer's own
// failure modes, and each kind carries a fixed retryable verdict so clients
// can discriminate transient from permanent failures without string
// matching.
type ErrorKind string

// Failure kinds, as encoded in job-result JSON.
const (
	// KindCancel: the job was aborted — per-job timeout, client cancel, or
	// daemon drain cancelling in-flight work. Retryable.
	KindCancel ErrorKind = "cancel"
	// KindBudget: a resource budget tripped under Strict mode. Not
	// retryable as submitted (the same budget trips again); resubmit with a
	// larger budget or without Strict.
	KindBudget ErrorKind = "budget"
	// KindInternal: a panic contained at a worker or job boundary. Not
	// retryable (the fault is deterministic for the same input).
	KindInternal ErrorKind = "internal"
	// KindInvalid: the job spec was unusable — malformed BLIF, unknown
	// generator, bad options. Not retryable.
	KindInvalid ErrorKind = "invalid"
	// KindShed: the daemon gave the job up unstarted (drain deadline hit
	// while it was still queued, or recovery could not resume it).
	// Retryable against a live daemon.
	KindShed ErrorKind = "shed"
)

// ErrorInfo is the JSON encoding of one job failure. It round-trips the
// engine's typed errors: Encode lowers *core.CancelError /
// *core.BudgetError / *core.InternalError into it, and Err raises it back
// into the same types, so errors.Is/As work identically on the client side
// of the wire (see TestErrorTaxonomyJSONRoundTrip).
type ErrorInfo struct {
	Kind      ErrorKind `json:"kind"`
	Message   string    `json:"message"`
	Retryable bool      `json:"retryable"`

	// Cancel detail.
	Phase   string `json:"phase,omitempty"`
	BestPhi int    `json:"best_phi,omitempty"`
	Timeout bool   `json:"timeout,omitempty"` // deadline rather than explicit cancel

	// Budget detail.
	Resource string `json:"resource,omitempty"`
	Limit    int    `json:"limit,omitempty"`
	Node     int    `json:"node,omitempty"`

	// Internal detail.
	Op string `json:"op,omitempty"`
}

// EncodeError lowers err into the wire taxonomy. Unrecognized errors encode
// as KindInternal with their message.
func EncodeError(err error) *ErrorInfo {
	var ce *core.CancelError
	if errors.As(err, &ce) {
		return &ErrorInfo{
			Kind: KindCancel, Message: err.Error(), Retryable: true,
			Phase: ce.Phase, BestPhi: ce.BestPhi,
			Timeout: errors.Is(ce.Err, context.DeadlineExceeded),
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &ErrorInfo{
			Kind: KindCancel, Message: err.Error(), Retryable: true,
			Timeout: errors.Is(err, context.DeadlineExceeded),
		}
	}
	var be *core.BudgetError
	if errors.As(err, &be) {
		return &ErrorInfo{
			Kind: KindBudget, Message: err.Error(),
			Resource: be.Resource, Limit: be.Limit, Node: be.Node,
		}
	}
	var ie *core.InternalError
	if errors.As(err, &ie) {
		return &ErrorInfo{Kind: KindInternal, Message: err.Error(), Op: ie.Op, Phase: ie.Phase}
	}
	return &ErrorInfo{Kind: KindInternal, Message: err.Error()}
}

// invalidError builds the KindInvalid info for an unusable job spec.
func invalidError(err error) *ErrorInfo {
	return &ErrorInfo{Kind: KindInvalid, Message: err.Error()}
}

// shedError builds the KindShed info.
func shedError(why string) *ErrorInfo {
	return &ErrorInfo{Kind: KindShed, Message: why, Retryable: true}
}

// Err raises the wire encoding back into the engine's typed errors, so
// client-side errors.Is/As see the same types a local run would return:
// KindCancel becomes a *core.CancelError wrapping context.Canceled or
// DeadlineExceeded, KindBudget a *core.BudgetError, KindInternal a
// *core.InternalError. KindInvalid and KindShed have no engine counterpart
// and surface as plain errors. A nil ErrorInfo is no error.
func (e *ErrorInfo) Err() error {
	if e == nil {
		return nil
	}
	switch e.Kind {
	case KindCancel:
		cause := context.Canceled
		if e.Timeout {
			cause = context.DeadlineExceeded
		}
		return &core.CancelError{Phase: e.Phase, BestPhi: e.BestPhi, Err: cause}
	case KindBudget:
		return &core.BudgetError{Resource: e.Resource, Limit: e.Limit, Node: e.Node}
	case KindInternal:
		return &core.InternalError{Op: e.Op, Phase: e.Phase, Comp: -1, Node: -1, Value: e.Message}
	default:
		return fmt.Errorf("turbosynd: %s: %s", e.Kind, e.Message)
	}
}
