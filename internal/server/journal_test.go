package server

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"turbosyn/internal/faultinject"
)

// A daemon pointed at a journal directory that does not exist yet must
// start: the startup sequence is LoadJournal (missing = empty), then
// CompactJournal, then OpenJournal, so compaction has to create the
// directory itself rather than rely on OpenJournal's MkdirAll.
func TestJournalFreshDirStartup(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "not", "yet", "created")
	pending, maxSeq, err := LoadJournal(dir)
	if err != nil || len(pending) != 0 || maxSeq != 0 {
		t.Fatalf("LoadJournal on missing dir: pending=%v maxSeq=%d err=%v", pending, maxSeq, err)
	}
	if err := CompactJournal(dir, nil); err != nil {
		t.Fatalf("CompactJournal on missing dir: %v", err)
	}
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal after compaction: %v", err)
	}
	if err := j.Accepted(newJobForTest("j-00000001", 1, JobSpec{Tenant: "t"})); err != nil {
		t.Fatalf("Accepted: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	pending, maxSeq, err = LoadJournal(dir)
	if err != nil || len(pending) != 1 || maxSeq != 1 {
		t.Fatalf("replay after fresh-dir startup: pending=%d maxSeq=%d err=%v", len(pending), maxSeq, err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Tenant: "acme", Priority: 2, BLIF: ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"}
	job := newJobForTest("j-00000001", 1, spec)
	if err := j.Accepted(job); err != nil {
		t.Fatal(err)
	}
	acceptedRec := newJobForTest("j-00000002", 2, JobSpec{Tenant: "b", Generator: &GeneratorSpec{Kind: "suite", Name: "bbara"}})
	if err := j.Accepted(acceptedRec); err != nil {
		t.Fatal(err)
	}
	if err := j.Terminal("j-00000001", StateDone, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	pending, maxSeq, err := LoadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if maxSeq != 2 {
		t.Fatalf("maxSeq = %d, want 2", maxSeq)
	}
	if len(pending) != 1 || pending[0].ID != "j-00000002" || pending[0].Spec.Tenant != "b" {
		t.Fatalf("pending = %+v, want exactly j-00000002", pending)
	}
}

func newJobForTest(id string, seq uint64, spec JobSpec) *Job {
	return newJob(id, seq, spec, time.Time{}, 0)
}

func TestJournalTruncationLoadsPrefix(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Accepted(newJobForTest(jobID(i), uint64(i), JobSpec{Tenant: "t", BLIF: "x"})); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := filepath.Join(dir, "jobs.journal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the tail: every prefix must load cleanly, recovering a
	// (possibly shorter) prefix of the accepted jobs — never erroring.
	for cut := 1; cut < 40; cut++ {
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		pending, _, err := LoadJournal(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(pending) > 3 {
			t.Fatalf("cut %d: recovered %d jobs from a 3-job log", cut, len(pending))
		}
		for i, pj := range pending {
			if pj.ID != jobID(i+1) {
				t.Fatalf("cut %d: pending[%d] = %s, want prefix order", cut, i, pj.ID)
			}
		}
	}
	// Corrupt a payload byte mid-file: load stops at the bad record.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	mid := len(data)/2 + 3
	corrupt := append([]byte(nil), data...)
	corrupt[mid] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	pending, _, err := LoadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) >= 3 {
		t.Fatalf("corrupt mid-record: recovered %d jobs, want a strict prefix", len(pending))
	}
}

func jobID(i int) string {
	return []string{"", "j-00000001", "j-00000002", "j-00000003"}[i]
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Accepted(newJobForTest(jobID(i), uint64(i), JobSpec{Tenant: "t", BLIF: "x"})); err != nil {
			t.Fatal(err)
		}
	}
	j.Terminal(jobID(1), StateDone, nil)
	j.Terminal(jobID(3), StateFailed, &ErrorInfo{Kind: KindInvalid, Message: "nope"})
	j.Close()
	pending, maxSeq, err := LoadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != jobID(2) {
		t.Fatalf("pending = %+v, want only %s", pending, jobID(2))
	}
	if err := CompactJournal(dir, pending); err != nil {
		t.Fatal(err)
	}
	_ = maxSeq
	// The compacted journal replays to the same pending set and nothing else.
	pending2, maxSeq2, err := LoadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending2) != 1 || pending2[0].ID != jobID(2) || maxSeq2 != 2 {
		t.Fatalf("after compaction pending = %+v maxSeq = %d", pending2, maxSeq2)
	}
	// Compaction shrank the file.
	st, err := os.Stat(filepath.Join(dir, "jobs.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() <= 8 {
		t.Fatalf("compacted journal is empty, want the pending record")
	}
}

func TestJournalVersionSkewQuarantined(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	if err := os.WriteFile(path, []byte("BOGUSDATA"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Fatalf("unrecognized journal was not quarantined: %v", err)
	}
	if pending, _, err := LoadJournal(dir); err != nil || len(pending) != 0 {
		t.Fatalf("fresh journal after quarantine: pending=%v err=%v", pending, err)
	}
}

func TestJournalWriteFaultInjection(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	_, deactivate := faultinject.Activate(faultinject.Config{JournalFailAt: 1, JournalFailAll: true})
	defer deactivate()
	if err := j.Accepted(newJobForTest(jobID(1), 1, JobSpec{Tenant: "t", BLIF: "x"})); err == nil {
		t.Fatal("injected journal fault did not surface")
	}
}

// TestJournalCompactionConcurrentWithAppends pins the compaction/append
// interaction. CompactJournal is temp-file + rename, so it never corrupts
// the journal even while an open handle is appending — but appends that
// land after the rename go to the old, now-unlinked inode and are
// invisible to the next load. That is exactly why the daemon compacts only
// during startup (LoadJournal -> CompactJournal -> OpenJournal), before
// any handle is open; this test documents the contract the startup
// sequence relies on.
func TestJournalCompactionConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Phase 1: appends racing a compaction must never produce a journal the
	// loader rejects or truncates mid-prefix — whatever interleaving, every
	// load sees a clean log.
	pending := []PendingJob{{ID: "j-00000001", Seq: 1, Spec: JobSpec{Tenant: "t", BLIF: "x"}}}
	stop := make(chan struct{})
	appendErr := make(chan error, 1)
	go func() {
		defer close(appendErr)
		for i := 2; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("j-%08d", i)
			if err := j.Accepted(newJobForTest(id, uint64(i), JobSpec{Tenant: "t", BLIF: "x"})); err != nil {
				appendErr <- err
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if err := CompactJournal(dir, pending); err != nil {
			t.Fatalf("compaction %d: %v", i, err)
		}
		if _, _, err := LoadJournal(dir); err != nil {
			t.Fatalf("load after compaction %d: %v", i, err)
		}
	}
	close(stop)
	if err := <-appendErr; err != nil {
		t.Fatalf("concurrent append: %v", err)
	}

	// Phase 2 (deterministic): after a final compaction, appends through the
	// still-open pre-rename handle land on the unlinked inode — the next
	// load sees exactly the compacted set, nothing more.
	if err := CompactJournal(dir, pending); err != nil {
		t.Fatal(err)
	}
	if err := j.Accepted(newJobForTest("j-00999999", 999999, JobSpec{Tenant: "ghost", BLIF: "x"})); err != nil {
		t.Fatalf("append to the unlinked inode still returns success (buffered by the fs): %v", err)
	}
	got, maxSeq, err := LoadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "j-00000001" || maxSeq != 1 {
		t.Fatalf("after compaction+stale append: pending=%+v maxSeq=%d, want exactly the compacted set", got, maxSeq)
	}

	// A journal reopened on the compacted file appends visibly again.
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Accepted(newJobForTest("j-00000002", 2, JobSpec{Tenant: "t", BLIF: "x"})); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	got, maxSeq, err = LoadJournal(dir)
	if err != nil || len(got) != 2 || maxSeq != 2 {
		t.Fatalf("reopened journal: pending=%d maxSeq=%d err=%v, want 2 pending", len(got), maxSeq, err)
	}
}
