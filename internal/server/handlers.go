package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"turbosyn/internal/jobqueue"
)

// maxBody bounds one submission body (a BLIF upload dominates).
const maxBody = 16 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /jobs               submit a job (JobSpec JSON) -> 202 {"id": ...}
//	GET  /jobs               list job statuses (?tenant= filters)
//	GET  /jobs/{id}          job status (JobStatus JSON)
//	GET  /jobs/{id}/result   finished netlist (BLIF text)
//	GET  /jobs/{id}/progress push NDJSON progress stream until terminal
//	GET  /jobs/{id}/trace    stitched Perfetto trace (terminal jobs)
//	GET  /healthz            {"status": "ok" | "draining"}
//	GET  /statz              daemon + queue accounting (Stats JSON)
//	GET  /metrics            Prometheus text exposition
//
// Admission rejections answer 429 (over capacity/quota/rate/memory) or 503
// (draining, journal unavailable), both with a Retry-After header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		var rej *jobqueue.RejectError
		if errors.As(err, &rej) {
			status := http.StatusTooManyRequests
			retry := rej.RetryAfter
			if rej.Reason == jobqueue.ReasonClosed {
				status = http.StatusServiceUnavailable
				retry = time.Second
			}
			w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
			httpError(w, status, err.Error())
			return
		}
		// Journal unavailable: refuse with 503 so clients back off and retry.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": job.ID})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs(r.URL.Query().Get("tenant"))
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, job.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	blif, ok := job.resultBytes()
	if !ok {
		st := job.Status()
		if st.State == StateFailed || st.State == StateShed {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(st)
			return
		}
		httpError(w, http.StatusConflict, fmt.Sprintf("job is %s; result not ready", st.State))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(blif)
}

// handleProgress streams the job's status as newline-delimited JSON,
// push-driven: the first line is the current status, then one line per
// state change or engine progress snapshot as it happens (no server-side
// polling), ending with the terminal status. A slow reader loses
// intermediate lines (drop-oldest, see Job.Subscribe), never the terminal
// one. The legacy ?interval_ms parameter is accepted and ignored.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	updates, cancel := job.Subscribe(32)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case st, ok := <-updates:
			if !ok {
				return
			}
			if err := enc.Encode(st); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if st.State.Terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace serves the job's stitched daemon+engine Perfetto trace. Only
// terminal jobs are served: the rings are quiescent then (finishJob writes
// the last daemon span before the terminal state becomes visible, and the
// engine joins its workers before returning), which is the precondition of
// WriteTrace. 409 while the job is still moving.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if job.rec == nil {
		httpError(w, http.StatusNotFound, "per-job tracing is disabled (TraceRingCap < 0)")
		return
	}
	if st := job.Status(); !st.State.Terminal() {
		httpError(w, http.StatusConflict, fmt.Sprintf("job is %s; trace is served once the job is terminal", st.State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := job.rec.WriteTrace(w, job.ID); err != nil {
		s.logf("trace write failed", "job", job.ID, "err", err.Error())
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, map[string]string{"status": status})
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

// handleMetrics writes the daemon counters in Prometheus text format
// (gauge/counter semantics noted per series); per-run engine metrics remain
// per-job via the progress endpoints.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	emit := func(name, typ, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	emit("turbosynd_jobs_accepted_total", "counter", "jobs admitted", float64(st.Accepted))
	emit("turbosynd_jobs_done_total", "counter", "jobs completed successfully", float64(st.Done))
	emit("turbosynd_jobs_failed_total", "counter", "jobs failed (typed error)", float64(st.Failed))
	emit("turbosynd_jobs_shed_total", "counter", "accepted jobs shed unstarted", float64(st.Shed))
	emit("turbosynd_jobs_recovered_total", "counter", "jobs re-admitted from the journal", float64(st.Recovered))
	emit("turbosynd_jobs_running", "gauge", "jobs currently executing", float64(st.Running))
	emit("turbosynd_fleet_size", "gauge", "worker-fleet size", float64(st.FleetSize))
	emit("turbosynd_fleet_occupancy", "gauge", "running jobs over fleet size (0..1)", st.Occupancy)
	emit("turbosynd_queue_depth", "gauge", "jobs queued awaiting a worker", float64(st.Queue.Queued))
	emit("turbosynd_mem_reserved_bytes", "gauge", "summed arena reservations of admitted jobs", float64(st.MemReserved))
	emit("turbosynd_draining", "gauge", "1 while the daemon refuses new work", b(st.Draining))
	for _, reason := range []jobqueue.Reason{jobqueue.ReasonQueueFull, jobqueue.ReasonTenantQuota, jobqueue.ReasonRateLimited, jobqueue.ReasonClosed} {
		fmt.Fprintf(w, "turbosynd_jobs_rejected_total{reason=%q} %d\n", string(reason), st.Queue.Rejected[reason])
	}
	// Per-tenant gauges: queue position, occupancy, fair-share standing and
	// the shed/reject breakdown (reason maps are sorted for a stable
	// exposition).
	for _, ti := range st.Tenants {
		fmt.Fprintf(w, "turbosynd_tenant_served_total{tenant=%q} %d\n", ti.Tenant, ti.Served)
		fmt.Fprintf(w, "turbosynd_tenant_queued{tenant=%q} %d\n", ti.Tenant, ti.Queued)
		fmt.Fprintf(w, "turbosynd_tenant_running{tenant=%q} %d\n", ti.Tenant, ti.Running)
		fmt.Fprintf(w, "turbosynd_tenant_fair_share_deficit{tenant=%q} %d\n", ti.Tenant, ti.FairShareDeficit)
		for _, reason := range sortedKeys(ti.ShedByReason) {
			fmt.Fprintf(w, "turbosynd_tenant_shed_total{tenant=%q,reason=%q} %d\n", ti.Tenant, reason, ti.ShedByReason[reason])
		}
		for _, reason := range sortedKeys(ti.Rejected) {
			fmt.Fprintf(w, "turbosynd_tenant_rejected_total{tenant=%q,reason=%q} %d\n", ti.Tenant, reason, ti.Rejected[reason])
		}
	}
	// Lifecycle latency histograms.
	for _, h := range s.metrics.all() {
		h.WriteProm(w)
	}
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
