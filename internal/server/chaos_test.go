// Chaos suite: the daemon's robustness invariants under injected faults
// (internal/faultinject server-path points). Run under -race by the chaos CI
// job. Plans are process-global and exclusive, so these tests do not use
// t.Parallel.
package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"turbosyn/internal/core"
	"turbosyn/internal/faultinject"
	"turbosyn/internal/jobqueue"
	"turbosyn/internal/traceval"
)

// TestChaosPanicJobFleetSurvives: a job that panics inside the execution
// fence fails typed internal — and the worker that absorbed it keeps
// serving. One poisoned job never kills the fleet.
func TestChaosPanicJobFleetSurvives(t *testing.T) {
	s := testServer(t, Config{Fleet: 2})
	s.Start()
	plan, deactivate := faultinject.Activate(faultinject.Config{PanicAtJob: 3})
	defer deactivate()

	var jobs []*Job
	for i := 0; i < 6; i++ {
		job, err := s.Submit(quickSpec("t"))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	poisoned := 0
	for _, job := range jobs {
		select {
		case <-job.done:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s never finished — a panic killed its worker", job.ID)
		}
		st := job.Status()
		switch st.State {
		case StateDone:
		case StateFailed:
			poisoned++
			if st.Error.Kind != KindInternal {
				t.Errorf("%s: poisoned job failed %s, want %s", job.ID, st.Error.Kind, KindInternal)
			}
			var ie *core.InternalError
			if err := st.Err(); !errors.As(err, &ie) {
				t.Errorf("%s: wire error does not raise to *core.InternalError: %v", job.ID, err)
			}
		default:
			t.Errorf("%s: state %s", job.ID, st.State)
		}
	}
	if poisoned != 1 {
		t.Errorf("poisoned = %d, want exactly 1 (plan fired %d)", poisoned, plan.Fired(faultinject.KindPanicJob))
	}
	// The fleet still serves after absorbing the panic.
	job, err := s.Submit(quickSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.done:
	case <-time.After(30 * time.Second):
		t.Fatal("fleet dead after absorbing a panic")
	}
	if st := job.Status(); st.State != StateDone {
		t.Errorf("post-panic job: %s (%+v)", st.State, st.Error)
	}
}

// TestChaosJournalFailRefusesAdmission: durability-first — when the journal
// append fails, the job is refused (no 202 without a durable record) and no
// phantom job lingers; admission resumes once the disk heals.
func TestChaosJournalFailRefusesAdmission(t *testing.T) {
	s := testServer(t, Config{Fleet: 1})
	_, deactivate := faultinject.Activate(faultinject.Config{JournalFailAt: 1})
	job, err := s.Submit(quickSpec("t"))
	deactivate()
	if err == nil {
		t.Fatal("submit succeeded with a failing journal")
	}
	var rej *jobqueue.RejectError
	if errors.As(err, &rej) {
		t.Fatalf("journal failure surfaced as a queue rejection: %v", err)
	}
	var inj *faultinject.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("journal failure does not carry the injected fault: %v", err)
	}
	if job != nil {
		t.Fatal("job handle returned alongside a refusal")
	}
	if n := len(s.Jobs("")); n != 0 {
		t.Fatalf("%d phantom jobs after refused admission", n)
	}
	if st := s.Stats(); st.Accepted != 0 || st.MemReserved != 0 {
		t.Fatalf("refusal leaked accounting: %+v", st)
	}
	// Disk healed: the same submission is admitted.
	if _, err := s.Submit(quickSpec("t")); err != nil {
		t.Fatalf("submit after heal: %v", err)
	}
}

// TestChaosSlowTenantFairShare: one tenant whose every job dawdles must not
// starve another tenant sharing the fleet — fair-share dequeuing interleaves
// them, so the fast tenant's batch finishes while the slow one still owes
// work.
func TestChaosSlowTenantFairShare(t *testing.T) {
	s := testServer(t, Config{Fleet: 1})
	_, deactivate := faultinject.Activate(faultinject.Config{
		SlowTenant: "molasses", SlowTenantDelay: 150 * time.Millisecond,
	})
	defer deactivate()

	const perTenant = 4
	var slow, fast []*Job
	// Interleave submissions so both tenants are queued before the fleet
	// starts; fairness, not arrival order, decides the schedule.
	for i := 0; i < perTenant; i++ {
		j1, err := s.Submit(quickSpec("molasses"))
		if err != nil {
			t.Fatal(err)
		}
		j2, err := s.Submit(quickSpec("speedy"))
		if err != nil {
			t.Fatal(err)
		}
		slow, fast = append(slow, j1), append(fast, j2)
	}
	s.Start()
	var fastDone time.Time
	for _, job := range fast {
		select {
		case <-job.done:
		case <-time.After(60 * time.Second):
			t.Fatalf("fast tenant starved: %s never finished", job.ID)
		}
	}
	fastDone = time.Now()
	var slowDone time.Time
	for _, job := range slow {
		select {
		case <-job.done:
		case <-time.After(60 * time.Second):
			t.Fatalf("slow tenant job %s never finished", job.ID)
		}
	}
	slowDone = time.Now()
	if slowDone.Before(fastDone) {
		t.Errorf("slow tenant finished before the fast one (fast %v, slow %v) — fairness not interleaving", fastDone, slowDone)
	}
	for _, job := range append(fast, slow...) {
		if st := job.Status(); st.State != StateDone {
			t.Errorf("%s: %s (%+v)", job.ID, st.State, st.Error)
		}
	}
}

// TestChaosKillDuringDrain: a dead disk eats the terminal records written
// during drain; on restart every such job is re-admitted from its accepted
// record and completes. Accepted jobs survive even a crash inside the drain
// itself — zero silently lost.
func TestChaosKillDuringDrain(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Fleet: 1, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		job, err := s1.Submit(quickSpec("t"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	// The disk dies as the drain begins: every terminal append from here on
	// fails. The fleet never started, so the drain sheds all three — but the
	// shed terminals are lost with the disk.
	_, deactivate := faultinject.Activate(faultinject.Config{JournalFailAt: 1, JournalFailAll: true})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel()
	deactivate()
	for _, id := range ids {
		job, _ := s1.Job(id)
		if st := job.Status(); st.State != StateShed {
			t.Fatalf("%s: %s, want shed during drain", id, st.State)
		}
	}

	// Restart on the healed disk: the accepted records (written before the
	// fault) minus no terminals = all three jobs pending.
	s2, err := New(Config{Fleet: 1, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Recovered; got != 3 {
		t.Fatalf("recovered = %d, want 3", got)
	}
	s2.Start()
	for _, id := range ids {
		job, ok := s2.Job(id)
		if !ok {
			t.Fatalf("%s silently lost across kill-during-drain", id)
		}
		select {
		case <-job.done:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s never finished after recovery", id)
		}
		if st := job.Status(); st.State != StateDone {
			t.Errorf("%s: %s (%+v)", id, st.State, st.Error)
		}
	}
}

// TestChaosDrainDeadlineCancelsInFlight: when the drain deadline expires
// with a job still running, the job is cancelled — failing with the
// retryable cancel kind — and queued jobs shed; nothing is left
// non-terminal.
func TestChaosDrainDeadlineCancelsInFlight(t *testing.T) {
	s := testServer(t, Config{Fleet: 1})
	_, deactivate := faultinject.Activate(faultinject.Config{
		SlowTenant: "stuck", SlowTenantDelay: 10 * time.Second,
	})
	defer deactivate()
	running, err := s.Submit(quickSpec("stuck"))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(quickSpec("stuck"))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	// Wait for the first job to occupy the worker (sleeping in JobStart).
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err = s.Drain(ctx)
	if err == nil {
		t.Fatal("drain hit its deadline but reported success")
	}
	stRunning := running.Status()
	if stRunning.State != StateFailed && stRunning.State != StateDone {
		t.Fatalf("in-flight job: %s, want failed (cancelled) or done", stRunning.State)
	}
	if stRunning.State == StateFailed {
		if stRunning.Error.Kind != KindCancel {
			t.Errorf("cancelled job kind %s, want %s", stRunning.Error.Kind, KindCancel)
		}
		if !stRunning.Error.Retryable {
			t.Error("drain cancellation not marked retryable")
		}
		var ce *core.CancelError
		if werr := stRunning.Err(); !errors.As(werr, &ce) {
			t.Errorf("wire error does not raise to *core.CancelError: %v", werr)
		}
	}
	if st := queued.Status(); st.State != StateShed {
		t.Errorf("queued job: %s, want shed", st.State)
	}
	st := s.Stats()
	if st.Accepted != st.Done+st.Failed+st.Shed {
		t.Errorf("accounting after deadline drain: %+v", st)
	}
}

// chaosTrace fetches a job's trace over the HTTP surface and validates it,
// failing the test on any non-200 or a trace that does not check out. Chaos
// must not cost observability: the traces of poisoned, shed, and recovered
// jobs are exactly the ones worth reading.
func chaosTrace(t *testing.T, base, id string) *traceval.Trace {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: trace fetch status %d: %s", id, resp.StatusCode, data)
	}
	tr, err := traceval.Check(data)
	if err != nil {
		t.Fatalf("%s: trace does not validate: %v", id, err)
	}
	return tr
}

// TestChaosPanicJobTraceStillValid: a job that panics mid-run still yields a
// downloadable trace that passes validation and carries the full daemon
// lifecycle — finishJob runs from the recover fence, so the rings are
// finalized before the terminal status licenses the read. The flight
// recorder survives the crash it recorded.
func TestChaosPanicJobTraceStillValid(t *testing.T) {
	s := testServer(t, Config{Fleet: 1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, deactivate := faultinject.Activate(faultinject.Config{PanicAtJob: 1})
	defer deactivate()

	job, err := s.Submit(quickSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.done:
	case <-time.After(30 * time.Second):
		t.Fatal("poisoned job never finished")
	}
	if st := job.Status(); st.State != StateFailed || st.Error.Kind != KindInternal {
		t.Fatalf("poisoned job: %s (%+v), want failed/%s", st.State, st.Error, KindInternal)
	}
	tr := chaosTrace(t, ts.URL, job.ID)
	counts := tr.Counts()
	// The daemon side of the timeline is complete even though the engine
	// side stops where the panic cut it off.
	for span, want := range map[string]int{"admission": 1, "queue-wait": 1, "dispatch": 1, "journal": 2} {
		if counts[span] != want {
			t.Errorf("poisoned trace: %d %q spans, want %d (counts: %v)", counts[span], span, want, counts)
		}
	}
	if tr.OtherData["runID"] != job.ID {
		t.Errorf("poisoned trace runID = %v, want %s", tr.OtherData["runID"], job.ID)
	}

	// The worker that absorbed the panic keeps recording: the next job's
	// trace is whole, engine spans included.
	job2, err := s.Submit(quickSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job2.done:
	case <-time.After(30 * time.Second):
		t.Fatal("post-panic job never finished")
	}
	if counts := chaosTrace(t, ts.URL, job2.ID).Counts(); counts["flow"] == 0 || counts["map"] == 0 {
		t.Errorf("post-panic trace lacks engine spans (counts: %v)", counts)
	}
}

// TestChaosKillDuringDrainTracesRecoverable: observability on both sides of
// a crash — jobs shed by a drain with a dead disk still serve valid traces
// recording the shed, and after restart the recovered re-runs serve fresh
// valid traces with engine spans.
func TestChaosKillDuringDrainTracesRecoverable(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Fleet: 1, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		job, err := s1.Submit(quickSpec("t"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	_, deactivate := faultinject.Activate(faultinject.Config{JournalFailAt: 1, JournalFailAll: true})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel()
	deactivate()

	ts1 := httptest.NewServer(s1.Handler())
	for _, id := range ids {
		tr := chaosTrace(t, ts1.URL, id)
		counts := tr.Counts()
		if counts["admission"] != 1 || counts["shed"] != 1 {
			t.Errorf("%s: shed trace counts %v, want 1 admission + 1 shed marker", id, counts)
		}
		if counts["dispatch"] != 0 {
			t.Errorf("%s: shed trace claims a dispatch that never happened (counts: %v)", id, counts)
		}
	}
	ts1.Close()

	s2, err := New(Config{Fleet: 1, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	for _, id := range ids {
		job, ok := s2.Job(id)
		if !ok {
			t.Fatalf("%s lost across kill-during-drain", id)
		}
		select {
		case <-job.done:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s never finished after recovery", id)
		}
		if st := job.Status(); st.State != StateDone {
			t.Fatalf("%s: %s (%+v)", id, st.State, st.Error)
		}
		counts := chaosTrace(t, ts2.URL, id).Counts()
		// Recovered jobs skip Submit (no admission span — they re-enter via
		// the journal) but run for real: dispatch and engine spans present.
		if counts["dispatch"] != 1 || counts["queue-wait"] != 1 {
			t.Errorf("%s: recovered trace counts %v, want 1 dispatch + 1 queue-wait", id, counts)
		}
		if counts["flow"] == 0 || counts["map"] == 0 {
			t.Errorf("%s: recovered trace lacks engine spans (counts: %v)", id, counts)
		}
	}
}
