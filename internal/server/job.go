package server

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"turbosyn"
	"turbosyn/internal/bench"
	"turbosyn/internal/netlist"
	"turbosyn/internal/obs"
)

// State is one position in the job lifecycle FSM:
//
//	queued -> admitted -> running -> done | failed
//	   \________________________________> shed
//
// (DESIGN.md §12 has the full diagram.) Terminal states are done, failed
// and shed; shed is reached only from queued — a job the daemon gave up
// without starting (drain deadline, unresumable recovery).
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateAdmitted State = "admitted"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateShed     State = "shed"
)

// Terminal reports whether s is a terminal state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateShed
}

// JobSpec is the submission payload: who is asking (tenant, priority), what
// to synthesize (an inline BLIF netlist or a generator spec — exactly one),
// how (engine options), and a per-job timeout.
type JobSpec struct {
	Tenant   string `json:"tenant,omitempty"`   // default "anonymous"
	Priority int    `json:"priority,omitempty"` // higher runs first within the tenant
	// TimeoutMS bounds the job's run; 0 means the server default, and the
	// server's MaxTimeout caps it either way.
	TimeoutMS int            `json:"timeout_ms,omitempty"`
	Options   JobOptions     `json:"options,omitempty"`
	BLIF      string         `json:"blif,omitempty"`
	Generator *GeneratorSpec `json:"generator,omitempty"`
}

// JobOptions is the JSON subset of turbosyn.Options a job may set. Worker
// count is a server-side knob (fleet sizing), not a tenant one.
type JobOptions struct {
	K         int    `json:"k,omitempty"`         // LUT inputs (default 5)
	Algorithm string `json:"algorithm,omitempty"` // turbosyn | turbomap | flowsyns
	Objective string `json:"objective,omitempty"` // ratio | period
	NoPack    bool   `json:"no_pack,omitempty"`
	Mapped    bool   `json:"mapped,omitempty"` // return the mapped network, skip realization
	Strict    bool   `json:"strict,omitempty"`
	// Budgets (0 = server defaults; jobs may lower but not exceed the
	// server's per-job arena reservation).
	BDDNodeBudget   int `json:"bdd_node_budget,omitempty"`
	RothKarpBudget  int `json:"rothkarp_budget,omitempty"`
	ArenaByteBudget int `json:"arena_byte_budget,omitempty"`
}

// GeneratorSpec asks the daemon to synthesize one of the built-in benchmark
// generators instead of an uploaded netlist.
type GeneratorSpec struct {
	// Kind selects the generator: "suite" (a named circuit of the 16-case
	// evaluation suite), "fsm" (random machine from the parameters below),
	// or "multicore" (the interleaved multi-core fabric).
	Kind string `json:"kind"`
	Name string `json:"name,omitempty"` // suite circuit name; also the .model name for fsm/multicore
	Seed int64  `json:"seed,omitempty"`

	// fsm parameters.
	StateBits int  `json:"state_bits,omitempty"`
	Inputs    int  `json:"inputs,omitempty"`
	Outputs   int  `json:"outputs,omitempty"`
	Cubes     int  `json:"cubes,omitempty"`
	Span      int  `json:"span,omitempty"`
	Mealy     bool `json:"mealy,omitempty"`

	// multicore parameters.
	Cores int `json:"cores,omitempty"`
}

// buildCircuit materializes the spec's netlist. Errors are KindInvalid
// territory: the spec itself is unusable.
func (s *JobSpec) buildCircuit() (*netlist.Circuit, error) {
	switch {
	case s.BLIF != "" && s.Generator != nil:
		return nil, fmt.Errorf("job carries both a BLIF netlist and a generator spec; send exactly one")
	case s.BLIF != "":
		c, err := netlist.ReadBLIF(strings.NewReader(s.BLIF))
		if err != nil {
			return nil, fmt.Errorf("blif: %w", err)
		}
		return c, nil
	case s.Generator != nil:
		return s.Generator.build()
	default:
		return nil, fmt.Errorf("job carries neither a BLIF netlist nor a generator spec")
	}
}

func (g *GeneratorSpec) build() (*netlist.Circuit, error) {
	switch g.Kind {
	case "suite":
		for _, cs := range bench.Suite() {
			if cs.Name == g.Name {
				return cs.Circuit, nil
			}
		}
		return nil, fmt.Errorf("generator: unknown suite circuit %q", g.Name)
	case "fsm":
		spec := bench.FSMSpec{
			StateBits: g.StateBits, Inputs: g.Inputs, Outputs: g.Outputs,
			Cubes: g.Cubes, Span: g.Span, Mealy: g.Mealy,
		}
		if spec.StateBits <= 0 || spec.Cubes <= 0 || spec.Span <= 0 {
			return nil, fmt.Errorf("generator: fsm needs positive state_bits, cubes and span")
		}
		name := g.Name
		if name == "" {
			name = fmt.Sprintf("fsm-s%d", g.Seed)
		}
		rng := rand.New(rand.NewSource(g.Seed))
		return bench.FSM(rng, name, spec), nil
	case "multicore":
		if g.Cores <= 0 || g.StateBits <= 0 {
			return nil, fmt.Errorf("generator: multicore needs positive cores and state_bits")
		}
		name := g.Name
		if name == "" {
			name = fmt.Sprintf("multicore-%d", g.Cores)
		}
		cubes, span := g.Cubes, g.Span
		if cubes <= 0 {
			cubes = 6
		}
		if span <= 0 {
			span = 6
		}
		return bench.MultiCore(name, bench.MultiCoreSpec{
			Cores: g.Cores, StateBits: g.StateBits, Cubes: cubes, Span: span,
		}), nil
	default:
		return nil, fmt.Errorf("generator: unknown kind %q (want suite, fsm or multicore)", g.Kind)
	}
}

// engineOptions lowers the job options onto the server's engine defaults.
func (s *JobSpec) engineOptions(cfg Config) (turbosyn.Options, error) {
	o := turbosyn.Options{
		K:              s.Options.K,
		NoPack:         s.Options.NoPack,
		NoRealize:      s.Options.Mapped,
		Strict:         s.Options.Strict,
		BDDNodeBudget:  s.Options.BDDNodeBudget,
		RothKarpBudget: s.Options.RothKarpBudget,
		Workers:        cfg.WorkersPerJob,
		CacheDir:       cfg.CacheDir,
	}
	switch s.Options.Algorithm {
	case "", "turbosyn":
		o.Algorithm = turbosyn.TurboSYN
	case "turbomap":
		o.Algorithm = turbosyn.TurboMap
	case "flowsyns":
		o.Algorithm = turbosyn.FlowSYNS
	default:
		return o, fmt.Errorf("unknown algorithm %q", s.Options.Algorithm)
	}
	switch s.Options.Objective {
	case "", "ratio":
		o.Objective = turbosyn.MinRatio
	case "period":
		o.Objective = turbosyn.MinPeriod
	default:
		return o, fmt.Errorf("unknown objective %q", s.Options.Objective)
	}
	// Every job runs under the server's per-job arena reservation; a job may
	// ask for less, never more (admission reserved exactly cfg.PerJobArena).
	o.ArenaByteBudget = cfg.PerJobArena
	if b := s.Options.ArenaByteBudget; b > 0 && (o.ArenaByteBudget == 0 || b < o.ArenaByteBudget) {
		o.ArenaByteBudget = b
	}
	return o, nil
}

// timeout resolves the job's effective deadline under the server's caps.
func (s *JobSpec) timeout(cfg Config) time.Duration {
	d := time.Duration(s.TimeoutMS) * time.Millisecond
	if d <= 0 {
		d = cfg.DefaultTimeout
	}
	if cfg.MaxTimeout > 0 && d > cfg.MaxTimeout {
		d = cfg.MaxTimeout
	}
	return d
}

// ResultMeta is the summary of a finished job (the netlist itself is served
// by the result endpoint).
type ResultMeta struct {
	Phi        int    `json:"phi"`
	LUTs       int    `json:"luts"`
	Latency    []int  `json:"latency,omitempty"`
	Circuit    string `json:"circuit,omitempty"`
	Iterations int    `json:"iterations"`
	RunMS      int64  `json:"run_ms"`
	// Recovered marks a job resumed from the journal after a restart.
	Recovered bool `json:"recovered,omitempty"`
}

// Job is one accepted synthesis job and its full lifecycle record.
type Job struct {
	ID     string
	Seq    uint64
	Spec   JobSpec
	Queued time.Time

	mu     sync.Mutex
	state  State
	err    *ErrorInfo
	meta   ResultMeta
	result []byte // BLIF bytes once done

	snap atomic.Pointer[obs.Snapshot] // latest progress snapshot while running
	done chan struct{}                // closed on entering a terminal state

	// Stitched trace: rec is the job's span recorder, shared between ring
	// (the daemon's own admission/queue/journal/dispatch spans) and the
	// engine's worker rings (execJob hands rec to the engine as
	// Options.Trace), so one WriteTrace emits daemon and synthesis activity
	// on a single timeline. ring keeps obs's one-goroutine-at-a-time
	// ownership because the job itself is handed off sequentially: the
	// submitting handler writes before Enqueue, the worker after Dequeue,
	// and finishJob last — each hand-off is a happens-before edge (queue
	// mutex, state mutex). Both are nil when tracing is disabled.
	rec  *obs.Recorder
	ring *obs.Ring
	// enqueuedAt (recorder clock) anchors the queue-wait span; 0 means the
	// job never reached the queue. dispatchStart anchors the dispatch span;
	// 0 means no worker picked the job up (it was shed). started is the
	// wall-clock dispatch time feeding the run-time histogram.
	enqueuedAt    int64
	dispatchStart int64
	started       time.Time

	// Push progress fan-out (Subscribe/publish): every state change and
	// engine progress snapshot is delivered to each subscriber's bounded
	// channel, dropping the oldest buffered entry when a slow reader falls
	// behind; the terminal status is always delivered, exactly once, and
	// then the channels close.
	subMu      sync.Mutex
	subs       []*subscriber
	subsClosed bool

	// recovered marks a job re-admitted from the journal after a restart.
	recovered bool
}

// newJob builds a job; traceCap > 0 equips it with a stitched-trace
// recorder of that per-ring capacity.
func newJob(id string, seq uint64, spec JobSpec, now time.Time, traceCap int) *Job {
	j := &Job{ID: id, Seq: seq, Spec: spec, Queued: now, state: StateQueued, done: make(chan struct{})}
	if traceCap > 0 {
		j.rec = obs.NewRecorder(traceCap)
		j.ring = j.rec.NewRing("daemon")
	}
	return j
}

// traceNow reads the job's trace clock (0 when tracing is disabled).
func (j *Job) traceNow() int64 {
	if j.rec == nil {
		return 0
	}
	return j.rec.Now()
}

// setState advances the FSM (non-terminal transitions) and pushes the new
// status to progress subscribers.
func (j *Job) setState(s State) {
	j.mu.Lock()
	changed := !j.state.Terminal() && j.state != s
	if changed {
		j.state = s
	}
	j.mu.Unlock()
	if changed {
		j.publish(j.Status())
	}
}

// finish moves the job to a terminal state exactly once. The terminal
// status reaches every progress subscriber exactly once — publish closes
// the subscription channels right after delivering it.
func (j *Job) finish(s State, meta ResultMeta, blif []byte, errInfo *ErrorInfo) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state, j.meta, j.result, j.err = s, meta, blif, errInfo
	j.mu.Unlock()
	close(j.done)
	j.publish(j.Status())
}

// subscriber is one progress-stream listener.
type subscriber struct {
	ch      chan JobStatus
	dropped uint64
}

// Subscribe registers a push listener: the returned channel carries the
// job's current status immediately, then every subsequent state change and
// progress snapshot, and closes after the terminal status. buf bounds the
// per-subscriber buffer (<=0 = 16); a reader that falls behind loses the
// oldest buffered updates, never the terminal one. The cancel function
// detaches (and closes) the channel early; calling it after the job
// finished is a no-op.
func (j *Job) Subscribe(buf int) (<-chan JobStatus, func()) {
	if buf <= 0 {
		buf = 16
	}
	j.subMu.Lock()
	st := j.Status()
	if j.subsClosed {
		// Terminal before we subscribed: deliver the final status once and
		// close, same contract as a live subscription.
		j.subMu.Unlock()
		ch := make(chan JobStatus, 1)
		ch <- st
		close(ch)
		return ch, func() {}
	}
	sub := &subscriber{ch: make(chan JobStatus, buf)}
	sub.ch <- st
	j.subs = append(j.subs, sub)
	j.subMu.Unlock()
	return sub.ch, func() { j.unsubscribe(sub) }
}

func (j *Job) unsubscribe(sub *subscriber) {
	j.subMu.Lock()
	defer j.subMu.Unlock()
	for i, s := range j.subs {
		if s == sub {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			close(sub.ch)
			return
		}
	}
}

// publish delivers st to every subscriber, evicting the oldest buffered
// status of a slow reader to make room (the channel never blocks the
// publisher). A terminal status also closes every subscription: after it,
// Subscribe hands new callers a pre-closed channel carrying the final
// status.
func (j *Job) publish(st JobStatus) {
	j.subMu.Lock()
	defer j.subMu.Unlock()
	if j.subsClosed {
		return
	}
	for _, sub := range j.subs {
		select {
		case sub.ch <- st:
		default:
			// Full: evict the oldest entry. Publishers are serialized under
			// subMu and the consumer only drains, so the retry cannot block.
			select {
			case <-sub.ch:
				sub.dropped++
			default:
			}
			sub.ch <- st
		}
	}
	if st.State.Terminal() {
		for _, sub := range j.subs {
			close(sub.ch)
		}
		j.subs = nil
		j.subsClosed = true
	}
}

// Snapshot returns the job's latest progress snapshot (zero before the job
// produced one).
func (j *Job) Snapshot() obs.Snapshot {
	if s := j.snap.Load(); s != nil {
		return *s
	}
	return obs.Snapshot{}
}

// Status assembles the wire representation of the job's current state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID: j.ID, Tenant: j.Spec.Tenant, State: j.state,
		Queued: j.Queued, Error: j.err,
	}
	if j.state == StateDone {
		m := j.meta
		st.Result = &m
	}
	j.mu.Unlock()
	snap := j.Snapshot()
	if snap.RunID != "" {
		st.Progress = &snap
	}
	return st
}

// resultBytes returns the finished netlist, or false while not done.
func (j *Job) resultBytes() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// JobStatus is the status-endpoint JSON document.
type JobStatus struct {
	ID       string        `json:"id"`
	Tenant   string        `json:"tenant"`
	State    State         `json:"state"`
	Queued   time.Time     `json:"queued"`
	Result   *ResultMeta   `json:"result,omitempty"`
	Error    *ErrorInfo    `json:"error,omitempty"`
	Progress *obs.Snapshot `json:"progress,omitempty"`
}

// Err raises the status's failure into the engine's typed error taxonomy
// (nil when the job has not failed). See ErrorInfo.Err.
func (s *JobStatus) Err() error { return s.Error.Err() }
