package server

import (
	"context"
	"net"
	"net/http"
	"time"
)

// NewHTTPServer wraps a handler in an http.Server with the daemon's
// listener hardening: a ReadHeaderTimeout so an idle or malicious
// connection cannot pin a goroutine on headers forever, and bounded idle
// keep-alives. Both cmd/turbosynd and cmd/turbosyn's -metrics-addr listener
// use this scaffolding, so neither ships a bare http.ListenAndServe.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// ListenAndServeBackground binds the server's address, serves it on a
// background goroutine, and returns the bound listener address (useful with
// ":0") plus a shutdown function that stops accepting and waits for
// in-flight requests up to the context's deadline. The onErr callback
// receives a serve failure that happens after a successful bind (nil
// disables).
func ListenAndServeBackground(srv *http.Server, onErr func(error)) (addr net.Addr, shutdown func(context.Context) error, err error) {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return nil, nil, err
	}
	go func() {
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed && onErr != nil {
			onErr(serr)
		}
	}()
	return ln.Addr(), srv.Shutdown, nil
}
