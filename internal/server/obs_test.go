// Observability contract tests: the stitched per-job trace endpoint, the
// push progress fan-out, the /metrics exposition and the /statz schema.
package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"turbosyn/internal/jobqueue"
	"turbosyn/internal/traceval"
)

// waitDone blocks until the job is terminal (or the test times out).
func waitDone(t *testing.T, job *Job) JobStatus {
	t.Helper()
	select {
	case <-job.done:
	case <-time.After(60 * time.Second):
		t.Fatalf("%s never reached a terminal state", job.ID)
	}
	return job.Status()
}

// TestJobTraceEndpoint: a completed job's trace downloads as valid Perfetto
// JSON carrying the daemon lifecycle spans (admission, queue-wait, journal
// accepted+terminal, dispatch) and the engine's synthesis spans on the same
// timeline; a still-moving job answers 409 and an unknown id 404.
func TestJobTraceEndpoint(t *testing.T) {
	s := testServer(t, Config{Fleet: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Submitted before Start: the job stays queued, and its trace must be
	// refused while non-terminal (the rings are still being written).
	job, err := s.Submit(quickSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace of a queued job: status %d, want 409", resp.StatusCode)
	}

	s.Start()
	if st := waitDone(t, job); st.State != StateDone {
		t.Fatalf("job finished %s (%+v)", st.State, st.Error)
	}
	resp, err = http.Get(ts.URL + "/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d: %s", resp.StatusCode, data)
	}
	tr, err := traceval.Check(data)
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	counts := tr.Counts()
	for span, want := range map[string]int{
		"admission":  1,
		"queue-wait": 1,
		"journal":    2, // accepted + terminal records
		"dispatch":   1,
	} {
		if counts[span] != want {
			t.Errorf("trace has %d %q spans, want %d (counts: %v)", counts[span], span, want, counts)
		}
	}
	// Engine spans ride the same trace: synthesis of even the quick circuit
	// runs flow computations and the final mapping stage.
	if counts["flow"] == 0 || counts["map"] == 0 {
		t.Errorf("trace lacks engine spans (counts: %v)", counts)
	}
	if tr.OtherData["runID"] != job.ID {
		t.Errorf("trace runID = %v, want %s", tr.OtherData["runID"], job.ID)
	}

	resp, err = http.Get(ts.URL + "/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestJobTraceDisabled: TraceRingCap < 0 turns per-job tracing off — jobs
// run ringless (no recorder allocation) and the endpoint answers 404.
func TestJobTraceDisabled(t *testing.T) {
	s := testServer(t, Config{Fleet: 1, TraceRingCap: -1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job, err := s.Submit(quickSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if job.rec != nil || job.ring != nil {
		t.Fatal("tracing disabled but the job carries a recorder")
	}
	if st := waitDone(t, job); st.State != StateDone {
		t.Fatalf("job finished %s (%+v)", st.State, st.Error)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace with tracing disabled: status %d, want 404", resp.StatusCode)
	}
}

// TestSubscribeTerminalExactlyOnce: a subscriber sees the terminal status
// exactly once, as the channel's final element, on each terminal path
// (done, failed, shed).
func TestSubscribeTerminalExactlyOnce(t *testing.T) {
	for _, tc := range []struct {
		state State
		err   *ErrorInfo
	}{
		{StateDone, nil},
		{StateFailed, &ErrorInfo{Kind: KindInvalid, Message: "bad"}},
		{StateShed, &ErrorInfo{Kind: KindShed, Message: "drain"}},
	} {
		job := newJob("j-1", 1, quickSpec("t"), time.Now(), 0)
		ch, cancel := job.Subscribe(8)
		defer cancel()
		job.setState(StateAdmitted)
		job.setState(StateRunning)
		job.finish(tc.state, ResultMeta{}, nil, tc.err)
		// Re-finishing must be a no-op: no duplicate terminal, no panic on
		// the closed channels.
		job.finish(StateFailed, ResultMeta{}, nil, nil)

		terminals, total := 0, 0
		var last JobStatus
		for st := range ch {
			total++
			last = st
			if st.State.Terminal() {
				terminals++
			}
		}
		if terminals != 1 {
			t.Errorf("%s: %d terminal statuses delivered, want exactly 1", tc.state, terminals)
		}
		if last.State != tc.state {
			t.Errorf("final status %s, want %s", last.State, tc.state)
		}
		if total < 4 { // initial + admitted + running + terminal
			t.Errorf("%s: %d statuses delivered, want the full lifecycle", tc.state, total)
		}
	}
}

// TestSubscribeSlowReaderDropsOldest: a reader that never drains loses the
// oldest buffered updates but still receives the terminal status.
func TestSubscribeSlowReaderDropsOldest(t *testing.T) {
	job := newJob("j-1", 1, quickSpec("t"), time.Now(), 0)
	ch, cancel := job.Subscribe(2)
	defer cancel()
	// Flood with more updates than the buffer holds, without draining.
	for i := 0; i < 20; i++ {
		job.publish(JobStatus{ID: job.ID, State: StateRunning})
	}
	job.finish(StateDone, ResultMeta{}, nil, nil)
	var got []JobStatus
	for st := range ch {
		got = append(got, st)
	}
	if len(got) > 3 {
		t.Fatalf("slow reader received %d buffered statuses from a 2-buffer subscription", len(got))
	}
	if len(got) == 0 || !got[len(got)-1].State.Terminal() {
		t.Fatalf("terminal status lost by drop-oldest: %+v", got)
	}
}

// TestSubscribeAfterTerminal: a late subscriber gets the final status once
// on a pre-closed channel — same contract as a live subscription, no
// waiting.
func TestSubscribeAfterTerminal(t *testing.T) {
	job := newJob("j-1", 1, quickSpec("t"), time.Now(), 0)
	job.finish(StateDone, ResultMeta{Phi: 2}, nil, nil)
	ch, cancel := job.Subscribe(8)
	defer cancel()
	select {
	case st, ok := <-ch:
		if !ok || st.State != StateDone {
			t.Fatalf("late subscriber first read: %+v ok=%v, want the done status", st, ok)
		}
	case <-time.After(time.Second):
		t.Fatal("late subscription did not deliver immediately")
	}
	if _, ok := <-ch; ok {
		t.Fatal("late subscription channel not closed after the final status")
	}
}

// TestSubscribeCancelDetaches: cancelling a subscription closes its channel
// and later publishes fan out only to the remaining subscribers.
func TestSubscribeCancelDetaches(t *testing.T) {
	job := newJob("j-1", 1, quickSpec("t"), time.Now(), 0)
	ch1, cancel1 := job.Subscribe(8)
	ch2, cancel2 := job.Subscribe(8)
	defer cancel2()
	cancel1()
	if _, ok := <-ch1; ok {
		// First element was the preloaded current status; after cancel the
		// channel must drain to closed.
		if _, ok := <-ch1; ok {
			t.Fatal("cancelled subscription still open")
		}
	}
	job.finish(StateDone, ResultMeta{}, nil, nil)
	sawTerminal := false
	for st := range ch2 {
		if st.State.Terminal() {
			sawTerminal = true
		}
	}
	if !sawTerminal {
		t.Fatal("surviving subscriber lost the terminal status")
	}
}

// TestMetricsFamilies: after one served job, /metrics exposes the lifecycle
// latency histograms (cumulative buckets, sum, count) and the per-tenant
// gauges next to the existing daemon counters.
func TestMetricsFamilies(t *testing.T) {
	s := testServer(t, Config{Fleet: 1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job, err := s.Submit(quickSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(data)
	for _, want := range []string{
		"# TYPE turbosynd_admission_seconds histogram",
		`turbosynd_admission_seconds_bucket{le="+Inf"} 1`,
		"turbosynd_admission_seconds_count 1",
		"# TYPE turbosynd_queue_wait_seconds histogram",
		"turbosynd_queue_wait_seconds_count 1",
		"# TYPE turbosynd_run_seconds histogram",
		"turbosynd_run_seconds_count 1",
		"# TYPE turbosynd_journal_append_seconds histogram",
		"turbosynd_journal_append_seconds_count 2", // accepted + terminal
		`turbosynd_tenant_served_total{tenant="acme"} 1`,
		`turbosynd_tenant_queued{tenant="acme"} 0`,
		`turbosynd_tenant_running{tenant="acme"} 0`,
		`turbosynd_tenant_fair_share_deficit{tenant="acme"} 0`,
		"turbosynd_fleet_size 1",
		"turbosynd_fleet_occupancy 0",
	} {
		if !containsLine(body, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}

func containsLine(body, want string) bool {
	for _, line := range splitLines(body) {
		if line == want {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}

// TestTenantShedAndRejectedMetrics: shed and rejection reasons surface per
// tenant — a drain sheds queued jobs with reason "drain", and queue-side
// rejections carry their jobqueue reason.
func TestTenantShedAndRejectedMetrics(t *testing.T) {
	s := testServer(t, Config{
		Fleet: 1,
		Queue: jobqueue.Config{Capacity: 8, PerTenant: 1},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fleet not started: first submission occupies the quota, second is
	// rejected tenant-quota, then the drain sheds the queued one.
	if _, err := s.Submit(quickSpec("acme")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(quickSpec("acme")); err == nil {
		t.Fatal("over-quota submission accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(data)
	for _, want := range []string{
		`turbosynd_tenant_shed_total{tenant="acme",reason="drain"} 1`,
		`turbosynd_tenant_rejected_total{tenant="acme",reason="tenant-quota"} 1`,
	} {
		if !containsLine(body, want) {
			t.Errorf("/metrics lacks %q\n%s", want, body)
		}
	}
}

// TestStatzSchemaGolden pins the /statz JSON schema byte-for-byte: a
// fully-populated Stats document must marshal exactly as the committed
// golden file, so accidental field renames, re-orderings or type changes
// surface as a diff. Regenerate deliberately with
// TURBOSYN_UPDATE_GOLDEN=1 go test ./internal/server -run TestStatzSchemaGolden.
func TestStatzSchemaGolden(t *testing.T) {
	st := Stats{
		Accepted:    12,
		Done:        8,
		Failed:      1,
		Shed:        2,
		Recovered:   1,
		Running:     1,
		FleetSize:   4,
		Occupancy:   0.25,
		MemReserved: 64 << 20,
		MemBudget:   256 << 20,
		Draining:    true,
		Queue: jobqueue.Stats{
			Queued:   3,
			Accepted: 12,
			Dequeued: 9,
			Rejected: map[jobqueue.Reason]uint64{
				jobqueue.ReasonQueueFull:   2,
				jobqueue.ReasonTenantQuota: 1,
			},
			Tenants: []jobqueue.TenantStats{
				{Tenant: "acme", Queued: 2, Served: 5,
					Rejected: map[jobqueue.Reason]uint64{jobqueue.ReasonTenantQuota: 1}},
				{Tenant: "globex", Queued: 1, Served: 4},
			},
		},
		Tenants: []TenantInfo{
			{Tenant: "acme", Queued: 2, Running: 1, Served: 5,
				ShedByReason:     map[string]uint64{"drain": 1},
				Rejected:         map[string]uint64{"tenant-quota": 1},
				FairShareDeficit: 0},
			{Tenant: "globex", Queued: 1, Running: 0, Served: 4,
				Rejected:         map[string]uint64{"memory": 1},
				FairShareDeficit: 1},
		},
		Latency: map[string]LatencySummary{
			"admission":      {Count: 12, SumSeconds: 0.006, P50Seconds: 0.0004, P99Seconds: 0.001},
			"queue_wait":     {Count: 9, SumSeconds: 1.8, P50Seconds: 0.15, P99Seconds: 0.9},
			"run":            {Count: 9, SumSeconds: 27, P50Seconds: 2.5, P99Seconds: 8},
			"journal_append": {Count: 21, SumSeconds: 0.021, P50Seconds: 0.0008, P99Seconds: 0.003},
		},
	}
	got, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "statz.golden.json")
	if os.Getenv("TURBOSYN_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with TURBOSYN_UPDATE_GOLDEN=1)", err)
	}
	if string(got) != string(want) {
		t.Errorf("/statz schema drifted from %s (regenerate deliberately with TURBOSYN_UPDATE_GOLDEN=1):\ngot:\n%s\nwant:\n%s", golden, got, want)
	}

	// The live endpoint marshals the same type — one sanity decode so the
	// golden cannot drift from what the handler actually serves.
	s := testServer(t, Config{Fleet: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var live Stats
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		t.Fatalf("live /statz does not decode into Stats: %v", err)
	}
	if live.FleetSize != 1 {
		t.Errorf("live fleet_size = %d, want 1", live.FleetSize)
	}
}

// TestProgressStreamIsPushDriven: the NDJSON stream delivers the terminal
// line promptly after the job finishes — no poll-interval quantization —
// and ends with exactly one terminal status even when the client asked for
// the legacy poll interval.
func TestProgressStreamIsPushDriven(t *testing.T) {
	s := testServer(t, Config{Fleet: 1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job, err := s.Submit(quickSpec("acme"))
	if err != nil {
		t.Fatal(err)
	}
	// Legacy ?interval_ms is accepted and ignored: were the server still
	// polling at this interval, the stream could not finish this fast.
	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/progress?interval_ms=3600000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	terminals := 0
	var last JobStatus
	deadline := time.After(30 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			var st JobStatus
			if err := dec.Decode(&st); err != nil {
				return
			}
			last = st
			if st.State.Terminal() {
				terminals++
			}
		}
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("push stream did not terminate (poll interval leaked back in?)")
	}
	if terminals != 1 {
		t.Fatalf("stream carried %d terminal lines, want exactly 1", terminals)
	}
	if last.State != StateDone {
		t.Fatalf("stream ended on %s (%+v)", last.State, last.Error)
	}

	// obs.Snapshot progress lines ride the same stream: the engine's final
	// snapshot must have been published to the job before the terminal line.
	if snap := job.Snapshot(); snap.RunID != job.ID {
		t.Errorf("job snapshot runID = %q, want %q", snap.RunID, job.ID)
	}
}
