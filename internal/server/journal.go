// Job journal: the daemon's crash-safety record. Every accepted job is
// appended before its 202 is sent, and every terminal transition (done,
// failed, shed) is appended when it happens, so at any instant the set
// "accepted minus terminal" is exactly the jobs the daemon still owes an
// answer for. On restart those jobs are recovered: resumed when their spec
// still parses, reported failed otherwise — never silently lost.
//
// The on-disk format follows internal/decomp/cachelog: a magic+version
// header, then length-framed CRC32-checksummed records, each appended in
// one O_APPEND write. The loader accepts any valid prefix and stops at the
// first short or corrupt record, so a crash mid-append costs at most the
// record being written. Unlike the decomp cache, journal entries are not
// recomputable — so an append failure is surfaced to admission (the job is
// refused durability-first) instead of being shrugged off.
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"turbosyn/internal/faultinject"
)

// JournalVersion is the journal format version; logs of another version are
// renamed aside (not deleted) and a fresh journal is started.
const JournalVersion = 1

var journalMagic = [4]byte{'T', 'S', 'J', 'L'}

const maxJournalRecord = 16 << 20 // an inline BLIF upload can be large

// journalRecord is one framed JSON payload.
type journalRecord struct {
	// Op is "A" (accepted) or "T" (terminal).
	Op  string `json:"op"`
	ID  string `json:"id"`
	Seq uint64 `json:"seq,omitempty"`
	// Accepted payload.
	Spec *JobSpec `json:"spec,omitempty"`
	// Terminal payload.
	State State      `json:"state,omitempty"`
	Error *ErrorInfo `json:"error,omitempty"`
}

// Journal is the append-only job journal. Safe for concurrent use; every
// record lands in one write syscall under the mutex.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating as needed) the journal inside dir. An
// existing journal with a bad header or wrong version is moved aside to
// jobs.journal.bad and a fresh one is started.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, "jobs.journal")
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if len(data) < 8 || [4]byte(data[:4]) != journalMagic ||
			binary.LittleEndian.Uint32(data[4:8]) != JournalVersion {
			if err := os.Rename(path, path+".bad"); err != nil {
				return nil, fmt.Errorf("journal: quarantine unrecognized log: %w", err)
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	if st.Size() == 0 {
		hdr := append([]byte(nil), journalMagic[:]...)
		hdr = binary.LittleEndian.AppendUint32(hdr, JournalVersion)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	return &Journal{f: f, path: path}, nil
}

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file. Nil-receiver safe, like every Journal
// method: a daemon without a journal directory carries a nil *Journal.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// append frames and writes one record. The faultinject hook lets chaos
// tests simulate a failing disk.
func (j *Journal) append(rec journalRecord) error {
	if err := faultinject.JournalWrite(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Accepted records job acceptance; it must succeed before the job is
// admitted (durability-first admission).
func (j *Journal) Accepted(job *Job) error {
	if j == nil {
		return nil
	}
	spec := job.Spec
	return j.append(journalRecord{Op: "A", ID: job.ID, Seq: job.Seq, Spec: &spec})
}

// Terminal records a terminal transition. A failure here is logged by the
// caller but does not fail the job: the worst case on crash is a duplicate
// re-run of an already-answered job, never a lost one.
func (j *Journal) Terminal(id string, state State, errInfo *ErrorInfo) error {
	if j == nil {
		return nil
	}
	return j.append(journalRecord{Op: "T", ID: id, State: state, Error: errInfo})
}

// PendingJob is one recovered accepted-but-unanswered job.
type PendingJob struct {
	ID   string
	Seq  uint64
	Spec JobSpec
}

// LoadJournal replays the journal in dir: pending jobs (accepted, no
// terminal record), and the highest sequence number seen (so new IDs do not
// collide with recovered ones). A missing journal is empty, not an error;
// corruption truncates the replay at the last valid prefix.
func LoadJournal(dir string) (pending []PendingJob, maxSeq uint64, err error) {
	data, err := os.ReadFile(filepath.Join(dir, "jobs.journal"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	if len(data) < 8 || [4]byte(data[:4]) != journalMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != JournalVersion {
		return nil, 0, nil
	}
	data = data[8:]
	accepted := map[string]PendingJob{}
	var order []string
	for len(data) >= 8 {
		n := binary.LittleEndian.Uint32(data[:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if n == 0 || n > maxJournalRecord || uint64(len(data)) < 8+uint64(n) {
			break
		}
		payload := data[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec journalRecord
		if json.Unmarshal(payload, &rec) != nil {
			break
		}
		switch rec.Op {
		case "A":
			if rec.Spec != nil {
				if _, dup := accepted[rec.ID]; !dup {
					order = append(order, rec.ID)
				}
				accepted[rec.ID] = PendingJob{ID: rec.ID, Seq: rec.Seq, Spec: *rec.Spec}
				if rec.Seq > maxSeq {
					maxSeq = rec.Seq
				}
			}
		case "T":
			delete(accepted, rec.ID)
		}
		data = data[8+n:]
	}
	for _, id := range order {
		if pj, ok := accepted[id]; ok {
			pending = append(pending, pj)
		}
	}
	return pending, maxSeq, nil
}

// CompactJournal rewrites dir's journal to contain only the still-pending
// records (temp file + rename, so a crash mid-compaction leaves the old
// journal intact). Called at startup after recovery re-admits the pending
// jobs; it bounds journal growth across restarts.
func CompactJournal(dir string, pending []PendingJob) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, "jobs.journal")
	var buf []byte
	buf = append(buf, journalMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, JournalVersion)
	for _, pj := range pending {
		spec := pj.Spec
		payload, err := json.Marshal(journalRecord{Op: "A", ID: pj.ID, Seq: pj.Seq, Spec: &spec})
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
		buf = append(buf, payload...)
	}
	tmp, err := os.CreateTemp(dir, ".jobs.journal.tmp*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
