package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"turbosyn"
	"turbosyn/internal/jobqueue"
	"turbosyn/internal/netlist"
)

// quickBLIF is a 2-LUT sequential circuit that synthesizes in milliseconds.
const quickBLIF = ".model m\n.inputs a\n.outputs z\n.latch n q 0\n.names a q n\n11 1\n.names q z\n1 1\n.end\n"

// badBLIF references an undefined signal: accepted, then failed typed
// KindInvalid.
const badBLIF = ".model m\n.inputs a\n.outputs z\n.names b z\n1 1\n.end\n"

func quickSpec(tenant string) JobSpec {
	return JobSpec{Tenant: tenant, BLIF: quickBLIF}
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.JournalDir == "" {
		cfg.JournalDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestDaemonSmoke is the end-to-end HTTP smoke: a mixed batch of quick jobs
// from three tenants — including one malformed BLIF and one over-quota
// tenant — all reach terminal states, the failure carries the typed invalid
// kind, the quota rejection answers 429 + Retry-After, and the drain leaves
// accepted == done + failed + shed with nothing dangling.
func TestDaemonSmoke(t *testing.T) {
	s := testServer(t, Config{
		Fleet: 2,
		Queue: jobqueue.Config{Capacity: 32, PerTenant: 2},
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()

	cl := NewClient(ts.URL, "")
	cl.MaxAttempts = 1 // assert admission outcomes, not retried ones

	var ids []string
	for _, spec := range []JobSpec{
		quickSpec("acme"),
		quickSpec("acme"),
		quickSpec("globex"),
		{Tenant: "globex", BLIF: badBLIF},
		{Tenant: "initech", Generator: &GeneratorSpec{Kind: "fsm", Seed: 7, StateBits: 3, Inputs: 2, Outputs: 2, Cubes: 4, Span: 3}},
	} {
		id, err := cl.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %+v: %v", spec, err)
		}
		ids = append(ids, id)
	}

	// Over-quota tenant: acme already has 2 in flight (PerTenant=2), so a
	// third burst submission must shed with 429 + Retry-After. Race window:
	// workers may finish acme's jobs first, so tolerate an accept — but when
	// rejected, the response shape is pinned.
	body, _ := json.Marshal(quickSpec("acme"))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	switch resp.StatusCode {
	case http.StatusAccepted:
		var out struct {
			ID string `json:"id"`
		}
		json.NewDecoder(resp.Body).Decode(&out)
		ids = append(ids, out.ID)
	case http.StatusTooManyRequests:
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
	default:
		t.Fatalf("over-quota submit: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed JSON is a synchronous 400, never accepted.
	resp, err = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	states := map[string]State{}
	for _, id := range ids {
		st, err := cl.Wait(wctx, id, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		states[id] = st.State
		if st.State == StateFailed {
			if st.Error == nil || st.Error.Kind != KindInvalid {
				t.Errorf("%s failed with %+v, want kind %s", id, st.Error, KindInvalid)
			}
			if st.Err() == nil {
				t.Errorf("%s: failed status raises nil error", id)
			}
		}
		if st.State == StateDone {
			blif, err := cl.Result(wctx, id)
			if err != nil {
				t.Fatalf("result %s: %v", id, err)
			}
			if !strings.HasPrefix(string(blif), ".model") {
				t.Errorf("%s: result is not BLIF: %.40q", id, blif)
			}
		}
	}
	failed := 0
	for id, st := range states {
		if !st.Terminal() {
			t.Errorf("%s stuck in %s", id, st)
		}
		if st == StateFailed {
			failed++
		}
	}
	if failed != 1 {
		t.Errorf("failed = %d, want exactly the malformed-BLIF job", failed)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("clean drain: %v", err)
	}
	st := s.Stats()
	if st.Accepted != st.Done+st.Failed+st.Shed {
		t.Errorf("accounting: accepted %d != done %d + failed %d + shed %d", st.Accepted, st.Done, st.Failed, st.Shed)
	}
	if st.Running != 0 {
		t.Errorf("running = %d after drain", st.Running)
	}
}

// TestDaemonByteIdentity: a daemon job's netlist is byte-identical to the
// one-shot library path with the same options (the acceptance criterion for
// "completed" in the drain invariant).
func TestDaemonByteIdentity(t *testing.T) {
	s := testServer(t, Config{Fleet: 1})
	s.Start()
	job, err := s.Submit(quickSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	<-job.done
	got, ok := job.resultBytes()
	if !ok {
		t.Fatalf("job finished %s: %+v", job.Status().State, job.Status().Error)
	}

	c, err := netlist.ReadBLIF(strings.NewReader(quickBLIF))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := job.Spec.engineOptions(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := turbosyn.SynthesizeContext(context.Background(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := netlist.WriteBLIF(&want, res.Realized); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("daemon netlist differs from one-shot synthesis:\ndaemon:\n%s\none-shot:\n%s", got, want.Bytes())
	}
}

// TestDaemonRecovery: jobs accepted (journaled) but never run — a crash
// before the fleet started — are re-admitted on restart, run to completion,
// and marked recovered. Zero jobs silently lost.
func TestDaemonRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Fleet: 1, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		job, err := s1.Submit(quickSpec("t"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	// Crash: the fleet never starts, the journal is abandoned un-drained.
	s1.journal.Close()

	s2, err := New(Config{Fleet: 1, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Recovered; got != 3 {
		t.Fatalf("recovered = %d, want 3", got)
	}
	s2.Start()
	for _, id := range ids {
		job, ok := s2.Job(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		select {
		case <-job.done:
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s never finished after recovery", id)
		}
		st := job.Status()
		if st.State != StateDone {
			t.Errorf("%s: state %s (%+v), want done", id, st.State, st.Error)
		}
		if st.Result == nil || !st.Result.Recovered {
			t.Errorf("%s: result not marked recovered: %+v", id, st.Result)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// After a clean drain the compact-on-open cycle leaves nothing pending.
	pending, _, err := LoadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Errorf("%d jobs still pending after clean drain", len(pending))
	}
}

// TestDaemonDrainRejectsSubmit: a draining daemon refuses new work with the
// closed reason (mapped to 503 by the HTTP layer) and Drain is idempotent.
func TestDaemonDrainRejectsSubmit(t *testing.T) {
	s := testServer(t, Config{Fleet: 1})
	s.Start()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(quickSpec("t"))
	var rej *jobqueue.RejectError
	if !errors.As(err, &rej) || rej.Reason != jobqueue.ReasonClosed {
		t.Fatalf("submit after drain: %v, want RejectError{closed}", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestDaemonMemBudgetAdmission: when admitted jobs exhaust the arena-byte
// headroom, further submissions shed with 429 material (RejectError +
// RetryAfter) until a reservation frees.
func TestDaemonMemBudgetAdmission(t *testing.T) {
	s := testServer(t, Config{
		Fleet:       1,
		PerJobArena: 1 << 20,
		MemBudget:   2 << 20, // room for exactly two reservations
	})
	// Fleet not started: submissions stay queued, reservations stay held.
	if _, err := s.Submit(quickSpec("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(quickSpec("b")); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(quickSpec("c"))
	var rej *jobqueue.RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("third submit: %v, want memory-headroom rejection", err)
	}
	if rej.RetryAfter <= 0 {
		t.Error("memory rejection without RetryAfter")
	}
	st := s.Stats()
	if st.MemReserved != 2<<20 {
		t.Errorf("mem_reserved = %d, want %d", st.MemReserved, 2<<20)
	}
}

// TestProgressStream: the NDJSON progress endpoint ends with a terminal
// status line carrying the result metadata.
func TestProgressStream(t *testing.T) {
	s := testServer(t, Config{Fleet: 1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job, err := s.Submit(quickSpec("t"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/progress?interval_ms=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var last JobStatus
	n := 0
	for dec.More() {
		if err := dec.Decode(&last); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("progress stream produced no lines")
	}
	if !last.State.Terminal() {
		t.Errorf("stream ended on non-terminal state %s", last.State)
	}
	if last.State == StateDone && last.Result == nil {
		t.Error("terminal done line missing result metadata")
	}
}
