// Package server is the multi-tenant synthesis daemon behind cmd/turbosynd:
// an HTTP/JSON front end over a fleet of synthesis workers, with admission
// control (bounded tenant-fair queue, per-tenant rate limits, memory-budget
// headroom → 429 + Retry-After), a crash-safe job journal (accepted jobs
// are resumed or reported failed across restarts, never silently lost),
// per-job panic containment (one poisoned job never kills the fleet), and
// graceful drain (stop admitting, finish or shed what is in flight, flush).
// DESIGN.md §12 documents the job lifecycle and the invariants.
package server

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"turbosyn"
	"turbosyn/internal/core"
	"turbosyn/internal/faultinject"
	"turbosyn/internal/jobqueue"
	"turbosyn/internal/netlist"
	"turbosyn/internal/obs"
)

// Config sizes the daemon. Zero values select the defaults noted per field.
type Config struct {
	// Fleet is the number of jobs run concurrently (default NumCPU).
	Fleet int
	// WorkersPerJob is each job's engine worker-pool size (default 1: the
	// fleet provides the parallelism, one worker per job keeps a tenant
	// from monopolizing cores).
	WorkersPerJob int
	// Queue bounds admission (see jobqueue.Config).
	Queue jobqueue.Config
	// MemBudget caps the summed arena reservations of admitted jobs; a
	// submission that would exceed it is shed with 429 (0 = unlimited).
	MemBudget int64
	// PerJobArena is the arena-byte reservation and budget given to each
	// job (default 64 MiB). Jobs may request less, never more.
	PerJobArena int
	// DefaultTimeout bounds jobs that do not ask for a timeout (default
	// 60s); MaxTimeout caps what they may ask for (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds Close's drain (default 30s).
	DrainTimeout time.Duration
	// JournalDir enables the crash-safe job journal ("" disables: jobs do
	// not survive a restart).
	JournalDir string
	// CacheDir is the shared persistent decomposition cache; warm entries
	// are shared across jobs and tenants ("" disables).
	CacheDir string
	// TraceRingCap sizes each ring of a job's stitched daemon+engine trace,
	// in events (default 1024, ~48 KiB per ring; -1 disables per-job
	// tracing — GET /jobs/{id}/trace then answers 404).
	TraceRingCap int
	// ProgressInterval is the engine's progress-snapshot cadence pushed to
	// progress-stream subscribers (default 250ms).
	ProgressInterval time.Duration
	// Logger receives structured serving logs (nil = silent).
	Logger *slog.Logger
}

func (c Config) fill() Config {
	if c.Fleet <= 0 {
		c.Fleet = runtime.NumCPU()
	}
	if c.WorkersPerJob == 0 {
		c.WorkersPerJob = 1
	}
	if c.PerJobArena <= 0 {
		c.PerJobArena = 64 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.TraceRingCap == 0 {
		c.TraceRingCap = 1024
	}
	if c.TraceRingCap < 0 {
		c.TraceRingCap = 0 // 0 = disabled from here on
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 250 * time.Millisecond
	}
	return c
}

// Server is the daemon. Create with New, serve its Handler, stop with
// Drain (or Close).
type Server struct {
	cfg     Config
	queue   *jobqueue.Queue
	journal *Journal

	mu   sync.Mutex
	jobs map[string]*Job
	seq  uint64

	memReserved atomic.Int64

	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup
	started   bool
	draining  atomic.Bool
	drainOnce sync.Once
	drainErr  error

	// Lifetime counters.
	accepted  atomic.Uint64
	done      atomic.Uint64
	failed    atomic.Uint64
	shed      atomic.Uint64
	running   atomic.Int64
	recovered atomic.Uint64

	// Latency histograms and per-tenant accounting (metrics.go).
	metrics daemonMetrics

	tenantMu   sync.Mutex
	tenantAcct map[string]*tenantAccount
}

// New builds the server: it replays and compacts the journal, re-admits
// every recovered job, and readies (but does not start) the worker fleet.
func New(cfg Config) (*Server, error) {
	cfg = cfg.fill()
	s := &Server{
		cfg: cfg, queue: jobqueue.New(cfg.Queue), jobs: map[string]*Job{},
		metrics: newDaemonMetrics(), tenantAcct: map[string]*tenantAccount{},
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())

	var pending []PendingJob
	if cfg.JournalDir != "" {
		var err error
		var maxSeq uint64
		pending, maxSeq, err = LoadJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		s.seq = maxSeq
		// Compact before reopening: the fresh journal holds exactly the
		// still-pending jobs, so it cannot grow without bound across
		// restarts.
		if err := CompactJournal(cfg.JournalDir, pending); err != nil {
			return nil, err
		}
		s.journal, err = OpenJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
	}
	for _, pj := range pending {
		s.readmit(pj)
	}
	return s, nil
}

// readmit re-enqueues one journal-recovered job; when the queue refuses it
// (capacity, tenant quota — rate limits are exempt), the job is reported
// shed rather than silently dropped.
func (s *Server) readmit(pj PendingJob) {
	job := newJob(pj.ID, pj.Seq, pj.Spec, time.Now(), s.cfg.TraceRingCap)
	job.recovered = true
	s.mu.Lock()
	s.jobs[job.ID] = job
	s.mu.Unlock()
	s.reserveMem()
	s.recovered.Add(1)
	job.enqueuedAt = job.traceNow()
	if _, err := s.queue.EnqueueExempt(tenantOf(pj.Spec), pj.Spec.Priority, job); err != nil {
		job.enqueuedAt = 0 // never queued; the trace gets a bare shed instant
		s.shedJob(job, "recovery", shedError("not resumable after restart: "+err.Error()))
		return
	}
	s.logf("job recovered", "job", job.ID, "tenant", tenantOf(pj.Spec))
}

// Start launches the worker fleet. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Fleet; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// worker pulls jobs off the fair-share queue until the queue is closed and
// drained, or the run context is cancelled.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		it, ok := s.queue.Dequeue(s.runCtx)
		if !ok {
			return
		}
		job := it.Payload.(*Job)
		// The dequeue hand-off makes this worker the trace ring's owner:
		// close the queue-wait span and open the dispatch window.
		if job.ring != nil {
			job.ring.Span(obs.OpQueueWait, job.enqueuedAt, -1, -1)
			job.dispatchStart = job.traceNow()
		}
		job.started = time.Now()
		s.metrics.queueWait.Observe(job.started.Sub(job.Queued).Seconds())
		tenant := tenantOf(job.Spec)
		job.setState(StateAdmitted)
		s.running.Add(1)
		s.tenantRunning(tenant, 1)
		s.execJob(job)
		s.tenantRunning(tenant, -1)
		s.running.Add(-1)
	}
}

// execJob runs one job inside the panic fence: any panic that escapes the
// engine's own containment (or lives in the serving path itself) marks this
// job failed and the worker keeps serving.
func (s *Server) execJob(job *Job) {
	defer func() {
		if r := recover(); r != nil {
			err := &core.InternalError{Op: "job", Comp: -1, Node: -1, Value: r}
			s.finishJob(job, StateFailed, ResultMeta{}, nil, EncodeError(err))
		}
	}()
	faultinject.JobStart(tenantOf(job.Spec))

	circuit, err := job.Spec.buildCircuit()
	if err != nil {
		s.finishJob(job, StateFailed, ResultMeta{}, nil, invalidError(err))
		return
	}
	opts, err := job.Spec.engineOptions(s.cfg)
	if err != nil {
		s.finishJob(job, StateFailed, ResultMeta{}, nil, invalidError(err))
		return
	}
	opts.RunID = job.ID
	opts.Logger = s.cfg.Logger
	opts.ProgressInterval = s.cfg.ProgressInterval
	opts.Progress = func(snap obs.Snapshot) {
		job.snap.Store(&snap)
		job.publish(job.Status())
	}
	// Hand the job's recorder to the engine: its worker rings land next to
	// the daemon ring, on the same clock — one stitched timeline.
	opts.Trace = job.rec

	ctx, cancel := context.WithTimeout(s.runCtx, job.Spec.timeout(s.cfg))
	defer cancel()
	job.setState(StateRunning)
	start := time.Now()
	res, err := turbosyn.SynthesizeContext(ctx, circuit, opts)
	if err != nil {
		s.finishJob(job, StateFailed, ResultMeta{}, nil, EncodeError(err))
		return
	}
	target := res.Realized
	if target == nil {
		target = res.Mapped
	}
	var blif writerBuffer
	if err := netlist.WriteBLIF(&blif, target); err != nil {
		s.finishJob(job, StateFailed, ResultMeta{}, nil, EncodeError(err))
		return
	}
	meta := ResultMeta{
		Phi: res.Phi, LUTs: res.LUTs, Latency: res.Latency,
		Circuit: circuit.Name, Iterations: res.Stats.Iterations,
		RunMS: time.Since(start).Milliseconds(), Recovered: job.recovered,
	}
	s.finishJob(job, StateDone, meta, blif.buf, nil)
}

// shedJob is finishJob for jobs given up without running, tagging the shed
// reason for the per-tenant gauges ("drain", "recovery", ...).
func (s *Server) shedJob(job *Job, reason string, errInfo *ErrorInfo) {
	s.tenantShed(tenantOf(job.Spec), reason)
	s.finishJob(job, StateShed, ResultMeta{}, nil, errInfo)
}

// finishJob moves a job to its terminal state, journals the transition,
// releases its admission reservation and bumps the lifetime counters. A
// journal failure here is logged, not fatal: the in-memory answer stands,
// and the crash-recovery worst case is one duplicate re-run.
//
// Ordering matters for the stitched trace: every daemon span is written
// before job.finish makes the terminal state visible, because terminal
// visibility is what licenses the trace handler to read the rings.
func (s *Server) finishJob(job *Job, state State, meta ResultMeta, blif []byte, errInfo *ErrorInfo) {
	if job.ring != nil {
		if job.dispatchStart > 0 {
			ok := int64(0)
			if state == StateDone {
				ok = 1
			}
			job.ring.Span(obs.OpDispatch, job.dispatchStart, ok, -1)
		} else {
			// Shed without ever running: close the queue-wait span (when the
			// job reached the queue at all) and mark the shed.
			if job.enqueuedAt > 0 {
				job.ring.Span(obs.OpQueueWait, job.enqueuedAt, 0, -1)
			}
			job.ring.Instant(obs.OpShed, -1, -1)
		}
	}
	// job.started, not dispatchStart, is the "was dispatched" predicate
	// here: dispatchStart exists only when the trace ring does, and the run
	// histogram must fill with tracing disabled too.
	if !job.started.IsZero() {
		s.metrics.run.Observe(time.Since(job.started).Seconds())
	}
	jt := job.traceNow()
	jstart := time.Now()
	jerr := s.journal.Terminal(job.ID, state, errInfo)
	s.metrics.journal.Observe(time.Since(jstart).Seconds())
	if job.ring != nil {
		b := int64(0)
		if jerr != nil {
			b = -1
		}
		job.ring.Span(obs.OpJournal, jt, 1, b)
	}
	if jerr != nil {
		s.logf("journal terminal failed", "job", job.ID, "err", jerr.Error())
	}
	job.finish(state, meta, blif, errInfo)
	s.releaseMem()
	switch state {
	case StateDone:
		s.done.Add(1)
		s.logf("job done", "job", job.ID, "tenant", tenantOf(job.Spec), "phi", meta.Phi, "luts", meta.LUTs, "ms", meta.RunMS)
	case StateShed:
		s.shed.Add(1)
		s.logf("job shed", "job", job.ID, "tenant", tenantOf(job.Spec), "why", errInfo.Message)
	default:
		s.failed.Add(1)
		s.logf("job failed", "job", job.ID, "tenant", tenantOf(job.Spec), "kind", string(errInfo.Kind), "err", errInfo.Message)
	}
}

// Submit runs admission control on spec and either admits it (returning the
// job) or rejects it with a *jobqueue.RejectError (queue/quota/rate/drain)
// or a journal error. The HTTP layer maps rejections to 429/503 +
// Retry-After.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	admitStart := time.Now()
	defer func() { s.metrics.admission.Observe(time.Since(admitStart).Seconds()) }()
	if s.draining.Load() {
		s.tenantRejected(tenantOf(spec), "draining")
		return nil, &jobqueue.RejectError{Reason: jobqueue.ReasonClosed, Tenant: tenantOf(spec)}
	}
	// Memory-budget headroom: every admitted job reserves PerJobArena bytes
	// until it reaches a terminal state.
	if s.cfg.MemBudget > 0 {
		if s.memReserved.Add(int64(s.cfg.PerJobArena)) > s.cfg.MemBudget {
			s.memReserved.Add(-int64(s.cfg.PerJobArena))
			s.tenantRejected(tenantOf(spec), "memory")
			return nil, &jobqueue.RejectError{
				Reason: jobqueue.ReasonQueueFull, Tenant: tenantOf(spec), RetryAfter: time.Second,
			}
		}
	}
	s.mu.Lock()
	s.seq++
	job := newJob(fmt.Sprintf("j-%08d", s.seq), s.seq, spec, time.Now(), s.cfg.TraceRingCap)
	s.jobs[job.ID] = job
	s.mu.Unlock()
	admitT := job.traceNow()

	// Durability first: the journal record lands before the queue accepts
	// the job — an unjournalable job is refused outright, because accepting
	// it would promise a durability the daemon cannot deliver.
	jt := job.traceNow()
	jstart := time.Now()
	err := s.journal.Accepted(job)
	s.metrics.journal.Observe(time.Since(jstart).Seconds())
	if err != nil {
		s.forgetJob(job)
		s.releaseMem()
		return nil, err
	}
	if job.ring != nil {
		job.ring.Span(obs.OpJournal, jt, 0, 0)
		// The admission span and the enqueue anchor are written before
		// Enqueue: once the queue holds the job a worker may dequeue it and
		// take over the ring, so the submitting goroutine must be done
		// writing by then.
		job.ring.Span(obs.OpAdmit, admitT, 1, -1)
	}
	job.enqueuedAt = job.traceNow()
	if _, err := s.queue.Enqueue(tenantOf(spec), spec.Priority, job); err != nil {
		// Journal the shed terminal so the accepted record does not dangle.
		if terr := s.journal.Terminal(job.ID, StateShed, shedError(err.Error())); terr != nil {
			s.logf("journal terminal failed", "job", job.ID, "err", terr.Error())
		}
		s.tenantShed(tenantOf(spec), "queue")
		s.forgetJob(job)
		s.releaseMem()
		return nil, err
	}
	s.accepted.Add(1)
	s.logf("job accepted", "job", job.ID, "tenant", tenantOf(spec), "priority", spec.Priority)
	return job, nil
}

// forgetJob removes a never-admitted job from the registry.
func (s *Server) forgetJob(job *Job) {
	s.mu.Lock()
	delete(s.jobs, job.ID)
	s.mu.Unlock()
}

func (s *Server) reserveMem() {
	if s.cfg.MemBudget > 0 {
		s.memReserved.Add(int64(s.cfg.PerJobArena))
	}
}

func (s *Server) releaseMem() {
	if s.cfg.MemBudget > 0 {
		s.memReserved.Add(-int64(s.cfg.PerJobArena))
	}
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists jobs (all tenants when tenant is empty), ordered by admission.
func (s *Server) Jobs(tenant string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, j := range s.jobs {
		if tenant == "" || tenantOf(j.Spec) == tenant {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	return out
}

// Drain is the graceful shutdown: stop admitting, let the fleet finish the
// queued and in-flight jobs, and — when ctx expires first — cancel what is
// still running (those jobs fail with the retryable cancel kind) and shed
// what never started. Every accepted job reaches a terminal state before
// Drain returns. Idempotent; concurrent calls share the first outcome.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { s.drainErr = s.drain(ctx) })
	return s.drainErr
}

func (s *Server) drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	s.logf("drain started", "queued", fmt.Sprint(s.queue.Len()), "running", fmt.Sprint(s.running.Load()))

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	var timedOut bool
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		select {
		case <-workersDone:
		case <-ctx.Done():
			// Deadline: abort in-flight jobs (they observe the cancellation
			// within the engine's checkpoint latency and fail retryably).
			timedOut = true
			s.cancelRun()
			<-workersDone
		}
	}
	s.cancelRun()
	// Whatever is still queued was never started: shed it, with a journal
	// terminal per job, so nothing dangles.
	for {
		it, ok := s.queue.Dequeue(context.Background())
		if !ok {
			break
		}
		job := it.Payload.(*Job)
		s.shedJob(job, "drain", shedError("daemon drained before the job started"))
	}
	if err := s.journal.Close(); err != nil {
		return err
	}
	s.logf("drain finished", "timed_out", fmt.Sprint(timedOut))
	if timedOut {
		return fmt.Errorf("server: drain deadline expired; in-flight jobs were cancelled")
	}
	return nil
}

// Close drains with the configured DrainTimeout.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Drain(ctx)
}

// Draining reports whether the server has stopped admitting.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats is the daemon-level accounting snapshot. Its JSON shape is pinned
// by a golden test (statz_golden_test.go) — dashboard consumers parse it,
// so field changes must update the golden deliberately.
type Stats struct {
	Accepted    uint64         `json:"accepted"`
	Done        uint64         `json:"done"`
	Failed      uint64         `json:"failed"`
	Shed        uint64         `json:"shed"`
	Recovered   uint64         `json:"recovered"`
	Running     int64          `json:"running"`
	FleetSize   int            `json:"fleet_size"`
	Occupancy   float64        `json:"occupancy"`
	MemReserved int64          `json:"mem_reserved"`
	MemBudget   int64          `json:"mem_budget"`
	Draining    bool           `json:"draining"`
	Queue       jobqueue.Stats `json:"queue"`
	// Tenants merges queue accounting with the server's own per-tenant
	// gauges (running, shed-by-reason, fair-share deficit).
	Tenants []TenantInfo `json:"tenants"`
	// Latency summarizes the daemon histograms, keyed by stage:
	// admission, queue_wait, run, journal_append.
	Latency map[string]LatencySummary `json:"latency"`
}

// Stats snapshots the daemon counters.
func (s *Server) Stats() Stats {
	running := s.running.Load()
	occupancy := 0.0
	if s.cfg.Fleet > 0 {
		occupancy = float64(running) / float64(s.cfg.Fleet)
	}
	qs := s.queue.Stats()
	return Stats{
		Accepted:    s.accepted.Load(),
		Done:        s.done.Load(),
		Failed:      s.failed.Load(),
		Shed:        s.shed.Load(),
		Recovered:   s.recovered.Load(),
		Running:     running,
		FleetSize:   s.cfg.Fleet,
		Occupancy:   occupancy,
		MemReserved: s.memReserved.Load(),
		MemBudget:   s.cfg.MemBudget,
		Draining:    s.draining.Load(),
		Queue:       qs,
		Tenants:     s.tenantInfo(qs),
		Latency:     s.metrics.summary(),
	}
}

func (s *Server) logf(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info(msg, args...)
	}
}

func tenantOf(spec JobSpec) string {
	if spec.Tenant == "" {
		return "anonymous"
	}
	return spec.Tenant
}

// writerBuffer is a minimal growable byte sink for WriteBLIF.
type writerBuffer struct{ buf []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
