package server

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"turbosyn/internal/core"
)

// TestErrorTaxonomyJSONRoundTrip: every engine error kind survives
// EncodeError -> JSON -> decode -> Err with its type, its errors.Is
// targets, and its load-bearing fields intact. This is the contract that
// makes client-side errors.As behave like a local run's.
func TestErrorTaxonomyJSONRoundTrip(t *testing.T) {
	roundTrip := func(t *testing.T, err error) error {
		t.Helper()
		info := EncodeError(err)
		data, jerr := json.Marshal(info)
		if jerr != nil {
			t.Fatal(jerr)
		}
		var decoded ErrorInfo
		if jerr := json.Unmarshal(data, &decoded); jerr != nil {
			t.Fatal(jerr)
		}
		return decoded.Err()
	}

	t.Run("cancel", func(t *testing.T) {
		orig := &core.CancelError{Phase: "binary-search", BestPhi: 4, Err: context.Canceled}
		got := roundTrip(t, orig)
		var ce *core.CancelError
		if !errors.As(got, &ce) {
			t.Fatalf("not a *core.CancelError: %v", got)
		}
		if !errors.Is(got, context.Canceled) {
			t.Error("lost the context.Canceled cause")
		}
		if ce.Phase != "binary-search" || ce.BestPhi != 4 {
			t.Errorf("lost detail: %+v", ce)
		}
	})

	t.Run("timeout", func(t *testing.T) {
		orig := &core.CancelError{Phase: "sweep", Err: context.DeadlineExceeded}
		got := roundTrip(t, orig)
		if !errors.Is(got, context.DeadlineExceeded) {
			t.Error("deadline cause did not survive the wire")
		}
		if errors.Is(got, context.Canceled) {
			t.Error("timeout decoded as explicit cancel")
		}
	})

	t.Run("budget", func(t *testing.T) {
		orig := &core.BudgetError{Resource: "bdd-nodes", Limit: 1000, Node: 42}
		got := roundTrip(t, orig)
		var be *core.BudgetError
		if !errors.As(got, &be) {
			t.Fatalf("not a *core.BudgetError: %v", got)
		}
		if be.Resource != "bdd-nodes" || be.Limit != 1000 || be.Node != 42 {
			t.Errorf("lost detail: %+v", be)
		}
	})

	t.Run("internal", func(t *testing.T) {
		orig := &core.InternalError{Op: "label", Phase: "sweep", Comp: 3, Node: 7, Value: "boom"}
		got := roundTrip(t, orig)
		var ie *core.InternalError
		if !errors.As(got, &ie) {
			t.Fatalf("not a *core.InternalError: %v", got)
		}
		if ie.Op != "label" {
			t.Errorf("lost op: %+v", ie)
		}
	})

	t.Run("retryable verdicts", func(t *testing.T) {
		cases := []struct {
			info *ErrorInfo
			want bool
		}{
			{EncodeError(&core.CancelError{Err: context.Canceled}), true},
			{EncodeError(&core.BudgetError{Resource: "r"}), false},
			{EncodeError(&core.InternalError{Op: "x"}), false},
			{invalidError(errors.New("bad blif")), false},
			{shedError("drained"), true},
		}
		for _, tc := range cases {
			if tc.info.Retryable != tc.want {
				t.Errorf("%s: retryable = %v, want %v", tc.info.Kind, tc.info.Retryable, tc.want)
			}
		}
	})

	t.Run("nil", func(t *testing.T) {
		var info *ErrorInfo
		if info.Err() != nil {
			t.Error("nil ErrorInfo raised a non-nil error")
		}
	})
}
