package server

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler is the opt-in debug mux: net/http/pprof profiles and the
// process expvar registry (which carries the run-scoped engine metrics
// published via obs.PublishExpvar, plus anything the host registered).
// It is deliberately separate from Handler — profiles and vars expose
// internals no tenant should see, so cmd/turbosynd serves this only on
// -debug-addr, which an operator binds to localhost or a management
// network, never the public API address.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
