package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Client talks to a turbosynd daemon. Submit retries admission rejections
// (429/503) and transport failures with jittered exponential backoff,
// honoring the server's Retry-After; status and result reads retry only on
// transport failures. The zero value is not usable — construct with
// NewClient.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://localhost:8787".
	Base string
	// Tenant is stamped on submissions that do not carry one.
	Tenant string
	// HTTPClient defaults to a client with a sane overall timeout.
	HTTPClient *http.Client
	// MaxAttempts bounds Submit's tries (default 8).
	MaxAttempts int
	// BaseBackoff is the first retry delay (default 100ms); backoff doubles
	// per attempt, jittered ±50%, capped at 5s. A server Retry-After
	// overrides the computed delay when longer.
	BaseBackoff time.Duration

	mu      sync.Mutex
	rng     *rand.Rand
	retries atomic.Int64
}

// Retries reports how many shed-load or transport retries Submit has
// performed over the client's lifetime (load-harness accounting).
func (c *Client) Retries() int64 { return c.retries.Load() }

// NewClient returns a client for the daemon at base.
func NewClient(base, tenant string) *Client {
	return &Client{
		Base:        base,
		Tenant:      tenant,
		HTTPClient:  &http.Client{Timeout: 30 * time.Second},
		MaxAttempts: 8,
		BaseBackoff: 100 * time.Millisecond,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// RejectedError is an admission rejection that exhausted the client's
// retries.
type RejectedError struct {
	Status  int
	Message string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("turbosynd: rejected (%d) after retries: %s", e.Status, e.Message)
}

// Submit posts the job and returns its id, retrying shed load with
// backoff.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (string, error) {
	if spec.Tenant == "" {
		spec.Tenant = c.Tenant
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 8
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if err := c.sleep(ctx, c.backoff(attempt, lastErr)); err != nil {
				return "", err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/jobs", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.httpClient().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var out struct {
				ID string `json:"id"`
			}
			err := json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				return "", err
			}
			return out.ID, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			msg := readError(resp)
			lastErr = &retryAfterError{
				err:   &RejectedError{Status: resp.StatusCode, Message: msg},
				after: parseRetryAfter(resp),
			}
			continue
		default:
			msg := readError(resp)
			return "", fmt.Errorf("turbosynd: submit failed (%d): %s", resp.StatusCode, msg)
		}
	}
	if ra, ok := lastErr.(*retryAfterError); ok {
		return "", ra.err
	}
	return "", fmt.Errorf("turbosynd: submit failed after %d attempts: %w", attempts, lastErr)
}

// Status fetches the job's status document.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("turbosynd: status %s: %d: %s", id, resp.StatusCode, readError(resp))
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// streamHTTPClient serves progress streams: no overall timeout (the
// configured HTTPClient's response deadline would sever a stream mid-job);
// the request context bounds it instead.
var streamHTTPClient = &http.Client{}

// Stream follows the job's push-based NDJSON progress stream: fn (when
// non-nil) observes every delivered status, and the terminal status is
// returned. When the stream cannot be established or breaks before a
// terminal line (transport hiccup, mid-stream daemon restart), Stream
// falls back to polling Wait, so the terminal status is never missed —
// only intermediate updates can be.
func (c *Client) Stream(ctx context.Context, id string, fn func(JobStatus)) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/jobs/"+id+"/progress", nil)
	if err != nil {
		return nil, err
	}
	resp, err := streamHTTPClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return c.Wait(ctx, id, 0)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		readError(resp)
		return c.Wait(ctx, id, 0)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var st JobStatus
		if err := dec.Decode(&st); err != nil {
			break
		}
		if fn != nil {
			fn(st)
		}
		if st.State.Terminal() {
			return &st, nil
		}
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return c.Wait(ctx, id, 0)
}

// Wait polls until the job reaches a terminal state (or ctx expires).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return nil, err
		}
	}
}

// Result fetches a finished job's netlist (BLIF bytes).
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("turbosynd: result %s: %d: %s", id, resp.StatusCode, readError(resp))
	}
	return io.ReadAll(resp.Body)
}

// Run submits the job, follows its push progress stream to the terminal
// status, and — on success — fetches the netlist. A failed job returns the
// status (with its typed error) and a non-nil error raised from the wire
// taxonomy.
func (c *Client) Run(ctx context.Context, spec JobSpec) (*JobStatus, []byte, error) {
	return c.RunStreaming(ctx, spec, nil)
}

// RunStreaming is Run with a progress observer: fn sees every status line
// the daemon pushes (nil is allowed).
func (c *Client) RunStreaming(ctx context.Context, spec JobSpec, fn func(JobStatus)) (*JobStatus, []byte, error) {
	id, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, nil, err
	}
	st, err := c.Stream(ctx, id, fn)
	if err != nil {
		return nil, nil, err
	}
	if st.State != StateDone {
		return st, nil, st.Err()
	}
	blif, err := c.Result(ctx, id)
	if err != nil {
		return st, nil, err
	}
	return st, blif, nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// backoff computes the attempt's delay: exponential from BaseBackoff,
// jittered ±50%, capped at 5s — and never below the server's Retry-After.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << uint(attempt-1)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	jitter := 0.5 + c.rng.Float64() // ×[0.5, 1.5)
	c.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	if ra, ok := lastErr.(*retryAfterError); ok && ra.after > d {
		d = ra.after
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }

func parseRetryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

func readError(resp *http.Response) string {
	defer resp.Body.Close()
	var out struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(data, &out) == nil && out.Error != "" {
		return out.Error
	}
	return string(data)
}
