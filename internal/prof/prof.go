// Package prof attributes mapper time to its stages via runtime/pprof
// goroutine labels. CPU profiles taken with -cpuprofile then break down by
// the "phase" label: expand (E_v construction), flow (K-cut max-flow),
// decompose (Roth–Karp resynthesis), pld (positive loop detection) and label
// (everything else in the sweep).
//
// Since the observability layer landed (internal/obs, DESIGN.md §8), the
// stage vocabulary is owned by obs: prof keys its label sets off the same
// obs.Op enumeration the span recorder uses, so a pprof profile and a
// Perfetto trace of the same run slice time identically, and the engine
// switches both with a single call (core's phase hook). obs.Recorder is the
// run's common clock source; prof adds no clock of its own.
//
// Labelling sits inside the zero-allocation hot path, so it is disabled by
// default and costs one predictable-branch check per phase switch. Enable
// flips to pre-built label sets: no allocation happens per call even when
// profiling (the label contexts are constructed once, indexed by op).
package prof

import (
	"context"
	"runtime/pprof"

	"turbosyn/internal/obs"
)

// Phase names used by the label engine, re-exported for callers that want
// the string forms (profiles are filtered with `-tagfocus phase=flow` etc.).
const (
	PhaseLabel     = "label"
	PhaseExpand    = "expand"
	PhaseFlow      = "flow"
	PhaseDecompose = "decompose"
	PhasePLD       = "pld"
)

var enabled bool

// phaseCtx holds one pre-built label context per obs.Op; ops that are not
// pprof phases (component/probe spans, instants) share the "label" context.
var phaseCtx [obs.NumOps]context.Context

func init() {
	labelled := map[obs.Op]string{
		obs.OpLabel:     PhaseLabel,
		obs.OpExpand:    PhaseExpand,
		obs.OpFlow:      PhaseFlow,
		obs.OpDecompose: PhaseDecompose,
		obs.OpPLD:       PhasePLD,
	}
	for op := obs.Op(0); op < obs.NumOps; op++ {
		name, ok := labelled[op]
		if !ok {
			name = PhaseLabel
		}
		phaseCtx[op] = pprof.WithLabels(context.Background(),
			pprof.Labels("phase", name))
	}
}

// Enable turns phase labelling on (or off). Not safe to toggle while label
// sweeps run; call it before Synthesize/Minimize, as cmd/turbosyn does when
// -cpuprofile is set.
func Enable(on bool) { enabled = on }

// Enabled reports whether phase labelling is on.
func Enabled() bool { return enabled }

// Phase tags the calling goroutine with the named stage until the next Phase
// call. A no-op (one branch, zero allocation) when labelling is disabled.
func Phase(op obs.Op) {
	if !enabled {
		return
	}
	pprof.SetGoroutineLabels(phaseCtx[op])
}
