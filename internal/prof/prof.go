// Package prof attributes mapper time to its stages via runtime/pprof
// goroutine labels. CPU profiles taken with -cpuprofile then break down by
// the "phase" label: expand (E_v construction), flow (K-cut max-flow),
// decompose (Roth–Karp resynthesis), pld (positive loop detection) and label
// (everything else in the sweep).
//
// Labelling sits inside the zero-allocation hot path, so it is disabled by
// default and costs one predictable-branch check per phase switch. Enable
// flips to pre-built label sets: no allocation happens per call even when
// profiling (the label contexts are constructed once).
package prof

import (
	"context"
	"runtime/pprof"
)

// Phase names used by the label engine.
const (
	PhaseLabel     = "label"
	PhaseExpand    = "expand"
	PhaseFlow      = "flow"
	PhaseDecompose = "decompose"
	PhasePLD       = "pld"
)

var enabled bool

var phaseCtx = map[string]context.Context{}

func init() {
	for _, name := range []string{PhaseLabel, PhaseExpand, PhaseFlow, PhaseDecompose, PhasePLD} {
		phaseCtx[name] = pprof.WithLabels(context.Background(),
			pprof.Labels("phase", name))
	}
}

// Enable turns phase labelling on (or off). Not safe to toggle while label
// sweeps run; call it before Synthesize/Minimize, as cmd/turbosyn does when
// -cpuprofile is set.
func Enable(on bool) { enabled = on }

// Enabled reports whether phase labelling is on.
func Enabled() bool { return enabled }

// Phase tags the calling goroutine with the named phase until the next Phase
// call. A no-op (one branch, zero allocation) when labelling is disabled.
func Phase(name string) {
	if !enabled {
		return
	}
	if ctx, ok := phaseCtx[name]; ok {
		pprof.SetGoroutineLabels(ctx)
	}
}
