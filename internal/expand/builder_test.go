package expand

import (
	"math/rand"
	"testing"

	"turbosyn/internal/netlist"
)

// pickTarget returns the last multi-fanin gate of c, or -1.
func pickTarget(c *netlist.Circuit) int {
	v := -1
	for _, n := range c.Nodes {
		if n.Kind == netlist.Gate && len(n.Fanins) > 0 {
			v = n.ID
		}
	}
	return v
}

func randomLabels(rng *rand.Rand, c *netlist.Circuit) []int {
	labels := make([]int, c.NumNodes())
	for _, n := range c.Nodes {
		if n.Kind == netlist.Gate {
			labels[n.ID] = 1 + rng.Intn(3)
		}
	}
	return labels
}

// sameExpansion asserts the two expansions describe the same replica set
// with identical candidate/frontier marks and, per replica, identical fanin
// replica sequences (compared as (orig, w) pairs, since replica numbering
// may differ).
func sameExpansion(t *testing.T, tag string, got, want *Expanded) {
	t.Helper()
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: %d replicas, want %d", tag, len(got.Nodes), len(want.Nodes))
	}
	for i, wn := range want.Nodes {
		j := got.Index(wn.Orig, wn.W)
		if j < 0 {
			t.Fatalf("%s: replica (%d,%d) missing", tag, wn.Orig, wn.W)
		}
		gn := got.Nodes[j]
		if gn.Candidate != wn.Candidate || gn.Frontier != wn.Frontier {
			t.Fatalf("%s: replica (%d,%d): candidate=%v frontier=%v, want %v/%v",
				tag, wn.Orig, wn.W, gn.Candidate, gn.Frontier, wn.Candidate, wn.Frontier)
		}
		gf, wf := got.Fanins[j], want.Fanins[i]
		if len(gf) != len(wf) {
			t.Fatalf("%s: replica (%d,%d): %d fanins, want %d",
				tag, wn.Orig, wn.W, len(gf), len(wf))
		}
		for k := range wf {
			gc, wc := got.Nodes[gf[k]], want.Nodes[wf[k]]
			if gc.Orig != wc.Orig || gc.W != wc.W {
				t.Fatalf("%s: replica (%d,%d) fanin %d: (%d,%d), want (%d,%d)",
					tag, wn.Orig, wn.W, k, gc.Orig, gc.W, wc.Orig, wc.W)
			}
		}
	}
}

// TestBuilderMatchesOneShot: a reused Builder must reproduce the one-shot
// Build exactly, including across circuits of different shapes and repeated
// builds on the same Builder.
func TestBuilderMatchesOneShot(t *testing.T) {
	b := &Builder{}
	opts := Options{LowDepth: 2, MaxNodes: 4000}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomLoopy(rng, 6+rng.Intn(18))
		if c.Check() != nil {
			continue
		}
		v := pickTarget(c)
		if v < 0 {
			continue
		}
		labels := randomLabels(rng, c)
		for L := 0; L <= 3; L++ {
			want, okW := Build(c, v, labels, 1, L, opts)
			got, okG := b.Build(c, v, labels, 1, L, opts)
			if okW != okG {
				t.Fatalf("seed %d L=%d: builder ok=%v, one-shot ok=%v", seed, L, okG, okW)
			}
			if !okW {
				continue
			}
			sameExpansion(t, "reuse", got, want)
			// Replica numbering must also match: the Builder runs the same
			// worklist in the same order, only the storage is recycled.
			for i := range want.Nodes {
				if got.Nodes[i] != want.Nodes[i] {
					t.Fatalf("seed %d L=%d: node %d differs: %+v vs %+v",
						seed, L, i, got.Nodes[i], want.Nodes[i])
				}
			}
		}
	}
}

// TestTightenMatchesFreshBuild: Tighten must extend the expansion to exactly
// the replica set, candidate marks and frontier a fresh Build at the tighter
// bound computes (replica numbering may differ).
func TestTightenMatchesFreshBuild(t *testing.T) {
	opts := Options{LowDepth: 2, MaxNodes: 4000}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomLoopy(rng, 6+rng.Intn(18))
		if c.Check() != nil {
			continue
		}
		v := pickTarget(c)
		if v < 0 {
			continue
		}
		labels := randomLabels(rng, c)
		for L := 3; L >= 1; L-- {
			b := &Builder{}
			if _, ok := b.Build(c, v, labels, 1, L, opts); !ok {
				continue
			}
			for newL := L - 1; newL >= L-3; newL-- {
				want, okW := Build(c, v, labels, 1, newL, opts)
				got, okG := b.Tighten(newL)
				if okW != okG {
					t.Fatalf("seed %d L=%d->%d: tighten ok=%v, fresh ok=%v",
						seed, L, newL, okG, okW)
				}
				if !okW {
					break
				}
				sameExpansion(t, "tighten", got, want)
			}
		}
	}
}

// TestLoosenRemarks: Loosen must re-mark candidates by effective height
// against the looser bound while leaving the expanded region in place.
func TestLoosenRemarks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomLoopy(rng, 20)
	if err := c.Check(); err != nil {
		t.Skip("unlucky generator draw")
	}
	v := pickTarget(c)
	labels := randomLabels(rng, c)
	const phi, L = 1, 1
	b := &Builder{}
	x, ok := b.Build(c, v, labels, phi, L, Options{LowDepth: 2, MaxNodes: 4000})
	if !ok {
		t.Fatal("build failed")
	}
	nodesBefore := len(x.Nodes)
	x = b.Loosen(L + 1)
	if len(x.Nodes) != nodesBefore {
		t.Fatalf("Loosen changed the region: %d -> %d replicas", nodesBefore, len(x.Nodes))
	}
	for i, n := range x.Nodes {
		if i == Root {
			if n.Candidate {
				t.Fatal("root must never be a candidate")
			}
			continue
		}
		eff := labels[n.Orig] - phi*n.W + 1
		if n.Candidate != (eff <= L+1) {
			t.Fatalf("replica (%d,%d): candidate=%v but eff=%d vs bound %d",
				n.Orig, n.W, n.Candidate, eff, L+1)
		}
	}
}

// TestWarmBuilderZeroAlloc pins the arena property: repeating the same
// expansion on a warm Builder allocates nothing.
func TestWarmBuilderZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomLoopy(rng, 25)
	if err := c.Check(); err != nil {
		t.Skip("unlucky generator draw")
	}
	v := pickTarget(c)
	labels := randomLabels(rng, c)
	opts := Options{LowDepth: 2, MaxNodes: 4000}
	b := &Builder{}
	build := func() {
		if _, ok := b.Build(c, v, labels, 1, 2, opts); !ok {
			t.Fatal("build failed")
		}
	}
	build() // warm up
	if allocs := testing.AllocsPerRun(100, build); allocs != 0 {
		t.Fatalf("warm Builder.Build allocates %.1f objects/run, want 0", allocs)
	}
}
