package expand

import (
	"math/rand"
	"testing"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// randomLoopy builds a random K-bounded sequential circuit with loops.
func randomLoopy(rng *rand.Rand, nGates int) *netlist.Circuit {
	c := netlist.NewCircuit("rl")
	pi := c.AddPI("x")
	ids := []int{pi}
	var gates []int
	for i := 0; i < nGates; i++ {
		nf := 1 + rng.Intn(3)
		fanins := make([]netlist.Fanin, nf)
		for j := range fanins {
			fanins[j] = netlist.Fanin{From: ids[rng.Intn(len(ids))], Weight: rng.Intn(2)}
		}
		var fn *logic.TT
		switch nf {
		case 1:
			fn = logic.Buf()
		case 2:
			fn = logic.AndAll(2)
		default:
			fn = logic.Maj3()
		}
		id := c.AddGate("", fn, fanins...)
		ids = append(ids, id)
		gates = append(gates, id)
	}
	for i := 0; i < nGates/3 && len(gates) > 1; i++ {
		g := gates[rng.Intn(len(gates))]
		n := c.Nodes[g]
		n.Fanins[rng.Intn(len(n.Fanins))] = netlist.Fanin{
			From: gates[rng.Intn(len(gates))], Weight: 1,
		}
	}
	c.InvalidateCaches()
	c.AddPO("z", gates[len(gates)-1], 0)
	return c
}

// TestCandidateSetMonotoneInL: raising the height bound can only turn
// mandatory replicas into candidates, never the reverse, on the shared
// replica set.
func TestCandidateSetMonotoneInL(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomLoopy(rng, 8+rng.Intn(15))
		if c.Check() != nil {
			continue
		}
		labels := make([]int, c.NumNodes())
		for _, n := range c.Nodes {
			if n.Kind == netlist.Gate {
				labels[n.ID] = 1 + rng.Intn(3)
			}
		}
		v := -1
		for _, n := range c.Nodes {
			if n.Kind == netlist.Gate && len(n.Fanins) > 0 {
				v = n.ID
			}
		}
		if v < 0 {
			continue
		}
		opts := Options{LowDepth: 2, MaxNodes: 4000}
		for L := 0; L < 3; L++ {
			xa, oka := Build(c, v, labels, 1, L, opts)
			xb, okb := Build(c, v, labels, 1, L+1, opts)
			if !oka || !okb {
				continue
			}
			for i, na := range xa.Nodes {
				if i == Root {
					continue
				}
				j := xb.Index(na.Orig, na.W)
				if j < 0 {
					continue // the L+1 expansion may stop earlier
				}
				if na.Candidate && !xb.Nodes[j].Candidate {
					t.Fatalf("seed %d: replica (%d,%d) candidate at L=%d but mandatory at L=%d",
						seed, na.Orig, na.W, L, L+1)
				}
			}
		}
	}
}

// TestEffectiveHeightConsistency: a replica is a candidate iff its effective
// height fits the bound.
func TestEffectiveHeightConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := randomLoopy(rng, 20)
	if err := c.Check(); err != nil {
		t.Skip("unlucky generator draw")
	}
	labels := make([]int, c.NumNodes())
	for _, n := range c.Nodes {
		if n.Kind == netlist.Gate {
			labels[n.ID] = 1 + rng.Intn(3)
		}
	}
	var v int
	for _, n := range c.Nodes {
		if n.Kind == netlist.Gate {
			v = n.ID
		}
	}
	const phi, L = 2, 2
	x, ok := Build(c, v, labels, phi, L, Options{LowDepth: 3})
	if !ok {
		t.Fatal("build failed")
	}
	for i, n := range x.Nodes {
		if i == Root {
			continue
		}
		eff := labels[n.Orig] - phi*n.W + 1
		if n.Candidate != (eff <= L) {
			t.Fatalf("replica (%d,%d): candidate=%v but eff=%d vs L=%d",
				n.Orig, n.W, n.Candidate, eff, L)
		}
	}
}

// TestFaninOrderPreserved: expanded fanins must parallel the gate's fanin
// list (the cone-function evaluator composes by position).
func TestFaninOrderPreserved(t *testing.T) {
	c := netlist.NewCircuit("ord")
	a := c.AddPI("a")
	b := c.AddPI("b")
	// g = a AND NOT b: asymmetric, so a swap is detectable by arity check
	// plus position of each replica.
	fn, err := logic.FromBits(2, "0010")
	if err != nil {
		t.Fatal(err)
	}
	g := c.AddGate("g", fn, netlist.Fanin{From: a}, netlist.Fanin{From: b, Weight: 1})
	c.AddPO("z", g, 0)
	labels := make([]int, c.NumNodes())
	labels[g] = 1
	x, ok := Build(c, g, labels, 1, 5, Options{})
	if !ok {
		t.Fatal("build failed")
	}
	fan := x.Fanins[Root]
	if len(fan) != 2 {
		t.Fatalf("root fanins: %d", len(fan))
	}
	if x.Nodes[fan[0]].Orig != a || x.Nodes[fan[0]].W != 0 {
		t.Fatal("fanin 0 must be (a,0)")
	}
	if x.Nodes[fan[1]].Orig != b || x.Nodes[fan[1]].W != 1 {
		t.Fatal("fanin 1 must be (b,1)")
	}
}
