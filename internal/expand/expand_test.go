package expand

import (
	"testing"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// andTree: x1..x4 -> g1=AND(x1,x2), g2=AND(x3,x4), g3=AND(g1,g2).
func andTree(t *testing.T) (*netlist.Circuit, map[string]int) {
	t.Helper()
	c := netlist.NewCircuit("tree")
	ids := map[string]int{}
	for _, n := range []string{"x1", "x2", "x3", "x4"} {
		ids[n] = c.AddPI(n)
	}
	ids["g1"] = c.AddGate("g1", logic.AndAll(2),
		netlist.Fanin{From: ids["x1"]}, netlist.Fanin{From: ids["x2"]})
	ids["g2"] = c.AddGate("g2", logic.AndAll(2),
		netlist.Fanin{From: ids["x3"]}, netlist.Fanin{From: ids["x4"]})
	ids["g3"] = c.AddGate("g3", logic.AndAll(2),
		netlist.Fanin{From: ids["g1"]}, netlist.Fanin{From: ids["g2"]})
	c.AddPO("z", ids["g3"], 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c, ids
}

func TestBuildCombinationalCone(t *testing.T) {
	c, ids := andTree(t)
	labels := make([]int, c.NumNodes())
	labels[ids["g1"]] = 1
	labels[ids["g2"]] = 1
	labels[ids["g3"]] = 1
	// L = 1: g1,g2 have eff 2 > 1 (mandatory); PIs have eff 1 (candidates).
	x, ok := Build(c, ids["g3"], labels, 1, 1, Options{LowDepth: 100})
	if !ok {
		t.Fatal("build failed")
	}
	if len(x.Nodes) != 7 { // g3, g1, g2, x1..x4
		t.Fatalf("expanded %d nodes, want 7", len(x.Nodes))
	}
	for _, name := range []string{"g1", "g2"} {
		id := x.Index(ids[name], 0)
		if id < 0 || x.Nodes[id].Candidate {
			t.Errorf("%s should be a mandatory replica", name)
		}
	}
	for _, name := range []string{"x1", "x2", "x3", "x4"} {
		id := x.Index(ids[name], 0)
		if id < 0 || !x.Nodes[id].Candidate || !x.Nodes[id].Frontier {
			t.Errorf("%s should be a candidate frontier replica", name)
		}
	}
	if x.Index(ids["g3"], 0) != Root {
		t.Error("root must be (v, 0)")
	}
}

// selfLoop: pi -> g (XOR), g -> g with one register.
func selfLoop(t *testing.T) (*netlist.Circuit, int, int) {
	t.Helper()
	c := netlist.NewCircuit("loop")
	pi := c.AddPI("x")
	g := c.AddGate("g", logic.XorAll(2),
		netlist.Fanin{From: pi}, netlist.Fanin{From: pi})
	c.Nodes[g].Fanins[1] = netlist.Fanin{From: g, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("z", g, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c, pi, g
}

func TestBuildSequentialReplicas(t *testing.T) {
	c, pi, g := selfLoop(t)
	labels := make([]int, c.NumNodes())
	labels[g] = 1
	// phi=1, L=1: (pi,0) eff 1, (g,1) eff 1: both candidates.
	x, ok := Build(c, g, labels, 1, 1, Options{})
	if !ok {
		t.Fatal("build failed")
	}
	if id := x.Index(pi, 0); id < 0 || !x.Nodes[id].Candidate {
		t.Error("(pi,0) should be a candidate")
	}
	if id := x.Index(g, 1); id < 0 || !x.Nodes[id].Candidate {
		t.Error("(g,1) should be a candidate replica distinct from the root")
	}
	if x.Index(g, 0) != Root {
		t.Error("root missing")
	}

	// phi=1, L=0: (pi,0) eff 1 > 0 is a non-candidate frontier; the deeper
	// replicas (pi,1), (g,2) become candidates at eff 0.
	x, ok = Build(c, g, labels, 1, 0, Options{LowDepth: 0})
	if !ok {
		t.Fatal("build failed")
	}
	if id := x.Index(pi, 0); id < 0 || x.Nodes[id].Candidate {
		t.Error("(pi,0) must not be a candidate at L=0")
	}
	if id := x.Index(g, 1); id < 0 || x.Nodes[id].Candidate {
		t.Error("(g,1) eff=1 must not be a candidate at L=0")
	}
	if id := x.Index(pi, 1); id < 0 || !x.Nodes[id].Candidate {
		t.Error("(pi,1) should be a candidate at L=0")
	}
}

func TestBuildTerminatesAroundLoops(t *testing.T) {
	c, _, g := selfLoop(t)
	labels := make([]int, c.NumNodes())
	labels[g] = 5
	// Mandatory region grows until w makes eff drop to L; must stay finite.
	x, ok := Build(c, g, labels, 1, 0, Options{LowDepth: 2})
	if !ok {
		t.Fatal("build failed")
	}
	if len(x.Nodes) > 30 {
		t.Fatalf("expansion unexpectedly large: %d", len(x.Nodes))
	}
	// Replicas (g,1)..(g,5) have eff 5-w+1 > 0: mandatory.
	for w := 1; w <= 5; w++ {
		id := x.Index(g, w)
		if id < 0 {
			t.Fatalf("(g,%d) missing", w)
		}
		if x.Nodes[id].Candidate {
			t.Errorf("(g,%d) should be mandatory", w)
		}
	}
	if id := x.Index(g, 6); id < 0 || !x.Nodes[id].Candidate {
		t.Error("(g,6) should be the first candidate replica")
	}
}

func TestBuildRespectsMaxNodes(t *testing.T) {
	c, _, g := selfLoop(t)
	labels := make([]int, c.NumNodes())
	labels[g] = 1000
	if _, ok := Build(c, g, labels, 1, 0, Options{MaxNodes: 50}); ok {
		t.Fatal("node cap not enforced")
	}
}

func TestLowDepthControlsCandidateExpansion(t *testing.T) {
	c, pi, g := selfLoop(t)
	labels := make([]int, c.NumNodes())
	labels[g] = 1
	// L=1, phi=1: (g,1) candidate. With LowDepth=0 it is frontier; with
	// LowDepth=1 it expands one level to (pi,1) and (g,2).
	x0, _ := Build(c, g, labels, 1, 1, Options{LowDepth: 0})
	if id := x0.Index(g, 1); id < 0 || !x0.Nodes[id].Frontier {
		t.Error("LowDepth=0: (g,1) must be frontier")
	}
	if x0.Index(g, 2) >= 0 {
		t.Error("LowDepth=0: (g,2) must not exist")
	}
	x1, _ := Build(c, g, labels, 1, 1, Options{LowDepth: 1})
	if id := x1.Index(g, 1); id < 0 || x1.Nodes[id].Frontier {
		t.Error("LowDepth=1: (g,1) should be expanded")
	}
	if x1.Index(g, 2) < 0 || x1.Index(pi, 1) < 0 {
		t.Error("LowDepth=1: children of (g,1) missing")
	}
}
