// Package expand builds the partial expanded circuits E_v of Pan–Liu that
// underlie the label computation of TurboMap and TurboSYN. A node of E_v is
// a replica (u, w): circuit node u together with the number w of registers
// on every path from the replica to the root v. Every LUT that can cover v
// under retiming and replication corresponds to a cut of E_v, and the cut's
// height against the current labels decides the label update.
//
// For a target ratio phi and height bound L, the effective height of a
// replica as a cut input is eff(u,w) = label(u) - phi*w + 1. Replicas with
// eff > L can never be cut inputs, so they must lie inside the LUT cone and
// are always expanded ("mandatory"); this region is finite because w grows
// around every loop. Replicas with eff <= L are cut candidates. Expanding
// through candidates lets the min-cut exploit reconvergence below the first
// candidate frontier; since E_v is infinite around loops, candidate
// expansion is bounded by Options.LowDepth extra levels (see DESIGN.md for
// why this is the standard practical compromise and which direction it errs:
// labels can only round up, never produce an invalid mapping).
package expand

import (
	"turbosyn/internal/netlist"
)

// Options tunes the expansion.
type Options struct {
	// LowDepth is the number of extra levels to expand through cut
	// candidates. 0 stops at the first candidate (the TurboMap frontier).
	LowDepth int
	// MaxNodes caps the expanded size; Build fails beyond it.
	// 0 means DefaultMaxNodes.
	MaxNodes int
}

// DefaultMaxNodes bounds one expansion when Options.MaxNodes is 0.
const DefaultMaxNodes = 50000

// Node is one replica of E_v.
type Node struct {
	Orig      int  // original circuit node
	W         int  // registers on every path from this replica to the root
	Candidate bool // eff <= L: may serve as a cut input (capacity 1)
	Frontier  bool // expansion stopped here: supplied by the source side
}

// Expanded is a finite portion of E_v sufficient for the cut decision.
type Expanded struct {
	// Nodes[0] is the root (v, 0).
	Nodes []Node
	// Fanins[i] lists the replica indices feeding Nodes[i]; empty for
	// frontier nodes.
	Fanins [][]int

	index map[[2]int]int
}

// Root index of (v, 0) in Nodes.
const Root = 0

// Index returns the replica id of (orig, w), or -1.
func (x *Expanded) Index(orig, w int) int {
	if id, ok := x.index[[2]int{orig, w}]; ok {
		return id
	}
	return -1
}

// Build expands E_v far enough to decide whether a cut of height <= L exists
// for target ratio phi under the given labels. It fails (ok=false) only when
// the expansion exceeds the node cap; callers must then treat the cut as
// nonexistent, which errs toward larger labels but never invalid mappings.
func Build(c *netlist.Circuit, v int, labels []int, phi, L int, opts Options) (x *Expanded, ok bool) {
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	x = &Expanded{index: make(map[[2]int]int)}
	// steps[i]: consecutive candidate levels on the shallowest discovery
	// path (0 for the root and for mandatory replicas).
	var steps []int
	expanded := make(map[int]bool)

	add := func(orig, w, step int) (int, bool) {
		key := [2]int{orig, w}
		if id, exists := x.index[key]; exists {
			if step < steps[id] {
				steps[id] = step
				return id, true // may newly qualify for expansion
			}
			return id, false
		}
		id := len(x.Nodes)
		x.index[key] = id
		eff := labels[orig] - phi*w + 1
		x.Nodes = append(x.Nodes, Node{
			Orig:      orig,
			W:         w,
			Candidate: id != Root && eff <= L,
		})
		x.Fanins = append(x.Fanins, nil)
		steps = append(steps, step)
		return id, true
	}

	// Whether replica id should have its fanins expanded.
	expandable := func(id int) bool {
		n := &x.Nodes[id]
		if c.Nodes[n.Orig].Kind == netlist.PI {
			return false
		}
		if id == Root || !n.Candidate {
			return true
		}
		return steps[id] <= opts.LowDepth
	}

	if _, okAdd := add(v, 0, 0); !okAdd {
		return nil, false
	}
	queue := []int{Root}
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !expandable(id) {
			continue
		}
		first := !expanded[id]
		expanded[id] = true
		n := x.Nodes[id]
		orig := c.Nodes[n.Orig]
		var fanins []int
		if first {
			fanins = make([]int, 0, len(orig.Fanins))
		}
		for _, f := range orig.Fanins {
			if len(x.Nodes) >= maxNodes {
				return nil, false
			}
			// A candidate child continues (or starts) a candidate run;
			// mandatory children reset the run.
			childStep := 0
			cw := n.W + f.Weight
			if eff := labels[f.From] - phi*cw + 1; eff <= L {
				if n.Candidate {
					childStep = steps[id] + 1
				} else {
					childStep = 1
				}
			}
			cid, improved := add(f.From, cw, childStep)
			if first {
				fanins = append(fanins, cid)
			}
			// Re-queue on any improvement: even an already-expanded child
			// must re-propagate its now-shallower candidate run.
			if improved {
				queue = append(queue, cid)
			}
		}
		if first {
			x.Fanins[id] = fanins
		}
	}
	// Frontier = everything that ended up unexpanded.
	for id := range x.Nodes {
		x.Nodes[id].Frontier = !expanded[id]
	}
	return x, true
}
