// Package expand builds the partial expanded circuits E_v of Pan–Liu that
// underlie the label computation of TurboMap and TurboSYN. A node of E_v is
// a replica (u, w): circuit node u together with the number w of registers
// on every path from the replica to the root v. Every LUT that can cover v
// under retiming and replication corresponds to a cut of E_v, and the cut's
// height against the current labels decides the label update.
//
// For a target ratio phi and height bound L, the effective height of a
// replica as a cut input is eff(u,w) = label(u) - phi*w + 1. Replicas with
// eff > L can never be cut inputs, so they must lie inside the LUT cone and
// are always expanded ("mandatory"); this region is finite because w grows
// around every loop. Replicas with eff <= L are cut candidates. Expanding
// through candidates lets the min-cut exploit reconvergence below the first
// candidate frontier; since E_v is infinite around loops, candidate
// expansion is bounded by Options.LowDepth extra levels (see DESIGN.md for
// why this is the standard practical compromise and which direction it errs:
// labels can only round up, never produce an invalid mapping).
//
// The label hot loop probes several height bounds per node (the structural
// check at L, resynthesis at L-1, L-2, ..., the trivial cut at L+1). A
// Builder serves all of them from one expansion: Build expands at L reusing
// the replica hash map and backing arrays of earlier calls (zero heap
// allocation once warm), Tighten extends the expansion in place to a
// tighter bound (the expanded region grows monotonically as the bound
// drops), and Loosen re-marks cut candidates for a looser bound without
// touching the region.
package expand

import (
	"turbosyn/internal/netlist"
)

// Options tunes the expansion.
type Options struct {
	// LowDepth is the number of extra levels to expand through cut
	// candidates. 0 stops at the first candidate (the TurboMap frontier).
	LowDepth int
	// MaxNodes caps the expanded size; Build fails beyond it.
	// 0 means DefaultMaxNodes.
	MaxNodes int
}

// DefaultMaxNodes bounds one expansion when Options.MaxNodes is 0.
const DefaultMaxNodes = 50000

// Node is one replica of E_v.
type Node struct {
	Orig      int  // original circuit node
	W         int  // registers on every path from this replica to the root
	Candidate bool // eff <= L: may serve as a cut input (capacity 1)
	Frontier  bool // expansion stopped here: supplied by the source side
}

// Expanded is a finite portion of E_v sufficient for the cut decision.
type Expanded struct {
	// Nodes[0] is the root (v, 0).
	Nodes []Node
	// Fanins[i] lists the replica indices feeding Nodes[i]; empty for
	// frontier nodes.
	Fanins [][]int

	index map[[2]int]int
}

// Root index of (v, 0) in Nodes.
const Root = 0

// Index returns the replica id of (orig, w), or -1.
func (x *Expanded) Index(orig, w int) int {
	if id, ok := x.index[[2]int{orig, w}]; ok {
		return id
	}
	return -1
}

// stepInf marks a replica not yet reached by the current step relaxation.
const stepInf = int(1) << 30

// Builder is a reusable expansion arena. A zero Builder is ready to use; the
// replica hash map, node and fanin arrays, and the traversal worklist are
// recycled across Build calls, so a warm Builder expands without heap
// allocation. One Builder serves one goroutine; the *Expanded it returns
// aliases the Builder's arrays and stays valid only until the next Build on
// the same Builder.
type Builder struct {
	x Expanded
	// steps[i]: consecutive candidate levels on the shallowest discovery
	// path (0 for the root and for mandatory replicas, stepInf before the
	// replica is reached by the relaxation).
	steps    []int
	expanded []bool
	queue    []int
	faninBuf []int // flat arena the Fanins segments slice into

	// Build inputs retained for Tighten/Loosen.
	c        *netlist.Circuit
	labels   []int
	phi, l   int
	opts     Options
	maxNodes int
}

// Build expands E_v far enough to decide whether a cut of height <= L exists
// for target ratio phi under the given labels. It fails (ok=false) only when
// the expansion exceeds the node cap; callers must then treat the cut as
// nonexistent, which errs toward larger labels but never invalid mappings.
//
// Build is the one-shot entry point; it allocates a fresh Builder so the
// result does not alias shared state. Hot loops should hold a Builder and
// call its Build method instead.
func Build(c *netlist.Circuit, v int, labels []int, phi, L int, opts Options) (x *Expanded, ok bool) {
	b := &Builder{}
	return b.Build(c, v, labels, phi, L, opts)
}

// Build expands E_v at height bound L, reusing the Builder's arrays. The
// returned Expanded aliases the Builder and is valid until the next Build.
func (b *Builder) Build(c *netlist.Circuit, v int, labels []int, phi, L int, opts Options) (*Expanded, bool) {
	b.c, b.labels, b.phi, b.l, b.opts = c, labels, phi, L, opts
	b.maxNodes = opts.MaxNodes
	if b.maxNodes <= 0 {
		b.maxNodes = DefaultMaxNodes
	}
	x := &b.x
	x.Nodes = x.Nodes[:0]
	x.Fanins = x.Fanins[:0]
	if x.index == nil {
		x.index = make(map[[2]int]int)
	} else {
		clear(x.index)
	}
	b.steps = b.steps[:0]
	b.expanded = b.expanded[:0]
	b.faninBuf = b.faninBuf[:0]

	if _, ok := b.add(v, 0, 0); !ok {
		return nil, false
	}
	b.queue = append(b.queue[:0], Root)
	if !b.relax() {
		return nil, false
	}
	b.markFrontier()
	return x, true
}

// Tighten lowers the height bound to newL (newL <= the current bound) and
// extends the expansion in place: dropping the bound turns candidates into
// mandatory replicas and shortens candidate runs, so the expanded region of
// the tighter bound is a superset of the current one. Candidate marks, step
// counts and the frontier are recomputed exactly as a fresh Build at newL
// would compute them; the only difference from a fresh Build is the replica
// numbering, which keeps the discovery order of the original bound.
//
// It fails (ok=false) when the extension exceeds the node cap — the same
// verdict a fresh Build at newL would reach, since that build expands the
// same region.
func (b *Builder) Tighten(newL int) (*Expanded, bool) {
	x := &b.x
	b.l = newL
	// Re-mark candidates under the tighter bound and reset the relaxation.
	for i := range x.Nodes {
		n := &x.Nodes[i]
		eff := b.labels[n.Orig] - b.phi*n.W + 1
		n.Candidate = i != Root && eff <= newL
		b.steps[i] = stepInf
		b.expanded[i] = false
	}
	b.steps[Root] = 0
	b.queue = append(b.queue[:0], Root)
	if !b.relax() {
		return nil, false
	}
	b.markFrontier()
	return x, true
}

// Loosen re-marks cut candidates for a looser height bound (newL >= the
// current bound) without recomputing the expanded region. The region built
// at the tighter bound is a superset of what a fresh Build at newL would
// expand, so every cut the re-marked graph admits is valid at newL; the
// extra depth can only expose better cuts.
func (b *Builder) Loosen(newL int) *Expanded {
	x := &b.x
	b.l = newL
	for i := range x.Nodes {
		n := &x.Nodes[i]
		eff := b.labels[n.Orig] - b.phi*n.W + 1
		n.Candidate = i != Root && eff <= newL
	}
	return x
}

// add interns replica (orig, w), creating it with the given step count or
// improving the count of an existing replica. The second result reports
// whether the replica may newly qualify for expansion (created or improved);
// ok=false when the node cap is exceeded.
func (b *Builder) add(orig, w, step int) (id int, improved bool) {
	key := [2]int{orig, w}
	if id, exists := b.x.index[key]; exists {
		if step < b.steps[id] {
			b.steps[id] = step
			return id, true
		}
		return id, false
	}
	id = len(b.x.Nodes)
	b.x.index[key] = id
	eff := b.labels[orig] - b.phi*w + 1
	b.x.Nodes = append(b.x.Nodes, Node{
		Orig:      orig,
		W:         w,
		Candidate: id != Root && eff <= b.l,
	})
	b.x.Fanins = append(b.x.Fanins, nil)
	b.steps = append(b.steps, step)
	b.expanded = append(b.expanded, false)
	return id, true
}

// expandable reports whether replica id should have its fanins expanded.
func (b *Builder) expandable(id int) bool {
	n := &b.x.Nodes[id]
	if b.c.Nodes[n.Orig].Kind == netlist.PI {
		return false
	}
	if id == Root || !n.Candidate {
		return true
	}
	return b.steps[id] <= b.opts.LowDepth
}

// relax runs the expansion worklist to its fixed point: every queued replica
// that is expandable under the current step counts has its fanins interned
// (recorded once, into the flat fanin arena) and its children's step counts
// relaxed. Returns false when the node cap is exceeded.
func (b *Builder) relax() bool {
	x := &b.x
	for len(b.queue) > 0 {
		id := b.queue[len(b.queue)-1]
		b.queue = b.queue[:len(b.queue)-1]
		if !b.expandable(id) {
			continue
		}
		first := !b.expanded[id]
		b.expanded[id] = true
		n := x.Nodes[id]
		orig := b.c.Nodes[n.Orig]
		var faninStart int
		if first && x.Fanins[id] == nil {
			faninStart = len(b.faninBuf)
		} else {
			first = false // fanins already recorded (e.g. by a prior bound)
		}
		if known := x.Fanins[id]; known != nil {
			// Children already interned: only relax their step counts.
			for fi, cid := range known {
				if improved := b.relaxChild(&n, id, orig.Fanins[fi], cid); improved {
					b.queue = append(b.queue, cid)
				}
			}
			continue
		}
		for _, f := range orig.Fanins {
			if len(x.Nodes) >= b.maxNodes {
				return false
			}
			cw := n.W + f.Weight
			childStep := b.childStep(&n, id, f.From, cw)
			cid, improved := b.add(f.From, cw, childStep)
			if first {
				b.faninBuf = append(b.faninBuf, cid)
			}
			// Re-queue on any improvement: even an already-expanded child
			// must re-propagate its now-shallower candidate run.
			if improved {
				b.queue = append(b.queue, cid)
			}
		}
		if first {
			// The segment may point into an older backing array if faninBuf
			// grew; earlier segments keep their (still valid) arrays alive.
			x.Fanins[id] = b.faninBuf[faninStart:len(b.faninBuf):len(b.faninBuf)]
		}
	}
	return true
}

// childStep computes the candidate-run length a child inherits through the
// given fanin edge: a candidate child continues (or starts) a candidate run,
// mandatory children reset the run.
func (b *Builder) childStep(n *Node, id, from, cw int) int {
	if eff := b.labels[from] - b.phi*cw + 1; eff <= b.l {
		if n.Candidate {
			return b.steps[id] + 1
		}
		return 1
	}
	return 0
}

// relaxChild relaxes the step count of an already-interned child cid reached
// from id through fanin edge f; reports whether the count improved.
func (b *Builder) relaxChild(n *Node, id int, f netlist.Fanin, cid int) bool {
	step := b.childStep(n, id, f.From, n.W+f.Weight)
	if step < b.steps[cid] {
		b.steps[cid] = step
		return true
	}
	return false
}

// markFrontier flags everything that ended up unexpanded.
func (b *Builder) markFrontier() {
	for id := range b.x.Nodes {
		b.x.Nodes[id].Frontier = !b.expanded[id]
	}
}

// Bytes reports the approximate footprint of the Builder's retained arrays,
// for arena high-water accounting.
func (b *Builder) Bytes() int {
	const nodeSize = 24 // Node: 2 ints + 2 bools, padded
	return cap(b.x.Nodes)*nodeSize +
		cap(b.x.Fanins)*24 +
		cap(b.steps)*8 +
		cap(b.expanded) +
		cap(b.queue)*8 +
		cap(b.faninBuf)*8 +
		len(b.x.index)*24
}
