// Package core implements the paper's contribution: the TurboMap and
// TurboSYN label computations for K-LUT technology mapping of sequential
// circuits under retiming (TurboMap) and under retiming + pipelining with
// sequential functional decomposition (TurboSYN), together with the
// predecessor-graph positive loop detection (PLD) that replaces the n^2
// stopping rule with a ~6n one, and the mapping generation that turns
// converged labels into a LUT network.
//
// For a target clock period / MDR ratio phi, node labels l are the optimal
// LUT-level sequential arrival times: l(PI) = 0, and for a gate v,
//
//	l(v) = min over LUTs rooted at v of max over LUT inputs u^w of
//	       l(u) - phi*w + 1,
//
// computed by the Pan–Liu style monotone lower-bound iteration: start at 1,
// set L(v) = max over fanin edges of l(u) - phi*w(e), and raise l(v) to L(v)
// when a K-feasible cut of height <= L(v) exists in the expanded circuit
// E_v (TurboSYN additionally tries to resynthesize wider, lower cuts via
// Roth–Karp decomposition), and to L(v)+1 otherwise. The iteration either
// converges (phi is achievable; pipelined objectives need nothing more,
// clock-period objectives also require l(po) <= phi at every output) or
// grows without bound (a critical loop beats phi).
package core

import (
	"fmt"
	"log/slog"
	"runtime"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
	"turbosyn/internal/obs"
	"turbosyn/internal/stats"
)

// Options configures the label computation and mapping generation.
type Options struct {
	// K is the LUT input count (default 5).
	K int
	// Cmax bounds the width of resynthesis cuts (default 15, as in the
	// paper; at most logic.MaxVars).
	Cmax int
	// MaxH bounds how far below L(v) the decomposition searches for cuts
	// (the paper iterates h = 0, 1, ...; default 4).
	MaxH int
	// LowDepth is the expansion depth through cut candidates (0 means the
	// default of 3; pass a negative value for the strict TurboMap frontier
	// that stops at the first candidate).
	LowDepth int
	// MaxExpand caps a single expansion (default 2500 replicas). Bigger
	// caps only matter for exotic cuts: when an expansion overflows, the
	// label rounds up — always valid, at worst slightly suboptimal.
	MaxExpand int
	// Decompose enables TurboSYN's sequential functional decomposition;
	// false gives TurboMap.
	Decompose bool
	// PLD enables predecessor-graph positive loop detection. Without it,
	// infeasible targets fall back to the conservative per-SCC n^2 bound.
	PLD bool
	// Pipelined selects the MDR-ratio objective (critical loops only);
	// false selects the clock-period objective (outputs must meet phi too).
	Pipelined bool
	// IterBudget, when positive, aborts a probe (reporting infeasible)
	// once the label computation exceeds this many iterations. Used by the
	// ablation harness to bound the conservative n^2 stopping rule.
	IterBudget int
	// Relax enables the paper's label-relaxation area optimization: after
	// convergence, resynthesized covers whose labels can rise without
	// breaking feasibility revert to single structural LUTs.
	Relax bool
	// NoWarmStart disables seeding binary-search probes from the converged
	// labels of the nearest already-decided feasible probe (labels are
	// monotone non-increasing in phi, so those labels lower-bound the new
	// probe's fixpoint; see DESIGN.md, "Warm-started probes"). The final
	// mapping pass always runs cold, so verdicts, the minimized phi and the
	// mapped network are identical either way; the flag exists as an escape
	// hatch and to benchmark cold probes.
	NoWarmStart bool
	// NoWorklist disables the dirty-set worklist inside the per-component
	// Gauss-Seidel sweeps and restores full-membership passes (every member
	// visited on every sweep). The worklist skips exactly the visits that
	// would have been decision-cache no-ops, so labels, covers, verdicts and
	// every pre-existing Stats counter are bit-identical either way (see
	// DESIGN.md §11); the flag exists as an escape hatch and to benchmark
	// the work avoidance (Stats.SweepNodeVisits / Stats.DirtySkips).
	NoWorklist bool
	// Workers bounds the worker pool of the parallel label engine and the
	// speculative probe fan-out of the binary search: 0 means
	// runtime.NumCPU(), 1 forces the strictly sequential path. Every
	// setting computes bit-identical labels, covers and verdicts (see
	// DESIGN.md, "Dataflow scheduling"); only the Stats work
	// counters of infeasible probes may vary with scheduling. A positive
	// IterBudget implies sequential execution regardless of Workers, so
	// budget accounting stays globally ordered.
	Workers int
	// TaskGrain is the dataflow scheduler's batching target, in node
	// updates per task: when a worker completes a component and releases a
	// trivial successor (a singleton, acyclic component), it keeps running
	// such successors inline until roughly TaskGrain node updates have been
	// chained, instead of paying queue dispatch per tiny component. 0 means
	// the default (64); 1 effectively disables chaining. Pure scheduling —
	// results are bit-identical for every setting.
	TaskGrain int

	// Resource budgets (0 = unlimited). Exhausting a budget never aborts
	// the run by default: the affected node falls back to the structural
	// feasibility check (its resynthesis attempt is skipped or truncated),
	// the event is counted in Stats.Degradations, and the mapping stays
	// valid — at worst less optimized. With no budget tripped, results are
	// bit-identical to an unbudgeted run. See DESIGN.md, "Cancellation,
	// budgets, and fault containment".

	// BDDNodeBudget caps the OBDD built to pre-screen each candidate bound
	// set during sequential decomposition (Roth-Karp and OBDD construction
	// are worst-case exponential; this is the memory lever).
	BDDNodeBudget int
	// RothKarpBudget caps the bound-set candidates examined per
	// decomposition attempt (the time lever on the window scan).
	RothKarpBudget int
	// CacheDir, when non-empty, makes the decomposition cache persistent
	// across runs: a compact append-only log under this directory is loaded
	// at engine start and appended (this run's new non-degraded outcomes) at
	// shutdown. Entries are keyed by the NPN-canonical cone function plus
	// everything else Decompose depends on, so a warm cache changes nothing
	// but speed — results are bit-identical to a cold run. Corrupt, truncated
	// or version-mismatched logs are discarded cleanly (the run starts cold),
	// and concurrent runs may share one directory: appends are atomic
	// whole-record writes and the loader skips anything torn. See DESIGN.md
	// §9.
	CacheDir string

	// ArenaByteBudget caps a worker scratch arena's retained footprint:
	// after a component whose arena exceeds it, the arena is released back
	// to the allocator (results are unaffected — arenas are pure scratch —
	// but the warm-path allocation savings are lost for that worker).
	ArenaByteBudget int
	// Strict turns every budget degradation into a *BudgetError instead of
	// a silent quality loss: exhausted budgets abort the run.
	Strict bool

	// Observability (all disabled by default; none of it changes results —
	// the engine is bit-identical with every combination on or off, and the
	// hooks cost one pointer check each when off. See DESIGN.md §8).

	// Trace, when non-nil, records probe/component/stage spans and cache,
	// degradation and cancellation events into per-worker ring buffers for
	// Chrome/Perfetto export (Recorder.WriteTrace). Spans are flushed on
	// every exit path, including *CancelError / *InternalError aborts.
	Trace *obs.Recorder
	// Progress, when non-nil, is the run's progress tracker: the engine
	// installs its live-counter sampler and reports phase transitions and
	// best-phi improvements through it. The caller owns Start/Finish.
	Progress *obs.Progress
	// Logger, when non-nil, receives structured run/probe-granularity log
	// records (never per-node events). Attach run-identifying fields with
	// Logger.With before passing it in.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 5
	}
	if o.Cmax == 0 {
		o.Cmax = 15
	}
	if o.MaxH == 0 {
		o.MaxH = 4
	}
	switch {
	case o.LowDepth < 0:
		o.LowDepth = 0 // explicit "stop at the first candidate frontier"
	case o.LowDepth == 0:
		o.LowDepth = 3
	}
	if o.TaskGrain <= 0 {
		o.TaskGrain = defaultTaskGrain
	}
	return o
}

// defaultTaskGrain is the default Options.TaskGrain: chaining ~64 node
// updates per dispatched task amortizes ready-queue traffic over the long
// runs of near-singleton components real K-bounded condensations exhibit,
// while staying far below a typical component level's total work, so load
// balance is unaffected.
const defaultTaskGrain = 64

// workerCount resolves Workers to an effective pool size.
func (o Options) workerCount() int {
	switch {
	case o.Workers > 0:
		return o.Workers
	case o.Workers < 0:
		return 1
	}
	return runtime.NumCPU()
}

// DefaultOptions returns the TurboSYN defaults used by the paper's
// experiments (K=5, Cmax=15, PLD on, pipelined MDR objective).
func DefaultOptions() Options {
	return Options{Decompose: true, PLD: true, Pipelined: true, Relax: true}.withDefaults()
}

// Stats counts the work a run performed.
type Stats struct {
	Iterations     int // label-update passes (over SCC members)
	CutChecks      int // flow-based K-cut existence checks
	Decompositions int // successful sequential decompositions
	DecompAttempts int // attempted sequential decompositions
	PLDChecks      int // predecessor-graph reachability checks
	PLDHits        int // infeasibility detected by PLD

	// Arena and warm-start effectiveness counters (see DESIGN.md).
	ExpandBuilds   int // expansions built from scratch
	ExpandReuses   int // expansions served by in-place Tighten/Loosen
	ArenaPeakBytes int // high-water footprint of the busiest scratch arena
	WarmStarts     int // search probes seeded from a neighbouring probe's labels

	// Engine arena-pool effectiveness (zero on the throwaway path, where
	// states have no pool): how many worker arenas this run checked out, and
	// how many of those came warm from the pool instead of being created.
	ArenaCheckouts int
	ArenaPoolHits  int

	// BoundSetsExamined counts the candidate bound sets Roth-Karp window
	// scans actually examined (decomposition-cache hits replay none); the
	// per-attempt counts also annotate decompose spans in exported traces.
	BoundSetsExamined int

	// Decomposition-tier counters: how tryDecompose outcomes were produced.
	// RothKarpCalls counts full Roth-Karp window scans actually entered (the
	// expensive tier; cache hits and cheaper tiers contribute none — the
	// warm-cache CI gate pins its skip rate on this counter). ShannonSplits
	// and DisjointPeels count decompositions settled by the cheaper
	// cofactor-split and same-op-literal-peeling tiers.
	RothKarpCalls int
	ShannonSplits int
	DisjointPeels int

	// Degradations counts budget exhaustions absorbed by graceful
	// degradation: nodes whose resynthesis was skipped or truncated by
	// BDDNodeBudget/RothKarpBudget, and arenas released by ArenaByteBudget.
	// Always 0 when no budget is configured. Under Options.Strict the first
	// would-be degradation aborts the run with a *BudgetError instead.
	Degradations int

	// Concurrency counters (see Options.Workers and internal/stats).
	Workers            int // effective worker-pool size (1 = sequential)
	ParallelTasks      int // SCC tasks pulled from the dataflow ready queue
	InlineTasks        int // trivial components chained inline (TaskGrain batching)
	QueueDepthPeak     int // ready-queue depth high-water mark
	WorkerOccupancy    int // peak simultaneously busy pool workers
	BarriersEliminated int // level barriers the dataflow scheduler avoided
	CacheShardHits     int // sharded decomposition-cache hits
	CacheShardMisses   int // sharded decomposition-cache misses
	CachePersistedHits int // hits served by entries loaded from a CacheDir log
	CacheNPNHits       int // hits reached through a non-identity NPN transform
	ProbesLaunched     int // feasibility probes started by the search
	ProbesCancelled    int // speculative probes cancelled (lost branch)

	// Worklist convergence accounting (see DESIGN.md §11). SweepNodeVisits
	// counts the member visits label sweeps actually performed; DirtySkips
	// counts the visits the dirty-set worklist elided because no predecessor
	// label had changed since the member's last decision (always 0 under
	// Options.NoWorklist, where every sweep visits every member);
	// WorklistPeak is the largest number of members any single fast pass
	// drained — the worklist analogue of QueueDepthPeak.
	SweepNodeVisits int
	DirtySkips      int
	WorklistPeak    int

	// Trace-recorder accounting (zero when Options.Trace is nil).
	TraceEvents  int // events recorded across all per-worker rings
	TraceDropped int // events overwritten by ring wrap (lost from the trace)
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.Iterations += s2.Iterations
	s.CutChecks += s2.CutChecks
	s.Decompositions += s2.Decompositions
	s.DecompAttempts += s2.DecompAttempts
	s.PLDChecks += s2.PLDChecks
	s.PLDHits += s2.PLDHits
	s.ExpandBuilds += s2.ExpandBuilds
	s.ExpandReuses += s2.ExpandReuses
	if s2.ArenaPeakBytes > s.ArenaPeakBytes {
		s.ArenaPeakBytes = s2.ArenaPeakBytes
	}
	s.WarmStarts += s2.WarmStarts
	s.ArenaCheckouts += s2.ArenaCheckouts
	s.ArenaPoolHits += s2.ArenaPoolHits
	s.BoundSetsExamined += s2.BoundSetsExamined
	s.RothKarpCalls += s2.RothKarpCalls
	s.ShannonSplits += s2.ShannonSplits
	s.DisjointPeels += s2.DisjointPeels
	s.Degradations += s2.Degradations
	if s2.Workers > s.Workers {
		s.Workers = s2.Workers
	}
	s.ParallelTasks += s2.ParallelTasks
	s.InlineTasks += s2.InlineTasks
	if s2.QueueDepthPeak > s.QueueDepthPeak {
		s.QueueDepthPeak = s2.QueueDepthPeak
	}
	if s2.WorkerOccupancy > s.WorkerOccupancy {
		s.WorkerOccupancy = s2.WorkerOccupancy
	}
	s.BarriersEliminated += s2.BarriersEliminated
	s.CacheShardHits += s2.CacheShardHits
	s.CacheShardMisses += s2.CacheShardMisses
	s.CachePersistedHits += s2.CachePersistedHits
	s.CacheNPNHits += s2.CacheNPNHits
	s.ProbesLaunched += s2.ProbesLaunched
	s.ProbesCancelled += s2.ProbesCancelled
	s.SweepNodeVisits += s2.SweepNodeVisits
	s.DirtySkips += s2.DirtySkips
	if s2.WorklistPeak > s.WorklistPeak {
		s.WorklistPeak = s2.WorklistPeak
	}
	if s2.TraceEvents > s.TraceEvents {
		s.TraceEvents = s2.TraceEvents
	}
	if s2.TraceDropped > s.TraceDropped {
		s.TraceDropped = s2.TraceDropped
	}
}

// fold merges a scheduler-counter snapshot into s. Called once per public
// API entry point, over counters shared by every probe of that call.
func (s *Stats) fold(cs stats.ConcurrencySnapshot) {
	if cs.Workers > s.Workers {
		s.Workers = cs.Workers
	}
	s.ParallelTasks += cs.Tasks
	s.InlineTasks += cs.InlineRuns
	if cs.QueueDepthPeak > s.QueueDepthPeak {
		s.QueueDepthPeak = cs.QueueDepthPeak
	}
	if cs.BusyWorkersPeak > s.WorkerOccupancy {
		s.WorkerOccupancy = cs.BusyWorkersPeak
	}
	s.BarriersEliminated += cs.BarriersEliminated
	s.CacheShardHits += cs.CacheHits
	s.CacheShardMisses += cs.CacheMisses
	s.CachePersistedHits += cs.CachePersistedHits
	s.CacheNPNHits += cs.CacheNPNHits
	s.ProbesLaunched += cs.ProbesLaunched
	s.ProbesCancelled += cs.ProbesCancelled
	// WorklistDepthPeak mirrors the per-sweep drain sizes already folded in
	// through the per-probe Stats, so max (idempotent) rather than add; the
	// live DirtySkips gauge is likewise only a mirror and is never folded.
	if cs.WorklistDepthPeak > s.WorklistPeak {
		s.WorklistPeak = cs.WorklistDepthPeak
	}
}

// Replica is a node of an expanded circuit recorded in a cover: circuit
// node Orig observed through W registers.
type Replica struct {
	Orig int
	W    int
}

// Result is a complete mapping run outcome.
type Result struct {
	// Phi is the achieved target (clock period or MDR ratio).
	Phi int
	// Labels holds the converged labels at Phi.
	Labels []int
	// Mapped is the K-LUT network, cycle-accurate equivalent to the input
	// (registers still in their label-implied positions; retime it to
	// realize Phi).
	Mapped *netlist.Circuit
	// LUTs is the LUT count of Mapped.
	LUTs int
	// OrigOf maps each node of Mapped to the input-circuit node whose
	// output stream it reproduces: PIs to PIs, root LUTs to the covered
	// gates, POs to POs; decomposition-internal LUTs have -1 (they never
	// source registers). Used for initial-state alignment (sim package).
	OrigOf []int
	// Stats accumulates work over every probe of the search.
	Stats Stats
	// Opts echoes the configuration used.
	Opts Options
}

func validateInput(c *netlist.Circuit, opts Options) error {
	if err := c.Check(); err != nil {
		return err
	}
	if opts.K < 2 {
		return fmt.Errorf("core: K = %d is too small (need K >= 2)", opts.K)
	}
	if opts.K > logic.MaxVars {
		return fmt.Errorf("core: K = %d exceeds the %d-input limit of the function representation",
			opts.K, logic.MaxVars)
	}
	if opts.Cmax > logic.MaxVars {
		return fmt.Errorf("core: Cmax = %d exceeds logic.MaxVars = %d", opts.Cmax, logic.MaxVars)
	}
	if !c.IsKBounded(opts.K) {
		return fmt.Errorf("core: circuit %s is not %d-bounded (max fanin %d); run decomp.KBound first",
			c.Name, opts.K, c.MaxFanin())
	}
	return nil
}
