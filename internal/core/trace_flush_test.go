package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"turbosyn/internal/faultinject"
	"turbosyn/internal/obs"
)

// flushedTrace mirrors the Chrome trace schema WriteTrace commits to, just
// deeply enough to validate it.
type flushedTrace struct {
	TraceEvents []struct {
		Name string   `json:"name"`
		Ph   string   `json:"ph"`
		Dur  *float64 `json:"dur"`
	} `json:"traceEvents"`
	OtherData struct {
		Events        int `json:"events"`
		DroppedEvents int `json:"droppedEvents"`
	} `json:"otherData"`
}

// checkFlushedTrace asserts the recorder's rings are quiescent and export as
// well-formed trace JSON containing real span events.
func checkFlushedTrace(t *testing.T, rec *obs.Recorder) {
	t.Helper()
	events, _ := rec.Totals()
	if events == 0 {
		t.Fatal("no events recorded before the abort")
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf, "test-run"); err != nil {
		t.Fatalf("WriteTrace after abort: %v", err)
	}
	var tr flushedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("flushed trace is not valid JSON: %v", err)
	}
	spans := 0
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M", "i":
		case "X":
			if ev.Dur == nil {
				t.Fatalf("event %d (%s): complete span without dur", i, ev.Name)
			}
			spans++
		default:
			t.Fatalf("event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	if spans == 0 {
		t.Fatal("flushed trace contains no span events")
	}
	if tr.OtherData.Events != events {
		t.Errorf("otherData.events = %d, recorder says %d", tr.OtherData.Events, events)
	}
}

// TestTraceFlushPanicAbort: a panic contained deep inside a worker must not
// lose the trace — the engine joins every ring owner before surfacing the
// *InternalError, so the recorder is quiescent and exports valid trace JSON
// with the spans recorded up to the fault. (Injection plans are
// process-global; no t.Parallel.)
func TestTraceFlushPanicAbort(t *testing.T) {
	c := faultCircuit(t)
	for _, workers := range faultWorkerPools {
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			fenceGoroutines(t)
			plan, off := faultinject.Activate(faultinject.Config{PanicAtCutCheck: 200})
			defer off()
			rec := obs.NewRecorder(0)
			opts := DefaultOptions()
			opts.Workers = workers
			opts.Trace = rec
			if _, err := Minimize(c, opts); err == nil {
				t.Fatal("contained panic did not surface as an error")
			}
			if plan.Fired(faultinject.KindPanicCutCheck) == 0 {
				t.Fatal("fault never fired")
			}
			checkFlushedTrace(t, rec)
		})
	}
}

// TestTraceFlushCancelAbort: same contract on the cancellation path — a
// mid-sweep context cancel aborts with *CancelError and the trace still
// flushes complete and valid.
func TestTraceFlushCancelAbort(t *testing.T) {
	c := faultCircuit(t)
	for _, workers := range faultWorkerPools {
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			fenceGoroutines(t)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			plan, off := faultinject.Activate(faultinject.Config{
				CancelAtSweep: 3, OnCancel: cancel,
			})
			defer off()
			rec := obs.NewRecorder(0)
			opts := DefaultOptions()
			opts.Workers = workers
			opts.Trace = rec
			if _, err := MinimizeContext(ctx, c, opts); err == nil {
				t.Fatal("cancelled run returned no error")
			}
			if plan.Fired(faultinject.KindCancelSweep) == 0 {
				t.Fatal("cancel point never fired")
			}
			checkFlushedTrace(t, rec)
		})
	}
}
