package core

import (
	"turbosyn/internal/obs"
	"turbosyn/internal/prof"
	"turbosyn/internal/stats"
)

// phase switches both observability planes for the calling worker in one
// call: the pprof goroutine label (when -cpuprofile profiling is enabled)
// and the worker ring's stage span (when tracing is enabled). With both off
// it costs two predictable branches and allocates nothing, preserving the
// warm structural sweep's zero-allocation invariant.
func phase(ar *arena, op obs.Op) {
	prof.Phase(op)
	if ar.ring != nil {
		ar.ring.Phase(op, int64(ar.curNode))
	}
}

// attachRing gives a freshly created worker arena its trace ring. Cold path:
// called once per (probe, worker), never inside a sweep.
func (s *state) attachRing(ar *arena, label string) {
	if s.rec != nil && ar.ring == nil {
		ar.ring = s.rec.NewRing(label)
	}
}

// liveCounters builds the progress tracker's sampler: a closure the ticker
// goroutine calls at its reporting interval to read the run's shared atomic
// counters (and, when tracing, the recorder's event totals).
func liveCounters(conc *stats.Concurrency, rec *obs.Recorder) func() obs.Counters {
	return func() obs.Counters {
		cs := conc.Snapshot()
		c := obs.Counters{
			Workers:         cs.Workers,
			NodesLabeled:    cs.NodeUpdates,
			NodesSkipped:    cs.DirtySkips,
			Iterations:      cs.Iterations,
			ProbesLaunched:  cs.ProbesLaunched,
			ProbesFinished:  cs.ProbesFinished,
			ReadyQueueDepth: cs.QueueDepth,
			QueueDepthPeak:  cs.QueueDepthPeak,
			WorklistDepth:   cs.WorklistDepth,
			WorklistPeak:    cs.WorklistDepthPeak,
			Degradations:    cs.Degradations,
			ArenaPeakBytes:  cs.ArenaPeakBytes,
			CacheHits:       cs.CacheHits,
			CacheMisses:     cs.CacheMisses,
			CachePersisted:  cs.CachePersistedHits,
		}
		if rec != nil {
			c.TraceEvents, c.TraceDropped = rec.Totals()
		}
		return c
	}
}

// foldTrace records the recorder's event totals into st (once, at a public
// API boundary).
func foldTrace(st *Stats, rec *obs.Recorder) {
	if rec != nil {
		st.TraceEvents, st.TraceDropped = rec.Totals()
	}
}

// probeVerdict encodes a probe outcome as the OpProbe span argument.
func probeVerdict(ok bool, err error) int64 {
	switch {
	case err != nil:
		return -1
	case ok:
		return 1
	}
	return 0
}
