package core

import (
	"math/rand"
	"testing"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
	"turbosyn/internal/retime"
	"turbosyn/internal/sim"
)

// loop6PlusTail: the loop6 circuit with an additional wide AND tail hanging
// off the loop. The tail's cone is wide (forcing decomposition when its
// label is tight) but lies on no loop, so relaxation can legally push its
// label up and keep a single structural LUT.
func loop6PlusTail(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := loop6(t)
	g6 := c.IDByName("g6")
	prev := g6
	ids := make([]int, 0, 8)
	for i := 0; i < 7; i++ {
		pi := c.AddPI("t" + string(rune('0'+i)))
		prev = c.AddGate("tail"+string(rune('0'+i)), logic.AndAll(2),
			netlist.Fanin{From: prev}, netlist.Fanin{From: pi})
		ids = append(ids, prev)
	}
	c.AddPO("tz", prev, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRelaxReducesArea(t *testing.T) {
	c := loop6PlusTail(t)
	noRelax := turboSYNOpts()
	noRelax.Relax = false
	a, err := MapAtRatio(c, 1, noRelax)
	if err != nil {
		t.Fatal(err)
	}
	withRelax := turboSYNOpts()
	withRelax.Relax = true
	b, err := MapAtRatio(c, 1, withRelax)
	if err != nil {
		t.Fatal(err)
	}
	if b.LUTs > a.LUTs {
		t.Fatalf("relaxation increased area: %d -> %d", a.LUTs, b.LUTs)
	}
	// Both must still realize phi=1 and stay equivalent.
	for name, res := range map[string]*Result{"norelax": a, "relax": b} {
		if got := retime.MaxCycleRatioCeil(res.Mapped); got > 1 {
			t.Fatalf("%s: ratio %d > 1", name, got)
		}
		rng := rand.New(rand.NewSource(11))
		vecs := sim.RandomVectors(rng, 200, len(c.PIs))
		if err := sim.CompareAligned(c, res.Mapped, res.OrigOf, vecs, 10); err != nil {
			t.Fatalf("%s diverges: %v", name, err)
		}
	}
	t.Logf("LUTs without relaxation: %d, with: %d", a.LUTs, b.LUTs)
}

func TestRelaxPreservesFeasibilityOnRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end sweep; skipped in -short")
	}
	for seed := int64(200); seed < 215; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomSequential(rng, 15+rng.Intn(25), 5)
		if c.Check() != nil {
			continue
		}
		opts := turboSYNOpts()
		opts.Relax = true
		res, err := Minimize(c, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := retime.MaxCycleRatioCeil(res.Mapped); got > res.Phi {
			t.Fatalf("seed %d: relaxation broke the ratio: %d > %d", seed, got, res.Phi)
		}
		vecs := sim.RandomVectors(rng, 120, len(c.PIs))
		if err := sim.CompareAligned(c, res.Mapped, res.OrigOf, vecs, 10); err != nil {
			t.Fatalf("seed %d: diverges: %v", seed, err)
		}
	}
}
