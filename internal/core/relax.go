package core

// Label relaxation, the paper's first LUT-reduction technique: "reduce the
// number of nodes which need resynthesis by label relaxation, i.e., not
// using the resynthesized results of some nodes and increasing their labels
// if no positive loops will occur."
//
// After the label computation converges at a feasible phi, every node whose
// cover is a resynthesized LUT tree is tried with its label raised by one
// (the structural direct cover). If the labels still converge — and, for
// clock-period objectives, the outputs still meet phi — the relaxation
// sticks and the node keeps a single-LUT cover; otherwise the previous
// state is restored. The greedy order follows the sweep order, so upstream
// relaxations are visible downstream.

// relaxForArea runs the greedy relaxation. It must be called on a converged,
// feasible state; it leaves the state converged and feasible. A non-nil
// error aborts the relaxation mid-way (cancellation, strict budget,
// contained panic); the state is then inconsistent and must be discarded.
func (s *state) relaxForArea() error {
	for _, id := range s.order {
		rec := s.recs[id]
		if rec.tree == nil || len(rec.tree.Nodes) <= 1 {
			continue // structural cover already
		}
		labels := append([]int(nil), s.labels...)
		recs := append([]coverRec(nil), s.recs...)
		s.labels[id]++
		ok, err := s.run()
		if err != nil {
			return err
		}
		if ok {
			continue // relaxation accepted; state reconverged
		}
		s.labels = labels
		s.recs = recs
		s.resetDecisions()
	}
	return nil
}

// resetDecisions clears the decision cache after a label rollback.
func (s *state) resetDecisions() {
	for i := range s.decided {
		s.decided[i] = false
		s.lastL[i] = -labelInf
		s.nextDecomp[i] = 0
	}
}
