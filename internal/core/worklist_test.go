package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"turbosyn/internal/decomp"
	"turbosyn/internal/faultinject"
)

// TestWorklistMatchesFullSweep is the determinism contract of
// Options.NoWorklist: the dirty-set worklist skips exactly the member visits
// that full sweeps would have elided as decision-cache no-ops, so for every
// circuit, warm/cold mode, worker count and task grain the worklist path
// must return the exact result of the full-sweep path — same phi, same
// converged labels, same LUT count, byte-identical mapped netlist. For the
// cold sequential configuration the iteration trajectories are identical
// step for step, so every work counter must match too and the visit/skip
// accounting must balance against the full-sweep visit total. (Warm probes
// pre-decide carried-over labels, which legitimately changes the fast-pass
// trajectory — there only results are pinned, not counters.)
func TestWorklistMatchesFullSweep(t *testing.T) {
	fenceGoroutines(t)
	workerPools := []int{1, 2, 8}
	grains := []int{1, 64}
	cases := goldenCases()
	if testing.Short() {
		// The race CI job runs -short: keep one decomposing FSM, the
		// mapping-only FSM and the cheap LFSR, one worker pool per mode.
		workerPools = []int{1, 8}
		grains = grains[1:]
		cases = []goldenCase{cases[0], cases[3], cases[5]}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			if !c.IsKBounded(tc.k) {
				var err error
				if c, err = decomp.KBound(c, tc.k); err != nil {
					t.Fatal(err)
				}
			}
			for _, cold := range []bool{false, true} {
				mode := "warm"
				if cold {
					mode = "cold"
				}
				base := DefaultOptions()
				base.K = tc.k
				base.Decompose = tc.decompose
				base.NoWarmStart = cold

				// Full-sweep reference: sequential, worklist off. The
				// parallel determinism contract pins every other
				// configuration to this result.
				ref := base
				ref.Workers = 1
				ref.NoWorklist = true
				want, err := Minimize(c, ref)
				if err != nil {
					t.Fatal(err)
				}
				wantBLIF := blifBytes(t, want.Mapped)
				if want.Stats.DirtySkips != 0 {
					t.Fatalf("%s: full sweeps reported %d dirty skips", mode, want.Stats.DirtySkips)
				}

				for _, workers := range workerPools {
					for _, grain := range grains {
						opts := base
						opts.Workers = workers
						opts.TaskGrain = grain
						got, err := Minimize(c, opts)
						if err != nil {
							t.Fatalf("%s j%d g%d: %v", mode, workers, grain, err)
						}
						if got.Phi != want.Phi || got.LUTs != want.LUTs {
							t.Errorf("%s j%d g%d: phi %d/%d, LUTs %d/%d",
								mode, workers, grain, got.Phi, want.Phi, got.LUTs, want.LUTs)
						}
						for id := range want.Labels {
							if got.Labels[id] != want.Labels[id] {
								t.Fatalf("%s j%d g%d: label[%d] = %d, full sweep %d",
									mode, workers, grain, id, got.Labels[id], want.Labels[id])
							}
						}
						if !bytes.Equal(blifBytes(t, got.Mapped), wantBLIF) {
							t.Errorf("%s j%d g%d: mapped netlist differs from full-sweep path",
								mode, workers, grain)
						}
						if workers != 1 || !cold {
							continue
						}
						// Cold sequential: trajectories identical, so all
						// work counters match and skips balance visits.
						for _, cnt := range []struct {
							name      string
							got, want int
						}{
							{"Iterations", got.Stats.Iterations, want.Stats.Iterations},
							{"CutChecks", got.Stats.CutChecks, want.Stats.CutChecks},
							{"ExpandBuilds", got.Stats.ExpandBuilds, want.Stats.ExpandBuilds},
							{"ExpandReuses", got.Stats.ExpandReuses, want.Stats.ExpandReuses},
							{"Decompositions", got.Stats.Decompositions, want.Stats.Decompositions},
							{"DecompAttempts", got.Stats.DecompAttempts, want.Stats.DecompAttempts},
							{"PLDChecks", got.Stats.PLDChecks, want.Stats.PLDChecks},
							{"PLDHits", got.Stats.PLDHits, want.Stats.PLDHits},
						} {
							if cnt.got != cnt.want {
								t.Errorf("cold j1 g%d: %s = %d, full sweep %d",
									grain, cnt.name, cnt.got, cnt.want)
							}
						}
						if got.Stats.SweepNodeVisits+got.Stats.DirtySkips != want.Stats.SweepNodeVisits {
							t.Errorf("cold j1 g%d: visits %d + skips %d != full-sweep visits %d",
								grain, got.Stats.SweepNodeVisits, got.Stats.DirtySkips,
								want.Stats.SweepNodeVisits)
						}
					}
				}
			}
		})
	}
}

// TestWorklistAvoidsWork pins the perf claim behind the worklist: on the
// warm-started binary search (the default Minimize path) the dirty-set drain
// must elide a nonzero number of member visits and record a worklist
// high-water mark no larger than the biggest updatable set could allow.
func TestWorklistAvoidsWork(t *testing.T) {
	fenceGoroutines(t)
	c := faultCircuit(t)
	opts := DefaultOptions()
	opts.Workers = 1
	full := opts
	full.NoWorklist = true
	want, err := Minimize(c, full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.DirtySkips == 0 {
		t.Error("worklist elided no visits on the warm search")
	}
	if got.Stats.SweepNodeVisits >= want.Stats.SweepNodeVisits {
		t.Errorf("worklist visits %d not below full-sweep visits %d",
			got.Stats.SweepNodeVisits, want.Stats.SweepNodeVisits)
	}
	if got.Stats.WorklistPeak <= 0 {
		t.Errorf("WorklistPeak = %d, want > 0", got.Stats.WorklistPeak)
	}
	if got.Phi != want.Phi || got.LUTs != want.LUTs {
		t.Fatalf("worklist changed the result: phi %d/%d, LUTs %d/%d",
			got.Phi, want.Phi, got.LUTs, want.LUTs)
	}
}

// TestInjectedPanicWorklistWarmRecovers: a contained panic mid-probe leaves
// per-probe dirty bits and warm pre-decided labels behind on states that go
// back to the engine's pool. The next run on the same engine must reconcile
// or reset all of it — completing bit-identically to the full-sweep one-shot
// path, with the interrupted run's arenas poisoned (Discards > 0).
func TestInjectedPanicWorklistWarmRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by make chaos (-count 2, no -short); trimmed from the -short race budget")
	}
	c := faultCircuit(t)
	for _, workers := range faultWorkerPools {
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			fenceGoroutines(t)
			opts := DefaultOptions()
			opts.Workers = workers
			full := opts
			full.NoWorklist = true
			want, err := Minimize(c, full)
			if err != nil {
				t.Fatal(err)
			}
			wantBLIF := blifBytes(t, want.Mapped)

			e, err := NewEngine(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			plan, off := faultinject.Activate(faultinject.Config{PanicAtCutCheck: 50})
			res, err := e.Minimize(opts)
			off()
			if plan.Fired(faultinject.KindPanicCutCheck) == 0 {
				t.Fatalf("fault never fired (only %d cut checks)",
					plan.Hits(faultinject.KindPanicCutCheck))
			}
			if err == nil || res != nil {
				t.Fatalf("contained panic must surface as an error (err=%v res=%v)", err, res)
			}
			var ie *InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("error is not an *InternalError: %v", err)
			}
			if ps := e.PoolStats(); ps.Discards == 0 {
				t.Errorf("panicked run poisoned no arenas: %+v", ps)
			}

			res, err = e.Minimize(opts)
			if err != nil {
				t.Fatalf("engine did not recover after a contained panic: %v", err)
			}
			if res.Phi != want.Phi || res.LUTs != want.LUTs {
				t.Fatalf("post-panic worklist run diverged from full sweeps: phi %d/%d, LUTs %d/%d",
					res.Phi, want.Phi, res.LUTs, want.LUTs)
			}
			if !bytes.Equal(blifBytes(t, res.Mapped), wantBLIF) {
				t.Error("post-panic worklist run's netlist diverged from the full-sweep path")
			}
		})
	}
}

// TestInjectedCancelWorklistMidDrain: cancellation from a sweep checkpoint
// aborts a fast pass mid-drain, stranding half-cleared dirty bits. The
// engine must poison the interrupted checkouts and the next run must drain
// to the same fixpoint as the full-sweep one-shot path.
func TestInjectedCancelWorklistMidDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by make chaos (-count 2, no -short); trimmed from the -short race budget")
	}
	c := faultCircuit(t)
	for _, workers := range faultWorkerPools {
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			fenceGoroutines(t)
			opts := DefaultOptions()
			opts.Workers = workers
			full := opts
			full.NoWorklist = true
			want, err := Minimize(c, full)
			if err != nil {
				t.Fatal(err)
			}
			wantBLIF := blifBytes(t, want.Mapped)

			e, err := NewEngine(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			ctx, cancel := context.WithCancel(context.Background())
			plan, off := faultinject.Activate(faultinject.Config{
				CancelAtSweep: 3, OnCancel: cancel,
			})
			res, err := e.MinimizeContext(ctx, opts)
			off()
			cancel()
			if plan.Fired(faultinject.KindCancelSweep) == 0 {
				t.Fatalf("cancel point never fired (only %d sweeps)",
					plan.Hits(faultinject.KindCancelSweep))
			}
			if err == nil || res != nil {
				t.Fatalf("cancelled run must surface an error (err=%v res=%v)", err, res)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error does not wrap context.Canceled: %v", err)
			}
			if ps := e.PoolStats(); ps.Discards == 0 {
				t.Errorf("cancelled run poisoned no arenas: %+v", ps)
			}

			res, err = e.Minimize(opts)
			if err != nil {
				t.Fatalf("engine did not recover after cancellation: %v", err)
			}
			if res.Phi != want.Phi || res.LUTs != want.LUTs {
				t.Fatalf("post-cancel worklist run diverged from full sweeps: phi %d/%d, LUTs %d/%d",
					res.Phi, want.Phi, res.LUTs, want.LUTs)
			}
			if !bytes.Equal(blifBytes(t, res.Mapped), wantBLIF) {
				t.Error("post-cancel worklist run's netlist diverged from the full-sweep path")
			}
		})
	}
}
