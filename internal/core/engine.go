package core

import (
	"context"
	"fmt"
	"sync"

	"turbosyn/internal/graph"
	"turbosyn/internal/netlist"
	"turbosyn/internal/obs"
	"turbosyn/internal/retime"
	"turbosyn/internal/stats"
)

// analysis is everything the label engine derives from the circuit alone —
// no dependence on phi, Options or scheduling. Computed once per Engine (or
// once per newState on the throwaway path) and shared read-only by every
// probe, sequential or speculative: the comb topo order, the SCC
// decomposition and condensation levels, per-component member order, the
// condensation in-degrees, and the per-component work summary the dataflow
// scheduler needs (updatable member counts, triviality flags, the number of
// schedulable components and of levels carrying work).
type analysis struct {
	order  []int
	sccs   *graph.SCCs
	levels []int
	indeg  []int

	// Per-component member and update lists in CSR form: component comp's
	// members, in comb topo order, are memberFlat[memberOff[comp]:
	// memberOff[comp+1]], and its updatable members (gates with fanins — the
	// sweep universe of iterateComp and the seed universe of the dirty-set
	// worklist) are the same range of updFlat/updOff. Two flat arrays replace
	// the per-component slice headers of the earlier [][]int layout: at the
	// 100k-gate scale the header array alone cost more than the ids, and the
	// per-component update lists were rebuilt in arena scratch on every
	// component run.
	memberFlat []int32
	memberOff  []int32
	updFlat    []int32
	updOff     []int32

	// sameFlat/sameOff: per-node same-component successor lists (CSR) — the
	// nodes the worklist re-marks dirty when id's label raises. Only
	// intra-SCC edges appear: a raise never needs to mark across components,
	// because downstream components either seed fully dirty (cold probes) or
	// reconcile against upstream labels when they start (warm probes); see
	// iterateComp. Duplicate edges (parallel fanins) repeat here — marking a
	// dirty bit twice is free.
	sameFlat []int32
	sameOff  []int32

	// Dataflow-scheduler work summary (see runParallel).
	updates    []int  // updatable members per component
	trivial    []bool // singleton, acyclic components (inline-chainable)
	workCount  int    // components with at least one updatable member
	workLevels int    // condensation levels carrying schedulable work
}

// members returns component comp's members in comb topo order.
func (an *analysis) members(comp int) []int32 {
	return an.memberFlat[an.memberOff[comp]:an.memberOff[comp+1]]
}

// updatable returns component comp's updatable members (gates with fanins)
// in comb topo order.
func (an *analysis) updatable(comp int) []int32 {
	return an.updFlat[an.updOff[comp]:an.updOff[comp+1]]
}

// sameCompSucc returns node id's successors inside its own component.
func (an *analysis) sameCompSucc(id int) []int32 {
	return an.sameFlat[an.sameOff[id]:an.sameOff[id+1]]
}

// analyze computes the circuit-invariant analysis.
func analyze(c *netlist.Circuit) *analysis {
	an := &analysis{
		order: c.CombTopoOrder(),
		sccs:  graph.StronglyConnected(c.Adj()),
	}
	an.levels = an.sccs.Levels()
	an.indeg = an.sccs.InDegrees()
	nc := an.sccs.NumComps()
	an.updates = make([]int, nc)
	an.trivial = make([]bool, nc)
	// CSR member/update lists: count per component, prefix-sum the offsets,
	// then fill by walking the comb topo order with per-component cursors.
	an.memberOff = make([]int32, nc+1)
	an.updOff = make([]int32, nc+1)
	for _, id := range an.order {
		comp := an.sccs.Comp[id]
		an.memberOff[comp+1]++
		n := c.Nodes[id]
		if n.Kind != netlist.PI && len(n.Fanins) > 0 {
			an.updOff[comp+1]++
			an.updates[comp]++
		}
	}
	for comp := 0; comp < nc; comp++ {
		an.memberOff[comp+1] += an.memberOff[comp]
		an.updOff[comp+1] += an.updOff[comp]
	}
	an.memberFlat = make([]int32, an.memberOff[nc])
	an.updFlat = make([]int32, an.updOff[nc])
	mcur := make([]int32, nc)
	copy(mcur, an.memberOff[:nc])
	ucur := make([]int32, nc)
	copy(ucur, an.updOff[:nc])
	for _, id := range an.order { // comb topo order within each component
		comp := an.sccs.Comp[id]
		an.memberFlat[mcur[comp]] = int32(id)
		mcur[comp]++
		n := c.Nodes[id]
		if n.Kind != netlist.PI && len(n.Fanins) > 0 {
			an.updFlat[ucur[comp]] = int32(id)
			ucur[comp]++
		}
	}
	// Intra-component successor CSR (dirty-marking targets; see the field
	// comment). Edges are scanned fanin-side, so no fanout lists are built.
	n := c.NumNodes()
	an.sameOff = make([]int32, n+1)
	for _, node := range c.Nodes {
		for _, f := range node.Fanins {
			if an.sccs.Comp[f.From] == an.sccs.Comp[node.ID] {
				an.sameOff[f.From+1]++
			}
		}
	}
	for id := 0; id < n; id++ {
		an.sameOff[id+1] += an.sameOff[id]
	}
	an.sameFlat = make([]int32, an.sameOff[n])
	scur := make([]int32, n)
	copy(scur, an.sameOff[:n])
	for _, node := range c.Nodes {
		for _, f := range node.Fanins {
			if an.sccs.Comp[f.From] == an.sccs.Comp[node.ID] {
				an.sameFlat[scur[f.From]] = int32(node.ID)
				scur[f.From]++
			}
		}
	}
	levelSeen := make([]bool, nc)
	for comp := 0; comp < nc; comp++ {
		if an.updates[comp] > 0 {
			an.workCount++
			if !levelSeen[an.levels[comp]] {
				levelSeen[an.levels[comp]] = true
				an.workLevels++
			}
		}
		if members := an.members(comp); len(members) == 1 {
			id := int(members[0])
			self := false
			for _, f := range c.Nodes[id].Fanins {
				if f.From == id {
					self = true
					break
				}
			}
			an.trivial[comp] = !self
		}
	}
	return an
}

// arenaPool is the Engine's checkout pool of worker scratch arenas. Arenas
// survive probe and run boundaries here: a probe checks its workers' arenas
// out (arenaFor), runs on them exclusively, and checks them back in when the
// probe's state returns to the engine. Pooled arenas keep their warm backing
// arrays (expansion builder, flow network, NPN memo), so repeated runs skip
// the arena re-warmup entirely; only the transient per-probe fields (trace
// ring, expansion validity, current node) are reset on checkout.
//
// An arena is discarded instead of pooled when it is poisoned — its run
// aborted via a contained panic, a strict budget or context cancellation, so
// its scratch may be mid-mutation — or when its retained footprint exceeds
// the run's ArenaByteBudget. Discarding is safe by the same argument that
// makes arena.reset safe: arenas are pure scratch, invisible in results.
type arenaPool struct {
	mu       sync.Mutex
	free     []*arena
	reuses   int
	creates  int
	discards int
}

// checkout pops a pooled arena (reset to its transient defaults) or creates
// a fresh one; pooled reports which.
func (p *arenaPool) checkout() (ar *arena, pooled bool) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		ar = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
		pooled = true
	} else {
		p.creates++
	}
	p.mu.Unlock()
	if ar == nil {
		ar = &arena{}
	}
	ar.ring = nil
	ar.built = false
	ar.builtL = 0
	ar.curNode = -1
	ar.poisoned = false
	return ar, pooled
}

// checkin returns ar to the pool, discarding it when poisoned or when its
// retained footprint exceeds budget (0 = unlimited).
func (p *arenaPool) checkin(ar *arena, budget int) {
	ar.ring = nil
	discard := ar.poisoned || (budget > 0 && ar.bytes() > budget)
	p.mu.Lock()
	if discard {
		p.discards++
	} else {
		p.free = append(p.free, ar)
	}
	p.mu.Unlock()
}

// snapshot returns the pool's current counters and retained footprint.
func (p *arenaPool) snapshot() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	ps := PoolStats{
		Free:     len(p.free),
		Reuses:   p.reuses,
		Creates:  p.creates,
		Discards: p.discards,
	}
	for _, ar := range p.free {
		ps.FreeBytes += ar.bytes()
	}
	return ps
}

// PoolStats reports the state of an Engine's arena pool: how many arenas are
// parked (and their retained bytes), and the lifetime checkout traffic.
// Reuses + Creates equals the total checkouts; Discards counts arenas
// dropped at checkin because their run was poisoned (contained panic, strict
// budget, cancellation) or they outgrew the arena byte budget.
type PoolStats struct {
	Free      int
	FreeBytes int
	Reuses    int
	Creates   int
	Discards  int
}

// Engine owns everything invariant across probes and runs on one circuit:
// the graph analysis (topo order, SCCs, condensation levels and degrees,
// per-component work summary), the NPN-keyed decomposition cache — including
// the persisted cross-run log, loaded once at construction instead of per
// run — and the checkout pools of worker arenas and probe states. Every
// probe of every run on the engine checks a state out instead of rebuilding
// this from scratch, which is what makes repeated runs (the daemon workload
// of ROADMAP item 1) and the O(log ub) probes of one Minimize cheap.
//
// An Engine is safe for concurrent use; results are bit-identical to the
// package-level functions (which are themselves thin wrappers over a
// throwaway engine). Close flushes the persistent cache log; runs started
// after Close still compute correctly but their new cache entries are lost.
//
// Per-call Options may vary freely between runs on one engine — the
// turbomap-ub pass inside Minimize already relies on that — with one
// exception: cache persistence (CacheDir) is fixed at construction, and the
// CacheDir of per-call options is ignored.
type Engine struct {
	c     *netlist.Circuit
	opts  Options // construction options: cache persistence, pool budget
	an    *analysis
	cache *decompCache
	pool  *arenaPool

	mu     sync.Mutex
	states []*state
	closed bool
}

// NewEngine validates c against opts, analyzes it once and returns an engine
// ready to serve probes and runs. When opts.CacheDir is set the persisted
// decomposition log is loaded here, once, rather than on every run.
func NewEngine(c *netlist.Circuit, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := validateInput(c, opts); err != nil {
		return nil, err
	}
	e := &Engine{
		c:     c,
		opts:  opts,
		an:    analyze(c),
		cache: newDecompCache(),
		pool:  &arenaPool{},
	}
	e.cache.openLog(opts)
	return e, nil
}

// Close flushes the persistent decomposition log (when the engine was
// constructed with a CacheDir) and marks the engine closed. Safe to call
// more than once; only the first call flushes.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.cache.closeLog(e.opts)
	return nil
}

// PoolStats reports the engine's arena-pool counters (see PoolStats). The
// chaos suite uses Discards to assert poisoning; the reuse tests use Free
// and FreeBytes to pin the pool's footprint bound.
func (e *Engine) PoolStats() PoolStats { return e.pool.snapshot() }

// checkoutState returns a probe state wired to the engine: analysis shared,
// arena pool attached, per-probe fields reset for (phi, opts). The caller
// must attach the run's counters/cancel flag and guard, and must return the
// state with checkinState on every path.
func (e *Engine) checkoutState(phi int, opts Options) *state {
	e.mu.Lock()
	var s *state
	if n := len(e.states); n > 0 {
		s = e.states[n-1]
		e.states[n-1] = nil
		e.states = e.states[:n-1]
	}
	e.mu.Unlock()
	if s == nil {
		s = blankState(e.c, e.an, e.pool)
	}
	s.resetFor(phi, opts)
	s.cache = e.cache
	return s
}

// checkinState releases a probe state back to the engine. The state's arenas
// return to the pool — poisoned first when the probe aborted through a fatal
// error (contained panic, strict budget) or context cancellation, so scratch
// that may have been interrupted mid-mutation is never reused. The state
// shell itself is always reusable: resetFor reinitializes every per-probe
// field from scratch on the next checkout.
func (e *Engine) checkinState(s *state) {
	poisoned := s.fails.tripped() || s.guard.cancelled()
	for _, ar := range s.arenas {
		if poisoned {
			ar.poisoned = true
		}
		e.pool.checkin(ar, s.opts.ArenaByteBudget)
	}
	s.arenas = s.arenas[:0]
	s.cache = nil
	s.conc = nil
	s.cancel = nil
	s.guard = nil
	s.rec = nil
	s.compDone = nil
	e.mu.Lock()
	e.states = append(e.states, s)
	e.mu.Unlock()
}

// Feasible is FeasibleContext with a background context.
func (e *Engine) Feasible(phi int, opts Options) (bool, Stats, error) {
	return e.FeasibleContext(context.Background(), phi, opts)
}

// FeasibleContext decides Problem 2 on the engine's circuit: does a mapping
// with clock period (or, when opts.Pipelined, MDR ratio) at most phi exist?
// Equivalent to the package-level FeasibleContext, minus the per-call
// analysis and cache construction.
func (e *Engine) FeasibleContext(ctx context.Context, phi int, opts Options) (bool, Stats, error) {
	opts = opts.withDefaults()
	if err := validateInput(e.c, opts); err != nil {
		return false, Stats{}, err
	}
	if phi < 1 {
		return false, Stats{}, nil
	}
	guard := startGuard(ctx)
	defer guard.release()
	conc := &stats.Concurrency{}
	s := e.checkoutState(phi, opts)
	defer e.checkinState(s)
	s.attach(e.cache, conc, nil)
	s.guard = guard
	opts.Progress.SetSampler(liveCounters(conc, opts.Trace))
	var ring *obs.Ring
	var t0 int64
	if opts.Trace != nil {
		ring = opts.Trace.NewRing("probe")
		t0 = ring.Now()
	}
	conc.AddProbeLaunched()
	ok, err := s.run()
	if ring != nil {
		ring.Span(obs.OpProbe, t0, int64(phi), probeVerdict(ok, err))
	}
	if opts.Logger != nil {
		opts.Logger.Debug("probe", "phi", phi, "feasible", ok,
			"iterations", s.stats.Iterations, "cutChecks", s.stats.CutChecks, "err", err)
	}
	st := s.stats
	st.fold(conc.Snapshot())
	foldTrace(&st, opts.Trace)
	if err != nil {
		return false, st, wrapAbort(err, "probe", -1, st)
	}
	return ok, st, nil
}

// MapAtRatio is MapAtRatioContext with a background context.
func (e *Engine) MapAtRatio(phi int, opts Options) (*Result, error) {
	return e.MapAtRatioContext(context.Background(), phi, opts)
}

// MapAtRatioContext computes labels and a mapped LUT network for a specific
// feasible phi on the engine's circuit. It fails if phi is infeasible.
func (e *Engine) MapAtRatioContext(ctx context.Context, phi int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := validateInput(e.c, opts); err != nil {
		return nil, err
	}
	guard := startGuard(ctx)
	defer guard.release()
	conc := &stats.Concurrency{}
	opts.Progress.SetSampler(liveCounters(conc, opts.Trace))
	opts.Progress.SetPhase("map")
	var ring *obs.Ring
	var t0 int64
	if opts.Trace != nil {
		ring = opts.Trace.NewRing("map")
		t0 = ring.Now()
	}
	res, st, err := e.mapAtRatio(phi, opts, conc, guard)
	if ring != nil {
		ring.Span(obs.OpMap, t0, int64(phi), probeVerdict(err == nil, err))
	}
	if err != nil {
		st.fold(conc.Snapshot())
		foldTrace(&st, opts.Trace)
		return nil, wrapAbort(err, "map", -1, st)
	}
	res.Stats.fold(conc.Snapshot())
	foldTrace(&res.Stats, opts.Trace)
	return res, nil
}

// mapAtRatio is MapAtRatio over a search-wide counter set and context guard;
// the caller folds the counters into the final Stats exactly once. The
// returned Stats carry the partial work even when err != nil.
func (e *Engine) mapAtRatio(phi int, opts Options, conc *stats.Concurrency, guard *runGuard) (*Result, Stats, error) {
	s := e.checkoutState(phi, opts)
	defer e.checkinState(s)
	s.attach(e.cache, conc, nil)
	s.guard = guard
	conc.AddProbeLaunched()
	ok, err := s.run()
	if err != nil {
		return nil, s.stats, err
	}
	if !ok {
		return nil, s.stats, fmt.Errorf("core: target %d is infeasible for %s", phi, e.c.Name)
	}
	if opts.Relax && opts.Decompose {
		if err := s.relaxForArea(); err != nil {
			return nil, s.stats, err
		}
	}
	m, origOf, err := s.generate()
	if err != nil {
		return nil, s.stats, err
	}
	return &Result{
		Phi: phi,
		// The state returns to the engine and its label array is reused by
		// the next probe; the result must own its copy.
		Labels: append([]int(nil), s.labels...),
		Mapped: m,
		LUTs:   m.NumGates(),
		OrigOf: origOf,
		Stats:  s.stats,
		Opts:   opts,
	}, s.stats, nil
}

// Minimize is MinimizeContext with a background context.
func (e *Engine) Minimize(opts Options) (*Result, error) {
	return e.MinimizeContext(context.Background(), opts)
}

// MinimizeContext finds the minimum feasible phi by binary search on the
// engine's circuit and returns the mapping at that phi (see the package
// MinimizeContext for the search and abort semantics). Every probe of the
// search — speculative lookaheads included — checks its state and arenas out
// of the engine instead of rebuilding the circuit analysis.
func (e *Engine) MinimizeContext(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := validateInput(e.c, opts); err != nil {
		return nil, err
	}
	guard := startGuard(ctx)
	defer guard.release()
	// One counter set spans the whole search — every probe, speculative or
	// not, and the final mapping pass. (The decomposition cache is the
	// engine's and spans runs.)
	conc := &stats.Concurrency{}
	opts.Progress.SetSampler(liveCounters(conc, opts.Trace))
	var total Stats
	fail := func(err error, phase string, best int) (*Result, error) {
		if opts.Logger != nil {
			opts.Logger.Warn("search aborted", "phase", phase, "bestPhi", best, "err", err)
		}
		total.fold(conc.Snapshot())
		foldTrace(&total, opts.Trace)
		return nil, wrapAbort(err, phase, best, total)
	}
	ub := retime.Period(e.c)
	if ub < 1 {
		ub = 1
	}
	if opts.Decompose && opts.Pipelined {
		// Paper's UB: TurboMap's optimum seeds TurboSYN's search.
		opts.Progress.SetPhase("turbomap-ub")
		tmOpts := opts
		tmOpts.Decompose = false
		tm, err := e.minimizeSearch(ub, tmOpts, &total, conc, guard)
		if err != nil {
			return fail(err, "turbomap-ub", tm)
		}
		if opts.Logger != nil {
			opts.Logger.Debug("turbomap upper bound", "ub", tm, "retimedUB", ub)
		}
		ub = tm
	}
	opts.Progress.SetPhase("search")
	best, err := e.minimizeSearch(ub, opts, &total, conc, guard)
	if err != nil {
		return fail(err, "search", best)
	}
	opts.Progress.SetPhase("map")
	var mapRing *obs.Ring
	var t0 int64
	if opts.Trace != nil {
		mapRing = opts.Trace.NewRing("map")
		t0 = mapRing.Now()
	}
	res, st, err := e.mapAtRatio(best, opts, conc, guard)
	if mapRing != nil {
		mapRing.Span(obs.OpMap, t0, int64(best), probeVerdict(err == nil, err))
	}
	if err != nil {
		total.Add(st)
		return fail(err, "map", best)
	}
	total.Add(res.Stats)
	res.Stats = total
	res.Stats.fold(conc.Snapshot())
	foldTrace(&res.Stats, opts.Trace)
	return res, nil
}
