package core

import (
	"math/rand"
	"testing"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
	"turbosyn/internal/retime"
	"turbosyn/internal/sim"
)

func turboMapOpts() Options {
	return Options{Decompose: false, PLD: true, Pipelined: true}.withDefaults()
}

func turboSYNOpts() Options {
	return DefaultOptions()
}

// toggler: g = XOR(pi, g@1).
func toggler(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("toggle")
	pi := c.AddPI("en")
	g := c.AddGate("g", logic.XorAll(2),
		netlist.Fanin{From: pi}, netlist.Fanin{From: pi})
	c.Nodes[g].Fanins[1] = netlist.Fanin{From: g, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("q", g, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

// loop6: g1 = AND(x1, g6@1), gi = AND(g(i-1), xi) for i=2..6, PO = g6.
// The single loop holds 6 gates and 1 register. A K=5 LUT cannot swallow
// the whole 7-input loop cone structurally, so TurboMap's best MDR ratio is
// 2; TurboSYN resynthesizes the wide AND cone and reaches ratio 1 — the
// paper's Figure-1 phenomenon.
func loop6(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("loop6")
	xs := make([]int, 7)
	for i := 1; i <= 6; i++ {
		xs[i] = c.AddPI(string(rune('a' + i - 1)))
	}
	g1 := c.AddGate("g1", logic.AndAll(2),
		netlist.Fanin{From: xs[1]}, netlist.Fanin{From: xs[1]})
	prev := g1
	for i := 2; i <= 6; i++ {
		prev = c.AddGate("g"+string(rune('0'+i)), logic.AndAll(2),
			netlist.Fanin{From: prev}, netlist.Fanin{From: xs[i]})
	}
	c.Nodes[g1].Fanins[1] = netlist.Fanin{From: prev, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("z", prev, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTogglerMapsAtRatio1(t *testing.T) {
	c := toggler(t)
	res, err := Minimize(c, turboMapOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Phi != 1 {
		t.Fatalf("phi = %d, want 1", res.Phi)
	}
	if res.LUTs != 1 {
		t.Fatalf("LUTs = %d, want 1", res.LUTs)
	}
	rng := rand.New(rand.NewSource(1))
	vecs := sim.RandomVectors(rng, 100, 1)
	if err := sim.CompareAligned(c, res.Mapped, res.OrigOf, vecs, 4); err != nil {
		t.Fatalf("mapped network diverges: %v", err)
	}
}

func TestLoop6TurboMapVsTurboSYN(t *testing.T) {
	c := loop6(t)
	tm, err := Minimize(c, turboMapOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tm.Phi != 2 {
		t.Fatalf("TurboMap phi = %d, want 2", tm.Phi)
	}
	ts, err := Minimize(c, turboSYNOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ts.Phi != 1 {
		t.Fatalf("TurboSYN phi = %d, want 1 (resynthesis must break the loop cone)", ts.Phi)
	}
	if ts.Stats.Decompositions == 0 {
		t.Fatal("TurboSYN should have used sequential decomposition")
	}
	// Both mapped networks are cycle-accurate equivalents.
	rng := rand.New(rand.NewSource(2))
	vecs := sim.RandomVectors(rng, 300, 6)
	if err := sim.CompareAligned(c, tm.Mapped, tm.OrigOf, vecs, 8); err != nil {
		t.Fatalf("TurboMap mapping diverges: %v", err)
	}
	if err := sim.CompareAligned(c, ts.Mapped, ts.OrigOf, vecs, 8); err != nil {
		t.Fatalf("TurboSYN mapping diverges: %v", err)
	}
	// The mapped MDR ratios certify the labels.
	if got := retime.MaxCycleRatioCeil(ts.Mapped); got > 1 {
		t.Fatalf("TurboSYN mapped MDR ceil = %d, want <= 1", got)
	}
	if got := retime.MaxCycleRatioCeil(tm.Mapped); got > 2 {
		t.Fatalf("TurboMap mapped MDR ceil = %d, want <= 2", got)
	}
	// Retiming + pipelining realizes the period.
	for _, res := range []*Result{tm, ts} {
		r, ok := retime.RetimeForPeriod(res.Mapped, res.Phi, true)
		if !ok {
			t.Fatalf("phi=%d not realizable on mapped network", res.Phi)
		}
		d, err := retime.Apply(res.Mapped, r)
		if err != nil {
			t.Fatal(err)
		}
		if retime.Period(d) > res.Phi {
			t.Fatalf("retimed period %d > %d", retime.Period(d), res.Phi)
		}
	}
}

func TestCombinationalActsLikeFlowMap(t *testing.T) {
	// Balanced 2-input AND tree over 16 PIs: 15 gates, gate depth 4.
	// K=4 LUTs cover two levels each: optimal depth 2.
	c := netlist.NewCircuit("tree16")
	var level []int
	for i := 0; i < 16; i++ {
		level = append(level, c.AddPI(string(rune('a'+i))))
	}
	for len(level) > 1 {
		var next []int
		for i := 0; i < len(level); i += 2 {
			next = append(next, c.AddGate("", logic.AndAll(2),
				netlist.Fanin{From: level[i]}, netlist.Fanin{From: level[i+1]}))
		}
		level = next
	}
	c.AddPO("z", level[0], 0)
	opts := turboMapOpts()
	opts.K = 4
	opts.Pipelined = false
	res, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phi != 2 {
		t.Fatalf("depth = %d, want 2", res.Phi)
	}
	eq, err := sim.CombEquivalent(c, res.Mapped, 16)
	if err != nil || !eq {
		t.Fatalf("mapped tree not equivalent: %v %v", eq, err)
	}
	// 16 inputs / 4-LUTs: at least 5 LUTs; a good mapping uses exactly 5.
	if res.LUTs > 6 {
		t.Errorf("LUT count %d is poor for tree16", res.LUTs)
	}
}

func TestPLDSpeedsUpInfeasibleProbe(t *testing.T) {
	c := loop6(t)
	optsOn := turboMapOpts()
	optsOff := turboMapOpts()
	optsOff.PLD = false
	okOn, statsOn, err := Feasible(c, 1, optsOn)
	if err != nil {
		t.Fatal(err)
	}
	okOff, statsOff, err := Feasible(c, 1, optsOff)
	if err != nil {
		t.Fatal(err)
	}
	if okOn || okOff {
		t.Fatal("ratio 1 must be infeasible for TurboMap on loop6")
	}
	if statsOn.PLDHits == 0 {
		t.Error("PLD should have detected the positive loop")
	}
	if statsOn.Iterations >= statsOff.Iterations {
		t.Errorf("PLD did not reduce iterations: %d vs %d",
			statsOn.Iterations, statsOff.Iterations)
	}
}

func TestFeasibleMonotone(t *testing.T) {
	c := loop6(t)
	opts := turboMapOpts()
	prev := false
	for phi := 1; phi <= 7; phi++ {
		ok, _, err := Feasible(c, phi, opts)
		if err != nil {
			t.Fatal(err)
		}
		if prev && !ok {
			t.Fatalf("feasibility not monotone at phi=%d", phi)
		}
		prev = ok
	}
	if !prev {
		t.Fatal("large phi must be feasible")
	}
}

func TestClockPeriodObjectiveDiffersFromRatio(t *testing.T) {
	// loop6's PO hangs on a register-free path from the PIs... actually it
	// taps the loop. Use a circuit with a long input chain: pipelining
	// (ratio objective) wins, pure clock period cannot.
	c := netlist.NewCircuit("chainy")
	pi := c.AddPI("x")
	g := c.AddGate("c1", logic.Buf(), netlist.Fanin{From: pi})
	for i := 2; i <= 8; i++ {
		g = c.AddGate("", logic.Buf(), netlist.Fanin{From: g})
	}
	c.AddPO("z", g, 0)
	opts := turboMapOpts()
	opts.K = 2
	opts.Pipelined = false
	res, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 8 buffers at K=2: LUTs absorb 2 levels each -> depth 4... a K=2 LUT
	// has 2 inputs; a buffer chain collapses entirely into 1 LUT.
	if res.Phi != 1 {
		t.Fatalf("chain of buffers should map to depth 1, got %d", res.Phi)
	}
	if res.LUTs != 1 {
		t.Errorf("buffer chain should collapse to 1 LUT, got %d", res.LUTs)
	}
}

func TestMapAtRatioInfeasibleFails(t *testing.T) {
	c := loop6(t)
	if _, err := MapAtRatio(c, 1, turboMapOpts()); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestValidation(t *testing.T) {
	c := netlist.NewCircuit("wide")
	var fanins []netlist.Fanin
	for i := 0; i < 7; i++ {
		fanins = append(fanins, netlist.Fanin{From: c.AddPI(string(rune('a' + i)))})
	}
	g := c.AddGate("w", logic.AndAll(7), fanins...)
	c.AddPO("z", g, 0)
	if _, _, err := Feasible(c, 3, turboSYNOpts()); err == nil {
		t.Fatal("non-K-bounded input must be rejected")
	}
}

// randomSequential builds a well-formed K-bounded sequential circuit.
func randomSequential(rng *rand.Rand, nGates, k int) *netlist.Circuit {
	c := netlist.NewCircuit("rnd")
	nPI := 2 + rng.Intn(4)
	ids := make([]int, 0, nGates+nPI)
	for i := 0; i < nPI; i++ {
		ids = append(ids, c.AddPI(string(rune('a'+i))))
	}
	mkfn := func(nf int) *logic.TT {
		switch rng.Intn(4) {
		case 0:
			return logic.AndAll(nf)
		case 1:
			return logic.OrAll(nf)
		case 2:
			return logic.XorAll(nf)
		default:
			f := logic.NewTT(nf)
			for i := 0; i < f.NumBits(); i++ {
				if rng.Intn(2) == 1 {
					f.SetBit(i, true)
				}
			}
			return f
		}
	}
	gates := make([]int, 0, nGates)
	for i := 0; i < nGates; i++ {
		nf := 1 + rng.Intn(k)
		fanins := make([]netlist.Fanin, nf)
		for j := range fanins {
			fanins[j] = netlist.Fanin{From: ids[rng.Intn(len(ids))], Weight: rng.Intn(2)}
		}
		id := c.AddGate("", mkfn(nf), fanins...)
		ids = append(ids, id)
		gates = append(gates, id)
	}
	// Back edges with a register.
	for i := 0; i < nGates/4; i++ {
		g := gates[rng.Intn(len(gates))]
		n := c.Nodes[g]
		slot := rng.Intn(len(n.Fanins))
		n.Fanins[slot] = netlist.Fanin{
			From:   gates[rng.Intn(len(gates))],
			Weight: 1 + rng.Intn(2),
		}
	}
	c.InvalidateCaches()
	for i := 0; i < 2; i++ {
		c.AddPO("z"+string(rune('0'+i)), gates[len(gates)-1-i], rng.Intn(2))
	}
	return c
}

func TestRandomCircuitsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end sweep; skipped in -short")
	}
	k := 5
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomSequential(rng, 10+rng.Intn(30), k)
		if c.Check() != nil {
			continue // generator can build comb cycles; skip
		}
		tmOpts := turboMapOpts()
		tm, err := Minimize(c, tmOpts)
		if err != nil {
			t.Fatalf("seed %d: TurboMap: %v", seed, err)
		}
		ts, err := Minimize(c, turboSYNOpts())
		if err != nil {
			t.Fatalf("seed %d: TurboSYN: %v", seed, err)
		}
		if ts.Phi > tm.Phi {
			t.Fatalf("seed %d: TurboSYN (%d) worse than TurboMap (%d)", seed, ts.Phi, tm.Phi)
		}
		for name, res := range map[string]*Result{"tm": tm, "ts": ts} {
			if err := res.Mapped.Check(); err != nil {
				t.Fatalf("seed %d %s: bad mapped network: %v", seed, name, err)
			}
			if !res.Mapped.IsKBounded(k) {
				t.Fatalf("seed %d %s: not K-bounded", seed, name)
			}
			if got := retime.MaxCycleRatioCeil(res.Mapped); got > res.Phi {
				t.Fatalf("seed %d %s: mapped MDR ceil %d > phi %d", seed, name, got, res.Phi)
			}
			if _, ok := retime.RetimeForPeriod(res.Mapped, res.Phi, true); !ok {
				t.Fatalf("seed %d %s: phi %d not realizable", seed, name, res.Phi)
			}
			vecs := sim.RandomVectors(rng, 120, len(c.PIs))
			if err := sim.CompareAligned(c, res.Mapped, res.OrigOf, vecs, 10); err != nil {
				t.Fatalf("seed %d %s: mapping diverges: %v", seed, name, err)
			}
		}
	}
}
