package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"turbosyn/internal/bench"
	"turbosyn/internal/decomp"
	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
	"turbosyn/internal/stats"
)

// goldenCase is one circuit/configuration of the equivalence matrix. The
// generators are deterministic in their seed, so the sequential run defines
// a golden result the parallel runs must reproduce bit-for-bit.
type goldenCase struct {
	name      string
	k         int
	decompose bool
	build     func() *netlist.Circuit
}

func fsmCircuit(seed int64, bits, cubes int) func() *netlist.Circuit {
	return func() *netlist.Circuit {
		rng := rand.New(rand.NewSource(seed))
		return bench.FSM(rng, fmt.Sprintf("fsm_s%d", seed), bench.FSMSpec{
			StateBits: bits, Inputs: 4, Outputs: 3, Cubes: cubes, Span: 5,
		})
	}
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"fsm_s1_k4_syn", 4, true, fsmCircuit(1, 6, 4)},
		{"fsm_s2_k5_syn", 5, true, fsmCircuit(2, 7, 4)},
		{"fsm_s3_k6_syn", 6, true, fsmCircuit(3, 6, 5)},
		{"fsm_s2_k5_map", 5, false, fsmCircuit(2, 7, 4)},
		{"acc12_k5_syn", 5, true, func() *netlist.Circuit {
			return bench.Accumulator("acc12", 12, []int{3, 7})
		}},
		{"lfsr16_k4_syn", 4, true, func() *netlist.Circuit {
			return bench.LFSR("lfsr16", 16, []int{2, 9, 13})
		}},
	}
}

func blifBytes(t *testing.T, c *netlist.Circuit) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := netlist.WriteBLIF(&buf, c); err != nil {
		t.Fatalf("WriteBLIF: %v", err)
	}
	return buf.Bytes()
}

// TestParallelMatchesSequentialGolden is the determinism contract of
// Options.Workers: for every circuit, K and algorithm, the parallel engine
// (dataflow-scheduled label sweeps, shared sharded cache, speculative
// search) must return the exact result of the sequential engine — same phi,
// same converged labels, same LUT count, and a byte-identical mapped
// netlist.
func TestParallelMatchesSequentialGolden(t *testing.T) {
	fenceGoroutines(t)
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			if err := c.Check(); err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.K = tc.k
			opts.Decompose = tc.decompose
			if !c.IsKBounded(tc.k) {
				var err error
				if c, err = decomp.KBound(c, tc.k); err != nil {
					t.Fatal(err)
				}
			}

			opts.Workers = 1
			want, err := Minimize(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantBLIF := blifBytes(t, want.Mapped)

			pools := []int{2, 4}
			if testing.Short() {
				pools = pools[1:]
			}
			for _, workers := range pools {
				opts.Workers = workers
				got, err := Minimize(c, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got.Phi != want.Phi {
					t.Errorf("workers=%d: phi %d, sequential %d", workers, got.Phi, want.Phi)
				}
				if got.LUTs != want.LUTs {
					t.Errorf("workers=%d: LUTs %d, sequential %d", workers, got.LUTs, want.LUTs)
				}
				if len(got.Labels) != len(want.Labels) {
					t.Fatalf("workers=%d: %d labels, sequential %d",
						workers, len(got.Labels), len(want.Labels))
				}
				for id := range want.Labels {
					if got.Labels[id] != want.Labels[id] {
						t.Fatalf("workers=%d: label[%d] = %d, sequential %d",
							workers, id, got.Labels[id], want.Labels[id])
					}
				}
				if !bytes.Equal(blifBytes(t, got.Mapped), wantBLIF) {
					t.Errorf("workers=%d: mapped netlist differs from sequential", workers)
				}
			}
		})
	}
}

// TestFeasibleParallelMatchesSequential covers the single-probe entry point
// across feasible and infeasible targets.
func TestFeasibleParallelMatchesSequential(t *testing.T) {
	fenceGoroutines(t)
	c := fsmCircuit(4, 8, 4)()
	opts := DefaultOptions()
	if !c.IsKBounded(opts.K) {
		var err error
		if c, err = decomp.KBound(c, opts.K); err != nil {
			t.Fatal(err)
		}
	}
	for phi := 1; phi <= 4; phi++ {
		opts.Workers = 1
		want, _, err := Feasible(c, phi, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = 4
		got, _, err := Feasible(c, phi, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("phi=%d: parallel verdict %v, sequential %v", phi, got, want)
		}
	}
}

// TestSchedulerStressRandom hammers the dataflow scheduler (run under -race
// via the CI race job): randomized FSM circuits, probes across the
// feasibility boundary, worker counts {2, 8, GOMAXPROCS} and both TaskGrain
// extremes, each checked for a verdict identical to the sequential probe
// and — on feasible probes — bit-identical converged labels. Infeasible
// probes abort mid-iteration, so their intermediate labels legitimately
// depend on scheduling; only their verdict is pinned.
func TestSchedulerStressRandom(t *testing.T) {
	fenceGoroutines(t)
	workerPools := []int{2, 8, runtime.GOMAXPROCS(0)}
	grains := []int{1, 64}
	seeds := []int64{11, 12, 13, 14}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("fsm_s%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c := bench.FSM(rng, fmt.Sprintf("stress_s%d", seed), bench.FSMSpec{
				StateBits: 6, Inputs: 4, Outputs: 3, Cubes: 4, Span: 5,
			})
			base := DefaultOptions()
			if !c.IsKBounded(base.K) {
				var err error
				if c, err = decomp.KBound(c, base.K); err != nil {
					t.Fatal(err)
				}
			}
			// One cache and counter set per circuit: the cache is keyed on
			// full Decompose inputs, so sharing it across configurations
			// cannot change any result.
			conc := &stats.Concurrency{}
			cache := newDecompCache()
			probe := func(phi, workers, grain int) (bool, []int) {
				opts := base
				opts.Workers = workers
				opts.TaskGrain = grain
				opts = opts.withDefaults()
				s := newState(c, phi, opts)
				s.attach(cache, conc, nil)
				ok, err := s.run()
				if err != nil {
					t.Fatalf("phi=%d workers=%d grain=%d: unexpected run error: %v", phi, workers, grain, err)
				}
				return ok, s.labels
			}
			for phi := 1; phi <= 4; phi++ {
				wantOK, wantLabels := probe(phi, 1, 0)
				for _, workers := range workerPools {
					for _, grain := range grains {
						gotOK, gotLabels := probe(phi, workers, grain)
						if gotOK != wantOK {
							t.Fatalf("phi=%d workers=%d grain=%d: verdict %v, sequential %v",
								phi, workers, grain, gotOK, wantOK)
						}
						if !gotOK {
							continue
						}
						for id := range wantLabels {
							if gotLabels[id] != wantLabels[id] {
								t.Fatalf("phi=%d workers=%d grain=%d: label[%d] = %d, sequential %d",
									phi, workers, grain, id, gotLabels[id], wantLabels[id])
							}
						}
					}
				}
			}
		})
	}
}

// TestDecompCacheConcurrentStress hammers the sharded decomposition cache
// from many goroutines with overlapping keys (run under -race via the CI
// race job). Keys mix distinct functions, depth budgets and priority orders;
// values mix real decomposition trees and cached failures (nil). After the
// storm every key must be present, and the counters must account for every
// lookup exactly once.
func TestDecompCacheConcurrentStress(t *testing.T) {
	conc := &stats.Concurrency{}
	cache := newDecompCache()

	type entry struct {
		key string
		val decompEntry
	}
	var entries []entry
	prios := [][]int{{0, 1, 2, 3, 4, 5}, {5, 4, 3, 2, 1, 0}, {2, 0, 3, 1, 5, 4}}
	for nvar := 4; nvar <= 6; nvar++ {
		for fi, fn := range []*logic.TT{logic.AndAll(nvar), logic.XorAll(nvar), logic.OrAll(nvar)} {
			for depth := 1; depth <= 3; depth++ {
				for pi, prio := range prios {
					p := prio[:nvar]
					var tree *decomp.Tree
					if (fi+depth+pi)%2 == 0 {
						tree, _ = decomp.Decompose(fn, 3, depth+1, p)
					}
					entries = append(entries, entry{decompKey(3, depth, p, fn, decomp.Effort{}), decompEntry{tree: tree}})
				}
			}
		}
	}

	const (
		goroutines = 16
		rounds     = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				e := entries[(g*rounds+r)%len(entries)]
				if got, ok := cache.lookup(e.key, conc); ok {
					if got.tree != nil && len(got.tree.Nodes) == 0 {
						t.Errorf("key %q: corrupt cached tree", e.key)
						return
					}
				} else {
					cache.store(e.key, e.val)
				}
			}
		}(g)
	}
	wg.Wait()

	for _, e := range entries {
		if _, ok := cache.lookup(e.key, conc); !ok {
			t.Errorf("key %q missing after stress", e.key)
		}
	}
	snap := conc.Snapshot()
	lookups := goroutines*rounds + len(entries)
	if snap.CacheHits+snap.CacheMisses != lookups {
		t.Errorf("hits %d + misses %d != lookups %d",
			snap.CacheHits, snap.CacheMisses, lookups)
	}
	if snap.CacheMisses < len(entries) {
		t.Errorf("misses %d cannot be below distinct keys %d", snap.CacheMisses, len(entries))
	}
}
