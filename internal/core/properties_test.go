package core

import (
	"math/rand"
	"testing"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// TestConvergedLabelInvariant: at convergence every gate's label lies in
// {L(v), L(v)+1} (a label outside that band would mean the fixpoint is
// inconsistent), and labels stay within the sound upper bound n+2.
func TestConvergedLabelInvariant(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomSequential(rng, 15+rng.Intn(20), 5)
		if c.Check() != nil {
			continue
		}
		for phi := 1; phi <= 4; phi++ {
			for _, opts := range []Options{turboMapOpts(), turboSYNOpts()} {
				s := newState(c, phi, opts)
				if ok, err := s.run(); err != nil || !ok {
					continue
				}
				for _, n := range c.Nodes {
					if n.Kind != netlist.Gate || len(n.Fanins) == 0 {
						continue
					}
					L := s.computeL(n.ID)
					l := s.labels[n.ID]
					lo, hi := L, L+1
					if lo < 1 {
						lo = 1
					}
					if hi < 1 {
						hi = 1 // labels never drop below the initial bound
					}
					if l < lo || l > hi {
						t.Fatalf("seed %d phi %d node %d: label %d outside [%d, %d]",
							seed, phi, n.ID, l, lo, hi)
					}
					if l > c.NumNodes()+2 {
						t.Fatalf("seed %d: label %d beyond sound bound", seed, l)
					}
				}
			}
		}
	}
}

// TestTurboSYNNeverWorseThanTurboMapQuick: decomposition only enlarges the
// solution space.
func TestTurboSYNNeverWorseThanTurboMapQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end sweep; skipped in -short")
	}
	for seed := int64(50); seed < 70; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomSequential(rng, 10+rng.Intn(25), 5)
		if c.Check() != nil {
			continue
		}
		for phi := 1; phi <= 4; phi++ {
			okTM, _, err := Feasible(c, phi, turboMapOpts())
			if err != nil {
				t.Fatal(err)
			}
			okTS, _, err := Feasible(c, phi, turboSYNOpts())
			if err != nil {
				t.Fatal(err)
			}
			if okTM && !okTS {
				t.Fatalf("seed %d phi %d: TurboMap feasible but TurboSYN not", seed, phi)
			}
		}
	}
}

// TestNonPipelinedRespectsOutputs: the clock-period objective must reject
// targets whose critical I/O path cannot be met, while the ratio objective
// accepts them.
func TestNonPipelinedRespectsOutputs(t *testing.T) {
	// 8 chained 2-input ANDs with fresh PIs: period 8 at K=2 collapses to
	// LUT depth 7 (each LUT eats one gate + its PI)... compute both
	// objectives and check the ordering instead of absolute values.
	c := netlist.NewCircuit("iochain")
	prev := c.AddPI("p0")
	g := -1
	for i := 1; i <= 8; i++ {
		pi := c.AddPI(string(rune('a' + i)))
		src := netlist.Fanin{From: prev}
		if g >= 0 {
			src = netlist.Fanin{From: g}
		}
		g = c.AddGate("", logic.AndAll(2), src, netlist.Fanin{From: pi})
	}
	c.AddPO("z", g, 0)
	opts := turboMapOpts()
	opts.K = 3
	opts.Pipelined = false
	period, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Pipelined = true
	ratio, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ratio.Phi != 1 {
		t.Fatalf("acyclic circuit must have ratio 1 (pipelining), got %d", ratio.Phi)
	}
	if period.Phi <= ratio.Phi {
		t.Fatalf("clock-period objective (%d) must exceed the loop bound (%d) on an I/O chain",
			period.Phi, ratio.Phi)
	}
	// And the non-pipelined mapping must honor the PO condition.
	ok, _, err := Feasible(c, period.Phi-1, opts2NonPipelined(opts))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("one below the optimum must be infeasible")
	}
}

func opts2NonPipelined(o Options) Options {
	o.Pipelined = false
	return o
}

// TestMaxExpandConservative: tiny expansion caps may worsen phi but never
// produce invalid results.
func TestMaxExpandConservative(t *testing.T) {
	c := loop6(t)
	small := turboSYNOpts()
	small.MaxExpand = 12 // absurdly small
	res, err := Minimize(c, small)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Minimize(c, turboSYNOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Phi < full.Phi {
		t.Fatalf("capped expansion cannot beat the full one: %d < %d", res.Phi, full.Phi)
	}
	if err := res.Mapped.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestLowDepthMonotoneStructural: for the structural algorithm (TurboMap),
// deeper candidate expansion only adds cuts, so phi is non-increasing in
// LowDepth. (With decomposition the min cut itself changes and the property
// need not hold pointwise, so TurboSYN is excluded.)
func TestLowDepthMonotoneStructural(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end sweep; skipped in -short")
	}
	for seed := int64(100); seed < 112; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomSequential(rng, 20+rng.Intn(20), 5)
		if c.Check() != nil {
			continue
		}
		prevPhi := 1 << 20
		for _, low := range []int{-1, 3, 6} { // increasing expansion depth
			o := turboMapOpts()
			o.LowDepth = low
			res, err := Minimize(c, o)
			if err != nil {
				t.Fatal(err)
			}
			if res.Phi > prevPhi {
				t.Fatalf("seed %d: LowDepth=%d worsened phi: %d > %d",
					seed, low, res.Phi, prevPhi)
			}
			prevPhi = res.Phi
		}
	}
}
