package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"turbosyn/internal/decomp"
	"turbosyn/internal/faultinject"
	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// faultWorkerPools are the worker counts every injection scenario runs
// under; 1 exercises the sequential path's containment, 8 the dataflow
// scheduler's. Injection plans are process-global, so none of these tests
// may call t.Parallel.
var faultWorkerPools = []int{1, 2, 8}

// fenceGoroutines fails the test if goroutines created during it outlive it.
// The engine's containment contract is that every abort path — cancellation,
// Strict budgets, contained panics — joins all workers, probes and guard
// watchers before the public API returns; a leak here means an abort path
// returned early. The deadline absorbs runtime-internal goroutines (GC,
// timer) that settle asynchronously.
func fenceGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after", before, n)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// faultCircuit is the shared injection workload: an FSM big enough that
// every injection point (cut checks, sweeps, decomposition attempts,
// scheduler tasks) is hit many times per run.
func faultCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := fsmCircuit(2, 7, 4)()
	if !c.IsKBounded(5) {
		var err error
		if c, err = decomp.KBound(c, 5); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestInjectedPanicContained: a panic at the Nth cut check — deep inside a
// worker's label kernel — must surface as a structured *InternalError whose
// cause unwraps to the injected fault, with no goroutine leaked and no
// partial result returned, for every worker count.
func TestInjectedPanicContained(t *testing.T) {
	c := faultCircuit(t)
	for _, workers := range faultWorkerPools {
		for _, n := range []int64{1, 50, 1000} {
			t.Run(fmt.Sprintf("j%d_n%d", workers, n), func(t *testing.T) {
				fenceGoroutines(t)
				plan, off := faultinject.Activate(faultinject.Config{PanicAtCutCheck: n})
				defer off()
				opts := DefaultOptions()
				opts.Workers = workers
				res, err := Minimize(c, opts)
				if plan.Fired(faultinject.KindPanicCutCheck) == 0 {
					t.Fatalf("fault never fired (only %d cut checks)",
						plan.Hits(faultinject.KindPanicCutCheck))
				}
				if err == nil {
					t.Fatal("contained panic did not surface as an error")
				}
				if res != nil {
					t.Fatal("non-nil result alongside a panic error")
				}
				var ie *InternalError
				if !errors.As(err, &ie) {
					t.Fatalf("error is not an *InternalError: %v", err)
				}
				if ie.Phase == "" {
					t.Error("InternalError.Phase not filled at the API boundary")
				}
				if len(ie.Stack) == 0 {
					t.Error("InternalError.Stack not captured")
				}
				var inj *faultinject.Injected
				if !errors.As(err, &inj) {
					t.Fatalf("cause does not unwrap to the injected fault: %v", err)
				}
				if inj.Kind != faultinject.KindPanicCutCheck || inj.N != n {
					t.Errorf("wrong fault surfaced: %+v", inj)
				}
			})
		}
	}
}

// TestInjectedCancelMidSweep: cancelling the context from inside a sweep
// checkpoint must abort the run with a *CancelError that wraps
// context.Canceled, for every worker count.
func TestInjectedCancelMidSweep(t *testing.T) {
	c := faultCircuit(t)
	for _, workers := range faultWorkerPools {
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			fenceGoroutines(t)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			plan, off := faultinject.Activate(faultinject.Config{
				CancelAtSweep: 3, OnCancel: cancel,
			})
			defer off()
			opts := DefaultOptions()
			opts.Workers = workers
			res, err := MinimizeContext(ctx, c, opts)
			if plan.Fired(faultinject.KindCancelSweep) == 0 {
				t.Fatalf("cancel point never fired (only %d sweeps)",
					plan.Hits(faultinject.KindCancelSweep))
			}
			if err == nil {
				t.Fatal("cancelled run returned no error")
			}
			if res != nil {
				t.Fatal("non-nil result alongside a cancellation error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error does not wrap context.Canceled: %v", err)
			}
			var ce *CancelError
			if !errors.As(err, &ce) {
				t.Fatalf("error is not a *CancelError: %v", err)
			}
			if ce.Phase == "" {
				t.Error("CancelError.Phase empty")
			}
		})
	}
}

// TestInjectedBudgetExhaustion: forced decomposition-budget exhaustion on
// every node degrades gracefully by default — counted in Stats.Degradations,
// mapping still valid — and aborts with a *BudgetError under Strict.
func TestInjectedBudgetExhaustion(t *testing.T) {
	c := faultCircuit(t)
	for _, workers := range faultWorkerPools {
		t.Run(fmt.Sprintf("graceful_j%d", workers), func(t *testing.T) {
			fenceGoroutines(t)
			plan, off := faultinject.Activate(faultinject.Config{
				ExhaustBudgetEnabled: true, ExhaustBudgetNode: faultinject.AnyNode,
			})
			defer off()
			opts := DefaultOptions()
			opts.Workers = workers
			res, err := Minimize(c, opts)
			if err != nil {
				t.Fatalf("graceful degradation must not error: %v", err)
			}
			if plan.Fired(faultinject.KindExhaustBudget) == 0 {
				t.Skip("no decomposition attempted; nothing to degrade")
			}
			if res.Stats.Degradations == 0 {
				t.Error("budget exhaustion not counted in Stats.Degradations")
			}
			if err := res.Mapped.Check(); err != nil {
				t.Errorf("degraded mapping violates invariants: %v", err)
			}
			if !res.Mapped.IsKBounded(opts.K) {
				t.Error("degraded mapping not K-bounded")
			}
		})
		t.Run(fmt.Sprintf("strict_j%d", workers), func(t *testing.T) {
			fenceGoroutines(t)
			_, off := faultinject.Activate(faultinject.Config{
				ExhaustBudgetEnabled: true, ExhaustBudgetNode: faultinject.AnyNode,
			})
			defer off()
			opts := DefaultOptions()
			opts.Workers = workers
			opts.Strict = true
			res, err := Minimize(c, opts)
			if err == nil {
				t.Fatal("Strict budget exhaustion must error")
			}
			if res != nil {
				t.Fatal("non-nil result alongside a Strict budget error")
			}
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("error is not a *BudgetError: %v", err)
			}
			if be.Resource != "injected" {
				t.Errorf("Resource = %q, want \"injected\"", be.Resource)
			}
		})
	}
}

// TestInjectedSlowWorker: pathological per-task delays reorder the dataflow
// scheduler aggressively but must not change any result — the determinism
// contract holds under timing chaos.
func TestInjectedSlowWorker(t *testing.T) {
	c := faultCircuit(t)
	opts := DefaultOptions()
	opts.Workers = 1
	want, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantBLIF := blifBytes(t, want.Mapped)

	fenceGoroutines(t)
	_, off := faultinject.Activate(faultinject.Config{
		SlowEveryNthTask: 2, SlowDelay: 200 * time.Microsecond,
	})
	defer off()
	opts.Workers = 8
	got, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phi != want.Phi || got.LUTs != want.LUTs {
		t.Fatalf("slow workers changed the result: phi %d/%d, LUTs %d/%d",
			got.Phi, want.Phi, got.LUTs, want.LUTs)
	}
	if !bytes.Equal(blifBytes(t, got.Mapped), wantBLIF) {
		t.Error("slow workers changed the mapped netlist")
	}
}

// loop6mix is loop6 with alternating AND/OR gates: its loop cone function is
// non-associative, so resynthesis cannot take the balanced-tree fast path
// and must run the budgeted Roth-Karp bound-set search.
func loop6mix(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("loop6mix")
	xs := make([]int, 7)
	for i := 1; i <= 6; i++ {
		xs[i] = c.AddPI(string(rune('a' + i - 1)))
	}
	g1 := c.AddGate("g1", logic.AndAll(2),
		netlist.Fanin{From: xs[1]}, netlist.Fanin{From: xs[1]})
	prev := g1
	for i := 2; i <= 6; i++ {
		fn := logic.AndAll(2)
		if i%2 == 0 {
			fn = logic.OrAll(2)
		}
		prev = c.AddGate("g"+string(rune('0'+i)), fn,
			netlist.Fanin{From: prev}, netlist.Fanin{From: xs[i]})
	}
	c.Nodes[g1].Fanins[1] = netlist.Fanin{From: prev, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("z", prev, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRealBudgetDegradation exercises the genuine budget levers (not the
// injected ones): a 1-node OBDD ceiling makes every bound-set pre-screen
// overflow, so TurboSYN degrades to structural cuts on every resynthesis
// attempt that reaches the Roth-Karp search — Degradations counted, mapping
// still valid and no better than the starved search allows.
func TestRealBudgetDegradation(t *testing.T) {
	c := loop6mix(t)
	opts := turboSYNOpts()
	base, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.DecompAttempts == 0 {
		t.Fatal("loop6mix must exercise the decomposition search unbudgeted")
	}

	opts.BDDNodeBudget = 1
	res, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degradations == 0 {
		t.Fatal("1-node BDD budget should degrade the bound-set search")
	}
	if err := res.Mapped.Check(); err != nil {
		t.Fatalf("degraded mapping violates invariants: %v", err)
	}
	if res.Phi < base.Phi {
		t.Errorf("starved search beat the full one: phi %d < %d", res.Phi, base.Phi)
	}

	opts.Strict = true
	if _, err := Minimize(c, opts); err == nil {
		t.Fatal("Strict mode must surface the exhausted BDD budget")
	} else {
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("error is not a *BudgetError: %v", err)
		}
		if be.Resource != "bdd-nodes" {
			t.Errorf("Resource = %q, want \"bdd-nodes\"", be.Resource)
		}
	}

	// The candidate-allowance lever: a 1-candidate cap must also truncate
	// (the search needs more than one bound set on this cone).
	opts = turboSYNOpts()
	opts.RothKarpBudget = 1
	res, err = Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degradations == 0 {
		t.Error("1-candidate Roth-Karp budget should degrade the search")
	}
}

// TestGenerousBudgetsBitIdentical: budgets that never trip must leave the
// result bit-identical to an unbudgeted run — the degradation machinery may
// not perturb untripped paths.
func TestGenerousBudgetsBitIdentical(t *testing.T) {
	c := faultCircuit(t)
	opts := DefaultOptions()
	want, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.BDDNodeBudget = 1 << 30
	opts.RothKarpBudget = 1 << 30
	opts.ArenaByteBudget = 1 << 40
	got, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Degradations != 0 {
		t.Fatalf("generous budgets tripped %d times", got.Stats.Degradations)
	}
	if got.Phi != want.Phi || got.LUTs != want.LUTs {
		t.Fatalf("budgets changed the result: phi %d/%d, LUTs %d/%d",
			got.Phi, want.Phi, got.LUTs, want.LUTs)
	}
	if !bytes.Equal(blifBytes(t, got.Mapped), blifBytes(t, want.Mapped)) {
		t.Error("generous budgets changed the mapped netlist")
	}
}

// TestRandomizedChaos replays seeded random injection plans (panic point +
// slow workers) against the parallel engine: every repetition must end in
// either a clean result or a structured error that unwraps to the injected
// fault — never a hang, leak or unstructured crash.
func TestRandomizedChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep; skipped in -short")
	}
	c := faultCircuit(t)
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fenceGoroutines(t)
			plan, off := faultinject.Activate(faultinject.RandomizedConfig(seed, 20000))
			defer off()
			opts := DefaultOptions()
			opts.Workers = 8
			res, err := Minimize(c, opts)
			switch {
			case err == nil:
				// The panic point lay beyond this run's cut checks; the run
				// must then be fully intact.
				if plan.Fired(faultinject.KindPanicCutCheck) != 0 {
					t.Fatal("fault fired but no error surfaced")
				}
				if cerr := res.Mapped.Check(); cerr != nil {
					t.Fatalf("clean run produced invalid mapping: %v", cerr)
				}
			default:
				var inj *faultinject.Injected
				if !errors.As(err, &inj) {
					t.Fatalf("chaos error is not the injected fault: %v", err)
				}
			}
		})
	}
}

// TestCancelBeforeStart: an already-expired context must abort before any
// label work happens.
func TestCancelBeforeStart(t *testing.T) {
	fenceGoroutines(t)
	c := faultCircuit(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MinimizeContext(ctx, c, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *CancelError: %v", err)
	}
	if ce.BestPhi != -1 {
		t.Errorf("BestPhi = %d before any probe, want -1", ce.BestPhi)
	}
}

// TestFeasibleContextCancel covers the single-probe entry point's abort path.
func TestFeasibleContextCancel(t *testing.T) {
	fenceGoroutines(t)
	c := faultCircuit(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, off := faultinject.Activate(faultinject.Config{
		CancelAtSweep: 2, OnCancel: cancel,
	})
	defer off()
	_, _, err := FeasibleContext(ctx, c, 1, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
