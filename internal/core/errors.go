package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// CancelError reports a run aborted by context cancellation or deadline
// expiry. It wraps the context's error (errors.Is sees context.Canceled /
// context.DeadlineExceeded through it) and carries the phase that observed
// the abort, the best feasible phi found before it (-1 when none), and the
// partial work statistics accumulated so far.
type CancelError struct {
	// Phase is the pipeline phase that observed the cancellation:
	// "turbomap-ub", "search", "map" or "probe".
	Phase string
	// BestPhi is the smallest feasible target proven before the abort, -1
	// when no probe had succeeded yet.
	BestPhi int
	// Stats is the partial work performed before the abort.
	Stats Stats
	// Err is the underlying context error.
	Err error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("core: synthesis aborted during %s: %v", e.Phase, e.Err)
}

func (e *CancelError) Unwrap() error { return e.Err }

// InternalError is a contained panic: a worker goroutine, speculative probe
// or pipeline phase panicked, the panic was recovered at the containment
// boundary, and the run shut down cleanly. Op names the subsystem, Comp the
// SCC component and Node the circuit node being processed (-1 when
// unknown), and Value carries the recovered panic value (for injected
// faults, a *faultinject.Injected).
type InternalError struct {
	Op    string // subsystem: "labels", "scheduler", "probe", "minimize", "map"
	Phase string // pipeline phase, filled at the public API boundary
	Comp  int    // SCC component id, -1 unknown
	Node  int    // circuit node id, -1 unknown
	Value any    // recovered panic value
	Stack []byte // stack captured at the recovery point
}

func (e *InternalError) Error() string {
	phase := e.Phase
	if phase == "" {
		phase = "?"
	}
	return fmt.Sprintf("core: internal error in %s (phase %s, component %d, node %d): %v",
		e.Op, phase, e.Comp, e.Node, e.Value)
}

// Unwrap exposes a panic value that was itself an error (e.g. an injected
// fault), so errors.Is/As reach through.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// newInternalError converts a recovered panic value into an InternalError,
// capturing the stack at the recovery point.
func newInternalError(r any, op string, comp, node int) *InternalError {
	return &InternalError{Op: op, Comp: comp, Node: node, Value: r, Stack: debug.Stack()}
}

// BudgetError reports a resource budget exhausted under Options.Strict. In
// the default (non-strict) mode exhaustion never errors: the affected node
// degrades to the structural-only feasibility check and the run continues
// (see Stats.Degradations).
type BudgetError struct {
	Resource string // "bdd-nodes", "rothkarp-candidates", "arena-bytes", "injected"
	Node     int    // circuit node whose decision tripped the budget, -1 n/a
	Limit    int    // the configured ceiling
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("core: %s budget (limit %d) exhausted at node %d under Strict mode",
		e.Resource, e.Limit, e.Node)
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsAbort reports whether err is one of the structured run-abort errors
// (*CancelError, *InternalError, *BudgetError) or a bare context error.
// Wrappers use it to pass such errors through untouched so errors.Is/As
// keep working at the public API surface.
func IsAbort(err error) bool {
	var ce *CancelError
	var ie *InternalError
	var be *BudgetError
	return isCtxErr(err) || errors.As(err, &ce) || errors.As(err, &ie) || errors.As(err, &be)
}

// wrapAbort dresses a run-aborting error for the public API: context errors
// become a CancelError carrying phase, best-so-far and partial stats;
// InternalErrors get their phase filled in; everything else passes through.
func wrapAbort(err error, phase string, bestPhi int, st Stats) error {
	if isCtxErr(err) {
		var ce *CancelError
		if errors.As(err, &ce) {
			return err // already wrapped by an inner phase
		}
		return &CancelError{Phase: phase, BestPhi: bestPhi, Stats: st, Err: err}
	}
	var ie *InternalError
	if errors.As(err, &ie) && ie.Phase == "" {
		ie.Phase = phase
	}
	return err
}

// runGuard turns a context into the cheap cancellation flag the label
// engine polls at sweep/probe granularity: one watcher goroutine flips an
// atomic when the context is done, and every checkpoint costs a single
// atomic load instead of a channel select. release stops the watcher; the
// guard must be released before the public API call returns.
type runGuard struct {
	ctx  context.Context
	flag atomic.Bool
	stop chan struct{}
}

// startGuard watches ctx. A nil or never-cancellable context (Background)
// produces a guard with no watcher goroutine.
func startGuard(ctx context.Context) *runGuard {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &runGuard{ctx: ctx}
	if done := ctx.Done(); done != nil {
		if ctx.Err() != nil {
			g.flag.Store(true) // already expired; skip the goroutine
			return g
		}
		g.stop = make(chan struct{})
		go func() {
			select {
			case <-done:
				g.flag.Store(true)
			case <-g.stop:
			}
		}()
	}
	return g
}

// release stops the watcher goroutine. Safe to call once on any guard.
func (g *runGuard) release() {
	if g != nil && g.stop != nil {
		close(g.stop)
	}
}

// cancelled reports whether the guarded context is done (one atomic load).
func (g *runGuard) cancelled() bool { return g != nil && g.flag.Load() }

// err returns the context's error (non-nil once cancelled).
func (g *runGuard) err() error {
	if g == nil {
		return nil
	}
	return g.ctx.Err()
}

// failSet records the first run-aborting error of a probe (budget errors in
// Strict mode, contained panics); later errors are dropped. The set flag is
// an atomic so the hot-path stopped() check stays lock-free.
type failSet struct {
	mu  sync.Mutex
	set atomic.Bool
	err error
}

// fail records err if it is the first; it always flips the set flag.
func (f *failSet) fail(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	f.set.Store(true)
}

// tripped reports whether an error has been recorded (lock-free).
func (f *failSet) tripped() bool { return f.set.Load() }

// get returns the recorded error, nil when none.
func (f *failSet) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// reset clears the set for the next probe of a pooled state. Must not be
// called while the probe that tripped it can still run (the Engine resets
// only states that have been checked back in, after their run joined every
// worker).
func (f *failSet) reset() {
	f.mu.Lock()
	f.err = nil
	f.mu.Unlock()
	f.set.Store(false)
}
