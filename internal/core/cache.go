package core

import (
	"hash/maphash"
	"sort"
	"sync"

	"turbosyn/internal/decomp"
	"turbosyn/internal/decomp/cachelog"
	"turbosyn/internal/obs"
	"turbosyn/internal/stats"
)

// decompCache memoizes decomp.Decompose outcomes behind mutex-striped
// shards, so label workers running in parallel reuse each other's Roth-Karp
// results without serializing on one lock. A nil stored tree records a
// failed decomposition (also worth remembering — the window scans are the
// expensive part either way).
//
// Keys embed everything Decompose depends on — K, the depth budget, the
// bound-set priority order and the NPN-canonical cone function — so a cached
// value always equals what a fresh call would compute. That purity is what
// lets the cache be shared across workers, across feasibility probes, across
// the whole binary search, and (with Options.CacheDir) across runs without
// making results depend on execution order.
const decompCacheShards = 64

// decompEntry is one memoized Decompose outcome: the tree (nil = failure)
// plus whether the search was truncated by an effort budget. The degraded
// flag replays into Stats.Degradations on every hit, so budget accounting
// stays consistent whether the outcome was computed or cached. persisted
// marks entries that arrived from the cross-run log (hit accounting only;
// such entries are never degraded — degraded outcomes are never persisted).
type decompEntry struct {
	tree      *decomp.Tree
	degraded  bool
	persisted bool
}

// A decompCache outlives any single run — the Engine shares one across every
// probe of every run — so it carries no per-run state: hit/miss accounting
// goes to the counter set the caller passes into lookup.
type decompCache struct {
	seed   maphash.Seed
	log    *cachelog.Log // non-nil once openLog succeeded on a CacheDir
	shards [decompCacheShards]struct {
		mu sync.Mutex
		m  map[string]decompEntry
		// dirty lists keys stored since the last flush that the log does not
		// have yet (first store wins; degraded entries are never listed).
		// Drained by closeLog.
		dirty []string
	}
}

func newDecompCache() *decompCache {
	dc := &decompCache{seed: maphash.MakeSeed()}
	for i := range dc.shards {
		dc.shards[i].m = make(map[string]decompEntry)
	}
	return dc
}

func (dc *decompCache) shardFor(key string) int {
	return int(maphash.String(dc.seed, key) % decompCacheShards)
}

// lookup returns the cached outcome (entry.tree nil = cached failure) and
// whether the key was present, charging the hit/miss to the calling run's
// counter set.
func (dc *decompCache) lookup(key string, conc *stats.Concurrency) (decompEntry, bool) {
	sh := &dc.shards[dc.shardFor(key)]
	sh.mu.Lock()
	entry, ok := sh.m[key]
	sh.mu.Unlock()
	if ok {
		conc.AddCacheHit()
		if entry.persisted {
			conc.AddCachePersistedHit()
		}
	} else {
		conc.AddCacheMiss()
	}
	return entry, ok
}

// store records a Decompose outcome (nil tree for failure). Concurrent
// stores for the same key are benign: Decompose is a pure function of the
// key — which embeds the effort budget — so both writers carry structurally
// identical values. When a persistent log is attached, first-seen
// non-degraded outcomes are queued for the shutdown flush; degraded ones
// never are (a truncated search is not worth replaying into runs that may
// carry different budgets in their keys anyway, and persisting them would
// replay their degradation accounting into unrelated runs).
func (dc *decompCache) store(key string, entry decompEntry) {
	sh := &dc.shards[dc.shardFor(key)]
	sh.mu.Lock()
	if _, exists := sh.m[key]; !exists && dc.log != nil && !entry.degraded {
		sh.dirty = append(sh.dirty, key)
	}
	sh.m[key] = entry
	sh.mu.Unlock()
}

// openLog attaches the persistent cross-run log when opts.CacheDir is set:
// it loads every valid entry into the shards (marked persisted) and keeps
// the log handle so closeLog can append this run's new outcomes. Failures
// are never fatal — a missing, corrupt or version-skewed log just means a
// cold cache. Called before any worker runs, on the public API entry path.
func (dc *decompCache) openLog(opts Options) {
	if opts.CacheDir == "" {
		return
	}
	instant := func(n int64, b int64) {
		if opts.Trace != nil {
			opts.Trace.NewRing("cache").Instant(obs.OpCacheLoad, n, b)
		}
	}
	lg, err := cachelog.Open(opts.CacheDir)
	if err != nil {
		if opts.Logger != nil {
			opts.Logger.Warn("decomp cache unavailable", "dir", opts.CacheDir, "err", err)
		}
		instant(0, -1)
		return
	}
	entries, err := lg.Load()
	if err != nil {
		// A real I/O error reading the log: start cold but keep the handle —
		// Append rewrites unreadable logs from scratch.
		if opts.Logger != nil {
			opts.Logger.Warn("decomp cache load failed", "path", lg.Path(), "err", err)
		}
		dc.log = lg
		instant(0, -1)
		return
	}
	loaded := 0
	for _, e := range entries {
		sh := &dc.shards[dc.shardFor(e.Key)]
		sh.mu.Lock()
		if _, ok := sh.m[e.Key]; !ok {
			sh.m[e.Key] = decompEntry{tree: e.Tree, persisted: true}
			loaded++
		}
		sh.mu.Unlock()
	}
	dc.log = lg
	instant(int64(loaded), 0)
	if opts.Logger != nil {
		opts.Logger.Debug("decomp cache loaded", "path", lg.Path(), "entries", loaded)
	}
}

// closeLog appends this run's new non-degraded outcomes to the persistent
// log (no-op without one). Keys are flushed in sorted order, so the bytes a
// given set of outcomes appends are deterministic regardless of worker
// scheduling. Safe to call on every exit path: entries are pure functions of
// their keys, so persisting the partial work of an aborted run is sound.
func (dc *decompCache) closeLog(opts Options) {
	if dc.log == nil {
		return
	}
	var keys []string
	for i := range dc.shards {
		sh := &dc.shards[i]
		sh.mu.Lock()
		keys = append(keys, sh.dirty...)
		sh.dirty = nil
		sh.mu.Unlock()
	}
	sort.Strings(keys)
	entries := make([]cachelog.Entry, 0, len(keys))
	for _, k := range keys {
		sh := &dc.shards[dc.shardFor(k)]
		sh.mu.Lock()
		e := sh.m[k]
		sh.mu.Unlock()
		entries = append(entries, cachelog.Entry{Key: k, Tree: e.tree})
	}
	err := dc.log.Append(entries)
	if opts.Trace != nil {
		b := int64(0)
		if err != nil {
			b = -1
		}
		opts.Trace.NewRing("cache").Instant(obs.OpCacheFlush, int64(len(entries)), b)
	}
	if err != nil {
		if opts.Logger != nil {
			opts.Logger.Warn("decomp cache flush failed", "path", dc.log.Path(), "err", err)
		}
		return
	}
	if opts.Logger != nil {
		opts.Logger.Debug("decomp cache flushed", "path", dc.log.Path(), "entries", len(entries))
	}
}
