package core

import (
	"hash/maphash"
	"sync"

	"turbosyn/internal/decomp"
	"turbosyn/internal/stats"
)

// decompCache memoizes decomp.Decompose outcomes behind mutex-striped
// shards, so label workers running in parallel reuse each other's Roth-Karp
// results without serializing on one lock. A nil stored tree records a
// failed decomposition (also worth remembering — the window scans are the
// expensive part either way).
//
// Keys embed everything Decompose depends on — K, the depth budget, the
// bound-set priority order and the cone function — so a cached value always
// equals what a fresh call would compute. That purity is what lets the cache
// be shared across workers, across feasibility probes and across the whole
// binary search without making results depend on execution order.
const decompCacheShards = 64

// decompEntry is one memoized Decompose outcome: the tree (nil = failure)
// plus whether the search was truncated by an effort budget. The degraded
// flag replays into Stats.Degradations on every hit, so budget accounting
// stays consistent whether the outcome was computed or cached.
type decompEntry struct {
	tree     *decomp.Tree
	degraded bool
}

type decompCache struct {
	conc   *stats.Concurrency
	seed   maphash.Seed
	shards [decompCacheShards]struct {
		mu sync.Mutex
		m  map[string]decompEntry
	}
}

func newDecompCache(conc *stats.Concurrency) *decompCache {
	dc := &decompCache{conc: conc, seed: maphash.MakeSeed()}
	for i := range dc.shards {
		dc.shards[i].m = make(map[string]decompEntry)
	}
	return dc
}

func (dc *decompCache) shardFor(key string) int {
	return int(maphash.String(dc.seed, key) % decompCacheShards)
}

// lookup returns the cached outcome (entry.tree nil = cached failure) and
// whether the key was present.
func (dc *decompCache) lookup(key string) (decompEntry, bool) {
	sh := &dc.shards[dc.shardFor(key)]
	sh.mu.Lock()
	entry, ok := sh.m[key]
	sh.mu.Unlock()
	if ok {
		dc.conc.AddCacheHit()
	} else {
		dc.conc.AddCacheMiss()
	}
	return entry, ok
}

// store records a Decompose outcome (nil tree for failure). Concurrent
// stores for the same key are benign: Decompose is a pure function of the
// key — which embeds the effort budget — so both writers carry structurally
// identical values.
func (dc *decompCache) store(key string, entry decompEntry) {
	sh := &dc.shards[dc.shardFor(key)]
	sh.mu.Lock()
	sh.m[key] = entry
	sh.mu.Unlock()
}
