package core

import (
	"math/rand"
	"testing"

	"turbosyn/internal/netlist"
)

// checkRecords simulates the original circuit and verifies, for every gate
// with a recorded cover, the defining identity of the cover:
//
//	v(t) == tree(u_1(t-w_1), ..., u_m(t-w_m))
//
// for all t >= max(w_j) (before that, register history is zero-initialized
// in both views, so it holds there too; we check from t=0).
func checkRecords(t *testing.T, c *netlist.Circuit, s *state, cycles int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	order := c.CombTopoOrder()
	hist := make([][]bool, c.NumNodes()) // hist[n][t] = output of n at cycle t
	for i := range hist {
		hist[i] = make([]bool, cycles)
	}
	cur := make([]bool, c.NumNodes())
	past := func(n, tt, w int) bool {
		if tt-w < 0 {
			return false
		}
		return hist[n][tt-w]
	}
	for tt := 0; tt < cycles; tt++ {
		for _, pi := range c.PIs {
			cur[pi] = rng.Intn(2) == 1
		}
		for _, id := range order {
			n := c.Nodes[id]
			switch n.Kind {
			case netlist.PI:
			case netlist.PO:
				f := n.Fanins[0]
				if f.Weight == 0 {
					cur[id] = cur[f.From]
				} else {
					cur[id] = past(f.From, tt, f.Weight)
				}
			default:
				var a uint
				for k, f := range n.Fanins {
					var v bool
					if f.Weight == 0 {
						v = cur[f.From]
					} else {
						v = past(f.From, tt, f.Weight)
					}
					if v {
						a |= 1 << uint(k)
					}
				}
				cur[id] = n.Func.Eval(a)
			}
		}
		for id := range cur {
			hist[id][tt] = cur[id]
		}
	}
	for id, rec := range s.recs {
		if rec.tree == nil {
			continue
		}
		// The cover identity holds once every unrolled reference lies at
		// a non-negative time: from the deepest replica of the cut on.
		start := 0
		for _, r := range rec.cut {
			if r.W > start {
				start = r.W
			}
		}
		for tt := start; tt < cycles; tt++ {
			var a uint
			for j, r := range rec.cut {
				var v bool
				if r.W == 0 {
					v = hist[r.Orig][tt]
				} else {
					v = past(r.Orig, tt, r.W)
				}
				if v {
					a |= 1 << uint(j)
				}
			}
			if got, want := rec.tree.Eval(a), hist[id][tt]; got != want {
				t.Errorf("node %d (%q): cover identity fails at t=%d: tree=%v node=%v (cut=%v)",
					id, c.Nodes[id].Name, tt, got, want, rec.cut)
				break
			}
		}
	}
}

func TestRecordIdentitySeed0(t *testing.T) {
	rng := rand.New(rand.NewSource(0))
	c := randomSequential(rng, 10+rng.Intn(30), 5)
	if err := c.Check(); err != nil {
		t.Skip("seed 0 invalid")
	}
	opts := turboSYNOpts()
	s := newState(c, 2, opts)
	if ok, err := s.run(); err != nil || !ok {
		t.Fatalf("phi=2 should be feasible (ok=%v err=%v)", ok, err)
	}
	checkRecords(t, c, s, 200, 42)
}
