package core

import (
	"testing"

	"turbosyn/internal/decomp"
	"turbosyn/internal/netlist"
	"turbosyn/internal/obs"
)

// TestWarmLabelSweepZeroAlloc pins the tentpole property of the scratch
// arenas: once the arena is warm, a full structural label sweep — computeL,
// expansion build, K-cut flow check and label update for every gate —
// performs zero heap allocation. The sweep runs the TurboMap configuration
// (Decompose off); resynthesis attempts and recording passes are documented
// to allocate (cone truth tables, replica lists and cache keys outlive the
// arena) and are pinned only indirectly through the benchmarks.
//
// The property must hold in both observability configurations: with tracing
// off, the obs hooks are single nil checks; with tracing on, every event is a
// slot write into the worker's pre-allocated ring (obs package overhead
// contract), so enabling -trace must not reintroduce allocation either.
func TestWarmLabelSweepZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		rec  *obs.Recorder
	}{
		{"obs-disabled", nil},
		{"obs-enabled", obs.NewRecorder(0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := fsmCircuit(2, 7, 4)()
			opts := DefaultOptions()
			opts.Decompose = false
			opts.Workers = 1
			opts.Trace = tc.rec
			if !c.IsKBounded(opts.K) {
				var err error
				if c, err = decomp.KBound(c, opts.K); err != nil {
					t.Fatal(err)
				}
			}
			s := newState(c, 2, opts)
			if ok, err := s.run(); err != nil || !ok {
				t.Fatalf("phi=2 must be feasible for the suite FSM (ok=%v err=%v)", ok, err)
			}

			var updatable []int
			for _, id := range s.order {
				n := s.c.Nodes[id]
				if n.Kind != netlist.PI && len(n.Fanins) > 0 {
					updatable = append(updatable, id)
				}
			}
			ar := s.arenaFor(0)
			if (ar.ring != nil) != (tc.rec != nil) {
				t.Fatalf("arena ring attached = %v, want %v", ar.ring != nil, tc.rec != nil)
			}
			var st Stats
			sweep := func() {
				// Invalidate the decision cache so every node re-runs the full
				// expand + flow decision instead of short-circuiting.
				for i := range s.decided {
					s.decided[i] = false
					s.lastL[i] = -labelInf
				}
				for _, id := range updatable {
					if s.update(id, false, &st, ar) {
						t.Fatal("labels moved after convergence")
					}
				}
			}
			sweep() // warm the arena to its high-water mark
			if allocs := testing.AllocsPerRun(20, sweep); allocs != 0 {
				t.Fatalf("warm structural label sweep allocates %.1f objects/run, want 0", allocs)
			}
			if st.ExpandBuilds == 0 || st.CutChecks == 0 {
				t.Fatalf("sweep did no decisions (builds=%d, checks=%d)", st.ExpandBuilds, st.CutChecks)
			}
			if tc.rec != nil {
				if events, _ := tc.rec.Totals(); events == 0 {
					t.Fatal("tracing enabled but the sweep recorded no events")
				}
			}
		})
	}
}
