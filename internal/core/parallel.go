package core

import (
	"sync"
	"sync/atomic"

	"turbosyn/internal/faultinject"
)

// runParallel is the dataflow-scheduled variant of run: every component of
// the SCC condensation carries an atomic count of unfinished predecessor
// components, enters a bounded ready queue the moment that count hits zero,
// and is executed by whichever pool worker pulls it — no level barriers
// anywhere. The scheduler preserves exactly the invariant the barriers used
// to provide: a component starts only after its last predecessor finished,
// so every label it can read outside itself is final. Within a component
// the unmodified sequential iteration runs, per-component state is written
// only by the worker owning the component, work counters accumulate into
// per-worker Stats merged after the run, and the
// shared decomposition cache is keyed on full Decompose inputs — which
// together keep the parallel path bit-identical to the sequential one (the
// golden equivalence test enforces this).
//
// Real K-bounded condensations are dominated by long runs of near-singleton
// components; to keep those from paying one queue round-trip each, a worker
// that releases a trivial successor (singleton, acyclic) chains it inline
// until roughly Options.TaskGrain node updates have accumulated, and only
// then returns to the queue. Chaining is pure scheduling: an inline run is
// exactly a push immediately followed by a pop by the same worker.
func (s *state) runParallel() (bool, error) {
	s.conc.SetWorkers(s.workers)
	nc := s.sccs.NumComps()

	// Per-component work summary, precomputed once per circuit in analyze
	// (it is invariant across probes and runs). A component with no
	// updatable member (PIs, constant sources) is final from initialization
	// and completes without dispatch; trivial components are eligible for
	// inline chaining.
	updates := s.an.updates // updatable members per component
	trivial := s.an.trivial
	workCount := s.an.workCount
	if workCount == 0 {
		return s.finishRun(s.checkOutputs())
	}
	workers := s.workers
	if workers > workCount {
		workers = workCount
	}
	if workers <= 1 {
		// A single worker's dataflow order is the topological sweep; skip
		// the queue machinery entirely.
		ar := s.arenaFor(0)
		for _, comp := range s.sccs.Order {
			if s.safeRunComp(comp, &s.stats, ar) != compConverged {
				return s.finishRun(false)
			}
		}
		return s.finishRun(s.checkOutputs())
	}

	// Record what the retired level-synchronized scheduler would have cost
	// on this condensation: one barrier wait between consecutive levels
	// that carry schedulable work.
	s.conc.AddBarriersEliminated(s.an.workLevels - 1)

	// Scheduler bookkeeping lives on the pooled state (pendingBuf,
	// compDoneBuf): the condensation of a 100k-gate netlist has on the order
	// of the gate count in components, so allocating these per probe
	// dominated probe setup at that scale. Both are fully re-initialized
	// here; per-worker Stats accumulators are worker-pool-sized (small) and
	// stay per-run.
	indeg := s.an.indeg
	pending := s.pendingBuf
	for comp, deg := range indeg {
		pending[comp].Store(int32(deg))
	}
	for comp := range s.compDoneBuf {
		s.compDoneBuf[comp].Store(false)
	}
	s.compDone = s.compDoneBuf
	workerStats := make([]Stats, workers)
	var (
		aborted   atomic.Bool
		remaining atomic.Int64
		busy      atomic.Int64
	)
	remaining.Store(int64(nc))
	// Bounded ready queue: at most one slot per schedulable component, so
	// enqueues never block and the close below cannot race a send.
	ready := make(chan int, workCount)
	// closeReady shuts the queue exactly once: normally when the last
	// component completes, exceptionally from a worker's top-level panic
	// recovery (where the component's bookkeeping is unrecoverable and the
	// only safe move is to stop dispatching and let the pool drain).
	var closeOnce sync.Once
	closeReady := func() { closeOnce.Do(func() { close(ready) }) }

	// finish marks comp complete and releases its successors. Newly-ready
	// components with no work complete on the spot (cascading); at most one
	// trivial successor is kept back for inline chaining when the worker's
	// grain budget allows; everything else enters the ready queue. Returns
	// the inline component, or -1. When the last component completes, the
	// queue is closed: every enqueue of a component happens before that
	// component's own completion, so no send can follow the close.
	finish := func(comp int, wantInline bool) int {
		next := -1
		stack := [...]int{comp}
		cascade := stack[:1:1]
		for len(cascade) > 0 {
			c := cascade[len(cascade)-1]
			cascade = cascade[:len(cascade)-1]
			s.compDone[c].Store(true)
			for _, d := range s.sccs.DAG[c] {
				if pending[d].Add(-1) != 0 {
					continue
				}
				switch {
				case updates[d] == 0:
					cascade = append(cascade, d)
				case wantInline && next < 0 && trivial[d]:
					next = d
					s.conc.AddInlineRun()
				default:
					ready <- d
					s.conc.ObserveQueueDepth(len(ready))
				}
			}
			if remaining.Add(-1) == 0 {
				closeReady()
			}
		}
		return next
	}

	runOne := func(comp int, st *Stats, ar *arena) {
		if s.stopped() {
			// A sibling proved phi infeasible, the search cancelled the
			// probe, the context expired or a fatal error was recorded: stop
			// pumping labels, but keep completing components so the queue
			// drains and closes.
			aborted.Store(true)
			return
		}
		out := s.safeRunComp(comp, st, ar)
		if out != compConverged {
			aborted.Store(true)
			if out == compInfeasible {
				s.failed.Store(true)
			}
		}
	}

	// Seed the queue with the DAG roots in topological order before any
	// worker starts. Roots have no predecessors, so no worker can ever
	// release one: seeding from the initial in-degrees is the single
	// dispatch each component gets (seeding from the live pending counters
	// instead would race workers into double-dispatching a component whose
	// predecessors complete mid-seed). No-work roots cascade through finish
	// on the spot; the queue's capacity holds every schedulable component,
	// so the sends cannot block.
	for _, comp := range s.sccs.Order {
		if indeg[comp] != 0 {
			continue
		}
		if updates[comp] == 0 {
			finish(comp, false)
		} else {
			ready <- comp
			s.conc.ObserveQueueDepth(len(ready))
		}
	}
	// Hand every worker its scratch arena before launch: arenaFor grows
	// s.arenas, so it must not run concurrently. Workers are fixed
	// goroutines for the whole run — there are no level boundaries left at
	// which arenas could be re-issued — so arena w is used by exactly one
	// goroutine from the first component to the last.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ar := s.arenaFor(w)
		ws := &workerStats[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Last-resort containment: safeRunComp already recovers panics
			// inside component iteration, so reaching this recover means the
			// scheduler's own bookkeeping (finish, counters) broke mid-flight
			// and this component's completion cannot be trusted. Record the
			// failure and close the queue so the rest of the pool drains and
			// joins instead of waiting for successors that will never become
			// ready. A sibling blocked in a queue send observes the close as
			// a send-on-closed panic and lands in its own recover here.
			defer func() {
				if r := recover(); r != nil {
					ar.poisoned = true
					s.fails.fail(newInternalError(r, "scheduler", -1, -1))
					aborted.Store(true)
					closeReady()
				}
			}()
			for comp := range ready {
				s.conc.ObserveQueueDepth(len(ready))
				s.conc.ObserveBusyWorkers(int(busy.Add(1)))
				grain := 0
				for comp >= 0 {
					s.conc.AddTask()
					faultinject.Delay()
					runOne(comp, ws, ar)
					grain += updates[comp]
					comp = finish(comp, grain < s.opts.TaskGrain)
				}
				busy.Add(-1)
			}
		}()
	}
	wg.Wait()

	// Merge work counters in worker-id order. On feasible runs the totals
	// are schedule-independent regardless of merge order: every component's
	// iteration depends only on its own members and final upstream labels,
	// so its counter contributions are fixed, and Add's integer sums and
	// maxes commute. (On infeasible runs the amount of sibling work done
	// before everyone noticed the failure still depends on timing —
	// unchanged from the earlier per-component accumulators, which this
	// per-worker form replaces to drop the O(components) per-probe
	// allocation that dominated setup at the 100k-component scale.)
	for w := range workerStats {
		s.stats.Add(workerStats[w])
	}
	if aborted.Load() {
		return s.finishRun(false)
	}
	return s.finishRun(s.checkOutputs())
}
