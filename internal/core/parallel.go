package core

import (
	"sync"

	"turbosyn/internal/netlist"
)

// runParallel is the level-scheduled variant of run: components of the SCC
// condensation are processed level-by-level (graph.SCCs.Levels), and within
// a level a bounded worker pool iterates whole components concurrently. A
// barrier separates levels, so when a component starts every label it can
// read outside itself is final — exactly the invariant the sequential
// topological sweep provides. Per-component state (labels, decision caches,
// cover records) is written only by the worker owning the component, work
// counters accumulate per task and merge after the barrier, and the shared
// decomposition cache is keyed on full Decompose inputs — which together
// make the parallel path bit-identical to the sequential one (the golden
// equivalence test enforces this).
func (s *state) runParallel() bool {
	s.conc.SetWorkers(s.workers)
	for _, group := range s.sccs.LevelGroups() {
		// Skip components with nothing to iterate without paying pool
		// dispatch; runComp would return immediately anyway.
		tasks := group[:0:0]
		for _, comp := range group {
			for _, id := range s.memberOrder[comp] {
				n := s.c.Nodes[id]
				if n.Kind != netlist.PI && len(n.Fanins) > 0 {
					tasks = append(tasks, comp)
					break
				}
			}
		}
		if len(tasks) == 0 {
			continue
		}
		if len(tasks) == 1 || s.workers == 1 {
			if s.runComp(tasks[0], &s.stats, s.arenaFor(0)) != compConverged {
				return false
			}
			continue
		}
		s.conc.AddLevelWave()
		workers := s.workers
		if workers > len(tasks) {
			workers = len(tasks)
		}
		taskStats := make([]Stats, len(tasks))
		outcomes := make([]compOutcome, len(tasks))
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			// Hand worker w its scratch arena before launch: arenaFor grows
			// s.arenas, so it must not run concurrently. The level barrier
			// below separates any two uses of the same arena.
			ar := s.arenaFor(w)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					s.conc.AddTask()
					out := s.runComp(tasks[i], &taskStats[i], ar)
					outcomes[i] = out
					if out == compInfeasible {
						// Flag siblings so they stop pumping labels that
						// no longer matter; the verdict is already false.
						s.failed.Store(true)
					}
				}
			}()
		}
		for i := range tasks {
			next <- i
		}
		close(next)
		wg.Wait()
		// Merge work counters in task order. Integer sums are
		// order-insensitive, so feasible runs report schedule-independent
		// totals; on infeasible runs the amount of sibling work done
		// before everyone noticed the failure does depend on timing.
		failed := false
		for i := range tasks {
			s.stats.Add(taskStats[i])
			if outcomes[i] != compConverged {
				failed = true
			}
		}
		if failed {
			return false
		}
	}
	return s.checkOutputs()
}
