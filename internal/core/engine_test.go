package core

import (
	"bytes"
	"fmt"
	"testing"
)

// TestEngineReuseBitIdentical pins the engine's core contract: repeated runs
// on one Engine — analysis shared, decomposition cache warm, arenas and
// states pooled — produce results bit-identical to the one-shot package
// functions, for the sequential path and both parallel pool sizes. Labels,
// phi, LUT count and the serialized netlist are all compared, so any scratch
// leaking between runs through the pools shows up here.
func TestEngineReuseBitIdentical(t *testing.T) {
	c := faultCircuit(t)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Workers = workers
			want, err := Minimize(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantBLIF := blifBytes(t, want.Mapped)

			e, err := NewEngine(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			for run := 1; run <= 3; run++ {
				res, err := e.Minimize(opts)
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				if res.Phi != want.Phi || res.LUTs != want.LUTs {
					t.Fatalf("run %d diverged: phi %d/%d, LUTs %d/%d",
						run, res.Phi, want.Phi, res.LUTs, want.LUTs)
				}
				if len(res.Labels) != len(want.Labels) {
					t.Fatalf("run %d: %d labels, want %d", run, len(res.Labels), len(want.Labels))
				}
				for i := range res.Labels {
					if res.Labels[i] != want.Labels[i] {
						t.Fatalf("run %d: label[%d] = %d, want %d",
							run, i, res.Labels[i], want.Labels[i])
					}
				}
				if !bytes.Equal(blifBytes(t, res.Mapped), wantBLIF) {
					t.Fatalf("run %d: mapped netlist diverged from the one-shot path", run)
				}
			}
			ps := e.PoolStats()
			if ps.Reuses == 0 {
				t.Error("three runs on one engine never reused a pooled arena")
			}
			if ps.Discards != 0 {
				t.Errorf("clean runs discarded %d arenas", ps.Discards)
			}
		})
	}
}

// TestEngineFeasibleMatchesOneShot: the engine's single-probe entry point
// agrees with the package-level one on both verdicts, and pools across
// probes.
func TestEngineFeasibleMatchesOneShot(t *testing.T) {
	c := faultCircuit(t)
	opts := DefaultOptions()
	opts.Workers = 2
	e, err := NewEngine(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for phi := 1; phi <= 4; phi++ {
		want, _, err := Feasible(c, phi, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := e.Feasible(phi, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("phi=%d: engine says %v, one-shot says %v", phi, got, want)
		}
	}
	if ps := e.PoolStats(); ps.Reuses == 0 {
		t.Error("four probes on one engine never reused an arena")
	}
}

// TestEngineMapAtRatioMatchesOneShot covers the remaining public entry
// point, including the infeasible-target error path (which poisons nothing:
// an infeasible probe completes normally).
func TestEngineMapAtRatioMatchesOneShot(t *testing.T) {
	c := faultCircuit(t)
	opts := DefaultOptions()
	min, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if min.Phi > 1 {
		if _, err := e.MapAtRatio(min.Phi-1, opts); err == nil {
			t.Fatal("mapping below the optimum must fail")
		}
	}
	want, err := MapAtRatio(c, min.Phi, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.MapAtRatio(min.Phi, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phi != want.Phi || got.LUTs != want.LUTs {
		t.Fatalf("engine map diverged: phi %d/%d, LUTs %d/%d",
			got.Phi, want.Phi, got.LUTs, want.LUTs)
	}
	if !bytes.Equal(blifBytes(t, got.Mapped), blifBytes(t, want.Mapped)) {
		t.Error("engine map netlist diverged from the one-shot path")
	}
	if ps := e.PoolStats(); ps.Discards != 0 {
		t.Errorf("infeasible probe discarded %d arenas; infeasibility is not poison", ps.Discards)
	}
}

// TestArenaPoolBounded: 20 Minimize runs on one engine must converge to a
// steady state — after a short warmup no new arenas are created, nothing is
// discarded, and the pool's retained footprint stops growing. A linear
// growth in Creates or FreeBytes here means arenas leak past the pool.
func TestArenaPoolBounded(t *testing.T) {
	c := faultCircuit(t)
	opts := DefaultOptions()
	opts.Workers = 4
	e, err := NewEngine(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var warm PoolStats
	for run := 1; run <= 20; run++ {
		if _, err := e.Minimize(opts); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if run == 5 {
			warm = e.PoolStats()
		}
	}
	final := e.PoolStats()
	// Transient probe concurrency can still demand a few extra arenas right
	// after warmup; what must not happen is per-run growth.
	if final.Creates > warm.Creates+opts.Workers {
		t.Errorf("arena creates kept growing after warmup: %d -> %d", warm.Creates, final.Creates)
	}
	if final.Discards != 0 {
		t.Errorf("clean runs discarded %d arenas", final.Discards)
	}
	if final.FreeBytes > 2*warm.FreeBytes+1<<20 {
		t.Errorf("pooled bytes grew past bound: warm %d, final %d", warm.FreeBytes, final.FreeBytes)
	}
	if final.Reuses < 15*opts.Workers {
		t.Errorf("pool barely reused: %+v", final)
	}
}

// TestArenaPoolCheckinRules unit-tests the pool's discard policy directly
// (the engine paths can't reach the over-budget branch: the in-run budget
// degradation resets an arena before it ever reaches checkin oversized).
// Poisoned arenas and arenas over the byte budget are dropped; clean ones
// are pooled, and checkout clears the transient per-probe fields.
func TestArenaPoolCheckinRules(t *testing.T) {
	p := &arenaPool{}
	ar, pooled := p.checkout()
	if pooled {
		t.Fatal("empty pool claimed a pooled arena")
	}
	ar.varOf = make([]int, 1024) // retained footprint: 8 KiB
	p.checkin(ar, 0)             // unlimited budget: pooled
	if ps := p.snapshot(); ps.Free != 1 || ps.FreeBytes != ar.bytes() {
		t.Fatalf("clean arena not pooled: %+v", ps)
	}
	ar2, pooled := p.checkout()
	if !pooled || ar2 != ar {
		t.Fatal("checkout did not reuse the pooled arena")
	}
	if ar2.poisoned || ar2.built || ar2.ring != nil || ar2.curNode != -1 {
		t.Fatalf("checkout left transient fields set: %+v", ar2)
	}
	p.checkin(ar2, 100) // 8 KiB retained > 100-byte budget: discarded
	if ps := p.snapshot(); ps.Free != 0 || ps.Discards != 1 {
		t.Fatalf("over-budget arena not discarded: %+v", ps)
	}
	ar3, _ := p.checkout()
	ar3.poisoned = true
	p.checkin(ar3, 0)
	if ps := p.snapshot(); ps.Free != 0 || ps.Discards != 2 {
		t.Fatalf("poisoned arena not discarded: %+v", ps)
	}
}

// TestEngineCloseIdempotent: Close flushes once and tolerates repeats; runs
// after Close still compute.
func TestEngineCloseIdempotent(t *testing.T) {
	c := faultCircuit(t)
	opts := DefaultOptions()
	e, err := NewEngine(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Feasible(2, opts); err != nil {
		t.Fatalf("probe after Close failed: %v", err)
	}
}
