package core

import (
	"bytes"
	"testing"

	"turbosyn/internal/decomp"
)

// TestWarmStartMatchesCold is the correctness contract of the warm-started
// binary search: seeding probes from the labels of the nearest feasible
// probe must not change anything observable — same minimized phi, same
// converged labels, same LUT count, byte-identical mapped netlist. Labels
// are monotone non-increasing in phi, so the seed lower-bounds the probe's
// fixpoint and the monotone iteration lands on the same fixpoint; this test
// pins that argument (and the cold final mapping pass) across the golden
// circuit matrix, sequentially and under the speculative parallel search.
func TestWarmStartMatchesCold(t *testing.T) {
	sawWarmStart := false
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			if err := c.Check(); err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.K = tc.k
			opts.Decompose = tc.decompose
			if !c.IsKBounded(tc.k) {
				var err error
				if c, err = decomp.KBound(c, tc.k); err != nil {
					t.Fatal(err)
				}
			}

			opts.Workers = 1
			opts.NoWarmStart = true
			cold, err := Minimize(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			coldBLIF := blifBytes(t, cold.Mapped)

			pools := []int{1, 4}
			if testing.Short() {
				pools = pools[:1]
			}
			for _, workers := range pools {
				opts.Workers = workers
				opts.NoWarmStart = false
				warm, err := Minimize(c, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if warm.Stats.WarmStarts > 0 {
					sawWarmStart = true
				}
				if warm.Phi != cold.Phi {
					t.Errorf("workers=%d: warm phi %d, cold %d", workers, warm.Phi, cold.Phi)
				}
				if warm.LUTs != cold.LUTs {
					t.Errorf("workers=%d: warm LUTs %d, cold %d", workers, warm.LUTs, cold.LUTs)
				}
				for id := range cold.Labels {
					if warm.Labels[id] != cold.Labels[id] {
						t.Fatalf("workers=%d: warm label[%d] = %d, cold %d",
							workers, id, warm.Labels[id], cold.Labels[id])
					}
				}
				if !bytes.Equal(blifBytes(t, warm.Mapped), coldBLIF) {
					t.Errorf("workers=%d: warm mapped netlist differs from cold", workers)
				}
			}
		})
	}
	if !sawWarmStart {
		t.Error("no golden search ever warm-started a probe; the seeding path is dead")
	}
}

// TestWarmStartReducesSweeps pins the point of warm-starting: on a search
// deep enough to probe below its first feasible phi, the warm search must
// spend no more label iterations than the cold one, and must report the
// probes it seeded.
func TestWarmStartReducesSweeps(t *testing.T) {
	c := fsmCircuit(7, 8, 5)()
	opts := DefaultOptions()
	opts.Workers = 1
	if !c.IsKBounded(opts.K) {
		var err error
		if c, err = decomp.KBound(c, opts.K); err != nil {
			t.Fatal(err)
		}
	}

	opts.NoWarmStart = true
	cold, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.NoWarmStart = false
	warm, err := Minimize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.WarmStarts == 0 {
		t.Fatal("warm search seeded no probe")
	}
	if cold.Stats.WarmStarts != 0 {
		t.Fatalf("cold search reports %d warm starts", cold.Stats.WarmStarts)
	}
	if warm.Stats.Iterations > cold.Stats.Iterations {
		t.Errorf("warm search used %d iterations, cold only %d",
			warm.Stats.Iterations, cold.Stats.Iterations)
	}
}
