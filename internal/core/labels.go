package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"turbosyn/internal/cut"
	"turbosyn/internal/decomp"
	"turbosyn/internal/expand"
	"turbosyn/internal/faultinject"
	"turbosyn/internal/graph"
	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
	"turbosyn/internal/obs"
	"turbosyn/internal/stats"
)

// coverRec is the realization recorded for a gate on the final (consistent)
// pass: the chosen cut of E_v and the LUT tree implementing the cone over
// the cut signals. Structural covers have a single-node tree.
type coverRec struct {
	cut  []Replica
	tree *decomp.Tree
}

// state carries one feasibility probe. States are pooled by the Engine:
// blankState allocates the per-circuit arrays once, resetFor reinitializes
// every per-probe field, and the circuit-invariant analysis (an) is shared
// read-only across every probe of the engine.
type state struct {
	c    *netlist.Circuit
	an   *analysis
	// pool, when non-nil, is the engine's arena pool: arenaFor checks
	// worker arenas out of it instead of creating them, and checkinState
	// returns them when the probe's state goes back to the engine.
	pool   *arenaPool
	opts   Options
	phi    int
	labels []int
	order  []int // combinational topological order (good sweep order)
	sccs   *graph.SCCs
	// levels is the longest-path layering of the condensation. The
	// sequential sweep uses it to bound sccIsolated's predecessor walk (on
	// that path "lower level" does imply "finished"); the dataflow
	// scheduler counts the level waves it no longer waits on
	// (Stats.BarriersEliminated) and gates the walk on compDone instead.
	levels []int

	// Decision cache: a gate is re-decided only when its L changed since
	// the last decision. Decisions also depend on deeper labels, so a
	// cache hit can be stale — which is why convergence is only declared
	// by a full fresh recording pass (see run).
	lastL   []int
	decided []bool
	// dirty is the worklist bit per node (see iterateComp): set when a
	// predecessor's label changed since the node's last decision, cleared as
	// the fast pass drains it. The parallel schedule never races on it:
	// within a run only the worker that owns a node's component writes its
	// bit (raises mark same-component successors only; cross-component
	// staleness is reconciled when the successor component starts), and the
	// warm pre-seeding runs before any worker is spawned.
	dirty []bool
	// warmSeeded marks a probe whose decision cache and dirty set were
	// pre-seeded by seedLabels: components then reconcile their dirty bits
	// against upstream labels when they start instead of seeding fully
	// dirty. Cleared by resetFor.
	warmSeeded bool
	// Decomposition backoff: nodes whose label keeps rising (a diverging
	// or slowly converging loop) skip repeated expensive resynthesis
	// attempts during fast passes; recording passes always attempt, so the
	// final labels and covers never depend on the backoff.
	bumps      []int
	nextDecomp []int
	// cache memoizes Decompose outcomes by cone function, K, depth budget
	// and bound-set priority. Cone functions recur heavily across label
	// iterations; this cache removes the repeated Roth-Karp window scans.
	// It is safe to share across workers and probes (see cache.go).
	cache *decompCache
	conc  *stats.Concurrency
	// rec, when non-nil, is the run's span recorder (Options.Trace). Worker
	// arenas attach their rings from it; nil keeps every hook a single
	// pointer check.
	rec *obs.Recorder

	// workers bounds the per-level worker pool; 1 selects the strictly
	// sequential sweep. Both paths compute bit-identical labels and covers.
	workers int
	// cancel, when non-nil, aborts the probe early (speculative search
	// probes that lost their branch). A cancelled run reports infeasible;
	// the caller must discard its result.
	cancel *atomic.Bool
	// guard, when non-nil, is the context watcher shared by every probe of
	// one public API call: its flag aborts the run like cancel does, but the
	// abort surfaces as the context's error instead of a discarded verdict.
	guard *runGuard
	// fails records the first run-aborting error of this probe: a contained
	// panic (InternalError) or a budget exhaustion under Strict
	// (BudgetError). Once tripped, stopped() drains the run like a
	// cancellation and run() returns the recorded error.
	fails failSet
	// failed flags an infeasible component so sibling workers stop pumping
	// labels that no longer matter. Reset at the top of every run.
	failed atomic.Bool
	// pendingBuf and compDoneBuf are the dataflow scheduler's per-component
	// counters (dependency countdowns and completion flags), allocated once
	// per state and re-initialized at every runParallel entry. At the
	// 100k-gate scale the condensation has ~O(gates) components, so
	// allocating these per probe dominated probe setup; keeping them on the
	// pooled state amortizes them like every other per-circuit array.
	pendingBuf  []atomic.Int32
	compDoneBuf []atomic.Bool
	// compDone, non-nil only while the dataflow scheduler runs, flags
	// components whose labels are final. The PLD walk reads it to restrict
	// itself to finished components: under dataflow scheduling "strictly
	// lower level" no longer implies "finished" (a lower-level non-ancestor
	// may still be running), so the level rule of the sequential path would
	// race. Completion is a superset of the component's ancestors — the
	// only part of the graph the verdict depends on — so the restriction
	// changes nothing observable (see sccIsolated).
	compDone []atomic.Bool

	// arenas holds the per-worker scratch of the label hot path (see
	// arena.go): arena 0 serves the sequential sweep, arena w serves pool
	// worker w. Grown lazily by arenaFor; never shared between concurrently
	// running goroutines.
	arenas []*arena

	recs  []coverRec
	stats Stats
}

const labelInf = int(1) << 28

// newState builds a standalone probe state: a throwaway analysis, a private
// decomposition cache and counter set, no arena pool. The engine paths use
// checkoutState instead; this remains for the direct-probe tests.
func newState(c *netlist.Circuit, phi int, opts Options) *state {
	s := blankState(c, analyze(c), nil)
	s.resetFor(phi, opts)
	s.cache = newDecompCache()
	s.conc = &stats.Concurrency{}
	return s
}

// blankState allocates a probe state's per-circuit arrays and wires in the
// shared analysis and (optionally) the engine's arena pool. The state is not
// usable until resetFor ran and a cache and counter set were attached.
func blankState(c *netlist.Circuit, an *analysis, pool *arenaPool) *state {
	n := c.NumNodes()
	nc := an.sccs.NumComps()
	return &state{
		c:           c,
		an:          an,
		pool:        pool,
		labels:      make([]int, n),
		order:       an.order,
		sccs:        an.sccs,
		levels:      an.levels,
		lastL:       make([]int, n),
		decided:     make([]bool, n),
		dirty:       make([]bool, n),
		bumps:       make([]int, n),
		nextDecomp:  make([]int, n),
		recs:        make([]coverRec, n),
		pendingBuf:  make([]atomic.Int32, nc),
		compDoneBuf: make([]atomic.Bool, nc),
	}
}

// resetFor reinitializes every per-probe field for a probe at phi under
// opts, exactly as a freshly allocated state would start. It deliberately
// resets everything a previous probe could have touched — labels, the
// decision cache, backoff counters, cover records, the fail set — so a
// pooled state is indistinguishable from a new one even after the previous
// probe aborted mid-flight. The cache, counters, cancel flag and guard are
// cleared; the caller attaches its own.
func (s *state) resetFor(phi int, opts Options) {
	s.opts = opts
	s.phi = phi
	s.rec = opts.Trace
	s.workers = opts.workerCount()
	s.cache = nil
	s.conc = nil
	s.cancel = nil
	s.guard = nil
	s.compDone = nil
	s.fails.reset()
	s.failed.Store(false)
	s.stats = Stats{}
	s.warmSeeded = false
	for i := range s.lastL {
		s.lastL[i] = -labelInf
		s.decided[i] = false
		s.dirty[i] = false
		s.bumps[i] = 0
		s.nextDecomp[i] = 0
		s.recs[i] = coverRec{}
	}
	for _, n := range s.c.Nodes {
		switch {
		case n.Kind == netlist.PI:
			s.labels[n.ID] = 0
		case n.Kind == netlist.Gate && len(n.Fanins) == 0:
			s.labels[n.ID] = 0 // constant source, available like a PI
		default:
			s.labels[n.ID] = 1 // the paper's initial lower bound
		}
	}
}

// attach shares a search-wide decomposition cache, concurrency counters and
// cancellation flag with this probe (see Minimize: one cache and one counter
// set span every probe of the binary search).
func (s *state) attach(cache *decompCache, conc *stats.Concurrency, cancel *atomic.Bool) {
	s.cache = cache
	s.conc = conc
	s.cancel = cancel
}

// seedLabels warm-starts this probe from labels converged at seedPhi (a
// phi no smaller than s.phi, by warmUseful's gate). Labels are monotone
// non-increasing in phi, so labels converged at seedPhi are a pointwise
// lower bound on this probe's fixpoint, and the monotone iteration started
// from them reaches the same fixpoint as a cold start, in fewer sweeps (see
// DESIGN.md, "Warm-started probes").
//
// With the dirty-set worklist on, seeding extends the delta discipline
// across probes: only nodes whose fanin max L moves between seedPhi and
// s.phi are marked dirty; every other node is pre-decided at its unchanged
// L — exactly the state an in-run decision whose label did not raise would
// leave behind — so the probe's first sweeps touch a small fraction of the
// circuit. A pre-seeded decision can be stale (a decision depends on phi
// beyond L, through the expansion), but the decision cache is never trusted
// at convergence: the full fresh recording pass remains the only arbiter
// (see iterateComp), so the final labels and covers still match the cold
// fixpoint exactly.
func (s *state) seedLabels(seed []int, seedPhi int) {
	copy(s.labels, seed)
	s.stats.WarmStarts++
	if s.opts.NoWorklist || seedPhi <= 0 {
		return
	}
	for _, n := range s.c.Nodes {
		if n.Kind == netlist.PI || len(n.Fanins) == 0 {
			continue
		}
		Lnew, Lold := -labelInf, -labelInf
		for _, f := range n.Fanins {
			l := s.labels[f.From]
			if x := l - s.phi*f.Weight; x > Lnew {
				Lnew = x
			}
			if x := l - seedPhi*f.Weight; x > Lold {
				Lold = x
			}
		}
		if Lnew != Lold {
			s.dirty[n.ID] = true
			continue
		}
		// POs carry no decisions (update's PO branch is a pure label max),
		// but their lastL feeds the reconcile staleness test like any other
		// node's.
		s.lastL[n.ID] = Lnew
		if n.Kind != netlist.PO {
			s.decided[n.ID] = true
		}
	}
	s.warmSeeded = true
}

// stopped reports whether the probe should abandon work: a sibling
// component proved phi infeasible, the search cancelled this probe, the
// caller's context is done, or a fatal error (contained panic, strict
// budget) was recorded. Every check is one atomic load, so the engine polls
// it at sweep granularity (and every checkpointMask+1 node updates within a
// sweep) without measurable cost.
func (s *state) stopped() bool {
	return s.failed.Load() || s.fails.tripped() ||
		(s.cancel != nil && s.cancel.Load()) || s.guard.cancelled()
}

// checkpointMask batches the intra-sweep cancellation checks: one stopped()
// poll every checkpointMask+1 node updates keeps the worst-case abort
// latency at a few hundred label decisions while making the common-case
// overhead a masked counter test.
const checkpointMask = 255

// abortErr resolves why an aborted run stopped: a recorded fatal error
// wins, then context cancellation; a plain infeasible or speculatively
// cancelled probe has no error.
func (s *state) abortErr() error {
	if err := s.fails.get(); err != nil {
		return err
	}
	if s.guard.cancelled() {
		return s.guard.err()
	}
	return nil
}

// finishRun turns a run verdict into run()'s result, surfacing any abort
// error even when the verdict itself managed to complete.
func (s *state) finishRun(ok bool) (bool, error) {
	if err := s.abortErr(); err != nil {
		return false, err
	}
	return ok, nil
}

// degrade absorbs one resource-budget exhaustion: counted in
// st.Degradations by default (the node falls back to the structural
// feasibility check), fatal under Options.Strict. It reports whether the
// run continues gracefully. Graceful degradations emit a trace instant and
// bump the live counter so progress reports and traces show quality loss as
// it happens.
func (s *state) degrade(st *Stats, ar *arena, resource string, node, limit int) bool {
	if s.opts.Strict {
		s.fails.fail(&BudgetError{Resource: resource, Node: node, Limit: limit})
		return false
	}
	st.Degradations++
	s.conc.AddDegradation()
	if ar.ring != nil {
		ar.ring.Instant(obs.OpDegrade, int64(node), int64(limit))
	}
	return true
}

// computeL returns L(v) = max over fanin edges of l(u) - phi*w(e).
func (s *state) computeL(v int) int {
	L := -labelInf
	for _, f := range s.c.Nodes[v].Fanins {
		if x := s.labels[f.From] - s.phi*f.Weight; x > L {
			L = x
		}
	}
	return L
}

// run performs the label computation. It returns true when phi is feasible
// (labels converged, and for non-pipelined objectives every PO meets phi).
// On success the labels are converged and recs is consistent with them.
// A non-nil error means the run aborted — context cancellation, a budget
// exhausted under Strict, or a contained panic — and the verdict carries no
// information; stats still reflect the partial work done.
//
// With workers > 1 the per-component work is scheduled dataflow-style over
// the condensation (see parallel.go); with workers == 1, or whenever an
// iteration budget demands globally ordered accounting, components run
// strictly sequentially in topological order. Both paths produce identical
// labels, covers and verdicts: a component's computation reads only its own
// members and upstream components, and upstream components are final before
// the component starts in either schedule.
func (s *state) run() (bool, error) {
	defer s.conc.AddProbeFinished()
	s.failed.Store(false)
	if s.workers > 1 && s.opts.IterBudget <= 0 {
		return s.runParallel()
	}
	s.conc.SetWorkers(1)
	ar := s.arenaFor(0)
	for _, comp := range s.sccs.Order {
		if s.safeRunComp(comp, &s.stats, ar) != compConverged {
			return s.finishRun(false)
		}
	}
	return s.finishRun(s.checkOutputs())
}

// checkOutputs enforces the clock-period side condition after convergence.
func (s *state) checkOutputs() bool {
	if !s.opts.Pipelined {
		for _, po := range s.c.POs {
			if s.labels[po] > s.phi {
				return false
			}
		}
	}
	return true
}

// compOutcome is the verdict of one component's label iteration.
type compOutcome int

const (
	// compConverged: labels of the component reached their fixpoint and
	// the recorded covers are consistent with them.
	compConverged compOutcome = iota
	// compInfeasible: the component certifies phi infeasible (positive
	// loop detected, or the conservative stopping rule ran out).
	compInfeasible
	// compCancelled: the probe was abandoned (lost speculation branch, a
	// sibling component already failed, the context was cancelled, or a
	// fatal error was recorded); the verdict carries no information.
	compCancelled
	// compErrored: the component's iteration panicked; the panic was
	// recovered at the containment boundary and recorded as an
	// InternalError in s.fails. The verdict carries no information.
	compErrored
)

// safeRunComp is the panic-containment boundary around one component's
// iteration: a panic anywhere inside the label engine — a bug, or an
// injected fault — is recovered here, recorded as an InternalError naming
// the component and the node being decided, and converted into an abort the
// rest of the run observes through stopped(). The scheduler's bookkeeping
// (finish, pending counters, queue close) therefore always runs, so a
// panicking component can never strand its successors or deadlock the pool.
func (s *state) safeRunComp(comp int, st *Stats, ar *arena) (out compOutcome) {
	defer func() {
		if r := recover(); r != nil {
			// The panic may have interrupted the arena's scratch mid-mutation;
			// poison it so the pool discards it instead of reusing it.
			ar.poisoned = true
			s.fails.fail(newInternalError(r, "labels", comp, ar.curNode))
			out = compErrored
		}
	}()
	return s.runComp(comp, st, ar)
}

// runComp iterates component comp to convergence. st receives the work
// counters; in the sequential schedule it is the state's own stats, in the
// parallel schedule the owning worker's accumulator, merged after the
// run. ar is the calling worker's scratch arena; writes
// touch only the component's members and the arena, so concurrent
// invocations on dependency-free components with distinct arenas are
// disjoint.
func (s *state) runComp(comp int, st *Stats, ar *arena) compOutcome {
	var t0 int64
	if ar.ring != nil {
		t0 = ar.ring.Now()
	}
	iterBefore := st.Iterations
	out := s.iterateComp(comp, st, ar)
	if ar.ring != nil {
		// Close the stage span left open by the sweep, then wrap the whole
		// component run in one span (args: component id, iteration count).
		ar.ring.ClosePhase()
		ar.ring.Span(obs.OpComp, t0, int64(comp), int64(st.Iterations-iterBefore))
		if out == compCancelled {
			ar.ring.Instant(obs.OpCancel, int64(comp), -1)
		}
	}
	b := ar.bytes()
	if b > st.ArenaPeakBytes {
		st.ArenaPeakBytes = b
	}
	s.conc.ObserveArenaBytes(b)
	if lim := s.opts.ArenaByteBudget; lim > 0 && b > lim {
		// The arena outgrew its budget: release the retained scratch back to
		// the allocator. Arenas are pure scratch, so results are unaffected;
		// the worker merely re-grows warm arrays on its next component.
		if s.degrade(st, ar, "arena-bytes", -1, lim) {
			ar.reset()
		}
	}
	return out
}

// iterateComp is runComp's body; runComp wraps it to record the arena
// high-water mark once per component run.
func (s *state) iterateComp(comp int, st *Stats, ar *arena) compOutcome {
	// Sound runaway certificate: in any feasible mapping the needed LUTs
	// number at most the gate count, simple LUT-level paths bound arrivals
	// by that count, and loops contribute nothing positive — so a label
	// beyond NumNodes()+2 certifies a positive loop. This check and the
	// 6n-iteration PLD below together form the fast detection suite that
	// Options.PLD toggles; without it only the conservative per-SCC n^2
	// stopping rule of SeqMapII remains (the paper's 10-50x comparison).
	phase(ar, obs.OpLabel)
	maxLabel := s.c.NumNodes() + 2
	members := s.an.members(comp)
	updatable := s.an.updatable(comp)
	if len(updatable) == 0 {
		return compConverged
	}
	n := len(members)
	// Per-SCC runaway bound: labels inside the component are supported
	// by at most base (the best external support) plus one unit per
	// member along a simple path. Tighter than the global bound, so
	// diverging components stop pumping sooner.
	base := 0
	for _, id := range members {
		for _, f := range s.c.Nodes[id].Fanins {
			if s.sccs.Comp[f.From] != comp {
				if v := s.labels[f.From] - s.phi*f.Weight; v > base {
					base = v
				}
			}
		}
	}
	sccCap := base + n + 2
	if sccCap > maxLabel {
		sccCap = maxLabel
	}
	pldFrom := 6*n + 6 // Theorem 2: isolation is meaningful from 6n on
	capIter := n*n + 4
	if s.opts.PLD && capIter < pldFrom+4 {
		capIter = pldFrom + 4
	}
	// Seed the dirty-set worklist. Cold components mark every updatable
	// member; warm-seeded probes (seedLabels) instead reconcile: a member
	// pre-decided clean may have gone stale through upstream components this
	// run raised since seeding, which the L-vs-lastL test detects exactly —
	// upstream labels are final when a component starts (in both schedules),
	// and only this component's owning worker touches its members' bits, so
	// the reconcile is race-free. From here, fast passes visit only dirty
	// members (every skipped visit would have been a decision-cache no-op:
	// same L, already decided — or a PO max against an unchanged L), which
	// is why labels, covers and every pre-worklist Stats counter are
	// bit-identical to full-membership sweeps. See DESIGN.md §11.
	worklist := !s.opts.NoWorklist
	if worklist {
		if s.warmSeeded {
			for _, id := range updatable {
				if !s.dirty[id] && s.computeL(int(id)) != s.lastL[id] {
					s.dirty[id] = true
				}
			}
		} else {
			for _, id := range updatable {
				s.dirty[id] = true
			}
		}
	}
	ar.curNode = -1
	for iter := 0; iter < capIter; iter++ {
		faultinject.Sweep()
		if s.stopped() {
			return compCancelled
		}
		if s.opts.IterBudget > 0 && st.Iterations >= s.opts.IterBudget {
			return compInfeasible
		}
		st.Iterations++
		s.conc.AddIteration()
		changed := false
		visited := 0
		for _, id32 := range updatable {
			id := int(id32)
			if worklist && !s.dirty[id] {
				continue
			}
			if visited&checkpointMask == checkpointMask && s.stopped() {
				return compCancelled
			}
			visited++
			s.dirty[id] = false
			if s.update(id, false, st, ar) {
				changed = true
				if worklist {
					s.markDirty(id)
				}
			}
		}
		// The live gauges pay a few atomic adds per sweep, not per node —
		// the hot path stays untouched.
		st.SweepNodeVisits += visited
		st.DirtySkips += len(updatable) - visited
		if visited > st.WorklistPeak {
			st.WorklistPeak = visited
		}
		s.conc.AddNodeUpdates(visited)
		s.conc.AddDirtySkips(len(updatable) - visited)
		s.conc.ObserveWorklist(visited)
		if !changed {
			// Recording pass: re-decide everything at the converged
			// labels and keep the covers — the worklist never thins this
			// pass, so convergence is still declared only by a full fresh
			// sweep. A change here means the Gauss-Seidel sweep raced
			// itself, or a warm-seeded decision went stale; keep iterating.
			st.Iterations++
			s.conc.AddIteration()
			for ui, id32 := range updatable {
				if ui&checkpointMask == checkpointMask && s.stopped() {
					return compCancelled
				}
				id := int(id32)
				s.dirty[id] = false
				if s.update(id, true, st, ar) {
					changed = true
					if worklist {
						s.markDirty(id)
					}
				}
			}
			st.SweepNodeVisits += len(updatable)
			s.conc.AddNodeUpdates(len(updatable))
			if !changed {
				return compConverged
			}
		}
		if s.opts.PLD {
			for _, id := range updatable {
				if s.labels[id] > sccCap {
					st.PLDHits++
					return compInfeasible // runaway labels certify a positive loop
				}
			}
			if iter+1 >= pldFrom {
				st.PLDChecks++
				phase(ar, obs.OpPLD)
				isolated := s.sccIsolated(comp, ar)
				phase(ar, obs.OpLabel)
				if isolated {
					st.PLDHits++
					return compInfeasible
				}
			}
		}
	}
	return compInfeasible // conservative stopping rule hit
}

// update re-decides node id's label. record requests cover recording (used
// on the final fresh pass). It reports whether the label changed.
func (s *state) update(id int, record bool, st *Stats, ar *arena) bool {
	ar.curNode = id // attributes a contained panic to the node being decided
	n := s.c.Nodes[id]
	L := s.computeL(id)
	if n.Kind == netlist.PO {
		nl := L
		if nl < 1 {
			nl = 1
		}
		if nl > s.labels[id] {
			s.labels[id] = nl
			return true
		}
		return false
	}
	if !record && s.decided[id] && s.lastL[id] == L {
		return false
	}
	s.decided[id] = true
	s.lastL[id] = L
	newLabel, rec := s.decide(id, L, record, st, ar)
	if record {
		s.recs[id] = rec
	}
	if newLabel > s.labels[id] {
		s.labels[id] = newLabel
		s.bumps[id]++
		return true
	}
	return false
}

// markDirty flags id's same-component successors for a revisit after id's
// label rose. Same-component only, so the bits stay owned by the worker
// running the component; cross-component effects are handled when the
// successor component starts (cold components seed fully dirty, warm ones
// reconcile against the by-then-final upstream labels — see iterateComp).
func (s *state) markDirty(id int) {
	for _, v := range s.an.sameCompSucc(id) {
		s.dirty[v] = true
	}
}

// decide computes the label for gate id given L, optionally producing the
// cover record. The arena serves every probe of the decision from one
// expansion: the structural check builds E_v at bound L, the resynthesis
// probes tighten it in place to L-1, L-2, ... and the L+1 settle re-marks
// it looser — only the flow computation reruns per bound.
func (s *state) decide(id, L int, record bool, st *Stats, ar *arena) (int, coverRec) {
	xopts := expand.Options{LowDepth: s.opts.LowDepth, MaxNodes: s.opts.MaxExpand}
	// Structural K-cut of height <= L?
	st.CutChecks++
	faultinject.CutCheck()
	st.ExpandBuilds++
	phase(ar, obs.OpExpand)
	x, built := ar.xb.Build(s.c, id, s.labels, s.phi, L, xopts)
	ar.built, ar.builtL = built, L
	if built {
		phase(ar, obs.OpFlow)
		res, ok := ar.ca.KCut(x, s.opts.K)
		phase(ar, obs.OpLabel)
		if ok {
			var rec coverRec
			if record {
				rec = s.structuralRec(x, res, ar)
			}
			return L, rec
		}
	} else {
		phase(ar, obs.OpLabel)
	}
	// TurboSYN: resynthesize a wider, lower cut. Fast passes back off on
	// label-pumping nodes (see the field comment); recording passes always
	// attempt.
	if s.opts.Decompose && (record || s.bumps[id] < 8 || L >= s.nextDecomp[id]) {
		if tree, cutReps, ok := s.tryDecompose(id, L, st, ar); ok {
			s.nextDecomp[id] = 0
			return L, coverRec{cut: cutReps, tree: tree}
		}
		step := s.bumps[id] / 2
		if step < 1 {
			step = 1
		}
		s.nextDecomp[id] = L + step
	}
	// Settle for L+1; the direct-fanin cut realizes it: every direct fanin
	// replica has eff <= L+1 by the definition of L, and the input netlist
	// is K-bounded, so the cut below never fails on a well-formed graph.
	var rec coverRec
	if record {
		if ar.built {
			// Reuse whatever region the L build (and any tighter probes)
			// expanded; re-marking it for L+1 keeps every valid cut and the
			// extra depth can only expose better ones.
			st.ExpandReuses++
			x = ar.xb.Loosen(L + 1)
		} else {
			// The expansion at bound L (or a tighter probe) overflowed the
			// node cap; the L+1 region is smaller and may still fit.
			st.ExpandBuilds++
			phase(ar, obs.OpExpand)
			var ok bool
			x, ok = ar.xb.Build(s.c, id, s.labels, s.phi, L+1, xopts)
			if !ok {
				panic("core: cannot expand for the trivial cut")
			}
		}
		phase(ar, obs.OpFlow)
		res, ok := ar.ca.KCut(x, s.opts.K)
		phase(ar, obs.OpLabel)
		if !ok {
			panic("core: the direct-fanin cut must exist at height L+1")
		}
		rec = s.structuralRec(x, res, ar)
	}
	return L + 1, rec
}

// tryDecompose searches cuts of heights L-1, L-2, ... (width <= Cmax) whose
// cone function decomposes into a tree of K-LUTs of depth h+1, realizing
// label L (the paper's sequential functional decomposition).
//
// The probes reuse decide's expansion at bound L: dropping the bound only
// grows the expanded region, so each probe Tightens the arena's builder in
// place instead of re-expanding from scratch.
func (s *state) tryDecompose(id, L int, st *Stats, ar *arena) (*decomp.Tree, []Replica, bool) {
	if !ar.built {
		// The expansion at bound L already overflowed the node cap; every
		// tighter bound expands a superset and fails the same way.
		return nil, nil, false
	}
	if faultinject.BudgetExhausted(id) {
		// Injected budget exhaustion: behave exactly like a real one — the
		// node degrades to the structural feasibility check (or aborts under
		// Strict).
		s.degrade(st, ar, "injected", id, 0)
		return nil, nil, false
	}
	// estats collects the decomposer's effort counters (bound sets actually
	// examined, tier outcomes); observability only, never part of the cache
	// key.
	var estats decomp.EffortStats
	defer func() {
		st.BoundSetsExamined += estats.BoundSetsExamined
		st.RothKarpCalls += estats.RothKarpCalls
		st.ShannonSplits += estats.ShannonSplits
		st.DisjointPeels += estats.DisjointPeels
	}()
	for h := 1; h <= s.opts.MaxH; h++ {
		phase(ar, obs.OpExpand)
		x, ok := ar.xb.Tighten(L - h)
		if !ok {
			// The extension overflowed the node cap mid-relaxation, leaving
			// the region partially extended; flag the expansion unusable so
			// decide's settle path rebuilds instead of re-marking it.
			ar.built = false
			phase(ar, obs.OpLabel)
			return nil, nil, false
		}
		st.ExpandReuses++
		phase(ar, obs.OpFlow)
		res, okCut := ar.ca.MinCut(x, s.opts.Cmax)
		phase(ar, obs.OpDecompose)
		if !okCut {
			phase(ar, obs.OpLabel)
			return nil, nil, false // even Cmax-wide cuts are gone; deeper is worse
		}
		st.DecompAttempts++
		fn, reps := s.coneFunction(x, res, ar)
		// Bound-set priority: earliest effective arrival first, so early
		// signals sink toward the leaves (the paper's FlowSYN ordering).
		prio := make([]int, len(reps))
		for i := range prio {
			prio[i] = i
		}
		eff := func(r Replica) int { return s.labels[r.Orig] - s.phi*r.W }
		sort.SliceStable(prio, func(a, b int) bool { return eff(reps[prio[a]]) < eff(reps[prio[b]]) })
		// Decompose the NPN-canonical form of the cone function, with the
		// priority order mapped through the same transform, and map the
		// resulting tree back through the inverse. One cached canonical tree
		// then serves every input-permuted/negated variant of the class —
		// within a run, across probes, and across runs via the persisted log —
		// and because cached replay and fresh computation are the same pure
		// function of the canonical key, warm results stay bit-identical to
		// cold ones.
		canon, ctr := ar.npnCanon(fn)
		canonPrio := make([]int, len(prio))
		for i, p := range prio {
			canonPrio[i] = ctr.Perm[p]
		}
		effort := decomp.Effort{BDDNodes: s.opts.BDDNodeBudget, MaxBoundSets: s.opts.RothKarpBudget, Stats: &estats}
		key := decompKey(s.opts.K, h+1, canonPrio, canon, effort)
		entry, cached := s.cache.lookup(key, s.conc)
		if cached && !ctr.Identity() {
			s.conc.AddCacheNPNHit()
		}
		if ar.ring != nil {
			if cached {
				ar.ring.Instant(obs.OpCacheHit, int64(id), int64(h))
			} else {
				ar.ring.Instant(obs.OpCacheMiss, int64(id), int64(h))
			}
		}
		if !cached {
			examinedBefore := estats.BoundSetsExamined
			var tDec int64
			if ar.ring != nil {
				tDec = ar.ring.Now()
			}
			tree, ok, degraded := decomp.DecomposeEffort(canon, s.opts.K, h+1, canonPrio, effort)
			if ar.ring != nil {
				// One span per fresh Roth-Karp search (args: node, bound sets
				// examined); cache replays are instants only.
				ar.ring.Span(obs.OpDecompose, tDec, int64(id),
					int64(estats.BoundSetsExamined-examinedBefore))
			}
			if !ok {
				tree = nil
			}
			entry = decompEntry{tree: tree, degraded: degraded}
			s.cache.store(key, entry)
		}
		if entry.degraded {
			// The budget truncated the search (whether computed now or
			// replayed from the cache): the node may settle for a worse
			// cover than the exact search would find. Count it — or abort,
			// under Strict.
			resource, limit := "rothkarp-candidates", s.opts.RothKarpBudget
			if s.opts.RothKarpBudget <= 0 {
				resource, limit = "bdd-nodes", s.opts.BDDNodeBudget
			}
			if !s.degrade(st, ar, resource, id, limit) {
				phase(ar, obs.OpLabel)
				return nil, nil, false
			}
		}
		if entry.tree == nil {
			continue
		}
		st.Decompositions++
		phase(ar, obs.OpLabel)
		return decomp.ApplyNPNToTree(entry.tree, ctr.Inverse()), reps, true
	}
	phase(ar, obs.OpLabel)
	return nil, nil, false
}

// decompKey identifies one DecomposeEffort call. The priority order is part
// of the key: Decompose's window scan is capped, so both the found tree and
// whether one is found at all depend on it. The effort budget is part of
// the key for the same reason — a truncated search and an exact one are
// different computations. Keying on the full input makes the cached value
// equal to a fresh computation, which in turn makes cache sharing across
// workers, probes and runs order-independent.
//
// The key is a compact self-delimiting byte string (callers pass the
// NPN-canonical function, so it doubles as the persisted log's key): K and
// depth-budget bytes, uvarint budgets, length-prefixed priority bytes, then
// the variable count and the table's word bytes.
func decompKey(k, depthBudget int, prio []int, fn *logic.TT, eff decomp.Effort) string {
	b := make([]byte, 0, 16+len(prio)+8*(1+(1<<uint(fn.NumVars()))/64))
	b = append(b, byte(k), byte(depthBudget))
	b = binary.AppendUvarint(b, uint64(eff.BDDNodes))
	b = binary.AppendUvarint(b, uint64(eff.MaxBoundSets))
	b = append(b, byte(len(prio)))
	for _, p := range prio {
		b = append(b, byte(p))
	}
	b = append(b, byte(fn.NumVars()))
	b = fn.AppendWordBytes(b)
	return string(b)
}

// structuralRec converts a structural cut into a cover record: a
// single-node tree computing the cone function over the cut signals.
func (s *state) structuralRec(x *expand.Expanded, res *cut.Result, ar *arena) coverRec {
	fn, reps := s.coneFunction(x, res, ar)
	children := make([]int, len(reps))
	for i := range children {
		children[i] = i
	}
	tree := &decomp.Tree{NumInputs: len(reps)}
	tree.Nodes = append(tree.Nodes, decomp.TreeNode{Func: fn, Children: children})
	return coverRec{cut: reps, tree: tree}
}

// coneFunction computes the cone's Boolean function over the cut signals
// (variable j = cut replica j) and the replica list. The variable and memo
// tables live in the arena, indexed by replica id, and every transient table
// — cut-variable projections, composition intermediates — cycles through the
// arena's truth-table pool; only the replica list and the returned root
// function (cloned out of the pool, since callers retain it past the next
// evaluation) are allocated.
func (s *state) coneFunction(x *expand.Expanded, res *cut.Result, ar *arena) (*logic.TT, []Replica) {
	m := len(res.Cut)
	if m > logic.MaxVars {
		panic(fmt.Sprintf("core: cone with %d inputs", m))
	}
	n := len(x.Nodes)
	if cap(ar.varOf) < n {
		ar.varOf = make([]int, n)
		ar.memo = make([]*logic.TT, n)
	}
	varOf := ar.varOf[:n]
	memo := ar.memo[:n]
	for i := 0; i < n; i++ {
		varOf[i] = -1
		memo[i] = nil
	}
	reps := make([]Replica, m)
	for j, repID := range res.Cut {
		varOf[repID] = j
		reps[j] = Replica{Orig: x.Nodes[repID].Orig, W: x.Nodes[repID].W}
	}
	var eval func(repID int) *logic.TT
	eval = func(repID int) *logic.TT {
		if tt := memo[repID]; tt != nil {
			return tt
		}
		var tt *logic.TT
		if j := varOf[repID]; j >= 0 {
			tt = ar.tt.Get(m).SetVar(j)
			memo[repID] = tt
			return tt
		}
		orig := s.c.Nodes[x.Nodes[repID].Orig]
		children := x.Fanins[repID]
		if len(children) != len(orig.Fanins) {
			panic("core: cone interior replica lacks expanded fanins")
		}
		subs := make([]*logic.TT, len(children))
		for i, ch := range children {
			subs[i] = eval(ch)
		}
		if len(subs) == 0 {
			_, v := orig.Func.IsConst()
			tt = ar.tt.Get(m).SetConst(v)
		} else {
			tt = orig.Func.ComposeBoolPool(subs, &ar.tt)
		}
		memo[repID] = tt
		return tt
	}
	fn := eval(expand.Root).Clone()
	for i := range memo {
		ar.tt.Put(memo[i]) // nil-safe; fn is a clone, so the root pools too
	}
	return fn, reps
}

// sccIsolated reports whether no node of the component is supported from
// the ground in the predecessor graph: ground nodes are PIs, constants and
// nodes with label <= 1; a support edge e(u,v) is present when
// l(u) - phi*w(e) + 1 >= l(v). Total isolation certifies a positive loop
// (the paper's PLD, Theorem 2).
//
// The walk is restricted to the component itself plus components whose
// labels are final: strictly lower condensation levels on the sequential
// path, completed components (s.compDone) under the dataflow scheduler.
// Either set is a superset of the component's ancestors, and support can
// only reach a member through its ancestors — every edge into the
// component comes from a direct predecessor, and by induction every path
// into an ancestor stays within ancestors — so the extra allowed nodes can
// pick up junk reach marks but never influence whether a member is
// reached. The restriction therefore never changes the verdict; what it
// buys is that the walk reads only labels that are final or owned by this
// component, keeping the check race-free and schedule-independent.
func (s *state) sccIsolated(comp int, ar *arena) bool {
	n := s.c.NumNodes()
	myLevel := s.levels[comp]
	done := s.compDone
	allowed := func(id int) bool {
		c := s.sccs.Comp[id]
		if c == comp {
			return true
		}
		if done != nil {
			return done[c].Load()
		}
		return s.levels[c] < myLevel
	}
	if cap(ar.reach) < n {
		ar.reach = make([]bool, n)
		ar.rqueue = make([]int, 0, n)
	}
	reach := ar.reach[:n]
	for i := range reach {
		reach[i] = false
	}
	queue := ar.rqueue[:0]
	for id := 0; id < n; id++ {
		if allowed(id) && s.labels[id] <= 1 {
			reach[id] = true
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, fo := range s.c.Fanouts(u) {
			if reach[fo.To] || !allowed(fo.To) {
				continue
			}
			if s.labels[u]-s.phi*fo.Weight+1 >= s.labels[fo.To] {
				reach[fo.To] = true
				queue = append(queue, fo.To)
			}
		}
	}
	ar.rqueue = queue[:0]
	for _, id := range s.sccs.Members[comp] {
		if reach[id] {
			return false
		}
	}
	return true
}
