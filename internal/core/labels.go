package core

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"turbosyn/internal/cut"
	"turbosyn/internal/decomp"
	"turbosyn/internal/expand"
	"turbosyn/internal/graph"
	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
	"turbosyn/internal/stats"
)

// coverRec is the realization recorded for a gate on the final (consistent)
// pass: the chosen cut of E_v and the LUT tree implementing the cone over
// the cut signals. Structural covers have a single-node tree.
type coverRec struct {
	cut  []Replica
	tree *decomp.Tree
}

// state carries one feasibility probe.
type state struct {
	c      *netlist.Circuit
	opts   Options
	phi    int
	labels []int
	order  []int // combinational topological order (good sweep order)
	sccs   *graph.SCCs
	// levels is the longest-path layering of the condensation: components
	// sharing a level are independent, which is what the parallel scheduler
	// exploits and what keeps sccIsolated race-free (see below).
	levels []int
	// memberOrder lists each component's members in comb topo order.
	memberOrder [][]int

	// Decision cache: a gate is re-decided only when its L changed since
	// the last decision. Decisions also depend on deeper labels, so a
	// cache hit can be stale — which is why convergence is only declared
	// by a full fresh recording pass (see run).
	lastL   []int
	decided []bool
	// Decomposition backoff: nodes whose label keeps rising (a diverging
	// or slowly converging loop) skip repeated expensive resynthesis
	// attempts during fast passes; recording passes always attempt, so the
	// final labels and covers never depend on the backoff.
	bumps      []int
	nextDecomp []int
	// cache memoizes Decompose outcomes by cone function, K, depth budget
	// and bound-set priority. Cone functions recur heavily across label
	// iterations; this cache removes the repeated Roth-Karp window scans.
	// It is safe to share across workers and probes (see cache.go).
	cache *decompCache
	conc  *stats.Concurrency

	// workers bounds the per-level worker pool; 1 selects the strictly
	// sequential sweep. Both paths compute bit-identical labels and covers.
	workers int
	// cancel, when non-nil, aborts the probe early (speculative search
	// probes that lost their branch). A cancelled run reports infeasible;
	// the caller must discard its result.
	cancel *atomic.Bool
	// failed flags an infeasible component so sibling workers stop pumping
	// labels that no longer matter. Reset at the top of every run.
	failed atomic.Bool

	recs  []coverRec
	stats Stats
}

const labelInf = int(1) << 28

func newState(c *netlist.Circuit, phi int, opts Options) *state {
	s := &state{
		c:          c,
		opts:       opts,
		phi:        phi,
		labels:     make([]int, c.NumNodes()),
		order:      c.CombTopoOrder(),
		sccs:       graph.StronglyConnected(c.Adj()),
		lastL:      make([]int, c.NumNodes()),
		decided:    make([]bool, c.NumNodes()),
		bumps:      make([]int, c.NumNodes()),
		nextDecomp: make([]int, c.NumNodes()),
		conc:       &stats.Concurrency{},
		workers:    opts.workerCount(),
		recs:       make([]coverRec, c.NumNodes()),
	}
	s.cache = newDecompCache(s.conc)
	s.levels = s.sccs.Levels()
	s.memberOrder = make([][]int, s.sccs.NumComps())
	for _, id := range s.order { // comb topo order within each component
		comp := s.sccs.Comp[id]
		s.memberOrder[comp] = append(s.memberOrder[comp], id)
	}
	for i := range s.lastL {
		s.lastL[i] = -labelInf
	}
	for _, n := range c.Nodes {
		switch {
		case n.Kind == netlist.PI:
			s.labels[n.ID] = 0
		case n.Kind == netlist.Gate && len(n.Fanins) == 0:
			s.labels[n.ID] = 0 // constant source, available like a PI
		default:
			s.labels[n.ID] = 1 // the paper's initial lower bound
		}
	}
	return s
}

// attach shares a search-wide decomposition cache, concurrency counters and
// cancellation flag with this probe (see Minimize: one cache and one counter
// set span every probe of the binary search).
func (s *state) attach(cache *decompCache, conc *stats.Concurrency, cancel *atomic.Bool) {
	s.cache = cache
	s.conc = conc
	s.cancel = cancel
}

// stopped reports whether the probe should abandon work: a sibling
// component proved phi infeasible, or the search cancelled this probe.
func (s *state) stopped() bool {
	return s.failed.Load() || (s.cancel != nil && s.cancel.Load())
}

// computeL returns L(v) = max over fanin edges of l(u) - phi*w(e).
func (s *state) computeL(v int) int {
	L := -labelInf
	for _, f := range s.c.Nodes[v].Fanins {
		if x := s.labels[f.From] - s.phi*f.Weight; x > L {
			L = x
		}
	}
	return L
}

// run performs the label computation. It returns true when phi is feasible
// (labels converged, and for non-pipelined objectives every PO meets phi).
// On success the labels are converged and recs is consistent with them.
//
// With workers > 1 the per-component work is scheduled level-by-level over
// the condensation (see parallel.go); with workers == 1, or whenever an
// iteration budget demands globally ordered accounting, components run
// strictly sequentially in topological order. Both paths produce identical
// labels, covers and verdicts: a component's computation reads only its own
// members and upstream components, and upstream components are final before
// the component starts in either schedule.
func (s *state) run() bool {
	s.failed.Store(false)
	if s.workers > 1 && s.opts.IterBudget <= 0 {
		return s.runParallel()
	}
	s.conc.SetWorkers(1)
	for _, comp := range s.sccs.Order {
		if s.runComp(comp, &s.stats) != compConverged {
			return false
		}
	}
	return s.checkOutputs()
}

// checkOutputs enforces the clock-period side condition after convergence.
func (s *state) checkOutputs() bool {
	if !s.opts.Pipelined {
		for _, po := range s.c.POs {
			if s.labels[po] > s.phi {
				return false
			}
		}
	}
	return true
}

// compOutcome is the verdict of one component's label iteration.
type compOutcome int

const (
	// compConverged: labels of the component reached their fixpoint and
	// the recorded covers are consistent with them.
	compConverged compOutcome = iota
	// compInfeasible: the component certifies phi infeasible (positive
	// loop detected, or the conservative stopping rule ran out).
	compInfeasible
	// compCancelled: the probe was abandoned (lost speculation branch or a
	// sibling component already failed); the verdict carries no information.
	compCancelled
)

// runComp iterates component comp to convergence. st receives the work
// counters; in the sequential schedule it is the state's own stats, in the
// parallel schedule a per-task accumulator merged after the level barrier.
// Writes touch only the component's members, so concurrent invocations on
// same-level components are disjoint.
func (s *state) runComp(comp int, st *Stats) compOutcome {
	// Sound runaway certificate: in any feasible mapping the needed LUTs
	// number at most the gate count, simple LUT-level paths bound arrivals
	// by that count, and loops contribute nothing positive — so a label
	// beyond NumNodes()+2 certifies a positive loop. This check and the
	// 6n-iteration PLD below together form the fast detection suite that
	// Options.PLD toggles; without it only the conservative per-SCC n^2
	// stopping rule of SeqMapII remains (the paper's 10-50x comparison).
	maxLabel := s.c.NumNodes() + 2
	members := s.memberOrder[comp]
	updatable := members[:0:0]
	for _, id := range members {
		n := s.c.Nodes[id]
		if n.Kind != netlist.PI && len(n.Fanins) > 0 {
			updatable = append(updatable, id)
		}
	}
	if len(updatable) == 0 {
		return compConverged
	}
	n := len(members)
	// Per-SCC runaway bound: labels inside the component are supported
	// by at most base (the best external support) plus one unit per
	// member along a simple path. Tighter than the global bound, so
	// diverging components stop pumping sooner.
	base := 0
	inComp := make(map[int]bool, n)
	for _, id := range members {
		inComp[id] = true
	}
	for _, id := range members {
		for _, f := range s.c.Nodes[id].Fanins {
			if !inComp[f.From] {
				if v := s.labels[f.From] - s.phi*f.Weight; v > base {
					base = v
				}
			}
		}
	}
	sccCap := base + n + 2
	if sccCap > maxLabel {
		sccCap = maxLabel
	}
	pldFrom := 6*n + 6 // Theorem 2: isolation is meaningful from 6n on
	capIter := n*n + 4
	if s.opts.PLD && capIter < pldFrom+4 {
		capIter = pldFrom + 4
	}
	for iter := 0; iter < capIter; iter++ {
		if s.stopped() {
			return compCancelled
		}
		if s.opts.IterBudget > 0 && st.Iterations >= s.opts.IterBudget {
			return compInfeasible
		}
		st.Iterations++
		changed := false
		for _, id := range updatable {
			if s.update(id, false, st) {
				changed = true
			}
		}
		if !changed {
			// Recording pass: re-decide everything at the converged
			// labels and keep the covers. A change here means the
			// Gauss-Seidel sweep raced itself; keep iterating.
			st.Iterations++
			for _, id := range updatable {
				if s.update(id, true, st) {
					changed = true
				}
			}
			if !changed {
				return compConverged
			}
		}
		if s.opts.PLD {
			for _, id := range updatable {
				if s.labels[id] > sccCap {
					st.PLDHits++
					return compInfeasible // runaway labels certify a positive loop
				}
			}
			if iter+1 >= pldFrom {
				st.PLDChecks++
				if s.sccIsolated(comp) {
					st.PLDHits++
					return compInfeasible
				}
			}
		}
	}
	return compInfeasible // conservative stopping rule hit
}

// update re-decides node id's label. record requests cover recording (used
// on the final fresh pass). It reports whether the label changed.
func (s *state) update(id int, record bool, st *Stats) bool {
	n := s.c.Nodes[id]
	L := s.computeL(id)
	if n.Kind == netlist.PO {
		nl := L
		if nl < 1 {
			nl = 1
		}
		if nl > s.labels[id] {
			s.labels[id] = nl
			return true
		}
		return false
	}
	if !record && s.decided[id] && s.lastL[id] == L {
		return false
	}
	s.decided[id] = true
	s.lastL[id] = L
	newLabel, rec := s.decide(id, L, record, st)
	if record {
		s.recs[id] = rec
	}
	if newLabel > s.labels[id] {
		s.labels[id] = newLabel
		s.bumps[id]++
		return true
	}
	return false
}

// decide computes the label for gate id given L, optionally producing the
// cover record.
func (s *state) decide(id, L int, record bool, st *Stats) (int, coverRec) {
	xopts := expand.Options{LowDepth: s.opts.LowDepth, MaxNodes: s.opts.MaxExpand}
	// Structural K-cut of height <= L?
	st.CutChecks++
	if x, built := expand.Build(s.c, id, s.labels, s.phi, L, xopts); built {
		if res, ok := cut.KCut(x, s.opts.K); ok {
			var rec coverRec
			if record {
				rec = s.structuralRec(x, res)
			}
			return L, rec
		}
	}
	// TurboSYN: resynthesize a wider, lower cut. Fast passes back off on
	// label-pumping nodes (see the field comment); recording passes always
	// attempt.
	if s.opts.Decompose && (record || s.bumps[id] < 8 || L >= s.nextDecomp[id]) {
		if tree, cutReps, ok := s.tryDecompose(id, L, xopts, st); ok {
			s.nextDecomp[id] = 0
			return L, coverRec{cut: cutReps, tree: tree}
		}
		step := s.bumps[id] / 2
		if step < 1 {
			step = 1
		}
		s.nextDecomp[id] = L + step
	}
	// Settle for L+1; the direct-fanin cut realizes it.
	var rec coverRec
	if record {
		x, built := expand.Build(s.c, id, s.labels, s.phi, L+1, xopts)
		if !built {
			panic("core: cannot expand for the trivial cut")
		}
		res, ok := cut.KCut(x, s.opts.K)
		if !ok {
			panic("core: the direct-fanin cut must exist at height L+1")
		}
		rec = s.structuralRec(x, res)
	}
	return L + 1, rec
}

// tryDecompose searches cuts of heights L-1, L-2, ... (width <= Cmax) whose
// cone function decomposes into a tree of K-LUTs of depth h+1, realizing
// label L (the paper's sequential functional decomposition).
func (s *state) tryDecompose(id, L int, xopts expand.Options, st *Stats) (*decomp.Tree, []Replica, bool) {
	if s.opts.Cmax > logic.MaxVars {
		panic("core: Cmax exceeds logic.MaxVars")
	}
	for h := 1; h <= s.opts.MaxH; h++ {
		x, built := expand.Build(s.c, id, s.labels, s.phi, L-h, xopts)
		if !built {
			return nil, nil, false
		}
		res, ok := cut.MinCut(x, s.opts.Cmax)
		if !ok {
			return nil, nil, false // even Cmax-wide cuts are gone; deeper is worse
		}
		st.DecompAttempts++
		fn, reps := s.coneFunction(x, res)
		// Bound-set priority: earliest effective arrival first, so early
		// signals sink toward the leaves (the paper's FlowSYN ordering).
		prio := make([]int, len(reps))
		for i := range prio {
			prio[i] = i
		}
		eff := func(r Replica) int { return s.labels[r.Orig] - s.phi*r.W }
		sort.SliceStable(prio, func(a, b int) bool { return eff(reps[prio[a]]) < eff(reps[prio[b]]) })
		key := decompKey(s.opts.K, h+1, prio, fn)
		tree, cached := s.cache.lookup(key)
		if !cached {
			var ok bool
			tree, ok = decomp.Decompose(fn, s.opts.K, h+1, prio)
			if !ok {
				tree = nil
			}
			s.cache.store(key, tree)
		}
		if tree == nil {
			continue
		}
		st.Decompositions++
		return tree, reps, true
	}
	return nil, nil, false
}

// decompKey identifies one Decompose call. The priority order is part of
// the key: Decompose's window scan is capped, so both the found tree and
// whether one is found at all depend on it. Keying on the full input makes
// the cached value equal to a fresh computation, which in turn makes cache
// sharing across workers and probes order-independent.
func decompKey(k, depthBudget int, prio []int, fn *logic.TT) string {
	var b strings.Builder
	b.Grow(len(prio) + 24)
	fmt.Fprintf(&b, "%d|%d|", k, depthBudget)
	for _, p := range prio {
		b.WriteByte(byte(p))
	}
	b.WriteByte('|')
	b.WriteString(fn.String())
	return b.String()
}

// structuralRec converts a structural cut into a cover record: a
// single-node tree computing the cone function over the cut signals.
func (s *state) structuralRec(x *expand.Expanded, res *cut.Result) coverRec {
	fn, reps := s.coneFunction(x, res)
	children := make([]int, len(reps))
	for i := range children {
		children[i] = i
	}
	tree := &decomp.Tree{NumInputs: len(reps)}
	tree.Nodes = append(tree.Nodes, decomp.TreeNode{Func: fn, Children: children})
	return coverRec{cut: reps, tree: tree}
}

// coneFunction computes the cone's Boolean function over the cut signals
// (variable j = cut replica j) and the replica list.
func (s *state) coneFunction(x *expand.Expanded, res *cut.Result) (*logic.TT, []Replica) {
	m := len(res.Cut)
	if m > logic.MaxVars {
		panic(fmt.Sprintf("core: cone with %d inputs", m))
	}
	varOf := make(map[int]int, m)
	reps := make([]Replica, m)
	for j, repID := range res.Cut {
		varOf[repID] = j
		reps[j] = Replica{Orig: x.Nodes[repID].Orig, W: x.Nodes[repID].W}
	}
	memo := make(map[int]*logic.TT, len(res.Cone))
	var eval func(repID int) *logic.TT
	eval = func(repID int) *logic.TT {
		if j, ok := varOf[repID]; ok {
			return logic.Var(m, j)
		}
		if tt, ok := memo[repID]; ok {
			return tt
		}
		orig := s.c.Nodes[x.Nodes[repID].Orig]
		children := x.Fanins[repID]
		if len(children) != len(orig.Fanins) {
			panic("core: cone interior replica lacks expanded fanins")
		}
		subs := make([]*logic.TT, len(children))
		for i, ch := range children {
			subs[i] = eval(ch)
		}
		var tt *logic.TT
		if len(subs) == 0 {
			tt = projectConst(orig.Func, m)
		} else {
			tt = orig.Func.ComposeBool(subs)
		}
		memo[repID] = tt
		return tt
	}
	return eval(expand.Root), reps
}

// projectConst lifts a 0-var constant function into an m-var table.
func projectConst(f *logic.TT, m int) *logic.TT {
	_, v := f.IsConst()
	return logic.Const(m, v)
}

// sccIsolated reports whether no node of the component is supported from
// the ground in the predecessor graph: ground nodes are PIs, constants and
// nodes with label <= 1; a support edge e(u,v) is present when
// l(u) - phi*w(e) + 1 >= l(v). Total isolation certifies a positive loop
// (the paper's PLD, Theorem 2).
//
// The walk is restricted to the component itself and strictly lower
// condensation levels. Support can only reach a member through the
// member's ancestors, and every ancestor component sits at a strictly lower
// level, so the restriction never changes the verdict — what it buys is
// that the walk reads only labels that are final (lower levels) or owned by
// this component, keeping the check race-free and schedule-independent
// under the parallel scheduler.
func (s *state) sccIsolated(comp int) bool {
	n := s.c.NumNodes()
	myLevel := s.levels[comp]
	allowed := func(id int) bool {
		c := s.sccs.Comp[id]
		return c == comp || s.levels[c] < myLevel
	}
	reach := make([]bool, n)
	queue := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if allowed(id) && s.labels[id] <= 1 {
			reach[id] = true
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, fo := range s.c.Fanouts(u) {
			if reach[fo.To] || !allowed(fo.To) {
				continue
			}
			if s.labels[u]-s.phi*fo.Weight+1 >= s.labels[fo.To] {
				reach[fo.To] = true
				queue = append(queue, fo.To)
			}
		}
	}
	for _, id := range s.sccs.Members[comp] {
		if reach[id] {
			return false
		}
	}
	return true
}
