package core

import (
	"fmt"
	"sort"

	"turbosyn/internal/cut"
	"turbosyn/internal/decomp"
	"turbosyn/internal/expand"
	"turbosyn/internal/graph"
	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// coverRec is the realization recorded for a gate on the final (consistent)
// pass: the chosen cut of E_v and the LUT tree implementing the cone over
// the cut signals. Structural covers have a single-node tree.
type coverRec struct {
	cut  []Replica
	tree *decomp.Tree
}

// state carries one feasibility probe.
type state struct {
	c      *netlist.Circuit
	opts   Options
	phi    int
	labels []int
	order  []int // combinational topological order (good sweep order)
	sccs   *graph.SCCs

	// Decision cache: a gate is re-decided only when its L changed since
	// the last decision. Decisions also depend on deeper labels, so a
	// cache hit can be stale — which is why convergence is only declared
	// by a full fresh recording pass (see run).
	lastL   []int
	decided []bool
	// Decomposition backoff: nodes whose label keeps rising (a diverging
	// or slowly converging loop) skip repeated expensive resynthesis
	// attempts during fast passes; recording passes always attempt, so the
	// final labels and covers never depend on the backoff.
	bumps      []int
	nextDecomp []int
	// decompCache memoizes Decompose outcomes by cone function, K and
	// depth budget (the bound-set priority is only a search heuristic, so
	// any cached tree is valid for every priority). Cone functions recur
	// heavily across label iterations; this cache removes the repeated
	// Roth-Karp window scans.
	decompCache map[string]*decomp.Tree

	recs  []coverRec
	stats Stats
}

const labelInf = int(1) << 28

func newState(c *netlist.Circuit, phi int, opts Options) *state {
	s := &state{
		c:           c,
		opts:        opts,
		phi:         phi,
		labels:      make([]int, c.NumNodes()),
		order:       c.CombTopoOrder(),
		sccs:        graph.StronglyConnected(c.Adj()),
		lastL:       make([]int, c.NumNodes()),
		decided:     make([]bool, c.NumNodes()),
		bumps:       make([]int, c.NumNodes()),
		nextDecomp:  make([]int, c.NumNodes()),
		decompCache: make(map[string]*decomp.Tree),
		recs:        make([]coverRec, c.NumNodes()),
	}
	for i := range s.lastL {
		s.lastL[i] = -labelInf
	}
	for _, n := range c.Nodes {
		switch {
		case n.Kind == netlist.PI:
			s.labels[n.ID] = 0
		case n.Kind == netlist.Gate && len(n.Fanins) == 0:
			s.labels[n.ID] = 0 // constant source, available like a PI
		default:
			s.labels[n.ID] = 1 // the paper's initial lower bound
		}
	}
	return s
}

// computeL returns L(v) = max over fanin edges of l(u) - phi*w(e).
func (s *state) computeL(v int) int {
	L := -labelInf
	for _, f := range s.c.Nodes[v].Fanins {
		if x := s.labels[f.From] - s.phi*f.Weight; x > L {
			L = x
		}
	}
	return L
}

// run performs the label computation. It returns true when phi is feasible
// (labels converged, and for non-pipelined objectives every PO meets phi).
// On success the labels are converged and recs is consistent with them.
func (s *state) run() bool {
	// Sound runaway certificate: in any feasible mapping the needed LUTs
	// number at most the gate count, simple LUT-level paths bound arrivals
	// by that count, and loops contribute nothing positive — so a label
	// beyond NumNodes()+2 certifies a positive loop. This check and the
	// 6n-iteration PLD below together form the fast detection suite that
	// Options.PLD toggles; without it only the conservative per-SCC n^2
	// stopping rule of SeqMapII remains (the paper's 10-50x comparison).
	maxLabel := s.c.NumNodes() + 2
	// Process SCCs in topological order; labels upstream are final before
	// a component starts iterating.
	memberOrder := make([][]int, s.sccs.NumComps())
	for _, id := range s.order { // comb topo order within each component
		comp := s.sccs.Comp[id]
		memberOrder[comp] = append(memberOrder[comp], id)
	}
	for _, comp := range s.sccs.Order {
		members := memberOrder[comp]
		updatable := members[:0:0]
		for _, id := range members {
			n := s.c.Nodes[id]
			if n.Kind != netlist.PI && len(n.Fanins) > 0 {
				updatable = append(updatable, id)
			}
		}
		if len(updatable) == 0 {
			continue
		}
		n := len(members)
		// Per-SCC runaway bound: labels inside the component are supported
		// by at most base (the best external support) plus one unit per
		// member along a simple path. Tighter than the global bound, so
		// diverging components stop pumping sooner.
		base := 0
		inComp := make(map[int]bool, n)
		for _, id := range members {
			inComp[id] = true
		}
		for _, id := range members {
			for _, f := range s.c.Nodes[id].Fanins {
				if !inComp[f.From] {
					if v := s.labels[f.From] - s.phi*f.Weight; v > base {
						base = v
					}
				}
			}
		}
		sccCap := base + n + 2
		if sccCap > maxLabel {
			sccCap = maxLabel
		}
		pldFrom := 6*n + 6 // Theorem 2: isolation is meaningful from 6n on
		capIter := n*n + 4
		if s.opts.PLD && capIter < pldFrom+4 {
			capIter = pldFrom + 4
		}
		converged := false
		for iter := 0; iter < capIter; iter++ {
			if s.opts.IterBudget > 0 && s.stats.Iterations >= s.opts.IterBudget {
				return false
			}
			s.stats.Iterations++
			changed := false
			for _, id := range updatable {
				if s.update(id, false) {
					changed = true
				}
			}
			if !changed {
				// Recording pass: re-decide everything at the converged
				// labels and keep the covers. A change here means the
				// Gauss-Seidel sweep raced itself; keep iterating.
				s.stats.Iterations++
				for _, id := range updatable {
					if s.update(id, true) {
						changed = true
					}
				}
				if !changed {
					converged = true
					break
				}
			}
			if s.opts.PLD {
				for _, id := range updatable {
					if s.labels[id] > sccCap {
						s.stats.PLDHits++
						return false // runaway labels certify a positive loop
					}
				}
				if iter+1 >= pldFrom {
					s.stats.PLDChecks++
					if s.sccIsolated(comp) {
						s.stats.PLDHits++
						return false
					}
				}
			}
		}
		if !converged {
			return false // conservative stopping rule hit
		}
	}
	if !s.opts.Pipelined {
		for _, po := range s.c.POs {
			if s.labels[po] > s.phi {
				return false
			}
		}
	}
	return true
}

// update re-decides node id's label. record requests cover recording (used
// on the final fresh pass). It reports whether the label changed.
func (s *state) update(id int, record bool) bool {
	n := s.c.Nodes[id]
	L := s.computeL(id)
	if n.Kind == netlist.PO {
		nl := L
		if nl < 1 {
			nl = 1
		}
		if nl > s.labels[id] {
			s.labels[id] = nl
			return true
		}
		return false
	}
	if !record && s.decided[id] && s.lastL[id] == L {
		return false
	}
	s.decided[id] = true
	s.lastL[id] = L
	newLabel, rec := s.decide(id, L, record)
	if record {
		s.recs[id] = rec
	}
	if newLabel > s.labels[id] {
		s.labels[id] = newLabel
		s.bumps[id]++
		return true
	}
	return false
}

// decide computes the label for gate id given L, optionally producing the
// cover record.
func (s *state) decide(id, L int, record bool) (int, coverRec) {
	xopts := expand.Options{LowDepth: s.opts.LowDepth, MaxNodes: s.opts.MaxExpand}
	// Structural K-cut of height <= L?
	s.stats.CutChecks++
	if x, built := expand.Build(s.c, id, s.labels, s.phi, L, xopts); built {
		if res, ok := cut.KCut(x, s.opts.K); ok {
			var rec coverRec
			if record {
				rec = s.structuralRec(x, res)
			}
			return L, rec
		}
	}
	// TurboSYN: resynthesize a wider, lower cut. Fast passes back off on
	// label-pumping nodes (see the field comment); recording passes always
	// attempt.
	if s.opts.Decompose && (record || s.bumps[id] < 8 || L >= s.nextDecomp[id]) {
		if tree, cutReps, ok := s.tryDecompose(id, L, xopts); ok {
			s.nextDecomp[id] = 0
			return L, coverRec{cut: cutReps, tree: tree}
		}
		step := s.bumps[id] / 2
		if step < 1 {
			step = 1
		}
		s.nextDecomp[id] = L + step
	}
	// Settle for L+1; the direct-fanin cut realizes it.
	var rec coverRec
	if record {
		x, built := expand.Build(s.c, id, s.labels, s.phi, L+1, xopts)
		if !built {
			panic("core: cannot expand for the trivial cut")
		}
		res, ok := cut.KCut(x, s.opts.K)
		if !ok {
			panic("core: the direct-fanin cut must exist at height L+1")
		}
		rec = s.structuralRec(x, res)
	}
	return L + 1, rec
}

// tryDecompose searches cuts of heights L-1, L-2, ... (width <= Cmax) whose
// cone function decomposes into a tree of K-LUTs of depth h+1, realizing
// label L (the paper's sequential functional decomposition).
func (s *state) tryDecompose(id, L int, xopts expand.Options) (*decomp.Tree, []Replica, bool) {
	if s.opts.Cmax > logic.MaxVars {
		panic("core: Cmax exceeds logic.MaxVars")
	}
	for h := 1; h <= s.opts.MaxH; h++ {
		x, built := expand.Build(s.c, id, s.labels, s.phi, L-h, xopts)
		if !built {
			return nil, nil, false
		}
		res, ok := cut.MinCut(x, s.opts.Cmax)
		if !ok {
			return nil, nil, false // even Cmax-wide cuts are gone; deeper is worse
		}
		s.stats.DecompAttempts++
		fn, reps := s.coneFunction(x, res)
		// Bound-set priority: earliest effective arrival first, so early
		// signals sink toward the leaves (the paper's FlowSYN ordering).
		prio := make([]int, len(reps))
		for i := range prio {
			prio[i] = i
		}
		eff := func(r Replica) int { return s.labels[r.Orig] - s.phi*r.W }
		sort.SliceStable(prio, func(a, b int) bool { return eff(reps[prio[a]]) < eff(reps[prio[b]]) })
		key := fmt.Sprintf("%d|%d|%s", s.opts.K, h+1, fn.String())
		tree, cached := s.decompCache[key]
		if !cached {
			var ok bool
			tree, ok = decomp.Decompose(fn, s.opts.K, h+1, prio)
			if !ok {
				tree = nil
			}
			s.decompCache[key] = tree
		}
		if tree == nil {
			continue
		}
		s.stats.Decompositions++
		return tree, reps, true
	}
	return nil, nil, false
}

// structuralRec converts a structural cut into a cover record: a
// single-node tree computing the cone function over the cut signals.
func (s *state) structuralRec(x *expand.Expanded, res *cut.Result) coverRec {
	fn, reps := s.coneFunction(x, res)
	children := make([]int, len(reps))
	for i := range children {
		children[i] = i
	}
	tree := &decomp.Tree{NumInputs: len(reps)}
	tree.Nodes = append(tree.Nodes, decomp.TreeNode{Func: fn, Children: children})
	return coverRec{cut: reps, tree: tree}
}

// coneFunction computes the cone's Boolean function over the cut signals
// (variable j = cut replica j) and the replica list.
func (s *state) coneFunction(x *expand.Expanded, res *cut.Result) (*logic.TT, []Replica) {
	m := len(res.Cut)
	if m > logic.MaxVars {
		panic(fmt.Sprintf("core: cone with %d inputs", m))
	}
	varOf := make(map[int]int, m)
	reps := make([]Replica, m)
	for j, repID := range res.Cut {
		varOf[repID] = j
		reps[j] = Replica{Orig: x.Nodes[repID].Orig, W: x.Nodes[repID].W}
	}
	memo := make(map[int]*logic.TT, len(res.Cone))
	var eval func(repID int) *logic.TT
	eval = func(repID int) *logic.TT {
		if j, ok := varOf[repID]; ok {
			return logic.Var(m, j)
		}
		if tt, ok := memo[repID]; ok {
			return tt
		}
		orig := s.c.Nodes[x.Nodes[repID].Orig]
		children := x.Fanins[repID]
		if len(children) != len(orig.Fanins) {
			panic("core: cone interior replica lacks expanded fanins")
		}
		subs := make([]*logic.TT, len(children))
		for i, ch := range children {
			subs[i] = eval(ch)
		}
		var tt *logic.TT
		if len(subs) == 0 {
			tt = projectConst(orig.Func, m)
		} else {
			tt = orig.Func.ComposeBool(subs)
		}
		memo[repID] = tt
		return tt
	}
	return eval(expand.Root), reps
}

// projectConst lifts a 0-var constant function into an m-var table.
func projectConst(f *logic.TT, m int) *logic.TT {
	_, v := f.IsConst()
	return logic.Const(m, v)
}

// sccIsolated reports whether no node of the component is supported from
// the ground in the predecessor graph: ground nodes are PIs, constants and
// nodes with label <= 1; a support edge e(u,v) is present when
// l(u) - phi*w(e) + 1 >= l(v). Total isolation certifies a positive loop
// (the paper's PLD, Theorem 2).
func (s *state) sccIsolated(comp int) bool {
	n := s.c.NumNodes()
	reach := make([]bool, n)
	queue := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if s.labels[id] <= 1 {
			reach[id] = true
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, fo := range s.c.Fanouts(u) {
			if reach[fo.To] {
				continue
			}
			if s.labels[u]-s.phi*fo.Weight+1 >= s.labels[fo.To] {
				reach[fo.To] = true
				queue = append(queue, fo.To)
			}
		}
	}
	for _, id := range s.sccs.Members[comp] {
		if reach[id] {
			return false
		}
	}
	return true
}
