package core

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"turbosyn/internal/decomp/cachelog"
	"turbosyn/internal/faultinject"
)

// cacheChaosRun minimizes the fault circuit with the given cache directory
// and returns the bits a persisted cache must not change: phi, labels and
// the mapped network's node count.
func cacheChaosRun(t *testing.T, dir string) (int, []int, int) {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = 2
	opts.CacheDir = dir
	res, err := Minimize(faultCircuit(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Phi, res.Labels, res.Mapped.NumNodes()
}

// TestCacheDirSurvivesCancel: a run aborted mid-search with a persistent
// cache directory attached must leave that directory loadable — the shutdown
// flush runs on the abort path too, and whatever it managed to write must be
// a valid log. A follow-up clean run against the same directory must succeed
// and produce results bit-identical to an uncached run.
func TestCacheDirSurvivesCancel(t *testing.T) {
	fenceGoroutines(t)
	dir := t.TempDir()
	c := faultCircuit(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, off := faultinject.Activate(faultinject.Config{
		CancelAtSweep: 3, OnCancel: cancel,
	})
	opts := DefaultOptions()
	opts.Workers = 2
	opts.CacheDir = dir
	_, err := MinimizeContext(ctx, c, opts)
	off()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	lg, err := cachelog.Open(dir)
	if err != nil {
		t.Fatalf("cache dir unusable after cancelled run: %v", err)
	}
	if _, err := lg.Load(); err != nil {
		t.Fatalf("log unloadable after cancelled run: %v", err)
	}

	phi, labels, nodes := cacheChaosRun(t, dir)
	basePhi, baseLabels, baseNodes := cacheChaosRun(t, "")
	if phi != basePhi || nodes != baseNodes || !reflect.DeepEqual(labels, baseLabels) {
		t.Fatalf("run after cancelled-flush cache differs from uncached run: phi %d vs %d, nodes %d vs %d",
			phi, basePhi, nodes, baseNodes)
	}
}

// TestCacheDirSurvivesTruncatedFlush: an interrupted flush (process killed
// mid-write, disk full) leaves an arbitrary byte prefix of the log. Every
// such prefix must load cleanly — the loader keeps the valid entries and
// drops the torn tail — and a run against the truncated directory must stay
// bit-identical to an uncached run.
func TestCacheDirSurvivesTruncatedFlush(t *testing.T) {
	fenceGoroutines(t)
	dir := t.TempDir()

	// Seed the directory with a full run's worth of entries.
	basePhi, baseLabels, baseNodes := cacheChaosRun(t, dir)
	path := filepath.Join(dir, "decomp.log")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 16 {
		t.Fatalf("log suspiciously small after a full run: %d bytes", len(full))
	}

	rng := rand.New(rand.NewSource(23))
	cuts := []int{0, 3, len(full) / 2, len(full) - 1}
	for i := 0; i < 4; i++ {
		cuts = append(cuts, rng.Intn(len(full)))
	}
	for _, cut := range cuts {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lg, err := cachelog.Open(dir)
		if err != nil {
			t.Fatalf("cut=%d: open failed: %v", cut, err)
		}
		if _, err := lg.Load(); err != nil {
			t.Fatalf("cut=%d: truncated log unloadable: %v", cut, err)
		}
		phi, labels, nodes := cacheChaosRun(t, dir)
		if phi != basePhi || nodes != baseNodes || !reflect.DeepEqual(labels, baseLabels) {
			t.Fatalf("cut=%d: run on truncated cache differs: phi %d vs %d", cut, phi, basePhi)
		}
	}
}
