package core

import (
	"fmt"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// generate materializes the mapped LUT network from converged labels and
// cover records. The result is cycle-accurate equivalent to the input
// circuit: LUT_v computes v's sequential function, and an edge from LUT_u
// into LUT_v carries the register count w of the covered replica u^w.
// Retiming the result (pipelined or not) realizes the target phi.
func (s *state) generate() (*netlist.Circuit, []int, error) {
	c := s.c
	m := netlist.NewCircuit(c.Name + "_mapped")
	mapped := make([]int, c.NumNodes())
	for i := range mapped {
		mapped[i] = -1
	}
	// Discover the needed gates from the POs through the recorded cuts.
	needed := make([]bool, c.NumNodes())
	var stack []int
	want := func(id int) {
		if c.Nodes[id].Kind == netlist.Gate && !needed[id] {
			needed[id] = true
			stack = append(stack, id)
		}
	}
	for _, po := range c.POs {
		want(c.Nodes[po].Fanins[0].From)
	}
	var neededIDs []int
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		neededIDs = append(neededIDs, id)
		rec := s.recs[id]
		if rec.tree == nil {
			return nil, nil, fmt.Errorf("core: no cover recorded for needed gate %q", c.Nodes[id].Name)
		}
		for _, r := range rec.cut {
			want(r.Orig)
		}
	}
	// PIs first, then placeholder LUT roots (so feedback cuts resolve),
	// then materialize the trees.
	for _, pi := range c.PIs {
		mapped[pi] = m.AddPI(c.Nodes[pi].Name)
	}
	for _, id := range neededIDs {
		mapped[id] = m.AddGate(c.Nodes[id].Name, logic.Const(0, false))
	}
	for _, id := range neededIDs {
		if err := s.materialize(m, mapped, id); err != nil {
			return nil, nil, err
		}
	}
	for _, po := range c.POs {
		f := c.Nodes[po].Fanins[0]
		if mapped[f.From] < 0 {
			return nil, nil, fmt.Errorf("core: PO %q driver unmapped", c.Nodes[po].Name)
		}
		id := m.AddPO(c.Nodes[po].Name, mapped[f.From], f.Weight)
		mapped[po] = id
	}
	m.InvalidateCaches()
	if err := m.Check(); err != nil {
		return nil, nil, fmt.Errorf("core: generated network is malformed: %v", err)
	}
	if !m.IsKBounded(s.opts.K) {
		return nil, nil, fmt.Errorf("core: generated network exceeds K=%d (max fanin %d)",
			s.opts.K, m.MaxFanin())
	}
	// Origin map for initial-state alignment.
	origOf := make([]int, m.NumNodes())
	for i := range origOf {
		origOf[i] = -1
	}
	for orig, mid := range mapped {
		if mid >= 0 {
			origOf[mid] = orig
		}
	}
	return m, origOf, nil
}

// materialize builds gate id's LUT tree inside m. The tree's root replaces
// the placeholder created for id; internal nodes become fresh LUTs.
func (s *state) materialize(m *netlist.Circuit, mapped []int, id int) error {
	rec := s.recs[id]
	tree := rec.tree
	// Tree references: leaves 0..NumInputs-1 are cut replicas; internal
	// node i is tree.NumInputs+i. refFanin maps a reference to the fanin
	// realizing it in m.
	refFanin := make([]netlist.Fanin, tree.NumInputs+len(tree.Nodes))
	for j, r := range rec.cut {
		from := mapped[r.Orig]
		if from < 0 {
			return fmt.Errorf("core: cut input %q of %q unmapped",
				s.c.Nodes[r.Orig].Name, s.c.Nodes[id].Name)
		}
		refFanin[j] = netlist.Fanin{From: from, Weight: r.W}
	}
	for i, nd := range tree.Nodes {
		fanins := make([]netlist.Fanin, len(nd.Children))
		for k, ch := range nd.Children {
			fanins[k] = refFanin[ch]
		}
		ref := tree.NumInputs + i
		if ref == tree.Root() {
			// Fill the placeholder.
			g := m.Nodes[mapped[id]]
			g.Func = nd.Func
			g.Fanins = fanins
		} else {
			name := fmt.Sprintf("%s$d%d", s.c.Nodes[id].Name, i)
			for m.IDByName(name) != -1 {
				name += "'"
			}
			gid := m.AddGate(name, nd.Func, fanins...)
			refFanin[ref] = netlist.Fanin{From: gid}
		}
	}
	return nil
}
