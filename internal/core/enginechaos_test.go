package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"turbosyn/internal/faultinject"
)

// TestInjectedPanicEngineRecovers: a run that dies to a contained panic
// mid-probe must poison the arenas it had checked out — PoolStats.Discards
// counts them — and the next run on the same engine must complete and stay
// bit-identical to a one-shot run. This is the pooling analogue of
// TestInjectedPanicContained: containment alone is not enough if interrupted
// scratch re-enters the pool.
func TestInjectedPanicEngineRecovers(t *testing.T) {
	c := faultCircuit(t)
	for _, workers := range faultWorkerPools {
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			fenceGoroutines(t)
			opts := DefaultOptions()
			opts.Workers = workers
			want, err := Minimize(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantBLIF := blifBytes(t, want.Mapped)

			e, err := NewEngine(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			plan, off := faultinject.Activate(faultinject.Config{PanicAtCutCheck: 50})
			res, err := e.Minimize(opts)
			off()
			if plan.Fired(faultinject.KindPanicCutCheck) == 0 {
				t.Fatalf("fault never fired (only %d cut checks)",
					plan.Hits(faultinject.KindPanicCutCheck))
			}
			if err == nil || res != nil {
				t.Fatalf("contained panic must surface as an error (err=%v res=%v)", err, res)
			}
			var ie *InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("error is not an *InternalError: %v", err)
			}
			if ps := e.PoolStats(); ps.Discards == 0 {
				t.Errorf("panicked run poisoned no arenas: %+v", ps)
			}

			res, err = e.Minimize(opts)
			if err != nil {
				t.Fatalf("engine did not recover after a contained panic: %v", err)
			}
			if res.Phi != want.Phi || res.LUTs != want.LUTs {
				t.Fatalf("post-panic run diverged: phi %d/%d, LUTs %d/%d",
					res.Phi, want.Phi, res.LUTs, want.LUTs)
			}
			if !bytes.Equal(blifBytes(t, res.Mapped), wantBLIF) {
				t.Error("post-panic run's netlist diverged from the one-shot path")
			}
		})
	}
}

// TestInjectedCancelEngineRecovers: cancellation mid-probe is the other way
// a run can abandon arenas mid-mutation. The cancelled run's checkouts are
// poisoned at checkin, and the same engine then serves a clean, bit-identical
// run under a fresh context.
func TestInjectedCancelEngineRecovers(t *testing.T) {
	c := faultCircuit(t)
	for _, workers := range faultWorkerPools {
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			fenceGoroutines(t)
			opts := DefaultOptions()
			opts.Workers = workers
			want, err := Minimize(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantBLIF := blifBytes(t, want.Mapped)

			e, err := NewEngine(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			ctx, cancel := context.WithCancel(context.Background())
			plan, off := faultinject.Activate(faultinject.Config{
				CancelAtSweep: 3, OnCancel: cancel,
			})
			res, err := e.MinimizeContext(ctx, opts)
			off()
			cancel()
			if plan.Fired(faultinject.KindCancelSweep) == 0 {
				t.Fatalf("cancel point never fired (only %d sweeps)",
					plan.Hits(faultinject.KindCancelSweep))
			}
			if err == nil || res != nil {
				t.Fatalf("cancelled run must surface an error (err=%v res=%v)", err, res)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error does not wrap context.Canceled: %v", err)
			}
			if ps := e.PoolStats(); ps.Discards == 0 {
				t.Errorf("cancelled run poisoned no arenas: %+v", ps)
			}

			res, err = e.Minimize(opts)
			if err != nil {
				t.Fatalf("engine did not recover after cancellation: %v", err)
			}
			if res.Phi != want.Phi || res.LUTs != want.LUTs {
				t.Fatalf("post-cancel run diverged: phi %d/%d, LUTs %d/%d",
					res.Phi, want.Phi, res.LUTs, want.LUTs)
			}
			if !bytes.Equal(blifBytes(t, res.Mapped), wantBLIF) {
				t.Error("post-cancel run's netlist diverged from the one-shot path")
			}
		})
	}
}
