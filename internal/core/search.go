package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"turbosyn/internal/netlist"
	"turbosyn/internal/obs"
	"turbosyn/internal/retime"
	"turbosyn/internal/stats"
)

// Feasible decides Problem 2: does a mapping with clock period (or, when
// opts.Pipelined, MDR ratio) at most phi exist? It returns the probe's work
// statistics alongside.
func Feasible(c *netlist.Circuit, phi int, opts Options) (bool, Stats, error) {
	return FeasibleContext(context.Background(), c, phi, opts)
}

// FeasibleContext is Feasible under a context: cancellation or deadline
// expiry aborts the probe between sweeps (and within long sweeps) and
// returns a *CancelError wrapping the context's error, with the partial
// work statistics attached.
func FeasibleContext(ctx context.Context, c *netlist.Circuit, phi int, opts Options) (bool, Stats, error) {
	opts = opts.withDefaults()
	if err := validateInput(c, opts); err != nil {
		return false, Stats{}, err
	}
	if phi < 1 {
		return false, Stats{}, nil
	}
	guard := startGuard(ctx)
	defer guard.release()
	s := newState(c, phi, opts)
	s.guard = guard
	s.cache.openLog(opts)
	defer s.cache.closeLog(opts)
	opts.Progress.SetSampler(liveCounters(s.conc, opts.Trace))
	var ring *obs.Ring
	var t0 int64
	if opts.Trace != nil {
		ring = opts.Trace.NewRing("probe")
		t0 = ring.Now()
	}
	s.conc.AddProbeLaunched()
	ok, err := s.run()
	if ring != nil {
		ring.Span(obs.OpProbe, t0, int64(phi), probeVerdict(ok, err))
	}
	if opts.Logger != nil {
		opts.Logger.Debug("probe", "phi", phi, "feasible", ok,
			"iterations", s.stats.Iterations, "cutChecks", s.stats.CutChecks, "err", err)
	}
	st := s.stats
	st.fold(s.conc.Snapshot())
	foldTrace(&st, opts.Trace)
	if err != nil {
		return false, st, wrapAbort(err, "probe", -1, st)
	}
	return ok, st, nil
}

// MapAtRatio computes labels and a mapped LUT network for a specific
// feasible phi. It fails if phi is infeasible.
func MapAtRatio(c *netlist.Circuit, phi int, opts Options) (*Result, error) {
	return MapAtRatioContext(context.Background(), c, phi, opts)
}

// MapAtRatioContext is MapAtRatio under a context (see FeasibleContext).
func MapAtRatioContext(ctx context.Context, c *netlist.Circuit, phi int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := validateInput(c, opts); err != nil {
		return nil, err
	}
	guard := startGuard(ctx)
	defer guard.release()
	conc := &stats.Concurrency{}
	cache := newDecompCache(conc)
	cache.openLog(opts)
	defer cache.closeLog(opts)
	opts.Progress.SetSampler(liveCounters(conc, opts.Trace))
	opts.Progress.SetPhase("map")
	var ring *obs.Ring
	var t0 int64
	if opts.Trace != nil {
		ring = opts.Trace.NewRing("map")
		t0 = ring.Now()
	}
	res, st, err := mapAtRatio(c, phi, opts, cache, conc, guard)
	if ring != nil {
		ring.Span(obs.OpMap, t0, int64(phi), probeVerdict(err == nil, err))
	}
	if err != nil {
		st.fold(conc.Snapshot())
		foldTrace(&st, opts.Trace)
		return nil, wrapAbort(err, "map", -1, st)
	}
	res.Stats.fold(conc.Snapshot())
	foldTrace(&res.Stats, opts.Trace)
	return res, nil
}

// mapAtRatio is MapAtRatio over a search-wide cache, counter set and
// context guard; the caller folds the counters into the final Stats exactly
// once. The returned Stats carry the partial work even when err != nil.
func mapAtRatio(c *netlist.Circuit, phi int, opts Options, cache *decompCache, conc *stats.Concurrency, guard *runGuard) (*Result, Stats, error) {
	s := newState(c, phi, opts)
	s.attach(cache, conc, nil)
	s.guard = guard
	conc.AddProbeLaunched()
	ok, err := s.run()
	if err != nil {
		return nil, s.stats, err
	}
	if !ok {
		return nil, s.stats, fmt.Errorf("core: target %d is infeasible for %s", phi, c.Name)
	}
	if opts.Relax && opts.Decompose {
		if err := s.relaxForArea(); err != nil {
			return nil, s.stats, err
		}
	}
	m, origOf, err := s.generate()
	if err != nil {
		return nil, s.stats, err
	}
	return &Result{
		Phi:    phi,
		Labels: s.labels,
		Mapped: m,
		LUTs:   m.NumGates(),
		OrigOf: origOf,
		Stats:  s.stats,
		Opts:   opts,
	}, s.stats, nil
}

// Minimize finds the minimum feasible phi by binary search and returns the
// mapping at that phi. The upper bound follows the paper: the trivial
// one-gate-per-LUT mapping achieves the current clock period, and for the
// MDR objective TurboMap's minimum clock period is itself an upper bound
// (computed first when opts.Decompose is set, mirroring "first run TurboMap
// to get an upper bound UB").
func Minimize(c *netlist.Circuit, opts Options) (*Result, error) {
	return MinimizeContext(context.Background(), c, opts)
}

// MinimizeContext is Minimize under a context. Cancellation or deadline
// expiry aborts the search at the next checkpoint — probes poll an atomic
// flag at sweep granularity, so the abort lands well under a second even on
// large circuits — and returns a *CancelError carrying the phase that
// observed it, the best feasible phi proven so far (-1 when none) and the
// partial work statistics.
func MinimizeContext(ctx context.Context, c *netlist.Circuit, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := validateInput(c, opts); err != nil {
		return nil, err
	}
	guard := startGuard(ctx)
	defer guard.release()
	// One decomposition cache and one counter set span the whole search —
	// every probe, speculative or not, and the final mapping pass.
	conc := &stats.Concurrency{}
	cache := newDecompCache(conc)
	cache.openLog(opts)
	defer cache.closeLog(opts)
	opts.Progress.SetSampler(liveCounters(conc, opts.Trace))
	var total Stats
	fail := func(err error, phase string, best int) (*Result, error) {
		if opts.Logger != nil {
			opts.Logger.Warn("search aborted", "phase", phase, "bestPhi", best, "err", err)
		}
		total.fold(conc.Snapshot())
		foldTrace(&total, opts.Trace)
		return nil, wrapAbort(err, phase, best, total)
	}
	ub := retime.Period(c)
	if ub < 1 {
		ub = 1
	}
	if opts.Decompose && opts.Pipelined {
		// Paper's UB: TurboMap's optimum seeds TurboSYN's search.
		opts.Progress.SetPhase("turbomap-ub")
		tmOpts := opts
		tmOpts.Decompose = false
		tm, err := minimizeSearch(c, ub, tmOpts, &total, cache, conc, guard)
		if err != nil {
			return fail(err, "turbomap-ub", tm)
		}
		if opts.Logger != nil {
			opts.Logger.Debug("turbomap upper bound", "ub", tm, "retimedUB", ub)
		}
		ub = tm
	}
	opts.Progress.SetPhase("search")
	best, err := minimizeSearch(c, ub, opts, &total, cache, conc, guard)
	if err != nil {
		return fail(err, "search", best)
	}
	opts.Progress.SetPhase("map")
	var mapRing *obs.Ring
	var t0 int64
	if opts.Trace != nil {
		mapRing = opts.Trace.NewRing("map")
		t0 = mapRing.Now()
	}
	res, st, err := mapAtRatio(c, best, opts, cache, conc, guard)
	if mapRing != nil {
		mapRing.Span(obs.OpMap, t0, int64(best), probeVerdict(err == nil, err))
	}
	if err != nil {
		total.Add(st)
		return fail(err, "map", best)
	}
	total.Add(res.Stats)
	res.Stats = total
	res.Stats.fold(conc.Snapshot())
	foldTrace(&res.Stats, opts.Trace)
	return res, nil
}

// warmUseful reports whether labels converged at seedPhi should seed a
// probe at phi. Seeding is always sound (the seed lower-bounds the probe's
// fixpoint), but its payoff decays with distance: far below seedPhi the
// bound is loose while it still pushes the very first sweeps into large
// expansions, where K-cut checks are most expensive — on small circuits a
// distant infeasible probe runs measurably slower warm than cold (bbara's
// TurboMap probe at phi=1 seeded from phi=3 nearly doubles its cut checks).
// Probes within a factor of two of their seed keep the measured benefit, so
// the gate skips only the far ones.
func warmUseful(phi, seedPhi int) bool {
	return 2*phi >= seedPhi
}

// minimizeSearch binary-searches the smallest feasible phi in [1, ub].
// ub must be feasible. The accumulated statistics cover exactly the probes
// on the canonical binary-search path, so totals match the sequential
// search; speculative probes count only through the shared conc counters.
// On an aborting error the returned phi is the best feasible one proven
// before the abort (-1 when none), so the caller can report partial
// progress.
func minimizeSearch(cc *netlist.Circuit, ub int, opts Options, total *Stats, cache *decompCache, conc *stats.Concurrency, guard *runGuard) (int, error) {
	workers := opts.workerCount()
	if workers > 1 && opts.IterBudget <= 0 && ub > 2 {
		return speculativeSearch(cc, ub, opts, total, cache, conc, guard, workers)
	}
	// Every later probe targets a phi below the best feasible one found so
	// far, so the best probe's converged labels always qualify as a seed.
	warm := !opts.NoWarmStart && opts.IterBudget <= 0
	var warmLabels []int
	warmPhi := 0
	var ring *obs.Ring
	if opts.Trace != nil {
		ring = opts.Trace.NewRing("search")
	}
	lo, hi := 1, ub
	best := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		s := newState(cc, mid, opts)
		s.attach(cache, conc, nil)
		s.guard = guard
		if warm && warmLabels != nil && warmUseful(mid, warmPhi) {
			s.seedLabels(warmLabels)
		}
		var t0 int64
		if ring != nil {
			t0 = ring.Now()
		}
		conc.AddProbeLaunched()
		ok, err := s.run()
		if ring != nil {
			ring.Span(obs.OpProbe, t0, int64(mid), probeVerdict(ok, err))
		}
		if opts.Logger != nil {
			opts.Logger.Debug("probe", "phi", mid, "feasible", ok,
				"iterations", s.stats.Iterations, "cutChecks", s.stats.CutChecks, "err", err)
		}
		total.Add(s.stats)
		if err != nil {
			return best, err
		}
		if ok {
			best = mid
			opts.Progress.SetBestPhi(mid)
			warmLabels, warmPhi = s.labels, mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("core: no feasible target up to %d for %s (is the upper bound wrong?)",
			ub, cc.Name)
	}
	return best, nil
}

// probe is one asynchronous feasibility decision at a fixed phi.
type probe struct {
	phi    int
	cancel atomic.Bool
	done   chan struct{}
	ok     bool
	err    error // aborting error (ctx, strict budget, contained panic)
	stats  Stats
	labels []int // converged labels when ok (warm-start seed for later probes)
	// Tracing bookkeeping, written only by the search goroutine: the launch
	// time on the search ring, and whether the probe's span was recorded yet
	// (midpoints record at acceptance, everything else at the wind-down join).
	t0      int64
	spanned bool
}

// speculativeSearch runs the same binary search as minimizeSearch but
// probes ahead: alongside the midpoint it launches the midpoints of both
// possible next intervals, so whichever way the current probe resolves, the
// next decision is already in flight. The probe for the branch not taken is
// cancelled (state.run notices via its cancel flag and aborts between
// sweeps). Verdicts are deterministic per phi, so the search visits exactly
// the phis the sequential search would and returns the same minimum.
//
// Fault containment: every probe goroutine carries a top-level recover (a
// panic that escapes the label engine's own boundary becomes an
// InternalError instead of killing the process), and the wind-down joins
// every probe ever launched — cancelled lookaheads included — before
// returning, so no goroutine outlives the search and no probe's error is
// dropped on the floor.
func speculativeSearch(cc *netlist.Circuit, ub int, opts Options, total *Stats, cache *decompCache, conc *stats.Concurrency, guard *runGuard, workers int) (best int, err error) {
	// Split the pool between concurrent probes: the midpoint probe is the
	// one blocking progress, the two lookahead probes ride along. Inner
	// worker counts never change results, only scheduling.
	maxProbes := 3
	if workers < maxProbes {
		maxProbes = workers
	}
	inner := workers / maxProbes
	if inner < 1 {
		inner = 1
	}
	popts := opts
	popts.Workers = inner

	var ring *obs.Ring
	if opts.Trace != nil {
		ring = opts.Trace.NewRing("search")
	}
	// record emits a joined probe's span and log line exactly once; verdicts
	// of lost-speculation cancels are marked aborted rather than infeasible.
	record := func(p *probe) {
		if p.spanned {
			return
		}
		p.spanned = true
		cancelled := p.cancel.Load()
		if ring != nil {
			v := probeVerdict(p.ok, p.err)
			if cancelled && p.err == nil {
				v = -2
			}
			ring.Span(obs.OpProbe, p.t0, int64(p.phi), v)
		}
		if opts.Logger != nil {
			opts.Logger.Debug("probe", "phi", p.phi, "feasible", p.ok,
				"cancelled", cancelled, "iterations", p.stats.Iterations, "err", p.err)
		}
	}

	// Warm-start store: every launch targets a phi at or below hi, which is
	// strictly below the best feasible probe accepted so far, so the latest
	// accepted probe's labels always qualify as a seed (subject to the same
	// warmUseful distance gate as the sequential search). The store is read
	// and written only on this goroutine (launches and accepts both happen
	// in the search loop), and a stored slice is never mutated again — the
	// probe that produced it has finished and seeding copies it.
	warm := !opts.NoWarmStart
	var warmLabels []int
	warmPhi := 0

	running := make(map[int]*probe)
	var all []*probe // every probe ever launched, for the wind-down join
	launch := func(phi int) {
		if _, ok := running[phi]; ok {
			return
		}
		p := &probe{phi: phi, done: make(chan struct{})}
		if ring != nil {
			p.t0 = ring.Now()
		}
		running[phi] = p
		all = append(all, p)
		conc.AddProbeLaunched()
		seed := warmLabels
		if !warmUseful(phi, warmPhi) {
			seed = nil
		}
		go func() {
			defer close(p.done)
			defer func() {
				if r := recover(); r != nil {
					p.err = newInternalError(r, "probe", -1, -1)
				}
			}()
			s := newState(cc, phi, popts)
			s.attach(cache, conc, &p.cancel)
			s.guard = guard
			if seed != nil {
				s.seedLabels(seed)
			}
			p.ok, p.err = s.run()
			p.stats = s.stats
			p.labels = s.labels
		}()
	}
	drop := func(p *probe, cancelled bool) {
		delete(running, p.phi)
		if cancelled {
			p.cancel.Store(true)
			conc.AddProbeCancelled()
		}
	}

	lo, hi := 1, ub
	best = -1
	for lo <= hi {
		mid := (lo + hi) / 2
		launch(mid)
		if left := mid - 1; lo <= left && len(running) < maxProbes {
			launch((lo + left) / 2)
		}
		if right := mid + 1; right <= hi && len(running) < maxProbes {
			launch((right + hi) / 2)
		}
		p := running[mid]
		<-p.done
		drop(p, false)
		record(p)
		total.Add(p.stats)
		if p.err != nil {
			err = p.err
			break
		}
		if p.ok {
			best = mid
			opts.Progress.SetBestPhi(mid)
			if warm {
				warmLabels, warmPhi = p.labels, mid
			}
			hi = mid - 1
		} else {
			lo = mid + 1
		}
		// Cancel probes that fell outside the remaining interval; they can
		// never become a midpoint again.
		for phi, q := range running {
			if phi < lo || phi > hi {
				drop(q, true)
			}
		}
	}
	// Wind down: cancel whatever is still running, then join every probe
	// ever launched. Any aborting error a non-midpoint probe hit (a strict
	// budget, a contained panic — a lost-speculation cancel is not an error)
	// surfaces here rather than being silently discarded with the probe.
	for _, q := range running {
		q.cancel.Store(true)
		conc.AddProbeCancelled()
	}
	for _, q := range all {
		<-q.done
		record(q)
		if err == nil && q.err != nil {
			err = q.err
		}
	}
	if err != nil {
		return best, err
	}
	if best < 0 {
		return -1, fmt.Errorf("core: no feasible target up to %d for %s (is the upper bound wrong?)",
			ub, cc.Name)
	}
	return best, nil
}
