package core

import (
	"fmt"

	"turbosyn/internal/netlist"
	"turbosyn/internal/retime"
)

// Feasible decides Problem 2: does a mapping with clock period (or, when
// opts.Pipelined, MDR ratio) at most phi exist? It returns the probe's work
// statistics alongside.
func Feasible(c *netlist.Circuit, phi int, opts Options) (bool, Stats, error) {
	opts = opts.withDefaults()
	if err := validateInput(c, opts); err != nil {
		return false, Stats{}, err
	}
	if phi < 1 {
		return false, Stats{}, nil
	}
	s := newState(c, phi, opts)
	ok := s.run()
	return ok, s.stats, nil
}

// MapAtRatio computes labels and a mapped LUT network for a specific
// feasible phi. It fails if phi is infeasible.
func MapAtRatio(c *netlist.Circuit, phi int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := validateInput(c, opts); err != nil {
		return nil, err
	}
	s := newState(c, phi, opts)
	if !s.run() {
		return nil, fmt.Errorf("core: target %d is infeasible for %s", phi, c.Name)
	}
	if opts.Relax && opts.Decompose {
		s.relaxForArea()
	}
	m, origOf, err := s.generate()
	if err != nil {
		return nil, err
	}
	return &Result{
		Phi:    phi,
		Labels: s.labels,
		Mapped: m,
		LUTs:   m.NumGates(),
		OrigOf: origOf,
		Stats:  s.stats,
		Opts:   opts,
	}, nil
}

// Minimize finds the minimum feasible phi by binary search and returns the
// mapping at that phi. The upper bound follows the paper: the trivial
// one-gate-per-LUT mapping achieves the current clock period, and for the
// MDR objective TurboMap's minimum clock period is itself an upper bound
// (computed first when opts.Decompose is set, mirroring "first run TurboMap
// to get an upper bound UB").
func Minimize(c *netlist.Circuit, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := validateInput(c, opts); err != nil {
		return nil, err
	}
	var total Stats
	ub := retime.Period(c)
	if ub < 1 {
		ub = 1
	}
	if opts.Decompose && opts.Pipelined {
		// Paper's UB: TurboMap's optimum seeds TurboSYN's search.
		tmOpts := opts
		tmOpts.Decompose = false
		tm, err := minimizeSearch(c, ub, tmOpts, &total)
		if err != nil {
			return nil, err
		}
		ub = tm
	}
	best, err := minimizeSearch(c, ub, opts, &total)
	if err != nil {
		return nil, err
	}
	res, err := MapAtRatio(c, best, opts)
	if err != nil {
		return nil, err
	}
	total.Add(res.Stats)
	res.Stats = total
	return res, nil
}

// minimizeSearch binary-searches the smallest feasible phi in [1, ub].
// ub must be feasible.
func minimizeSearch(cc *netlist.Circuit, ub int, opts Options, total *Stats) (int, error) {
	lo, hi := 1, ub
	best := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		s := newState(cc, mid, opts)
		ok := s.run()
		total.Add(s.stats)
		if ok {
			best = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("core: no feasible target up to %d for %s (is the upper bound wrong?)",
			ub, cc.Name)
	}
	return best, nil
}
