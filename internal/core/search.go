package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"turbosyn/internal/netlist"
	"turbosyn/internal/obs"
	"turbosyn/internal/stats"
)

// The package-level entry points are thin wrappers over a throwaway Engine:
// the engine owns the circuit analysis, the decomposition cache (with the
// persisted log, when configured) and the arena pool for exactly one call,
// and its Close flushes the log on every exit path. Results are bit-identical
// to the pooled path — the engine methods are the same code.

// Feasible decides Problem 2: does a mapping with clock period (or, when
// opts.Pipelined, MDR ratio) at most phi exist? It returns the probe's work
// statistics alongside.
func Feasible(c *netlist.Circuit, phi int, opts Options) (bool, Stats, error) {
	return FeasibleContext(context.Background(), c, phi, opts)
}

// FeasibleContext is Feasible under a context: cancellation or deadline
// expiry aborts the probe between sweeps (and within long sweeps) and
// returns a *CancelError wrapping the context's error, with the partial
// work statistics attached.
func FeasibleContext(ctx context.Context, c *netlist.Circuit, phi int, opts Options) (bool, Stats, error) {
	e, err := NewEngine(c, opts)
	if err != nil {
		return false, Stats{}, err
	}
	defer e.Close()
	return e.FeasibleContext(ctx, phi, opts)
}

// MapAtRatio computes labels and a mapped LUT network for a specific
// feasible phi. It fails if phi is infeasible.
func MapAtRatio(c *netlist.Circuit, phi int, opts Options) (*Result, error) {
	return MapAtRatioContext(context.Background(), c, phi, opts)
}

// MapAtRatioContext is MapAtRatio under a context (see FeasibleContext).
func MapAtRatioContext(ctx context.Context, c *netlist.Circuit, phi int, opts Options) (*Result, error) {
	e, err := NewEngine(c, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.MapAtRatioContext(ctx, phi, opts)
}

// Minimize finds the minimum feasible phi by binary search and returns the
// mapping at that phi. The upper bound follows the paper: the trivial
// one-gate-per-LUT mapping achieves the current clock period, and for the
// MDR objective TurboMap's minimum clock period is itself an upper bound
// (computed first when opts.Decompose is set, mirroring "first run TurboMap
// to get an upper bound UB").
func Minimize(c *netlist.Circuit, opts Options) (*Result, error) {
	return MinimizeContext(context.Background(), c, opts)
}

// MinimizeContext is Minimize under a context. Cancellation or deadline
// expiry aborts the search at the next checkpoint — probes poll an atomic
// flag at sweep granularity, so the abort lands well under a second even on
// large circuits — and returns a *CancelError carrying the phase that
// observed it, the best feasible phi proven so far (-1 when none) and the
// partial work statistics.
func MinimizeContext(ctx context.Context, c *netlist.Circuit, opts Options) (*Result, error) {
	e, err := NewEngine(c, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.MinimizeContext(ctx, opts)
}

// warmUseful reports whether labels converged at seedPhi should seed a
// probe at phi. Seeding is always sound (the seed lower-bounds the probe's
// fixpoint), but its payoff decays with distance: far below seedPhi the
// bound is loose while it still pushes the very first sweeps into large
// expansions, where K-cut checks are most expensive — on small circuits a
// distant infeasible probe runs measurably slower warm than cold (bbara's
// TurboMap probe at phi=1 seeded from phi=3 nearly doubles its cut checks).
// Probes within a factor of two of their seed keep the measured benefit, so
// the gate skips only the far ones.
func warmUseful(phi, seedPhi int) bool {
	return 2*phi >= seedPhi
}

// minimizeSearch binary-searches the smallest feasible phi in [1, ub].
// ub must be feasible. The accumulated statistics cover exactly the probes
// on the canonical binary-search path, so totals match the sequential
// search; speculative probes count only through the shared conc counters.
// On an aborting error the returned phi is the best feasible one proven
// before the abort (-1 when none), so the caller can report partial
// progress. Every probe checks its state (and through it, worker arenas)
// out of the engine; newState never runs on this path.
func (e *Engine) minimizeSearch(ub int, opts Options, total *Stats, conc *stats.Concurrency, guard *runGuard) (int, error) {
	workers := opts.workerCount()
	if workers > 1 && opts.IterBudget <= 0 && ub > 2 {
		return e.speculativeSearch(ub, opts, total, conc, guard, workers)
	}
	// Every later probe targets a phi below the best feasible one found so
	// far, so the best probe's converged labels always qualify as a seed.
	// The warm store owns its buffer: the probe's label array returns to the
	// engine with the state and is overwritten by the next checkout.
	warm := !opts.NoWarmStart && opts.IterBudget <= 0
	var warmLabels []int
	warmPhi := 0
	var ring *obs.Ring
	if opts.Trace != nil {
		ring = opts.Trace.NewRing("search")
	}
	lo, hi := 1, ub
	best := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		s := e.checkoutState(mid, opts)
		s.attach(e.cache, conc, nil)
		s.guard = guard
		if warm && warmLabels != nil && warmUseful(mid, warmPhi) {
			s.seedLabels(warmLabels, warmPhi)
		}
		var t0 int64
		if ring != nil {
			t0 = ring.Now()
		}
		conc.AddProbeLaunched()
		ok, err := s.run()
		if ring != nil {
			ring.Span(obs.OpProbe, t0, int64(mid), probeVerdict(ok, err))
		}
		if opts.Logger != nil {
			opts.Logger.Debug("probe", "phi", mid, "feasible", ok,
				"iterations", s.stats.Iterations, "cutChecks", s.stats.CutChecks, "err", err)
		}
		total.Add(s.stats)
		if err != nil {
			e.checkinState(s)
			return best, err
		}
		if ok {
			best = mid
			opts.Progress.SetBestPhi(mid)
			warmLabels = append(warmLabels[:0], s.labels...)
			warmPhi = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
		e.checkinState(s)
	}
	if best < 0 {
		return -1, fmt.Errorf("core: no feasible target up to %d for %s (is the upper bound wrong?)",
			ub, e.c.Name)
	}
	return best, nil
}

// probe is one asynchronous feasibility decision at a fixed phi.
type probe struct {
	phi    int
	cancel atomic.Bool
	done   chan struct{}
	ok     bool
	err    error // aborting error (ctx, strict budget, contained panic)
	stats  Stats
	labels []int // converged labels when ok (warm-start seed for later probes)
	// Tracing bookkeeping, written only by the search goroutine: the launch
	// time on the search ring, and whether the probe's span was recorded yet
	// (midpoints record at acceptance, everything else at the wind-down join).
	t0      int64
	spanned bool
}

// speculativeSearch runs the same binary search as minimizeSearch but
// probes ahead: alongside the midpoint it launches the midpoints of both
// possible next intervals, so whichever way the current probe resolves, the
// next decision is already in flight. The probe for the branch not taken is
// cancelled (state.run notices via its cancel flag and aborts between
// sweeps). Verdicts are deterministic per phi, so the search visits exactly
// the phis the sequential search would and returns the same minimum.
//
// Every probe goroutine checks a state out of the engine and returns it at
// exit: concurrent probes simply hold distinct pooled states, and a
// cancelled lookahead's state (arenas included) is reusable the moment it is
// checked back in — only fatal aborts poison arenas.
//
// Fault containment: every probe goroutine carries a top-level recover (a
// panic that escapes the label engine's own boundary becomes an
// InternalError instead of killing the process), and the wind-down joins
// every probe ever launched — cancelled lookaheads included — before
// returning, so no goroutine outlives the search and no probe's error is
// dropped on the floor.
func (e *Engine) speculativeSearch(ub int, opts Options, total *Stats, conc *stats.Concurrency, guard *runGuard, workers int) (best int, err error) {
	// Split the pool between concurrent probes: the midpoint probe is the
	// one blocking progress, the two lookahead probes ride along. Inner
	// worker counts never change results, only scheduling.
	maxProbes := 3
	if workers < maxProbes {
		maxProbes = workers
	}
	inner := workers / maxProbes
	if inner < 1 {
		inner = 1
	}
	popts := opts
	popts.Workers = inner

	var ring *obs.Ring
	if opts.Trace != nil {
		ring = opts.Trace.NewRing("search")
	}
	// record emits a joined probe's span and log line exactly once; verdicts
	// of lost-speculation cancels are marked aborted rather than infeasible.
	record := func(p *probe) {
		if p.spanned {
			return
		}
		p.spanned = true
		cancelled := p.cancel.Load()
		if ring != nil {
			v := probeVerdict(p.ok, p.err)
			if cancelled && p.err == nil {
				v = -2
			}
			ring.Span(obs.OpProbe, p.t0, int64(p.phi), v)
		}
		if opts.Logger != nil {
			opts.Logger.Debug("probe", "phi", p.phi, "feasible", p.ok,
				"cancelled", cancelled, "iterations", p.stats.Iterations, "err", p.err)
		}
	}

	// Warm-start store: every launch targets a phi at or below hi, which is
	// strictly below the best feasible probe accepted so far, so the latest
	// accepted probe's labels always qualify as a seed (subject to the same
	// warmUseful distance gate as the sequential search). The store is read
	// and written only on this goroutine (launches and accepts both happen
	// in the search loop), and a stored slice is never mutated again — the
	// probe copied it out of its state before checkin, and seeding copies it
	// into the new probe's state.
	warm := !opts.NoWarmStart
	var warmLabels []int
	warmPhi := 0

	running := make(map[int]*probe)
	var all []*probe // every probe ever launched, for the wind-down join
	launch := func(phi int) {
		if _, ok := running[phi]; ok {
			return
		}
		p := &probe{phi: phi, done: make(chan struct{})}
		if ring != nil {
			p.t0 = ring.Now()
		}
		running[phi] = p
		all = append(all, p)
		conc.AddProbeLaunched()
		seed, seedPhi := warmLabels, warmPhi
		if !warmUseful(phi, warmPhi) {
			seed = nil
		}
		go func() {
			defer close(p.done)
			s := e.checkoutState(phi, popts)
			defer e.checkinState(s)
			defer func() {
				if r := recover(); r != nil {
					p.err = newInternalError(r, "probe", -1, -1)
					// Record the failure on the state so checkin poisons its
					// arenas: the panic escaped the per-component boundary, so
					// nothing about the probe's scratch can be trusted.
					s.fails.fail(p.err)
				}
			}()
			s.attach(e.cache, conc, &p.cancel)
			s.guard = guard
			if seed != nil {
				s.seedLabels(seed, seedPhi)
			}
			p.ok, p.err = s.run()
			p.stats = s.stats
			if p.ok {
				// Copy out before the deferred checkin recycles the state.
				p.labels = append([]int(nil), s.labels...)
			}
		}()
	}
	drop := func(p *probe, cancelled bool) {
		delete(running, p.phi)
		if cancelled {
			p.cancel.Store(true)
			conc.AddProbeCancelled()
		}
	}

	lo, hi := 1, ub
	best = -1
	for lo <= hi {
		mid := (lo + hi) / 2
		launch(mid)
		if left := mid - 1; lo <= left && len(running) < maxProbes {
			launch((lo + left) / 2)
		}
		if right := mid + 1; right <= hi && len(running) < maxProbes {
			launch((right + hi) / 2)
		}
		p := running[mid]
		<-p.done
		drop(p, false)
		record(p)
		total.Add(p.stats)
		if p.err != nil {
			err = p.err
			break
		}
		if p.ok {
			best = mid
			opts.Progress.SetBestPhi(mid)
			if warm {
				warmLabels, warmPhi = p.labels, mid
			}
			hi = mid - 1
		} else {
			lo = mid + 1
		}
		// Cancel probes that fell outside the remaining interval; they can
		// never become a midpoint again.
		for phi, q := range running {
			if phi < lo || phi > hi {
				drop(q, true)
			}
		}
	}
	// Wind down: cancel whatever is still running, then join every probe
	// ever launched. Any aborting error a non-midpoint probe hit (a strict
	// budget, a contained panic — a lost-speculation cancel is not an error)
	// surfaces here rather than being silently discarded with the probe.
	for _, q := range running {
		q.cancel.Store(true)
		conc.AddProbeCancelled()
	}
	for _, q := range all {
		<-q.done
		record(q)
		if err == nil && q.err != nil {
			err = q.err
		}
	}
	if err != nil {
		return best, err
	}
	if best < 0 {
		return -1, fmt.Errorf("core: no feasible target up to %d for %s (is the upper bound wrong?)",
			ub, e.c.Name)
	}
	return best, nil
}
