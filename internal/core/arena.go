package core

import (
	"fmt"

	"turbosyn/internal/cut"
	"turbosyn/internal/expand"
	"turbosyn/internal/logic"
	"turbosyn/internal/obs"
)

// arena is the per-worker scratch of the label hot path: one expansion
// builder, one cut arena (flow network + cone walk scratch) and the
// cone-function evaluation scratch. Every piece retains its backing arrays
// across calls, so a warm arena decides a node's label without heap
// allocation on the structural path.
//
// Ownership model (see DESIGN.md, "Scratch arenas"): the sequential engine
// owns arena 0; the parallel engine hands arena w to pool worker w, and a
// level barrier separates any two uses of the same arena by different
// goroutines. Results never alias arena memory — covers copy replicas out —
// so arenas are invisible in the output.
type arena struct {
	xb expand.Builder
	ca cut.Arena

	// coneFunction scratch, sized to the current expansion.
	varOf []int // replica id -> cut variable, -1 inside the cone
	memo  []*logic.TT

	// tt recycles the transient truth tables of cone-function evaluation
	// (Shannon cofactors, composition intermediates, per-replica memo
	// entries). Single-owner like the rest of the arena; warm tables survive
	// probe and run boundaries through the engine's arena pool.
	tt logic.TTPool

	// NPN canonicalization memo (worker-local, so lock-free): cone functions
	// recur heavily across label iterations and the exact canonicalization of
	// a 6-input cone enumerates ~92k candidates, so tryDecompose memoizes
	// (canon, transform) by raw function. npnKey is the reusable key scratch.
	npnMemo map[string]npnEntry
	npnKey  []byte

	// sccIsolated scratch, sized to the circuit. (The per-component update
	// lists iterateComp sweeps are precomputed CSR ranges in analysis, not
	// arena scratch.)
	reach  []bool
	rqueue []int

	// The bound the builder's expansion currently describes, and whether it
	// is valid for the node being decided (set by decide, consumed by the
	// tighter/looser probes of the same node).
	builtL int
	built  bool

	// curNode is the circuit node the owning worker is currently deciding,
	// -1 between decisions. Read only by the panic-containment boundary
	// (safeRunComp) to attribute a contained panic to a node.
	curNode int

	// poisoned marks an arena whose run was interrupted in a way that may
	// have left its scratch mid-mutation (a contained panic in the owning
	// worker, or a run aborted by cancellation/strict budget). A poisoned
	// arena is discarded at pool checkin instead of being reused; the flag is
	// cleared on checkout of a (necessarily clean) pooled arena.
	poisoned bool

	// ring is the owning worker's trace buffer, nil unless Options.Trace is
	// set. Single-owner like the rest of the arena: only the goroutine
	// running on this arena writes it, and the recorder reads it after the
	// run's goroutines have been joined.
	ring *obs.Ring
}

// reset releases every retained array back to the allocator (the
// ArenaByteBudget degradation). The arena stays usable; it just re-grows
// from cold on its next use.
func (ar *arena) reset() {
	*ar = arena{curNode: ar.curNode, ring: ar.ring, poisoned: ar.poisoned}
}

// bytes reports the approximate footprint of the arena's retained arrays
// (the Stats.ArenaPeakBytes high-water mark).
func (ar *arena) bytes() int {
	return ar.xb.Bytes() + ar.ca.Bytes() +
		cap(ar.varOf)*8 + cap(ar.memo)*8 + ar.tt.Bytes() +
		cap(ar.reach) + cap(ar.rqueue)*8 +
		len(ar.npnMemo)*npnEntryBytes + cap(ar.npnKey)
}

// npnEntry is one memoized canonicalization: the canonical table and the
// transform with tr.Apply(raw) == canon. Both are immutable once stored —
// canon feeds cache keys and Decompose (which never mutate their input) and
// the transform's Perm is only read.
type npnEntry struct {
	canon *logic.TT
	tr    logic.NPNTransform
}

// npnMemoCap bounds the per-arena memo; when full it is cleared wholesale
// (cone functions cluster in time, so wholesale reset beats eviction
// bookkeeping). npnEntryBytes is the rough per-entry footprint charged to
// the arena byte budget (key string + table + transform).
const (
	npnMemoCap    = 1 << 12
	npnEntryBytes = 96
)

// npnCanon is logic.NPNCanon behind the arena's memo.
func (ar *arena) npnCanon(fn *logic.TT) (*logic.TT, logic.NPNTransform) {
	ar.npnKey = append(ar.npnKey[:0], byte(fn.NumVars()))
	ar.npnKey = fn.AppendWordBytes(ar.npnKey)
	if e, ok := ar.npnMemo[string(ar.npnKey)]; ok {
		return e.canon, e.tr
	}
	canon, tr := logic.NPNCanon(fn)
	if ar.npnMemo == nil {
		ar.npnMemo = make(map[string]npnEntry)
	} else if len(ar.npnMemo) >= npnMemoCap {
		clear(ar.npnMemo)
	}
	ar.npnMemo[string(ar.npnKey)] = npnEntry{canon: canon, tr: tr}
	return canon, tr
}

// arenaFor returns the worker's scratch arena, checking it out of the
// engine's pool (warm backing arrays, no re-growth) or creating it on first
// use. The cold path also attaches the worker's trace ring: one ring per
// (probe, worker), labelled by the probe's phi so a trace groups each
// probe's workers together.
//
// Callers never race: the sequential sweep asks for arena 0 on the run
// goroutine, and the parallel scheduler checks every worker's arena out
// before spawning the pool — which also makes the checkout counters plain
// s.stats writes.
func (s *state) arenaFor(w int) *arena {
	for len(s.arenas) <= w {
		var ar *arena
		if s.pool != nil {
			var pooled bool
			ar, pooled = s.pool.checkout()
			s.stats.ArenaCheckouts++
			if pooled {
				s.stats.ArenaPoolHits++
			}
		} else {
			ar = &arena{curNode: -1}
		}
		if s.rec != nil {
			ar.ring = s.rec.NewRing(fmt.Sprintf("phi=%d worker %d", s.phi, len(s.arenas)))
		}
		s.arenas = append(s.arenas, ar)
	}
	return s.arenas[w]
}
