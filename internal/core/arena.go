package core

import (
	"turbosyn/internal/cut"
	"turbosyn/internal/expand"
	"turbosyn/internal/logic"
)

// arena is the per-worker scratch of the label hot path: one expansion
// builder, one cut arena (flow network + cone walk scratch) and the
// cone-function evaluation scratch. Every piece retains its backing arrays
// across calls, so a warm arena decides a node's label without heap
// allocation on the structural path.
//
// Ownership model (see DESIGN.md, "Scratch arenas"): the sequential engine
// owns arena 0; the parallel engine hands arena w to pool worker w, and a
// level barrier separates any two uses of the same arena by different
// goroutines. Results never alias arena memory — covers copy replicas out —
// so arenas are invisible in the output.
type arena struct {
	xb expand.Builder
	ca cut.Arena

	// coneFunction scratch, sized to the current expansion.
	varOf []int // replica id -> cut variable, -1 inside the cone
	memo  []*logic.TT

	// iterateComp / sccIsolated scratch, sized to the circuit.
	updatable []int
	reach     []bool
	rqueue    []int

	// The bound the builder's expansion currently describes, and whether it
	// is valid for the node being decided (set by decide, consumed by the
	// tighter/looser probes of the same node).
	builtL int
	built  bool

	// curNode is the circuit node the owning worker is currently deciding,
	// -1 between decisions. Read only by the panic-containment boundary
	// (safeRunComp) to attribute a contained panic to a node.
	curNode int
}

// reset releases every retained array back to the allocator (the
// ArenaByteBudget degradation). The arena stays usable; it just re-grows
// from cold on its next use.
func (ar *arena) reset() {
	*ar = arena{curNode: ar.curNode}
}

// bytes reports the approximate footprint of the arena's retained arrays
// (the Stats.ArenaPeakBytes high-water mark).
func (ar *arena) bytes() int {
	return ar.xb.Bytes() + ar.ca.Bytes() +
		cap(ar.varOf)*8 + cap(ar.memo)*8 +
		cap(ar.updatable)*8 + cap(ar.reach) + cap(ar.rqueue)*8
}

// arenaFor returns the worker's scratch arena, creating it on first use.
func (s *state) arenaFor(w int) *arena {
	for len(s.arenas) <= w {
		s.arenas = append(s.arenas, &arena{curNode: -1})
	}
	return s.arenas[w]
}
