package sim

import (
	"fmt"

	"turbosyn/internal/netlist"
)

// NodeValue returns node id's output during the most recent Step.
func (s *Simulator) NodeValue(id int) bool { return s.cur[id] }

// SetPast seeds node id's register history: past[w-1] becomes the value the
// node emitted w cycles ago. Entries beyond the node's recorded depth are
// ignored; missing entries default to false.
func (s *Simulator) SetPast(id int, past []bool) {
	h := s.hist[id]
	if h == nil {
		return
	}
	d := len(h)
	for w := 1; w <= d && w <= len(past); w++ {
		h[((s.cursor-w)%d+d)%d] = past[w-1]
	}
}

// CompareAligned checks that circuit b reproduces circuit a's outputs when
// b's registers are seeded consistently with a's reset behaviour — the
// initial-state computation that technology mapping with retiming requires.
// origOf[idB] names the node of a whose output stream node idB of b
// reproduces (-1 when it has none; such nodes must not source registers).
//
// Both circuits consume the same vectors. a runs from its all-zero reset;
// after warmup cycles (at least the deepest register chain of b) b starts
// with each register chain seeded from a's recorded streams, and outputs are
// compared from then on. The comparison is exact: any mismatch is a real
// functional bug, not a reset artifact.
func CompareAligned(a, b *netlist.Circuit, origOf []int, vectors [][]bool, warmup int) error {
	if len(a.PIs) != len(b.PIs) || len(a.POs) != len(b.POs) {
		return fmt.Errorf("sim: interface mismatch: %d/%d PIs, %d/%d POs",
			len(a.PIs), len(b.PIs), len(a.POs), len(b.POs))
	}
	if len(origOf) != b.NumNodes() {
		return fmt.Errorf("sim: origOf has %d entries for %d nodes", len(origOf), b.NumNodes())
	}
	maxW := 0
	for _, n := range b.Nodes {
		for _, f := range n.Fanins {
			if f.Weight > maxW {
				maxW = f.Weight
			}
		}
	}
	if warmup < maxW {
		warmup = maxW
	}
	if warmup > len(vectors) {
		return fmt.Errorf("sim: %d vectors cannot cover warmup %d", len(vectors), warmup)
	}
	sa, err := New(a)
	if err != nil {
		return fmt.Errorf("sim: circuit a: %v", err)
	}
	// Record a's full streams over the warmup prefix.
	streams := make([][]bool, a.NumNodes())
	for i := range streams {
		streams[i] = make([]bool, warmup)
	}
	outA := make([][]bool, 0, len(vectors))
	for t := 0; t < warmup; t++ {
		outA = append(outA, sa.Step(vectors[t]))
		for id := range streams {
			streams[id][t] = sa.NodeValue(id)
		}
	}
	sb, err := New(b)
	if err != nil {
		return fmt.Errorf("sim: circuit b: %v", err)
	}
	for id := range b.Nodes {
		if sb.depth[id] == 0 {
			continue
		}
		orig := origOf[id]
		if orig < 0 {
			return fmt.Errorf("sim: node %d of b sources registers but has no origin", id)
		}
		past := make([]bool, sb.depth[id])
		for w := 1; w <= len(past); w++ {
			if t := warmup - w; t >= 0 {
				past[w-1] = streams[orig][t]
			}
		}
		sb.SetPast(id, past)
	}
	for t := warmup; t < len(vectors); t++ {
		oa := sa.Step(vectors[t])
		ob := sb.Step(vectors[t])
		for j := range oa {
			if oa[j] != ob[j] {
				return &Mismatch{Cycle: t, Output: j, A: oa[j], B: ob[j]}
			}
		}
	}
	return nil
}
