package sim

import (
	"math/rand"
	"testing"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// toggler builds a 1-bit counter: q' = q XOR en, observed at out.
func toggler(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("toggle")
	en := c.AddPI("en")
	g := c.AddGate("next", logic.XorAll(2),
		netlist.Fanin{From: en}, netlist.Fanin{From: en}) // placeholder
	c.Nodes[g].Fanins[1] = netlist.Fanin{From: g, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("out", g, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTogglerBehaviour(t *testing.T) {
	s, err := New(toggler(t))
	if err != nil {
		t.Fatal(err)
	}
	// en=1 every cycle: out = 1,0,1,0,... (out is the NEXT state value).
	want := []bool{true, false, true, false, true}
	for i, w := range want {
		got := s.Step([]bool{true})
		if got[0] != w {
			t.Fatalf("cycle %d: out=%v want %v", i, got[0], w)
		}
	}
	// en=0 holds the state, which is 1 after five toggles.
	hold := s.Step([]bool{false})
	if hold[0] != true {
		t.Fatal("state should hold at 1 with en=0")
	}
	if s.Cycle() != 6 {
		t.Errorf("cycle counter = %d", s.Cycle())
	}
	s.Reset()
	if s.Cycle() != 0 {
		t.Error("reset did not clear cycle count")
	}
	if got := s.Step([]bool{true}); got[0] != true {
		t.Error("reset did not clear registers")
	}
}

func TestShiftRegisterDepth(t *testing.T) {
	// out = in delayed by 3 cycles via one weight-3 edge.
	c := netlist.NewCircuit("delay3")
	in := c.AddPI("in")
	g := c.AddGate("buf", logic.Buf(), netlist.Fanin{From: in, Weight: 3})
	c.AddPO("out", g, 0)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	seq := []bool{true, false, true, true, false, false, true, false}
	var got []bool
	for _, v := range seq {
		got = append(got, s.Step([]bool{v})[0])
	}
	for i := range seq {
		want := false
		if i >= 3 {
			want = seq[i-3]
		}
		if got[i] != want {
			t.Fatalf("delay wrong at cycle %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestPODelayedByWeight(t *testing.T) {
	c := netlist.NewCircuit("podelay")
	in := c.AddPI("in")
	g := c.AddGate("buf", logic.Buf(), netlist.Fanin{From: in})
	c.AddPO("out", g, 2)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Step([]bool{true})[0] != false {
		t.Fatal("PO weight ignored at cycle 0")
	}
	s.Step([]bool{false})
	if s.Step([]bool{false})[0] != true {
		t.Fatal("PO weight should deliver cycle-0 value at cycle 2")
	}
}

func TestCompareIdenticalAndLatency(t *testing.T) {
	a := toggler(t)
	b := toggler(t)
	rng := rand.New(rand.NewSource(5))
	vecs := RandomVectors(rng, 200, 1)
	if err := Compare(a, b, vecs, 0, 0); err != nil {
		t.Fatalf("identical circuits differ: %v", err)
	}

	// b2 = toggler with one extra pipeline FF on the PO: latency 1.
	b2 := toggler(t)
	b2.Nodes[b2.POs[0]].Fanins[0].Weight++
	b2.InvalidateCaches()
	if err := Compare(a, b2, vecs, 1, 1); err != nil {
		t.Fatalf("latency-aligned compare failed: %v", err)
	}
	if err := Compare(a, b2, vecs, 1, 0); err == nil {
		t.Fatal("misaligned compare should fail")
	}
}

func TestCompareDetectsFunctionalChange(t *testing.T) {
	a := toggler(t)
	b := toggler(t)
	g := b.IDByName("next")
	b.Nodes[g].Func = logic.OrAll(2) // q' = q OR en: sticks at 1
	rng := rand.New(rand.NewSource(6))
	vecs := RandomVectors(rng, 64, 1)
	err := Compare(a, b, vecs, 0, 0)
	if err == nil {
		t.Fatal("functional change not detected")
	}
	if _, ok := err.(*Mismatch); !ok {
		t.Fatalf("want *Mismatch, got %T: %v", err, err)
	}
}

func TestCompareInterfaceMismatch(t *testing.T) {
	a := toggler(t)
	b := netlist.NewCircuit("empty")
	b.AddPI("x")
	if err := Compare(a, b, nil, 0, 0); err == nil {
		t.Fatal("interface mismatch not reported")
	}
}

func TestCombEquivalent(t *testing.T) {
	mk := func(fn *logic.TT) *netlist.Circuit {
		c := netlist.NewCircuit("comb")
		a := c.AddPI("a")
		b := c.AddPI("b")
		g := c.AddGate("g", fn, netlist.Fanin{From: a}, netlist.Fanin{From: b})
		c.AddPO("z", g, 0)
		return c
	}
	eq, err := CombEquivalent(mk(logic.XorAll(2)), mk(logic.XorAll(2)), 10)
	if err != nil || !eq {
		t.Fatalf("same function: eq=%v err=%v", eq, err)
	}
	eq, err = CombEquivalent(mk(logic.XorAll(2)), mk(logic.AndAll(2)), 10)
	if err != nil || eq {
		t.Fatalf("different function: eq=%v err=%v", eq, err)
	}
	if _, err := CombEquivalent(toggler(t), toggler(t), 10); err == nil {
		t.Fatal("sequential circuits must be rejected")
	}
}

func TestStepPanicsOnBadWidth(t *testing.T) {
	s, err := New(toggler(t))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input width")
		}
	}()
	s.Step([]bool{true, false})
}
