package sim

import (
	"math/rand"
	"testing"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// delayedCopy builds b as a "mapped" version of a = toggler where the LUT
// reads (g,2) instead of (g,1) by absorbing one unrolling:
//
//	a: g = en XOR g@1
//	b: g' = (en XOR en@1) XOR g'@2   (same stream once histories align)
func delayedCopyPair(t *testing.T) (a, b *netlist.Circuit, origOf []int) {
	t.Helper()
	a = netlist.NewCircuit("a")
	en := a.AddPI("en")
	g := a.AddGate("g", logic.XorAll(2),
		netlist.Fanin{From: en}, netlist.Fanin{From: en})
	a.Nodes[g].Fanins[1] = netlist.Fanin{From: g, Weight: 1}
	a.InvalidateCaches()
	a.AddPO("q", g, 0)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}

	b = netlist.NewCircuit("b")
	enB := b.AddPI("en")
	// g'(t) = en(t) XOR en(t-1) XOR g'(t-2)
	x3 := logic.XorAll(3)
	gB := b.AddGate("g", x3,
		netlist.Fanin{From: enB},
		netlist.Fanin{From: enB, Weight: 1},
		netlist.Fanin{From: enB}) // placeholder
	b.Nodes[gB].Fanins[2] = netlist.Fanin{From: gB, Weight: 2}
	b.InvalidateCaches()
	b.AddPO("q", gB, 0)
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}

	origOf = make([]int, b.NumNodes())
	origOf[enB] = en
	origOf[gB] = g
	origOf[b.POs[0]] = a.POs[0]
	return a, b, origOf
}

func TestCompareAlignedAcceptsUnrolledCover(t *testing.T) {
	a, b, origOf := delayedCopyPair(t)
	rng := rand.New(rand.NewSource(1))
	vecs := RandomVectors(rng, 300, 1)
	// Unaligned comparison fails from the zero state whenever the machines
	// fall into different parities...; aligned must always pass.
	if err := CompareAligned(a, b, origOf, vecs, 4); err != nil {
		t.Fatalf("aligned comparison failed: %v", err)
	}
}

func TestCompareAlignedCatchesRealBugs(t *testing.T) {
	a, b, origOf := delayedCopyPair(t)
	// Corrupt b: flip the function.
	gB := b.IDByName("g")
	b.Nodes[gB].Func = logic.NewTT(3).Not(logic.XorAll(3))
	rng := rand.New(rand.NewSource(2))
	vecs := RandomVectors(rng, 100, 1)
	if err := CompareAligned(a, b, origOf, vecs, 4); err == nil {
		t.Fatal("functional corruption not detected")
	}
}

func TestCompareAlignedValidation(t *testing.T) {
	a, b, origOf := delayedCopyPair(t)
	rng := rand.New(rand.NewSource(3))
	vecs := RandomVectors(rng, 50, 1)
	if err := CompareAligned(a, b, origOf[:1], vecs, 4); err == nil {
		t.Fatal("short origOf accepted")
	}
	// Register source without an origin must be rejected.
	bad := append([]int(nil), origOf...)
	bad[b.IDByName("g")] = -1
	if err := CompareAligned(a, b, bad, vecs, 4); err == nil {
		t.Fatal("missing origin for a register source accepted")
	}
	// Vectors shorter than the warmup must be rejected.
	if err := CompareAligned(a, b, origOf, vecs[:1], 4); err == nil {
		t.Fatal("insufficient vectors accepted")
	}
}

func TestSetPast(t *testing.T) {
	c := netlist.NewCircuit("d2")
	in := c.AddPI("in")
	g := c.AddGate("buf", logic.Buf(), netlist.Fanin{From: in, Weight: 2})
	c.AddPO("out", g, 0)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	// Seed: in was true 2 cycles ago, false 1 cycle ago.
	s.SetPast(in, []bool{false, true})
	if out := s.Step([]bool{false}); !out[0] {
		t.Fatal("seeded history not visible at w=2")
	}
	if out := s.Step([]bool{false}); out[0] {
		t.Fatal("second cycle should read the w=1 seed (false)")
	}
}
