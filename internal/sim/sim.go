// Package sim provides cycle-accurate simulation of retiming-graph circuits
// and simulation-based equivalence evidence between two circuits.
//
// Semantics: an edge of weight w is a w-deep shift register initialized to
// zero (reset-to-zero convention, see DESIGN.md). Each Step presents one
// primary-input vector, evaluates the combinational logic, returns the
// primary-output vector, and then clocks every register.
package sim

import (
	"fmt"
	"math/rand"

	"turbosyn/internal/netlist"
)

// Simulator holds the evolving state of one circuit.
type Simulator struct {
	c     *netlist.Circuit
	order []int // combinational topological order
	depth []int // history depth needed per node (max outgoing weight)
	// hist[n] is a ring of the last depth[n] output values of node n;
	// hist[n][(cursor - w) mod depth] is the value w cycles ago.
	hist   [][]bool
	cursor int
	cycle  int
	cur    []bool
}

// New builds a simulator for c. The circuit must pass Check.
func New(c *netlist.Circuit) (*Simulator, error) {
	if err := c.Check(); err != nil {
		return nil, err
	}
	s := &Simulator{
		c:     c,
		order: c.CombTopoOrder(),
		depth: make([]int, c.NumNodes()),
		hist:  make([][]bool, c.NumNodes()),
		cur:   make([]bool, c.NumNodes()),
	}
	for _, n := range c.Nodes {
		for _, f := range n.Fanins {
			if f.Weight > s.depth[f.From] {
				s.depth[f.From] = f.Weight
			}
		}
	}
	for i, d := range s.depth {
		if d > 0 {
			s.hist[i] = make([]bool, d)
		}
	}
	return s, nil
}

// Reset returns every register to zero and the cycle counter to zero.
func (s *Simulator) Reset() {
	for _, h := range s.hist {
		for i := range h {
			h[i] = false
		}
	}
	s.cursor = 0
	s.cycle = 0
}

// Cycle returns the number of completed steps since the last Reset.
func (s *Simulator) Cycle() int { return s.cycle }

// past returns node n's output w cycles ago (w >= 1).
func (s *Simulator) past(n, w int) bool {
	d := s.depth[n]
	return s.hist[n][((s.cursor-w)%d+d)%d]
}

// Step simulates one clock cycle. inputs[i] is the value of the i-th primary
// input (in Circuit.PIs order); the returned slice holds the primary outputs
// (in Circuit.POs order) valid during this cycle.
func (s *Simulator) Step(inputs []bool) []bool {
	if len(inputs) != len(s.c.PIs) {
		panic(fmt.Sprintf("sim: %d inputs supplied, circuit has %d PIs",
			len(inputs), len(s.c.PIs)))
	}
	for i, pi := range s.c.PIs {
		s.cur[pi] = inputs[i]
	}
	for _, id := range s.order {
		n := s.c.Nodes[id]
		switch n.Kind {
		case netlist.PI:
			// already set
		case netlist.PO:
			f := n.Fanins[0]
			s.cur[id] = s.faninValue(f)
		case netlist.Gate:
			var a uint
			for k, f := range n.Fanins {
				if s.faninValue(f) {
					a |= 1 << uint(k)
				}
			}
			s.cur[id] = n.Func.Eval(a)
		}
	}
	out := make([]bool, len(s.c.POs))
	for i, po := range s.c.POs {
		out[i] = s.cur[po]
	}
	// Clock the registers: record this cycle's outputs.
	for id, h := range s.hist {
		if h != nil {
			h[s.cursor%len(h)] = s.cur[id]
		}
	}
	s.cursor++
	s.cycle++
	return out
}

func (s *Simulator) faninValue(f netlist.Fanin) bool {
	if f.Weight == 0 {
		return s.cur[f.From]
	}
	return s.past(f.From, f.Weight)
}

// Run simulates the vector sequence and returns one output vector per cycle.
func (s *Simulator) Run(vectors [][]bool) [][]bool {
	out := make([][]bool, len(vectors))
	for i, v := range vectors {
		out[i] = s.Step(v)
	}
	return out
}

// RandomVectors returns n random input vectors of the given width.
func RandomVectors(rng *rand.Rand, n, width int) [][]bool {
	vs := make([][]bool, n)
	for i := range vs {
		v := make([]bool, width)
		for j := range v {
			v[j] = rng.Intn(2) == 1
		}
		vs[i] = v
	}
	return vs
}

// Mismatch describes the first output disagreement found by Compare.
type Mismatch struct {
	Cycle  int // cycle index in circuit a's timeline
	Output int // PO index
	A, B   bool
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("sim: output %d differs at cycle %d: a=%v b=%v",
		m.Output, m.Cycle, m.A, m.B)
}

// Compare co-simulates circuits a and b on the same input sequence and
// checks that b's outputs, delayed by latency cycles, match a's outputs from
// cycle warmup onward. (b receives the same vectors; latency models added
// pipeline stages in b.) It returns nil on agreement or the first Mismatch.
//
// This is simulation evidence, not a proof: retimed machines started from
// the all-zero state can disagree transiently, which is what warmup absorbs.
func Compare(a, b *netlist.Circuit, vectors [][]bool, warmup, latency int) error {
	if len(a.PIs) != len(b.PIs) || len(a.POs) != len(b.POs) {
		return fmt.Errorf("sim: interface mismatch: %d/%d PIs, %d/%d POs",
			len(a.PIs), len(b.PIs), len(a.POs), len(b.POs))
	}
	sa, err := New(a)
	if err != nil {
		return fmt.Errorf("sim: circuit a: %v", err)
	}
	sb, err := New(b)
	if err != nil {
		return fmt.Errorf("sim: circuit b: %v", err)
	}
	outA := sa.Run(vectors)
	outB := sb.Run(vectors)
	for t := warmup; t < len(vectors); t++ {
		tb := t + latency
		if tb >= len(vectors) {
			break
		}
		for j := range outA[t] {
			if outA[t][j] != outB[tb][j] {
				return &Mismatch{Cycle: t, Output: j, A: outA[t][j], B: outB[tb][j]}
			}
		}
	}
	return nil
}

// CombEquivalent exhaustively checks two purely combinational circuits with
// at most maxPIs primary inputs for functional equality. Circuits with
// registers or more inputs are rejected with an error.
func CombEquivalent(a, b *netlist.Circuit, maxPIs int) (bool, error) {
	if a.NumFFs() != 0 || b.NumFFs() != 0 {
		return false, fmt.Errorf("sim: CombEquivalent needs combinational circuits")
	}
	if len(a.PIs) != len(b.PIs) || len(a.POs) != len(b.POs) {
		return false, nil
	}
	n := len(a.PIs)
	if n > maxPIs {
		return false, fmt.Errorf("sim: %d inputs exceed exhaustive limit %d", n, maxPIs)
	}
	sa, err := New(a)
	if err != nil {
		return false, err
	}
	sb, err := New(b)
	if err != nil {
		return false, err
	}
	v := make([]bool, n)
	for x := 0; x < 1<<uint(n); x++ {
		for j := 0; j < n; j++ {
			v[j] = x&(1<<uint(j)) != 0
		}
		oa := sa.Step(v)
		ob := sb.Step(v)
		for j := range oa {
			if oa[j] != ob[j] {
				return false, nil
			}
		}
	}
	return true, nil
}
