package stats

import (
	"sync"
	"testing"
)

func TestConcurrencyCountersUnderContention(t *testing.T) {
	var c Concurrency
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.SetWorkers(w + 1)
			for i := 0; i < perWorker; i++ {
				c.AddTask()
				if i%2 == 0 {
					c.AddCacheHit()
				} else {
					c.AddCacheMiss()
				}
			}
			c.AddInlineRun()
			c.ObserveQueueDepth(w)
			c.ObserveBusyWorkers(w + 1)
			c.AddBarriersEliminated(2)
			c.AddProbeLaunched()
			if w%4 == 0 {
				c.AddProbeCancelled()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Workers != workers {
		t.Errorf("Workers = %d, want high-water mark %d", s.Workers, workers)
	}
	if s.Tasks != workers*perWorker {
		t.Errorf("Tasks = %d, want %d", s.Tasks, workers*perWorker)
	}
	if s.CacheHits+s.CacheMisses != workers*perWorker {
		t.Errorf("cache traffic %d+%d, want %d", s.CacheHits, s.CacheMisses, workers*perWorker)
	}
	if s.InlineRuns != workers || s.ProbesLaunched != workers {
		t.Errorf("inline/probes = %d/%d, want %d each", s.InlineRuns, s.ProbesLaunched, workers)
	}
	if s.QueueDepthPeak != workers-1 {
		t.Errorf("QueueDepthPeak = %d, want high-water mark %d", s.QueueDepthPeak, workers-1)
	}
	if s.BusyWorkersPeak != workers {
		t.Errorf("BusyWorkersPeak = %d, want high-water mark %d", s.BusyWorkersPeak, workers)
	}
	if s.BarriersEliminated != 2*workers {
		t.Errorf("BarriersEliminated = %d, want %d", s.BarriersEliminated, 2*workers)
	}
	if s.ProbesCancelled != workers/4 {
		t.Errorf("ProbesCancelled = %d, want %d", s.ProbesCancelled, workers/4)
	}
}

func TestSetWorkersIsHighWaterMark(t *testing.T) {
	var c Concurrency
	c.SetWorkers(8)
	c.SetWorkers(2)
	if got := c.Snapshot().Workers; got != 8 {
		t.Fatalf("Workers = %d, want 8", got)
	}
}

func TestBarriersEliminatedIgnoresNonPositive(t *testing.T) {
	var c Concurrency
	c.AddBarriersEliminated(0)
	c.AddBarriersEliminated(-3)
	c.AddBarriersEliminated(5)
	if got := c.Snapshot().BarriersEliminated; got != 5 {
		t.Fatalf("BarriersEliminated = %d, want 5", got)
	}
}
