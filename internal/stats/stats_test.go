package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "phi", "ratio")
	tb.AddRow("bbara", 3, 1.5)
	tb.AddRow("verylongname", 12, 0.333333)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "1.50") {
		t.Errorf("float formatting: %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "verylongname") {
		t.Errorf("row order: %q", lines[3])
	}
	// Columns aligned: "phi" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "phi")
	if !strings.HasPrefix(lines[2][idx:], "3") {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean([]float64{5}); math.Abs(g-5) > 1e-12 {
		t.Errorf("GeoMean(5) = %v", g)
	}
	if g := GeoMean([]float64{2, 0, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("zeros must be skipped: %v", g)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty input must be NaN")
	}
}

func TestRatioSummary(t *testing.T) {
	a := []float64{4, 9}
	b := []float64{2, 3}
	if g := RatioSummary(a, b); math.Abs(g-math.Sqrt(6)) > 1e-12 {
		t.Errorf("RatioSummary = %v", g)
	}
}
