package stats

import "sync/atomic"

// Concurrency accumulates scheduler-level counters of a parallel synthesis
// run: worker-pool sizing, dataflow ready-queue behaviour, sharded-cache
// traffic and speculative-probe outcomes. All methods are safe for
// concurrent use from any number of worker goroutines; read consistent
// totals with Snapshot after the run. Snapshot is also safe to call while
// the run is live — the observability layer's progress ticker samples it at
// its reporting interval — in which case the counters are a monotone,
// slightly torn view of work in flight, which is all a progress report
// needs.
type Concurrency struct {
	workers            atomic.Int64
	tasks              atomic.Int64
	inlineRuns         atomic.Int64
	queueDepth         atomic.Int64
	queueDepthPeak     atomic.Int64
	busyWorkersPeak    atomic.Int64
	barriersEliminated atomic.Int64
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cachePersisted     atomic.Int64
	cacheNPN           atomic.Int64
	probesLaunched     atomic.Int64
	probesCancelled    atomic.Int64
	probesFinished     atomic.Int64
	nodeUpdates        atomic.Int64
	iterations         atomic.Int64
	degradations       atomic.Int64
	arenaPeakBytes     atomic.Int64
	worklistDepth      atomic.Int64
	worklistDepthPeak  atomic.Int64
	dirtySkips         atomic.Int64
}

// maxInt64 raises gauge g to v if v is larger (a lock-free running maximum).
func maxInt64(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// SetWorkers records the configured worker-pool size (kept as a high-water
// mark, so nested schedulers report the widest pool).
func (c *Concurrency) SetWorkers(n int) { maxInt64(&c.workers, int64(n)) }

// AddTask counts one SCC task pulled from the dataflow ready queue.
func (c *Concurrency) AddTask() { c.tasks.Add(1) }

// AddInlineRun counts one trivial component chained onto the finishing
// worker (grain batching) instead of going through the ready queue.
func (c *Concurrency) AddInlineRun() { c.inlineRuns.Add(1) }

// ObserveQueueDepth records the ready-queue depth seen after an enqueue or
// dequeue: the snapshot exposes both the latest depth (a live gauge for
// progress reports) and the high-water mark.
func (c *Concurrency) ObserveQueueDepth(depth int) {
	c.queueDepth.Store(int64(depth))
	maxInt64(&c.queueDepthPeak, int64(depth))
}

// ObserveBusyWorkers records how many pool workers were running components
// simultaneously; the snapshot keeps the high-water mark (peak occupancy).
func (c *Concurrency) ObserveBusyWorkers(busy int) { maxInt64(&c.busyWorkersPeak, int64(busy)) }

// AddBarriersEliminated counts level barriers the old level-synchronized
// scheduler would have executed for this run and the dataflow scheduler did
// not (one per condensation level beyond the first).
func (c *Concurrency) AddBarriersEliminated(n int) {
	if n > 0 {
		c.barriersEliminated.Add(int64(n))
	}
}

// AddCacheHit counts a sharded decomposition-cache hit.
func (c *Concurrency) AddCacheHit() { c.cacheHits.Add(1) }

// AddCacheMiss counts a sharded decomposition-cache miss.
func (c *Concurrency) AddCacheMiss() { c.cacheMisses.Add(1) }

// AddCachePersistedHit counts a cache hit served by an entry loaded from
// the persisted cross-run log (a strict subset of AddCacheHit's count).
func (c *Concurrency) AddCachePersistedHit() { c.cachePersisted.Add(1) }

// AddCacheNPNHit counts a cache hit reached through a non-identity NPN
// transform — a hit raw-function keying could not have shared.
func (c *Concurrency) AddCacheNPNHit() { c.cacheNPN.Add(1) }

// AddProbeLaunched counts a feasibility probe started by the search
// (speculative or on the canonical binary-search path).
func (c *Concurrency) AddProbeLaunched() { c.probesLaunched.Add(1) }

// AddProbeCancelled counts a speculative probe cancelled because the search
// took the other branch.
func (c *Concurrency) AddProbeCancelled() { c.probesCancelled.Add(1) }

// AddProbeFinished counts a probe whose run completed, with any verdict
// (feasible, infeasible, cancelled, errored). Launched minus finished is the
// number of probes in flight.
func (c *Concurrency) AddProbeFinished() { c.probesFinished.Add(1) }

// AddNodeUpdates counts member visits label sweeps performed (with the
// dirty-set worklist on, visits the worklist actually drained — skipped
// members contribute to AddDirtySkips instead); the engine calls it once
// per sweep with the sweep's visit count, so the live "nodes labeled"
// gauge costs one atomic add per sweep, not per node.
func (c *Concurrency) AddNodeUpdates(n int) {
	if n > 0 {
		c.nodeUpdates.Add(int64(n))
	}
}

// ObserveWorklist records how many dirty members a fast pass drained: the
// snapshot exposes both the latest drain size (a live queue-style gauge for
// progress reports) and the high-water mark, mirroring ObserveQueueDepth.
func (c *Concurrency) ObserveWorklist(depth int) {
	c.worklistDepth.Store(int64(depth))
	maxInt64(&c.worklistDepthPeak, int64(depth))
}

// AddDirtySkips counts member visits the dirty-set worklist elided (the
// live mirror of Stats.DirtySkips; one atomic add per sweep).
func (c *Concurrency) AddDirtySkips(n int) {
	if n > 0 {
		c.dirtySkips.Add(int64(n))
	}
}

// AddIteration counts one label-update pass over a component's members (the
// live mirror of Stats.Iterations).
func (c *Concurrency) AddIteration() { c.iterations.Add(1) }

// AddDegradation counts one budget exhaustion absorbed by graceful
// degradation (the live mirror of Stats.Degradations).
func (c *Concurrency) AddDegradation() { c.degradations.Add(1) }

// ObserveArenaBytes records a worker scratch arena's footprint; the
// snapshot keeps the high-water mark across all workers.
func (c *Concurrency) ObserveArenaBytes(b int) { maxInt64(&c.arenaPeakBytes, int64(b)) }

// ConcurrencySnapshot is a plain-value copy of the counters.
type ConcurrencySnapshot struct {
	Workers            int // configured pool size (high-water mark)
	Tasks              int // SCC tasks pulled from the ready queue
	InlineRuns         int // trivial components chained inline (grain batching)
	QueueDepth         int // ready-queue depth at the last enqueue/dequeue
	QueueDepthPeak     int // ready-queue depth high-water mark
	BusyWorkersPeak    int // peak simultaneous busy workers (occupancy)
	BarriersEliminated int // level barriers the dataflow scheduler avoided
	CacheHits          int // sharded decomposition-cache hits
	CacheMisses        int // sharded decomposition-cache misses
	CachePersistedHits int // hits served by entries from the persisted log
	CacheNPNHits       int // hits reached through a non-identity NPN transform
	ProbesLaunched     int // feasibility probes started
	ProbesCancelled    int // speculative probes cancelled
	ProbesFinished     int // probes completed with any verdict
	NodeUpdates        int // member visits performed by label sweeps
	Iterations         int // label-update passes over SCC members
	Degradations       int // budget exhaustions absorbed (live mirror)
	ArenaPeakBytes     int // busiest scratch arena footprint (live mirror)
	WorklistDepth      int // dirty members drained by the last fast pass
	WorklistDepthPeak  int // largest fast-pass worklist drain (high-water mark)
	DirtySkips         int // member visits elided by the worklist (live mirror)
}

// Snapshot reads the counters.
func (c *Concurrency) Snapshot() ConcurrencySnapshot {
	return ConcurrencySnapshot{
		Workers:            int(c.workers.Load()),
		Tasks:              int(c.tasks.Load()),
		InlineRuns:         int(c.inlineRuns.Load()),
		QueueDepth:         int(c.queueDepth.Load()),
		QueueDepthPeak:     int(c.queueDepthPeak.Load()),
		BusyWorkersPeak:    int(c.busyWorkersPeak.Load()),
		BarriersEliminated: int(c.barriersEliminated.Load()),
		CacheHits:          int(c.cacheHits.Load()),
		CacheMisses:        int(c.cacheMisses.Load()),
		CachePersistedHits: int(c.cachePersisted.Load()),
		CacheNPNHits:       int(c.cacheNPN.Load()),
		ProbesLaunched:     int(c.probesLaunched.Load()),
		ProbesCancelled:    int(c.probesCancelled.Load()),
		ProbesFinished:     int(c.probesFinished.Load()),
		NodeUpdates:        int(c.nodeUpdates.Load()),
		Iterations:         int(c.iterations.Load()),
		Degradations:       int(c.degradations.Load()),
		ArenaPeakBytes:     int(c.arenaPeakBytes.Load()),
		WorklistDepth:      int(c.worklistDepth.Load()),
		WorklistDepthPeak:  int(c.worklistDepthPeak.Load()),
		DirtySkips:         int(c.dirtySkips.Load()),
	}
}
