package stats

import "sync/atomic"

// Concurrency accumulates scheduler-level counters of a parallel synthesis
// run: worker-pool sizing, dataflow ready-queue behaviour, sharded-cache
// traffic and speculative-probe outcomes. All methods are safe for
// concurrent use from any number of worker goroutines; read consistent
// totals with Snapshot after the run.
type Concurrency struct {
	workers            atomic.Int64
	tasks              atomic.Int64
	inlineRuns         atomic.Int64
	queueDepthPeak     atomic.Int64
	busyWorkersPeak    atomic.Int64
	barriersEliminated atomic.Int64
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	probesLaunched     atomic.Int64
	probesCancelled    atomic.Int64
}

// maxInt64 raises gauge g to v if v is larger (a lock-free running maximum).
func maxInt64(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// SetWorkers records the configured worker-pool size (kept as a high-water
// mark, so nested schedulers report the widest pool).
func (c *Concurrency) SetWorkers(n int) { maxInt64(&c.workers, int64(n)) }

// AddTask counts one SCC task pulled from the dataflow ready queue.
func (c *Concurrency) AddTask() { c.tasks.Add(1) }

// AddInlineRun counts one trivial component chained onto the finishing
// worker (grain batching) instead of going through the ready queue.
func (c *Concurrency) AddInlineRun() { c.inlineRuns.Add(1) }

// ObserveQueueDepth records the ready-queue depth seen after an enqueue;
// the snapshot keeps the high-water mark.
func (c *Concurrency) ObserveQueueDepth(depth int) { maxInt64(&c.queueDepthPeak, int64(depth)) }

// ObserveBusyWorkers records how many pool workers were running components
// simultaneously; the snapshot keeps the high-water mark (peak occupancy).
func (c *Concurrency) ObserveBusyWorkers(busy int) { maxInt64(&c.busyWorkersPeak, int64(busy)) }

// AddBarriersEliminated counts level barriers the old level-synchronized
// scheduler would have executed for this run and the dataflow scheduler did
// not (one per condensation level beyond the first).
func (c *Concurrency) AddBarriersEliminated(n int) {
	if n > 0 {
		c.barriersEliminated.Add(int64(n))
	}
}

// AddCacheHit counts a sharded decomposition-cache hit.
func (c *Concurrency) AddCacheHit() { c.cacheHits.Add(1) }

// AddCacheMiss counts a sharded decomposition-cache miss.
func (c *Concurrency) AddCacheMiss() { c.cacheMisses.Add(1) }

// AddProbeLaunched counts a feasibility probe started by the search
// (speculative or on the canonical binary-search path).
func (c *Concurrency) AddProbeLaunched() { c.probesLaunched.Add(1) }

// AddProbeCancelled counts a speculative probe cancelled because the search
// took the other branch.
func (c *Concurrency) AddProbeCancelled() { c.probesCancelled.Add(1) }

// ConcurrencySnapshot is a plain-value copy of the counters.
type ConcurrencySnapshot struct {
	Workers            int // configured pool size (high-water mark)
	Tasks              int // SCC tasks pulled from the ready queue
	InlineRuns         int // trivial components chained inline (grain batching)
	QueueDepthPeak     int // ready-queue depth high-water mark
	BusyWorkersPeak    int // peak simultaneous busy workers (occupancy)
	BarriersEliminated int // level barriers the dataflow scheduler avoided
	CacheHits          int // sharded decomposition-cache hits
	CacheMisses        int // sharded decomposition-cache misses
	ProbesLaunched     int // feasibility probes started
	ProbesCancelled    int // speculative probes cancelled
}

// Snapshot reads the counters.
func (c *Concurrency) Snapshot() ConcurrencySnapshot {
	return ConcurrencySnapshot{
		Workers:            int(c.workers.Load()),
		Tasks:              int(c.tasks.Load()),
		InlineRuns:         int(c.inlineRuns.Load()),
		QueueDepthPeak:     int(c.queueDepthPeak.Load()),
		BusyWorkersPeak:    int(c.busyWorkersPeak.Load()),
		BarriersEliminated: int(c.barriersEliminated.Load()),
		CacheHits:          int(c.cacheHits.Load()),
		CacheMisses:        int(c.cacheMisses.Load()),
		ProbesLaunched:     int(c.probesLaunched.Load()),
		ProbesCancelled:    int(c.probesCancelled.Load()),
	}
}
