package stats

import "sync/atomic"

// Concurrency accumulates scheduler-level counters of a parallel synthesis
// run: worker-pool sizing, level-barrier waves, sharded-cache traffic and
// speculative-probe outcomes. All methods are safe for concurrent use from
// any number of worker goroutines; read consistent totals with Snapshot
// after the run (or between barriers).
type Concurrency struct {
	workers         atomic.Int64
	levelWaves      atomic.Int64
	tasks           atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	probesLaunched  atomic.Int64
	probesCancelled atomic.Int64
}

// SetWorkers records the configured worker-pool size (kept as a high-water
// mark, so nested schedulers report the widest pool).
func (c *Concurrency) SetWorkers(n int) {
	for {
		cur := c.workers.Load()
		if int64(n) <= cur || c.workers.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// AddLevelWave counts one level barrier executed by the parallel scheduler.
func (c *Concurrency) AddLevelWave() { c.levelWaves.Add(1) }

// AddTask counts one SCC task executed by a pool worker.
func (c *Concurrency) AddTask() { c.tasks.Add(1) }

// AddCacheHit counts a sharded decomposition-cache hit.
func (c *Concurrency) AddCacheHit() { c.cacheHits.Add(1) }

// AddCacheMiss counts a sharded decomposition-cache miss.
func (c *Concurrency) AddCacheMiss() { c.cacheMisses.Add(1) }

// AddProbeLaunched counts a feasibility probe started by the search
// (speculative or on the canonical binary-search path).
func (c *Concurrency) AddProbeLaunched() { c.probesLaunched.Add(1) }

// AddProbeCancelled counts a speculative probe cancelled because the search
// took the other branch.
func (c *Concurrency) AddProbeCancelled() { c.probesCancelled.Add(1) }

// ConcurrencySnapshot is a plain-value copy of the counters.
type ConcurrencySnapshot struct {
	Workers         int // configured pool size (high-water mark)
	LevelWaves      int // level barriers executed
	Tasks           int // SCC tasks executed by pool workers
	CacheHits       int // sharded decomposition-cache hits
	CacheMisses     int // sharded decomposition-cache misses
	ProbesLaunched  int // feasibility probes started
	ProbesCancelled int // speculative probes cancelled
}

// Snapshot reads the counters.
func (c *Concurrency) Snapshot() ConcurrencySnapshot {
	return ConcurrencySnapshot{
		Workers:         int(c.workers.Load()),
		LevelWaves:      int(c.levelWaves.Load()),
		Tasks:           int(c.tasks.Load()),
		CacheHits:       int(c.cacheHits.Load()),
		CacheMisses:     int(c.cacheMisses.Load()),
		ProbesLaunched:  int(c.probesLaunched.Load()),
		ProbesCancelled: int(c.probesCancelled.Load()),
	}
}
