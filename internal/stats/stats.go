// Package stats formats the experiment tables and computes the summary
// ratios the paper reports (geometric means of per-circuit ratios).
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders fixed-width text output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(width) {
				parts[i] = fmt.Sprintf("%-*s", width[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// GeoMean returns the geometric mean of the values; zero or negative values
// are skipped (they would be undefined), and an empty input returns NaN.
func GeoMean(values []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range values {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}

// RatioSummary returns the geometric mean of a[i]/b[i].
func RatioSummary(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	ratios := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if a[i] > 0 && b[i] > 0 {
			ratios = append(ratios, a[i]/b[i])
		}
	}
	return GeoMean(ratios)
}
