// Package netlist represents sequential circuits as retiming graphs
// (Leiserson–Saxe): nodes are primary inputs, primary outputs and gates;
// every edge carries a weight equal to the number of flipflops on the
// connection. Gates carry their local Boolean function as a truth table over
// their fanins, so the same structure serves as the subject circuit and as
// the mapped K-LUT network.
//
// The package also reads and writes the SIS-era BLIF format (.names/.latch),
// converting explicit latches to and from edge weights.
package netlist

import (
	"fmt"

	"turbosyn/internal/graph"
	"turbosyn/internal/logic"
)

// Kind classifies a node.
type Kind int8

// Node kinds.
const (
	Gate Kind = iota // combinational gate / LUT; unit delay
	PI               // primary input; zero delay
	PO               // primary output; zero delay, exactly one fanin
)

func (k Kind) String() string {
	switch k {
	case Gate:
		return "gate"
	case PI:
		return "pi"
	case PO:
		return "po"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fanin is one incoming connection of a node: the driving node and the
// number of flipflops on the connection.
type Fanin struct {
	From   int
	Weight int
}

// Node is one vertex of the retiming graph.
type Node struct {
	ID     int
	Kind   Kind
	Name   string
	Fanins []Fanin
	// Func is the gate function over the fanins (fanin i = variable i).
	// It is nil for PIs and POs; a PO forwards its single fanin.
	Func *logic.TT
}

// Delay returns the unit-delay model value for the node: 1 for gates,
// 0 for PIs and POs.
func (n *Node) Delay() int {
	if n.Kind == Gate {
		return 1
	}
	return 0
}

// Circuit is a sequential circuit in retiming-graph form.
type Circuit struct {
	Name  string
	Nodes []*Node
	PIs   []int
	POs   []int

	byName  map[string]int
	fanouts [][]Fanout // lazily built; invalidated by mutation
}

// Fanout is one outgoing connection: the consuming node, which of its fanin
// slots this connection feeds, and the FF count on it.
type Fanout struct {
	To     int
	Slot   int
	Weight int
}

// NewCircuit returns an empty circuit with the given name.
func NewCircuit(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]int)}
}

// NumNodes returns the total node count (PIs + POs + gates).
func (c *Circuit) NumNodes() int { return len(c.Nodes) }

// NumGates returns the number of gate nodes.
func (c *Circuit) NumGates() int {
	n := 0
	for _, nd := range c.Nodes {
		if nd.Kind == Gate {
			n++
		}
	}
	return n
}

// NumFFs returns the total number of flipflops (the sum of edge weights).
func (c *Circuit) NumFFs() int {
	n := 0
	for _, nd := range c.Nodes {
		for _, f := range nd.Fanins {
			n += f.Weight
		}
	}
	return n
}

// Node's name lookup. Returns -1 when absent.
func (c *Circuit) IDByName(name string) int {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return -1
}

func (c *Circuit) addNode(n *Node) int {
	if n.Name != "" {
		if _, dup := c.byName[n.Name]; dup {
			panic(fmt.Sprintf("netlist: duplicate node name %q", n.Name))
		}
	}
	n.ID = len(c.Nodes)
	c.Nodes = append(c.Nodes, n)
	if n.Name != "" {
		c.byName[n.Name] = n.ID
	}
	c.fanouts = nil
	return n.ID
}

// AddPI adds a primary input and returns its id.
func (c *Circuit) AddPI(name string) int {
	id := c.addNode(&Node{Kind: PI, Name: name})
	c.PIs = append(c.PIs, id)
	return id
}

// AddPO adds a primary output driven by node from through weight flipflops
// and returns its id.
func (c *Circuit) AddPO(name string, from, weight int) int {
	c.checkRef(from)
	id := c.addNode(&Node{Kind: PO, Name: name, Fanins: []Fanin{{From: from, Weight: weight}}})
	c.POs = append(c.POs, id)
	return id
}

// AddGate adds a gate computing fn over the given fanins and returns its id.
// fn must range over exactly len(fanins) variables.
func (c *Circuit) AddGate(name string, fn *logic.TT, fanins ...Fanin) int {
	if fn == nil {
		panic("netlist: AddGate with nil function")
	}
	if fn.NumVars() != len(fanins) {
		panic(fmt.Sprintf("netlist: gate %q: %d-var function with %d fanins",
			name, fn.NumVars(), len(fanins)))
	}
	for _, f := range fanins {
		c.checkRef(f.From)
		if f.Weight < 0 {
			panic("netlist: negative edge weight")
		}
	}
	return c.addNode(&Node{Kind: Gate, Name: name, Func: fn, Fanins: fanins})
}

func (c *Circuit) checkRef(id int) {
	if id < 0 || id >= len(c.Nodes) {
		panic(fmt.Sprintf("netlist: node id %d out of range", id))
	}
	if c.Nodes[id].Kind == PO {
		panic(fmt.Sprintf("netlist: node %d is a PO and cannot drive anything", id))
	}
}

// InvalidateCaches drops derived data (fanout lists) after direct mutation
// of Nodes or Fanins.
func (c *Circuit) InvalidateCaches() { c.fanouts = nil }

// Fanouts returns the fanout list of node id.
func (c *Circuit) Fanouts(id int) []Fanout {
	if c.fanouts == nil {
		c.fanouts = make([][]Fanout, len(c.Nodes))
		for _, n := range c.Nodes {
			for slot, f := range n.Fanins {
				c.fanouts[f.From] = append(c.fanouts[f.From],
					Fanout{To: n.ID, Slot: slot, Weight: f.Weight})
			}
		}
	}
	return c.fanouts[id]
}

// Adj returns the circuit as a graph.Adjacency over all nodes (edge
// weights dropped).
func (c *Circuit) Adj() graph.Adjacency { return circuitAdj{c} }

type circuitAdj struct{ c *Circuit }

func (a circuitAdj) NumNodes() int { return len(a.c.Nodes) }
func (a circuitAdj) Succ(u int, fn func(v int)) {
	for _, f := range a.c.Fanouts(u) {
		fn(f.To)
	}
}

// CombAdj returns the combinational subgraph: only zero-weight edges.
func (c *Circuit) CombAdj() graph.Adjacency { return combAdj{c} }

type combAdj struct{ c *Circuit }

func (a combAdj) NumNodes() int { return len(a.c.Nodes) }
func (a combAdj) Succ(u int, fn func(v int)) {
	for _, f := range a.c.Fanouts(u) {
		if f.Weight == 0 {
			fn(f.To)
		}
	}
}

// Clone returns a deep copy of the circuit. Gate functions are shared
// (truth tables are immutable by convention once attached).
func (c *Circuit) Clone() *Circuit {
	d := NewCircuit(c.Name)
	d.Nodes = make([]*Node, len(c.Nodes))
	for i, n := range c.Nodes {
		cp := *n
		cp.Fanins = append([]Fanin(nil), n.Fanins...)
		d.Nodes[i] = &cp
		if cp.Name != "" {
			d.byName[cp.Name] = i
		}
	}
	d.PIs = append([]int(nil), c.PIs...)
	d.POs = append([]int(nil), c.POs...)
	return d
}

// MaxFanin returns the largest gate fanin count.
func (c *Circuit) MaxFanin() int {
	m := 0
	for _, n := range c.Nodes {
		if n.Kind == Gate && len(n.Fanins) > m {
			m = len(n.Fanins)
		}
	}
	return m
}
