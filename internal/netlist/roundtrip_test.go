package netlist

import (
	"bytes"
	"math/rand"
	"testing"

	"turbosyn/internal/logic"
)

// randomCircuit builds a random well-formed sequential circuit (back edges
// always registered).
func randomCircuit(rng *rand.Rand, nGates int) *Circuit {
	c := NewCircuit("rt")
	nPI := 1 + rng.Intn(4)
	ids := make([]int, 0, nGates+nPI)
	for i := 0; i < nPI; i++ {
		ids = append(ids, c.AddPI(string(rune('a'+i))))
	}
	var gates []int
	for i := 0; i < nGates; i++ {
		nf := 1 + rng.Intn(3)
		fanins := make([]Fanin, nf)
		for j := range fanins {
			fanins[j] = Fanin{From: ids[rng.Intn(len(ids))], Weight: rng.Intn(3)}
		}
		fn := logic.NewTT(nf)
		for b := 0; b < fn.NumBits(); b++ {
			if rng.Intn(2) == 1 {
				fn.SetBit(b, true)
			}
		}
		id := c.AddGate("", fn, fanins...)
		ids = append(ids, id)
		gates = append(gates, id)
	}
	for i := 0; i < nGates/4 && len(gates) > 1; i++ {
		g := gates[rng.Intn(len(gates))]
		n := c.Nodes[g]
		slot := rng.Intn(len(n.Fanins))
		n.Fanins[slot] = Fanin{From: gates[rng.Intn(len(gates))], Weight: 1 + rng.Intn(2)}
	}
	c.InvalidateCaches()
	nPO := 1 + rng.Intn(3)
	for i := 0; i < nPO; i++ {
		c.AddPO("z"+string(rune('0'+i)), gates[rng.Intn(len(gates))], rng.Intn(2))
	}
	return c
}

// TestBLIFRoundTripRandom: write/read random circuits; interface, register
// budget and structure must survive.
func TestBLIFRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 5+rng.Intn(30))
		if c.Check() != nil {
			continue
		}
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, c); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		d, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: read: %v\n%s", seed, err, buf.String())
		}
		if err := d.Check(); err != nil {
			t.Fatalf("seed %d: check: %v", seed, err)
		}
		if len(d.PIs) != len(c.PIs) || len(d.POs) != len(c.POs) {
			t.Fatalf("seed %d: interface changed", seed)
		}
		// Latch sharing means edge-weight totals can differ from the
		// written chains, but the chain depth bound must hold: the re-read
		// circuit cannot have FEWER registers on any path. Spot-check the
		// total is at least the max single edge weight.
		maxW := 0
		for _, n := range c.Nodes {
			for _, f := range n.Fanins {
				if f.Weight > maxW {
					maxW = f.Weight
				}
			}
		}
		if d.NumFFs() < maxW {
			t.Fatalf("seed %d: registers lost: %d < %d", seed, d.NumFFs(), maxW)
		}
	}
}

// TestBLIFRoundTripSimEquivalence: behaviour survives a write/read cycle.
// (Semantic comparison runs in the sim package's court: latch init 0 both
// sides, identical interface order.)
func TestBLIFRoundTripSimEquivalence(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 5+rng.Intn(20))
		if c.Check() != nil {
			continue
		}
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, c); err != nil {
			t.Fatal(err)
		}
		d, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !simEqual(t, c, d, rng, 150) {
			t.Fatalf("seed %d: behaviour changed by BLIF round trip", seed)
		}
	}
}

// simEqual is a tiny local co-simulation (the sim package depends on
// netlist, so netlist tests cannot import it).
func simEqual(t *testing.T, a, b *Circuit, rng *rand.Rand, cycles int) bool {
	t.Helper()
	runner := func(c *Circuit) func([]bool) []bool {
		order := c.CombTopoOrder()
		depth := make([]int, c.NumNodes())
		for _, n := range c.Nodes {
			for _, f := range n.Fanins {
				if f.Weight > depth[f.From] {
					depth[f.From] = f.Weight
				}
			}
		}
		hist := make([][]bool, c.NumNodes())
		for i, d := range depth {
			hist[i] = make([]bool, d+1)
		}
		cur := make([]bool, c.NumNodes())
		tick := 0
		return func(in []bool) []bool {
			for i, pi := range c.PIs {
				cur[pi] = in[i]
			}
			for _, id := range order {
				n := c.Nodes[id]
				val := func(f Fanin) bool {
					if f.Weight == 0 {
						return cur[f.From]
					}
					if f.Weight > tick {
						return false
					}
					d := len(hist[f.From])
					return hist[f.From][((tick-f.Weight)%d+d)%d]
				}
				switch n.Kind {
				case PI:
				case PO:
					cur[id] = val(n.Fanins[0])
				default:
					var x uint
					for k, f := range n.Fanins {
						if val(f) {
							x |= 1 << uint(k)
						}
					}
					cur[id] = n.Func.Eval(x)
				}
			}
			out := make([]bool, len(c.POs))
			for i, po := range c.POs {
				out[i] = cur[po]
			}
			for id := range hist {
				hist[id][tick%len(hist[id])] = cur[id]
			}
			tick++
			return out
		}
	}
	ra, rb := runner(a), runner(b)
	for t2 := 0; t2 < cycles; t2++ {
		in := make([]bool, len(a.PIs))
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		oa, ob := ra(in), rb(in)
		for j := range oa {
			if oa[j] != ob[j] {
				return false
			}
		}
	}
	return true
}
