package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"turbosyn/internal/logic"
)

// ReadBLIF parses the SIS-era BLIF subset (.model, .inputs, .outputs,
// .names, .latch, .end) into a retiming graph. Explicit latches become edge
// weights: a connection passing through w latches becomes an edge of weight
// w from the latch chain's combinational driver. Latch initial values are
// not preserved (the synthesis flow assumes reset-to-zero; see DESIGN.md).
func ReadBLIF(r io.Reader) (*Circuit, error) {
	lines, err := logicalLines(r)
	if err != nil {
		return nil, err
	}
	type namesDef struct {
		signals []string // inputs..., output last
		cover   []string // cube lines
	}
	type latchDef struct {
		in, out string
	}
	var (
		model   string
		inputs  []string
		outputs []string
		names   []namesDef
		latches []latchDef
	)
	for i := 0; i < len(lines); i++ {
		fields := strings.Fields(lines[i])
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				model = fields[1]
			}
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
		case ".latch":
			if len(fields) < 3 {
				return nil, fmt.Errorf("blif: line %d: .latch needs input and output", i+1)
			}
			// .latch input output [type [control]] [init]; only the first
			// two fields matter here.
			latches = append(latches, latchDef{in: fields[1], out: fields[2]})
		case ".names":
			def := namesDef{signals: fields[1:]}
			if len(def.signals) == 0 {
				return nil, fmt.Errorf("blif: line %d: .names needs an output", i+1)
			}
			for i+1 < len(lines) {
				next := strings.TrimSpace(lines[i+1])
				if strings.HasPrefix(next, ".") {
					break
				}
				i++
				if next != "" { // blank or comment-only lines inside a cover
					def.cover = append(def.cover, next)
				}
			}
			names = append(names, def)
		case ".end":
			// Single-model files only; stop here.
			i = len(lines)
		case ".exdc", ".wire_load_slope", ".default_input_arrival":
			// Ignored extensions.
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("blif: line %d: unsupported construct %q", i+1, fields[0])
			}
			return nil, fmt.Errorf("blif: line %d: cube line outside .names", i+1)
		}
	}
	if model == "" {
		model = "top"
	}

	c := NewCircuit(model)
	// Signal space: driver[s] = node id of the combinational driver, or -1
	// when s is a latch output (resolved through latchIn).
	driver := make(map[string]int)
	latchIn := make(map[string]string)
	for _, l := range latches {
		if _, dup := latchIn[l.out]; dup {
			return nil, fmt.Errorf("blif: latch output %q defined twice", l.out)
		}
		latchIn[l.out] = l.in
	}
	for _, in := range inputs {
		if _, dup := driver[in]; dup {
			return nil, fmt.Errorf("blif: input %q defined twice", in)
		}
		if _, isLatch := latchIn[in]; isLatch {
			return nil, fmt.Errorf("blif: signal %q is both an input and a latch output", in)
		}
		driver[in] = c.AddPI(in)
	}

	// Create gate nodes first (fanins filled in a second pass so that
	// definition order doesn't matter).
	type pending struct {
		id  int
		def namesDef
	}
	var pend []pending
	for _, def := range names {
		out := def.signals[len(def.signals)-1]
		if _, dup := driver[out]; dup {
			return nil, fmt.Errorf("blif: signal %q defined twice", out)
		}
		if _, isLatch := latchIn[out]; isLatch {
			return nil, fmt.Errorf("blif: signal %q is both .names output and latch output", out)
		}
		nin := len(def.signals) - 1
		if nin > logic.MaxVars {
			return nil, fmt.Errorf("blif: gate %q has %d inputs; max %d (decompose first)",
				out, nin, logic.MaxVars)
		}
		fn, err := coverToTT(nin, def.cover)
		if err != nil {
			return nil, fmt.Errorf("blif: gate %q: %v", out, err)
		}
		id := c.addNode(&Node{Kind: Gate, Name: out, Func: fn})
		driver[out] = id
		pend = append(pend, pending{id: id, def: def})
	}

	// resolve returns the combinational driver of signal s and the number of
	// latches crossed. It walks the latch chain iteratively — malformed (or
	// adversarial) inputs can chain thousands of latches, which must not
	// translate into recursion depth — and bounds the walk by the latch
	// count, so a latch cycle with no combinational driver is reported
	// instead of looping.
	resolve := func(s string) (int, int, error) {
		cur, w := s, 0
		for hops := 0; ; hops++ {
			if id, ok := driver[cur]; ok {
				return id, w, nil
			}
			in, ok := latchIn[cur]
			if !ok {
				return 0, 0, fmt.Errorf("undefined signal %q", cur)
			}
			if hops >= len(latches) {
				return 0, 0, fmt.Errorf("latch cycle through %q", s)
			}
			cur = in
			w++
		}
	}

	for _, p := range pend {
		ins := p.def.signals[:len(p.def.signals)-1]
		fanins := make([]Fanin, len(ins))
		for k, s := range ins {
			id, w, err := resolve(s)
			if err != nil {
				return nil, fmt.Errorf("blif: gate %q: %v", p.def.signals[len(p.def.signals)-1], err)
			}
			fanins[k] = Fanin{From: id, Weight: w}
		}
		c.Nodes[p.id].Fanins = fanins
	}
	for _, out := range outputs {
		id, w, err := resolve(out)
		if err != nil {
			return nil, fmt.Errorf("blif: output %q: %v", out, err)
		}
		poName := out + "$po"
		for c.IDByName(poName) != -1 {
			poName += "'"
		}
		c.AddPO(poName, id, w)
	}
	c.InvalidateCaches()
	if err := c.Check(); err != nil {
		return nil, err
	}
	return c, nil
}

// logicalLines reads r, strips comments, and joins '\'-continued lines.
func logicalLines(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []string
	cont := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.HasSuffix(line, "\\") {
			cont += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		out = append(out, cont+line)
		cont = ""
	}
	if cont != "" {
		out = append(out, cont)
	}
	return out, sc.Err()
}

// coverToTT converts a BLIF single-output cover to a truth table.
func coverToTT(nin int, cover []string) (*logic.TT, error) {
	if len(cover) == 0 {
		// Empty cover = constant 0.
		return logic.Const(nin, false), nil
	}
	on := logic.Const(nin, false)
	polarity := byte(0)
	for _, line := range cover {
		fields := strings.Fields(line)
		var cube, val string
		switch {
		case nin == 0 && len(fields) == 1:
			cube, val = "", fields[0]
		case len(fields) == 2:
			cube, val = fields[0], fields[1]
		default:
			return nil, fmt.Errorf("bad cover line %q", line)
		}
		if len(cube) != nin {
			return nil, fmt.Errorf("cube %q has %d literals, want %d", cube, len(cube), nin)
		}
		if len(val) != 1 || (val[0] != '0' && val[0] != '1') {
			return nil, fmt.Errorf("bad output value %q", val)
		}
		if polarity == 0 {
			polarity = val[0]
		} else if polarity != val[0] {
			return nil, fmt.Errorf("mixed-polarity cover")
		}
		term := logic.Const(nin, true)
		for j := 0; j < nin; j++ {
			switch cube[j] {
			case '1':
				term.And(term, logic.Var(nin, j))
			case '0':
				x := logic.Var(nin, j)
				term.And(term, x.Not(x))
			case '-':
			default:
				return nil, fmt.Errorf("bad cube character %q in %q", cube[j], cube)
			}
		}
		on.Or(on, term)
	}
	if polarity == '0' {
		on.Not(on)
	}
	return on, nil
}

// WriteBLIF writes the circuit in BLIF format. Edge weights are expanded
// into shared latch chains: each node with a weighted fanout gets one latch
// chain of the maximum needed depth, and consumers tap the chain at their
// weight.
func WriteBLIF(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	name := c.Name
	if name == "" {
		name = "top"
	}
	fmt.Fprintf(bw, ".model %s\n", name)

	// Assign signal names to PIs and gates first; POs are handled below
	// because an output usually shares its driver's signal.
	sig := make([]string, len(c.Nodes))
	used := map[string]bool{}
	for _, n := range c.Nodes {
		if n.Kind == PO {
			continue
		}
		s := n.Name
		if s == "" || used[s] {
			s = fmt.Sprintf("n%d", n.ID)
		}
		used[s] = true
		sig[n.ID] = s
	}

	// Latch chains: tap(u, w) is the signal for u delayed by w latches.
	maxW := make(map[int]int)
	for _, n := range c.Nodes {
		for _, f := range n.Fanins {
			if f.Weight > maxW[f.From] {
				maxW[f.From] = f.Weight
			}
		}
	}
	// Fix all chain signal names up front so later name claims (PO names)
	// cannot change what tap returns.
	tapName := make(map[[2]int]string)
	for u, mw := range maxW {
		for w := 1; w <= mw; w++ {
			s := fmt.Sprintf("%s_ff%d", sig[u], w)
			for used[s] {
				s += "$l"
			}
			used[s] = true
			tapName[[2]int{u, w}] = s
		}
	}
	tap := func(u, w int) string {
		if w == 0 {
			return sig[u]
		}
		return tapName[[2]int{u, w}]
	}

	// Output signals: reuse the tapped driver signal when the PO's own name
	// matches or is unavailable, otherwise emit a buffer under the PO name.
	type buffer struct{ src, dst string }
	var buffers []buffer
	outSig := make([]string, len(c.POs))
	for i, id := range c.POs {
		n := c.Nodes[id]
		f := n.Fanins[0]
		src := tap(f.From, f.Weight)
		desired := strings.TrimSuffix(n.Name, "$po")
		switch {
		case desired == src:
			outSig[i] = src
		case desired != "" && !used[desired]:
			used[desired] = true
			outSig[i] = desired
			buffers = append(buffers, buffer{src: src, dst: desired})
		default:
			outSig[i] = src
		}
		sig[id] = outSig[i]
	}

	fmt.Fprint(bw, ".inputs")
	for _, id := range c.PIs {
		fmt.Fprintf(bw, " %s", sig[id])
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".outputs")
	for _, s := range outSig {
		fmt.Fprintf(bw, " %s", s)
	}
	fmt.Fprintln(bw)

	var chained []int
	for u := range maxW {
		chained = append(chained, u)
	}
	sort.Ints(chained)
	for _, u := range chained {
		for w := 1; w <= maxW[u]; w++ {
			fmt.Fprintf(bw, ".latch %s %s 0\n", tap(u, w-1), tap(u, w))
		}
	}

	for _, n := range c.Nodes {
		if n.Kind != Gate {
			continue
		}
		fmt.Fprint(bw, ".names")
		for _, f := range n.Fanins {
			fmt.Fprintf(bw, " %s", tap(f.From, f.Weight))
		}
		fmt.Fprintf(bw, " %s\n", sig[n.ID])
		writeCover(bw, n.Func)
	}
	for _, b := range buffers {
		fmt.Fprintf(bw, ".names %s %s\n1 1\n", b.src, b.dst)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// writeCover emits fn as a minterm cover (or its complement, whichever is
// smaller; a constant gets the canonical empty/"1" form).
func writeCover(w io.Writer, fn *logic.TT) {
	nin := fn.NumVars()
	ones := fn.CountOnes()
	if ones == 0 {
		return // empty cover = constant 0
	}
	if ones == fn.NumBits() {
		if nin == 0 {
			fmt.Fprintln(w, "1")
		} else {
			fmt.Fprintf(w, "%s 1\n", strings.Repeat("-", nin))
		}
		return
	}
	val, want := byte('1'), true
	if ones > fn.NumBits()/2 {
		val, want = '0', false
	}
	for i := 0; i < fn.NumBits(); i++ {
		if fn.Bit(i) != want {
			continue
		}
		cube := make([]byte, nin)
		for j := 0; j < nin; j++ {
			if i&(1<<uint(j)) != 0 {
				cube[j] = '1'
			} else {
				cube[j] = '0'
			}
		}
		fmt.Fprintf(w, "%s %c\n", cube, val)
	}
}
