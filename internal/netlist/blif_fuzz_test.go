package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBLIF drives the BLIF reader with arbitrary byte strings. The
// contract under fuzzing: ReadBLIF either returns a descriptive error or a
// circuit that passes every structural invariant in Check(), and a circuit
// it accepts must survive a WriteBLIF -> ReadBLIF round trip. It must never
// panic and never hand back a malformed graph.
func FuzzReadBLIF(f *testing.F) {
	seeds := []string{
		sampleBLIF,
		".model m\n.inputs a\n.outputs z\n.names a z\n1 1\n.end",
		".model m\n.inputs a\n.outputs q\n.latch a q 0\n.end",
		".model m\n.inputs a\n.outputs q\n.latch q q 0\n.end",
		".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n00 0\n.end",
		".model m\n.inputs a\n.outputs z\n.names b z\n1 1\n.end",
		".inputs a \\\nb\n.outputs z\n.names a b z\n-1 1\n.end",
		".model m\n.inputs a\n.outputs z\n.names a z\n2 1\n.end",
		".model m\n.outputs c\n.names c\n1\n.end",
		".model m\n.inputs a\n.outputs z\n.subckt foo x=a\n.end",
		".model m # comment\n.inputs a\n.outputs z\n.names a z\n0 0\n.end",
		".latch",
		".names\n\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			return // keep worst-case parse time bounded
		}
		c, err := ReadBLIF(bytes.NewReader(data))
		if err != nil {
			if c != nil {
				t.Fatal("non-nil circuit returned alongside an error")
			}
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		if err := c.Check(); err != nil {
			t.Fatalf("accepted circuit violates invariants: %v\ninput: %q", err, data)
		}
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, c); err != nil {
			t.Fatalf("accepted circuit cannot be written: %v", err)
		}
		d, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\nwritten:\n%s", err, buf.String())
		}
		if err := d.Check(); err != nil {
			t.Fatalf("round-tripped circuit violates invariants: %v", err)
		}
		if len(d.PIs) != len(c.PIs) || len(d.POs) != len(c.POs) {
			t.Fatalf("round trip changed interface: %d/%d -> %d/%d PIs/POs",
				len(c.PIs), len(c.POs), len(d.PIs), len(d.POs))
		}
	})
}

// TestFuzzSeedsDirect replays the fuzz seed corpus as a plain test so the
// invariant check runs even when the build has fuzzing disabled.
func TestFuzzSeedsDirect(t *testing.T) {
	seeds := []string{
		sampleBLIF,
		".model m\n.inputs a\n.outputs q\n.latch a q 0\n.end",
		".model m\n.inputs a\n.outputs z\n.names a z\n2 1\n.end",
	}
	for _, s := range seeds {
		c, err := ReadBLIF(strings.NewReader(s))
		if err != nil {
			continue
		}
		if err := c.Check(); err != nil {
			t.Errorf("seed violates invariants: %v", err)
		}
	}
}
