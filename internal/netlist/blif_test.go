package netlist

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"turbosyn/internal/logic"
)

const sampleBLIF = `
# a 2-bit counter-ish machine
.model count2
.inputs en
.outputs q0 q1
.latch d0 q0 0
.latch d1 q1 0
.names en q0 d0
10 1
01 1
.names en q0 q1 d1
# carry into bit 1
110 1
001 1
011 1
.end
`

func TestReadBLIFBasic(t *testing.T) {
	c, err := ReadBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "count2" {
		t.Errorf("model name %q", c.Name)
	}
	if len(c.PIs) != 1 || len(c.POs) != 2 {
		t.Fatalf("PI/PO counts: %d/%d", len(c.PIs), len(c.POs))
	}
	if c.NumGates() != 2 {
		t.Errorf("gates = %d", c.NumGates())
	}
	// q0 is d0 delayed by one FF; gate d0 reads q0 = itself with weight 1.
	d0 := c.IDByName("d0")
	if d0 == -1 {
		t.Fatal("gate d0 missing")
	}
	var selfW int
	for _, f := range c.Nodes[d0].Fanins {
		if f.From == d0 {
			selfW = f.Weight
		}
	}
	if selfW != 1 {
		t.Errorf("self loop weight = %d, want 1", selfW)
	}
	if c.NumFFs() == 0 {
		t.Error("latches lost")
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	// d0 = en XOR q0.
	if !c.Nodes[d0].Func.Equal(logic.XorAll(2)) {
		t.Errorf("d0 function = %s", c.Nodes[d0].Func)
	}
}

func TestReadBLIFLatchChain(t *testing.T) {
	src := `
.model chain
.inputs a
.outputs z
.latch a p 0
.latch p q 0
.names q z
1 1
.end
`
	c, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	z := c.IDByName("z")
	if f := c.Nodes[z].Fanins[0]; f.Weight != 2 || f.From != c.IDByName("a") {
		t.Fatalf("chained latch fanin = %+v", f)
	}
}

func TestReadBLIFConstantsAndPolarity(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs c1 c0 inv
.names c1
1
.names c0
.names a inv
1 0
.end
`
	c, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f := c.Nodes[c.IDByName("c1")].Func; f.CountOnes() != 1 || f.NumVars() != 0 {
		t.Errorf("const 1 wrong: %s", f)
	}
	if f := c.Nodes[c.IDByName("c0")].Func; f.CountOnes() != 0 {
		t.Errorf("const 0 wrong: %s", f)
	}
	if f := c.Nodes[c.IDByName("inv")].Func; !f.Equal(logic.Inv()) {
		t.Errorf("offset cover should invert: %s", f)
	}
}

// wideSignals returns "a0 a1 ... a<n-1>" for building oversized gates.
func wideSignals(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprintf("a%d", i)
	}
	return strings.Join(parts, " ")
}

func TestReadBLIFErrors(t *testing.T) {
	cases := map[string]string{
		"undefined signal": ".model m\n.inputs a\n.outputs z\n.names b z\n1 1\n.end",
		"double define":    ".model m\n.inputs a a\n.outputs a\n.end",
		"latch cycle":      ".model m\n.inputs a\n.outputs q\n.latch q q 0\n.end",
		"mixed polarity":   ".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n00 0\n.end",
		"bad cube char":    ".model m\n.inputs a\n.outputs z\n.names a z\n2 1\n.end",
		"cube width":       ".model m\n.inputs a b\n.outputs z\n.names a b z\n1 1\n.end",
		"comb loop":        ".model m\n.inputs a\n.outputs x\n.names a y x\n11 1\n.names x y\n1 1\n.end",
		// Hardening cases: malformed inputs that must fail with a
		// descriptive error rather than a panic or a silently wrong circuit.
		"truncated cover line":     ".model m\n.inputs a b\n.outputs z\n.names a b z\n1\n.end",
		"names output twice":       ".model m\n.inputs a\n.outputs z\n.names a z\n1 1\n.names a z\n0 1\n.end",
		"names redefines input":    ".model m\n.inputs a b\n.outputs b\n.names a b\n1 1\n.end",
		"latch output twice":       ".model m\n.inputs a\n.outputs q\n.latch a q 0\n.latch a q 0\n.end",
		"latch redefines input":    ".model m\n.inputs a q\n.outputs q\n.latch a q 0\n.end",
		"latch redefines names":    ".model m\n.inputs a\n.outputs q\n.names a q\n1 1\n.latch a q 0\n.end",
		"latch missing fields":     ".model m\n.inputs a\n.outputs q\n.latch a\n.end",
		"two-latch cycle":          ".model m\n.inputs a\n.outputs p\n.latch q p 0\n.latch p q 0\n.end",
		"names without output":     ".model m\n.inputs a\n.outputs z\n.names\n.end",
		"oversized gate":           ".model m\n.inputs " + wideSignals(logic.MaxVars+1) + "\n.outputs z\n.names " + wideSignals(logic.MaxVars+1) + " z\n" + strings.Repeat("1", logic.MaxVars+1) + " 1\n.end",
		"bad output value":         ".model m\n.inputs a\n.outputs z\n.names a z\n1 x\n.end",
		"cube outside names":       ".model m\n.inputs a\n.outputs a\n11 1\n.end",
		"unsupported construct":    ".model m\n.inputs a\n.outputs a\n.subckt foo x=a\n.end",
		"undefined latch driver":   ".model m\n.inputs a\n.outputs q\n.latch ghost q 0\n.end",
		"po names undefined chain": ".model m\n.inputs a\n.outputs z\n.latch ghost z 0\n.end",
	}
	for name, src := range cases {
		if _, err := ReadBLIF(strings.NewReader(src)); err == nil {
			t.Errorf("%s: error not reported", name)
		}
	}
}

func TestBLIFRoundTrip(t *testing.T) {
	c, err := ReadBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, c); err != nil {
		t.Fatal(err)
	}
	d, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, buf.String())
	}
	if d.NumGates() < c.NumGates() {
		t.Errorf("gates lost: %d -> %d", c.NumGates(), d.NumGates())
	}
	if d.NumFFs() != c.NumFFs() {
		t.Errorf("FF count changed: %d -> %d", c.NumFFs(), d.NumFFs())
	}
	if len(d.PIs) != len(c.PIs) || len(d.POs) != len(c.POs) {
		t.Error("interface changed")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	// Output names survive.
	for i, po := range c.POs {
		want := strings.TrimSuffix(c.Nodes[po].Name, "$po")
		got := strings.TrimSuffix(d.Nodes[d.POs[i]].Name, "$po")
		if got != want {
			t.Errorf("PO %d renamed %q -> %q", i, want, got)
		}
	}
}

func TestWriteBLIFSharedLatchChains(t *testing.T) {
	// Two consumers at weights 1 and 2 must share one chain: 2 latches.
	c := NewCircuit("share")
	pi := c.AddPI("a")
	g := c.AddGate("g", logic.Buf(), Fanin{From: pi})
	x := c.AddGate("x", logic.Buf(), Fanin{From: g, Weight: 1})
	y := c.AddGate("y", logic.AndAll(2), Fanin{From: g, Weight: 2}, Fanin{From: x})
	c.AddPO("z", y, 0)
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, c); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), ".latch"); n != 2 {
		t.Fatalf("want 2 latches, got %d:\n%s", n, buf.String())
	}
	d, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFFs() != 3 { // re-reading un-shares: edge weights 1+2
		t.Errorf("re-read FF count (edge weights) = %d, want 3", d.NumFFs())
	}
}

func TestLogicalLinesContinuation(t *testing.T) {
	src := ".inputs a \\\nb c\n.outputs z # comment\n"
	lines, err := logicalLines(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || !strings.Contains(lines[0], "b c") {
		t.Fatalf("continuation handling: %q", lines)
	}
	if strings.Contains(lines[1], "comment") {
		t.Fatal("comment not stripped")
	}
}

func TestCoverToTTWideGate(t *testing.T) {
	// 8-input AND via a single cube.
	tt, err := coverToTT(8, []string{"11111111 1"})
	if err != nil {
		t.Fatal(err)
	}
	if !tt.Equal(logic.AndAll(8)) {
		t.Error("wide AND cover wrong")
	}
}
