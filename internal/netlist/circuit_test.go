package netlist

import (
	"testing"

	"turbosyn/internal/graph"
	"turbosyn/internal/logic"
)

// buildCounterLike returns a tiny sequential circuit:
//
//	pi -> g1(xor) -> g2(and) -> po
//	        ^----------(w=1)----'   (loop g1->g2->g1 with one FF)
func buildCounterLike(t *testing.T) *Circuit {
	t.Helper()
	c := NewCircuit("tiny")
	pi := c.AddPI("in")
	g1 := c.AddGate("g1", logic.XorAll(2), Fanin{From: pi}, Fanin{From: pi})
	// placeholder second fanin replaced below to create the loop
	g2 := c.AddGate("g2", logic.AndAll(2), Fanin{From: g1}, Fanin{From: pi})
	c.Nodes[g1].Fanins[1] = Fanin{From: g2, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("out", g2, 0)
	if err := c.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return c
}

func TestBuildAndCounts(t *testing.T) {
	c := buildCounterLike(t)
	if c.NumNodes() != 4 {
		t.Errorf("NumNodes = %d", c.NumNodes())
	}
	if c.NumGates() != 2 {
		t.Errorf("NumGates = %d", c.NumGates())
	}
	if c.NumFFs() != 1 {
		t.Errorf("NumFFs = %d", c.NumFFs())
	}
	if c.MaxFanin() != 2 || !c.IsKBounded(2) || c.IsKBounded(1) {
		t.Error("fanin bookkeeping wrong")
	}
	if c.IDByName("g1") == -1 || c.IDByName("nosuch") != -1 {
		t.Error("name lookup wrong")
	}
}

func TestFanouts(t *testing.T) {
	c := buildCounterLike(t)
	pi := c.IDByName("in")
	fo := c.Fanouts(pi)
	if len(fo) != 2 { // g1 slot 0 (slot 1 was rewired to g2) + g2 slot 1
		t.Fatalf("pi fanouts = %v", fo)
	}
	g2 := c.IDByName("g2")
	var loop *Fanout
	for i := range c.Fanouts(g2) {
		f := c.Fanouts(g2)[i]
		if f.To == c.IDByName("g1") {
			loop = &f
		}
	}
	if loop == nil || loop.Weight != 1 || loop.Slot != 1 {
		t.Fatalf("loop fanout wrong: %+v", loop)
	}
}

func TestCombCycleDetected(t *testing.T) {
	c := NewCircuit("bad")
	pi := c.AddPI("in")
	g1 := c.AddGate("g1", logic.AndAll(2), Fanin{From: pi}, Fanin{From: pi})
	g2 := c.AddGate("g2", logic.AndAll(2), Fanin{From: g1}, Fanin{From: pi})
	c.Nodes[g1].Fanins[1] = Fanin{From: g2, Weight: 0} // zero-weight loop
	c.InvalidateCaches()
	c.AddPO("out", g2, 0)
	if err := c.Check(); err == nil {
		t.Fatal("combinational cycle not detected")
	}
}

func TestCheckRejectsBadStructures(t *testing.T) {
	c := NewCircuit("x")
	pi := c.AddPI("a")
	g := c.AddGate("g", logic.Buf(), Fanin{From: pi})
	c.AddPO("o", g, 0)

	bad := c.Clone()
	bad.Nodes[g].Func = logic.AndAll(2)
	if err := bad.Check(); err == nil {
		t.Error("arity mismatch not detected")
	}
	bad = c.Clone()
	bad.Nodes[g].Fanins[0].Weight = -1
	if err := bad.Check(); err == nil {
		t.Error("negative weight not detected")
	}
	bad = c.Clone()
	bad.Nodes[g].Func = nil
	if err := bad.Check(); err == nil {
		t.Error("missing function not detected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := buildCounterLike(t)
	d := c.Clone()
	d.Nodes[d.IDByName("g1")].Fanins[0].Weight = 7
	if c.Nodes[c.IDByName("g1")].Fanins[0].Weight == 7 {
		t.Fatal("clone shares fanin storage")
	}
	if d.IDByName("g2") != c.IDByName("g2") {
		t.Fatal("clone changed ids")
	}
}

func TestAdjAndCombAdj(t *testing.T) {
	c := buildCounterLike(t)
	s := graph.StronglyConnected(c.Adj())
	g1, g2 := c.IDByName("g1"), c.IDByName("g2")
	if s.Comp[g1] != s.Comp[g2] {
		t.Error("loop nodes should share an SCC in the full graph")
	}
	if _, ok := graph.TopoOrder(c.CombAdj()); !ok {
		t.Error("combinational subgraph must be acyclic")
	}
	order := c.CombTopoOrder()
	if len(order) != c.NumNodes() {
		t.Errorf("topo order covers %d of %d nodes", len(order), c.NumNodes())
	}
}

func TestDelayModel(t *testing.T) {
	c := buildCounterLike(t)
	if c.Nodes[c.PIs[0]].Delay() != 0 || c.Nodes[c.POs[0]].Delay() != 0 {
		t.Error("PI/PO must have zero delay")
	}
	if c.Nodes[c.IDByName("g1")].Delay() != 1 {
		t.Error("gates have unit delay")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	c := NewCircuit("p")
	pi := c.AddPI("a")
	po := c.AddPO("o", pi, 0)
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("gate driven by PO", func() {
		c.AddGate("g", logic.Buf(), Fanin{From: po})
	})
	assertPanics("arity mismatch", func() {
		c.AddGate("g", logic.AndAll(2), Fanin{From: pi})
	})
	assertPanics("duplicate name", func() { c.AddPI("a") })
	assertPanics("nil function", func() { c.AddGate("g", nil, Fanin{From: pi}) })
	assertPanics("bad ref", func() { c.AddGate("g", logic.Buf(), Fanin{From: 99}) })
}
