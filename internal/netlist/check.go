package netlist

import (
	"fmt"

	"turbosyn/internal/graph"
)

// Check verifies the structural invariants the mapping and retiming engines
// rely on:
//
//   - every PO has exactly one fanin; PIs have none,
//   - every gate function ranges over its fanin count,
//   - edge weights are non-negative,
//   - the combinational subgraph (zero-weight edges) is acyclic, i.e. every
//     loop carries at least one flipflop (a synchronous circuit).
//
// It returns the first violation found, or nil.
func (c *Circuit) Check() error {
	for _, n := range c.Nodes {
		switch n.Kind {
		case PI:
			if len(n.Fanins) != 0 {
				return fmt.Errorf("netlist: PI %q has %d fanins", n.Name, len(n.Fanins))
			}
		case PO:
			if len(n.Fanins) != 1 {
				return fmt.Errorf("netlist: PO %q has %d fanins, want 1", n.Name, len(n.Fanins))
			}
		case Gate:
			if n.Func == nil {
				return fmt.Errorf("netlist: gate %q has no function", n.Name)
			}
			if n.Func.NumVars() != len(n.Fanins) {
				return fmt.Errorf("netlist: gate %q: %d-var function, %d fanins",
					n.Name, n.Func.NumVars(), len(n.Fanins))
			}
		}
		for _, f := range n.Fanins {
			if f.From < 0 || f.From >= len(c.Nodes) {
				return fmt.Errorf("netlist: node %q: fanin id %d out of range", n.Name, f.From)
			}
			if f.Weight < 0 {
				return fmt.Errorf("netlist: node %q: negative edge weight", n.Name)
			}
			if c.Nodes[f.From].Kind == PO {
				return fmt.Errorf("netlist: node %q driven by PO %q", n.Name, c.Nodes[f.From].Name)
			}
		}
	}
	if _, ok := graph.TopoOrder(c.CombAdj()); !ok {
		return fmt.Errorf("netlist: %s: combinational cycle (a loop without flipflops)", c.Name)
	}
	return nil
}

// IsKBounded reports whether every gate has at most k fanins.
func (c *Circuit) IsKBounded(k int) bool {
	return c.MaxFanin() <= k
}

// CombTopoOrder returns a topological order of all nodes with respect to the
// zero-weight (combinational) edges. It panics if the circuit has a
// combinational cycle; call Check first.
func (c *Circuit) CombTopoOrder() []int {
	order, ok := graph.TopoOrder(c.CombAdj())
	if !ok {
		panic("netlist: combinational cycle; run Check before CombTopoOrder")
	}
	return order
}
