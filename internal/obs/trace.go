package obs

import (
	"encoding/json"
	"io"
)

// Chrome trace event format (the JSON Perfetto and chrome://tracing load):
// a {"traceEvents": [...]} object whose entries are metadata events ("M"),
// complete spans ("X", with ts + dur) and instants ("i"). Timestamps are
// microseconds from the recorder's epoch. See DESIGN.md §8 for the schema
// this writer commits to.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	Meta            traceMeta    `json:"otherData"`
}

type traceMeta struct {
	Tool          string `json:"tool"`
	RunID         string `json:"runID,omitempty"`
	Events        int    `json:"events"`
	DroppedEvents int    `json:"droppedEvents"`
}

const tracePID = 1

// argsFor names the op-specific span arguments so traces are readable
// without a legend.
func argsFor(op Op, a, b int64) map[string]any {
	args := map[string]any{}
	switch op {
	case OpExpand, OpFlow, OpPLD, OpCacheHit, OpCacheMiss, OpDegrade:
		if a >= 0 {
			args["node"] = a
		}
	case OpDecompose:
		if a >= 0 {
			args["node"] = a
		}
		if b >= 0 {
			args["boundSets"] = b
		}
	case OpComp:
		args["component"] = a
		if b >= 0 {
			args["iterations"] = b
		}
	case OpProbe:
		args["phi"] = a
		switch b {
		case 1:
			args["feasible"] = true
		case 0:
			args["feasible"] = false
		default:
			args["aborted"] = true
		}
	case OpMap:
		args["phi"] = a
	case OpCancel:
		if a >= 0 {
			args["component"] = a
		}
	case OpCacheLoad, OpCacheFlush:
		args["entries"] = a
		if b < 0 {
			args["error"] = true
		}
	case OpAdmit:
		args["accepted"] = a == 1
	case OpQueueWait:
		if a == 0 {
			args["shed"] = true
		}
	case OpJournal:
		if a == 1 {
			args["record"] = "terminal"
		} else {
			args["record"] = "accepted"
		}
		if b < 0 {
			args["error"] = true
		}
	case OpDispatch:
		args["done"] = a == 1
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// WriteTrace exports every ring's retained events as Chrome trace JSON.
// Call it after the synthesis run has returned (success or abort); the
// engine's shutdown joins all ring owners first, so the rings are complete.
func (r *Recorder) WriteTrace(w io.Writer, runID string) error {
	r.mu.Lock()
	rings := append([]*Ring(nil), r.rings...)
	r.mu.Unlock()

	events, dropped := r.Totals()
	doc := traceDoc{
		DisplayTimeUnit: "ms",
		Meta:            traceMeta{Tool: "turbosyn", RunID: runID, Events: events, DroppedEvents: dropped},
	}
	doc.TraceEvents = append(doc.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", PID: tracePID,
		Args: map[string]any{"name": "turbosyn"},
	})
	for _, ring := range rings {
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: ring.tid,
			Args: map[string]any{"name": ring.label},
		})
		for _, ev := range ring.Events() {
			te := traceEvent{
				Name: ev.Op.String(),
				TS:   float64(ev.Begin) / 1e3,
				PID:  tracePID,
				TID:  ring.tid,
				Args: argsFor(ev.Op, ev.A, ev.B),
			}
			if ev.Kind == kindInstant {
				te.Ph, te.S = "i", "t"
			} else {
				te.Ph = "X"
				dur := float64(ev.End-ev.Begin) / 1e3
				te.Dur = &dur
			}
			doc.TraceEvents = append(doc.TraceEvents, te)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
