package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counters is the live-counter part of a progress snapshot, sampled from the
// engine's shared atomic counter set (stats.Concurrency plus the trace
// recorder's totals) at delivery time.
type Counters struct {
	Workers         int // effective worker-pool size
	NodesLabeled    int // member visits performed across all label sweeps
	NodesSkipped    int // member visits elided by the dirty-set worklist
	Iterations      int // label-update passes over SCC members
	ProbesLaunched  int // feasibility probes started
	ProbesFinished  int // feasibility probes completed (any verdict)
	ReadyQueueDepth int // current dataflow ready-queue depth
	QueueDepthPeak  int // ready-queue depth high-water mark
	WorklistDepth   int // dirty members drained by the last fast pass
	WorklistPeak    int // largest fast-pass worklist drain so far
	Degradations    int // budget exhaustions absorbed so far
	ArenaPeakBytes  int // busiest scratch arena's high-water footprint
	CacheHits       int // decomposition-cache hits
	CacheMisses     int // decomposition-cache misses
	CachePersisted  int // hits served by entries loaded from a persisted cache log
	TraceEvents     int // events recorded by the trace recorder (0 when off)
	TraceDropped    int // events lost to ring wrap-around
}

// Snapshot is one progress report: where the run is (phase, best phi so
// far), how long it has been going, and the live work counters. The final
// snapshot of a run has Done == true and, when the run aborted, Err set to
// the abort reason; it is delivered on every exit path, including
// *CancelError / *InternalError aborts — which is what lets callers (the
// CLI's SIGINT/-timeout report, the metrics endpoint) treat the snapshot
// stream as the single source of truth for partial progress.
type Snapshot struct {
	RunID   string
	Phase   string // "init", "turbomap-ub", "search", "map", "pack", "realize", "flowsyns"
	Elapsed time.Duration
	BestPhi int // smallest feasible phi proven so far, -1 when none
	Done    bool
	Err     string // abort reason when Done and the run failed, else ""
	Counters
}

// Progress drives a rate-limited snapshot stream: a ticker goroutine
// samples the engine's counters every interval and invokes the callback;
// Finish stops the ticker, joins it, and delivers the final Done snapshot
// exactly once. All methods are safe for concurrent use and safe on a nil
// receiver (a nil *Progress is the disabled tracker), so engine call sites
// need no guards.
type Progress struct {
	fn       func(Snapshot)
	interval time.Duration
	runID    string
	start    time.Time

	phase   atomic.Pointer[string]
	bestPhi atomic.Int64
	sampler atomic.Pointer[func() Counters]

	deliver  sync.Mutex // serializes callback invocations
	stop     chan struct{}
	loopDone chan struct{}
	started  bool
	finished atomic.Bool
}

// DefaultInterval is the snapshot cadence when NewProgress is given 0.
const DefaultInterval = 500 * time.Millisecond

// NewProgress returns a tracker delivering snapshots to fn every interval
// (0 = DefaultInterval). The clock starts now.
func NewProgress(runID string, interval time.Duration, fn func(Snapshot)) *Progress {
	if interval <= 0 {
		interval = DefaultInterval
	}
	p := &Progress{
		fn:       fn,
		interval: interval,
		runID:    runID,
		start:    time.Now(),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	init := "init"
	p.phase.Store(&init)
	p.bestPhi.Store(-1)
	return p
}

// SetPhase records the pipeline phase the run is in and delivers an
// immediate snapshot (phase transitions are rare and worth seeing promptly).
func (p *Progress) SetPhase(phase string) {
	if p == nil || p.finished.Load() {
		return
	}
	p.phase.Store(&phase)
	p.emit(p.snapshot())
}

// SetBestPhi records the smallest feasible phi proven so far.
func (p *Progress) SetBestPhi(phi int) {
	if p == nil {
		return
	}
	p.bestPhi.Store(int64(phi))
}

// SetSampler installs the engine's live-counter source; until one is set,
// snapshots carry zero Counters.
func (p *Progress) SetSampler(fn func() Counters) {
	if p == nil || fn == nil {
		return
	}
	p.sampler.Store(&fn)
}

// Start launches the ticker goroutine. Finish must be called to join it.
func (p *Progress) Start() {
	if p == nil || p.started {
		return
	}
	p.started = true
	go func() {
		defer close(p.loopDone)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if !p.finished.Load() {
					p.emit(p.snapshot())
				}
			case <-p.stop:
				return
			}
		}
	}()
}

// Finish stops and joins the ticker goroutine and delivers the final
// snapshot (Done = true, Err = errMsg) exactly once, even when called
// multiple times or without Start. It returns the final snapshot.
func (p *Progress) Finish(errMsg string) Snapshot {
	if p == nil {
		return Snapshot{}
	}
	if !p.finished.CompareAndSwap(false, true) {
		return p.snapshotDone(errMsg)
	}
	if p.started {
		close(p.stop)
		<-p.loopDone
	}
	s := p.snapshotDone(errMsg)
	p.emit(s)
	return s
}

func (p *Progress) snapshotDone(errMsg string) Snapshot {
	s := p.snapshot()
	s.Done = true
	s.Err = errMsg
	return s
}

func (p *Progress) snapshot() Snapshot {
	s := Snapshot{
		RunID:   p.runID,
		Elapsed: time.Since(p.start),
		BestPhi: int(p.bestPhi.Load()),
	}
	if ph := p.phase.Load(); ph != nil {
		s.Phase = *ph
	}
	if fn := p.sampler.Load(); fn != nil {
		s.Counters = (*fn)()
	}
	return s
}

func (p *Progress) emit(s Snapshot) {
	if p.fn == nil {
		return
	}
	p.deliver.Lock()
	defer p.deliver.Unlock()
	p.fn(s)
}
