package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics republishes the latest progress snapshot as live run metrics: a
// Prometheus text-format endpoint (ServeHTTP) and an expvar-compatible value
// (Expvar). Feed it from an Options.Progress callback:
//
//	m := &obs.Metrics{}
//	opts.Progress = m.Update
//	release := m.PublishExpvar("")  // or a run-id-scoped name
//	defer release()
//	http.Handle("/metrics", m)
//
// Update is one atomic pointer store, so the callback adds nothing
// measurable to the snapshot path.
type Metrics struct {
	cur atomic.Pointer[Snapshot]
}

// expvarSlots backs PublishExpvar: expvar.Publish panics on a duplicate
// name and has no unpublish, so each name is published to the standard
// registry exactly once, as an indirection through a swappable function
// pointer. Re-publishing a name swaps the target; releasing swaps in nil.
var (
	expvarMu    sync.Mutex
	expvarSlots = map[string]*atomic.Pointer[func() any]{}
)

// PublishExpvar registers fn in the process-wide expvar registry under
// name, idempotently: unlike expvar.Publish, publishing the same name
// again never panics — the previous function is replaced (last writer
// wins). This is what lets many engine runs live in one daemon process.
// The returned release function detaches fn (the expvar value then reads
// as null) and frees the reference; calling it more than once is safe,
// and a later re-publish of the name wins over an earlier release.
func PublishExpvar(name string, fn func() any) (release func()) {
	expvarMu.Lock()
	slot, ok := expvarSlots[name]
	if !ok {
		slot = &atomic.Pointer[func() any]{}
		expvarSlots[name] = slot
		expvar.Publish(name, expvar.Func(func() any {
			if f := slot.Load(); f != nil && *f != nil {
				return (*f)()
			}
			return nil
		}))
	}
	slot.Store(&fn)
	expvarMu.Unlock()
	return func() {
		// Release only if fn is still the published target; a newer
		// publish under the same name must not be torn down by an old
		// release.
		expvarMu.Lock()
		if slot.Load() == &fn {
			slot.Store(nil)
		}
		expvarMu.Unlock()
	}
}

// PublishExpvar publishes the metrics' latest snapshot under
// "turbosyn.<scope>" (or plain "turbosyn" for an empty scope). Scope it by
// run id when several engines share a process — the daemon's debug mux
// does — so concurrent runs never clobber each other's series.
func (m *Metrics) PublishExpvar(scope string) (release func()) {
	name := "turbosyn"
	if scope != "" {
		name = "turbosyn." + scope
	}
	return PublishExpvar(name, m.Expvar)
}

// Update records the latest snapshot; use it directly as the progress
// callback (or call it from one).
func (m *Metrics) Update(s Snapshot) { m.cur.Store(&s) }

// Latest returns the most recent snapshot (zero value before the first
// Update).
func (m *Metrics) Latest() Snapshot {
	if s := m.cur.Load(); s != nil {
		return *s
	}
	return Snapshot{}
}

// Expvar returns the latest snapshot as a plain value for
// expvar.Publish(..., expvar.Func(m.Expvar)).
func (m *Metrics) Expvar() any { return m.Latest() }

// gauges lists the exported numeric series in stable order.
func (s Snapshot) gauges() []struct {
	name, help string
	value      float64
} {
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	return []struct {
		name, help string
		value      float64
	}{
		{"turbosyn_elapsed_seconds", "wall time since the run started", s.Elapsed.Seconds()},
		{"turbosyn_best_phi", "smallest feasible phi proven so far (-1 = none)", float64(s.BestPhi)},
		{"turbosyn_done", "1 once the run has delivered its final snapshot", b(s.Done)},
		{"turbosyn_workers", "effective worker-pool size", float64(s.Workers)},
		{"turbosyn_nodes_labeled_total", "member visits performed by label sweeps", float64(s.NodesLabeled)},
		{"turbosyn_nodes_skipped_total", "member visits elided by the dirty-set worklist", float64(s.NodesSkipped)},
		{"turbosyn_iterations_total", "label-update passes over SCC members", float64(s.Iterations)},
		{"turbosyn_probes_launched_total", "feasibility probes started", float64(s.ProbesLaunched)},
		{"turbosyn_probes_finished_total", "feasibility probes completed", float64(s.ProbesFinished)},
		{"turbosyn_ready_queue_depth", "current dataflow ready-queue depth", float64(s.ReadyQueueDepth)},
		{"turbosyn_ready_queue_depth_peak", "ready-queue depth high-water mark", float64(s.QueueDepthPeak)},
		{"turbosyn_worklist_depth", "dirty members drained by the last fast pass", float64(s.WorklistDepth)},
		{"turbosyn_worklist_depth_peak", "largest fast-pass worklist drain", float64(s.WorklistPeak)},
		{"turbosyn_degradations_total", "budget exhaustions absorbed", float64(s.Degradations)},
		{"turbosyn_arena_peak_bytes", "busiest scratch arena footprint", float64(s.ArenaPeakBytes)},
		{"turbosyn_cache_hits_total", "decomposition-cache hits", float64(s.CacheHits)},
		{"turbosyn_cache_misses_total", "decomposition-cache misses", float64(s.CacheMisses)},
		{"turbosyn_cache_persisted_hits_total", "decomposition-cache hits served from the persisted log", float64(s.CachePersisted)},
		{"turbosyn_trace_events_total", "trace events recorded", float64(s.TraceEvents)},
		{"turbosyn_trace_dropped_total", "trace events lost to ring wrap", float64(s.TraceDropped)},
	}
}

// ServeHTTP writes the latest snapshot in Prometheus text exposition format.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	s := m.Latest()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP turbosyn_run_info run identity (labels carry the run id and phase)\n")
	fmt.Fprintf(w, "# TYPE turbosyn_run_info gauge\n")
	fmt.Fprintf(w, "turbosyn_run_info{run_id=%q,phase=%q} 1\n", s.RunID, s.Phase)
	gs := s.gauges()
	sort.SliceStable(gs, func(i, j int) bool { return gs[i].name < gs[j].name })
	for _, g := range gs {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.name, g.help, g.name, g.name, g.value)
	}
}
