package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketsAndProm(t *testing.T) {
	h := NewHistogram("test_seconds", "test latencies", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.605; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	h.WriteProm(&b)
	out := b.String()
	// Cumulative le buckets: 1 <= 0.01, 3 <= 0.1, 4 <= 1, 5 <= +Inf.
	for _, line := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="1"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition lacks %q:\n%s", line, out)
		}
	}
}

func TestHistogramBucketBoundaryIsInclusive(t *testing.T) {
	h := NewHistogram("b", "", []float64{1, 2})
	h.Observe(1) // exactly on a bound: le="1" must include it
	var b strings.Builder
	h.WriteProm(&b)
	if !strings.Contains(b.String(), `b_bucket{le="1"} 1`) {
		t.Fatalf("observation on the bound fell out of its bucket:\n%s", b.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("q", "", []float64{1, 2, 3, 4})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%4) + 0.5) // 25 each in (0,1], (1,2], (2,3], (3,4]
	}
	if p50 := h.Quantile(0.50); p50 < 1 || p50 > 3 {
		t.Errorf("p50 = %v, want within [1,3]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 3 || p99 > 4 {
		t.Errorf("p99 = %v, want within (3,4]", p99)
	}
	// Empty histogram: quantiles are 0, not NaN.
	e := NewHistogram("e", "", nil)
	if q := e.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	// Overflow bucket: the quantile reports the largest finite bound rather
	// than inventing a value beyond it.
	o := NewHistogram("o", "", []float64{1})
	o.Observe(100)
	if q := o.Quantile(0.99); q != 1 {
		t.Errorf("overflow quantile = %v, want the largest finite bound 1", q)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram reports non-zero aggregates")
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	NewHistogram("bad", "", []float64{1, 1})
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram("c", "", nil)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g+1) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	want := 0.0
	for g := 0; g < goroutines; g++ {
		want += float64(g+1) * 0.001 * per
	}
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}
