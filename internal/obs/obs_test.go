package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRingWrapKeepsTail(t *testing.T) {
	rec := NewRecorder(4)
	ring := rec.NewRing("w")
	for i := int64(0); i < 10; i++ {
		ring.Instant(OpCacheHit, i, -1)
	}
	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want ring capacity 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.A != want {
			t.Fatalf("event %d has A=%d, want %d (oldest-first tail)", i, ev.A, want)
		}
	}
	events, dropped := rec.Totals()
	if events != 10 || dropped != 6 {
		t.Fatalf("totals = %d/%d, want 10 recorded / 6 dropped", events, dropped)
	}
}

func TestRingPhaseSpans(t *testing.T) {
	rec := NewRecorder(0)
	ring := rec.NewRing("w")
	ring.Phase(OpExpand, 7)
	ring.Phase(OpExpand, 8) // same op: no event, span stays open
	ring.Phase(OpFlow, 7)   // closes expand, opens flow
	ring.ClosePhase()       // closes flow, opens nothing
	ring.ClosePhase()       // idempotent
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (expand, flow)", len(evs))
	}
	if evs[0].Op != OpExpand || evs[0].A != 7 || evs[1].Op != OpFlow {
		t.Fatalf("spans = %+v", evs)
	}
	for _, ev := range evs {
		if ev.Kind != kindSpan || ev.End < ev.Begin {
			t.Fatalf("malformed span %+v", ev)
		}
	}
}

func TestWriteTraceSchema(t *testing.T) {
	rec := NewRecorder(0)
	ring := rec.NewRing("worker 0")
	t0 := ring.Now()
	ring.Span(OpProbe, t0, 3, 1)
	ring.Instant(OpDegrade, 42, 100)
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf, "run-1"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// process_name + thread_name metadata, then the two events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	probe := doc.TraceEvents[2]
	if probe["name"] != "probe" || probe["ph"] != "X" {
		t.Fatalf("probe event = %v", probe)
	}
	if _, ok := probe["dur"]; !ok {
		t.Fatal("complete span without dur")
	}
	if args := probe["args"].(map[string]any); args["phi"] != 3.0 || args["feasible"] != true {
		t.Fatalf("probe args = %v", args)
	}
	if inst := doc.TraceEvents[3]; inst["ph"] != "i" || inst["s"] != "t" {
		t.Fatalf("instant event = %v", inst)
	}
	if doc.OtherData["runID"] != "run-1" || doc.OtherData["tool"] != "turbosyn" {
		t.Fatalf("otherData = %v", doc.OtherData)
	}
}

func TestProgressFinishDeliversOnce(t *testing.T) {
	var dones atomic.Int64
	var last atomic.Pointer[Snapshot]
	p := NewProgress("r", time.Hour, func(s Snapshot) {
		if s.Done {
			dones.Add(1)
		}
		last.Store(&s)
	})
	p.Start()
	p.SetPhase("search")
	p.SetBestPhi(4)
	p.SetSampler(func() Counters { return Counters{Iterations: 9} })
	final := p.Finish("boom")
	p.Finish("boom again") // idempotent: no second delivery
	p.SetPhase("late")     // post-finish mutations must not emit
	if got := dones.Load(); got != 1 {
		t.Fatalf("Done delivered %d times, want exactly once", got)
	}
	s := last.Load()
	if !s.Done || s.Err != "boom" || s.Phase != "search" || s.BestPhi != 4 || s.Iterations != 9 {
		t.Fatalf("final snapshot = %+v", s)
	}
	if final.Err != "boom" || !final.Done {
		t.Fatalf("Finish return = %+v", final)
	}
}

func TestNilProgressIsSafe(t *testing.T) {
	var p *Progress
	p.SetPhase("x")
	p.SetBestPhi(1)
	p.SetSampler(func() Counters { return Counters{} })
	p.Start()
	if s := p.Finish(""); s != (Snapshot{}) {
		t.Fatalf("nil Finish = %+v", s)
	}
}

func TestMetricsPrometheusText(t *testing.T) {
	m := &Metrics{}
	m.Update(Snapshot{RunID: "r1", Phase: "search", BestPhi: 3,
		Counters: Counters{Iterations: 12, Workers: 4}})
	w := httptest.NewRecorder()
	m.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	body := w.Body.String()
	for _, want := range []string{
		"turbosyn_iterations_total 12",
		"turbosyn_best_phi 3",
		`turbosyn_run_info{run_id="r1",phase="search"} 1`,
		"# TYPE turbosyn_workers gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q:\n%s", want, body)
		}
	}
}

// TestPublishExpvarIdempotent pins the fix for the expvar name-collision
// hazard: expvar.Publish panics on a duplicate name, so a daemon hosting
// many engine runs (or a test constructing several Metrics) used to crash
// on the second registration. PublishExpvar must tolerate any number of
// publishes — same name or run-id-scoped names — with last-writer-wins
// reads and releases that never tear down a newer publication.
func TestPublishExpvarIdempotent(t *testing.T) {
	// Same name, many publishers: no panic, last writer wins.
	var rel []func()
	for i := 0; i < 5; i++ {
		m := &Metrics{}
		m.Update(Snapshot{RunID: fmt.Sprintf("run-%d", i)})
		rel = append(rel, m.PublishExpvar(""))
	}
	v := expvar.Get("turbosyn")
	if v == nil {
		t.Fatal("turbosyn not in the expvar registry")
	}
	if !strings.Contains(v.String(), "run-4") {
		t.Fatalf("expvar reads %s, want the last publisher (run-4)", v.String())
	}
	// A stale release must not tear down the live publication...
	rel[0]()
	if !strings.Contains(expvar.Get("turbosyn").String(), "run-4") {
		t.Fatal("stale release tore down the live publication")
	}
	// ...while the live one's release detaches it (value reads null).
	rel[4]()
	if s := expvar.Get("turbosyn").String(); !strings.Contains(s, "null") {
		t.Fatalf("released expvar reads %s, want null", s)
	}

	// Run-id-scoped names coexist: concurrent runs never clobber each other.
	a, b := &Metrics{}, &Metrics{}
	a.Update(Snapshot{RunID: "job-a"})
	b.Update(Snapshot{RunID: "job-b"})
	relA, relB := a.PublishExpvar("job-a"), b.PublishExpvar("job-b")
	defer relA()
	defer relB()
	if !strings.Contains(expvar.Get("turbosyn.job-a").String(), "job-a") ||
		!strings.Contains(expvar.Get("turbosyn.job-b").String(), "job-b") {
		t.Fatal("run-id-scoped publications clobbered each other")
	}
	// Re-publishing a released name revives it.
	c := &Metrics{}
	c.Update(Snapshot{RunID: "revived"})
	defer c.PublishExpvar("")()
	if !strings.Contains(expvar.Get("turbosyn").String(), "revived") {
		t.Fatal("re-publish after release did not revive the name")
	}
}
