// Package obs is the synthesis engine's observability layer: a run-scoped
// span/event recorder (exported as Chrome/Perfetto trace JSON), a
// rate-limited progress tracker delivering periodic counter snapshots, and a
// live-metrics surface (expvar + Prometheus text) built from those
// snapshots.
//
// Overhead contract (see DESIGN.md §8): every engine hook is gated on a
// single pointer check — a nil *Recorder (or a nil per-worker *Ring) means
// the hook is one predictable branch and nothing else, preserving the label
// hot path's zero-allocation invariant. When recording is enabled, events go
// into fixed-capacity per-worker ring buffers owned by exactly one goroutine
// each, so the hot path takes no locks and performs no allocation either:
// enabling tracing adds one monotonic clock read, one slot write and one
// uncontended atomic counter bump per event. Ring creation (cold, once per
// worker) is the only allocating and locking operation. When a ring fills, the oldest events are overwritten —
// the trace keeps the tail of each worker's activity and reports how much
// was dropped.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies what a recorded event describes: an engine stage (span), a
// task-level span (component, probe, map), or a point event (cache traffic,
// degradations, cancellation).
type Op uint8

// Recorded operations. The first five mirror the pprof phase labels of
// internal/prof; the engine switches between them inside the label kernel.
const (
	// OpLabel is the sweep bookkeeping between instrumented stages. Phase
	// switches to OpLabel close the current stage span without opening a new
	// one: label time is the trace's idle baseline, not an event.
	OpLabel Op = iota
	// OpExpand is E_v construction (expansion build or in-place re-mark).
	OpExpand
	// OpFlow is the max-flow K-cut / min-cut computation.
	OpFlow
	// OpDecompose is a Roth-Karp resynthesis attempt (span arg A = node,
	// B = bound-set candidates examined).
	OpDecompose
	// OpPLD is a predecessor-graph positive-loop-detection walk.
	OpPLD
	// OpComp is one SCC component task (span arg A = component id, B = label
	// iterations it ran).
	OpComp
	// OpProbe is one feasibility probe (span arg A = phi, B = 1 feasible /
	// 0 infeasible / -1 aborted).
	OpProbe
	// OpMap is the final mapping pass at the minimized phi (arg A = phi).
	OpMap
	// OpCacheHit / OpCacheMiss are decomposition-cache lookups (arg A = node).
	OpCacheHit
	OpCacheMiss
	// OpDegrade is a budget exhaustion absorbed by graceful degradation
	// (arg A = node, -1 for arenas).
	OpDegrade
	// OpCancel is a cancellation/abort observed by a worker (arg A =
	// component id, -1 outside component context).
	OpCancel
	// OpCacheLoad / OpCacheFlush are persisted decomposition-cache log
	// transfers at engine start / shutdown (arg A = entries moved, B = -1
	// when the transfer failed).
	OpCacheLoad
	OpCacheFlush

	// Daemon ops: the serving layer (internal/server) records these into a
	// per-job ring sharing the recorder — and therefore the clock — of the
	// engine run, so one trace shows admission, queueing and synthesis on a
	// single timeline.

	// OpAdmit is the admission decision span, from request arrival to the
	// 202/reject (arg A = 1 accepted / 0 rejected).
	OpAdmit
	// OpQueueWait is the span a job spent in the tenant-fair queue, closed
	// when a worker dequeues it (A = -1) or when drain sheds it (A = 0).
	OpQueueWait
	// OpJournal is one journal append (arg A = 0 accepted-record,
	// 1 terminal-record; B = -1 when the append failed).
	OpJournal
	// OpDispatch is the worker's job execution span, wrapping the engine run
	// (arg A = 1 done / 0 failed).
	OpDispatch
	// OpShed is the instant a job was shed without running (drain, failed
	// recovery, queue rejection after acceptance).
	OpShed

	// NumOps bounds the enum; keep it last.
	NumOps
)

var opNames = [NumOps]string{
	"label", "expand", "flow", "decompose", "pld",
	"component", "probe", "map", "cache-hit", "cache-miss",
	"degradation", "cancel", "cache-load", "cache-flush",
	"admission", "queue-wait", "journal", "dispatch", "shed",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// instant flags Event.Kind for point events.
const (
	kindSpan uint8 = iota
	kindInstant
)

// Event is one recorded ring entry: a completed span (Begin < End) or an
// instant (Begin == End). A and B are op-specific arguments (node ids,
// component ids, phi values); -1 means not applicable.
type Event struct {
	Op    Op
	Kind  uint8
	Begin int64 // ns since the recorder's epoch
	End   int64
	A, B  int64
}

// Recorder collects events for one synthesis run. Create one with
// NewRecorder, hand it to the engine (core.Options.Trace), and write the
// trace with WriteTrace after the run returns — on every path, including
// *CancelError / *InternalError aborts: the engine joins all workers before
// returning, so the rings are quiescent and complete.
type Recorder struct {
	epoch   time.Time
	ringCap int

	mu    sync.Mutex
	rings []*Ring
}

// DefaultRingCap is the per-ring event capacity when NewRecorder is given 0.
// At 48 bytes per event a default ring retains ~192 KiB and keeps the last
// ~4k events of its worker; raise it for long runs where full stage-level
// detail matters more than memory.
const DefaultRingCap = 4096

// NewRecorder returns a recorder whose clock starts now. ringCap is the
// per-worker ring capacity in events (0 = DefaultRingCap).
func NewRecorder(ringCap int) *Recorder {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Recorder{epoch: time.Now(), ringCap: ringCap}
}

// Now returns nanoseconds since the recorder's epoch: the common clock every
// span and snapshot of one run is expressed in.
func (r *Recorder) Now() int64 { return int64(time.Since(r.epoch)) }

// NewRing registers a new event ring named label (shown as the thread name
// in the exported trace). Cold path: it allocates and takes the recorder
// lock. The returned ring must only ever be used by one goroutine at a time;
// the engine hands one to each pool worker, probe and search loop.
func (r *Recorder) NewRing(label string) *Ring {
	ring := &Ring{rec: r, label: label, buf: make([]Event, r.ringCap)}
	r.mu.Lock()
	ring.tid = len(r.rings) + 1 // tid 0 is reserved for process metadata
	r.rings = append(r.rings, ring)
	r.mu.Unlock()
	return ring
}

// Totals reports how many events were recorded across all rings and how
// many of them were overwritten by ring wrap-around (dropped from the
// trace). Safe to call while ring owners are still appending — the counts
// are atomic and monotone, so a mid-run read (the progress sampler's) is at
// worst slightly stale. The event *contents* (Events, WriteTrace) still
// require quiescent rings.
func (r *Recorder) Totals() (events, dropped int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ring := range r.rings {
		n := int(ring.n.Load())
		events += n
		if n > len(ring.buf) {
			dropped += n - len(ring.buf)
		}
	}
	return events, dropped
}

// Ring is a fixed-capacity event buffer owned by one goroutine. All methods
// are lock-free and allocation-free; when the buffer is full new events
// overwrite the oldest ones.
type Ring struct {
	rec   *Recorder
	tid   int
	label string
	buf   []Event
	// n counts events ever appended; n % len(buf) is the write slot. Atomic
	// only so Totals can read it mid-run (single writer, uncontended add).
	n atomic.Uint64

	// Open stage-span state for Phase: the current op, its argument and
	// when it started.
	phaseOp    Op
	phaseStart int64
	phaseA     int64
	phaseOpen  bool
}

// Now returns the owning recorder's clock (ns since epoch).
func (r *Ring) Now() int64 { return r.rec.Now() }

func (r *Ring) append(ev Event) {
	r.buf[r.n.Load()%uint64(len(r.buf))] = ev
	r.n.Add(1)
}

// Phase switches the ring's current engine stage, closing the span of the
// previous stage (if any). Switching to OpLabel closes the current span and
// opens nothing: bookkeeping time between stages is the trace's baseline.
// a is the op-specific argument of the stage being entered (typically the
// node id being decided).
func (r *Ring) Phase(op Op, a int64) {
	if r.phaseOpen && r.phaseOp == op {
		return
	}
	now := r.rec.Now()
	if r.phaseOpen {
		r.append(Event{Op: r.phaseOp, Kind: kindSpan, Begin: r.phaseStart, End: now, A: r.phaseA, B: -1})
		r.phaseOpen = false
	}
	if op != OpLabel {
		r.phaseOp, r.phaseStart, r.phaseA, r.phaseOpen = op, now, a, true
	}
}

// ClosePhase closes any open stage span (end of a component task, or an
// abort unwinding through the worker).
func (r *Ring) ClosePhase() { r.Phase(OpLabel, -1) }

// Span records a completed span that began at begin (a value previously
// read from Now) and ends now.
func (r *Ring) Span(op Op, begin int64, a, b int64) {
	r.append(Event{Op: op, Kind: kindSpan, Begin: begin, End: r.rec.Now(), A: a, B: b})
}

// Instant records a point event.
func (r *Ring) Instant(op Op, a, b int64) {
	now := r.rec.Now()
	r.append(Event{Op: op, Kind: kindInstant, Begin: now, End: now, A: a, B: b})
}

// Events returns the ring's retained events in append order (oldest first).
// Allocates; call it only after the run, never from the owning worker's hot
// path.
func (r *Ring) Events() []Event {
	n, capN := r.n.Load(), uint64(len(r.buf))
	if n <= capN {
		out := make([]Event, n)
		copy(out, r.buf[:n])
		return out
	}
	out := make([]Event, capN)
	start := n % capN
	copy(out, r.buf[start:])
	copy(out[capN-start:], r.buf[:start])
	return out
}

// NewRunID returns a fresh 12-hex-character run identifier, used to
// correlate log lines, progress snapshots and metrics of one synthesis run.
func NewRunID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the clock; uniqueness is best-effort bookkeeping, not
		// a correctness requirement.
		return fmt.Sprintf("t%011x", time.Now().UnixNano()&0xffffffffff)
	}
	return hex.EncodeToString(b[:])
}
