package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe calls: each bucket is an atomic counter and the running sum is a
// CAS loop over float64 bits, so recording costs two uncontended atomic
// ops and no locks or allocation. It exposes itself in Prometheus text
// format (cumulative le-buckets, _sum, _count) and can answer approximate
// quantile queries by linear interpolation inside the winning bucket —
// good enough for /statz summaries and load-test gates, not for billing.
//
// All methods are nil-receiver safe so a daemon with metrics disabled can
// carry nil histograms and keep its hot paths branch-only.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// DefaultLatencyBuckets covers 100µs to 60s, roughly logarithmic: wide
// enough for admission decisions (sub-millisecond) and full synthesis runs
// (seconds to a minute) on one scale.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// NewHistogram returns a histogram named name with the given upper bounds
// (must be strictly increasing; empty = DefaultLatencyBuckets). The +Inf
// bucket is added implicitly.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not increasing at %d", name, i))
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value (seconds for latency histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the final slot is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns an approximation of the q-quantile (0 < q <= 1) by
// locating the bucket holding the q-th observation and interpolating
// linearly inside it. Returns 0 with no observations; values landing in
// the +Inf bucket report the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		if n == 0 {
			return h.bounds[i]
		}
		frac := (rank - float64(cum-n)) / float64(n)
		return lower + (h.bounds[i]-lower)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// WriteProm writes the histogram in Prometheus text exposition format.
// Concurrent Observe calls may land between bucket reads; the cumulative
// counts are each individually consistent, which is all the format
// promises anyway.
func (h *Histogram) WriteProm(w io.Writer) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", h.name, b, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
}
