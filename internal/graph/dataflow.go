package graph

// InDegrees returns the in-degree of every component in the condensation
// DAG: the number of distinct predecessor components. A component with
// in-degree zero depends on nothing and is immediately ready.
func (s *SCCs) InDegrees() []int {
	deg := make([]int, s.NumComps())
	for c := range s.DAG {
		for _, d := range s.DAG[c] {
			deg[d]++
		}
	}
	return deg
}

// OutDegrees returns the out-degree of every component in the condensation
// DAG: the number of distinct successor components it releases on
// completion.
func (s *SCCs) OutDegrees() []int {
	deg := make([]int, s.NumComps())
	for c := range s.DAG {
		deg[c] = len(s.DAG[c])
	}
	return deg
}

// ReadyIter yields components of the condensation in dataflow order: a
// component becomes available the moment its last predecessor is marked
// Done, with no level barriers in between. It is the sequential reference
// semantics of the parallel dependency-counted scheduler (internal/core):
// the scheduler replaces ReadyIter's pending counters with atomics and its
// ready list with a work queue, but the availability rule — pending hits
// zero exactly once, after every predecessor completed — is the same.
//
// Usage: Next pops an available component (components become available in
// s.Order-relative order for determinism); Done marks a popped component
// complete, which may make successors available. The iterator is exhausted
// when every component has been popped; if Next returns ok == false while
// components remain, the caller has popped components without completing
// them (call Done first).
type ReadyIter struct {
	s       *SCCs
	pending []int // unfinished predecessor count per component
	ready   []int // available components, FIFO
	popped  int   // components handed out by Next
}

// ReadyOrder returns a fresh dataflow iterator over the condensation.
func (s *SCCs) ReadyOrder() *ReadyIter {
	it := &ReadyIter{s: s, pending: s.InDegrees()}
	// Seed with the in-degree-zero components in s.Order order, so the
	// no-contention iteration (Done right after Next) visits a topological
	// order that prefers earlier components — matching the sequential sweep.
	for _, c := range s.Order {
		if it.pending[c] == 0 {
			it.ready = append(it.ready, c)
		}
	}
	return it
}

// Next pops the next available component. ok is false when no component is
// currently available (either the iteration is exhausted, or every remaining
// component waits on a popped-but-not-Done one).
func (it *ReadyIter) Next() (c int, ok bool) {
	if len(it.ready) == 0 {
		return 0, false
	}
	c = it.ready[0]
	it.ready = it.ready[1:]
	it.popped++
	return c, true
}

// Done marks component c complete: successors whose last unfinished
// predecessor was c become available. Completing a component twice, or one
// whose predecessors are incomplete, corrupts the iteration; Done panics on
// counters that would go negative to surface such bugs.
func (it *ReadyIter) Done(c int) {
	for _, d := range it.s.DAG[c] {
		it.pending[d]--
		if it.pending[d] < 0 {
			panic("graph: ReadyIter.Done released a component twice")
		}
		if it.pending[d] == 0 {
			it.ready = append(it.ready, d)
		}
	}
}

// Exhausted reports whether every component has been popped.
func (it *ReadyIter) Exhausted() bool { return it.popped == it.s.NumComps() }
