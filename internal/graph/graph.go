// Package graph provides the directed-graph utilities shared by the mapping
// and retiming engines: strongly connected components, condensation with a
// topological order, reachability, and simple traversals.
//
// Graphs are addressed by dense integer node ids in [0, N). Callers supply
// adjacency through the Adjacency interface so that netlist structures can be
// traversed without copying; ready-made slice-backed implementations are
// provided for tests and for derived graphs (predecessor graphs, condensed
// graphs).
package graph

// Adjacency exposes a directed graph with dense integer nodes.
type Adjacency interface {
	// NumNodes returns the node count N; valid ids are 0..N-1.
	NumNodes() int
	// Succ calls fn for every successor of node u. Duplicate edges are
	// allowed and visited once per edge.
	Succ(u int, fn func(v int))
}

// Slice is an adjacency-list graph. Slice itself implements Adjacency.
type Slice [][]int

// NumNodes returns the number of nodes.
func (g Slice) NumNodes() int { return len(g) }

// Succ visits the successors of u.
func (g Slice) Succ(u int, fn func(v int)) {
	for _, v := range g[u] {
		fn(v)
	}
}

// AddEdge appends the edge u->v. The graph must already contain both nodes.
func (g Slice) AddEdge(u, v int) { g[u] = append(g[u], v) }

// NewSlice returns an empty adjacency-list graph with n nodes.
func NewSlice(n int) Slice { return make(Slice, n) }

// Reverse returns the reversed adjacency lists of g.
func Reverse(g Adjacency) Slice {
	n := g.NumNodes()
	r := NewSlice(n)
	for u := 0; u < n; u++ {
		g.Succ(u, func(v int) { r[v] = append(r[v], u) })
	}
	return r
}

// Reachable returns the set of nodes reachable from the given sources
// (including the sources themselves) as a boolean slice.
func Reachable(g Adjacency, sources []int) []bool {
	n := g.NumNodes()
	seen := make([]bool, n)
	queue := make([]int, 0, len(sources))
	for _, s := range sources {
		if s >= 0 && s < n && !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		g.Succ(u, func(v int) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		})
	}
	return seen
}

// TopoOrder returns a topological order of g (nodes with no incoming edges
// first) and reports whether g is acyclic. When g has cycles, ok is false and
// the returned order contains only the nodes Kahn's algorithm could peel,
// i.e. the nodes not on and not downstream of any cycle.
func TopoOrder(g Adjacency) (order []int, ok bool) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		g.Succ(u, func(v int) { indeg[v]++ })
	}
	queue := make([]int, 0, n)
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	order = make([]int, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		g.Succ(u, func(v int) {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		})
	}
	return order, len(order) == n
}
