package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSCCs(rng *rand.Rand) *SCCs {
	n := 2 + rng.Intn(24)
	g := NewSlice(n)
	m := rng.Intn(3 * n)
	for i := 0; i < m; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return StronglyConnected(g)
}

// In/out-degrees must count exactly the condensation's edges, and the
// in-degree-zero components must be exactly the roots of the DAG.
func TestDegreesMatchDAG(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		s := randomSCCs(rand.New(rand.NewSource(seed)))
		in, out := s.InDegrees(), s.OutDegrees()
		pred := Reverse(s.DAG)
		for c := 0; c < s.NumComps(); c++ {
			if out[c] != len(s.DAG[c]) {
				t.Logf("component %d: out-degree %d, DAG lists %d", c, out[c], len(s.DAG[c]))
				return false
			}
			if in[c] != len(pred[c]) {
				t.Logf("component %d: in-degree %d, reverse DAG lists %d", c, in[c], len(pred[c]))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Draining ReadyOrder with Done immediately after Next must yield every
// component exactly once, in a topological order of the condensation.
func TestReadyOrderIsTopological(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		s := randomSCCs(rand.New(rand.NewSource(seed)))
		it := s.ReadyOrder()
		pos := make([]int, s.NumComps())
		for i := range pos {
			pos[i] = -1
		}
		i := 0
		for {
			c, ok := it.Next()
			if !ok {
				break
			}
			if pos[c] != -1 {
				t.Logf("component %d yielded twice", c)
				return false
			}
			pos[c] = i
			i++
			it.Done(c)
		}
		if !it.Exhausted() || i != s.NumComps() {
			t.Logf("yielded %d of %d components", i, s.NumComps())
			return false
		}
		for c := 0; c < s.NumComps(); c++ {
			for _, d := range s.DAG[c] {
				if pos[d] <= pos[c] {
					t.Logf("edge %d->%d violates the ready order", c, d)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// A component must never become available before all its predecessors are
// Done, no matter how completion is interleaved. The test holds a random
// subset of popped components open, asserting that everything Next yields
// has fully-completed predecessors, and that withheld Done calls block the
// successors (the scheduler's safety property: no label is read before it
// is final).
func TestReadyOrderRespectsDependenciesUnderInterleaving(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		s := randomSCCs(rng)
		pred := Reverse(s.DAG)
		it := s.ReadyOrder()
		done := make([]bool, s.NumComps())
		var open []int // popped but not yet Done
		yielded := 0
		for yielded < s.NumComps() || len(open) > 0 {
			c, ok := it.Next()
			if ok {
				for _, p := range pred[c] {
					if !done[p] {
						t.Fatalf("component %d became ready before predecessor %d completed", c, p)
					}
				}
				yielded++
				open = append(open, c)
			}
			// Complete a random open component; when Next stalled we must
			// complete one, otherwise the iteration cannot make progress.
			if len(open) > 0 && (!ok || rng.Intn(2) == 0) {
				i := rng.Intn(len(open))
				it.Done(open[i])
				done[open[i]] = true
				open[i] = open[len(open)-1]
				open = open[:len(open)-1]
			}
		}
		if yielded != s.NumComps() || !it.Exhausted() {
			t.Fatalf("yielded %d of %d components", yielded, s.NumComps())
		}
	}
}

// The first components out of a fresh iterator are exactly the DAG roots,
// in s.Order-relative order — the determinism anchor the scheduler's
// initial seeding relies on.
func TestReadyOrderSeedsRootsInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		s := randomSCCs(rng)
		in := s.InDegrees()
		var roots []int
		for _, c := range s.Order {
			if in[c] == 0 {
				roots = append(roots, c)
			}
		}
		it := s.ReadyOrder()
		for i, want := range roots {
			c, ok := it.Next()
			if !ok {
				t.Fatalf("iterator stalled after %d of %d roots", i, len(roots))
			}
			if c != want {
				t.Fatalf("root %d yielded as %d, want %d", i, c, want)
			}
		}
	}
}
