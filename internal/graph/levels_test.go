package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Every condensation edge must go to a strictly higher level, and the level
// of a component must be exactly one more than its deepest predecessor
// (longest-path layering, not just any topological layering).
func TestLevelsProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := NewSlice(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		s := StronglyConnected(g)
		levels := s.Levels()
		pred := Reverse(s.DAG)
		for c := 0; c < s.NumComps(); c++ {
			if len(pred[c]) == 0 {
				if levels[c] != 0 {
					t.Logf("root component %d has level %d", c, levels[c])
					return false
				}
				continue
			}
			deepest := -1
			for _, p := range pred[c] {
				if levels[p] >= levels[c] {
					t.Logf("edge %d->%d does not increase the level (%d -> %d)",
						p, c, levels[p], levels[c])
					return false
				}
				if levels[p] > deepest {
					deepest = levels[p]
				}
			}
			if levels[c] != deepest+1 {
				t.Logf("component %d at level %d, deepest predecessor %d",
					c, levels[c], deepest)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLevelGroupsPartitionInTopoOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(20)
		g := NewSlice(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		s := StronglyConnected(g)
		levels := s.Levels()
		groups := s.LevelGroups()
		seen := make([]bool, s.NumComps())
		total := 0
		for l, group := range groups {
			for _, c := range group {
				if levels[c] != l {
					t.Fatalf("component %d in group %d but has level %d", c, l, levels[c])
				}
				if seen[c] {
					t.Fatalf("component %d appears twice", c)
				}
				seen[c] = true
				total++
			}
		}
		if total != s.NumComps() {
			t.Fatalf("groups cover %d of %d components", total, s.NumComps())
		}
		// Concatenating groups front to back must be a topological order of
		// the condensation: no edge may point into an earlier position.
		pos := make([]int, s.NumComps())
		i := 0
		for _, group := range groups {
			for _, c := range group {
				pos[c] = i
				i++
			}
		}
		for c := 0; c < s.NumComps(); c++ {
			for _, d := range s.DAG[c] {
				if pos[d] <= pos[c] {
					t.Fatalf("edge %d->%d violates the group order", c, d)
				}
			}
		}
	}
}
