package graph

// Levels returns the longest-path layering of the condensation DAG: a
// component with no predecessors has level 0, and otherwise its level is one
// more than the maximum level among its predecessors. Every condensation
// edge therefore goes from a strictly lower to a strictly higher level, so
// components sharing a level have no data dependencies between them — the
// property the parallel label scheduler relies on to run whole components
// concurrently within a level.
func (s *SCCs) Levels() []int {
	levels := make([]int, s.NumComps())
	for _, c := range s.Order { // topological, so predecessors are final
		for _, d := range s.DAG[c] {
			if levels[c]+1 > levels[d] {
				levels[d] = levels[c] + 1
			}
		}
	}
	return levels
}

// LevelGroups buckets component ids by their Levels value. Groups are
// returned shallowest first, and components inside a group keep their
// relative order from s.Order, so iterating groups front to back visits the
// condensation in a topological order.
func (s *SCCs) LevelGroups() [][]int {
	levels := s.Levels()
	maxLevel := -1
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	groups := make([][]int, maxLevel+1)
	for _, c := range s.Order {
		l := levels[c]
		groups[l] = append(groups[l], c)
	}
	return groups
}
