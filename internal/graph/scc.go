package graph

import "sort"

// SCCs holds the strongly connected components of a graph together with the
// condensation (the DAG of components).
type SCCs struct {
	// Comp maps each node to its component id. Component ids are assigned
	// in reverse topological order by Tarjan's algorithm; use Order for a
	// topological order of components.
	Comp []int
	// Members lists the nodes of each component.
	Members [][]int
	// Order lists component ids in topological order of the condensation:
	// if the original graph has an edge u->v with Comp[u] != Comp[v], then
	// Comp[u] appears before Comp[v].
	Order []int
	// DAG is the condensation: DAG[c] lists the distinct successor
	// components of component c.
	DAG Slice
}

// NumComps returns the number of strongly connected components.
func (s *SCCs) NumComps() int { return len(s.Members) }

// IsTrivial reports whether component c is a single node with no self-loop.
func (s *SCCs) IsTrivial(g Adjacency, c int) bool {
	if len(s.Members[c]) != 1 {
		return false
	}
	u := s.Members[c][0]
	self := false
	g.Succ(u, func(v int) {
		if v == u {
			self = true
		}
	})
	return !self
}

// StronglyConnected computes the strongly connected components of g using an
// iterative Tarjan's algorithm (no recursion, so 10^5-node netlists are safe)
// and builds the condensation DAG with a topological component order.
func StronglyConnected(g Adjacency) *SCCs {
	n := g.NumNodes()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var (
		counter  int
		stack    []int // Tarjan stack of nodes
		members  [][]int
		callNode []int // DFS call stack: node
		callIdx  []int // DFS call stack: next successor index
	)
	// Successor lists in CSR form, materialized up front in two passes
	// (degree count, then fill). Tarjan visits every node, so nothing here is
	// wasted; the per-node lazily allocated slices this replaces cost one
	// heap allocation per node and dominated condensation build time on
	// 100k-node netlists. The same flat arrays then feed the condensation
	// edge collection below, saving a third adjacency walk.
	succOff := make([]int32, n+1)
	for u := 0; u < n; u++ {
		d := 0
		g.Succ(u, func(int) { d++ })
		succOff[u+1] = succOff[u] + int32(d)
	}
	succFlat := make([]int32, succOff[n])
	cur := make([]int32, n)
	copy(cur, succOff[:n])
	for u := 0; u < n; u++ {
		g.Succ(u, func(v int) {
			succFlat[cur[u]] = int32(v)
			cur[u]++
		})
	}
	succ := func(u int) []int32 {
		return succFlat[succOff[u]:succOff[u+1]]
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callNode = append(callNode[:0], root)
		callIdx = append(callIdx[:0], 0)
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(callNode) > 0 {
			u := callNode[len(callNode)-1]
			i := callIdx[len(callIdx)-1]
			ss := succ(u)
			if i < len(ss) {
				callIdx[len(callIdx)-1]++
				v := int(ss[i])
				if index[v] == unvisited {
					index[v] = counter
					low[v] = counter
					counter++
					stack = append(stack, v)
					onStack[v] = true
					callNode = append(callNode, v)
					callIdx = append(callIdx, 0)
				} else if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
				continue
			}
			// Post-order for u.
			callNode = callNode[:len(callNode)-1]
			callIdx = callIdx[:len(callIdx)-1]
			if len(callNode) > 0 {
				p := callNode[len(callNode)-1]
				if low[u] < low[p] {
					low[p] = low[u]
				}
			}
			if low[u] == index[u] {
				var mem []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(members)
					mem = append(mem, w)
					if w == u {
						break
					}
				}
				members = append(members, mem)
			}
		}
	}
	s := &SCCs{Comp: comp, Members: members}
	// Tarjan emits components in reverse topological order.
	nc := len(members)
	s.Order = make([]int, nc)
	for i := 0; i < nc; i++ {
		s.Order[i] = nc - 1 - i
	}
	// Condensation with deduplicated edges, by sort-and-compact: collect
	// every cross-component pair, sort, and emit each distinct pair once.
	// This runs on every engine construction (and used to run on every
	// feasibility probe), and on dense netlists the former map-based dedup
	// paid one hash insert per edge; sorting an int-pair slice touches the
	// same data cache-linearly and allocates one slice instead of a table.
	// DAG[c] comes out sorted by successor id — a valid adjacency order like
	// any other; consumers treat DAG edge order as scheduling input only.
	s.DAG = NewSlice(nc)
	edges := make([][2]int, 0, n)
	for u := 0; u < n; u++ {
		cu := comp[u]
		for _, v := range succ(u) {
			if cv := comp[v]; cv != cu {
				edges = append(edges, [2]int{cu, cv})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for i, e := range edges {
		if i > 0 && edges[i-1] == e {
			continue
		}
		s.DAG.AddEdge(e[0], e[1])
	}
	return s
}
