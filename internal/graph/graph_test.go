package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestReverse(t *testing.T) {
	g := NewSlice(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	r := Reverse(g)
	if len(r[3]) != 2 || len(r[0]) != 0 {
		t.Fatalf("reverse wrong: %v", r)
	}
	sort.Ints(r[3])
	if r[3][0] != 1 || r[3][1] != 2 {
		t.Fatalf("reverse of node 3: %v", r[3])
	}
}

func TestReachable(t *testing.T) {
	g := NewSlice(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	got := Reachable(g, []int{0})
	want := []bool{true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Reachable[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if r := Reachable(g, nil); anyTrue(r) {
		t.Errorf("no sources should reach nothing: %v", r)
	}
	// Out-of-range sources are ignored rather than panicking.
	if r := Reachable(g, []int{-1, 99, 5}); !r[5] || r[0] {
		t.Errorf("source filtering wrong: %v", r)
	}
}

func anyTrue(b []bool) bool {
	for _, v := range b {
		if v {
			return true
		}
	}
	return false
}

func TestTopoOrderAcyclic(t *testing.T) {
	g := NewSlice(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	order, ok := TopoOrder(g)
	if !ok || len(order) != 5 {
		t.Fatalf("expected full acyclic order, got %v ok=%v", order, ok)
	}
	pos := make([]int, 5)
	for i, u := range order {
		pos[u] = i
	}
	for u := 0; u < 5; u++ {
		g.Succ(u, func(v int) {
			if pos[u] >= pos[v] {
				t.Errorf("topo violated: %d before %d", v, u)
			}
		})
	}
}

func TestTopoOrderCyclic(t *testing.T) {
	g := NewSlice(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	order, ok := TopoOrder(g)
	if ok {
		t.Fatal("cycle not detected")
	}
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("peelable prefix should be [0], got %v", order)
	}
}

func TestSCCSimple(t *testing.T) {
	// 0 -> 1 <-> 2 -> 3, 3 -> 3 (self loop)
	g := NewSlice(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 3)
	s := StronglyConnected(g)
	if s.NumComps() != 3 {
		t.Fatalf("want 3 comps, got %d: %v", s.NumComps(), s.Members)
	}
	if s.Comp[1] != s.Comp[2] {
		t.Error("1 and 2 must share a component")
	}
	if s.Comp[0] == s.Comp[1] || s.Comp[3] == s.Comp[1] {
		t.Error("0 and 3 must be separate components")
	}
	if !s.IsTrivial(g, s.Comp[0]) {
		t.Error("component of 0 is trivial")
	}
	if s.IsTrivial(g, s.Comp[3]) {
		t.Error("self loop at 3 makes its component nontrivial")
	}
	if s.IsTrivial(g, s.Comp[1]) {
		t.Error("2-cycle component is nontrivial")
	}
}

func TestSCCTopologicalOrder(t *testing.T) {
	g := NewSlice(7)
	// two cycles: {0,1}, {3,4,5}; chain 1->2->3, 5->6
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	g.AddEdge(5, 6)
	s := StronglyConnected(g)
	if s.NumComps() != 4 {
		t.Fatalf("want 4 comps, got %d", s.NumComps())
	}
	pos := make([]int, s.NumComps())
	for i, c := range s.Order {
		pos[c] = i
	}
	for u := 0; u < 7; u++ {
		g.Succ(u, func(v int) {
			if s.Comp[u] != s.Comp[v] && pos[s.Comp[u]] >= pos[s.Comp[v]] {
				t.Errorf("condensation order violated on edge %d->%d", u, v)
			}
		})
	}
	// DAG edges are deduplicated.
	for c, succs := range s.DAG {
		seen := map[int]bool{}
		for _, d := range succs {
			if seen[d] {
				t.Errorf("duplicate condensation edge %d->%d", c, d)
			}
			seen[d] = true
		}
	}
}

func TestSCCLongChainNoRecursionLimit(t *testing.T) {
	// A 200k-node path would blow a recursive Tarjan's stack.
	n := 200000
	g := NewSlice(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	s := StronglyConnected(g)
	if s.NumComps() != n {
		t.Fatalf("want %d comps, got %d", n, s.NumComps())
	}
}

// referenceSCC is a brute-force component computation for cross-checking:
// u and v are in one SCC iff they reach each other.
func referenceSCC(g Slice) []int {
	n := g.NumNodes()
	reach := make([][]bool, n)
	for u := 0; u < n; u++ {
		reach[u] = Reachable(g, []int{u})
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for u := 0; u < n; u++ {
		if comp[u] != -1 {
			continue
		}
		comp[u] = next
		for v := u + 1; v < n; v++ {
			if comp[v] == -1 && reach[u][v] && reach[v][u] {
				comp[v] = next
			}
		}
		next++
	}
	return comp
}

func TestSCCQuickAgainstReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		g := NewSlice(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		want := referenceSCC(g)
		got := StronglyConnected(g).Comp
		// Compare as partitions: same-component relations must match.
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if (want[u] == want[v]) != (got[u] == got[v]) {
					t.Logf("partition mismatch on %d,%d: graph %v", u, v, g)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
