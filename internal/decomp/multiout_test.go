package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"turbosyn/internal/logic"
)

func TestMultiRothKarpSharesEncoder(t *testing.T) {
	// f1 = AND(x0..x5), f2 = OR over the same bound half: both depend on
	// {x0,x1,x2} only through coarse summaries; joint multiplicity stays
	// small and the encoder is shared.
	f1 := logic.AndAll(6)
	f2 := logic.NewTT(6).Or(logic.OrAll(6), logic.Var(6, 5))
	res, ok := MultiRothKarp([]*logic.TT{f1, f2}, []int{0, 1, 2}, 0)
	if !ok {
		t.Fatal("decomposition failed")
	}
	if !res.Verify([]*logic.TT{f1, f2}) {
		t.Fatal("recomposition mismatch")
	}
	// Joint multiplicity of (AND, OR) over 3 bound vars: tuples
	// (0,0),(0,1),(1,1) -> 3 classes -> 2 code bits.
	if mu := JointColumnMultiplicity([]*logic.TT{f1, f2}, []int{0, 1, 2}); mu != 3 {
		t.Fatalf("joint multiplicity = %d, want 3", mu)
	}
	if len(res.Alphas) != 2 {
		t.Fatalf("alphas = %d, want 2", len(res.Alphas))
	}
}

func TestMultiRothKarpRandomQuick(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvar := 4 + rng.Intn(4)
		r := 1 + rng.Intn(3)
		fns := make([]*logic.TT, r)
		for i := range fns {
			f := logic.NewTT(nvar)
			for b := 0; b < f.NumBits(); b++ {
				if rng.Intn(2) == 1 {
					f.SetBit(b, true)
				}
			}
			fns[i] = f
		}
		k := 1 + rng.Intn(nvar-1)
		bound := rng.Perm(nvar)[:k]
		res, ok := MultiRothKarp(fns, bound, 0)
		if !ok {
			return false // unlimited code bits cannot fail
		}
		if !res.Verify(fns) {
			return false
		}
		// Single-function case must agree with the single-output engine.
		if r == 1 {
			mu1 := ColumnMultiplicity(fns[0], bound)
			muJ := JointColumnMultiplicity(fns, bound)
			if mu1 != muJ {
				return false
			}
		}
		// Joint multiplicity dominates every individual one.
		muJ := JointColumnMultiplicity(fns, bound)
		for _, f := range fns {
			if ColumnMultiplicity(f, bound) > muJ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiRothKarpCodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fns := make([]*logic.TT, 3)
	for i := range fns {
		f := logic.NewTT(8)
		for b := 0; b < f.NumBits(); b++ {
			if rng.Intn(2) == 1 {
				f.SetBit(b, true)
			}
		}
		fns[i] = f
	}
	if _, ok := MultiRothKarp(fns, []int{0, 1, 2, 3}, 1); ok {
		t.Fatal("three random functions cannot share a 1-bit code")
	}
}

func TestMultiRothKarpSharingBeatsSeparate(t *testing.T) {
	// Two symmetric functions of the same bound variables: shared encoding
	// needs no more code bits than the two separate encodings combined.
	f1 := logic.XorAll(6)
	f2 := logic.AndAll(6)
	bound := []int{0, 1, 2}
	res, ok := MultiRothKarp([]*logic.TT{f1, f2}, bound, 0)
	if !ok {
		t.Fatal("failed")
	}
	r1, _ := RothKarp(f1, bound, 0)
	r2, _ := RothKarp(f2, bound, 0)
	if len(res.Alphas) > len(r1.Alphas)+len(r2.Alphas) {
		t.Fatalf("sharing used %d alphas, separate %d+%d",
			len(res.Alphas), len(r1.Alphas), len(r2.Alphas))
	}
}
