// Package decomp implements the two decomposition engines of the flow:
//
//   - Roth–Karp (bound-set) functional decomposition on truth tables, with
//     BDD-backed column-multiplicity counting — the paper's "OBDD based
//     functional decomposition" used by FlowSYN and by TurboSYN's sequential
//     resynthesis step; and
//   - structural gate decomposition (K-bounding) that turns wide gates into
//     trees of K-input gates, the preprocessing the paper delegates to
//     balanced tree decomposition / DMIG.
package decomp

import (
	"fmt"
	"sort"

	"turbosyn/internal/bdd"
	"turbosyn/internal/logic"
)

// RothKarp decomposes f as g(alpha_1(A), ..., alpha_e(A), B) for the given
// bound set A (indices into f's variables); B is the complement. e is the
// code width ceil(log2 mu) for column multiplicity mu. maxCodeBits limits e
// (0 = unlimited). ok=false when mu needs more bits than allowed.
type RothKarpResult struct {
	BoundSet []int // f-variable indices encoded by the alphas
	FreeSet  []int // f-variable indices passed through to g
	// Alphas are functions over len(BoundSet) variables (variable j =
	// BoundSet[j]).
	Alphas []*logic.TT
	// G ranges over len(Alphas)+len(FreeSet) variables: the alpha outputs
	// first, then the free variables in FreeSet order.
	G *logic.TT
}

// ColumnMultiplicity returns the number of distinct subfunctions of f over
// the free variables as the bound-set variables range over all assignments.
// It uses the BDD cut construction: reorder f so the bound set sits on top,
// then count the distinct functions crossing the boundary.
func ColumnMultiplicity(f *logic.TT, boundSet []int) int {
	n := f.NumVars()
	order := varOrder(n, boundSet)
	m := bdd.New(n)
	root := m.FromTT(f.Expand(n, order))
	return len(m.CutRefs(root, len(boundSet)))
}

// BoundedColumnMultiplicity is ColumnMultiplicity under a BDD node ceiling:
// ok=false when the BDD construction (worst-case exponential) exceeded
// maxNodes and the count is unusable. maxNodes <= 0 means unlimited.
func BoundedColumnMultiplicity(f *logic.TT, boundSet []int, maxNodes int) (int, bool) {
	n := f.NumVars()
	order := varOrder(n, boundSet)
	m := bdd.NewBounded(n, maxNodes)
	root := m.FromTT(f.Expand(n, order))
	if m.Overflowed() {
		return 0, false
	}
	return len(m.CutRefs(root, len(boundSet))), true
}

// codeBits returns the Roth-Karp code width for column multiplicity mu:
// ceil(log2 mu), floored at one wire. Must stay in lockstep with the e
// computation inside RothKarp — the BDD pre-screen of DecomposeEffort relies
// on "codeBits(mu) > maxCodeBits" being exactly RothKarp's failure
// condition.
func codeBits(mu int) int {
	e := 0
	for 1<<uint(e) < mu {
		e++
	}
	if e == 0 {
		e = 1
	}
	return e
}

// varOrder returns varMap for TT.Expand placing boundSet at positions
// 0..k-1 and the remaining variables afterwards in increasing order.
// varMap[j] = new position of old variable j.
func varOrder(n int, boundSet []int) []int {
	inBound := make([]int, n)
	for i := range inBound {
		inBound[i] = -1
	}
	for pos, v := range boundSet {
		inBound[v] = pos
	}
	varMap := make([]int, n)
	next := len(boundSet)
	for v := 0; v < n; v++ {
		if inBound[v] >= 0 {
			varMap[v] = inBound[v]
		} else {
			varMap[v] = next
			next++
		}
	}
	return varMap
}

// RothKarp performs the decomposition for a specific bound set.
func RothKarp(f *logic.TT, boundSet []int, maxCodeBits int) (*RothKarpResult, bool) {
	n := f.NumVars()
	k := len(boundSet)
	if k == 0 || k >= n {
		return nil, false
	}
	seen := make(map[int]bool, k)
	for _, v := range boundSet {
		if v < 0 || v >= n || seen[v] {
			panic(fmt.Sprintf("decomp: bad bound set %v for %d vars", boundSet, n))
		}
		seen[v] = true
	}
	var freeSet []int
	for v := 0; v < n; v++ {
		if !seen[v] {
			freeSet = append(freeSet, v)
		}
	}
	nb := len(freeSet)

	// Column patterns: for each bound assignment a, the subfunction over
	// the free variables as a bit pattern.
	classOf := make([]int, 1<<uint(k))
	patterns := make(map[string]int)
	var reps []string
	var buf []byte
	for a := 0; a < 1<<uint(k); a++ {
		buf = buf[:0]
		// Build the full-variable assignment incrementally.
		var base uint
		for j, v := range boundSet {
			if a&(1<<uint(j)) != 0 {
				base |= 1 << uint(v)
			}
		}
		var word byte
		for b := 0; b < 1<<uint(nb); b++ {
			x := base
			for j, v := range freeSet {
				if b&(1<<uint(j)) != 0 {
					x |= 1 << uint(v)
				}
			}
			if f.Eval(x) {
				word |= 1 << uint(b&7)
			}
			if b&7 == 7 || b == 1<<uint(nb)-1 {
				buf = append(buf, word)
				word = 0
			}
		}
		key := string(buf)
		id, ok := patterns[key]
		if !ok {
			id = len(reps)
			patterns[key] = id
			reps = append(reps, key)
		}
		classOf[a] = id
	}
	mu := len(reps)
	e := 0
	for 1<<uint(e) < mu {
		e++
	}
	if e == 0 {
		e = 1 // degenerate f independent of the bound set still needs a wire
	}
	if maxCodeBits > 0 && e > maxCodeBits {
		return nil, false
	}

	res := &RothKarpResult{BoundSet: boundSet, FreeSet: freeSet}
	for i := 0; i < e; i++ {
		alpha := logic.NewTT(k)
		for a := 0; a < 1<<uint(k); a++ {
			if classOf[a]&(1<<uint(i)) != 0 {
				alpha.SetBit(a, true)
			}
		}
		res.Alphas = append(res.Alphas, alpha)
	}
	g := logic.NewTT(e + nb)
	for idx := 0; idx < g.NumBits(); idx++ {
		code := idx & (1<<uint(e) - 1)
		b := idx >> uint(e)
		if code >= mu {
			continue // unused code: don't-care, fixed to 0
		}
		rep := reps[code]
		if rep[b>>3]&(1<<uint(b&7)) != 0 {
			g.SetBit(idx, true)
		}
	}
	res.G = g
	return res, true
}

// Verify recomposes the decomposition and compares with f exhaustively.
func (r *RothKarpResult) Verify(f *logic.TT) bool {
	n := f.NumVars()
	subs := make([]*logic.TT, len(r.Alphas)+len(r.FreeSet))
	for i, a := range r.Alphas {
		subs[i] = a.Expand(n, r.BoundSet)
	}
	for i, v := range r.FreeSet {
		subs[len(r.Alphas)+i] = logic.Var(n, v)
	}
	return r.G.Compose(subs).Equal(f)
}

// Tree is a multi-level decomposition of a function into nodes of bounded
// fanin. Leaves are the original inputs 0..NumInputs-1; internal nodes are
// numbered NumInputs+i for Nodes[i]. Root is always the last node.
type Tree struct {
	NumInputs int
	Nodes     []TreeNode
}

// TreeNode computes Func over its children (child j = variable j of Func).
type TreeNode struct {
	Func     *logic.TT
	Children []int
}

// Root returns the root node reference (NumInputs + len(Nodes) - 1).
func (t *Tree) Root() int { return t.NumInputs + len(t.Nodes) - 1 }

// Depth returns the maximum node depth of the tree (a single node is 1).
func (t *Tree) Depth() int {
	depth := make([]int, t.NumInputs+len(t.Nodes))
	for i, nd := range t.Nodes {
		d := 0
		for _, c := range nd.Children {
			if depth[c] > d {
				d = depth[c]
			}
		}
		depth[t.NumInputs+i] = d + 1
	}
	return depth[t.Root()]
}

// Eval computes the tree's function over its NumInputs leaves.
func (t *Tree) Eval(assignment uint) bool {
	vals := make([]bool, t.NumInputs+len(t.Nodes))
	for i := 0; i < t.NumInputs; i++ {
		vals[i] = assignment&(1<<uint(i)) != 0
	}
	for i, nd := range t.Nodes {
		var a uint
		for j, c := range nd.Children {
			if vals[c] {
				a |= 1 << uint(j)
			}
		}
		vals[t.NumInputs+i] = nd.Func.Eval(a)
	}
	return vals[t.Root()]
}

// TT materializes the tree's function.
func (t *Tree) TT() *logic.TT {
	out := logic.NewTT(t.NumInputs)
	for i := 0; i < out.NumBits(); i++ {
		if t.Eval(uint(i)) {
			out.SetBit(i, true)
		}
	}
	return out
}

// MaxFanin returns the largest node fanin.
func (t *Tree) MaxFanin() int {
	m := 0
	for _, nd := range t.Nodes {
		if len(nd.Children) > m {
			m = len(nd.Children)
		}
	}
	return m
}

// Effort bounds the work one Decompose call may spend. The zero value means
// unlimited effort: the exact search the paper describes, byte-identical to
// DecomposeEffort-free callers. Positive bounds trade completeness for
// predictable worst-case cost; a search truncated by a bound reports
// degraded=true so callers can count the quality loss (see
// core.Stats.Degradations).
type Effort struct {
	// BDDNodes, when positive, pre-screens every candidate bound set with a
	// node-bounded OBDD column-multiplicity count (the Lai/Pan/Pedram cut
	// construction): candidates whose BDD exceeds the ceiling are skipped
	// as degraded instead of running the exponential extraction. Candidates
	// within the ceiling behave exactly as without the bound — the BDD
	// pre-screen decides the same predicate RothKarp itself would.
	BDDNodes int
	// MaxBoundSets, when positive, caps the total bound-set candidates
	// examined across the whole Decompose call; the search stops (degraded)
	// when the allowance runs out.
	MaxBoundSets int
	// Stats, when non-nil, accumulates the work the call actually performed
	// (observability only — it never influences the search, so it is not
	// part of decomposition-cache keys).
	Stats *EffortStats
}

// EffortStats counts the work of one or more Decompose calls when collected
// via Effort.Stats.
type EffortStats struct {
	// BoundSetsExamined is how many candidate bound sets the window scan
	// actually examined (cache hits replay none).
	BoundSetsExamined int
	// RothKarpCalls is how many full Roth-Karp extractions ran (candidates
	// the BDD pre-screen settled without extracting are not counted). The
	// warm-cache gate pins its skip rate on this counter.
	RothKarpCalls int
	// ShannonSplits counts trees built by the Shannon-cofactor fast tier.
	ShannonSplits int
	// DisjointPeels counts root nodes built by the disjoint literal-peel
	// fast tier.
	DisjointPeels int
}

// effortState tracks consumption of one Decompose call's Effort.
type effortState struct {
	eff      Effort
	examined int
	rothkarp int
	shannon  int
	disjoint int
	degraded bool
}

// allow reports whether one more bound-set candidate may be examined,
// marking the search degraded when the allowance just ran out.
func (es *effortState) allow() bool {
	if es.eff.MaxBoundSets > 0 && es.examined >= es.eff.MaxBoundSets {
		es.degraded = true
		return false
	}
	es.examined++
	return true
}

// screen applies the BDD column-multiplicity pre-screen to a candidate
// bound set of f that must encode into at most maxCodeBits wires. It
// returns proceed=false when the candidate is settled without running the
// extraction: either provably infeasible (same predicate RothKarp checks)
// or over the BDD budget (marked degraded).
func (es *effortState) screen(f *logic.TT, bound []int, maxCodeBits int) (proceed bool) {
	if es.eff.BDDNodes <= 0 {
		return true
	}
	mu, ok := BoundedColumnMultiplicity(f, bound, es.eff.BDDNodes)
	if !ok {
		es.degraded = true
		return false
	}
	return codeBits(mu) <= maxCodeBits
}

// Decompose expresses f as a tree of at-most-K-input nodes of depth at most
// depthBudget, searching bound sets in the priority order of the inputs:
// inputs earlier in priority are preferred inside bound sets (the paper
// sorts by effective label, so early-arriving signals sink to the leaves
// and late ones stay near the root). priority may be nil for natural order.
// ok=false when the search fails within the budget.
func Decompose(f *logic.TT, k, depthBudget int, priority []int) (*Tree, bool) {
	tr, ok, _ := DecomposeEffort(f, k, depthBudget, priority, Effort{})
	return tr, ok
}

// DecomposeEffort is Decompose under a work budget. degraded reports that
// the budget truncated the search: candidate bound sets were skipped, so a
// failure (or a worse tree) may be a budget artifact rather than a real
// infeasibility. With a zero Effort the search — and its outcome — is
// identical to Decompose.
func DecomposeEffort(f *logic.TT, k, depthBudget int, priority []int, eff Effort) (*Tree, bool, bool) {
	if k < 2 {
		return nil, false, false
	}
	n := f.NumVars()
	tr := &Tree{NumInputs: n}
	// rank: lower = prefer inside bound sets (earlier-arriving signal).
	rank := make(map[int]int, n)
	if priority != nil {
		for i, v := range priority {
			rank[v] = i
		}
	} else {
		for v := 0; v < n; v++ {
			rank[v] = v
		}
	}
	refs := make([]int, n)
	for i := range refs {
		refs[i] = i
	}
	es := &effortState{eff: eff}
	if eff.Stats != nil {
		defer func() {
			eff.Stats.BoundSetsExamined += es.examined
			eff.Stats.RothKarpCalls += es.rothkarp
			eff.Stats.ShannonSplits += es.shannon
			eff.Stats.DisjointPeels += es.disjoint
		}()
	}
	root, ok := decomposeOver(f, refs, k, depthBudget, rank, tr, es)
	if !ok {
		return nil, false, es.degraded
	}
	if root != tr.Root() {
		panic("decomp: root bookkeeping broken")
	}
	return tr, true, es.degraded
}

// decomposeOver decomposes f, whose variable j corresponds to tree reference
// refs[j], appending nodes to tr and returning the root reference. rank maps
// tree references to bound-set priority (internal alpha nodes get the rank
// of their latest input, keeping the cascade balanced).
//
// One invocation handles one tree level: it repeatedly extracts disjoint
// bound sets into alpha nodes — never re-encoding an alpha created at this
// level, so all of them sit side by side one level deep — and then recurses
// on the shrunken composition function with one level less budget.
func decomposeOver(f *logic.TT, refs []int, k, depthBudget int, rank map[int]int, tr *Tree, es *effortState) (int, bool) {
	// Normalize to the support.
	support := f.Support()
	if len(support) < f.NumVars() {
		f = projectTT(f, support)
		refs = mapRefs(support, refs)
	}
	if f.NumVars() <= k {
		if depthBudget < 1 {
			return 0, false
		}
		tr.Nodes = append(tr.Nodes, TreeNode{Func: f.Clone(), Children: append([]int(nil), refs...)})
		return tr.NumInputs + len(tr.Nodes) - 1, true
	}
	if depthBudget < 2 {
		return 0, false
	}
	// Fast path for the associative shapes that dominate real cone
	// functions (wide AND/OR from control SOPs, parity from arithmetic):
	// build a balanced k-ary tree directly instead of searching bound sets.
	if root, ok := associativeTree(f, refs, k, depthBudget, tr); ok {
		return root, true
	}
	// Cheap tiers before the exponential bound-set search: disjoint literal
	// peeling, then a single-variable Shannon split (see tiers.go).
	if root, ok := disjointPeelTree(f, refs, k, depthBudget, rank, tr, es); ok {
		return root, true
	}
	if root, ok := shannonTree(f, refs, k, depthBudget, rank, tr, es); ok {
		return root, true
	}
	mark := len(tr.Nodes)
	fresh := make([]bool, f.NumVars()) // alphas created at this level
	progressed := false
	for f.NumVars() > k {
		m := f.NumVars()
		// Encodable variables, ordered by priority.
		var ordered []int
		for v := 0; v < m; v++ {
			if !fresh[v] {
				ordered = append(ordered, v)
			}
		}
		sort.SliceStable(ordered, func(a, b int) bool {
			return rank[refs[ordered[a]]] < rank[refs[ordered[b]]]
		})
		found := false
		// Window starts are capped: the priority sort already puts the
		// best bound-set candidates first, and an exhaustive slide makes
		// the search quadratic on undecomposable functions.
		const maxStarts = 6
	search:
		for size := min(k, len(ordered)); size >= 2; size-- {
			for start := 0; start+size <= len(ordered) && start < maxStarts; start++ {
				if !es.allow() {
					break search // candidate allowance spent; search degraded
				}
				bound := append([]int(nil), ordered[start:start+size]...)
				// The code must be narrower than the bound set, so every
				// extraction strictly reduces the input count.
				if !es.screen(f, bound, size-1) {
					continue
				}
				es.rothkarp++
				rk, ok := RothKarp(f, bound, size-1)
				if !ok {
					continue
				}
				// Alphas become depth-1 nodes; they inherit the rank of
				// their latest bound input.
				alphaRank := 0
				for _, v := range bound {
					if r := rank[refs[v]]; r > alphaRank {
						alphaRank = r
					}
				}
				boundRefs := mapRefs(bound, refs)
				newRefs := make([]int, 0, len(rk.Alphas)+len(rk.FreeSet))
				newFresh := make([]bool, 0, len(rk.Alphas)+len(rk.FreeSet))
				for _, a := range rk.Alphas {
					sup := a.Support()
					tr.Nodes = append(tr.Nodes, TreeNode{
						Func:     projectTT(a, sup),
						Children: mapRefs(sup, boundRefs),
					})
					ref := tr.NumInputs + len(tr.Nodes) - 1
					rank[ref] = alphaRank
					newRefs = append(newRefs, ref)
					newFresh = append(newFresh, true)
				}
				for _, v := range rk.FreeSet {
					newRefs = append(newRefs, refs[v])
					newFresh = append(newFresh, fresh[v])
				}
				f, refs, fresh = rk.G, newRefs, newFresh
				progressed, found = true, true
				break search
			}
		}
		if !found {
			break
		}
	}
	if !progressed {
		return 0, false
	}
	// Next level: everything (alphas included) is an ordinary input now.
	root, ok := decomposeOver(f, refs, k, depthBudget-1, rank, tr, es)
	if !ok {
		tr.Nodes = tr.Nodes[:mark]
		return 0, false
	}
	return root, true
}

// projectTT shrinks f to the given variables (f must not depend on others).
func projectTT(f *logic.TT, vars []int) *logic.TT {
	shrunk := logic.NewTT(len(vars))
	for i := 0; i < shrunk.NumBits(); i++ {
		var x uint
		for j, v := range vars {
			if i&(1<<uint(j)) != 0 {
				x |= 1 << uint(v)
			}
		}
		if f.Eval(x) {
			shrunk.SetBit(i, true)
		}
	}
	return shrunk
}

func mapRefs(vars []int, refs []int) []int {
	out := make([]int, len(vars))
	for i, v := range vars {
		out[i] = refs[v]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
