package decomp

import (
	"math/rand"
	"testing"

	"turbosyn/internal/logic"
)

// checkTree validates a Decompose result against the function, fanin and
// depth contracts.
func checkTree(t *testing.T, f *logic.TT, tree *Tree, k, depthBudget int) {
	t.Helper()
	if tree.MaxFanin() > k {
		t.Fatalf("fanin %d > k=%d", tree.MaxFanin(), k)
	}
	if d := tree.Depth(); d > depthBudget {
		t.Fatalf("depth %d > budget %d", d, depthBudget)
	}
	if !tree.TT().Equal(f) {
		t.Fatal("tree does not compute f")
	}
}

// TestDisjointPeelTier: a literal AND-factored function peels without any
// Roth-Karp extraction.
func TestDisjointPeelTier(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// f = x5 AND NOT x6 AND core(x0..x4): the 5-var core is random, so the
	// associative fast path cannot take it, but both literals peel.
	core := randomTT(rng, 7)
	for i := 0; i < core.NumBits(); i++ {
		core.SetBit(i, core.Bit(i&0x1F))
	}
	f := logic.NewTT(7).And(core, logic.Var(7, 5))
	f.And(f, logic.NewTT(7).Not(logic.Var(7, 6)))
	var st EffortStats
	tree, ok, degraded := DecomposeEffort(f, 5, 3, nil, Effort{Stats: &st})
	if !ok || degraded {
		t.Fatalf("ok=%v degraded=%v", ok, degraded)
	}
	checkTree(t, f, tree, 5, 3)
	if st.DisjointPeels == 0 {
		t.Fatalf("disjoint peel tier never fired: %+v", st)
	}
	if st.RothKarpCalls != 0 {
		t.Fatalf("peelable function still ran %d Roth-Karp extractions", st.RothKarpCalls)
	}
}

// TestDisjointPeelXor: an XOR-peeled literal keeps the residual intact.
func TestDisjointPeelXor(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 20; iter++ {
		core := randomTT(rng, 6)
		f := core.Expand(7, []int{0, 1, 2, 3, 4, 5})
		f.Xor(f, logic.Var(7, 6))
		var st EffortStats
		tree, ok, _ := DecomposeEffort(f, 6, 3, nil, Effort{Stats: &st})
		if !ok {
			t.Fatal("xor-peelable function did not decompose")
		}
		checkTree(t, f, tree, 6, 3)
	}
}

// TestShannonTier: a mux of two dense halves splits on the select variable
// without Roth-Karp.
func TestShannonTier(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for iter := 0; iter < 10; iter++ {
		g0 := randomTT(rng, 4).Expand(9, []int{0, 1, 2, 3})
		g1 := randomTT(rng, 4).Expand(9, []int{4, 5, 6, 7})
		s := logic.Var(9, 8)
		ns := logic.NewTT(9).Not(s)
		f := logic.NewTT(9).Or(logic.NewTT(9).And(ns, g0), logic.NewTT(9).And(s, g1))
		if len(f.Support()) != 9 {
			continue // a degenerate random half would dodge the tier
		}
		var st EffortStats
		tree, ok, degraded := DecomposeEffort(f, 4, 2, nil, Effort{Stats: &st})
		if !ok || degraded {
			t.Fatalf("ok=%v degraded=%v", ok, degraded)
		}
		checkTree(t, f, tree, 4, 2)
		if st.ShannonSplits == 0 {
			t.Fatalf("shannon tier never fired: %+v", st)
		}
		if st.RothKarpCalls != 0 {
			t.Fatalf("mux still ran %d Roth-Karp extractions", st.RothKarpCalls)
		}
	}
}

// TestTiersPreserveRandomDecompose: with the fast tiers in the path, random
// functions still decompose to valid trees (and failures stay failures of
// the whole search, not tier artifacts).
func TestTiersPreserveRandomDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for iter := 0; iter < 60; iter++ {
		n := 5 + rng.Intn(4)
		f := randomTT(rng, n)
		k := 3 + rng.Intn(3)
		budget := 2 + rng.Intn(3)
		var st EffortStats
		tree, ok, _ := DecomposeEffort(f, k, budget, nil, Effort{Stats: &st})
		if !ok {
			continue
		}
		checkTree(t, f, tree, k, budget)
	}
}

// TestApplyNPNToTree: mapping a tree through a transform yields the
// transformed function, leaves the source tree untouched, and the identity
// transform is a no-op returning the same tree.
func TestApplyNPNToTree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 60; iter++ {
		n := 4 + rng.Intn(4)
		f := randomTT(rng, n)
		tree, ok := Decompose(f, 4, 4, nil)
		if !ok {
			continue
		}
		before := make([]*logic.TT, len(tree.Nodes))
		for i, nd := range tree.Nodes {
			before[i] = nd.Func.Clone()
		}
		tr := logic.NPNTransform{
			Perm:      rng.Perm(n),
			InputNeg:  uint32(rng.Intn(1 << uint(n))),
			OutputNeg: rng.Intn(2) == 1,
		}
		mapped := ApplyNPNToTree(tree, tr)
		if got, want := mapped.TT(), tr.Apply(f); !got.Equal(want) {
			t.Fatalf("n=%d iter=%d: mapped tree computes the wrong function", n, iter)
		}
		if mapped.Depth() != tree.Depth() || mapped.MaxFanin() != tree.MaxFanin() {
			t.Fatal("transform changed the tree shape")
		}
		for i, nd := range tree.Nodes {
			if !nd.Func.Equal(before[i]) {
				t.Fatal("ApplyNPNToTree mutated the source tree")
			}
		}
		ident := logic.NPNTransform{Perm: identityPerm(n)}
		if ApplyNPNToTree(tree, ident) != tree {
			t.Fatal("identity transform did not return the tree unchanged")
		}
	}
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// TestNPNRoundTripThroughDecompose: decomposing the canonical form and
// mapping back through the inverse transform recovers a tree for f — the
// exact flow the core cache runs.
func TestNPNRoundTripThroughDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 40; iter++ {
		n := 5 + rng.Intn(3)
		f := randomTT(rng, n)
		canon, tr := logic.NPNCanon(f)
		tree, ok := Decompose(canon, 4, 4, nil)
		if !ok {
			continue
		}
		back := ApplyNPNToTree(tree, tr.Inverse())
		if !back.TT().Equal(f) {
			t.Fatalf("n=%d iter=%d: canonical round-trip lost the function", n, iter)
		}
	}
}
