package decomp

import "turbosyn/internal/logic"

// ApplyNPNToTree maps a decomposition tree through an NPN transform: given
// a tree computing g over NumInputs leaves, it returns a tree computing
// tr.Apply(g). Leaf i becomes leaf tr.Perm[i]; an input negation folds into
// the consuming node's function at that child position; an output negation
// folds into the root function. The input tree is never modified — node
// functions are cloned before any rewrite, so trees shared through the
// decomposition cache stay immutable. The identity transform returns t
// itself.
//
// The engine decomposes the NPN-canonical form of every cone function and
// calls this with the inverse transform, so a cached canonical tree and a
// freshly computed one map back to the exact same cone tree — the warm-run
// bit-identity guarantee rests on this being deterministic.
func ApplyNPNToTree(t *Tree, tr logic.NPNTransform) *Tree {
	if len(tr.Perm) != t.NumInputs {
		panic("decomp: NPN transform arity does not match tree inputs")
	}
	if tr.Identity() {
		return t
	}
	nodes := make([]TreeNode, len(t.Nodes))
	for i, nd := range t.Nodes {
		children := make([]int, len(nd.Children))
		fn := nd.Func
		cloned := false
		for j, ch := range nd.Children {
			if ch >= t.NumInputs {
				children[j] = ch // internal references keep their numbering
				continue
			}
			children[j] = tr.Perm[ch]
			if tr.InputNeg>>uint(ch)&1 == 1 {
				if !cloned {
					fn = fn.Clone()
					cloned = true
				}
				fn.FlipVarInPlace(j)
			}
		}
		if i == len(t.Nodes)-1 && tr.OutputNeg {
			if !cloned {
				fn = fn.Clone()
			}
			fn.Not(fn)
		}
		nodes[i] = TreeNode{Func: fn, Children: children}
	}
	return &Tree{NumInputs: t.NumInputs, Nodes: nodes}
}
