package decomp

import (
	"testing"

	"turbosyn/internal/logic"
)

func TestAssociativeFastPathShapes(t *testing.T) {
	cases := []struct {
		name  string
		fn    *logic.TT
		k     int
		depth int
	}{
		{"and12", logic.AndAll(12), 4, 2},
		{"or15", logic.OrAll(15), 4, 2},
		{"xor16", logic.XorAll(16), 4, 2},
		{"nand9", logic.NandAll(9), 3, 2},
		{"nor8", logic.NorAll(8), 3, 2},
		{"xnor8", logic.NewTT(8).Not(logic.XorAll(8)), 4, 2},
	}
	for _, tc := range cases {
		tr, ok := Decompose(tc.fn, tc.k, tc.depth, nil)
		if !ok {
			t.Errorf("%s: decomposition failed", tc.name)
			continue
		}
		if tr.MaxFanin() > tc.k {
			t.Errorf("%s: fanin %d > %d", tc.name, tr.MaxFanin(), tc.k)
		}
		if tr.Depth() > tc.depth {
			t.Errorf("%s: depth %d > %d", tc.name, tr.Depth(), tc.depth)
		}
		if !tr.TT().Equal(tc.fn) {
			t.Errorf("%s: function changed", tc.name)
		}
	}
}

func TestAssociativeRespectsBudget(t *testing.T) {
	// 16-input AND at K=2 needs depth 4; budget 3 must fail cleanly.
	if _, ok := Decompose(logic.AndAll(16), 2, 3, nil); ok {
		t.Fatal("budget violation accepted")
	}
	if tr, ok := Decompose(logic.AndAll(16), 2, 4, nil); !ok || tr.Depth() > 4 {
		t.Fatal("depth-4 tree should exist")
	}
}

func TestAssociativeEmbeddedSupport(t *testing.T) {
	// An AND over a scattered subset of a larger variable space must still
	// hit the fast path after support normalization.
	f := logic.Const(10, true)
	for _, v := range []int{1, 3, 4, 6, 7, 8, 9} {
		f.And(f, logic.Var(10, v))
	}
	tr, ok := Decompose(f, 3, 2, nil)
	if !ok {
		t.Fatal("embedded AND not decomposed")
	}
	if !tr.TT().Equal(f) {
		t.Fatal("function changed")
	}
}
