package cachelog

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"turbosyn/internal/decomp"
	"turbosyn/internal/logic"
)

func randomEntries(rng *rand.Rand, n int) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		key := make([]byte, 1+rng.Intn(40))
		rng.Read(key)
		e := Entry{Key: string(key)}
		if rng.Intn(4) != 0 {
			nv := 4 + rng.Intn(5)
			f := logic.NewTT(nv)
			for b := 0; b < f.NumBits(); b++ {
				if rng.Intn(2) == 1 {
					f.SetBit(b, true)
				}
			}
			if tree, ok := decomp.Decompose(f, 4, 4, nil); ok {
				e.Tree = tree
			}
		}
		entries[i] = e
	}
	return entries
}

func sameEntry(a, b Entry) bool {
	if a.Key != b.Key || (a.Tree == nil) != (b.Tree == nil) {
		return false
	}
	if a.Tree == nil {
		return true
	}
	if a.Tree.NumInputs != b.Tree.NumInputs || len(a.Tree.Nodes) != len(b.Tree.Nodes) {
		return false
	}
	for i := range a.Tree.Nodes {
		x, y := a.Tree.Nodes[i], b.Tree.Nodes[i]
		if !x.Func.Equal(y.Func) || len(x.Children) != len(y.Children) {
			return false
		}
		for j := range x.Children {
			if x.Children[j] != y.Children[j] {
				return false
			}
		}
	}
	return true
}

// TestRoundTrip: entries written across several Append calls load back in
// order, trees and failures alike.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries := randomEntries(rng, 30)
	if err := l.Append(entries[:10]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entries[10:]); err != nil {
		t.Fatal(err)
	}
	got, err := l.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("loaded %d entries, wrote %d", len(got), len(entries))
	}
	for i := range entries {
		if !sameEntry(entries[i], got[i]) {
			t.Fatalf("entry %d does not round-trip", i)
		}
	}
	if v, ok := ReadHeaderVersion(l.Path()); !ok || v != Version {
		t.Fatalf("header version = %d, %v", v, ok)
	}
}

// TestLoadMissing: a missing log is empty, not an error.
func TestLoadMissing(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.Load()
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestEveryPrefixLoads: the crash-tolerance guarantee — for EVERY byte
// prefix of a valid log, Load succeeds and returns a prefix of the original
// entries. This is exactly the state an interrupted flush (cancellation,
// panic, power loss) leaves behind.
func TestEveryPrefixLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := randomEntries(rng, 12)
	if err := l.Append(entries); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(l.Path(), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := l.Load()
		if err != nil {
			t.Fatalf("prefix %d/%d: %v", cut, len(full), err)
		}
		if len(got) > len(entries) {
			t.Fatalf("prefix %d: loaded more entries than written", cut)
		}
		for i := range got {
			if !sameEntry(entries[i], got[i]) {
				t.Fatalf("prefix %d: entry %d corrupted", cut, i)
			}
		}
	}
}

// TestCorruptionStopsAtValidPrefix: flipping a byte inside record i keeps
// entries before i loadable and discards the rest.
func TestCorruptionStopsAtValidPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries := randomEntries(rng, 10)
	if err := l.Append(entries); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		data := append([]byte(nil), full...)
		pos := 8 + rng.Intn(len(data)-8) // spare the header; skew is tested separately
		data[pos] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(l.Path(), data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := l.Load()
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if i < len(entries) && sameEntry(entries[i], got[i]) {
				continue
			}
			// The flipped byte may leave one record decodable-but-different
			// only if both the CRC and the payload were hit; a single bit
			// flip cannot do that.
			t.Fatalf("trial %d: corrupt record %d surfaced as valid", trial, i)
		}
	}
}

// TestVersionSkewDiscardsAndRewrites: an old-version log loads as empty and
// the next flush replaces it with a current-version log.
func TestVersionSkewDiscardsAndRewrites(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	old := randomEntries(rng, 6)
	if err := l.Append(old); err != nil {
		t.Fatal(err)
	}
	// Rewind the header version.
	data, err := os.ReadFile(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[4:8], Version+1)
	if err := os.WriteFile(l.Path(), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := l.Load(); err != nil || len(got) != 0 {
		t.Fatalf("version-skewed log loaded %d entries, err %v", len(got), err)
	}
	fresh := randomEntries(rng, 4)
	if err := l.Append(fresh); err != nil {
		t.Fatal(err)
	}
	got, err := l.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fresh) {
		t.Fatalf("rewritten log has %d entries, want %d", len(got), len(fresh))
	}
	for i := range fresh {
		if !sameEntry(fresh[i], got[i]) {
			t.Fatalf("rewritten entry %d mismatch", i)
		}
	}
	if v, ok := ReadHeaderVersion(l.Path()); !ok || v != Version {
		t.Fatalf("rewritten header version = %d, %v", v, ok)
	}
	// Garbage that is not even a header is discarded the same way.
	if err := os.WriteFile(l.Path(), []byte("not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := l.Load(); err != nil || len(got) != 0 {
		t.Fatalf("garbage log loaded %d entries, err %v", len(got), err)
	}
	if err := l.Append(fresh[:1]); err != nil {
		t.Fatal(err)
	}
	if got, _ := l.Load(); len(got) != 1 || !sameEntry(fresh[0], got[0]) {
		t.Fatal("garbage log was not rewritten cleanly")
	}
}

// TestConcurrentAppend: two appenders on the same log (each flush is one
// O_APPEND write) never corrupt it; all records from both survive.
func TestConcurrentAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dir := t.TempDir()
	a := randomEntries(rng, 8)
	b := randomEntries(rng, 8)
	// Seed the header first so both goroutines take the pure-append path.
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(a[:1]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, batch := range [][]Entry{a[1:], b} {
		wg.Add(1)
		go func(batch []Entry) {
			defer wg.Done()
			lg, err := Open(dir)
			if err != nil {
				t.Error(err)
				return
			}
			if err := lg.Append(batch); err != nil {
				t.Error(err)
			}
		}(batch)
	}
	wg.Wait()
	got, err := l.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(a)+len(b) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(a)+len(b))
	}
	byKey := map[string]Entry{}
	for _, e := range append(append([]Entry(nil), a...), b...) {
		byKey[e.Key] = e
	}
	for i, e := range got {
		want, ok := byKey[e.Key]
		if !ok || !sameEntry(want, e) {
			t.Fatalf("entry %d not among the written records", i)
		}
	}
}

// TestAppendNothing: an empty flush neither creates nor touches the file.
func TestAppendNothing(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "decomp.log")); !os.IsNotExist(err) {
		t.Fatal("empty append created the log file")
	}
}

// TestRejectOversizedRecord: a length field beyond the sanity cap stops the
// loader instead of allocating.
func TestRejectOversizedRecord(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], Version)
	buf.Write(v[:])
	binary.LittleEndian.PutUint32(v[:], maxRecord+1)
	buf.Write(v[:])
	buf.Write([]byte{0, 0, 0, 0})
	if err := os.WriteFile(l.Path(), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := l.Load(); err != nil || len(got) != 0 {
		t.Fatalf("oversized record loaded %d entries, err %v", len(got), err)
	}
}
