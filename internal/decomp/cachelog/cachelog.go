// Package cachelog persists the engine's decomposition cache across runs as
// a compact append-only log. Each entry maps an opaque cache key (the NPN
// class of a cone function plus the search parameters, encoded by
// internal/core) to the decomposition outcome: a tree over the canonical
// function, or a recorded failure.
//
// The format is built for crash tolerance rather than compaction: a header
// carries a magic number and format version, and every record is length-
// framed and CRC-checksummed. The loader accepts any valid prefix and stops
// at the first short, corrupt or undecodable record — so a flush interrupted
// at any byte still leaves a loadable log, and concurrent appenders (each
// record lands in one O_APPEND write) at worst truncate each other's tail.
// Version-mismatched or unrecognizable logs are discarded and rewritten
// rather than repaired; entries are pure functions of their keys, so losing
// or duplicating records only costs recomputation, never correctness.
package cachelog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"turbosyn/internal/decomp"
	"turbosyn/internal/logic"
)

// Version is the log format version. Bump it whenever the record encoding
// or the core cache-key scheme changes; old logs are then discarded on the
// next flush. CI keys its cache restoration on this value.
const Version = 1

var magic = [4]byte{'T', 'S', 'D', 'C'}

// maxRecord caps one record's payload; anything larger is treated as
// corruption. The largest legitimate entry — a multi-node tree of 16-var
// functions — stays far below this.
const maxRecord = 1 << 22

// Entry is one persisted cache entry. A nil Tree records a decomposition
// failure (the search proved, within its budgets, that no tree exists) —
// caching failures is what lets warm runs skip the expensive negative
// searches too.
type Entry struct {
	Key  string
	Tree *decomp.Tree
}

// Log is a handle to one on-disk cache log. Methods open and close the file
// per call, so a Log carries no state besides the path and is safe to share.
type Log struct {
	path string
}

// Open returns the log handle inside dir, creating the directory (not the
// file) as needed.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachelog: %w", err)
	}
	return &Log{path: filepath.Join(dir, "decomp.log")}, nil
}

// Path returns the log file's path.
func (l *Log) Path() string { return l.path }

// Load reads every decodable entry. A missing file yields no entries and no
// error. Corruption — a bad magic, a version mismatch, a truncated or
// checksum-failing record — is not an error either: loading stops at the
// last valid prefix and returns what was recovered (nothing, for a
// version-mismatched log). The error is reserved for real I/O failures.
func (l *Log) Load() ([]Entry, error) {
	data, err := os.ReadFile(l.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cachelog: %w", err)
	}
	if len(data) < 8 || [4]byte(data[:4]) != magic || binary.LittleEndian.Uint32(data[4:8]) != Version {
		return nil, nil
	}
	var entries []Entry
	data = data[8:]
	for len(data) >= 8 {
		n := binary.LittleEndian.Uint32(data[:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if n == 0 || n > maxRecord || uint64(len(data)) < 8+uint64(n) {
			break
		}
		payload := data[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		e, err := decodeEntry(payload)
		if err != nil {
			break
		}
		entries = append(entries, e)
		data = data[8+n:]
	}
	return entries, nil
}

// Append adds entries to the log in one write. A missing file is created
// with a fresh header; an unreadable or version-mismatched file is replaced
// wholesale (written to a temp file, then renamed into place, so a reader
// never observes a half-rewritten log).
func (l *Log) Append(entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	var records []byte
	for _, e := range entries {
		payload := encodeEntry(e)
		records = binary.LittleEndian.AppendUint32(records, uint32(len(payload)))
		records = binary.LittleEndian.AppendUint32(records, crc32.ChecksumIEEE(payload))
		records = append(records, payload...)
	}
	header := append([]byte(nil), magic[:]...)
	header = binary.LittleEndian.AppendUint32(header, Version)

	existing, err := os.ReadFile(l.path)
	switch {
	case errors.Is(err, os.ErrNotExist), err == nil && len(existing) == 0:
		// Fresh log: header and records in one write, so a concurrent
		// creator race degrades to a parseable prefix, never a torn header.
		return l.writeAppend(append(header, records...))
	case err != nil:
		return fmt.Errorf("cachelog: %w", err)
	case len(existing) < 8 || [4]byte(existing[:4]) != magic || binary.LittleEndian.Uint32(existing[4:8]) != Version:
		// Unrecognizable or version-skewed log: discard and rewrite.
		return l.rewrite(append(header, records...))
	default:
		return l.writeAppend(records)
	}
}

func (l *Log) writeAppend(b []byte) error {
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cachelog: %w", err)
	}
	_, werr := f.Write(b)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("cachelog: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("cachelog: %w", cerr)
	}
	return nil
}

func (l *Log) rewrite(b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(l.path), ".decomp.log.tmp*")
	if err != nil {
		return fmt.Errorf("cachelog: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("cachelog: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("cachelog: %w", err)
	}
	if err := os.Rename(name, l.path); err != nil {
		os.Remove(name)
		return fmt.Errorf("cachelog: %w", err)
	}
	return nil
}

// Record payload layout (all integers unsigned varints unless noted):
//
//	keyLen, key bytes
//	flag byte: 0 = recorded failure, 1 = tree follows
//	numInputs, nodeCount
//	per node: nvar, table words (8*wordsFor(nvar) bytes LE), childCount,
//	          children (varints)

func encodeEntry(e Entry) []byte {
	b := binary.AppendUvarint(nil, uint64(len(e.Key)))
	b = append(b, e.Key...)
	if e.Tree == nil {
		return append(b, 0)
	}
	t := e.Tree
	b = append(b, 1)
	b = binary.AppendUvarint(b, uint64(t.NumInputs))
	b = binary.AppendUvarint(b, uint64(len(t.Nodes)))
	for _, nd := range t.Nodes {
		b = binary.AppendUvarint(b, uint64(nd.Func.NumVars()))
		b = nd.Func.AppendWordBytes(b)
		b = binary.AppendUvarint(b, uint64(len(nd.Children)))
		for _, c := range nd.Children {
			b = binary.AppendUvarint(b, uint64(c))
		}
	}
	return b
}

var errCorrupt = errors.New("cachelog: corrupt record")

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errCorrupt
	}
	return v, b[n:], nil
}

func decodeEntry(b []byte) (Entry, error) {
	kl, b, err := readUvarint(b)
	if err != nil || uint64(len(b)) < kl {
		return Entry{}, errCorrupt
	}
	e := Entry{Key: string(b[:kl])}
	b = b[kl:]
	if len(b) < 1 {
		return Entry{}, errCorrupt
	}
	flag := b[0]
	b = b[1:]
	switch flag {
	case 0:
		if len(b) != 0 {
			return Entry{}, errCorrupt
		}
		return e, nil
	case 1:
	default:
		return Entry{}, errCorrupt
	}
	ni, b, err := readUvarint(b)
	if err != nil || ni > logic.MaxVars {
		return Entry{}, errCorrupt
	}
	nn, b, err := readUvarint(b)
	if err != nil || nn == 0 || nn > 1<<16 {
		return Entry{}, errCorrupt
	}
	t := &decomp.Tree{NumInputs: int(ni), Nodes: make([]decomp.TreeNode, 0, nn)}
	for i := uint64(0); i < nn; i++ {
		nv, rest, err := readUvarint(b)
		if err != nil || nv > logic.MaxVars {
			return Entry{}, errCorrupt
		}
		b = rest
		wb := 8 * wordsFor(int(nv))
		if len(b) < wb {
			return Entry{}, errCorrupt
		}
		fn, err := logic.TTFromWordBytes(int(nv), b[:wb])
		if err != nil {
			return Entry{}, errCorrupt
		}
		b = b[wb:]
		nc, rest, err := readUvarint(b)
		if err != nil || nc != nv {
			return Entry{}, errCorrupt // child j is variable j of Func
		}
		b = rest
		children := make([]int, nc)
		for j := range children {
			c, rest, err := readUvarint(b)
			if err != nil || c >= ni+i {
				return Entry{}, errCorrupt // forward or self reference
			}
			b = rest
			children[j] = int(c)
		}
		t.Nodes = append(t.Nodes, decomp.TreeNode{Func: fn, Children: children})
	}
	if len(b) != 0 {
		return Entry{}, errCorrupt
	}
	e.Tree = t
	return e, nil
}

func wordsFor(nvar int) int {
	if nvar <= 6 {
		return 1
	}
	return 1 << uint(nvar-6)
}

// ReadHeaderVersion reports the version in an existing log file, for tools
// and tests; ok=false when the file is missing or has no valid header.
func ReadHeaderVersion(path string) (uint32, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || [4]byte(hdr[:4]) != magic {
		return 0, false
	}
	return binary.LittleEndian.Uint32(hdr[4:8]), true
}
