package decomp

import "turbosyn/internal/logic"

// associativeTree recognizes f (already support-normalized, more than k
// variables) as a wide AND, OR, XOR or a complement thereof, and builds a
// balanced k-ary tree for it directly. Complements fold into the root node.
// ok=false when f has no such shape or the tree cannot fit depthBudget.
func associativeTree(f *logic.TT, refs []int, k, depthBudget int, tr *Tree) (int, bool) {
	m := f.NumVars()
	var mk func(int) *logic.TT
	invert := false
	switch {
	case f.Equal(logic.AndAll(m)):
		mk = logic.AndAll
	case f.Equal(logic.OrAll(m)):
		mk = logic.OrAll
	case f.Equal(logic.NandAll(m)):
		mk, invert = logic.AndAll, true
	case f.Equal(logic.NorAll(m)):
		mk, invert = logic.OrAll, true
	default:
		if _, inv, ok := f.IsParity(); ok {
			mk, invert = logic.XorAll, inv
		} else {
			return 0, false
		}
	}
	// Depth of a balanced k-ary reduction over m leaves.
	depth := 0
	for span := 1; span < m; span *= k {
		depth++
	}
	if depth > depthBudget {
		return 0, false
	}
	level := append([]int(nil), refs...)
	for len(level) > 1 {
		var next []int
		for i := 0; i < len(level); i += k {
			j := min(i+k, len(level))
			if j-i == 1 {
				next = append(next, level[i])
				continue
			}
			fn := mk(j - i)
			if invert && len(level) <= k {
				// Root node: fold the complement in.
				fn = logic.NewTT(fn.NumVars()).Not(fn)
			}
			tr.Nodes = append(tr.Nodes, TreeNode{Func: fn, Children: append([]int(nil), level[i:j]...)})
			next = append(next, tr.NumInputs+len(tr.Nodes)-1)
		}
		level = next
	}
	return level[0], true
}
