package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
	"turbosyn/internal/sim"
)

func randomTT(rng *rand.Rand, nvar int) *logic.TT {
	t := logic.NewTT(nvar)
	for i := 0; i < t.NumBits(); i++ {
		if rng.Intn(2) == 1 {
			t.SetBit(i, true)
		}
	}
	return t
}

func TestColumnMultiplicity(t *testing.T) {
	// f = (x0 XOR x1) AND x2, bound {x0,x1}: subfunctions {0, x2} -> mu=2.
	f := logic.NewTT(3).And(logic.NewTT(3).Xor(logic.Var(3, 0), logic.Var(3, 1)), logic.Var(3, 2))
	if mu := ColumnMultiplicity(f, []int{0, 1}); mu != 2 {
		t.Fatalf("mu = %d, want 2", mu)
	}
	// Parity: every bound set of a XOR has mu = 2.
	if mu := ColumnMultiplicity(logic.XorAll(6), []int{1, 3, 5}); mu != 2 {
		t.Fatalf("xor mu = %d, want 2", mu)
	}
	// AND over bound set {x0,x1}: subfunctions {0, x2&x3} -> mu=2.
	if mu := ColumnMultiplicity(logic.AndAll(4), []int{0, 1}); mu != 2 {
		t.Fatalf("and mu = %d, want 2", mu)
	}
}

func TestRothKarpXor(t *testing.T) {
	f := logic.XorAll(6)
	rk, ok := RothKarp(f, []int{0, 1, 2}, 0)
	if !ok {
		t.Fatal("decomposition failed")
	}
	if len(rk.Alphas) != 1 {
		t.Fatalf("xor should need 1 code bit, got %d", len(rk.Alphas))
	}
	if !rk.Verify(f) {
		t.Fatal("recomposition mismatch")
	}
}

func TestRothKarpRandomQuick(t *testing.T) {
	f := func(seed int64, nvarRaw, kRaw uint8) bool {
		nvar := 3 + int(nvarRaw)%6 // 3..8
		k := 1 + int(kRaw)%(nvar-1)
		rng := rand.New(rand.NewSource(seed))
		tt := randomTT(rng, nvar)
		bound := rng.Perm(nvar)[:k]
		rk, ok := RothKarp(tt, bound, 0)
		if !ok {
			t.Logf("seed %d: unlimited code bits cannot fail", seed)
			return false
		}
		if !rk.Verify(tt) {
			t.Logf("seed %d: verify failed (nvar=%d bound=%v)", seed, nvar, bound)
			return false
		}
		// Multiplicity consistency with the BDD count.
		mu := ColumnMultiplicity(tt, bound)
		maxCodes := 1 << uint(len(rk.Alphas))
		if mu > maxCodes || (len(rk.Alphas) > 1 && mu <= maxCodes/2) {
			t.Logf("seed %d: mu=%d does not fit %d alphas", seed, mu, len(rk.Alphas))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRothKarpCodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := randomTT(rng, 8) // random 8-var functions have high multiplicity
	if _, ok := RothKarp(f, []int{0, 1, 2, 3}, 1); ok {
		t.Fatal("1 code bit should not suffice for a random function")
	}
}

func TestDecomposeWideAnd(t *testing.T) {
	// 9-input AND with K=3: depth 2 tree (3 ANDs + root).
	f := logic.AndAll(9)
	tr, ok := Decompose(f, 3, 2, nil)
	if !ok {
		t.Fatal("decomposition failed")
	}
	if tr.MaxFanin() > 3 {
		t.Fatalf("fanin bound violated: %d", tr.MaxFanin())
	}
	if tr.Depth() > 2 {
		t.Fatalf("depth = %d, want <= 2", tr.Depth())
	}
	if !tr.TT().Equal(f) {
		t.Fatal("tree function mismatch")
	}
	if _, ok := Decompose(f, 3, 1, nil); ok {
		t.Fatal("depth 1 must be impossible for 9 inputs at K=3")
	}
}

func TestDecomposeXorDepth(t *testing.T) {
	f := logic.XorAll(8)
	tr, ok := Decompose(f, 4, 2, nil)
	if !ok {
		t.Fatal("8-input XOR at K=4 should fit depth 2")
	}
	if tr.Depth() > 2 || tr.MaxFanin() > 4 {
		t.Fatalf("depth %d fanin %d", tr.Depth(), tr.MaxFanin())
	}
	if !tr.TT().Equal(f) {
		t.Fatal("function changed")
	}
}

func TestDecomposeRandomQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvar := 5 + rng.Intn(4) // 5..8
		k := 4 + rng.Intn(2)    // 4..5
		tt := randomTT(rng, nvar)
		tr, ok := Decompose(tt, k, 4, rng.Perm(nvar))
		if !ok {
			return true // not every function decomposes in budget; fine
		}
		if tr.MaxFanin() > k {
			t.Logf("seed %d: fanin %d > %d", seed, tr.MaxFanin(), k)
			return false
		}
		if tr.Depth() > 4 {
			t.Logf("seed %d: depth %d", seed, tr.Depth())
			return false
		}
		if !tr.TT().Equal(tt) {
			t.Logf("seed %d: function mismatch", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeConstant(t *testing.T) {
	tr, ok := Decompose(logic.Const(4, true), 3, 1, nil)
	if !ok {
		t.Fatal("constant must decompose")
	}
	if c, v := tr.TT().IsConst(); !c || !v {
		t.Fatal("constant tree wrong")
	}
}

// wideGateCircuit: one 9-input AND gate plus a registered feedback path.
func wideGateCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("wide")
	var fanins []netlist.Fanin
	for i := 0; i < 8; i++ {
		fanins = append(fanins, netlist.Fanin{From: c.AddPI(string(rune('a' + i)))})
	}
	g := c.AddGate("wide", logic.AndAll(9), append(fanins, netlist.Fanin{From: 0})...)
	c.Nodes[g].Fanins[8] = netlist.Fanin{From: g, Weight: 1} // feedback
	c.InvalidateCaches()
	c.AddPO("z", g, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKBoundWideGate(t *testing.T) {
	c := wideGateCircuit(t)
	d, err := KBound(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsKBounded(4) {
		t.Fatalf("max fanin still %d", d.MaxFanin())
	}
	if d.NumFFs() != c.NumFFs() {
		t.Fatalf("FF count changed: %d -> %d", c.NumFFs(), d.NumFFs())
	}
	rng := rand.New(rand.NewSource(4))
	vecs := sim.RandomVectors(rng, 200, len(c.PIs))
	if err := sim.Compare(c, d, vecs, 0, 0); err != nil {
		t.Fatalf("behaviour changed: %v", err)
	}
}

func TestKBoundParityGate(t *testing.T) {
	c := netlist.NewCircuit("par")
	var fanins []netlist.Fanin
	for i := 0; i < 10; i++ {
		fanins = append(fanins, netlist.Fanin{From: c.AddPI(string(rune('a' + i)))})
	}
	g := c.AddGate("x", logic.XorAll(10), fanins...)
	c.AddPO("z", g, 0)
	d, err := KBound(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsKBounded(4) {
		t.Fatal("not bounded")
	}
	// A 10-input XOR via ISOP would need 512 cubes; the parity path keeps
	// it near log size.
	if d.NumGates() > 8 {
		t.Fatalf("parity tree too large: %d gates", d.NumGates())
	}
	eq, err := sim.CombEquivalent(c, d, 10)
	if err != nil || !eq {
		t.Fatalf("equivalence: %v %v", eq, err)
	}
}

func TestKBoundRandomSOPGate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := netlist.NewCircuit("sop")
	var fanins []netlist.Fanin
	for i := 0; i < 7; i++ {
		fanins = append(fanins, netlist.Fanin{From: c.AddPI(string(rune('a' + i)))})
	}
	g := c.AddGate("sopgate", randomTT(rng, 7), fanins...)
	c.AddPO("z", g, 0)
	d, err := KBound(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsKBounded(5) {
		t.Fatal("not bounded")
	}
	eq, err := sim.CombEquivalent(c, d, 10)
	if err != nil || !eq {
		t.Fatalf("equivalence: %v %v", eq, err)
	}
}

func TestKBoundLeavesNarrowCircuitsAlone(t *testing.T) {
	c := wideGateCircuit(t)
	d, err := KBound(c, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumGates() != c.NumGates() {
		t.Fatalf("gates changed %d -> %d without need", c.NumGates(), d.NumGates())
	}
	if _, err := KBound(c, 1); err == nil {
		t.Fatal("k < 2 must be rejected")
	}
}
