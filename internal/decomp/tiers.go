package decomp

import (
	"sort"

	"turbosyn/internal/logic"
)

// Cheap decomposition tiers that run below full Roth-Karp: a large share of
// real cone functions either peel off single-literal disjoint factors
// (f = x AND g, x OR g, x XOR g and the negated-literal variants) or split
// cleanly on one Shannon variable. Both tiers cost a handful of cofactor
// operations instead of an exponential bound-set extraction, consume none of
// the Effort allowances, and — like every Decompose path — are a pure
// deterministic function of their inputs, so cached results stay replayable.

// disjointPeelTree peels single-literal disjoint factors off f: as long as
// some variable v satisfies f = lit(v) op rest for one associative op
// (AND, OR or XOR), the literal moves into a single root node and the
// search continues on the residual. f is support-normalized with more than
// k variables. ok=false when no literal peels or the residual does not
// decompose within depthBudget-1.
func disjointPeelTree(f *logic.TT, refs []int, k, depthBudget int, rank map[int]int, tr *Tree, es *effortState) (int, bool) {
	if depthBudget < 2 {
		return 0, false
	}
	m := f.NumVars()
	type literal struct {
		v   int
		neg bool
	}
	var op byte // 'a' AND, 'o' OR, 'x' XOR
	var peels []literal
	peeled := make([]bool, m)
	g := f
	for len(peels) < k-1 {
		found := false
		for v := 0; v < m && !found; v++ {
			if peeled[v] {
				continue
			}
			g0 := g.Cofactor(v, false)
			g1 := g.Cofactor(v, true)
			c0, v0 := g0.IsConst()
			c1, v1 := g1.IsConst()
			var o byte
			var neg bool
			var rest *logic.TT
			switch {
			case c0 && !v0: // f = x_v AND g1
				o, neg, rest = 'a', false, g1
			case c1 && !v1: // f = NOT x_v AND g0
				o, neg, rest = 'a', true, g0
			case c1 && v1: // f = x_v OR g0
				o, neg, rest = 'o', false, g0
			case c0 && v0: // f = NOT x_v OR g1
				o, neg, rest = 'o', true, g1
			default:
				x := g1.Clone()
				x.Not(x)
				if x.Equal(g0) { // f = x_v XOR g0
					o, neg, rest = 'x', false, g0
				} else {
					continue
				}
			}
			if op != 0 && o != op {
				continue // a mixed-op chain needs one level per op; next round
			}
			op = o
			peels = append(peels, literal{v, neg})
			peeled[v] = true
			g = rest
			found = true
		}
		if !found {
			break
		}
	}
	if len(peels) == 0 {
		return 0, false
	}
	mark := len(tr.Nodes)
	sub, ok := decomposeOver(g, refs, k, depthBudget-1, rank, tr, es)
	if !ok {
		tr.Nodes = tr.Nodes[:mark]
		return 0, false
	}
	// Root: op over the peeled literals (positions 0..p-1) and the residual
	// subtree (position p).
	p := len(peels)
	fn := logic.Var(p+1, p)
	children := make([]int, 0, p+1)
	for i, pl := range peels {
		lit := logic.Var(p+1, i)
		if pl.neg {
			lit.Not(lit)
		}
		switch op {
		case 'a':
			fn.And(fn, lit)
		case 'o':
			fn.Or(fn, lit)
		case 'x':
			fn.Xor(fn, lit)
		}
		children = append(children, refs[pl.v])
	}
	children = append(children, sub)
	tr.Nodes = append(tr.Nodes, TreeNode{Func: fn, Children: children})
	es.disjoint++
	return tr.NumInputs + len(tr.Nodes) - 1, true
}

// shannonTree splits f on one Shannon variable when both cofactors fit
// directly into single k-input leaves: f = v ? f1 : f0 becomes two leaf
// nodes under a 3-input mux, depth 2. Split candidates are tried
// latest-arriving first, so the select input — the only one crossing both
// levels — is the signal the labeling wants near the root. f is
// support-normalized with more than k variables.
func shannonTree(f *logic.TT, refs []int, k, depthBudget int, rank map[int]int, tr *Tree, es *effortState) (int, bool) {
	m := f.NumVars()
	if k < 3 || depthBudget < 2 || m-1 > 2*k {
		return 0, false
	}
	order := make([]int, m)
	for v := range order {
		order[v] = v
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rank[refs[order[a]]] > rank[refs[order[b]]]
	})
	for _, v := range order {
		f0 := f.Cofactor(v, false)
		f1 := f.Cofactor(v, true)
		s0 := f0.Support()
		s1 := f1.Support()
		if len(s0) == 0 || len(s1) == 0 {
			continue // a constant cofactor is a literal peel, not a mux
		}
		if len(s0) > k || len(s1) > k {
			continue
		}
		tr.Nodes = append(tr.Nodes, TreeNode{Func: projectTT(f0, s0), Children: mapRefs(s0, refs)})
		r0 := tr.NumInputs + len(tr.Nodes) - 1
		tr.Nodes = append(tr.Nodes, TreeNode{Func: projectTT(f1, s1), Children: mapRefs(s1, refs)})
		r1 := tr.NumInputs + len(tr.Nodes) - 1
		// Mux21 computes x2 ? x1 : x0, so the select rides as child 2.
		tr.Nodes = append(tr.Nodes, TreeNode{Func: logic.Mux21(), Children: []int{r0, r1, refs[v]}})
		es.shannon++
		return tr.NumInputs + len(tr.Nodes) - 1, true
	}
	return 0, false
}
