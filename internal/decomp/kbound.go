package decomp

import (
	"fmt"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// KBound returns a functionally equivalent circuit in which every gate has
// at most k fanins, decomposing wide gates structurally:
//
//   - parity gates become balanced k-ary XOR trees,
//   - everything else goes through an ISOP cover: per-cube AND trees feeding
//     a balanced OR tree (complemented covers get a final inverter).
//
// This plays the role of the balanced-tree/DMIG preprocessing the paper
// assumes ("this paper assumes that the initial circuits are K-bounded").
// Registers on the wide gate's fanins stay on the corresponding leaf edges.
func KBound(c *netlist.Circuit, k int) (*netlist.Circuit, error) {
	if k < 2 {
		return nil, fmt.Errorf("decomp: KBound needs k >= 2")
	}
	d := netlist.NewCircuit(c.Name)
	// Map old node ids to new ids.
	newID := make([]int, c.NumNodes())
	for i := range newID {
		newID[i] = -1
	}
	// Two passes like the BLIF reader: create nodes, then wire them, so
	// feedback edges resolve. Wide gates expand into subtrees whose leaves
	// reference the original fanins; the subtree is created during wiring.
	type widen struct{ oldID int }
	var wides []widen
	for _, n := range c.Nodes {
		switch n.Kind {
		case netlist.PI:
			newID[n.ID] = d.AddPI(n.Name)
		case netlist.Gate:
			// Zero-fanin placeholder; function and fanins are wired in the
			// second pass once every target id exists.
			newID[n.ID] = d.AddGate(n.Name, logic.Const(0, false))
			if len(n.Fanins) > k {
				wides = append(wides, widen{oldID: n.ID})
			}
		}
	}
	// Wire narrow gates.
	for _, n := range c.Nodes {
		if n.Kind != netlist.Gate || len(n.Fanins) > k {
			continue
		}
		g := d.Nodes[newID[n.ID]]
		g.Func = n.Func
		for _, f := range n.Fanins {
			g.Fanins = append(g.Fanins, netlist.Fanin{From: newID[f.From], Weight: f.Weight})
		}
	}
	// Expand wide gates.
	for _, w := range wides {
		n := c.Nodes[w.oldID]
		leaves := make([]netlist.Fanin, len(n.Fanins))
		for i, f := range n.Fanins {
			leaves[i] = netlist.Fanin{From: newID[f.From], Weight: f.Weight}
		}
		root, err := buildGateTree(d, n.Name, n.Func, leaves, k)
		if err != nil {
			return nil, err
		}
		g := d.Nodes[newID[w.oldID]]
		g.Func = logic.Buf()
		g.Fanins = []netlist.Fanin{{From: root}}
	}
	for _, po := range c.POs {
		f := c.Nodes[po].Fanins[0]
		d.AddPO(c.Nodes[po].Name, newID[f.From], f.Weight)
	}
	d.InvalidateCaches()
	if err := d.Check(); err != nil {
		return nil, fmt.Errorf("decomp: KBound produced a bad circuit: %v", err)
	}
	return d, nil
}

// buildGateTree adds gates computing fn over the given leaf fanins, each
// gate with at most k inputs, and returns the root gate id.
func buildGateTree(d *netlist.Circuit, name string, fn *logic.TT, leaves []netlist.Fanin, k int) (int, error) {
	// Node-count-based suffixes are unique across all expansions.
	fresh := func(sfx string) string {
		return fmt.Sprintf("%s$%s%d", name, sfx, d.NumNodes())
	}
	if support, invert, ok := fn.IsParity(); ok {
		ins := make([]netlist.Fanin, len(support))
		for i, v := range support {
			ins[i] = leaves[v]
		}
		root := reduceTree(d, fresh, ins, k, logic.XorAll)
		if invert {
			root = d.AddGate(fresh("inv"), logic.Inv(), netlist.Fanin{From: root})
		}
		return root, nil
	}
	cover := logic.ISOP(fn)
	inverted := false
	if neg := logic.ISOP(logic.NewTT(fn.NumVars()).Not(fn)); len(neg) < len(cover) {
		cover, inverted = neg, true
	}
	const maxCubes = 4096
	if len(cover) > maxCubes {
		return 0, fmt.Errorf("decomp: gate %q: cover of %d cubes exceeds limit %d",
			name, len(cover), maxCubes)
	}
	inverters := make(map[int]int) // leaf index -> inverter gate id
	var cubeRoots []netlist.Fanin
	for _, q := range cover {
		var ins []netlist.Fanin
		for v := 0; v < fn.NumVars(); v++ {
			bit := uint32(1) << uint(v)
			if q.Care&bit == 0 {
				continue
			}
			if q.Pol&bit != 0 {
				ins = append(ins, leaves[v])
			} else {
				inv, ok := inverters[v]
				if !ok {
					inv = d.AddGate(fresh("n"), logic.Inv(), leaves[v])
					inverters[v] = inv
				}
				ins = append(ins, netlist.Fanin{From: inv})
			}
		}
		if len(ins) == 0 {
			// Tautological cube: the whole function is constant true.
			id := d.AddGate(fresh("one"), logic.Const(0, true))
			cubeRoots = []netlist.Fanin{{From: id}}
			break
		}
		cubeRoots = append(cubeRoots, netlist.Fanin{From: reduceTree(d, fresh, ins, k, logic.AndAll)})
	}
	var root int
	if len(cubeRoots) == 0 {
		root = d.AddGate(fresh("zero"), logic.Const(0, false))
	} else {
		root = reduceTree(d, fresh, cubeRoots, k, logic.OrAll)
	}
	if inverted {
		root = d.AddGate(fresh("inv"), logic.Inv(), netlist.Fanin{From: root})
	}
	return root, nil
}

// reduceTree combines the inputs with a balanced tree of k-ary associative
// gates (gate functions produced by mk) and returns the root id. A single
// input is passed through a buffer so the result is always a gate.
func reduceTree(d *netlist.Circuit, fresh func(string) string, ins []netlist.Fanin, k int, mk func(int) *logic.TT) int {
	if len(ins) == 1 {
		if ins[0].Weight == 0 && d.Nodes[ins[0].From].Kind == netlist.Gate {
			return ins[0].From
		}
		return d.AddGate(fresh("b"), logic.Buf(), ins[0])
	}
	for len(ins) > 1 {
		var next []netlist.Fanin
		for i := 0; i < len(ins); i += k {
			j := min(i+k, len(ins))
			if j-i == 1 {
				next = append(next, ins[i])
				continue
			}
			id := d.AddGate(fresh("t"), mk(j-i), ins[i:j]...)
			next = append(next, netlist.Fanin{From: id})
		}
		ins = next
	}
	if d.Nodes[ins[0].From].Kind != netlist.Gate || ins[0].Weight != 0 {
		return d.AddGate(fresh("b"), logic.Buf(), ins[0])
	}
	return ins[0].From
}
