package decomp

import (
	"fmt"

	"turbosyn/internal/logic"
)

// Multi-output functional decomposition (Wurth–Eckl–Antreich), the paper's
// stated future-work direction for recovering the area lost to single-output
// decomposition: several functions over the same inputs share one bound set
// and one encoder, so the alpha LUTs are built once instead of per function.
//
// For functions f_1..f_r and bound set A, the joint column multiplicity is
// the number of distinct TUPLES of subfunctions over the free variables as A
// ranges over its assignments; the shared code needs ceil(log2 mu) bits and
// each f_i becomes g_i(alpha_1(A)..alpha_e(A), B).

// MultiRothKarpResult is the shared decomposition of several functions.
type MultiRothKarpResult struct {
	BoundSet []int // variable indices encoded by the shared alphas
	FreeSet  []int
	// Alphas range over len(BoundSet) variables and are shared by all
	// functions.
	Alphas []*logic.TT
	// G[i] recomposes function i over len(Alphas)+len(FreeSet) variables
	// (alpha outputs first, then FreeSet in order).
	G []*logic.TT
}

// JointColumnMultiplicity returns the number of distinct subfunction tuples
// over the free variables. All functions must range over the same variable
// count.
func JointColumnMultiplicity(fns []*logic.TT, boundSet []int) int {
	if len(fns) == 0 {
		return 0
	}
	classes, _ := jointClasses(fns, boundSet)
	return classes
}

// jointClasses computes the class id of every bound-set assignment; it
// returns the class count and the per-assignment class ids.
func jointClasses(fns []*logic.TT, boundSet []int) (int, []int) {
	n := fns[0].NumVars()
	for _, f := range fns {
		if f.NumVars() != n {
			panic("decomp: joint decomposition over mismatched variable sets")
		}
	}
	k := len(boundSet)
	inBound := make([]bool, n)
	for _, v := range boundSet {
		inBound[v] = true
	}
	var freeSet []int
	for v := 0; v < n; v++ {
		if !inBound[v] {
			freeSet = append(freeSet, v)
		}
	}
	nb := len(freeSet)
	classOf := make([]int, 1<<uint(k))
	patterns := make(map[string]int)
	buf := make([]byte, 0, len(fns)*((1<<uint(nb))/8+1))
	for a := 0; a < 1<<uint(k); a++ {
		buf = buf[:0]
		var base uint
		for j, v := range boundSet {
			if a&(1<<uint(j)) != 0 {
				base |= 1 << uint(v)
			}
		}
		for _, f := range fns {
			var word byte
			for b := 0; b < 1<<uint(nb); b++ {
				x := base
				for j, v := range freeSet {
					if b&(1<<uint(j)) != 0 {
						x |= 1 << uint(v)
					}
				}
				if f.Eval(x) {
					word |= 1 << uint(b&7)
				}
				if b&7 == 7 || b == 1<<uint(nb)-1 {
					buf = append(buf, word)
					word = 0
				}
			}
		}
		key := string(buf)
		id, ok := patterns[key]
		if !ok {
			id = len(patterns)
			patterns[key] = id
		}
		classOf[a] = id
	}
	return len(patterns), classOf
}

// MultiRothKarp decomposes the functions over a shared bound set.
// maxCodeBits limits the shared code width (0 = unlimited).
func MultiRothKarp(fns []*logic.TT, boundSet []int, maxCodeBits int) (*MultiRothKarpResult, bool) {
	if len(fns) == 0 {
		return nil, false
	}
	n := fns[0].NumVars()
	k := len(boundSet)
	if k == 0 || k >= n {
		return nil, false
	}
	seen := make(map[int]bool, k)
	for _, v := range boundSet {
		if v < 0 || v >= n || seen[v] {
			panic(fmt.Sprintf("decomp: bad bound set %v for %d vars", boundSet, n))
		}
		seen[v] = true
	}
	mu, classOf := jointClasses(fns, boundSet)
	e := 0
	for 1<<uint(e) < mu {
		e++
	}
	if e == 0 {
		e = 1
	}
	if maxCodeBits > 0 && e > maxCodeBits {
		return nil, false
	}
	var freeSet []int
	for v := 0; v < n; v++ {
		if !seen[v] {
			freeSet = append(freeSet, v)
		}
	}
	res := &MultiRothKarpResult{BoundSet: boundSet, FreeSet: freeSet}
	for i := 0; i < e; i++ {
		alpha := logic.NewTT(k)
		for a := 0; a < 1<<uint(k); a++ {
			if classOf[a]&(1<<uint(i)) != 0 {
				alpha.SetBit(a, true)
			}
		}
		res.Alphas = append(res.Alphas, alpha)
	}
	// One representative bound assignment per class, for reading off g_i.
	rep := make([]int, mu)
	for i := range rep {
		rep[i] = -1
	}
	for a, cl := range classOf {
		if rep[cl] < 0 {
			rep[cl] = a
		}
	}
	nb := len(freeSet)
	for _, f := range fns {
		g := logic.NewTT(e + nb)
		for idx := 0; idx < g.NumBits(); idx++ {
			code := idx & (1<<uint(e) - 1)
			b := idx >> uint(e)
			if code >= mu {
				continue // unused code: don't care, fixed to 0
			}
			var x uint
			a := rep[code]
			for j, v := range boundSet {
				if a&(1<<uint(j)) != 0 {
					x |= 1 << uint(v)
				}
			}
			for j, v := range freeSet {
				if b&(1<<uint(j)) != 0 {
					x |= 1 << uint(v)
				}
			}
			if f.Eval(x) {
				g.SetBit(idx, true)
			}
		}
		res.G = append(res.G, g)
	}
	return res, true
}

// Verify recomposes every function and compares exhaustively.
func (r *MultiRothKarpResult) Verify(fns []*logic.TT) bool {
	if len(fns) != len(r.G) {
		return false
	}
	n := fns[0].NumVars()
	subs := make([]*logic.TT, len(r.Alphas)+len(r.FreeSet))
	for i, a := range r.Alphas {
		subs[i] = a.Expand(n, r.BoundSet)
	}
	for i, v := range r.FreeSet {
		subs[len(r.Alphas)+i] = logic.Var(n, v)
	}
	for i, f := range fns {
		if !r.G[i].Compose(subs).Equal(f) {
			return false
		}
	}
	return true
}
