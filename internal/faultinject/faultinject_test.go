package faultinject

import (
	"sync"
	"testing"
)

func TestHooksNoOpWhenDisabled(t *testing.T) {
	if Enabled() {
		t.Fatal("plan active at test start")
	}
	// None of these may panic, sleep or report anything without a plan.
	CutCheck()
	Sweep()
	if BudgetExhausted(3) {
		t.Error("BudgetExhausted true without a plan")
	}
	Delay()
}

func TestCutCheckFiresExactlyOnce(t *testing.T) {
	plan, off := Activate(Config{PanicAtCutCheck: 3})
	defer off()
	fired := 0
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					inj, ok := r.(*Injected)
					if !ok {
						t.Fatalf("panic value %T, want *Injected", r)
					}
					if inj.Kind != KindPanicCutCheck || inj.N != 3 {
						t.Fatalf("wrong injection: %+v", inj)
					}
					fired++
				}
			}()
			CutCheck()
		}()
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly once", fired)
	}
	if plan.Hits(KindPanicCutCheck) != 10 || plan.Fired(KindPanicCutCheck) != 1 {
		t.Fatalf("hits=%d fired=%d", plan.Hits(KindPanicCutCheck), plan.Fired(KindPanicCutCheck))
	}
}

func TestCutCheckFiresOnceUnderConcurrency(t *testing.T) {
	plan, off := Activate(Config{PanicAtCutCheck: 50})
	defer off()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				func() {
					defer func() { recover() }()
					CutCheck()
				}()
			}
		}()
	}
	wg.Wait()
	if n := plan.Fired(KindPanicCutCheck); n != 1 {
		t.Fatalf("fired %d times across 8 goroutines, want exactly once", n)
	}
	if n := plan.Hits(KindPanicCutCheck); n != 800 {
		t.Fatalf("hits = %d, want 800", n)
	}
}

func TestActivateIsExclusive(t *testing.T) {
	_, off := Activate(Config{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second Activate did not panic")
			}
		}()
		Activate(Config{})
	}()
	off()
	if Enabled() {
		t.Fatal("plan still active after deactivation")
	}
	// A fresh activation must now succeed.
	_, off2 := Activate(Config{})
	off2()
}

func TestBudgetExhaustedNodeFilter(t *testing.T) {
	plan, off := Activate(Config{ExhaustBudgetEnabled: true, ExhaustBudgetNode: 7})
	defer off()
	if BudgetExhausted(3) {
		t.Error("fired for the wrong node")
	}
	if !BudgetExhausted(7) {
		t.Error("did not fire for the configured node")
	}
	if plan.Fired(KindExhaustBudget) != 1 {
		t.Errorf("fired = %d, want 1", plan.Fired(KindExhaustBudget))
	}
}

func TestSweepInvokesOnCancelOnce(t *testing.T) {
	calls := 0
	_, off := Activate(Config{CancelAtSweep: 2, OnCancel: func() { calls++ }})
	defer off()
	for i := 0; i < 5; i++ {
		Sweep()
	}
	if calls != 1 {
		t.Fatalf("OnCancel called %d times, want 1", calls)
	}
}

func TestRandomizedConfigDeterministic(t *testing.T) {
	a := RandomizedConfig(42, 1000)
	b := RandomizedConfig(42, 1000)
	if a.PanicAtCutCheck != b.PanicAtCutCheck || a.SlowEveryNthTask != b.SlowEveryNthTask ||
		a.SlowDelay != b.SlowDelay {
		t.Fatalf("same seed produced different plans: %+v vs %+v", a, b)
	}
	c := RandomizedConfig(43, 1000)
	if a.PanicAtCutCheck == c.PanicAtCutCheck && a.SlowEveryNthTask == c.SlowEveryNthTask {
		t.Error("adjacent seeds produced identical plans (suspicious derivation)")
	}
	if a.PanicAtCutCheck < 1 || a.PanicAtCutCheck > 1000 {
		t.Errorf("PanicAtCutCheck %d out of [1, 1000]", a.PanicAtCutCheck)
	}
}
