// Package faultinject provides deterministic, seedable fault-injection
// points for stress-testing the synthesis engine's fault containment:
// panics at a chosen cut check, cancellation at a chosen sweep checkpoint,
// forced budget exhaustion at a chosen node, and artificially slow workers.
//
// The engine calls the exported hooks (CutCheck, Sweep, BudgetExhausted,
// Delay) unconditionally; with no plan activated each hook is a single
// atomic nil-load that the compiler inlines, so the instrumented hot paths
// cost nothing measurable in production. Tests activate a Plan, run the
// engine, and deactivate it; activation is process-global and exclusive, so
// injection tests must not run in parallel with each other.
//
// Determinism: every trigger is counted by a process-wide atomic, so "the
// Nth cut check" fires exactly once after N hook hits regardless of worker
// count or schedule. Which goroutine observes the fault may vary; that the
// fault fires, and how often, does not.
package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Kind identifies one class of injection point.
type Kind uint8

// Injection points instrumented in the engine.
const (
	// KindPanicCutCheck panics inside the label kernel at the Nth
	// structural cut check (exercises worker panic containment).
	KindPanicCutCheck Kind = iota
	// KindCancelSweep invokes the plan's OnCancel callback at the Nth sweep
	// checkpoint (exercises mid-sweep context cancellation).
	KindCancelSweep
	// KindExhaustBudget reports forced budget exhaustion for a chosen node
	// (exercises graceful degradation and Strict-mode errors).
	KindExhaustBudget
	// KindSlowWorker sleeps at every Nth scheduler task (exercises the
	// scheduler under pathological load imbalance).
	KindSlowWorker
	// KindPanicJob panics inside the daemon's per-job execution fence at the
	// Nth job start (exercises fleet-level panic containment: one poisoned
	// job must not kill the serving workers).
	KindPanicJob
	// KindJournalFail makes the daemon's job-journal append fail at the Nth
	// write (exercises accepted-job durability under storage faults).
	KindJournalFail
	// KindSlowTenant delays every job of one tenant (exercises fair-share
	// scheduling: a slow tenant must not starve the others).
	KindSlowTenant

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindPanicCutCheck:
		return "panic-cut-check"
	case KindCancelSweep:
		return "cancel-sweep"
	case KindExhaustBudget:
		return "exhaust-budget"
	case KindSlowWorker:
		return "slow-worker"
	case KindPanicJob:
		return "panic-job"
	case KindJournalFail:
		return "journal-fail"
	case KindSlowTenant:
		return "slow-tenant"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// AnyNode makes KindExhaustBudget fire for every node.
const AnyNode = -1

// Config describes one injection plan. Zero fields disable the
// corresponding point.
type Config struct {
	// Seed labels the plan (reproducibility bookkeeping) and seeds
	// RandomizedConfig-derived plans.
	Seed int64
	// PanicAtCutCheck fires KindPanicCutCheck at the Nth cut check
	// (1-based; 0 disables).
	PanicAtCutCheck int64
	// CancelAtSweep fires KindCancelSweep — calling OnCancel — at the Nth
	// sweep checkpoint (1-based; 0 disables).
	CancelAtSweep int64
	// OnCancel is the callback KindCancelSweep invokes (typically a
	// context.CancelFunc). Required when CancelAtSweep > 0.
	OnCancel func()
	// ExhaustBudgetNode forces budget exhaustion for decomposition attempts
	// of this node id (AnyNode = all nodes). Disabled when
	// ExhaustBudgetEnabled is false.
	ExhaustBudgetNode    int
	ExhaustBudgetEnabled bool
	// SlowEveryNthTask sleeps SlowDelay at every Nth scheduler task
	// (0 disables).
	SlowEveryNthTask int64
	// SlowDelay is the KindSlowWorker sleep (default 1ms when unset).
	SlowDelay time.Duration

	// Server-path injection points (daemon robustness scenarios).

	// PanicAtJob fires KindPanicJob at the Nth JobStart hook hit (1-based;
	// 0 disables).
	PanicAtJob int64
	// JournalFailAt makes the Nth JournalWrite hook return an error
	// (1-based; 0 disables). When JournalFailAll is also set, every write
	// from the Nth on fails — a dead disk rather than a transient fault.
	JournalFailAt  int64
	JournalFailAll bool
	// SlowTenant delays every job of this tenant by SlowTenantDelay
	// (default 1ms when unset). Empty disables.
	SlowTenant      string
	SlowTenantDelay time.Duration
}

// Plan is an activated injection schedule with its live trigger counters.
type Plan struct {
	cfg   Config
	hits  [numKinds]atomic.Int64
	fired [numKinds]atomic.Int64
}

// Injected is the panic value of KindPanicCutCheck; containment layers
// surface it inside their structured errors, which is how tests tell an
// injected fault from a genuine bug.
type Injected struct {
	Kind Kind
	N    int64 // the hit count at which the point fired
}

func (e *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected %s at hit %d", e.Kind, e.N)
}

// active is the process-global plan; nil (the common case) short-circuits
// every hook.
var active atomic.Pointer[Plan]

// Enabled reports whether a plan is currently activated.
func Enabled() bool { return active.Load() != nil }

// Activate installs the plan and returns its deactivation function. It
// panics if another plan is already active: injection tests are exclusive
// by design.
func Activate(cfg Config) (*Plan, func()) {
	p := &Plan{cfg: cfg}
	if p.cfg.SlowDelay == 0 {
		p.cfg.SlowDelay = time.Millisecond
	}
	if !active.CompareAndSwap(nil, p) {
		panic("faultinject: a plan is already active")
	}
	return p, func() { active.CompareAndSwap(p, nil) }
}

// Fired reports how many times the given point has fired under this plan.
func (p *Plan) Fired(k Kind) int64 { return p.fired[k].Load() }

// Hits reports how many times the given hook has been reached under this
// plan (fired or not).
func (p *Plan) Hits(k Kind) int64 { return p.hits[k].Load() }

// CutCheck is called by the label kernel before every structural cut check.
// Under KindPanicCutCheck it panics with *Injected at the configured hit.
func CutCheck() {
	p := active.Load()
	if p == nil {
		return
	}
	n := p.hits[KindPanicCutCheck].Add(1)
	if want := p.cfg.PanicAtCutCheck; want > 0 && n == want {
		p.fired[KindPanicCutCheck].Add(1)
		panic(&Injected{Kind: KindPanicCutCheck, N: n})
	}
}

// Sweep is called at every sweep cancellation checkpoint. Under
// KindCancelSweep it invokes the plan's OnCancel callback at the configured
// hit.
func Sweep() {
	p := active.Load()
	if p == nil {
		return
	}
	n := p.hits[KindCancelSweep].Add(1)
	if want := p.cfg.CancelAtSweep; want > 0 && n == want && p.cfg.OnCancel != nil {
		p.fired[KindCancelSweep].Add(1)
		p.cfg.OnCancel()
	}
}

// BudgetExhausted reports whether decomposition-budget exhaustion should be
// simulated for node. Always false without an active KindExhaustBudget plan.
func BudgetExhausted(node int) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	if !p.cfg.ExhaustBudgetEnabled {
		return false
	}
	p.hits[KindExhaustBudget].Add(1)
	if p.cfg.ExhaustBudgetNode != AnyNode && p.cfg.ExhaustBudgetNode != node {
		return false
	}
	p.fired[KindExhaustBudget].Add(1)
	return true
}

// Delay is called once per scheduler task. Under KindSlowWorker it sleeps
// at every Nth task.
func Delay() {
	p := active.Load()
	if p == nil {
		return
	}
	every := p.cfg.SlowEveryNthTask
	if every <= 0 {
		return
	}
	if p.hits[KindSlowWorker].Add(1)%every == 0 {
		p.fired[KindSlowWorker].Add(1)
		time.Sleep(p.cfg.SlowDelay)
	}
}

// JobStart is called by the daemon's worker fence as a job enters
// execution. Under KindPanicJob it panics with *Injected at the configured
// hit; under KindSlowTenant it sleeps when the job belongs to the slow
// tenant.
func JobStart(tenant string) {
	p := active.Load()
	if p == nil {
		return
	}
	n := p.hits[KindPanicJob].Add(1)
	if want := p.cfg.PanicAtJob; want > 0 && n == want {
		p.fired[KindPanicJob].Add(1)
		panic(&Injected{Kind: KindPanicJob, N: n})
	}
	if p.cfg.SlowTenant != "" && tenant == p.cfg.SlowTenant {
		p.hits[KindSlowTenant].Add(1)
		p.fired[KindSlowTenant].Add(1)
		d := p.cfg.SlowTenantDelay
		if d == 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
}

// JournalWrite is called by the daemon's job journal before every append.
// Under KindJournalFail it returns *Injected (as an error) at the
// configured hit — and at every later hit when JournalFailAll is set.
func JournalWrite() error {
	p := active.Load()
	if p == nil {
		return nil
	}
	want := p.cfg.JournalFailAt
	if want <= 0 {
		return nil
	}
	n := p.hits[KindJournalFail].Add(1)
	if n == want || (p.cfg.JournalFailAll && n > want) {
		p.fired[KindJournalFail].Add(1)
		return &Injected{Kind: KindJournalFail, N: n}
	}
	return nil
}

// RandomizedConfig derives a deterministic pseudo-random plan from seed: a
// panic point within the first maxN cut checks and a slow worker every few
// tasks. Used by chaos runs to vary injection points across repetitions
// while keeping each repetition reproducible from its seed.
func RandomizedConfig(seed, maxN int64) Config {
	if maxN < 1 {
		maxN = 1
	}
	// splitmix64 steps; no math/rand dependency so the derivation is frozen.
	next := func(x *uint64) uint64 {
		*x += 0x9e3779b97f4a7c15
		z := *x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	x := uint64(seed)
	return Config{
		Seed:             seed,
		PanicAtCutCheck:  int64(next(&x)%uint64(maxN)) + 1,
		SlowEveryNthTask: int64(next(&x)%8) + 2,
		SlowDelay:        time.Duration(next(&x)%1000) * time.Microsecond,
	}
}
