package traceval

import (
	"strings"
	"testing"
)

func TestCheckValid(t *testing.T) {
	tr, err := Check([]byte(`{
		"traceEvents": [
			{"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "turbosyn"}},
			{"name": "probe", "ph": "X", "ts": 10, "dur": 5.5, "pid": 1, "tid": 2},
			{"name": "cache-hit", "ph": "i", "ts": 12, "s": "t", "pid": 1, "tid": 2}
		],
		"otherData": {"droppedEvents": "7"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(tr.TraceEvents))
	}
	counts := tr.Counts()
	if counts["probe"] != 1 || counts["cache-hit"] != 1 || counts["process_name"] != 0 {
		t.Fatalf("Counts() = %v, want probe/cache-hit only", counts)
	}
}

func TestCheckRejects(t *testing.T) {
	for name, tc := range map[string]struct {
		in   string
		want string
	}{
		"garbage":      {`not json`, "not valid trace JSON"},
		"empty":        {`{"traceEvents": []}`, "no events"},
		"spanNoDur":    {`{"traceEvents": [{"name": "x", "ph": "X", "ts": 1, "pid": 1, "tid": 1}]}`, "without dur"},
		"negativeTs":   {`{"traceEvents": [{"name": "x", "ph": "i", "ts": -1, "pid": 1, "tid": 1}]}`, "negative ts"},
		"noThread":     {`{"traceEvents": [{"name": "x", "ph": "i", "ts": 1}]}`, "missing pid/tid"},
		"unknownPhase": {`{"traceEvents": [{"name": "x", "ph": "B", "ts": 1, "pid": 1, "tid": 1}]}`, "unknown phase"},
	} {
		t.Run(name, func(t *testing.T) {
			_, err := Check([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
