// Package traceval validates Chrome/Perfetto trace JSON as written by
// internal/obs. It is the shared checker behind cmd/tracecheck and the
// serving-layer tests: both need to prove a trace is loadable (valid JSON,
// no event Perfetto would reject) before anyone drags it into
// ui.perfetto.dev, and the daemon tests additionally assert which span
// names survived a chaos scenario.
package traceval

import (
	"encoding/json"
	"fmt"
)

// Event mirrors the subset of the Trace Event Format the recorder emits:
// "M" metadata, "X" complete spans, "i" instants.
type Event struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	PID  *int64   `json:"pid"`
	TID  *int64   `json:"tid"`
}

// Trace is a parsed, validated trace document.
type Trace struct {
	TraceEvents []Event        `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

// Check parses and validates trace JSON. It fails when the data is not
// valid trace JSON, contains no events, or contains an event Perfetto
// would reject (unknown phase, complete span without a duration, negative
// timestamp, missing pid/tid).
func Check(data []byte) (*Trace, error) {
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("not valid trace JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return nil, fmt.Errorf("trace has no events")
	}
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			// Metadata events carry no timestamp.
		case "X":
			if ev.Dur == nil {
				return nil, fmt.Errorf("event %d (%s): complete span without dur", i, ev.Name)
			}
			fallthrough
		case "i":
			if ev.Ts == nil || *ev.Ts < 0 {
				return nil, fmt.Errorf("event %d (%s): missing or negative ts", i, ev.Name)
			}
			if ev.PID == nil || ev.TID == nil {
				return nil, fmt.Errorf("event %d (%s): missing pid/tid", i, ev.Name)
			}
		default:
			return nil, fmt.Errorf("event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	return &tr, nil
}

// Counts returns a per-span-name census of the trace's non-metadata
// events.
func (t *Trace) Counts() map[string]int {
	counts := map[string]int{}
	for _, ev := range t.TraceEvents {
		if ev.Ph != "M" {
			counts[ev.Name]++
		}
	}
	return counts
}
