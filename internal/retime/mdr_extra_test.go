package retime

import (
	"math/rand"
	"testing"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
)

// TestSternBrocotFallbackAgreesWithPrimary: the exact fallback and the
// bisection-plus-verification primary path must return identical fractions.
func TestSternBrocotFallbackAgreesWithPrimary(t *testing.T) {
	for _, tc := range []struct{ k, w int }{{3, 2}, {7, 3}, {9, 4}, {11, 5}, {5, 1}} {
		c := ringForMDR(t, tc.k, tc.w)
		num, den := MaxCycleRatio(c)
		ctx := newSCCContext(c)
		fn, fd := ctx.sternBrocot(int64(totalDelay(c)), int64(tc.w))
		if num*fd != fn*den {
			t.Errorf("ring(%d,%d): primary %d/%d vs fallback %d/%d",
				tc.k, tc.w, num, den, fn, fd)
		}
	}
}

// ringForMDR builds the k-gate/w-register ring used across MDR tests.
func ringForMDR(t *testing.T, k, w int) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("ring")
	pi := c.AddPI("x")
	first := c.AddGate("r0", logic.AndAll(2),
		netlist.Fanin{From: pi}, netlist.Fanin{From: pi})
	prev := first
	for i := 1; i < k; i++ {
		prev = c.AddGate("", logic.Buf(), netlist.Fanin{From: prev})
	}
	c.Nodes[first].Fanins[1] = netlist.Fanin{From: prev, Weight: w}
	c.InvalidateCaches()
	c.AddPO("z", prev, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMDRRandomConsistency: on random circuits, ceil(MaxCycleRatio) must
// equal MaxCycleRatioCeil, and the critical-cycle verification must accept
// exactly the returned fraction.
func TestMDRRandomConsistency(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 5+rng.Intn(25))
		if c.Check() != nil {
			continue
		}
		num, den := MaxCycleRatio(c)
		ceil := MaxCycleRatioCeil(c)
		if num == 0 {
			if ceil != 0 {
				t.Fatalf("seed %d: acyclic mismatch", seed)
			}
			continue
		}
		want := int((num + den - 1) / den)
		if ceil != want {
			t.Fatalf("seed %d: ceil %d vs fraction %d/%d", seed, ceil, num, den)
		}
		ctx := newSCCContext(c)
		if ctx.ratioAbove(num, den) {
			t.Fatalf("seed %d: some cycle exceeds the reported MDR %d/%d", seed, num, den)
		}
		if !ctx.hasCriticalCycle(num, den) {
			t.Fatalf("seed %d: reported MDR %d/%d not achieved by any cycle", seed, num, den)
		}
	}
}

// TestMDRInvariantUnderPipelining: inserting input-side registers changes no
// loop, so the MDR ratio is untouched (DESIGN.md invariant list).
func TestMDRInvariantUnderPipelining(t *testing.T) {
	for seed := int64(60); seed < 75; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 5+rng.Intn(20))
		if c.Check() != nil {
			continue
		}
		p := PipelinePIs(c, 1+rng.Intn(3))
		n1, d1 := MaxCycleRatio(c)
		n2, d2 := MaxCycleRatio(p)
		if n1*d2 != n2*d1 {
			t.Fatalf("seed %d: MDR changed by pipelining: %d/%d -> %d/%d",
				seed, n1, d1, n2, d2)
		}
	}
}

// TestMDRBelowPeriod: ceil(MDR) never exceeds the current clock period.
func TestMDRBelowPeriod(t *testing.T) {
	for seed := int64(80); seed < 95; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 5+rng.Intn(20))
		if c.Check() != nil {
			continue
		}
		if MaxCycleRatioCeil(c) > Period(c) {
			t.Fatalf("seed %d: MDR ceil %d > period %d", seed, MaxCycleRatioCeil(c), Period(c))
		}
	}
}
