package retime

import (
	"math"

	"turbosyn/internal/graph"
	"turbosyn/internal/netlist"
)

// The MDR (maximum delay-to-register) ratio of a sequential circuit is
// max over directed cycles C of (sum of gate delays on C) / (sum of edge
// weights on C). With retiming plus pipelining the clock period is bounded
// below by exactly this quantity (Leiserson–Saxe, Papaefthymiou), which is
// why the paper minimizes the MDR ratio of the mapped network.
//
// All tests reduce to: "does some cycle have b*Σd - a*Σw > 0?", i.e.
// "is MDR > a/b?", answered by longest-path Bellman–Ford within each
// nontrivial strongly connected component.

// sccContext caches the SCC decomposition for repeated ratio tests.
type sccContext struct {
	c    *netlist.Circuit
	sccs *graph.SCCs
	// nontrivial components and their members
	comps [][]int
}

func newSCCContext(c *netlist.Circuit) *sccContext {
	s := graph.StronglyConnected(c.Adj())
	ctx := &sccContext{c: c, sccs: s}
	for comp := range s.Members {
		if !s.IsTrivial(c.Adj(), comp) {
			ctx.comps = append(ctx.comps, s.Members[comp])
		}
	}
	return ctx
}

// ratioAbove reports whether some cycle has b*Σd - a*Σw > 0 (MDR > a/b).
func (ctx *sccContext) ratioAbove(a, b int64) bool {
	for _, members := range ctx.comps {
		if ctx.positiveCycleIn(members, a, b) {
			return true
		}
	}
	return false
}

// positiveCycleIn runs longest-path relaxation restricted to the given
// component; divergence after len(members) sweeps means a positive cycle.
func (ctx *sccContext) positiveCycleIn(members []int, a, b int64) bool {
	comp := ctx.sccs.Comp[members[0]]
	dist := make(map[int]int64, len(members))
	for _, id := range members {
		dist[id] = 0
	}
	for iter := 0; iter <= len(members); iter++ {
		changed := false
		for _, id := range members {
			nd := ctx.c.Nodes[id]
			dv := dist[id]
			for _, f := range nd.Fanins {
				if ctx.sccs.Comp[f.From] != comp {
					continue
				}
				cost := b*int64(nd.Delay()) - a*int64(f.Weight)
				if nd2 := dist[f.From] + cost; nd2 > dv {
					dv = nd2
					changed = true
				}
			}
			dist[id] = dv
		}
		if !changed {
			return false
		}
	}
	return true
}

// hasCriticalCycle reports whether some cycle has exactly b*Σd - a*Σw == 0,
// assuming no cycle is positive at a/b. Together with ratioAbove this
// verifies MDR == a/b exactly.
func (ctx *sccContext) hasCriticalCycle(a, b int64) bool {
	for _, members := range ctx.comps {
		comp := ctx.sccs.Comp[members[0]]
		// Converge longest paths (no positive cycle, so this terminates).
		dist := make(map[int]int64, len(members))
		for _, id := range members {
			dist[id] = 0
		}
		for iter := 0; iter < len(members)+1; iter++ {
			changed := false
			for _, id := range members {
				nd := ctx.c.Nodes[id]
				for _, f := range nd.Fanins {
					if ctx.sccs.Comp[f.From] != comp {
						continue
					}
					cost := b*int64(nd.Delay()) - a*int64(f.Weight)
					if d := dist[f.From] + cost; d > dist[id] {
						dist[id] = d
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		// Tight subgraph: edges with dist[u] + cost == dist[v]. A cycle of
		// tight edges has total cost 0.
		idx := make(map[int]int, len(members))
		for i, id := range members {
			idx[id] = i
		}
		tight := graph.NewSlice(len(members))
		for _, id := range members {
			nd := ctx.c.Nodes[id]
			for _, f := range nd.Fanins {
				if ctx.sccs.Comp[f.From] != comp {
					continue
				}
				cost := b*int64(nd.Delay()) - a*int64(f.Weight)
				if dist[f.From]+cost == dist[id] {
					tight.AddEdge(idx[f.From], idx[id])
				}
			}
		}
		if _, acyclic := graph.TopoOrder(tight); !acyclic {
			return true
		}
	}
	return false
}

// MaxCycleRatioCeil returns the smallest integer phi with no cycle of
// delay/register ratio above phi, i.e. ceil(MDR). Acyclic circuits return 0.
func MaxCycleRatioCeil(c *netlist.Circuit) int {
	ctx := newSCCContext(c)
	if len(ctx.comps) == 0 {
		return 0
	}
	lo, hi := 0, totalDelay(c)
	for lo < hi {
		mid := (lo + hi) / 2
		if ctx.ratioAbove(int64(mid), 1) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func totalDelay(c *netlist.Circuit) int {
	d := 0
	for _, nd := range c.Nodes {
		d += nd.Delay()
	}
	if d == 0 {
		d = 1
	}
	return d
}

// MaxCycleRatio returns the exact MDR ratio as a reduced fraction num/den.
// Acyclic circuits return (0, 1).
func MaxCycleRatio(c *netlist.Circuit) (num, den int64) {
	ctx := newSCCContext(c)
	if len(ctx.comps) == 0 {
		return 0, 1
	}
	maxDen := int64(0)
	for _, members := range ctx.comps {
		comp := ctx.sccs.Comp[members[0]]
		for _, id := range members {
			for _, f := range ctx.c.Nodes[id].Fanins {
				if ctx.sccs.Comp[f.From] == comp {
					maxDen += int64(f.Weight)
				}
			}
		}
	}
	if maxDen < 1 {
		maxDen = 1
	}
	maxNum := int64(totalDelay(c))

	// Isolate MDR by bisection, then identify the unique fraction with
	// denominator <= maxDen inside the bracket and verify it exactly.
	lo, hi := 0.0, float64(maxNum)
	for iter := 0; iter < 80 && hi-lo > 0.25/float64(maxDen*maxDen); iter++ {
		mid := (lo + hi) / 2
		a, b := rationalize(mid, maxDen)
		var above bool
		if float64(a)/float64(b) < lo || float64(a)/float64(b) > hi {
			// Rounding left the bracket; fall back to a plain comparison
			// with the midpoint as an over-precise fraction.
			a, b = int64(math.Round(mid*float64(maxDen))), maxDen
		}
		above = ctx.ratioAbove(a, b)
		if above {
			lo = float64(a) / float64(b)
		} else {
			hi = float64(a) / float64(b)
		}
		if lo == hi {
			break
		}
	}
	// Candidate fractions: best rational approximations around [lo, hi].
	cands := candidateFractions(lo, hi, maxDen)
	for _, f := range cands {
		if f.b <= 0 || f.a < 0 {
			continue
		}
		if !ctx.ratioAbove(f.a, f.b) && ctx.hasCriticalCycle(f.a, f.b) {
			g := gcd(f.a, f.b)
			return f.a / g, f.b / g
		}
	}
	// Exact fallback: Stern–Brocot walk (always terminates; slow path).
	return ctx.sternBrocot(maxNum, maxDen)
}

type frac struct{ a, b int64 }

// rationalize converts x to a fraction with denominator <= maxDen using a
// continued-fraction best approximation.
func rationalize(x float64, maxDen int64) (int64, int64) {
	if x <= 0 {
		return 0, 1
	}
	var h0, h1, k0, k1 int64 = 0, 1, 1, 0
	v := x
	for i := 0; i < 64; i++ {
		ai := int64(math.Floor(v))
		if k1*ai+k0 > maxDen {
			break
		}
		h0, h1 = h1, ai*h1+h0
		k0, k1 = k1, ai*k1+k0
		fracPart := v - float64(ai)
		if fracPart < 1e-12 {
			break
		}
		v = 1 / fracPart
	}
	if k1 == 0 {
		return int64(math.Round(x)), 1
	}
	return h1, k1
}

// candidateFractions returns fractions with denominator <= maxDen near the
// bracket [lo, hi], most likely first.
func candidateFractions(lo, hi float64, maxDen int64) []frac {
	var out []frac
	seen := map[frac]bool{}
	add := func(a, b int64) {
		if b <= 0 {
			return
		}
		g := gcd(a, b)
		if g > 0 {
			a, b = a/g, b/g
		}
		f := frac{a, b}
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, x := range []float64{hi, (lo + hi) / 2, lo} {
		a, b := rationalize(x, maxDen)
		add(a, b)
		add(a+1, b)
		if a > 0 {
			add(a-1, b)
		}
	}
	// Also every denominator up to a small bound (catches tiny ratios the
	// float path might straddle).
	for b := int64(1); b <= maxDen && b <= 64; b++ {
		a := int64(math.Round(hi * float64(b)))
		add(a, b)
		add(a+1, b)
		if a > 0 {
			add(a-1, b)
		}
	}
	return out
}

// sternBrocot finds the exact MDR with one ratio test per step: an integer
// binary search isolates floor(MDR), then a mediant walk pins the fraction.
// The walk maintains Stern–Brocot neighbours la/lb < MDR <= ha/hb, so once
// the mediant's denominator exceeds maxDen no eligible fraction lies strictly
// inside the bracket and MDR = ha/hb.
func (ctx *sccContext) sternBrocot(maxNum, maxDen int64) (int64, int64) {
	// floor: largest F with MDR > F, i.e. MDR in (F, F+1].
	lo, hi := int64(0), maxNum
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if ctx.ratioAbove(mid, 1) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	la, lb := lo, int64(1)
	ha, hb := lo+1, int64(1)
	if !ctx.ratioAbove(la, lb) {
		// MDR <= floor candidate: MDR is exactly an integer boundary case.
		g := gcd(la, lb)
		return la / g, lb / g
	}
	for lb+hb <= maxDen {
		ma, mb := la+ha, lb+hb
		if ctx.ratioAbove(ma, mb) {
			la, lb = ma, mb
		} else {
			ha, hb = ma, mb
		}
	}
	g := gcd(ha, hb)
	return ha / g, hb / g
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
