package retime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"turbosyn/internal/logic"
	"turbosyn/internal/netlist"
	"turbosyn/internal/sim"
)

// chain builds pi -(w=3)-> g1 -> g2 -> g3 -> po: period 3, retimable to 1.
func chain(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.NewCircuit("chain")
	pi := c.AddPI("x")
	g1 := c.AddGate("g1", logic.Inv(), netlist.Fanin{From: pi, Weight: 3})
	g2 := c.AddGate("g2", logic.Inv(), netlist.Fanin{From: g1})
	g3 := c.AddGate("g3", logic.Inv(), netlist.Fanin{From: g2})
	c.AddPO("z", g3, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

// ring builds a loop of k unit-delay gates carrying w registers, fed by a
// PI through an AND gate, observed at a PO. MDR = k/w.
func ring(t *testing.T, k, w int) *netlist.Circuit {
	t.Helper()
	if k < 2 {
		t.Fatal("ring needs k >= 2")
	}
	c := netlist.NewCircuit("ring")
	pi := c.AddPI("x")
	first := c.AddGate("r0", logic.AndAll(2),
		netlist.Fanin{From: pi}, netlist.Fanin{From: pi}) // placeholder
	prev := first
	for i := 1; i < k; i++ {
		prev = c.AddGate("r"+string(rune('0'+i)), logic.Buf(), netlist.Fanin{From: prev})
	}
	c.Nodes[first].Fanins[1] = netlist.Fanin{From: prev, Weight: w}
	c.InvalidateCaches()
	c.AddPO("z", prev, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPeriod(t *testing.T) {
	c := chain(t)
	if got := Period(c); got != 3 {
		t.Fatalf("Period = %d, want 3", got)
	}
	if got := Period(ring(t, 4, 2)); got != 4 {
		t.Fatalf("ring period = %d, want 4", got)
	}
}

func TestMinPeriodChain(t *testing.T) {
	c := chain(t)
	phi, r := MinPeriod(c)
	if phi != 1 {
		t.Fatalf("min period = %d, want 1", phi)
	}
	d, err := Apply(c, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := Period(d); got != 1 {
		t.Fatalf("retimed period = %d", got)
	}
	if d.NumFFs() == 0 {
		t.Fatal("registers vanished")
	}
	// Behaviour preserved after the registers flush.
	rng := rand.New(rand.NewSource(2))
	vecs := sim.RandomVectors(rng, 100, 1)
	if err := sim.Compare(c, d, vecs, 4, 0); err != nil {
		t.Fatalf("retimed circuit diverges: %v", err)
	}
}

func TestMinPeriodRing(t *testing.T) {
	// 4 gates, 2 registers in the loop — but the PI->PO tap path carries no
	// registers, so behaviour-preserving retiming cannot beat the current
	// period 4. (Pipelining can: see the pipelined tests.)
	c := ring(t, 4, 2)
	phi, r := MinPeriod(c)
	if phi != 4 {
		t.Fatalf("ring min period = %d, want 4", phi)
	}
	d, err := Apply(c, r)
	if err != nil {
		t.Fatal(err)
	}
	if Period(d) > phi {
		t.Fatal("retiming does not achieve claimed period")
	}
	// With pipelining the loop bound (MDR = 2) governs.
	phiP, rp := MinPeriodPipelined(c)
	if phiP != 2 {
		t.Fatalf("pipelined ring period = %d, want 2", phiP)
	}
	dp, err := Apply(c, rp)
	if err != nil {
		t.Fatal(err)
	}
	if Period(dp) > 2 {
		t.Fatal("pipelined retiming misses period 2")
	}
}

func TestRetimeForPeriodInfeasible(t *testing.T) {
	// MDR of ring(4,2) is 2: period 1 impossible even with pipelining.
	c := ring(t, 4, 2)
	if _, ok := RetimeForPeriod(c, 1, false); ok {
		t.Fatal("period 1 should be infeasible")
	}
	if _, ok := RetimeForPeriod(c, 1, true); ok {
		t.Fatal("period 1 should be infeasible even pipelined")
	}
	if _, ok := RetimeForPeriod(c, 0, true); ok {
		t.Fatal("period 0 must be rejected")
	}
}

func TestApplyValidation(t *testing.T) {
	c := chain(t)
	r := make([]int, c.NumNodes())
	if _, err := Apply(c, r[:2]); err == nil {
		t.Error("short lag vector accepted")
	}
	r[c.PIs[0]] = 1
	if _, err := Apply(c, r); err == nil {
		t.Error("PI lag accepted")
	}
	r[c.PIs[0]] = 0
	r[c.POs[0]] = -1
	if _, err := Apply(c, r); err == nil {
		t.Error("negative PO lag accepted")
	}
	r[c.POs[0]] = 0
	r[c.IDByName("g1")] = -1 // would drive pi->g1 weight to 2, g1->g2 to 1; legal
	if _, err := Apply(c, r); err != nil {
		t.Errorf("legal retiming rejected: %v", err)
	}
	r[c.IDByName("g1")] = 1 // pi->g1 weight 4, g1->g2 weight -1
	if _, err := Apply(c, r); err == nil {
		t.Error("negative edge weight accepted")
	}
}

func TestPipelinePIsAndLatency(t *testing.T) {
	// Pure feed-forward adder tree: pipelining reaches period 1.
	c := netlist.NewCircuit("tree")
	a, b, d, e := c.AddPI("a"), c.AddPI("b"), c.AddPI("c"), c.AddPI("d")
	g1 := c.AddGate("g1", logic.XorAll(2), netlist.Fanin{From: a}, netlist.Fanin{From: b})
	g2 := c.AddGate("g2", logic.XorAll(2), netlist.Fanin{From: d}, netlist.Fanin{From: e})
	g3 := c.AddGate("g3", logic.XorAll(2), netlist.Fanin{From: g1}, netlist.Fanin{From: g2})
	g4 := c.AddGate("g4", logic.Inv(), netlist.Fanin{From: g3})
	c.AddPO("z", g4, 0)
	if Period(c) != 3 {
		t.Fatalf("period = %d", Period(c))
	}
	phi, r := MinPeriodPipelined(c)
	if phi != 1 {
		t.Fatalf("pipelined min period = %d, want 1", phi)
	}
	lat := Latency(c, r)
	if lat[0] <= 0 {
		t.Fatalf("pipelining must add latency, got %v", lat)
	}
	d2, err := Apply(c, r)
	if err != nil {
		t.Fatal(err)
	}
	if Period(d2) > 1 {
		t.Fatal("pipelined retiming misses period")
	}
	// Outputs match with the reported latency.
	rng := rand.New(rand.NewSource(3))
	vecs := sim.RandomVectors(rng, 60, 4)
	if err := sim.Compare(c, d2, vecs, lat[0], lat[0]); err != nil {
		t.Fatalf("pipelined circuit diverges: %v", err)
	}

	// PipelinePIs inserts exactly one FF per PI fanout edge.
	p := PipelinePIs(c, 2)
	if p.NumFFs() != c.NumFFs()+2*4 {
		t.Fatalf("PipelinePIs FF count: %d", p.NumFFs())
	}
}

func TestMinPeriodPipelinedBoundedByLoops(t *testing.T) {
	// ring(6,2): MDR = 3; pipelining cannot beat the loop bound.
	c := ring(t, 6, 2)
	phi, _ := MinPeriodPipelined(c)
	if phi != 3 {
		t.Fatalf("pipelined period = %d, want 3 (the loop bound)", phi)
	}
}

func TestMaxCycleRatio(t *testing.T) {
	cases := []struct {
		k, w     int
		num, den int64
	}{
		{4, 2, 2, 1},
		{6, 4, 3, 2},
		{5, 3, 5, 3},
		{2, 1, 2, 1},
		{7, 2, 7, 2},
	}
	for _, tc := range cases {
		c := ring(t, tc.k, tc.w)
		num, den := MaxCycleRatio(c)
		if num != tc.num || den != tc.den {
			t.Errorf("ring(%d,%d): MDR = %d/%d, want %d/%d",
				tc.k, tc.w, num, den, tc.num, tc.den)
		}
		ceil := MaxCycleRatioCeil(c)
		want := int((tc.num + tc.den - 1) / tc.den)
		if ceil != want {
			t.Errorf("ring(%d,%d): ceil = %d, want %d", tc.k, tc.w, ceil, want)
		}
	}
}

func TestMaxCycleRatioAcyclic(t *testing.T) {
	c := chain(t)
	if num, den := MaxCycleRatio(c); num != 0 || den != 1 {
		t.Fatalf("acyclic MDR = %d/%d", num, den)
	}
	if MaxCycleRatioCeil(c) != 0 {
		t.Fatal("acyclic ceil must be 0")
	}
}

func TestMaxCycleRatioTwoLoops(t *testing.T) {
	// Two independent rings: 3 gates/1 FF (ratio 3) and 5 gates/2 FFs
	// (ratio 5/2). The max governs.
	c := netlist.NewCircuit("two")
	pi := c.AddPI("x")
	mk := func(prefix string, k, w int) {
		first := c.AddGate(prefix+"0", logic.AndAll(2),
			netlist.Fanin{From: pi}, netlist.Fanin{From: pi})
		prev := first
		for i := 1; i < k; i++ {
			prev = c.AddGate(prefix+string(rune('0'+i)), logic.Buf(), netlist.Fanin{From: prev})
		}
		c.Nodes[first].Fanins[1] = netlist.Fanin{From: prev, Weight: w}
		c.InvalidateCaches()
		c.AddPO(prefix+"z", prev, 0)
	}
	mk("a", 3, 1)
	mk("b", 5, 2)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	if num, den := MaxCycleRatio(c); num != 3 || den != 1 {
		t.Fatalf("MDR = %d/%d, want 3/1", num, den)
	}
}

// randomCircuit builds a well-formed sequential circuit: forward edges may
// be registered or not, back edges always carry at least one register.
func randomCircuit(rng *rand.Rand, nGates int) *netlist.Circuit {
	c := netlist.NewCircuit("rand")
	pi := c.AddPI("x")
	ids := []int{pi}
	for i := 0; i < nGates; i++ {
		nf := 1 + rng.Intn(2)
		fanins := make([]netlist.Fanin, nf)
		for j := range fanins {
			fanins[j] = netlist.Fanin{From: ids[rng.Intn(len(ids))], Weight: rng.Intn(2)}
		}
		var fn *logic.TT
		switch nf {
		case 1:
			fn = logic.Buf()
		default:
			fn = logic.AndAll(nf)
		}
		ids = append(ids, c.AddGate("", fn, fanins...))
	}
	// A few back edges (weight >= 1) rewiring existing fanins.
	for i := 0; i < nGates/3; i++ {
		g := ids[1+rng.Intn(nGates)]
		n := c.Nodes[g]
		slot := rng.Intn(len(n.Fanins))
		n.Fanins[slot] = netlist.Fanin{From: ids[1+rng.Intn(nGates)], Weight: 1 + rng.Intn(2)}
	}
	c.InvalidateCaches()
	c.AddPO("z", ids[len(ids)-1], 0)
	return c
}

func TestRetimingPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 3+rng.Intn(25))
		if c.Check() != nil {
			return true // generator may create comb cycles; skip those
		}
		p0 := Period(c)
		phi, r := MinPeriod(c)
		if phi > p0 {
			t.Logf("seed %d: min period %d exceeds current %d", seed, phi, p0)
			return false
		}
		d, err := Apply(c, r)
		if err != nil {
			t.Logf("seed %d: apply failed: %v", seed, err)
			return false
		}
		if Period(d) > phi {
			t.Logf("seed %d: retimed period %d > claimed %d", seed, Period(d), phi)
			return false
		}
		// MDR is invariant under retiming.
		n1, d1 := MaxCycleRatio(c)
		n2, d2 := MaxCycleRatio(d)
		if n1*d2 != n2*d1 {
			t.Logf("seed %d: MDR changed by retiming: %d/%d -> %d/%d", seed, n1, d1, n2, d2)
			return false
		}
		// Pipelined optimum equals the loop bound.
		phiP, rp := MinPeriodPipelined(c)
		ceil := MaxCycleRatioCeil(c)
		want := ceil
		if want < 1 {
			want = 1
		}
		if phiP != want {
			t.Logf("seed %d: pipelined period %d, loop bound %d", seed, phiP, want)
			return false
		}
		dp, err := Apply(c, rp)
		if err != nil || Period(dp) > phiP {
			t.Logf("seed %d: pipelined apply/period wrong", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleWeightInvariant(t *testing.T) {
	// Retiming must preserve every cycle's register count; spot-check via
	// total FF count on the ring (single cycle + acyclic rest).
	c := ring(t, 5, 3)
	_, r := MinPeriod(c)
	d, err := Apply(c, r)
	if err != nil {
		t.Fatal(err)
	}
	n1, d1 := MaxCycleRatio(c)
	n2, d2 := MaxCycleRatio(d)
	if n1*d2 != n2*d1 {
		t.Fatalf("cycle ratio changed: %d/%d -> %d/%d", n1, d1, n2, d2)
	}
}
