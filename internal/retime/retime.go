// Package retime implements Leiserson–Saxe retiming for retiming-graph
// circuits under the unit gate-delay model, plus the loop metric the paper
// optimizes: the maximum delay-to-register (MDR) ratio over all cycles.
//
// A retiming assigns an integer lag r(v) to every node; the retimed weight of
// an edge e(u,v) is w_r(e) = w(e) + r(v) - r(u). Primary inputs are pinned to
// r = 0. Primary outputs are pinned too for behaviour-preserving retiming;
// letting them lag models pipelining (each output is delayed by r(po)
// cycles, which is exactly the "insert FFs at the inputs and retime" scheme
// of the paper).
package retime

import (
	"fmt"

	"turbosyn/internal/netlist"
)

// Period returns the clock period of the circuit as-is: the maximum total
// gate delay on any register-free path.
func Period(c *netlist.Circuit) int {
	d, ok := combDelays(c, nil)
	if !ok {
		panic("retime: combinational cycle; run Check first")
	}
	max := 0
	for _, v := range d {
		if v > max {
			max = v
		}
	}
	return max
}

// combDelays computes Δ(v) = d(v) + max{Δ(u) : e(u,v) with retimed weight 0}
// for all nodes, under the optional retiming r (nil = identity). It reports
// ok=false if the zero-weight subgraph has a cycle or a retimed weight is
// negative (an illegal intermediate retiming).
func combDelays(c *netlist.Circuit, r []int) ([]int, bool) {
	n := c.NumNodes()
	delta := make([]int, n)
	indeg := make([]int, n)
	wr := func(to *netlist.Node, f netlist.Fanin) int {
		if r == nil {
			return f.Weight
		}
		return f.Weight + r[to.ID] - r[f.From]
	}
	for _, nd := range c.Nodes {
		for _, f := range nd.Fanins {
			w := wr(nd, f)
			if w < 0 {
				return nil, false
			}
			if w == 0 {
				indeg[nd.ID]++
			}
		}
	}
	queue := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	processed := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		nd := c.Nodes[id]
		in := 0
		for _, f := range nd.Fanins {
			if wr(nd, f) == 0 && delta[f.From] > in {
				in = delta[f.From]
			}
		}
		delta[id] = in + nd.Delay()
		for _, fo := range c.Fanouts(id) {
			to := c.Nodes[fo.To]
			if wr(to, to.Fanins[fo.Slot]) == 0 {
				indeg[fo.To]--
				if indeg[fo.To] == 0 {
					queue = append(queue, fo.To)
				}
			}
		}
	}
	return delta, processed == n
}

// RetimeForPeriod searches for a legal retiming achieving clock period phi.
// With pipeline=false the result preserves behaviour exactly (no lag on any
// primary input or output). With pipeline=true outputs may lag — extra
// registers are effectively inserted on the input side and retimed inward —
// so the achievable period is bounded only by the loops (the MDR ratio);
// use Latency to read the per-output lag.
//
// The test is the sequential arrival-time computation the paper builds on
// (Pan–Liu): l(pi) = 0 and l(v) = d(v) + max over fanin edges e(u,v) of
// l(u) - phi*w(e). The labels converge iff no loop has delay/register ratio
// above phi; phi is achievable behaviour-preservingly iff additionally
// l(po) <= phi for every output. The retiming r(v) = ceil(l(v)/phi) - 1
// realizes the period.
func RetimeForPeriod(c *netlist.Circuit, phi int, pipeline bool) ([]int, bool) {
	if phi < 1 {
		return nil, false
	}
	l, ok := arrivalLabels(c, phi)
	if !ok {
		return nil, false // a loop beats phi: infeasible even with pipelining
	}
	if !pipeline {
		for _, po := range c.POs {
			if l[po] > int64(phi) {
				return nil, false
			}
		}
	}
	n := c.NumNodes()
	r := make([]int, n)
	for id, nd := range c.Nodes {
		switch nd.Kind {
		case netlist.PI:
			r[id] = 0
		case netlist.PO:
			r[id] = int(ceilDiv(l[id], int64(phi)) - 1)
			if r[id] < 0 {
				r[id] = 0
			}
		default:
			r[id] = int(ceilDiv(l[id], int64(phi)) - 1)
		}
	}
	return r, true
}

// arrivalLabels computes the sequential arrival times for target period phi
// by longest-path relaxation. It reports ok=false when the labels diverge,
// i.e. some loop has delay/register ratio above phi.
func arrivalLabels(c *netlist.Circuit, phi int) ([]int64, bool) {
	n := c.NumNodes()
	l := make([]int64, n)
	// Nodes with fanins start far below any reachable label so that
	// regions not fed from the PIs still settle to mutually consistent
	// values; sources (PIs, constant gates) start at 0.
	low := -int64(phi)*int64(c.NumFFs()+1) - int64(n) - 1
	for id, nd := range c.Nodes {
		if len(nd.Fanins) > 0 {
			l[id] = low
		}
	}
	order := c.CombTopoOrder() // good sweep order: comb edges relax in one pass
	for iter := 0; iter <= n+1; iter++ {
		changed := false
		for _, id := range order {
			nd := c.Nodes[id]
			if len(nd.Fanins) == 0 {
				continue
			}
			best := low
			for _, f := range nd.Fanins {
				if v := l[f.From] - int64(phi)*int64(f.Weight); v > best {
					best = v
				}
			}
			best += int64(nd.Delay())
			if best > l[id] {
				l[id] = best
				changed = true
			}
		}
		if !changed {
			return l, true
		}
	}
	return nil, false
}

// ceilDiv returns ceil(a/b) for b > 0, correct for negative a.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}

// Apply returns a clone of c with the retiming applied. It validates that r
// pins the PIs, produces no negative edge weight, and (unless outputs were
// pipelined) pins the POs. PO lags must be non-negative: an output cannot
// borrow cycles from the environment.
func Apply(c *netlist.Circuit, r []int) (*netlist.Circuit, error) {
	if len(r) != c.NumNodes() {
		return nil, fmt.Errorf("retime: lag vector has %d entries for %d nodes",
			len(r), c.NumNodes())
	}
	for _, pi := range c.PIs {
		if r[pi] != 0 {
			return nil, fmt.Errorf("retime: PI %q must have lag 0, has %d",
				c.Nodes[pi].Name, r[pi])
		}
	}
	for _, po := range c.POs {
		if r[po] < 0 {
			return nil, fmt.Errorf("retime: PO %q has negative lag %d",
				c.Nodes[po].Name, r[po])
		}
	}
	d := c.Clone()
	for _, nd := range d.Nodes {
		for i := range nd.Fanins {
			f := &nd.Fanins[i]
			f.Weight += r[nd.ID] - r[f.From]
			if f.Weight < 0 {
				return nil, fmt.Errorf("retime: edge %q->%q gets weight %d",
					c.Nodes[f.From].Name, nd.Name, f.Weight)
			}
		}
	}
	d.InvalidateCaches()
	return d, nil
}

// Latency returns the extra output latency introduced by a (pipelining)
// retiming: one entry per PO, equal to that output's lag.
func Latency(c *netlist.Circuit, r []int) []int {
	out := make([]int, len(c.POs))
	for i, po := range c.POs {
		out[i] = r[po]
	}
	return out
}

// MinPeriod finds the smallest clock period achievable by pure retiming
// (outputs pinned) together with a retiming that achieves it.
func MinPeriod(c *netlist.Circuit) (int, []int) {
	hi := Period(c)
	if hi == 0 {
		return 0, make([]int, c.NumNodes())
	}
	lo := 1
	best := hi
	bestR := make([]int, c.NumNodes())
	for lo <= hi {
		mid := (lo + hi) / 2
		if r, ok := RetimeForPeriod(c, mid, false); ok {
			best, bestR = mid, r
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, bestR
}

// MinPeriodPipelined finds the smallest clock period achievable with
// retiming plus pipelining (outputs may lag). By the classic theory the
// result equals max(1, ceil(MDR)); the returned retiming realizes it.
func MinPeriodPipelined(c *netlist.Circuit) (int, []int) {
	hi := Period(c)
	if hi == 0 {
		return 0, make([]int, c.NumNodes())
	}
	lo := MaxCycleRatioCeil(c)
	if lo < 1 {
		lo = 1
	}
	best := hi
	var bestR []int
	if r, ok := RetimeForPeriod(c, hi, true); ok {
		bestR = r
	} else {
		bestR = make([]int, c.NumNodes())
	}
	for lo <= hi {
		mid := (lo + hi) / 2
		if r, ok := RetimeForPeriod(c, mid, true); ok {
			best, bestR = mid, r
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, bestR
}

// PipelinePIs returns a clone of c with k extra registers on every edge
// leaving a primary input, delaying every output by k cycles. This is the
// paper's pipelining primitive ("insert the same number of FFs on the fanout
// edges of every PI"), normally followed by retiming.
func PipelinePIs(c *netlist.Circuit, k int) *netlist.Circuit {
	if k < 0 {
		panic("retime: negative pipeline depth")
	}
	d := c.Clone()
	isPI := make([]bool, d.NumNodes())
	for _, pi := range d.PIs {
		isPI[pi] = true
	}
	for _, nd := range d.Nodes {
		for i := range nd.Fanins {
			if isPI[nd.Fanins[i].From] {
				nd.Fanins[i].Weight += k
			}
		}
	}
	d.InvalidateCaches()
	return d
}
