package turbosyn

import (
	"bytes"
	"testing"

	"turbosyn/internal/bench"
)

func blifString(t *testing.T, c *Circuit) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineFacade pins the public Engine against the one-shot Synthesize:
// repeated runs on one engine reuse its analysis, cache and arena pool and
// still produce byte-identical realized netlists, and the probe/map entry
// points agree with their package-level counterparts.
func TestEngineFacade(t *testing.T) {
	c := bench.ScaleFSM("TestEngineFacade", 7, 4)
	opts := Options{K: 5}
	want, err := Synthesize(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantBLIF := blifString(t, want.Realized)

	eng, err := NewEngine(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for run := 1; run <= 3; run++ {
		res, err := eng.Synthesize()
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if res.Phi != want.Phi || res.LUTs != want.LUTs {
			t.Fatalf("run %d diverged: phi %d/%d, LUTs %d/%d",
				run, res.Phi, want.Phi, res.LUTs, want.LUTs)
		}
		if !bytes.Equal(blifString(t, res.Realized), wantBLIF) {
			t.Fatalf("run %d: realized netlist diverged from one-shot Synthesize", run)
		}
		if !bytes.Equal(blifString(t, res.Mapped), blifString(t, want.Mapped)) {
			t.Fatalf("run %d: mapped netlist diverged from one-shot Synthesize", run)
		}
	}
	if ps := eng.PoolStats(); ps.Reuses == 0 {
		t.Error("three engine runs never reused a pooled arena")
	}

	okWant, _, err := Feasible(c, want.Phi, opts)
	if err != nil {
		t.Fatal(err)
	}
	okGot, _, err := eng.Feasible(want.Phi)
	if err != nil {
		t.Fatal(err)
	}
	if okGot != okWant || !okGot {
		t.Fatalf("Feasible(%d): engine %v, one-shot %v", want.Phi, okGot, okWant)
	}
	mr, err := eng.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if mr.Phi != want.Phi {
		t.Fatalf("Minimize phi = %d, want %d", mr.Phi, want.Phi)
	}
	if _, err := eng.MapAtRatio(mr.Phi); err != nil {
		t.Fatalf("MapAtRatio(%d): %v", mr.Phi, err)
	}
}

// TestEngineRejectsFlowSYNS: FlowSYN-s has no reusable state; the
// constructor says so instead of silently falling back.
func TestEngineRejectsFlowSYNS(t *testing.T) {
	c := bench.ScaleFSM("TestEngineRejectsFlowSYNS", 6, 4)
	if _, err := NewEngine(c, Options{Algorithm: FlowSYNS}); err == nil {
		t.Fatal("NewEngine accepted FlowSYN-s")
	}
}

// TestEngineValidates: constructor surfaces option and circuit errors.
func TestEngineValidates(t *testing.T) {
	c := bench.ScaleFSM("TestEngineValidates", 6, 4)
	if _, err := NewEngine(c, Options{K: 1}); err == nil {
		t.Fatal("NewEngine accepted K=1")
	}
	if _, err := NewEngine(c, Options{Workers: -1}); err == nil {
		t.Fatal("NewEngine accepted negative Workers")
	}
}
