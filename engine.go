package turbosyn

import (
	"context"
	"fmt"

	"turbosyn/internal/core"
)

// Engine binds one circuit to one option set and keeps everything that is
// invariant across runs alive between calls: the K-bounded form of the
// circuit, its graph analysis (topological order, SCC condensation, levels,
// degrees), the NPN-keyed decomposition cache — including the persisted
// cross-run log, which is loaded once at construction instead of once per
// call — and a checkout pool of worker scratch arenas that survive probe and
// run boundaries. Repeated calls on one engine skip all of that setup; the
// one-shot functions (Synthesize, Feasible) construct a throwaway engine per
// call, so results from an engine are bit-identical to the one-shot path.
//
// An Engine is safe for concurrent use. Close flushes the persistent
// decomposition log (when Options.CacheDir is set); runs after Close still
// compute correctly but their new cache entries are not persisted.
//
// FlowSYN-s is a per-call island decomposition with no reusable state, so
// NewEngine rejects Options.Algorithm == FlowSYNS; use Synthesize for it.
type Engine struct {
	opts Options
	orig *Circuit
	work *Circuit // orig after K-bounding (orig itself when already bounded)
	core *core.Engine
}

// NewEngine validates c against o, K-bounds it if needed, analyzes it once
// and returns an engine ready to serve runs. When o.CacheDir is set the
// persisted decomposition log is loaded here, once.
func NewEngine(c *Circuit, o Options) (*Engine, error) {
	o = o.fill()
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.Algorithm == FlowSYNS {
		return nil, fmt.Errorf("turbosyn: Engine does not support FlowSYN-s (no reusable state); use Synthesize")
	}
	if err := c.Check(); err != nil {
		return nil, err
	}
	work, err := kBoundFor(c, o.K)
	if err != nil {
		return nil, err
	}
	ce, err := core.NewEngine(work, o.coreOptions(nil, nil))
	if err != nil {
		return nil, err
	}
	return &Engine{opts: o, orig: c, work: work, core: ce}, nil
}

// Close flushes the persistent decomposition log and marks the engine
// closed. Safe to call more than once; only the first call flushes.
func (e *Engine) Close() error { return e.core.Close() }

// PoolStats is the engine arena-pool counter set (see core.PoolStats).
type PoolStats = core.PoolStats

// PoolStats reports the engine's arena-pool counters: parked arenas and
// their retained bytes, plus the lifetime checkout traffic (reuses, creates,
// poisoned-or-oversized discards). See core.PoolStats and DESIGN.md §10.
func (e *Engine) PoolStats() core.PoolStats { return e.core.PoolStats() }

// Feasible is FeasibleContext with a background context.
func (e *Engine) Feasible(phi int) (bool, core.Stats, error) {
	return e.FeasibleContext(context.Background(), phi)
}

// FeasibleContext decides the paper's Problem 2 on the engine's circuit: can
// it be mapped with clock period (MinPeriod) or MDR ratio (MinRatio) at most
// phi? Equivalent to the package-level Feasible with the engine's options,
// minus the per-call circuit analysis and cache loading.
func (e *Engine) FeasibleContext(ctx context.Context, phi int) (bool, core.Stats, error) {
	return e.core.FeasibleContext(ctx, phi, e.opts.coreOptions(nil, e.opts.Logger))
}

// MapAtRatio is MapAtRatioContext with a background context.
func (e *Engine) MapAtRatio(phi int) (*core.Result, error) {
	return e.MapAtRatioContext(context.Background(), phi)
}

// MapAtRatioContext computes labels and a mapped LUT network for a specific
// feasible phi; it fails when phi is infeasible. The result is relative to
// the K-bounded circuit (Engine's internal working form); use
// SynthesizeContext for origins remapped to the constructor's circuit plus
// packing and realization.
func (e *Engine) MapAtRatioContext(ctx context.Context, phi int) (*core.Result, error) {
	return e.core.MapAtRatioContext(ctx, phi, e.opts.coreOptions(nil, e.opts.Logger))
}

// Minimize is MinimizeContext with a background context.
func (e *Engine) Minimize() (*core.Result, error) {
	return e.MinimizeContext(context.Background())
}

// MinimizeContext finds the minimum feasible phi by binary search and
// returns the mapping at that phi, without the packing/realization
// post-passes of SynthesizeContext. Every probe of the search — speculative
// lookaheads included — checks its state and scratch arenas out of the
// engine instead of re-deriving the circuit analysis.
func (e *Engine) MinimizeContext(ctx context.Context) (*core.Result, error) {
	return e.core.MinimizeContext(ctx, e.opts.coreOptions(nil, e.opts.Logger))
}

// Synthesize is SynthesizeContext with a background context.
func (e *Engine) Synthesize() (*Result, error) {
	return e.SynthesizeContext(context.Background())
}

// SynthesizeContext runs the full flow of the package-level
// SynthesizeContext — search, LUT packing, realization by retiming and
// pipelining, full observability — on the engine, reusing its analysis,
// decomposition cache and arena pool. Results are bit-identical to the
// package-level call with the same options.
func (e *Engine) SynthesizeContext(ctx context.Context) (*Result, error) {
	return synthesizeOn(ctx, e.core, e.orig, e.work, e.opts)
}
