package turbosyn

import "turbosyn/internal/logic"

// Function is a Boolean function as a truth table; gate nodes carry one
// over their fanins (fanin i = variable i).
type Function = logic.TT

// And returns the n-input AND function.
func And(n int) *Function { return logic.AndAll(n) }

// Or returns the n-input OR function.
func Or(n int) *Function { return logic.OrAll(n) }

// Xor returns the n-input parity function.
func Xor(n int) *Function { return logic.XorAll(n) }

// Nand returns the n-input NAND function.
func Nand(n int) *Function { return logic.NandAll(n) }

// Nor returns the n-input NOR function.
func Nor(n int) *Function { return logic.NorAll(n) }

// Buf returns the 1-input identity.
func Buf() *Function { return logic.Buf() }

// Inv returns the 1-input inverter.
func Inv() *Function { return logic.Inv() }

// Mux returns the 3-input multiplexer x2 ? x1 : x0.
func Mux() *Function { return logic.Mux21() }

// ConstFunc returns the 0-input constant function.
func ConstFunc(value bool) *Function { return logic.Const(0, value) }

// FunctionFromBits builds an n-variable function from a little-endian bit
// string of length 2^n ("0110" is the 2-input XOR).
func FunctionFromBits(n int, bits string) (*Function, error) {
	return logic.FromBits(n, bits)
}
