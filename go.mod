module turbosyn

go 1.22
