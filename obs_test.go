package turbosyn

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"turbosyn/internal/bench"
)

// obsCircuit regenerates the suite's bbara FSM (fixed seed, deterministic):
// big enough that a default TurboSYN run exercises probes, SCC component
// tasks and Roth-Karp decompositions — everything the trace must show.
func obsCircuit() *Circuit {
	rng := rand.New(rand.NewSource(101))
	return bench.FSM(rng, "bbara", bench.FSMSpec{
		StateBits: 4, Inputs: 4, Outputs: 2, Cubes: 6, Span: 5,
	})
}

// chromeTrace mirrors the Chrome trace event schema `-trace` commits to
// (DESIGN.md §8) deeply enough to validate an exported file.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData struct {
		Tool          string `json:"tool"`
		RunID         string `json:"runID"`
		Events        int    `json:"events"`
		DroppedEvents int    `json:"droppedEvents"`
	} `json:"otherData"`
}

// TestTraceSchemaAndSpans: a traced run exports valid Chrome trace JSON
// whose events include probe, component and decomposition spans.
func TestTraceSchemaAndSpans(t *testing.T) {
	rec := NewTraceRecorder(0)
	res, err := Synthesize(obsCircuit(), Options{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunID == "" {
		t.Fatal("traced run has no RunID")
	}
	if res.Stats.TraceEvents == 0 {
		t.Fatal("Stats.TraceEvents = 0 on a traced run")
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf, res.RunID); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.OtherData.Tool != "turbosyn" || tr.OtherData.RunID != res.RunID {
		t.Errorf("otherData = %+v, want tool turbosyn and run %s", tr.OtherData, res.RunID)
	}
	spans := map[string]int{}
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
		case "X":
			if ev.Dur == nil {
				t.Fatalf("event %d (%s): complete span without dur", i, ev.Name)
			}
			fallthrough
		case "i":
			if ev.TS < 0 || ev.PID == 0 || ev.TID == 0 {
				t.Fatalf("event %d (%s): bad ts/pid/tid", i, ev.Name)
			}
			if ev.Ph == "X" {
				spans[ev.Name]++
			}
		default:
			t.Fatalf("event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	for _, want := range []string{"probe", "component", "decompose", "map"} {
		if spans[want] == 0 {
			t.Errorf("trace has no %q spans (spans: %v)", want, spans)
		}
	}
}

// TestObservabilityBitIdentical: enabling every observability sink must not
// change the synthesis result — same phi, same LUT count, byte-identical
// realized BLIF.
func TestObservabilityBitIdentical(t *testing.T) {
	run := func(opts Options) (*Result, []byte) {
		t.Helper()
		res, err := Synthesize(obsCircuit(), opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, res.Realized); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	plain, plainBLIF := run(Options{})
	observed, obsBLIF := run(Options{
		Trace:            NewTraceRecorder(0),
		Progress:         func(ProgressSnapshot) {},
		ProgressInterval: time.Millisecond,
		Logger:           slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	if plain.Phi != observed.Phi || plain.LUTs != observed.LUTs {
		t.Fatalf("observability changed the result: phi %d->%d, luts %d->%d",
			plain.Phi, observed.Phi, plain.LUTs, observed.LUTs)
	}
	if !bytes.Equal(plainBLIF, obsBLIF) {
		t.Fatal("realized BLIF differs with observability enabled")
	}
}

// TestProgressFinalSnapshot: the snapshot stream ends with exactly one Done
// snapshot — delivered before Synthesize returns — carrying the run's final
// phi and work counters; an aborted run's Done snapshot carries the reason.
func TestProgressFinalSnapshot(t *testing.T) {
	collect := func() (func(ProgressSnapshot), func() []ProgressSnapshot) {
		var mu sync.Mutex
		var snaps []ProgressSnapshot
		sink := func(s ProgressSnapshot) { mu.Lock(); snaps = append(snaps, s); mu.Unlock() }
		get := func() []ProgressSnapshot { mu.Lock(); defer mu.Unlock(); return snaps }
		return sink, get
	}

	sink, get := collect()
	res, err := Synthesize(obsCircuit(), Options{
		Progress:         sink,
		ProgressInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	snaps := get()
	if len(snaps) == 0 {
		t.Fatal("no snapshots delivered")
	}
	var done int
	phases := map[string]bool{}
	for _, s := range snaps {
		if s.Done {
			done++
		}
		phases[s.Phase] = true
		if s.RunID != res.RunID {
			t.Fatalf("snapshot run id %q, want %q", s.RunID, res.RunID)
		}
	}
	if done != 1 || !snaps[len(snaps)-1].Done {
		t.Fatalf("want exactly one final Done snapshot, got %d (last done=%v)",
			done, snaps[len(snaps)-1].Done)
	}
	final := snaps[len(snaps)-1]
	if final.Err != "" {
		t.Fatalf("successful run's final snapshot has Err %q", final.Err)
	}
	if final.BestPhi != res.Phi {
		t.Errorf("final BestPhi = %d, result phi %d", final.BestPhi, res.Phi)
	}
	if final.Iterations == 0 || final.ProbesFinished == 0 {
		t.Errorf("final counters empty: %+v", final.Counters)
	}
	for _, want := range []string{"search", "map", "pack", "realize"} {
		if !phases[want] {
			t.Errorf("phase %q never reported (saw %v)", want, phases)
		}
	}

	// Abort path: an already-cancelled context still delivers the final Done
	// snapshot, with the abort reason.
	sink, get = collect()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = SynthesizeContext(ctx, obsCircuit(), Options{Progress: sink})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	snaps = get()
	if len(snaps) == 0 || !snaps[len(snaps)-1].Done {
		t.Fatal("aborted run delivered no final Done snapshot")
	}
	if last := snaps[len(snaps)-1]; last.Err == "" || !strings.Contains(last.Err, "cancel") {
		t.Fatalf("aborted run's final snapshot Err = %q", last.Err)
	}
}

// lockedBuffer serializes writes: the engine logs from the reporter and
// search goroutines concurrently.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lockedBuffer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *lockedBuffer) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestLoggerRunFields: every structured log line of a run carries the run id
// and circuit name, and a debug-level run logs per-probe verdicts.
func TestLoggerRunFields(t *testing.T) {
	var out lockedBuffer
	res, err := Synthesize(obsCircuit(), Options{
		Logger: slog.New(slog.NewJSONHandler(&out, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if rec["run"] != res.RunID {
			t.Fatalf("log line run = %v, want %s: %s", rec["run"], res.RunID, line)
		}
		if rec["circuit"] != "bbara" {
			t.Fatalf("log line circuit = %v: %s", rec["circuit"], line)
		}
		msgs = append(msgs, rec["msg"].(string))
	}
	joined := strings.Join(msgs, "|")
	for _, want := range []string{"synthesis start", "probe", "synthesis done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("no %q log line (messages: %s)", want, joined)
		}
	}
}
