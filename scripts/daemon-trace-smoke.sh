#!/bin/sh
# Daemon observability smoke (make daemon-trace-smoke): boots a real
# turbosynd with a journal and a debug mux, runs one generator job end to
# end over HTTP, and asserts the observability surfaces tell the truth:
#
#   1. GET /jobs/{id}/trace downloads a stitched Perfetto trace that passes
#      tracecheck and contains the daemon lifecycle spans (admission,
#      queue-wait, journal, dispatch) next to the engine synthesis spans.
#   2. GET /metrics exposes the lifecycle latency histograms and the
#      per-tenant gauges.
#   3. The -debug-addr mux answers /debug/pprof/ and /debug/vars.
#
# Artifacts daemon-trace.json and daemon-metrics.txt are left in the
# working directory for CI to upload (load the trace in
# https://ui.perfetto.dev). Exits nonzero on the first broken surface.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:18787}
DEBUG_ADDR=${DEBUG_ADDR:-127.0.0.1:18788}
BASE="http://$ADDR"
DEBUG_BASE="http://$DEBUG_ADDR"
WORKDIR=$(mktemp -d)
DAEMON_PID=""

fail() {
	echo "daemon-trace-smoke: FAIL: $*" >&2
	exit 1
}

cleanup() {
	if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
		kill -TERM "$DAEMON_PID" 2>/dev/null || true
		wait "$DAEMON_PID" 2>/dev/null || true
	fi
	rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "== build"
$GO build -o "$WORKDIR/turbosynd" ./cmd/turbosynd
$GO build -o "$WORKDIR/tracecheck" ./cmd/tracecheck

echo "== start turbosynd on $ADDR (debug mux on $DEBUG_ADDR)"
# -trace-ring large enough that a bbara run keeps every engine span (the
# default 1024 wraps and keeps only the most recent events, which is right
# for production memory bounds but would make this span grep flaky).
"$WORKDIR/turbosynd" -addr "$ADDR" -journal-dir "$WORKDIR/journal" \
	-debug-addr "$DEBUG_ADDR" -fleet 2 -trace-ring 32768 >"$WORKDIR/daemon.log" 2>&1 &
DAEMON_PID=$!

# Wait for the listener (the daemon binds before logging "serving").
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && { cat "$WORKDIR/daemon.log" >&2; fail "daemon did not become healthy"; }
	sleep 0.2
done

echo "== submit one generator job"
JOB=$(curl -fsS -X POST "$BASE/jobs" -H 'Content-Type: application/json' \
	-d '{"tenant":"smoke","generator":{"kind":"suite","name":"bbara"}}')
ID=$(echo "$JOB" | sed -n 's/.*"id":[ ]*"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "submit returned no id: $JOB"
echo "   job $ID"

echo "== follow the push progress stream to the terminal status"
# The NDJSON stream ends when the daemon publishes the terminal status; a
# 30s curl cap guards against a wedged stream.
curl -fsS --max-time 30 "$BASE/jobs/$ID/progress" >"$WORKDIR/progress.ndjson" || true
grep -q '"state":[ ]*"done"' "$WORKDIR/progress.ndjson" || {
	# Fall back to one status poll so the failure message shows the state.
	curl -fsS "$BASE/jobs/$ID" >&2 || true
	fail "job did not stream to state done (see progress.ndjson)"
}

echo "== fetch and validate the stitched trace"
curl -fsS "$BASE/jobs/$ID/trace" >daemon-trace.json
"$WORKDIR/tracecheck" daemon-trace.json
# Daemon lifecycle spans and engine synthesis spans, on one timeline.
for span in '"admission"' '"queue-wait"' '"journal"' '"dispatch"' '"flow"' '"probe"'; do
	grep -q "$span" daemon-trace.json || fail "trace lacks $span spans"
done
grep -q '"daemon"' daemon-trace.json || fail "trace lacks the daemon thread"

echo "== scrape /metrics"
curl -fsS "$BASE/metrics" >daemon-metrics.txt
for family in \
	turbosynd_admission_seconds_bucket \
	turbosynd_queue_wait_seconds_bucket \
	turbosynd_run_seconds_bucket \
	turbosynd_journal_append_seconds_bucket \
	turbosynd_tenant_served_total \
	turbosynd_fleet_occupancy; do
	grep -q "$family" daemon-metrics.txt || fail "/metrics lacks $family"
done
grep -q 'tenant="smoke"' daemon-metrics.txt || fail "/metrics lacks the smoke tenant"

echo "== poke the debug mux"
curl -fsS "$DEBUG_BASE/debug/pprof/" >/dev/null || fail "pprof index unreachable"
curl -fsS "$DEBUG_BASE/debug/vars" | grep -q '"turbosynd"' || fail "/debug/vars lacks turbosynd stats"

echo "== graceful shutdown"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || fail "daemon exited nonzero on SIGTERM drain"
DAEMON_PID=""

echo "daemon-trace-smoke: PASS (artifacts: daemon-trace.json, daemon-metrics.txt)"
