// External test package: internal/server imports turbosyn, so this
// cross-layer taxonomy test must live outside package turbosyn to avoid an
// import cycle.
package turbosyn_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"turbosyn"
	"turbosyn/internal/server"
)

// TestErrorTaxonomyThroughFacade pins the error-taxonomy contract end to
// end: a real engine error produced through the public facade survives the
// daemon's wire encoding (job-result JSON) and raises back into the same
// facade types, so errors.Is/As give identical answers on both sides of the
// wire.
func TestErrorTaxonomyThroughFacade(t *testing.T) {
	src := ".model m\n.inputs a\n.outputs z\n.latch n q 0\n.names a q n\n11 1\n.names q z\n1 1\n.end\n"
	c, err := turbosyn.ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, serr := turbosyn.SynthesizeContext(ctx, c, turbosyn.Options{})
	if serr == nil {
		t.Fatal("expired context produced no error")
	}

	// Local side: the facade alias matches.
	var ce *turbosyn.CancelError
	if !errors.As(serr, &ce) {
		t.Fatalf("facade error is not a *CancelError: %v", serr)
	}

	// Wire side: encode as the daemon would into job-result JSON, decode as
	// a client would, raise, and re-assert the same taxonomy.
	data, jerr := json.Marshal(server.EncodeError(serr))
	if jerr != nil {
		t.Fatal(jerr)
	}
	var info server.ErrorInfo
	if jerr := json.Unmarshal(data, &info); jerr != nil {
		t.Fatal(jerr)
	}
	wireErr := info.Err()
	var wce *turbosyn.CancelError
	if !errors.As(wireErr, &wce) {
		t.Fatalf("wire error is not a *CancelError: %v", wireErr)
	}
	if !errors.Is(wireErr, context.Canceled) {
		t.Errorf("wire error lost context.Canceled: %v", wireErr)
	}
	if wce.Phase != ce.Phase || wce.BestPhi != ce.BestPhi {
		t.Errorf("wire round-trip changed detail: local %+v, wire %+v", ce, wce)
	}

	// The remaining kinds raise to the facade aliases too.
	var be *turbosyn.BudgetError
	if !errors.As((&server.ErrorInfo{Kind: server.KindBudget, Resource: "r", Limit: 9}).Err(), &be) {
		t.Error("wire budget error is not a facade *BudgetError")
	}
	var ie *turbosyn.InternalError
	if !errors.As((&server.ErrorInfo{Kind: server.KindInternal, Op: "x"}).Err(), &ie) {
		t.Error("wire internal error is not a facade *InternalError")
	}
}
