// Package turbosyn reproduces "FPGA Synthesis with Retiming and Pipelining
// for Clock Period Minimization of Sequential Circuits" (Cong & Wu, DAC
// 1997): K-LUT technology mapping of sequential circuits that minimizes the
// clock period under retiming (TurboMap), or the maximum delay-to-register
// ratio under retiming plus pipelining with sequential functional
// decomposition (TurboSYN), plus the FlowSYN-s baseline used in the paper's
// evaluation.
//
// The typical flow:
//
//	c, _ := turbosyn.ReadBLIF(file)
//	res, _ := turbosyn.Synthesize(c, turbosyn.Options{K: 5})
//	fmt.Println(res.Phi, res.LUTs)      // achieved MDR ratio, LUT count
//	turbosyn.WriteBLIF(out, res.Realized)
//
// Synthesize K-bounds the input if needed, runs the selected algorithm,
// optionally packs LUTs for area, and realizes the target by retiming (and
// pipelining, for the ratio objective).
package turbosyn

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"turbosyn/internal/core"
	"turbosyn/internal/decomp"
	"turbosyn/internal/logic"
	"turbosyn/internal/mapper"
	"turbosyn/internal/netlist"
	"turbosyn/internal/obs"
	"turbosyn/internal/retime"
)

// Circuit is a sequential circuit in retiming-graph form; see the builder
// methods AddPI, AddGate, AddPO and the BLIF readers.
type Circuit = netlist.Circuit

// Fanin is one input connection of a node: driving node and register count.
type Fanin = netlist.Fanin

// NewCircuit returns an empty circuit.
func NewCircuit(name string) *Circuit { return netlist.NewCircuit(name) }

// ReadBLIF parses a BLIF netlist (.model/.inputs/.outputs/.names/.latch).
func ReadBLIF(r io.Reader) (*Circuit, error) { return netlist.ReadBLIF(r) }

// WriteBLIF writes a circuit in BLIF, expanding edge weights into latches.
func WriteBLIF(w io.Writer, c *Circuit) error { return netlist.WriteBLIF(w, c) }

// Algorithm selects the synthesis engine.
type Algorithm int

// Available algorithms, in increasing order of optimization power on
// sequential circuits.
const (
	// TurboSYN (default): label computation with retiming and sequential
	// functional decomposition; minimizes the MDR ratio (the paper's
	// contribution).
	TurboSYN Algorithm = iota
	// TurboMap: structural label computation with retiming only.
	TurboMap
	// FlowSYNS: cut at registers, map islands with FlowSYN, merge (the
	// baseline the paper compares against).
	FlowSYNS
)

func (a Algorithm) String() string {
	switch a {
	case TurboSYN:
		return "TurboSYN"
	case TurboMap:
		return "TurboMap"
	case FlowSYNS:
		return "FlowSYN-s"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Objective selects what Phi means.
type Objective int

// Objectives.
const (
	// MinRatio minimizes the MDR ratio: the clock period achievable when
	// both retiming and pipelining are allowed (the paper's Problem 1).
	MinRatio Objective = iota
	// MinPeriod minimizes the clock period under retiming alone
	// (behaviour-preserving; no added latency).
	MinPeriod
)

// Options configures Synthesize. The zero value requests the paper's
// defaults: TurboSYN, K = 5, Cmax = 15, PLD on, MDR objective, packing and
// realization enabled.
type Options struct {
	K         int
	Algorithm Algorithm
	Objective Objective
	// NoPLD disables the fast positive-loop detection (the ablation of
	// Section 4 runs with the conservative n^2 stopping rule instead).
	NoPLD bool
	// NoPack skips the area post-pass.
	NoPack bool
	// NoRelax skips the label-relaxation area optimization (TurboSYN).
	NoRelax bool
	// NoRealize skips the final retiming/pipelining step; Result.Realized
	// is then nil and only the mapped network is returned.
	NoRealize bool
	// Workers bounds the worker pool of the parallel label engine (and the
	// speculative probe fan-out of the phi search): 0 means
	// runtime.NumCPU(), 1 forces the sequential path. Results are
	// bit-identical for every setting.
	Workers int
	// NoWarmStart disables seeding the phi search's probes from
	// already-decided probes. Results are identical either way; the flag
	// benchmarks cold probes (see core.Options.NoWarmStart).
	NoWarmStart bool
	// NoWorklist disables the dirty-set worklist inside the label sweeps,
	// restoring full-membership passes. Results are bit-identical either
	// way; the flag benchmarks the work avoidance (see
	// core.Options.NoWorklist).
	NoWorklist bool
	// Advanced tuning; zero values mean the paper's settings.
	Cmax     int
	MaxH     int
	LowDepth int
	// TaskGrain is the dataflow scheduler's batching target in node updates
	// per dispatched task (0 = default of 64). Pure scheduling — results are
	// bit-identical for every setting (see core.Options.TaskGrain).
	TaskGrain int
	// CacheDir, when non-empty, persists the decomposition cache across runs
	// under this directory (created if missing): the engine loads the cache
	// log at start and appends this run's new outcomes at the end. A warm
	// cache skips the Roth-Karp searches and changes nothing but speed —
	// results are bit-identical to a cold run; corrupt or version-skewed
	// logs are discarded cleanly. See core.Options.CacheDir and DESIGN.md §9.
	CacheDir string

	// Resource budgets (0 = unlimited). By default exhausting a budget
	// degrades gracefully: the affected node keeps its structural cover, the
	// event is counted in Stats.Degradations, and the mapping stays valid —
	// at worst less optimized. See core.Options and DESIGN.md
	// ("Cancellation, budgets, and fault containment").

	// BDDNodeBudget caps the OBDD built to pre-screen each candidate bound
	// set during TurboSYN's sequential decomposition.
	BDDNodeBudget int
	// RothKarpBudget caps the bound-set candidates examined per
	// decomposition attempt.
	RothKarpBudget int
	// ArenaByteBudget caps each worker scratch arena's retained footprint.
	ArenaByteBudget int
	// Strict turns every budget degradation into a *BudgetError instead of
	// a silent quality loss.
	Strict bool

	// Observability (DESIGN.md §8). Everything below is off by default;
	// when off, each engine hook costs one pointer check and the results
	// are bit-identical with and without it.

	// Trace, when non-nil, records engine spans (probes, SCC component
	// tasks, expand/flow/decompose/PLD stages, cache traffic, degradations,
	// cancellation) into per-worker ring buffers. Export the retained spans
	// with Trace.WriteTrace after Synthesize returns — including after a
	// *CancelError or *InternalError abort; every goroutine is joined before
	// the public API returns, so the rings are always complete.
	Trace *TraceRecorder
	// Progress, when non-nil, receives rate-limited progress snapshots from
	// a dedicated reporter goroutine: one per ProgressInterval, one per
	// phase change, and exactly one final snapshot with Done set on every
	// exit path (success, cancellation, contained panic). The callback must
	// not call back into this package.
	Progress func(ProgressSnapshot)
	// ProgressInterval is the snapshot period (0 = 500ms).
	ProgressInterval time.Duration
	// Logger, when non-nil, receives structured run logs: phase changes and
	// totals at Info, per-probe verdicts at Debug. The run id and circuit
	// name are attached to every record.
	Logger *slog.Logger
	// RunID tags logs, traces and metrics of this run; empty means a fresh
	// random id is generated when any observability sink is configured.
	RunID string
}

// Observability types, re-exported from the internal obs package.
type (
	// TraceRecorder collects spans for Chrome/Perfetto trace export; create
	// one with NewTraceRecorder and pass it as Options.Trace.
	TraceRecorder = obs.Recorder
	// ProgressSnapshot is one progress report: run identity, phase, best
	// phi so far, live work counters, and Done/Err on the final snapshot.
	ProgressSnapshot = obs.Snapshot
	// Metrics republishes the latest ProgressSnapshot as an expvar value
	// and a Prometheus text-format http.Handler; wire its Update method as
	// Options.Progress.
	Metrics = obs.Metrics
)

// NewTraceRecorder returns a span recorder with the default per-worker ring
// capacity; ringCap overrides it when positive (each ring retains the most
// recent ringCap events, counting older ones as dropped).
func NewTraceRecorder(ringCap int) *TraceRecorder { return obs.NewRecorder(ringCap) }

// NewRunID returns a fresh random run id (12 hex digits).
func NewRunID() string { return obs.NewRunID() }

// Structured errors surfaced by Synthesize and Feasible. CancelError wraps
// context cancellation (errors.Is reaches context.Canceled /
// context.DeadlineExceeded through it) and carries the aborting phase, the
// best feasible phi proven before the abort and the partial statistics;
// InternalError is a panic contained at a worker boundary; BudgetError is a
// resource budget exhausted under Options.Strict.
type (
	CancelError   = core.CancelError
	InternalError = core.InternalError
	BudgetError   = core.BudgetError
)

// validate rejects malformed options up front with descriptive errors, so
// misconfiguration fails fast instead of surfacing as a panic or a silent
// misbehavior deep inside the label engine. Called after fill, so zero
// values have already been resolved to defaults.
func (o Options) validate() error {
	if o.K < 2 {
		return fmt.Errorf("turbosyn: K = %d is too small: a LUT needs at least 2 inputs", o.K)
	}
	if o.K > logic.MaxVars {
		return fmt.Errorf("turbosyn: K = %d exceeds the %d-input limit of the truth-table representation", o.K, logic.MaxVars)
	}
	if o.Workers < 0 {
		return fmt.Errorf("turbosyn: Workers = %d is negative; use 0 for all CPUs or 1 for sequential", o.Workers)
	}
	if o.TaskGrain < 0 {
		return fmt.Errorf("turbosyn: TaskGrain = %d is negative; use 0 for the default batching", o.TaskGrain)
	}
	if o.Cmax < 0 {
		return fmt.Errorf("turbosyn: Cmax = %d is negative; use 0 for the paper's default of 15", o.Cmax)
	}
	if o.Cmax > logic.MaxVars {
		return fmt.Errorf("turbosyn: Cmax = %d exceeds the %d-input limit of the truth-table representation", o.Cmax, logic.MaxVars)
	}
	if o.MaxH < 0 {
		return fmt.Errorf("turbosyn: MaxH = %d is negative; use 0 for the default of 4", o.MaxH)
	}
	if o.BDDNodeBudget < 0 || o.RothKarpBudget < 0 || o.ArenaByteBudget < 0 {
		return fmt.Errorf("turbosyn: resource budgets must be non-negative (0 = unlimited); got BDDNodeBudget=%d RothKarpBudget=%d ArenaByteBudget=%d",
			o.BDDNodeBudget, o.RothKarpBudget, o.ArenaByteBudget)
	}
	if o.ProgressInterval < 0 {
		return fmt.Errorf("turbosyn: ProgressInterval = %v is negative; use 0 for the default reporting period", o.ProgressInterval)
	}
	return nil
}

// Result is the outcome of Synthesize.
type Result struct {
	// Phi is the achieved objective value: minimum MDR ratio (MinRatio)
	// or minimum clock period (MinPeriod).
	Phi int
	// LUTs counts the K-LUTs of the mapped network (after packing).
	LUTs int
	// Mapped is the LUT network before retiming: cycle-accurate equivalent
	// to the input (given aligned initial states; see sim.CompareAligned).
	Mapped *Circuit
	// OrigOf maps Mapped's nodes to input-circuit nodes (stream identity),
	// -1 where none; used for initial-state alignment.
	OrigOf []int
	// Realized is the retimed (and, under MinRatio, pipelined) network
	// achieving clock period Phi; nil when NoRealize is set.
	Realized *Circuit
	// Latency lists per primary output the pipeline latency added during
	// realization (all zeros for MinPeriod).
	Latency []int
	// Stats reports the label-computation work.
	Stats core.Stats
	// Algorithm echoes the engine used.
	Algorithm Algorithm
	// RunID identifies the run in logs, traces and metrics; empty when no
	// observability sink was configured.
	RunID string
}

func (o Options) fill() Options {
	if o.K == 0 {
		o.K = 5
	}
	return o
}

// Synthesize runs the full flow on c: K-bounding (if needed), mapping with
// the selected algorithm and objective, LUT packing and realization by
// retiming/pipelining.
func Synthesize(c *Circuit, o Options) (*Result, error) {
	return SynthesizeContext(context.Background(), c, o)
}

// SynthesizeContext is Synthesize under a context. Cancellation or deadline
// expiry aborts the synthesis at the next engine checkpoint — the label
// engine polls an atomic flag at sweep granularity, so the abort lands well
// under a second even on large circuits — and returns a *CancelError that
// wraps the context's error and carries the aborting phase, the best
// feasible phi proven so far and the partial work statistics.
func SynthesizeContext(ctx context.Context, c *Circuit, o Options) (*Result, error) {
	o = o.fill()
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := c.Check(); err != nil {
		return nil, err
	}
	work, err := kBoundFor(c, o.K)
	if err != nil {
		return nil, err
	}
	return synthesizeOn(ctx, nil, c, work, o)
}

// kBoundFor returns c itself when already K-bounded, or the structural
// decomposition bounding every gate fanin by k.
func kBoundFor(c *Circuit, k int) (*Circuit, error) {
	if c.IsKBounded(k) {
		return c, nil
	}
	return decomp.KBound(c, k)
}

// coreOptions lowers the public Options into the core engine's option set.
// pg and logger are the run-scoped observability sinks (the logger already
// carries the run id); both may be nil.
func (o Options) coreOptions(pg *obs.Progress, logger *slog.Logger) core.Options {
	return core.Options{
		K:               o.K,
		Cmax:            o.Cmax,
		MaxH:            o.MaxH,
		LowDepth:        o.LowDepth,
		Decompose:       o.Algorithm == TurboSYN,
		PLD:             !o.NoPLD,
		Pipelined:       o.Objective == MinRatio,
		Relax:           !o.NoRelax,
		Workers:         o.Workers,
		NoWarmStart:     o.NoWarmStart,
		NoWorklist:      o.NoWorklist,
		TaskGrain:       o.TaskGrain,
		CacheDir:        o.CacheDir,
		BDDNodeBudget:   o.BDDNodeBudget,
		RothKarpBudget:  o.RothKarpBudget,
		ArenaByteBudget: o.ArenaByteBudget,
		Strict:          o.Strict,
		Trace:           o.Trace,
		Progress:        pg,
		Logger:          logger,
	}
}

// synthesizeOn runs the synthesis pipeline — observability setup, search,
// packing, realization — on the already K-bounded work derived from the
// caller's circuit c. When eng is non-nil the search runs on that engine,
// reusing its circuit analysis, decomposition cache and arena pool across
// calls; when nil, the package-level core entry points build a throwaway
// engine for this one run. Options must already be filled and validated.
func synthesizeOn(ctx context.Context, eng *core.Engine, c, work *Circuit, o Options) (out *Result, err error) {
	// Observability setup: one run id shared by logs, trace and progress; a
	// reporter goroutine that is always joined — with a final Done snapshot
	// delivered exactly once — before this function returns, on every path.
	runID := o.RunID
	if runID == "" && (o.Trace != nil || o.Progress != nil || o.Logger != nil) {
		runID = obs.NewRunID()
	}
	logger := o.Logger
	if logger != nil {
		logger = logger.With("run", runID, "circuit", c.Name)
	}
	var pg *obs.Progress
	if o.Progress != nil {
		pg = obs.NewProgress(runID, o.ProgressInterval, o.Progress)
		pg.Start()
	}
	defer func() {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		pg.Finish(msg) // nil-safe; no-op when o.Progress is nil
	}()
	if logger != nil {
		logger.Info("synthesis start", "algorithm", o.Algorithm.String(),
			"k", o.K, "workers", o.Workers, "nodes", c.NumNodes(), "gates", c.NumGates())
	}
	var res *core.Result
	switch o.Algorithm {
	case FlowSYNS:
		if o.Objective == MinPeriod {
			return nil, fmt.Errorf("turbosyn: FlowSYN-s supports only the MinRatio objective")
		}
		pg.SetPhase("flowsyns")
		res, err = mapper.FlowSYNSContext(ctx, work, o.K)
	default:
		opts := o.coreOptions(pg, logger)
		if eng != nil {
			res, err = eng.MinimizeContext(ctx, opts)
		} else {
			res, err = core.MinimizeContext(ctx, work, opts)
		}
	}
	if err != nil {
		if logger != nil {
			logger.Warn("synthesis aborted", "err", err)
		}
		return nil, err
	}
	pg.SetBestPhi(res.Phi)
	// The mapping is relative to the K-bounded circuit; stream alignment
	// must refer to the caller's circuit. KBound preserves node names for
	// original gates, so remap through names when we rebounded.
	origOf := res.OrigOf
	if work != c {
		origOf = remapOrigins(res.OrigOf, work, c)
	}
	out = &Result{
		Phi:       res.Phi,
		LUTs:      res.LUTs,
		Mapped:    res.Mapped,
		OrigOf:    origOf,
		Stats:     res.Stats,
		Algorithm: o.Algorithm,
		RunID:     runID,
	}
	// The packing and realization post-passes are fast relative to the
	// search but not free on large networks; honour cancellation between
	// phases so a deadline that expires after the search still aborts
	// promptly with the work done so far attributed to the right phase.
	pg.SetPhase("pack")
	if err := phaseCancelled(ctx, "pack", out); err != nil {
		return nil, err
	}
	if !o.NoPack {
		packed, packedOrig, err := mapper.Pack(res.Mapped, o.K, origOf)
		if err != nil {
			return nil, err
		}
		out.Mapped, out.OrigOf, out.LUTs = packed, packedOrig, packed.NumGates()
	}
	pg.SetPhase("realize")
	if err := phaseCancelled(ctx, "realize", out); err != nil {
		return nil, err
	}
	if !o.NoRealize {
		pipeline := o.Objective == MinRatio
		r, ok := retime.RetimeForPeriod(out.Mapped, out.Phi, pipeline)
		if !ok {
			return nil, fmt.Errorf("turbosyn: internal error: phi=%d not realizable", out.Phi)
		}
		realized, rerr := retime.Apply(out.Mapped, r)
		if rerr != nil {
			return nil, rerr
		}
		out.Realized = realized
		out.Latency = retime.Latency(out.Mapped, r)
	} else {
		out.Latency = make([]int, len(out.Mapped.POs))
	}
	if o.Trace != nil {
		out.Stats.TraceEvents, out.Stats.TraceDropped = o.Trace.Totals()
	}
	if logger != nil {
		logger.Info("synthesis done", "phi", out.Phi, "luts", out.LUTs,
			"iterations", out.Stats.Iterations, "degradations", out.Stats.Degradations)
	}
	return out, nil
}

// phaseCancelled converts a done context into a *CancelError for a
// post-search phase; the partial Result so far supplies the best phi and
// statistics.
func phaseCancelled(ctx context.Context, phase string, partial *Result) error {
	if err := ctx.Err(); err != nil {
		return &CancelError{Phase: phase, BestPhi: partial.Phi, Stats: partial.Stats, Err: err}
	}
	return nil
}

// remapOrigins converts stream origins pointing into the K-bounded circuit
// back to the caller's circuit via node names; K-bounding keeps original
// gate names and adds fresh '$'-suffixed helpers (which have no original
// counterpart and map to -1).
func remapOrigins(origOf []int, bounded, orig *Circuit) []int {
	out := make([]int, len(origOf))
	for i, b := range origOf {
		out[i] = -1
		if b < 0 {
			continue
		}
		name := bounded.Nodes[b].Name
		if name == "" {
			continue
		}
		if id := orig.IDByName(name); id >= 0 {
			out[i] = id
		}
	}
	return out
}

// Feasible answers the paper's decision problem directly: can circuit c be
// mapped with clock period (MinPeriod) or MDR ratio (MinRatio) at most phi?
// The returned statistics expose the label-computation work, which is how
// the PLD speedup of Section 4 is measured.
func Feasible(c *Circuit, phi int, o Options) (bool, core.Stats, error) {
	return FeasibleContext(context.Background(), c, phi, o)
}

// FeasibleContext is Feasible under a context (see SynthesizeContext).
func FeasibleContext(ctx context.Context, c *Circuit, phi int, o Options) (bool, core.Stats, error) {
	o = o.fill()
	if err := o.validate(); err != nil {
		return false, core.Stats{}, err
	}
	work, err := kBoundFor(c, o.K)
	if err != nil {
		return false, core.Stats{}, err
	}
	return core.FeasibleContext(ctx, work, phi, o.coreOptions(nil, o.Logger))
}

// ClockPeriod returns the clock period of a circuit as-is (unit delay per
// gate/LUT): the longest register-free path.
func ClockPeriod(c *Circuit) int { return retime.Period(c) }

// MDRRatio returns the exact maximum delay-to-register ratio of c as a
// reduced fraction (0/1 when acyclic).
func MDRRatio(c *Circuit) (num, den int64) { return retime.MaxCycleRatio(c) }

// KBound returns a functionally equivalent circuit with gate fanins at most
// k (structural tree decomposition of wide gates).
func KBound(c *Circuit, k int) (*Circuit, error) { return decomp.KBound(c, k) }
