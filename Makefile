# Build/test entry points. CI (.github/workflows/ci.yml) runs exactly these
# targets, so a green `make build test race` locally predicts a green CI run.

GO ?= go

.PHONY: build test test-full race bench-smoke

# Compile everything and vet it.
build:
	$(GO) build ./...
	$(GO) vet ./...

# Fast suite: skips the quick-tables smoke run and the heavier golden cases.
test:
	$(GO) test -short -timeout 10m ./...

# Full tier-1 suite, including the experiments smoke test.
test-full:
	$(GO) test -timeout 20m ./...

# Race detector over the fast suite (covers the parallel label engine, the
# sharded decomposition cache and the speculative search).
race:
	$(GO) test -race -short -timeout 15m ./...

# One iteration of the PLD, scaling and warm/cold-probe benchmarks; sanity,
# not statistics. The Scale benchmarks run j1/jN sub-benchmarks, so the
# output shows the parallel engine's speedup on whatever machine ran them.
# The text log is also rendered to BENCH_labels.json (ns/op, allocs/op and
# custom metrics per benchmark) for machine consumption.
bench-smoke:
	$(GO) test -bench 'BenchmarkPLD|BenchmarkScale1k|BenchmarkWarmProbes|BenchmarkColdProbes' -benchtime 1x -benchmem -run '^$$' -timeout 20m . | tee bench-smoke.txt
	$(GO) run ./cmd/benchjson -o BENCH_labels.json < bench-smoke.txt
