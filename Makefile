# Build/test entry points. CI (.github/workflows/ci.yml) runs exactly these
# targets, so a green `make build test race` locally predicts a green CI run.

GO ?= go

.PHONY: build lint vulncheck test test-full race chaos fuzz-smoke bench-smoke bench-scale bench-scale-100k trace-smoke cache-warm daemon-smoke bench-daemon daemon-trace-smoke

# Compile everything and vet it.
build:
	$(GO) build ./...
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is not vendored (no new module
# dependencies); CI installs it, and locally the target degrades to vet-only
# with a notice when the binary is absent.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; ran go vet only (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Known-vulnerability scan over the module and its (stdlib-only) call graph.
# Same degradation pattern as lint: CI installs govulncheck, locally the
# target prints a notice and succeeds when the binary is absent.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed; skipped (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Fast suite: skips the quick-tables smoke run and the heavier golden cases.
test:
	$(GO) test -short -timeout 10m ./...

# Full tier-1 suite, including the experiments smoke test.
test-full:
	$(GO) test -timeout 20m ./...

# Race detector over the fast suite (covers the parallel label engine, the
# sharded decomposition cache, the speculative search and the
# fault-injection scenarios).
race:
	$(GO) test -race -short -timeout 20m ./...

# Chaos suite: every fault-injection scenario (contained panics, mid-sweep
# cancellation, budget exhaustion, slow workers, randomized plans) plus the
# cancellation-latency contract and the persistent-cache interruption
# scenarios (cancelled runs and truncated flushes must never leave an
# unloadable cache log), repeated under the race detector.
chaos:
	$(GO) test -race -count 2 -timeout 20m \
		-run 'TestInjected|TestRandomizedChaos|TestRealBudgetDegradation|TestGenerousBudgets|TestCancelBeforeStart|TestFeasibleContextCancel|TestTraceFlush|TestCacheDirSurvives' \
		./internal/core
	$(GO) test -race -count 2 ./internal/faultinject ./internal/decomp/cachelog
	$(GO) test -race -timeout 10m -run 'TestSynthesizeCancel|TestSynthesizeDeadline|TestSynthesizeExpired' .
	$(GO) test -race -count 2 -timeout 15m -run 'TestChaos|TestJournal' ./internal/server
	$(GO) test -race -count 2 ./internal/jobqueue

# Daemon smoke: the end-to-end serving contract over real HTTP — a mixed
# batch of quick jobs from three tenants including one malformed BLIF (typed
# invalid failure) and one over-quota burst (429 + Retry-After), plus the
# restart-recovery and drain-refusal scenarios, all under the race detector.
# Every accepted job must reach a terminal state and the drain must leave
# accepted == done + failed + shed (see internal/server/server_test.go).
daemon-smoke:
	$(GO) test -race -count=1 -timeout 10m -v \
		-run 'TestDaemonSmoke|TestDaemonRecovery|TestDaemonDrainRejectsSubmit|TestDaemonByteIdentity|TestDaemonMemBudgetAdmission|TestProgressStream' \
		./internal/server
	$(GO) test -race -count=1 ./internal/jobqueue

# Daemon load benchmark: cmd/loadgen replays 1000 quick jobs per
# concurrency level against an in-process daemon (saturation sweep), and the
# p50/p99/throughput numbers are rendered to BENCH_daemon_new.json and gated
# against the committed BENCH_daemon.json. The time gate is loose (5x) —
# end-to-end daemon latency includes HTTP and scheduler noise that per-op
# engine benchmarks do not have — with matching tail gates: p99 growth
# beyond 5x or a retries explosion beyond 10x ((new+1)/(old+1)) fails the
# run even when the mean stayed flat, which is precisely how serving
# regressions present under load. Bytes/allocs gates are disabled (loadgen
# reports neither).
bench-daemon:
	$(GO) run ./cmd/loadgen -jobs 1000 -concurrency 8,32,128 | tee loadgen-daemon.txt
	$(GO) run ./cmd/benchjson -o BENCH_daemon_new.json < loadgen-daemon.txt
	$(GO) run ./cmd/benchjson -delta -max-time-ratio 5.0 -max-bytes-ratio 0 -max-allocs-ratio 0 -max-p99-ratio 5.0 -max-retries-ratio 10.0 BENCH_daemon.json BENCH_daemon_new.json
	mv BENCH_daemon_new.json BENCH_daemon.json

# Daemon observability smoke: boot a real turbosynd (journal, debug mux),
# run one job end to end over HTTP, then assert the observability surfaces
# are truthful — the stitched per-job trace downloads and passes tracecheck
# with the daemon spans present, /metrics exposes the lifecycle histograms
# and per-tenant gauges, and the pprof debug mux answers. Artifacts
# (daemon-trace.json, daemon-metrics.txt) are left for CI to upload; load
# the trace in https://ui.perfetto.dev.
daemon-trace-smoke:
	./scripts/daemon-trace-smoke.sh

# Warm-cache gate: run the suite slice twice against one cache directory and
# assert the second run serves >= 80% of its hits from persisted entries,
# skips >= 80% of the Roth-Karp scans, and emits byte-identical BLIF (see
# cachewarm_test.go). CI keys the directory on the cache-log format version
# (internal/decomp/cachelog.Version), so a format bump starts cold.
cache-warm:
	TURBOSYN_CACHE_DIR=$(CURDIR)/.decomp-cache $(GO) test -run TestCacheWarmSuite -count=1 -timeout 20m -v .

# Native fuzzing smoke over the BLIF reader: 30s of coverage-guided input
# generation against the parse-or-error-cleanly contract.
fuzz-smoke:
	$(GO) test -fuzz FuzzReadBLIF -fuzztime 30s -run '^$$' ./internal/netlist

# One iteration of the PLD, scaling and warm/cold-probe benchmarks; sanity,
# not statistics. The Scale benchmarks run j1/jN sub-benchmarks, so the
# output shows the parallel engine's speedup on whatever machine ran them.
# The text log is rendered to BENCH_new.json and gated against the committed
# BENCH_labels.json by `benchjson -delta` (per-benchmark ns/op, B/op and
# allocs/op ratios; generous time threshold because runners differ, tighter
# bytes/allocs thresholds because allocation is machine-independent — and a
# benchmark that was allocation-free may never start allocating) before
# replacing it. The second block does the same for the engine-reuse
# benchmarks (one-shot Minimize vs a reused Engine), gated against
# BENCH_engine.json — the artifact that shows the amortization actually
# amortizes.
bench-smoke:
	$(GO) test -bench 'BenchmarkPLD|BenchmarkScale1k|BenchmarkPipeline4k|BenchmarkWarmProbes|BenchmarkColdProbes' -benchtime 1x -benchmem -run '^$$' -timeout 20m . | tee bench-smoke.txt
	$(GO) run ./cmd/benchjson -o BENCH_new.json < bench-smoke.txt
	$(GO) run ./cmd/benchjson -delta -max-time-ratio 3.0 -max-bytes-ratio 1.5 -max-allocs-ratio 1.5 BENCH_labels.json BENCH_new.json
	mv BENCH_new.json BENCH_labels.json
	$(GO) test -bench 'BenchmarkEngineReuse' -benchtime 1x -benchmem -run '^$$' -timeout 20m . | tee bench-engine.txt
	$(GO) run ./cmd/benchjson -o BENCH_engine_new.json < bench-engine.txt
	$(GO) run ./cmd/benchjson -delta -max-time-ratio 3.0 -max-bytes-ratio 1.5 -max-allocs-ratio 1.5 BENCH_engine.json BENCH_engine_new.json
	mv BENCH_engine_new.json BENCH_engine.json

# Sample observability artifact: synthesize one suite circuit with tracing,
# logging and progress on, leaving trace.json for inspection (CI uploads it;
# load it in https://ui.perfetto.dev or chrome://tracing).
trace-smoke:
	$(GO) run ./cmd/benchgen -dir benchmarks
	$(GO) run ./cmd/turbosyn -trace trace.json -log-json -o /dev/null benchmarks/bbara.blif
	@$(GO) run ./cmd/tracecheck trace.json

# Scheduler scaling only: the Scale1k, deep-pipeline Pipeline4k and
# multi-core Scale10k j1-vs-jN pairs, captured with CPU/heap profiles and
# gated against the committed BENCH_scale.json by `benchjson -delta` (same
# thresholds as bench-smoke) before replacing it. On a multi-core runner the
# jN numbers must beat j1 — this is the artifact that shows whether they do.
# BenchmarkScale100k (~100k gates, minutes per pair) is not part of this
# gate: it skips itself unless TURBOSYN_BENCH_100K is set, so run it
# manually or nightly via bench-scale-100k below.
bench-scale:
	$(GO) test -bench 'BenchmarkScale1k|BenchmarkPipeline4k|BenchmarkScale10k' -benchtime 1x -benchmem -run '^$$' -timeout 30m \
		-cpuprofile bench-scale-cpu.pprof -memprofile bench-scale-mem.pprof . | tee bench-scale.txt
	$(GO) run ./cmd/benchjson -o BENCH_scale_new.json < bench-scale.txt
	$(GO) run ./cmd/benchjson -delta -max-time-ratio 3.0 -max-bytes-ratio 1.5 -max-allocs-ratio 1.5 BENCH_scale.json BENCH_scale_new.json
	mv BENCH_scale_new.json BENCH_scale.json

# Manual/nightly 100k-gate scale push: the Scale100k j1-vs-jN pair, profiles
# included, rendered to BENCH_scale100k.json (reported, not gated — the run
# is too long and too machine-sensitive for a ratio gate).
bench-scale-100k:
	TURBOSYN_BENCH_100K=1 $(GO) test -bench 'BenchmarkScale100k' -benchtime 1x -benchmem -run '^$$' -timeout 60m \
		-cpuprofile bench-scale-100k-cpu.pprof -memprofile bench-scale-100k-mem.pprof . | tee bench-scale-100k.txt
	$(GO) run ./cmd/benchjson -o BENCH_scale100k.json < bench-scale-100k.txt
