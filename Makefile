# Build/test entry points. CI (.github/workflows/ci.yml) runs exactly these
# targets, so a green `make build test race` locally predicts a green CI run.

GO ?= go

.PHONY: build test test-full race bench-smoke

# Compile everything and vet it.
build:
	$(GO) build ./...
	$(GO) vet ./...

# Fast suite: skips the quick-tables smoke run and the heavier golden cases.
test:
	$(GO) test -short -timeout 10m ./...

# Full tier-1 suite, including the experiments smoke test.
test-full:
	$(GO) test -timeout 20m ./...

# Race detector over the fast suite (covers the parallel label engine, the
# sharded decomposition cache and the speculative search).
race:
	$(GO) test -race -short -timeout 15m ./...

# One iteration of the PLD and scaling benchmarks; sanity, not statistics.
# The Scale benchmarks run j1/jN sub-benchmarks, so the output shows the
# parallel engine's speedup on whatever machine ran them.
bench-smoke:
	$(GO) test -bench 'BenchmarkPLD|BenchmarkScale1k' -benchtime 1x -run '^$$' -timeout 20m . | tee bench-smoke.txt
