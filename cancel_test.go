package turbosyn

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"turbosyn/internal/bench"
)

// TestSynthesizeCancelPromptly is the cancellation-latency contract: on a
// BenchmarkScale1k-sized circuit (~28s of sequential synthesis), cancelling
// the context must return a *CancelError wrapping context.Canceled well
// within a second of the cancel — the engine polls its abort flag at sweep
// granularity, never at run granularity.
func TestSynthesizeCancelPromptly(t *testing.T) {
	c := bench.ScaleFSM("BenchmarkScale1k", 24, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelAt := make(chan time.Time, 1)
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancelAt <- time.Now()
		cancel()
	}()
	res, err := SynthesizeContext(ctx, c, Options{})
	returned := time.Now()
	if err == nil {
		t.Fatal("cancelled synthesis returned no error (finished before the cancel?)")
	}
	if res != nil {
		t.Fatal("non-nil result alongside a cancellation error")
	}
	if latency := returned.Sub(<-cancelAt); latency > time.Second {
		t.Fatalf("abort latency %v exceeds 1s", latency)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *CancelError: %v", err)
	}
	if ce.Phase == "" {
		t.Error("CancelError.Phase empty")
	}
	if ce.Stats.Iterations == 0 {
		t.Error("no partial work recorded before a 100ms-deep abort")
	}
}

// TestSynthesizeDeadline covers the -timeout path: deadline expiry surfaces
// as a *CancelError wrapping context.DeadlineExceeded.
func TestSynthesizeDeadline(t *testing.T) {
	c := bench.ScaleFSM("BenchmarkScale1k", 24, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := SynthesizeContext(ctx, c, Options{})
	if err == nil {
		t.Fatal("deadline did not abort the synthesis")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline abort took %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap context.DeadlineExceeded: %v", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *CancelError: %v", err)
	}
}

// TestSynthesizeExpiredContext: a context that is already done must abort
// before any engine work, with BestPhi reporting that no probe ran.
func TestSynthesizeExpiredContext(t *testing.T) {
	c := buildLoop6(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SynthesizeContext(ctx, c, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *CancelError: %v", err)
	}
	if ce.BestPhi != -1 {
		t.Errorf("BestPhi = %d with no probe run, want -1", ce.BestPhi)
	}
}

// TestOptionsValidation: malformed Options must fail fast with descriptive
// errors before any synthesis work starts.
func TestOptionsValidation(t *testing.T) {
	c := buildLoop6(t)
	cases := []struct {
		name string
		mut  func(*Options)
		want string // substring of the error message
	}{
		{"K too small", func(o *Options) { o.K = 1 }, "too small"},
		{"K too large", func(o *Options) { o.K = 99 }, "exceeds"},
		{"negative workers", func(o *Options) { o.Workers = -1 }, "Workers"},
		{"negative task grain", func(o *Options) { o.TaskGrain = -2 }, "TaskGrain"},
		{"negative Cmax", func(o *Options) { o.Cmax = -1 }, "Cmax"},
		{"oversized Cmax", func(o *Options) { o.Cmax = 99 }, "Cmax"},
		{"negative MaxH", func(o *Options) { o.MaxH = -3 }, "MaxH"},
		{"negative budget", func(o *Options) { o.BDDNodeBudget = -1 }, "budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var opts Options
			tc.mut(&opts)
			_, err := Synthesize(c, opts)
			if err == nil {
				t.Fatal("invalid options accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if _, _, ferr := Feasible(c, 2, opts); ferr == nil {
				t.Error("Feasible accepted the same invalid options")
			}
		})
	}
}
