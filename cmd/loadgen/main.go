// Command loadgen is the turbosynd load-test harness: it replays a batch of
// concurrent quick synthesis jobs against a daemon — an external one via
// -url, or an in-process daemon it spins up itself — sweeping a list of
// client-concurrency levels to trace the saturation curve, and reports
// per-level p50/p99 job latency and throughput.
//
// Output is `go test -bench` format on stdout, so the standard pipeline
// publishes and gates it:
//
//	loadgen -jobs 1000 -concurrency 8,32,128 | benchjson -o BENCH_daemon.json
//	benchjson -delta BENCH_daemon.json new.json -max-time-ratio 5
//
// One line per level:
//
//	BenchmarkDaemonLoad/c32 1000 1234567 ns/op 1.2 p50-ms 9.8 p99-ms 810 jobs/sec 0 retries 0.4 qwait-ms 1.1 run-ms
//
// ns/op is mean end-to-end job latency (submit to terminal state); retries
// counts 429/503 re-submissions absorbed by the client's backoff — nonzero
// retries at high concurrency with zero failures is admission control doing
// its job. qwait-ms and run-ms split the server-side mean per level —
// scraped as /statz latency-summary deltas around the level — so a latency
// regression is attributable: queue-wait grows when the fleet saturates,
// run time grows when the engine (or its serving overhead) slowed down.
// Progress is followed over the daemon's push NDJSON stream, not polled, so
// measured latency excludes poll-interval quantization.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"turbosyn/internal/jobqueue"
	"turbosyn/internal/server"
)

// quickBLIF is the canonical quick job (2 LUTs, one latch): small enough
// that the daemon's serving overhead, not the engine, dominates latency.
const quickBLIF = ".model loadgen\n.inputs a\n.outputs z\n.latch n q 0\n.names a q n\n11 1\n.names q z\n1 1\n.end\n"

func main() {
	var (
		url         = flag.String("url", "", "daemon base URL (empty: spin up an in-process daemon)")
		jobs        = flag.Int("jobs", 1000, "jobs per concurrency level")
		concurrency = flag.String("concurrency", "8,32,64,128", "comma-separated client-concurrency sweep")
		tenants     = flag.Int("tenants", 4, "spread jobs across this many tenants")
		fleet       = flag.Int("fleet", 0, "in-process daemon fleet size (0 = all CPUs)")
		queueCap    = flag.Int("queue-cap", 256, "in-process daemon queue capacity (bounds admission; drives retries at saturation)")
		timeout     = flag.Duration("timeout", 5*time.Minute, "overall deadline per concurrency level")
	)
	flag.Parse()

	levels, err := parseLevels(*concurrency)
	if err != nil {
		fatal(err)
	}

	base := *url
	if base == "" {
		s, serr := server.New(server.Config{
			Fleet: *fleet,
			Queue: jobqueue.Config{Capacity: *queueCap},
			// Per-job trace rings would be pure overhead here: thousands of
			// short jobs, none of whose traces are ever fetched.
			TraceRingCap: -1,
		})
		if serr != nil {
			fatal(serr)
		}
		s.Start()
		defer s.Close()
		srv := server.NewHTTPServer("127.0.0.1:0", s.Handler())
		addr, shutdown, serr := server.ListenAndServeBackground(srv, nil)
		if serr != nil {
			fatal(serr)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			shutdown(ctx)
		}()
		base = "http://" + addr.String()
		fmt.Fprintf(os.Stderr, "loadgen: in-process daemon at %s (fleet %d, queue %d)\n", base, *fleet, *queueCap)
	}

	// Context lines so benchjson records the run environment.
	fmt.Printf("goos: %s\ngoarch: %s\npkg: turbosyn/cmd/loadgen\ncpu: %d logical\n",
		runtime.GOOS, runtime.GOARCH, runtime.NumCPU())

	for _, c := range levels {
		before := scrapeLatency(base)
		res, err := runLevel(base, *jobs, c, *tenants, *timeout)
		if err != nil {
			fatal(fmt.Errorf("concurrency %d: %w", c, err))
		}
		after := scrapeLatency(base)
		fmt.Printf("BenchmarkDaemonLoad/c%d %d %d ns/op %.2f p50-ms %.2f p99-ms %.1f jobs/sec %d retries %.2f qwait-ms %.2f run-ms\n",
			c, *jobs, res.mean.Nanoseconds(), ms(res.p50), ms(res.p99), res.throughput, res.retries,
			meanDeltaMS(before["queue_wait"], after["queue_wait"]),
			meanDeltaMS(before["run"], after["run"]))
		if res.failed > 0 {
			fatal(fmt.Errorf("concurrency %d: %d jobs failed", c, res.failed))
		}
	}
}

// scrapeLatency snapshots the daemon's cumulative /statz latency summaries
// (queue_wait, run, ...). The daemon's histograms never reset, so per-level
// figures come from before/after deltas. A scrape failure (old daemon, URL
// unreachable between levels) degrades to an empty map — the split columns
// then read 0 rather than aborting the sweep.
func scrapeLatency(base string) map[string]server.LatencySummary {
	resp, err := http.Get(base + "/statz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var st struct {
		Latency map[string]server.LatencySummary `json:"latency"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return nil
	}
	return st.Latency
}

// meanDeltaMS is the mean latency, in ms, of the observations one level
// added to a cumulative summary.
func meanDeltaMS(before, after server.LatencySummary) float64 {
	n := after.Count - before.Count
	if n == 0 {
		return 0
	}
	return (after.SumSeconds - before.SumSeconds) / float64(n) * 1e3
}

type levelResult struct {
	mean, p50, p99 time.Duration
	throughput     float64 // completed jobs per second of wall time
	retries        int64
	failed         int
}

// runLevel replays jobs quick submissions through conc client workers and
// aggregates the latency distribution.
func runLevel(base string, jobs, conc, tenants int, timeout time.Duration) (*levelResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	latencies := make([]time.Duration, jobs)
	var failed atomic.Int64
	var retries atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, conc)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := server.NewClient(base, "")
			cl.MaxAttempts = 50 // saturation sheds hard; keep retrying within the level deadline
			cl.BaseBackoff = 20 * time.Millisecond
			defer func() { retries.Add(cl.Retries()) }()
			for {
				i := int(next.Add(1)) - 1
				if i >= jobs {
					return
				}
				spec := server.JobSpec{
					Tenant: fmt.Sprintf("tenant-%d", i%tenants),
					BLIF:   quickBLIF,
				}
				t0 := time.Now()
				id, err := cl.Submit(ctx, spec)
				if err != nil {
					errs <- fmt.Errorf("job %d: %w", i, err)
					return
				}
				// Push stream, not polling: the terminal status arrives the
				// moment the daemon publishes it, so the measured latency is
				// the daemon's, not the poll interval's.
				st, err := cl.Stream(ctx, id, nil)
				if err != nil {
					errs <- fmt.Errorf("job %d (%s): %w", i, id, err)
					return
				}
				latencies[i] = time.Since(t0)
				if st.State != server.StateDone {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, d := range latencies {
		sum += d
	}
	return &levelResult{
		mean:       sum / time.Duration(jobs),
		p50:        latencies[jobs/2],
		p99:        latencies[jobs*99/100],
		throughput: float64(jobs) / wall.Seconds(),
		retries:    retries.Load(),
		failed:     int(failed.Load()),
	}, nil
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
