// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the synthetic benchmark suite; the experiment
// ids follow the index in DESIGN.md and the outputs are recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-table 1|2|pld|scale|k|all] [-k 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"turbosyn/internal/experiments"
)

func main() {
	table := flag.String("table", "all", "comma-separated experiments: 1, 2, pld, period, scale, k, all")
	k := flag.Int("k", 5, "LUT input count (the paper uses 5)")
	quick := flag.Bool("quick", false, "reduced workloads (smoke test)")
	flag.Parse()

	want := map[string]bool{}
	for _, t := range strings.Split(*table, ",") {
		want[strings.TrimSpace(t)] = true
	}
	cfg := experiments.Config{K: *k, Quick: *quick, Out: os.Stdout}
	run := func(name string, fn func(experiments.Config) error) {
		if !want["all"] && !want[name] {
			return
		}
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: table %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stdout)
	}
	run("1", experiments.Table1)
	run("2", experiments.Table2)
	run("pld", experiments.TablePLD)
	run("period", experiments.TablePeriod)
	run("scale", experiments.TableScale)
	run("k", experiments.TableK)
}
