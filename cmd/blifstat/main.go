// Command blifstat prints structural statistics of BLIF circuits: gate and
// register counts, fanin bounds, clock period, loop structure and the exact
// MDR ratio — the quantities the synthesis algorithms optimize.
package main

import (
	"flag"
	"fmt"
	"os"

	"turbosyn"
	"turbosyn/internal/graph"
	"turbosyn/internal/netlist"
	"turbosyn/internal/retime"
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: blifstat <file.blif>...")
		os.Exit(2)
	}
	fmt.Printf("%-16s %7s %5s %5s %7s %7s %7s %9s\n",
		"circuit", "gates", "ffs", "pis", "pos", "period", "sccs", "mdr")
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blifstat:", err)
			os.Exit(1)
		}
		c, err := turbosyn.ReadBLIF(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "blifstat: %s: %v\n", name, err)
			os.Exit(1)
		}
		print(c)
	}
}

func print(c *netlist.Circuit) {
	s := graph.StronglyConnected(c.Adj())
	loops := 0
	for comp := range s.Members {
		if !s.IsTrivial(c.Adj(), comp) {
			loops++
		}
	}
	num, den := retime.MaxCycleRatio(c)
	fmt.Printf("%-16s %7d %5d %5d %7d %7d %7d %6d/%d\n",
		c.Name, c.NumGates(), c.NumFFs(), len(c.PIs), len(c.POs),
		retime.Period(c), loops, num, den)
}
