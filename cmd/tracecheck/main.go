// Command tracecheck validates a Chrome/Perfetto trace file written by
// `turbosyn -trace` or served from `turbosynd`'s GET /jobs/{id}/trace, and
// prints a per-span-name event census. It exists so CI can prove an
// uploaded trace artifact is loadable before anyone drags it into
// ui.perfetto.dev, and doubles as a quick way to see what a run did:
//
//	tracecheck trace.json
//
// The validation itself lives in internal/traceval (shared with the daemon
// tests). Exit status is nonzero when the file is not valid trace JSON,
// contains no events, or contains an event that Perfetto would reject
// (unknown phase, complete event without a duration, negative timestamp).
package main

import (
	"fmt"
	"os"
	"sort"

	"turbosyn/internal/traceval"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	tr, err := traceval.Check(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", os.Args[1], err))
	}

	counts := tr.Counts()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d events ok\n", os.Args[1], len(tr.TraceEvents))
	for _, n := range names {
		fmt.Printf("  %-12s %6d\n", n, counts[n])
	}
	if d, ok := tr.OtherData["droppedEvents"]; ok {
		fmt.Printf("  dropped      %6v\n", d)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
