// Command tracecheck validates a Chrome/Perfetto trace file written by
// `turbosyn -trace` and prints a per-span-name event census. It exists so CI
// can prove the uploaded trace artifact is loadable before anyone drags it
// into ui.perfetto.dev, and doubles as a quick way to see what a run did:
//
//	tracecheck trace.json
//
// Exit status is nonzero when the file is not valid trace JSON, contains no
// events, or contains an event that Perfetto would reject (unknown phase,
// complete event without a duration, negative timestamp).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// event mirrors the subset of the Trace Event Format the recorder emits:
// "M" metadata, "X" complete spans, "i" instants.
type event struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	PID  *int64   `json:"pid"`
	TID  *int64   `json:"tid"`
}

type trace struct {
	TraceEvents []event        `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

func check(data []byte) (*trace, error) {
	var tr trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("not valid trace JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return nil, fmt.Errorf("trace has no events")
	}
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			// Metadata events carry no timestamp.
		case "X":
			if ev.Dur == nil {
				return nil, fmt.Errorf("event %d (%s): complete span without dur", i, ev.Name)
			}
			fallthrough
		case "i":
			if ev.Ts == nil || *ev.Ts < 0 {
				return nil, fmt.Errorf("event %d (%s): missing or negative ts", i, ev.Name)
			}
			if ev.PID == nil || ev.TID == nil {
				return nil, fmt.Errorf("event %d (%s): missing pid/tid", i, ev.Name)
			}
		default:
			return nil, fmt.Errorf("event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	return &tr, nil
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	tr, err := check(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", os.Args[1], err))
	}

	counts := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "M" {
			counts[ev.Name]++
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d events ok\n", os.Args[1], len(tr.TraceEvents))
	for _, n := range names {
		fmt.Printf("  %-12s %6d\n", n, counts[n])
	}
	if d, ok := tr.OtherData["droppedEvents"]; ok {
		fmt.Printf("  dropped      %6v\n", d)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
