// Command retime applies Leiserson–Saxe retiming to a BLIF circuit without
// changing the logic: minimum clock period under pure retiming, or under
// retiming plus pipelining (-pipeline, which adds I/O latency and is bounded
// only by the loops' MDR ratio).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"turbosyn"
	"turbosyn/internal/netlist"
	"turbosyn/internal/retime"
)

func main() {
	var (
		pipeline = flag.Bool("pipeline", false, "allow pipelining (extra output latency)")
		out      = flag.String("o", "", "output file (default stdout)")
		statOnly = flag.Bool("n", false, "report the achievable period, do not write a netlist")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: retime [flags] <in.blif | ->")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	c, err := turbosyn.ReadBLIF(in)
	if err != nil {
		fatal(err)
	}
	report(c, *pipeline, *statOnly, *out)
}

func report(c *netlist.Circuit, pipeline, statOnly bool, out string) {
	num, den := retime.MaxCycleRatio(c)
	var (
		phi int
		r   []int
	)
	if pipeline {
		phi, r = retime.MinPeriodPipelined(c)
	} else {
		phi, r = retime.MinPeriod(c)
	}
	fmt.Fprintf(os.Stderr, "%s: period %d -> %d (MDR %d/%d, %d registers)\n",
		c.Name, retime.Period(c), phi, num, den, c.NumFFs())
	if pipeline {
		fmt.Fprintf(os.Stderr, "added latency per output: %v\n", retime.Latency(c, r))
	}
	if statOnly {
		return
	}
	d, err := retime.Apply(c, r)
	if err != nil {
		fatal(err)
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := turbosyn.WriteBLIF(w, d); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "retime:", err)
	os.Exit(1)
}
