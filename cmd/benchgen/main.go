// Command benchgen writes the synthetic evaluation suite (12 MCNC-FSM-style
// + 4 ISCAS'89-style circuits; see internal/bench) as BLIF files, one per
// circuit, into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"turbosyn"
	"turbosyn/internal/bench"
)

func main() {
	dir := flag.String("dir", "benchmarks", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	for _, cs := range bench.Suite() {
		path := filepath.Join(*dir, cs.Name+".blif")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := turbosyn.WriteBLIF(f, cs.Circuit); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%-24s %s: %d gates, %d FFs\n", path, cs.Class,
			cs.Circuit.NumGates(), cs.Circuit.NumFFs())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
