// Command simcheck gathers simulation evidence that two BLIF circuits are
// functionally equivalent.
//
//	simcheck [-cycles 2000] [-warmup N] [-latency L] [-seed 1] golden.blif candidate.blif
//
// Combinational pairs with few inputs are checked exhaustively. Sequential
// pairs are co-simulated on random vectors; when the candidate's nodes carry
// the golden circuit's names (true for netlists produced by cmd/turbosyn
// before retiming), the candidate's registers are first seeded from the
// golden circuit's streams ("-align", default) — the initial-state
// computation that mapping across registers requires. Disable with
// -align=false to compare raw all-zero resets.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"turbosyn"
	"turbosyn/internal/netlist"
	"turbosyn/internal/sim"
)

func main() {
	var (
		cycles  = flag.Int("cycles", 2000, "random vectors to simulate")
		warmup  = flag.Int("warmup", 16, "cycles before outputs are compared")
		latency = flag.Int("latency", 0, "candidate output delay in cycles (pipelined candidates)")
		seed    = flag.Int64("seed", 1, "random seed")
		align   = flag.Bool("align", true, "seed candidate registers from golden streams via node names")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: simcheck [flags] golden.blif candidate.blif")
		flag.PrintDefaults()
		os.Exit(2)
	}
	golden := read(flag.Arg(0))
	cand := read(flag.Arg(1))

	if golden.NumFFs() == 0 && cand.NumFFs() == 0 && len(golden.PIs) <= 14 {
		eq, err := sim.CombEquivalent(golden, cand, 14)
		if err != nil {
			fatal(err)
		}
		verdict(eq, "exhaustive combinational check")
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	vecs := sim.RandomVectors(rng, *cycles, len(golden.PIs))
	if *align && *latency == 0 {
		origOf, ok := originsByName(golden, cand)
		if ok {
			err := sim.CompareAligned(golden, cand, origOf, vecs, *warmup)
			if err != nil {
				fmt.Fprintln(os.Stderr, "simcheck:", err)
				verdict(false, "aligned sequential co-simulation")
			}
			verdict(true, fmt.Sprintf("aligned sequential co-simulation (%d cycles)", *cycles))
			return
		}
		fmt.Fprintln(os.Stderr, "simcheck: name-based alignment unavailable; falling back to raw reset comparison")
	}
	if err := sim.Compare(golden, cand, vecs, *warmup, *latency); err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		verdict(false, "sequential co-simulation")
	}
	verdict(true, fmt.Sprintf("sequential co-simulation (%d cycles, warmup %d, latency %d)",
		*cycles, *warmup, *latency))
}

// originsByName maps candidate nodes to golden nodes sharing a name. It
// fails (ok=false) when some register-sourcing candidate node has no match.
func originsByName(golden, cand *netlist.Circuit) ([]int, bool) {
	origOf := make([]int, cand.NumNodes())
	sources := make([]bool, cand.NumNodes())
	for _, n := range cand.Nodes {
		for _, f := range n.Fanins {
			if f.Weight > 0 {
				sources[f.From] = true
			}
		}
	}
	for i, n := range cand.Nodes {
		origOf[i] = -1
		name := strings.TrimSuffix(n.Name, "$po")
		if name != "" {
			if id := golden.IDByName(name); id >= 0 {
				origOf[i] = id
			} else if id := golden.IDByName(name + "$po"); id >= 0 {
				origOf[i] = id
			}
		}
		if sources[i] && origOf[i] < 0 {
			return nil, false
		}
	}
	return origOf, true
}

func read(path string) *netlist.Circuit {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	c, err := turbosyn.ReadBLIF(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	return c
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simcheck:", err)
	os.Exit(2)
}

func verdict(eq bool, how string) {
	if eq {
		fmt.Printf("EQUIVALENT (%s)\n", how)
		os.Exit(0)
	}
	fmt.Printf("NOT EQUIVALENT (%s)\n", how)
	os.Exit(1)
}
