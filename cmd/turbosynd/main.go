// Command turbosynd is the multi-tenant synthesis daemon: an HTTP/JSON
// service that accepts synthesis jobs (inline BLIF or a generator spec),
// runs them on a bounded worker fleet with tenant-fair scheduling and
// admission control, journals every accepted job for crash recovery, and
// drains gracefully on SIGTERM/SIGINT.
//
// Usage:
//
//	turbosynd -addr :8787 -journal-dir /var/lib/turbosynd [-fleet N] [flags]
//
// API (see DESIGN.md §12 and the README quickstart):
//
//	POST /jobs               submit a job           -> 202 {"id": ...}
//	GET  /jobs/{id}          status                 -> JobStatus JSON
//	GET  /jobs/{id}/result   finished netlist       -> BLIF text
//	GET  /jobs/{id}/progress live progress          -> push NDJSON stream
//	GET  /jobs/{id}/trace    stitched Perfetto trace (terminal jobs)
//	GET  /healthz /statz /metrics                   health, stats, Prometheus
//
// With -debug-addr set, a second listener serves net/http/pprof and expvar
// (/debug/pprof/, /debug/vars) — bind it to localhost or a management
// network, never the tenant-facing address.
//
// Over-capacity, over-quota, over-rate and over-memory submissions answer
// 429 with a Retry-After; a draining daemon answers 503. Accepted jobs
// survive a crash: on restart they are re-run from the journal or reported
// failed — never silently lost.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"turbosyn/internal/jobqueue"
	"turbosyn/internal/obs"
	"turbosyn/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8787", "HTTP listen address")
		fleet      = flag.Int("fleet", 0, "concurrent jobs (0 = all CPUs)")
		workersPer = flag.Int("job-workers", 1, "engine workers per job (fleet provides the parallelism)")
		queueCap   = flag.Int("queue-cap", 256, "max queued jobs across all tenants")
		perTenant  = flag.Int("tenant-quota", 0, "max queued+running jobs per tenant (0 = unlimited)")
		ratePerSec = flag.Float64("tenant-rate", 0, "per-tenant admission rate, jobs/sec (0 = unlimited)")
		rateBurst  = flag.Int("tenant-burst", 0, "per-tenant admission burst (default: ceil of -tenant-rate)")
		memBudget  = flag.Int64("mem-budget", 0, "total arena-byte headroom across admitted jobs (0 = unlimited)")
		perJobMem  = flag.Int("job-arena", 64<<20, "arena-byte reservation and budget per job")
		defTimeout = flag.Duration("job-timeout", time.Minute, "default per-job timeout")
		maxTimeout = flag.Duration("max-job-timeout", 10*time.Minute, "cap on client-requested timeouts")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "graceful-drain deadline on SIGTERM; in-flight jobs still running after it are cancelled (retryably)")
		journalDir = flag.String("journal-dir", "", "crash-safe job journal directory (empty: jobs do not survive restarts)")
		cacheDir   = flag.String("decomp-cache", "", "shared persistent decomposition cache directory")
		traceCap   = flag.Int("trace-ring", 0, "per-ring event capacity of each job's stitched trace (0 = 1024, -1 disables /jobs/{id}/trace)")
		debugAddr  = flag.String("debug-addr", "", "opt-in debug listen address serving net/http/pprof and expvar (bind to localhost or a management network)")
		logJSON    = flag.Bool("log-json", false, "structured logs as JSON instead of text")
		verbose    = flag.Bool("v", false, "debug-level logging")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	hopts := &slog.HandlerOptions{Level: level}
	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, hopts))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, hopts))
	}

	s, err := server.New(server.Config{
		Fleet:         *fleet,
		WorkersPerJob: *workersPer,
		Queue: jobqueue.Config{
			Capacity:   *queueCap,
			PerTenant:  *perTenant,
			RatePerSec: *ratePerSec,
			Burst:      *rateBurst,
		},
		MemBudget:      *memBudget,
		PerJobArena:    *perJobMem,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drainGrace,
		JournalDir:     *journalDir,
		CacheDir:       *cacheDir,
		TraceRingCap:   *traceCap,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbosynd:", err)
		os.Exit(1)
	}
	s.Start()

	srv := server.NewHTTPServer(*addr, s.Handler())
	bound, shutdownHTTP, err := server.ListenAndServeBackground(srv, func(err error) {
		logger.Error("http serve failed", "err", err.Error())
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbosynd:", err)
		os.Exit(1)
	}
	logger.Info("turbosynd serving", "addr", bound.String(), "journal", *journalDir)

	// Opt-in debug mux: pprof + expvar, on its own listener so profiles and
	// process vars never ride the tenant-facing address. The daemon's Stats
	// snapshot is published idempotently under "turbosynd".
	if *debugAddr != "" {
		unpublish := obs.PublishExpvar("turbosynd", func() any { return s.Stats() })
		defer unpublish()
		dsrv := server.NewHTTPServer(*debugAddr, server.DebugHandler())
		dbound, shutdownDebug, err := server.ListenAndServeBackground(dsrv, func(err error) {
			logger.Error("debug serve failed", "err", err.Error())
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "turbosynd:", err)
			os.Exit(1)
		}
		defer func() {
			dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Second)
			shutdownDebug(dctx)
			dcancel()
		}()
		logger.Info("debug mux serving", "addr", dbound.String())
	}

	// SIGTERM/SIGINT: stop admitting (503), finish what is queued and
	// running within the drain grace, shed or cancel the rest — every
	// accepted job reaches a terminal, journaled state before exit.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-sigCtx.Done()
	logger.Info("signal received; draining", "grace", (*drainGrace).String())

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	// Stop the listener first so clients see connection refused (and retry
	// elsewhere) rather than queueing requests into a dying process.
	httpCtx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	shutdownHTTP(httpCtx)
	hcancel()
	if err := s.Drain(drainCtx); err != nil {
		logger.Error("drain incomplete", "err", err.Error())
		os.Exit(1)
	}
	st := s.Stats()
	logger.Info("drained clean", "done", st.Done, "failed", st.Failed, "shed", st.Shed)
}
