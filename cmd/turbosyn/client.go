package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"turbosyn/internal/server"
)

// clientConfig carries the -server client-mode settings lowered from the
// CLI flags.
type clientConfig struct {
	base     string
	tenant   string
	priority int
	files    []string
	out      string
	timeout  time.Duration

	k         int
	alg       string
	objective string
	noPack    bool
	mapped    bool
	strict    bool
	bddBudget int
	rkBudget  int
}

// runClient is -server mode: each input becomes a daemon job (same option
// surface as a local run), submitted with the retrying client, and the
// returned netlists stream to -o/stdout exactly like local synthesis. Shed
// load (429/503) is retried with jittered exponential backoff inside
// Client.Submit; a failed job surfaces its typed error and exits non-zero.
func runClient(cfg clientConfig) {
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancelSignals()

	cl := server.NewClient(cfg.base, cfg.tenant)
	opts := server.JobOptions{
		K: cfg.k, Algorithm: cfg.alg, Objective: cfg.objective,
		NoPack: cfg.noPack, Mapped: cfg.mapped, Strict: cfg.strict,
		BDDNodeBudget: cfg.bddBudget, RothKarpBudget: cfg.rkBudget,
	}
	for _, name := range cfg.files {
		var in io.Reader = os.Stdin
		if name != "-" {
			f, err := os.Open(name)
			if err != nil {
				fatal(err)
			}
			in = f
		}
		blif, err := io.ReadAll(in)
		if c, ok := in.(io.Closer); ok {
			c.Close()
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		spec := server.JobSpec{
			Tenant:    cfg.tenant,
			Priority:  cfg.priority,
			TimeoutMS: int(cfg.timeout / time.Millisecond),
			Options:   opts,
			BLIF:      string(blif),
		}
		start := time.Now()
		st, netlist, err := cl.Run(ctx, spec)
		if err != nil {
			if st != nil && st.Error != nil {
				fmt.Fprintf(os.Stderr, "turbosyn: %s: job %s %s (%s, retryable=%v): %s\n",
					name, st.ID, st.State, st.Error.Kind, st.Error.Retryable, st.Error.Message)
				os.Exit(1)
			}
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if r := st.Result; r != nil {
			fmt.Fprintf(os.Stderr, "%s: job %s phi=%d luts=%d latency=%v server=%vms wall=%v\n",
				r.Circuit, st.ID, r.Phi, r.LUTs, r.Latency, r.RunMS,
				time.Since(start).Round(time.Millisecond))
		}
		if cfg.out != "" {
			if err := os.WriteFile(cfg.out, netlist, 0o644); err != nil {
				fatal(err)
			}
		} else if _, err := os.Stdout.Write(netlist); err != nil {
			fatal(err)
		}
	}
}
