// Command turbosyn maps a BLIF sequential circuit onto K-LUTs with the
// selected algorithm and writes the result as BLIF.
//
// Usage:
//
//	turbosyn -k 5 -alg turbosyn [-objective ratio|period] [-o out.blif] in.blif
//
// Reading from stdin ("-") is supported. The tool prints a one-line summary
// (phi, LUT count, latency) on stderr and the mapped-and-realized netlist on
// stdout or -o.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"turbosyn"
	"turbosyn/internal/prof"
)

func main() {
	var (
		k          = flag.Int("k", 5, "LUT input count")
		alg        = flag.String("alg", "turbosyn", "algorithm: turbosyn | turbomap | flowsyns")
		objective  = flag.String("objective", "ratio", "objective: ratio (retiming+pipelining) | period (retiming only)")
		out        = flag.String("o", "", "output file (default stdout)")
		noPack     = flag.Bool("nopack", false, "skip LUT packing")
		raw        = flag.Bool("mapped", false, "emit the mapped network before retiming instead of the realized one")
		noPLD      = flag.Bool("nopld", false, "disable positive loop detection (n^2 stopping rule)")
		noWarm     = flag.Bool("nowarm", false, "disable warm-started search probes (cold binary search)")
		workers    = flag.Int("j", 0, "worker pool size (0 = all CPUs, 1 = sequential); results are identical for every setting")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (samples carry a per-stage 'phase' label)")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file after synthesis")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: turbosyn [flags] <in.blif | ->")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// Tag engine goroutines with their current stage so the profile can
		// be split with `go tool pprof -tagfocus phase=flow` etc.
		prof.Enable(true)
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	c, err := turbosyn.ReadBLIF(in)
	if err != nil {
		fatal(err)
	}

	opts := turbosyn.Options{K: *k, NoPack: *noPack, NoPLD: *noPLD, NoWarmStart: *noWarm, Workers: *workers}
	switch *alg {
	case "turbosyn":
		opts.Algorithm = turbosyn.TurboSYN
	case "turbomap":
		opts.Algorithm = turbosyn.TurboMap
	case "flowsyns":
		opts.Algorithm = turbosyn.FlowSYNS
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}
	switch *objective {
	case "ratio":
		opts.Objective = turbosyn.MinRatio
	case "period":
		opts.Objective = turbosyn.MinPeriod
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
	opts.NoRealize = *raw

	start := time.Now()
	res, err := turbosyn.Synthesize(c, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"%s: %v phi=%d luts=%d latency=%v cpu=%v (in: %d gates, %d FFs)\n",
		c.Name, res.Algorithm, res.Phi, res.LUTs, res.Latency,
		time.Since(start).Round(time.Millisecond), c.NumGates(), c.NumFFs())

	target := res.Realized
	if *raw || target == nil {
		target = res.Mapped
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := turbosyn.WriteBLIF(w, target); err != nil {
		fatal(err)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained allocation
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "turbosyn:", err)
	os.Exit(1)
}
