// Command turbosyn maps BLIF sequential circuits onto K-LUTs with the
// selected algorithm and writes the results as BLIF.
//
// Usage:
//
//	turbosyn -k 5 -alg turbosyn [-objective ratio|period] [-repeat N] [-o out.blif] in.blif [more.blif ...]
//
// Reading from stdin ("-") is supported. The tool prints a one-line summary
// per input (phi, LUT count, latency) on stderr — plus an aggregate line when
// mapping several files or repeating runs — and the mapped-and-realized
// netlists on stdout or -o. Each input gets one reusable engine: the circuit
// analysis, decomposition cache and worker arenas are built once and shared
// by every -repeat run of that file.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"turbosyn"
	"turbosyn/internal/prof"
	"turbosyn/internal/server"
)

func main() {
	var (
		k          = flag.Int("k", 5, "LUT input count")
		alg        = flag.String("alg", "turbosyn", "algorithm: turbosyn | turbomap | flowsyns")
		objective  = flag.String("objective", "ratio", "objective: ratio (retiming+pipelining) | period (retiming only)")
		out        = flag.String("o", "", "output file (default stdout; only with a single input)")
		repeat     = flag.Int("repeat", 1, "synthesize each input this many times on one reusable engine (reports per-run time; results are identical across runs)")
		noPack     = flag.Bool("nopack", false, "skip LUT packing")
		raw        = flag.Bool("mapped", false, "emit the mapped network before retiming instead of the realized one")
		noPLD      = flag.Bool("nopld", false, "disable positive loop detection (n^2 stopping rule)")
		noWarm     = flag.Bool("nowarm", false, "disable warm-started search probes (cold binary search)")
		noWork     = flag.Bool("noworklist", false, "disable the dirty-set worklist (full-membership label sweeps; results are bit-identical)")
		workers    = flag.Int("j", 0, "worker pool size (0 = all CPUs, 1 = sequential); results are identical for every setting")
		timeout    = flag.Duration("timeout", 0, "abort synthesis after this duration (0 = no limit); partial progress is reported")
		strict     = flag.Bool("strict", false, "treat resource-budget exhaustion as an error instead of degrading gracefully")
		bddBudget  = flag.Int("bdd-budget", 0, "max OBDD nodes per decomposition pre-screen (0 = unlimited)")
		rkBudget   = flag.Int("rk-budget", 0, "max Roth-Karp bound-set candidates per decomposition attempt (0 = unlimited)")
		cacheDir   = flag.String("decomp-cache", "", "persist the decomposition cache across runs in this directory (results stay bit-identical; warm runs skip the Roth-Karp searches)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (samples carry a per-stage 'phase' label)")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file after synthesis")

		traceOut    = flag.String("trace", "", "write a Chrome/Perfetto trace (JSON) of the runs to this file; written even when a run aborts")
		verbose     = flag.Bool("v", false, "structured logging to stderr at debug level (per-probe verdicts, phase changes)")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON (info level; combine with -v for debug)")
		metricsAddr = flag.String("metrics-addr", "", "serve live run metrics on this address (/metrics Prometheus text, /debug/vars expvar)")

		serverURL = flag.String("server", "", "submit the inputs to a turbosynd daemon at this base URL instead of synthesizing locally (client mode; retries shed load with jittered backoff)")
		tenant    = flag.String("tenant", "", "tenant name for -server submissions (default anonymous)")
		priority  = flag.Int("priority", 0, "priority for -server submissions (higher runs first within the tenant)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: turbosyn [flags] <in.blif | -> [more.blif ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	files := flag.Args()
	if len(files) > 1 && *out != "" {
		fatal(fmt.Errorf("-o accepts a single input; got %d (multi-input netlists go to stdout, one .model after another)", len(files)))
	}
	if *repeat < 1 {
		fatal(fmt.Errorf("-repeat %d: must be at least 1", *repeat))
	}

	if *serverURL != "" {
		runClient(clientConfig{
			base: *serverURL, tenant: *tenant, priority: *priority,
			files: files, out: *out, timeout: *timeout,
			k: *k, alg: *alg, objective: *objective,
			noPack: *noPack, mapped: *raw, strict: *strict,
			bddBudget: *bddBudget, rkBudget: *rkBudget,
		})
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// Tag engine goroutines with their current stage so the profile can
		// be split with `go tool pprof -tagfocus phase=flow` etc.
		prof.Enable(true)
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := turbosyn.Options{
		K: *k, NoPack: *noPack, NoPLD: *noPLD, NoWarmStart: *noWarm, NoWorklist: *noWork,
		Workers: *workers,
		Strict:  *strict, BDDNodeBudget: *bddBudget, RothKarpBudget: *rkBudget,
		CacheDir: *cacheDir,
	}
	switch *alg {
	case "turbosyn":
		opts.Algorithm = turbosyn.TurboSYN
	case "turbomap":
		opts.Algorithm = turbosyn.TurboMap
	case "flowsyns":
		opts.Algorithm = turbosyn.FlowSYNS
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}
	switch *objective {
	case "ratio":
		opts.Objective = turbosyn.MinRatio
	case "period":
		opts.Objective = turbosyn.MinPeriod
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}
	opts.NoRealize = *raw

	// Observability wiring. The progress stream is always on and its latest
	// snapshot (held by the Metrics republisher) is the single source of
	// truth for live metrics and the partial-progress report on abort.
	met := &turbosyn.Metrics{}
	opts.Progress = met.Update
	if *verbose || *logJSON {
		level := slog.LevelInfo
		if *verbose {
			level = slog.LevelDebug
		}
		hopts := &slog.HandlerOptions{Level: level}
		if *logJSON {
			opts.Logger = slog.New(slog.NewJSONHandler(os.Stderr, hopts))
		} else {
			opts.Logger = slog.New(slog.NewTextHandler(os.Stderr, hopts))
		}
	}
	if *traceOut != "" {
		// A generous per-worker ring (~1.5 MiB each) so typical runs retain
		// every span; long runs wrap and keep the most recent events, with
		// the drop count reported in the trace's otherData. One recorder
		// spans every input and repeat, so the trace shows them end to end.
		opts.Trace = turbosyn.NewTraceRecorder(1 << 15)
	}
	// writeTrace flushes the recorded spans; safe on every exit path because
	// the engine joins all its goroutines before SynthesizeContext returns,
	// aborts included.
	writeTrace := func() {
		if opts.Trace == nil {
			return
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := opts.Trace.WriteTrace(f, met.Latest().RunID); err != nil {
			fatal(err)
		}
	}
	if *metricsAddr != "" {
		// Idempotent publication: a second engine in the same process (or a
		// test running main twice) re-targets the "turbosyn" expvar instead
		// of panicking in expvar.Publish. Daemons hosting many concurrent
		// runs scope the name by run id instead — see Metrics.PublishExpvar.
		unpublish := met.PublishExpvar("")
		defer unpublish()
		mux := http.NewServeMux()
		mux.Handle("/metrics", met)
		mux.Handle("/debug/vars", expvar.Handler())
		// The daemon's hardened scaffolding (header timeouts, graceful
		// shutdown) rather than a bare ListenAndServe: a stuck scraper cannot
		// pin the listener, and exiting drains in-flight scrapes.
		srv := server.NewHTTPServer(*metricsAddr, mux)
		_, shutdown, err := server.ListenAndServeBackground(srv, func(err error) {
			fmt.Fprintln(os.Stderr, "turbosyn: metrics server:", err)
		})
		if err != nil {
			fatal(fmt.Errorf("metrics server: %w", err))
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			shutdown(sctx)
		}()
	}

	// Ctrl-C (and -timeout) cancel the synthesis gracefully: the engine
	// aborts at its next checkpoint and the final progress snapshot below
	// still reports the phase reached, the best phi proven and the partial
	// work counters. A second Ctrl-C kills the process the usual way
	// (signal.NotifyContext restores the default handler once the context is
	// done).
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancelSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var (
		totalRuns int
		totalLUTs int
		totalCPU  time.Duration
		// Work-avoidance and memory aggregates across every file and -repeat
		// run: sweep visit/skip sums, worklist and arena high-water marks, and
		// the engines' arena-pool checkout traffic.
		totalVisits   int
		totalSkips    int
		peakWorklist  int
		peakArena     int
		totalReuses   int
		totalCreates  int
		totalDiscards int
	)
	for _, name := range files {
		var in io.Reader = os.Stdin
		if name != "-" {
			f, err := os.Open(name)
			if err != nil {
				fatal(err)
			}
			in = f
		}
		c, err := turbosyn.ReadBLIF(in)
		if cl, ok := in.(io.Closer); ok {
			cl.Close()
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}

		// One reusable engine per circuit-option pair: analysis, caches and
		// arenas are built once and every -repeat run checks out of them.
		// FlowSYN-s has no reusable state, so it runs through the one-shot
		// path instead.
		var eng *turbosyn.Engine
		if opts.Algorithm != turbosyn.FlowSYNS {
			eng, err = turbosyn.NewEngine(c, opts)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
		}
		var res *turbosyn.Result
		var fileVisits, fileSkips, fileWorklist, fileArena int
		start := time.Now()
		for r := 0; r < *repeat; r++ {
			if eng != nil {
				res, err = eng.SynthesizeContext(ctx)
			} else {
				res, err = turbosyn.SynthesizeContext(ctx, c, opts)
			}
			if err == nil {
				fileVisits += res.Stats.SweepNodeVisits
				fileSkips += res.Stats.DirtySkips
				if res.Stats.WorklistPeak > fileWorklist {
					fileWorklist = res.Stats.WorklistPeak
				}
				if res.Stats.ArenaPeakBytes > fileArena {
					fileArena = res.Stats.ArenaPeakBytes
				}
			}
			if err != nil {
				if eng != nil {
					eng.Close()
				}
				writeTrace()
				var ce *turbosyn.CancelError
				if errors.As(err, &ce) {
					// The final Done snapshot is delivered before the run
					// returns, so this is its complete partial-progress record.
					s := met.Latest()
					fmt.Fprintf(os.Stderr,
						"turbosyn: %s: aborted during %s after %v (%v): best phi so far %s, %d iterations, %d/%d probes, %d degradations\n",
						c.Name, s.Phase, s.Elapsed.Round(time.Millisecond), ce.Err,
						phiString(s.BestPhi), s.Iterations, s.ProbesFinished, s.ProbesLaunched, s.Degradations)
					os.Exit(1)
				}
				fatal(fmt.Errorf("%s: %w", c.Name, err))
			}
		}
		elapsed := time.Since(start)
		var pool turbosyn.PoolStats
		if eng != nil {
			pool = eng.PoolStats()
			eng.Close()
		}
		totalRuns += *repeat
		totalLUTs += res.LUTs
		totalCPU += elapsed
		totalVisits += fileVisits
		totalSkips += fileSkips
		if fileWorklist > peakWorklist {
			peakWorklist = fileWorklist
		}
		if fileArena > peakArena {
			peakArena = fileArena
		}
		totalReuses += pool.Reuses
		totalCreates += pool.Creates
		totalDiscards += pool.Discards

		perRun := ""
		if *repeat > 1 {
			perRun = fmt.Sprintf(" (%d runs, %v/run)", *repeat, (elapsed / time.Duration(*repeat)).Round(time.Millisecond))
		}
		fmt.Fprintf(os.Stderr,
			"%s: %v phi=%d luts=%d latency=%v cpu=%v%s (in: %d gates, %d FFs)\n",
			c.Name, res.Algorithm, res.Phi, res.LUTs, res.Latency,
			elapsed.Round(time.Millisecond), perRun, c.NumGates(), c.NumFFs())
		fmt.Fprintf(os.Stderr,
			"%s: sweeps: %d visits, %d skips (%s avoided), worklist peak %d, arena peak %s\n",
			c.Name, fileVisits, fileSkips, pctAvoided(fileVisits, fileSkips),
			fileWorklist, byteString(fileArena))
		if eng != nil {
			fmt.Fprintf(os.Stderr,
				"%s: arena pool: %d reuses, %d creates, %d discards, %d parked (%s retained)\n",
				c.Name, pool.Reuses, pool.Creates, pool.Discards,
				pool.Free, byteString(pool.FreeBytes))
		}
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr,
				"%s: decomp cache: %d/%d hits persisted, %d via NPN, %d roth-karp runs\n",
				c.Name, res.Stats.CachePersistedHits, res.Stats.CacheShardHits,
				res.Stats.CacheNPNHits, res.Stats.RothKarpCalls)
		}

		target := res.Realized
		if *raw || target == nil {
			target = res.Mapped
		}
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			if err := turbosyn.WriteBLIF(f, target); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		} else if err := turbosyn.WriteBLIF(w, target); err != nil {
			fatal(err)
		}
	}
	writeTrace()
	if len(files) > 1 || *repeat > 1 {
		fmt.Fprintf(os.Stderr, "total: %d circuits, %d runs, luts=%d, cpu=%v (%v/run)\n",
			len(files), totalRuns, totalLUTs, totalCPU.Round(time.Millisecond),
			(totalCPU / time.Duration(totalRuns)).Round(time.Millisecond))
		fmt.Fprintf(os.Stderr,
			"total: sweeps: %d visits, %d skips (%s avoided), worklist peak %d, arena peak %s, pool: %d reuses, %d creates, %d discards\n",
			totalVisits, totalSkips, pctAvoided(totalVisits, totalSkips),
			peakWorklist, byteString(peakArena), totalReuses, totalCreates, totalDiscards)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained allocation
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func phiString(phi int) string {
	if phi < 0 {
		return "none"
	}
	return fmt.Sprintf("%d", phi)
}

// pctAvoided renders the share of sweep work the dirty-set worklist elided.
func pctAvoided(visits, skips int) string {
	if total := visits + skips; total > 0 {
		return fmt.Sprintf("%d%%", skips*100/total)
	}
	return "0%"
}

// byteString renders a byte count with a binary unit.
func byteString(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "turbosyn:", err)
	os.Exit(1)
}
