// Command benchjson converts `go test -bench` text output (read on stdin)
// into a stable JSON document, so CI can publish benchmark numbers — ns/op,
// B/op, allocs/op and any custom b.ReportMetric units such as iters or
// warmstarts — as a machine-readable artifact (BENCH_labels.json).
//
// Usage:
//
//	go test -bench . -benchmem . | benchjson -o BENCH_labels.json
//	benchjson -delta old.json new.json
//
// Delta mode compares two such documents benchmark by benchmark, printing
// the new/old ratio of ns/op, B/op, allocs/op — and, for daemon load
// sweeps, p99-ms and retries — for every shared name, and exits nonzero
// when any ratio exceeds its threshold (-max-time-ratio, -max-bytes-ratio,
// -max-allocs-ratio, -max-p99-ratio, -max-retries-ratio) — the CI
// regression gates of `make bench-smoke` and `make bench-daemon`. A
// benchmark that was allocation-free and now allocates is always a
// regression under the allocs gate (the ratio is reported as +Inf), which
// is how the zero-allocation warm-sweep invariant is enforced at the
// benchmark level. The retries gate compares (new+1)/(old+1), since a
// zero-retry baseline is the healthy norm.
//
// Names present in only one document are informational by default ("only in
// new" is how a freshly added benchmark rides through the gate until its
// baseline is committed). -require-old makes new-only names fatal, for gates
// whose baseline is supposed to already cover every benchmark in the run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Doc is the emitted document: the run context lines go test prints (goos,
// goarch, cpu, pkg) plus one entry per benchmark result line.
type Doc struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// Benchmark is one result line: the benchmark name (including sub-benchmark
// path and -cpu suffix), the iteration count, and every reported metric
// keyed by its unit.
type Benchmark struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

// Parse reads `go test -bench` output and collects context and results.
// Unparseable lines (test chatter, PASS/ok trailers) are skipped.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Context[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, N, then (value, unit) pairs: Benchmark... 8 123 ns/op 4 allocs/op
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], N: n, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok && len(b.Metrics) > 0 {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// DeltaRow is one benchmark's old-vs-new comparison. Ratios are new/old;
// a ratio is 0 when the metric is absent on either side (nothing to gate).
type DeltaRow struct {
	Name         string
	TimeRatio    float64 // ns/op new/old
	BytesRatio   float64 // B/op new/old
	AllocsRatio  float64 // allocs/op new/old; +Inf when 0 allocs grew to >0
	P99Ratio     float64 // p99-ms new/old (daemon load sweeps)
	RetriesRatio float64 // retries (new+1)/(old+1): smoothed, since 0 is common
	OnlyIn       string  // "old" or "new" when the name is not shared, else ""
}

// ratio returns new/old for one metric, or 0 when it cannot be formed.
func ratio(oldM, newM map[string]float64, unit string) float64 {
	o, okO := oldM[unit]
	n, okN := newM[unit]
	if !okO || !okN || o <= 0 {
		return 0
	}
	return n / o
}

// allocsRatio is ratio for allocs/op with one extra rule: an old count of
// exactly zero is meaningful (the zero-allocation invariant), so growing from
// 0 to anything positive reports +Inf — always beyond any finite threshold —
// instead of the generic "cannot be formed" 0.
func allocsRatio(oldM, newM map[string]float64) float64 {
	o, okO := oldM["allocs/op"]
	n, okN := newM["allocs/op"]
	if !okO || !okN {
		return 0
	}
	if o == 0 {
		if n > 0 {
			return math.Inf(1)
		}
		return 1
	}
	return n / o
}

// retriesRatio compares the "retries" counters as (new+1)/(old+1): a zero
// baseline is the normal case for an unloaded sweep, so the plain ratio
// would be unformable exactly when the gate matters most (0 retries
// suddenly becoming thousands). The +1 smoothing keeps 0 -> 0 at 1.0 while
// 0 -> 999 reads as 1000x — well past any sane threshold.
func retriesRatio(oldM, newM map[string]float64) float64 {
	o, okO := oldM["retries"]
	n, okN := newM["retries"]
	if !okO || !okN {
		return 0
	}
	return (n + 1) / (o + 1)
}

// Delta pairs the two documents' benchmarks by name, in the new document's
// order, with old-only names appended.
func Delta(oldDoc, newDoc *Doc) []DeltaRow {
	oldByName := make(map[string]Benchmark, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		oldByName[b.Name] = b
	}
	seen := make(map[string]bool, len(newDoc.Benchmarks))
	var rows []DeltaRow
	for _, nb := range newDoc.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldByName[nb.Name]
		if !ok {
			rows = append(rows, DeltaRow{Name: nb.Name, OnlyIn: "new"})
			continue
		}
		rows = append(rows, DeltaRow{
			Name:         nb.Name,
			TimeRatio:    ratio(ob.Metrics, nb.Metrics, "ns/op"),
			BytesRatio:   ratio(ob.Metrics, nb.Metrics, "B/op"),
			AllocsRatio:  allocsRatio(ob.Metrics, nb.Metrics),
			P99Ratio:     ratio(ob.Metrics, nb.Metrics, "p99-ms"),
			RetriesRatio: retriesRatio(ob.Metrics, nb.Metrics),
		})
	}
	for _, ob := range oldDoc.Benchmarks {
		if !seen[ob.Name] {
			rows = append(rows, DeltaRow{Name: ob.Name, OnlyIn: "old"})
		}
	}
	return rows
}

// Gates holds the delta-mode regression thresholds; a zero field disables
// that gate. The p99 and retries gates exist for the daemon load sweep,
// where tail latency and shed-load churn regress long before the mean does.
type Gates struct {
	MaxTime    float64 // ns/op ratio ceiling
	MaxBytes   float64 // B/op ratio ceiling
	MaxAllocs  float64 // allocs/op ratio ceiling
	MaxP99     float64 // p99-ms ratio ceiling
	MaxRetries float64 // retries (new+1)/(old+1) ceiling
}

// FormatDelta renders the comparison table and returns the number of rows
// whose ratio exceeds its gate (a zero gate is disabled). Regressing rows
// are marked REGRESSED. Unshared names are informational, except that
// requireOld makes a name with no old baseline ("only in new") count as a
// regression — an old-only name stays informational either way, since a
// deliberately removed benchmark has nothing left to gate.
func FormatDelta(w io.Writer, rows []DeltaRow, g Gates, requireOld bool) (regressions int) {
	fmt.Fprintf(w, "%-44s %13s %12s %15s %13s %15s\n",
		"benchmark", "ns/op new/old", "B/op new/old", "allocs new/old", "p99 new/old", "retries n+1/o+1")
	for _, r := range rows {
		if r.OnlyIn != "" {
			mark := ""
			if requireOld && r.OnlyIn == "new" {
				mark = "  REGRESSED (no baseline)"
				regressions++
			}
			fmt.Fprintf(w, "%-44s only in %s%s\n", r.Name, r.OnlyIn, mark)
			continue
		}
		bad := (g.MaxTime > 0 && r.TimeRatio > g.MaxTime) ||
			(g.MaxBytes > 0 && r.BytesRatio > g.MaxBytes) ||
			(g.MaxAllocs > 0 && r.AllocsRatio > g.MaxAllocs) ||
			(g.MaxP99 > 0 && r.P99Ratio > g.MaxP99) ||
			(g.MaxRetries > 0 && r.RetriesRatio > g.MaxRetries)
		mark := ""
		if bad {
			mark = "  REGRESSED"
			regressions++
		}
		fmt.Fprintf(w, "%-44s %13.3f %12.3f %15.3f %13.3f %15.3f%s\n",
			r.Name, r.TimeRatio, r.BytesRatio, r.AllocsRatio, r.P99Ratio, r.RetriesRatio, mark)
	}
	return regressions
}

func loadDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	delta := flag.Bool("delta", false, "compare two benchmark JSON files: benchjson -delta old.json new.json")
	maxTime := flag.Float64("max-time-ratio", 3.0, "delta mode: fail when ns/op grows beyond this new/old ratio (0 disables)")
	maxBytes := flag.Float64("max-bytes-ratio", 1.5, "delta mode: fail when B/op grows beyond this new/old ratio (0 disables)")
	maxAllocs := flag.Float64("max-allocs-ratio", 1.5, "delta mode: fail when allocs/op grows beyond this new/old ratio (0 disables; 0 allocs growing to any is always a failure)")
	maxP99 := flag.Float64("max-p99-ratio", 0, "delta mode: fail when p99-ms grows beyond this new/old ratio (0 disables; daemon load sweeps)")
	maxRetries := flag.Float64("max-retries-ratio", 0, "delta mode: fail when retries grow beyond this (new+1)/(old+1) ratio (0 disables)")
	requireOld := flag.Bool("require-old", false, "delta mode: fail when a benchmark in the new document has no old baseline (default: informational)")
	flag.Parse()

	if *delta {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-delta needs exactly two files, got %d", flag.NArg()))
		}
		oldDoc, err := loadDoc(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		newDoc, err := loadDoc(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		g := Gates{MaxTime: *maxTime, MaxBytes: *maxBytes, MaxAllocs: *maxAllocs, MaxP99: *maxP99, MaxRetries: *maxRetries}
		if n := FormatDelta(os.Stdout, Delta(oldDoc, newDoc), g, *requireOld); n > 0 {
			fatal(fmt.Errorf("%d benchmark(s) regressed beyond thresholds (ns/op > %gx, B/op > %gx, allocs/op > %gx, p99-ms > %gx, retries > %gx)",
				n, *maxTime, *maxBytes, *maxAllocs, *maxP99, *maxRetries))
		}
		return
	}

	doc, err := Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
