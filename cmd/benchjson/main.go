// Command benchjson converts `go test -bench` text output (read on stdin)
// into a stable JSON document, so CI can publish benchmark numbers — ns/op,
// B/op, allocs/op and any custom b.ReportMetric units such as iters or
// warmstarts — as a machine-readable artifact (BENCH_labels.json).
//
// Usage:
//
//	go test -bench . -benchmem . | benchjson -o BENCH_labels.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Doc is the emitted document: the run context lines go test prints (goos,
// goarch, cpu, pkg) plus one entry per benchmark result line.
type Doc struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// Benchmark is one result line: the benchmark name (including sub-benchmark
// path and -cpu suffix), the iteration count, and every reported metric
// keyed by its unit.
type Benchmark struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

// Parse reads `go test -bench` output and collects context and results.
// Unparseable lines (test chatter, PASS/ok trailers) are skipped.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Context[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, N, then (value, unit) pairs: Benchmark... 8 123 ns/op 4 allocs/op
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], N: n, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok && len(b.Metrics) > 0 {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
